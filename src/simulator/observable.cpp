#include "simulator/observable.hpp"

#include <algorithm>

#include "core/bits.hpp"
#include "core/error.hpp"

namespace quasar {

PauliString::PauliString(const std::string& text) {
  for (std::size_t i = 0; i < text.size(); ++i) {
    switch (text[i]) {
      case 'I': break;
      case 'X': add(static_cast<Qubit>(i), Pauli::kX); break;
      case 'Y': add(static_cast<Qubit>(i), Pauli::kY); break;
      case 'Z': add(static_cast<Qubit>(i), Pauli::kZ); break;
      default:
        throw Error(std::string("PauliString: invalid character '") +
                    text[i] + "'");
    }
  }
}

void PauliString::add(Qubit qubit, Pauli op) {
  QUASAR_CHECK(qubit >= 0, "PauliString: negative qubit");
  if (op == Pauli::kI) return;
  const auto it = std::lower_bound(
      factors_.begin(), factors_.end(), qubit,
      [](const auto& f, Qubit q) { return f.first < q; });
  QUASAR_CHECK(it == factors_.end() || it->first != qubit,
               "PauliString: qubit already has a factor");
  factors_.insert(it, {qubit, op});
}

Qubit PauliString::max_qubit() const {
  return factors_.empty() ? -1 : factors_.back().first;
}

Real expectation(const StateVector& state, const PauliString& pauli) {
  QUASAR_CHECK(pauli.max_qubit() < state.num_qubits(),
               "expectation: operator wider than the state");
  // Flip mask from X/Y factors; phase computed per input basis state.
  Index flip = 0;
  Index y_mask = 0, z_mask = 0;
  for (const auto& [qubit, op] : pauli.factors()) {
    switch (op) {
      case Pauli::kX: flip |= index_pow2(qubit); break;
      case Pauli::kY:
        flip |= index_pow2(qubit);
        y_mask |= index_pow2(qubit);
        break;
      case Pauli::kZ: z_mask |= index_pow2(qubit); break;
      case Pauli::kI: break;
    }
  }
  const int y_count = std::popcount(y_mask);
  const Amplitude* data = state.data();
  const Index n = state.size();

  Real sum_re = 0.0, sum_im = 0.0;
#pragma omp parallel for schedule(static) reduction(+ : sum_re, sum_im)
  for (std::int64_t j = 0; j < static_cast<std::int64_t>(n); ++j) {
    const Index out = static_cast<Index>(j);
    const Index in = out ^ flip;
    // Phase: Z factors give (-1)^bit(in); each Y gives i on |0> input
    // and -i on |1> input, i.e. i^{#Y} * (-1)^{#(Y bits set in in)}.
    int minus = std::popcount(in & z_mask) + std::popcount(in & y_mask);
    Amplitude term = std::conj(data[out]) * data[in];
    if (minus & 1) term = -term;
    const Amplitude v = term;
    // Multiply by i^{y_count}.
    switch (y_count & 3) {
      case 0: sum_re += v.real(); sum_im += v.imag(); break;
      case 1: sum_re += -v.imag(); sum_im += v.real(); break;
      case 2: sum_re += -v.real(); sum_im += -v.imag(); break;
      case 3: sum_re += v.imag(); sum_im += -v.real(); break;
    }
  }
  QUASAR_ASSERT(std::abs(sum_im) < 1e-9);
  return sum_re;
}

Real fidelity(const StateVector& a, const StateVector& b) {
  QUASAR_CHECK(a.num_qubits() == b.num_qubits(),
               "fidelity: qubit count mismatch");
  const Index n = a.size();
  Real re = 0.0, im = 0.0;
#pragma omp parallel for schedule(static) reduction(+ : re, im)
  for (std::int64_t i = 0; i < static_cast<std::int64_t>(n); ++i) {
    const Amplitude v = std::conj(a[i]) * b[i];
    re += v.real();
    im += v.imag();
  }
  return re * re + im * im;
}

}  // namespace quasar
