/// \file measure.hpp
/// \brief Measurement, sampling, and output-distribution statistics.
///
/// The paper's 36-qubit Edison run computes the entropy of the output
/// distribution (Sec. 4.2.2, "8.1 seconds were used to calculate the
/// entropy, which requires a final reduction"); supremacy verification
/// relies on the Porter–Thomas shape of that distribution.
#pragma once

#include <vector>

#include "core/rng.hpp"
#include "simulator/statevector.hpp"

namespace quasar {

/// Probability that qubit at bit-location q measures 1.
Real probability_of_one(const StateVector& state, int bit_location);

/// Shannon entropy -sum p_i ln p_i of the full output distribution
/// (natural log, like the paper). Parallel reduction over all amplitudes.
Real entropy(const StateVector& state);

/// Entropy a Porter–Thomas (exponential) distribution over 2^n outcomes
/// predicts: ln(2^n) - 1 + gamma (gamma = Euler–Mascheroni). Random
/// supremacy circuits converge to this value, which is how the paper's
/// entropy output can be sanity-checked without a reference state.
Real porter_thomas_entropy(int num_qubits);

/// Samples `count` basis-state indices from |amplitude|^2 via inverse
/// transform over a single uniform pass (deterministic given rng).
std::vector<Index> sample_outcomes(const StateVector& state, int count,
                                   Rng& rng);

/// Projective measurement of one qubit: returns the outcome (0/1) drawn
/// from rng and collapses + renormalizes the state in place.
int measure_qubit(StateVector& state, int bit_location, Rng& rng);

/// Cross-entropy-benchmarking style statistic: the mean of 2^n * p(s)
/// over the sampled indices s. Ideal sampling from a Porter–Thomas
/// distribution gives 2.0; a uniform (fully depolarized) sampler gives
/// 1.0. Used by the validation example.
Real porter_thomas_test(const StateVector& state,
                        const std::vector<Index>& samples);

}  // namespace quasar
