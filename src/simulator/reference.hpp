/// \file reference.hpp
/// \brief Independent brute-force simulator used as the test oracle.
///
/// Implements gate application directly from the definition in Sec. 2 —
/// out-of-place, no prepared-gate machinery, no shared code with the
/// optimized kernels — so kernel bugs cannot hide in a shared helper.
/// Only suitable for small qubit counts (tests use n <= 12).
#pragma once

#include "circuit/circuit.hpp"
#include "simulator/statevector.hpp"

namespace quasar {

/// Applies `matrix` to the given bit-locations of `state`, brute force.
void reference_apply(StateVector& state, const GateMatrix& matrix,
                     const std::vector<int>& bit_locations);

/// Runs a circuit via reference_apply (program qubit q = bit-location q).
void reference_run(StateVector& state, const Circuit& circuit);

}  // namespace quasar
