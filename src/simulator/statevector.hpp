/// \file statevector.hpp
/// \brief The 2^n-amplitude state vector (paper Sec. 2).
#pragma once

#include "core/aligned.hpp"
#include "core/error.hpp"
#include "core/types.hpp"

namespace quasar {

/// Owns the 2^n complex amplitudes of an n-qubit register. Storage is
/// cache-line aligned and initialized with a parallel first touch so pages
/// distribute across NUMA domains (paper Sec. 3.3: "NUMA-aware
/// initialization of the state vector").
class StateVector {
 public:
  /// Creates |0...0> on `num_qubits` qubits.
  explicit StateVector(int num_qubits);

  /// Number of qubits n.
  int num_qubits() const noexcept { return num_qubits_; }
  /// Number of amplitudes 2^n.
  Index size() const noexcept { return index_pow2(num_qubits_); }

  Amplitude* data() noexcept { return data_.data(); }
  const Amplitude* data() const noexcept { return data_.data(); }

  Amplitude& operator[](Index i) { return data_[i]; }
  const Amplitude& operator[](Index i) const { return data_[i]; }

  /// Resets to the computational basis state |index>.
  void set_basis_state(Index index);

  /// Sets every amplitude to 2^(-n/2): the state after a Hadamard on every
  /// qubit of |0..0>. Supremacy simulations start here and skip the
  /// cycle-0 H layer (paper Sec. 3.6: "initialize the wave function
  /// directly to (2^{-n/2}, ...)^T").
  void set_uniform_superposition();

  /// Squared 2-norm; 1 for a valid quantum state.
  Real norm_squared() const;

  /// Probability of basis state i.
  Real probability(Index i) const { return std::norm(data_[i]); }

  /// Maximum |amplitude difference| to another state (test helper).
  Real max_abs_diff(const StateVector& other) const;

 private:
  int num_qubits_;
  AlignedVector<Amplitude> data_;
};

}  // namespace quasar
