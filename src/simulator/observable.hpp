/// \file observable.hpp
/// \brief Pauli-string observables and expectation values.
///
/// A Pauli string P = P_{q1} ⊗ P_{q2} ⊗ ... maps every basis state to
/// exactly one basis state (a phased permutation), so <psi|P|psi> is a
/// single O(2^n) pass with no state copy: sum_j conj(psi_j) * phase(k) *
/// psi_k with k = j XOR flipmask.
#pragma once

#include <string>
#include <vector>

#include "simulator/statevector.hpp"

namespace quasar {

/// Single-qubit Pauli operator label.
enum class Pauli { kI, kX, kY, kZ };

/// A product of single-qubit Paulis on distinct qubits.
class PauliString {
 public:
  /// Empty string (identity).
  PauliString() = default;

  /// Parses e.g. "XIZY": character i acts on qubit i (I entries skipped).
  /// Throws on characters outside {I, X, Y, Z}.
  explicit PauliString(const std::string& text);

  /// Adds a factor; throws if the qubit already carries one.
  void add(Qubit qubit, Pauli op);

  /// Number of non-identity factors.
  std::size_t weight() const { return factors_.size(); }

  /// The factors, ascending by qubit.
  const std::vector<std::pair<Qubit, Pauli>>& factors() const {
    return factors_;
  }

  /// Highest qubit index used (-1 if identity).
  Qubit max_qubit() const;

 private:
  std::vector<std::pair<Qubit, Pauli>> factors_;  // sorted by qubit
};

/// <psi|P|psi>. Hermitian P gives a real value; the tiny imaginary
/// residue is dropped. Throws if P touches qubits beyond the state.
Real expectation(const StateVector& state, const PauliString& pauli);

/// |<a|b>|^2 — state fidelity between two pure states of equal width.
Real fidelity(const StateVector& a, const StateVector& b);

}  // namespace quasar
