#include "simulator/noise.hpp"

#include "simulator/observable.hpp"
#include "simulator/simulator.hpp"

namespace quasar {

namespace {

const GateMatrix& pauli_matrix(int which) {
  static const GateMatrix x = gates::x();
  static const GateMatrix y = gates::y();
  static const GateMatrix z = gates::z();
  switch (which) {
    case 0: return x;
    case 1: return y;
    default: return z;
  }
}

}  // namespace

TrajectoryStats run_noisy_trajectory(StateVector& state,
                                     const Circuit& circuit,
                                     const NoiseModel& noise, Rng& rng,
                                     const ApplyOptions& options) {
  QUASAR_CHECK(noise.depolarizing_per_gate >= 0.0 &&
                   noise.depolarizing_per_gate <= 1.0,
               "depolarizing probability must be in [0, 1]");
  QUASAR_CHECK(circuit.num_qubits() == state.num_qubits(),
               "run_noisy_trajectory: qubit count mismatch");
  Simulator simulator(state, options);
  TrajectoryStats stats;
  for (const GateOp& op : circuit.ops()) {
    simulator.apply(op);
    if (noise.depolarizing_per_gate <= 0.0) continue;
    for (Qubit q : op.qubits) {
      if (rng.uniform_real() >= noise.depolarizing_per_gate) continue;
      const int which = static_cast<int>(rng.uniform_int(3));
      simulator.apply(pauli_matrix(which), {q});
      ++stats.pauli_events;
    }
  }
  return stats;
}

Real average_noisy_fidelity(const Circuit& circuit, const NoiseModel& noise,
                            int trajectories, Rng& rng,
                            const ApplyOptions& options) {
  QUASAR_CHECK(trajectories >= 1, "need at least one trajectory");
  StateVector ideal(circuit.num_qubits());
  Simulator sim(ideal, options);
  sim.run(circuit);

  Real total = 0.0;
  for (int t = 0; t < trajectories; ++t) {
    StateVector noisy(circuit.num_qubits());
    run_noisy_trajectory(noisy, circuit, noise, rng, options);
    total += fidelity(ideal, noisy);
  }
  return total / trajectories;
}

}  // namespace quasar
