#include "simulator/reference.hpp"

#include <vector>

#include "core/bits.hpp"

namespace quasar {

void reference_apply(StateVector& state, const GateMatrix& matrix,
                     const std::vector<int>& bit_locations) {
  const int n = state.num_qubits();
  QUASAR_CHECK(n <= 24, "reference_apply is for small test states only");
  QUASAR_CHECK(matrix.num_qubits() ==
                   static_cast<int>(bit_locations.size()),
               "reference_apply: arity mismatch");
  for (int q : bit_locations) {
    QUASAR_CHECK(q >= 0 && q < n, "reference_apply: bit-location range");
  }
  const Index size = state.size();
  const Index dim = matrix.dim();
  std::vector<Amplitude> out(size, Amplitude{0.0, 0.0});
  // Directly from the definition: out[j] = sum_x M[bits(j), x] in[j with
  // the gate bits replaced by x].
  for (Index j = 0; j < size; ++j) {
    const Index row = gather_bits(j, bit_locations);
    Amplitude acc{0.0, 0.0};
    for (Index x = 0; x < dim; ++x) {
      Index src = j;
      for (std::size_t b = 0; b < bit_locations.size(); ++b) {
        src = set_bit(src, bit_locations[b], get_bit(x, static_cast<int>(b)));
      }
      acc += matrix.at(row, x) * state[src];
    }
    out[j] = acc;
  }
  for (Index j = 0; j < size; ++j) state[j] = out[j];
}

void reference_run(StateVector& state, const Circuit& circuit) {
  QUASAR_CHECK(circuit.num_qubits() == state.num_qubits(),
               "reference_run: qubit count mismatch");
  for (const GateOp& op : circuit.ops()) {
    std::vector<int> locations(op.qubits.begin(), op.qubits.end());
    reference_apply(state, *op.matrix, locations);
  }
}

}  // namespace quasar
