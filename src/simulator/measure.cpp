#include "simulator/measure.hpp"

#include <algorithm>
#include <cmath>

#include "core/bits.hpp"
#include "obs/trace.hpp"

namespace quasar {

Real probability_of_one(const StateVector& state, int bit_location) {
  QUASAR_CHECK(bit_location >= 0 && bit_location < state.num_qubits(),
               "probability_of_one: bit-location out of range");
  const Index n = state.size();
  const Index mask = index_pow2(bit_location);
  const Amplitude* data = state.data();
  Real total = 0.0;
#pragma omp parallel for schedule(static) reduction(+ : total)
  for (std::int64_t i = 0; i < static_cast<std::int64_t>(n); ++i) {
    if (static_cast<Index>(i) & mask) total += std::norm(data[i]);
  }
  return total;
}

Real entropy(const StateVector& state) {
  const Index n = state.size();
  const Amplitude* data = state.data();
  Real total = 0.0;
#pragma omp parallel for schedule(static) reduction(+ : total)
  for (std::int64_t i = 0; i < static_cast<std::int64_t>(n); ++i) {
    const Real p = std::norm(data[i]);
    if (p > 0.0) total -= p * std::log(p);
  }
  return total;
}

Real porter_thomas_entropy(int num_qubits) {
  constexpr Real kEulerGamma = 0.5772156649015328606;
  return num_qubits * std::log(2.0) - 1.0 + kEulerGamma;
}

std::vector<Index> sample_outcomes(const StateVector& state, int count,
                                   Rng& rng) {
  QUASAR_CHECK(count >= 0, "sample count must be non-negative");
  QUASAR_OBS_SPAN("measure", "sample", "count",
                  static_cast<std::int64_t>(count));
  // Sorted uniforms + one cumulative pass: O(N + count log count).
  std::vector<Real> thresholds(count);
  for (auto& u : thresholds) u = rng.uniform_real();
  std::sort(thresholds.begin(), thresholds.end());

  std::vector<Index> outcomes;
  outcomes.reserve(count);
  Real cumulative = 0.0;
  std::size_t next = 0;
  const Index n = state.size();
  for (Index i = 0; i < n && next < thresholds.size(); ++i) {
    cumulative += state.probability(i);
    while (next < thresholds.size() && thresholds[next] < cumulative) {
      outcomes.push_back(i);
      ++next;
    }
  }
  // Rounding at the top end: assign leftovers to the last basis state.
  while (next++ < thresholds.size()) outcomes.push_back(n - 1);
  return outcomes;
}

int measure_qubit(StateVector& state, int bit_location, Rng& rng) {
  QUASAR_OBS_SPAN("measure", "measure_qubit");
  Real p1 = probability_of_one(state, bit_location);
  // A corrupted state (NaN/Inf amplitudes) must fail here with a message
  // naming the cause, not downstream as a baffling "zero probability".
  QUASAR_CHECK(std::isfinite(p1),
               "measure_qubit: probability is not finite (state contains "
               "NaN/Inf amplitudes?)");
  // Rounding can push the reduction marginally outside [0, 1]. After the
  // clamp, outcome 1 requires uniform_real() < p1 (so p1 > 0) and outcome
  // 0 requires uniform_real() >= p1 with draws in [0, 1) (so p1 < 1 and
  // keep = 1 - p1 > 0): the keep > 0 check below cannot trip spuriously
  // when p1 rounds to exactly 0 or 1 — only on a genuinely broken state.
  p1 = std::clamp(p1, 0.0, 1.0);
  const int outcome = rng.uniform_real() < p1 ? 1 : 0;
  const Real keep = outcome ? p1 : 1.0 - p1;
  QUASAR_CHECK(keep > 0.0, "measurement outcome has zero probability");
  const Real scale = 1.0 / std::sqrt(keep);
  const Index n = state.size();
  const Index mask = index_pow2(bit_location);
  Amplitude* data = state.data();
#pragma omp parallel for schedule(static)
  for (std::int64_t i = 0; i < static_cast<std::int64_t>(n); ++i) {
    const bool is_one = (static_cast<Index>(i) & mask) != 0;
    if (is_one == (outcome == 1)) {
      data[i] *= scale;
    } else {
      data[i] = Amplitude{0.0, 0.0};
    }
  }
  return outcome;
}

Real porter_thomas_test(const StateVector& state,
                        const std::vector<Index>& samples) {
  QUASAR_CHECK(!samples.empty(), "porter_thomas_test needs samples");
  const Real n = static_cast<Real>(state.size());
  Real total = 0.0;
  for (Index s : samples) total += n * state.probability(s);
  return total / static_cast<Real>(samples.size());
}

}  // namespace quasar
