#include "simulator/simulator.hpp"

#include "kernels/block_apply.hpp"
#include "obs/trace.hpp"

namespace quasar {

Simulator::Simulator(StateVector& state, ApplyOptions options)
    : state_(&state), options_(options) {}

void Simulator::apply(const GateMatrix& matrix,
                      const std::vector<int>& qubits) {
  apply(prepare_gate(matrix, qubits));
}

void Simulator::apply(const PreparedGate& gate) {
  apply_gate(state_->data(), state_->num_qubits(), gate, options_);
}

void Simulator::apply(const GateOp& op) {
  std::vector<int> locations(op.qubits.begin(), op.qubits.end());
  apply(prepare_gate(*op.matrix, locations));
}

void Simulator::run(const Circuit& circuit) {
  QUASAR_CHECK(circuit.num_qubits() == state_->num_qubits(),
               "Simulator::run: circuit/state qubit count mismatch");
  QUASAR_OBS_SPAN("run", "simulator_run", "gates",
                  static_cast<std::int64_t>(circuit.num_gates()));
  // Batched fast path: prepare every op once, then let the blocked
  // executor share DRAM sweeps across runs of low-location gates. The
  // QUASAR_VALIDATE invariant guards (norm preservation, finiteness)
  // fire inside apply_gates_blocked, which is this run's entire body.
  std::vector<PreparedGate> prepared;
  prepared.reserve(circuit.num_gates());
  for (const GateOp& op : circuit.ops()) {
    prepared.push_back(prepare_gate(
        *op.matrix, std::vector<int>(op.qubits.begin(), op.qubits.end())));
  }
  std::vector<const PreparedGate*> gate_ptrs;
  gate_ptrs.reserve(prepared.size());
  for (const PreparedGate& g : prepared) gate_ptrs.push_back(&g);
  apply_gates_blocked(state_->data(), state_->num_qubits(), gate_ptrs.data(),
                      gate_ptrs.size(), options_);
}

}  // namespace quasar
