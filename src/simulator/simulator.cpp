#include "simulator/simulator.hpp"

namespace quasar {

Simulator::Simulator(StateVector& state, ApplyOptions options)
    : state_(&state), options_(options) {}

void Simulator::apply(const GateMatrix& matrix,
                      const std::vector<int>& qubits) {
  apply(prepare_gate(matrix, qubits));
}

void Simulator::apply(const PreparedGate& gate) {
  apply_gate(state_->data(), state_->num_qubits(), gate, options_);
}

void Simulator::apply(const GateOp& op) {
  std::vector<int> locations(op.qubits.begin(), op.qubits.end());
  apply(prepare_gate(*op.matrix, locations));
}

void Simulator::run(const Circuit& circuit) {
  QUASAR_CHECK(circuit.num_qubits() == state_->num_qubits(),
               "Simulator::run: circuit/state qubit count mismatch");
  for (const GateOp& op : circuit.ops()) apply(op);
}

}  // namespace quasar
