/// \file simulator.hpp
/// \brief Single-address-space circuit simulator (the node-level engine).
#pragma once

#include "circuit/circuit.hpp"
#include "kernels/apply.hpp"
#include "simulator/statevector.hpp"

namespace quasar {

/// Applies gates and circuits to a StateVector using the optimized
/// kernels. This is the engine a single rank runs; the distributed
/// simulator composes per-rank engines with the communication layer.
class Simulator {
 public:
  /// Wraps (does not own) a state vector.
  explicit Simulator(StateVector& state, ApplyOptions options = {});

  const ApplyOptions& options() const noexcept { return options_; }
  void set_options(const ApplyOptions& options) { options_ = options; }

  /// Applies a single gate matrix to the given bit-locations.
  void apply(const GateMatrix& matrix, const std::vector<int>& qubits);

  /// Applies a pre-prepared gate.
  void apply(const PreparedGate& gate);

  /// Applies one circuit op.
  void apply(const GateOp& op);

  /// Runs a circuit gate by gate (no clustering). The scheduler-driven
  /// fused execution lives in runtime/ and sched/.
  void run(const Circuit& circuit);

 private:
  StateVector* state_;
  ApplyOptions options_;
};

}  // namespace quasar
