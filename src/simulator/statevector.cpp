#include "simulator/statevector.hpp"

#include <cmath>

namespace quasar {

StateVector::StateVector(int num_qubits) : num_qubits_(num_qubits) {
  QUASAR_CHECK(num_qubits >= 1 && num_qubits <= 40,
               "StateVector supports 1..40 qubits (memory bound)");
  const Index n = size();
  data_.resize(n);
  // Parallel first touch: with OpenMP static scheduling each thread's
  // pages land in its NUMA domain, matching the later sweep partitioning.
#pragma omp parallel for schedule(static)
  for (std::int64_t i = 0; i < static_cast<std::int64_t>(n); ++i) {
    data_[i] = Amplitude{0.0, 0.0};
  }
  data_[0] = Amplitude{1.0, 0.0};
}

void StateVector::set_basis_state(Index index) {
  QUASAR_CHECK(index < size(), "basis state index out of range");
  const Index n = size();
#pragma omp parallel for schedule(static)
  for (std::int64_t i = 0; i < static_cast<std::int64_t>(n); ++i) {
    data_[i] = Amplitude{0.0, 0.0};
  }
  data_[index] = Amplitude{1.0, 0.0};
}

void StateVector::set_uniform_superposition() {
  const Index n = size();
  const double value = std::pow(2.0, -0.5 * num_qubits_);
#pragma omp parallel for schedule(static)
  for (std::int64_t i = 0; i < static_cast<std::int64_t>(n); ++i) {
    data_[i] = Amplitude{value, 0.0};
  }
}

Real StateVector::norm_squared() const {
  const Index n = size();
  Real total = 0.0;
#pragma omp parallel for schedule(static) reduction(+ : total)
  for (std::int64_t i = 0; i < static_cast<std::int64_t>(n); ++i) {
    total += std::norm(data_[i]);
  }
  return total;
}

Real StateVector::max_abs_diff(const StateVector& other) const {
  QUASAR_CHECK(other.num_qubits_ == num_qubits_,
               "max_abs_diff: qubit count mismatch");
  const Index n = size();
  Real worst = 0.0;
#pragma omp parallel for schedule(static) reduction(max : worst)
  for (std::int64_t i = 0; i < static_cast<std::int64_t>(n); ++i) {
    worst = std::max(worst, std::abs(data_[i] - other.data_[i]));
  }
  return worst;
}

}  // namespace quasar
