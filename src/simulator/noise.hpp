/// \file noise.hpp
/// \brief Trajectory-based noise simulation.
///
/// The paper motivates circuit simulators for "studies of their
/// [algorithms'] behavior under noise" (Sec. 1). This module implements
/// the standard quantum-trajectory method for Pauli channels: after each
/// gate, each touched qubit suffers a depolarizing event with
/// probability p (a uniformly random X, Y, or Z). Averaging over
/// trajectories reproduces the channel; a single trajectory samples it.
#pragma once

#include "circuit/circuit.hpp"
#include "core/rng.hpp"
#include "kernels/apply.hpp"
#include "simulator/statevector.hpp"

namespace quasar {

/// Noise parameters for run_noisy_trajectory.
struct NoiseModel {
  /// Per-qubit depolarizing probability applied after every gate to each
  /// qubit the gate touches.
  Real depolarizing_per_gate = 0.0;
};

/// Statistics of one noisy run.
struct TrajectoryStats {
  int pauli_events = 0;  ///< number of inserted error Paulis
};

/// Runs `circuit` on `state` with stochastic Pauli errors drawn from
/// rng. Returns how many errors were inserted. Deterministic given the
/// rng state, so trajectories are reproducible.
TrajectoryStats run_noisy_trajectory(StateVector& state,
                                     const Circuit& circuit,
                                     const NoiseModel& noise, Rng& rng,
                                     const ApplyOptions& options = {});

/// Average fidelity |<ideal|noisy>|^2 over `trajectories` runs starting
/// from |0..0>. For small p this tracks the depolarizing prediction
/// (1 - p)^(total touched-qubit count) — the exponential fidelity decay
/// that random-circuit benchmarking measures on hardware.
Real average_noisy_fidelity(const Circuit& circuit, const NoiseModel& noise,
                            int trajectories, Rng& rng,
                            const ApplyOptions& options = {});

}  // namespace quasar
