/// \file simd.hpp
/// \brief Internal interface to the compiled SIMD kernel backends.
///
/// Not part of the public API; tests include it to differential-test each
/// compiled backend against the scalar oracle.
#pragma once

#include "core/types.hpp"
#include "kernels/prepared_gate.hpp"

namespace quasar::detail {

/// True if an AVX-512 (resp. AVX2+FMA) backend was compiled in.
bool have_avx512();
bool have_avx2();

/// Applies `gate` with the AVX-512 backend. Returns false when the gate
/// shape is not supported by this backend (caller falls back to scalar):
/// k = 1 with bit-location < 2, or k outside [1, 8].
/// Precondition: have_avx512().
bool apply_gate_avx512(Amplitude* state, int num_qubits,
                       const PreparedGate& gate, int num_threads,
                       int block_rows);

/// Same for the AVX2 backend (k = 1 needs bit-location >= 1).
bool apply_gate_avx2(Amplitude* state, int num_qubits,
                     const PreparedGate& gate, int num_threads,
                     int block_rows);

}  // namespace quasar::detail
