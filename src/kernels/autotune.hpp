/// \file autotune.hpp
/// \brief Kernel auto-tuning: the benchmarking feedback loop of Sec. 3.2.
///
/// The paper generates kernel variants and picks the register-blocking
/// factor by benchmarking. Here the variants are template instantiations
/// parameterized by the block-rows count; autotune_kernels() times each
/// variant on a scratch state and records the winner per gate width k.
#pragma once

#include <vector>

namespace quasar {

/// Tunable parameters of the k-qubit kernel.
struct KernelConfig {
  /// Output-row block size in SIMD vectors (accumulator count). 0 = all
  /// rows at once (no blocking).
  int block_rows = 0;
  /// True once set by the autotuner (otherwise heuristic default).
  bool tuned = false;
};

/// Mutable per-k configuration used by apply_gate when ApplyOptions does
/// not override it. k in [1, 12].
KernelConfig& kernel_config(int k);

/// Result row from one autotuning measurement.
struct AutotuneResult {
  int k = 0;
  int block_rows = 0;
  double gflops = 0.0;
  bool selected = false;
};

/// Benchmarks the block-rows variants for k in [2, max_k] on a scratch
/// state of `num_qubits` qubits and installs the winners into
/// kernel_config(). Returns all measurements (for reporting). Thread
/// count 0 means the OpenMP default.
std::vector<AutotuneResult> autotune_kernels(int num_qubits = 22,
                                             int max_k = 6,
                                             int num_threads = 0);

}  // namespace quasar
