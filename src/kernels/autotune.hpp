/// \file autotune.hpp
/// \brief Kernel auto-tuning: the benchmarking feedback loop of Sec. 3.2.
///
/// The paper generates kernel variants and picks the register-blocking
/// factor by benchmarking. Here the variants are template instantiations
/// parameterized by the block-rows count; autotune_kernels() times each
/// variant on a scratch state and records the winner per gate width k.
#pragma once

#include <vector>

namespace quasar {

/// Tunable parameters of the k-qubit kernel.
struct KernelConfig {
  /// Output-row block size in SIMD vectors (accumulator count). 0 = all
  /// rows at once (no blocking).
  int block_rows = 0;
  /// True once set by the autotuner (otherwise heuristic default).
  bool tuned = false;
};

/// Mutable per-k configuration used by apply_gate when ApplyOptions does
/// not override it. k in [1, 12].
KernelConfig& kernel_config(int k);

/// Result row from one autotuning measurement.
struct AutotuneResult {
  int k = 0;
  int block_rows = 0;
  double gflops = 0.0;
  bool selected = false;
};

/// Benchmarks the block-rows variants for k in [2, max_k] on a scratch
/// state of `num_qubits` qubits and installs the winners into
/// kernel_config(). Returns all measurements (for reporting). Thread
/// count 0 means the OpenMP default.
std::vector<AutotuneResult> autotune_kernels(int num_qubits = 22,
                                             int max_k = 6,
                                             int num_threads = 0);

/// Tunable parameters of the cache-blocked run executor
/// (kernels/block_apply.hpp).
struct BlockRunConfig {
  /// Block exponent b: runs sweep the state in 2^b-amplitude blocks
  /// (default 15 = 512 KiB, sized for a private L2).
  int block_exponent = 15;
  /// Minimum run length worth a blocked sweep.
  int min_run_length = 2;
  /// True once set by autotune_blocking().
  bool tuned = false;
};

/// Mutable blocked-run configuration used when ApplyOptions does not
/// override it.
BlockRunConfig& block_run_config();

/// Result row from one blocked-run tuning measurement.
struct BlockTuneResult {
  int block_exponent = 0;
  /// Effective per-run sweep rate: one read + write of the state divided
  /// by the time to apply the whole synthetic run.
  double gbps = 0.0;
  bool selected = false;
};

/// Benchmarks the block exponent on a synthetic low-location gate run
/// over a 2^num_qubits scratch state, installs the winner (and a timed
/// min-run-length cutoff) into block_run_config(), and returns all
/// measurements. Thread count 0 means the OpenMP default.
std::vector<BlockTuneResult> autotune_blocking(int num_qubits = 24,
                                               int num_threads = 0);

}  // namespace quasar
