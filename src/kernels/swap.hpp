/// \file swap.hpp
/// \brief Dedicated bit-location swap kernels.
///
/// Swapping two bit-locations of the state index is a pure data movement
/// (no arithmetic); the multi-node layer uses these local swaps to move
/// the qubits it wants to exchange into the highest local bit-locations
/// before the all-to-all, and to restore data locality afterwards
/// (paper Sec. 3.4, last paragraph).
#pragma once

#include <vector>

#include "core/types.hpp"

namespace quasar {

/// Swaps bit-locations p and q of the state index, in place.
/// Equivalent to applying a SWAP gate to (p, q) but with no arithmetic.
void apply_bit_swap(Amplitude* state, int num_qubits, int p, int q,
                    int num_threads = 0);

/// Applies a general bit-location permutation: output index bit j takes
/// input index bit perm[j]. Decomposed into transpositions, each executed
/// with apply_bit_swap. Returns the number of pairwise swap sweeps used.
int apply_bit_permutation(Amplitude* state, int num_qubits,
                          const std::vector<int>& perm, int num_threads = 0);

}  // namespace quasar
