/// \file permute.hpp
/// \brief Single-sweep fused bit-location permutation kernel.
///
/// An arbitrary permutation of bit-locations is realized as ONE in-place
/// pass over the state instead of a chain of pairwise `apply_bit_swap`
/// sweeps: the index space is cut into contiguous "bricks" of 2^b
/// amplitudes (b = number of fixed low bit-locations), bricks move along
/// the cycles of the induced brick-index permutation, and each cycle is
/// rotated in place with a small per-thread bounce chunk. An optional
/// scalar phase is folded into the same pass, so flushing a deferred
/// global phase costs no extra sweep (paper Sec. 3.5).
///
/// The core is templated on the complex type so the double- and
/// single-precision engines share one implementation.
#pragma once

#include <omp.h>

#include <cstring>
#include <vector>

#include "core/aligned.hpp"
#include "core/bits.hpp"
#include "core/error.hpp"
#include "core/types.hpp"

namespace quasar {

/// Execution plan for one fused permutation sweep. Built once per
/// permutation with plan_bit_permutation() and reusable across ranks
/// (every rank of a virtual cluster shares the same local permutation).
struct PermutePlan {
  int num_qubits = 0;
  /// True iff the permutation moves nothing (a pure phase sweep at most).
  bool identity = true;
  /// Number of contiguous low bit-locations left fixed; amplitudes move
  /// in contiguous bricks of 2^brick_bits.
  int brick_bits = 0;
  /// Number of brick slots: 2^(num_qubits - brick_bits).
  Index num_slots = 0;
  /// Slot bits that stay in place (mask over the slot index).
  Index fixed_mask = 0;
  /// Moved slot bits: destination position j ...
  std::vector<int> moved_positions;
  /// ... takes the source bit moved_sources[i] (= perm[j+b]-b).
  std::vector<int> moved_sources;

  /// Cache-blocked tile path, built when low bit-locations move (small
  /// brick_bits would degrade the cycle path to tiny strided copies).
  /// Sorted bit positions the tile spans: every moved location plus the
  /// contiguous low pad [0, tile_low_bits).
  std::vector<int> tile_positions;
  /// Low contiguous bits of the tile: amplitudes enter and leave the
  /// scratch buffer in runs of 2^tile_low_bits.
  int tile_low_bits = 0;
  /// Dense within-tile source lookup: tile_table[d] is the tile-dense
  /// source index whose amplitude lands at tile-dense destination d.
  std::vector<Index> tile_table;
  /// Memory offset of run h relative to the tile base (the scatter of h
  /// over the tile's high positions).
  std::vector<Index> tile_run_offsets;
};

/// Validates `perm` (output index bit j takes input index bit perm[j],
/// the apply_bit_permutation convention) and builds the sweep plan.
PermutePlan plan_bit_permutation(int num_qubits,
                                 const std::vector<int>& perm);

/// Applies a general bit-location permutation and an optional scalar
/// phase to the state in ONE in-place sweep. Drop-in replacement for
/// apply_bit_permutation (same index convention); `scratch_bytes` bounds
/// the per-thread bounce chunk used to rotate brick cycles.
void apply_fused_bit_permutation(
    Amplitude* state, int num_qubits, const std::vector<int>& perm,
    Amplitude phase = Amplitude{1.0, 0.0}, int num_threads = 0,
    std::size_t scratch_bytes = std::size_t{1} << 20);

namespace detail {

/// Source slot whose brick lands at slot `s` (sigma in the plan's cycle
/// decomposition): gather the moved destination bits into their sources.
inline Index permute_source_slot(const PermutePlan& plan, Index s) noexcept {
  Index src = s & plan.fixed_mask;
  for (std::size_t i = 0; i < plan.moved_positions.size(); ++i) {
    src |= static_cast<Index>(get_bit(s, plan.moved_positions[i]))
           << plan.moved_sources[i];
  }
  return src;
}

/// The single-sweep core, shared by the fp64 and fp32 kernels.
///
/// Parallelization: threads scan the slot space; the thread that owns the
/// smallest slot of a cycle ("leader") rotates the whole cycle. Distinct
/// cycles touch disjoint bricks, so no synchronization is needed. Bricks
/// larger than the scratch chunk are rotated column-chunk by column-chunk
/// (the SIMD-friendly blocked form: every move is a contiguous memcpy or
/// a vectorizable multiply-copy).
template <typename Complex>
void run_bit_permutation(Complex* state, const PermutePlan& plan,
                         Complex phase, int num_threads,
                         std::size_t scratch_bytes) {
  const bool has_phase = phase != Complex(1);
  const Index size = index_pow2(plan.num_qubits);
  int threads = num_threads > 0 ? num_threads : omp_get_max_threads();

  if (plan.identity) {
    if (!has_phase) return;
    if (size < static_cast<Index>(threads)) threads = 1;
#pragma omp parallel for schedule(static) num_threads(threads)
    for (std::int64_t i = 0; i < static_cast<std::int64_t>(size); ++i) {
      state[i] *= phase;
    }
    return;
  }

  // Cache-blocked tile path: when low bit-locations move, the brick
  // decomposition below degenerates to tiny strided copies (one cache
  // line fetched per 16-byte move). Instead gather each tile -- the
  // subspace spanned by the moved locations plus a contiguous low pad --
  // into dense per-thread scratch with run-sized memcpys, permute through
  // the precomputed lookup while everything is cache-resident, and
  // scatter back contiguous. Two full-bandwidth passes regardless of
  // which bit-locations move. Tiles are disjoint and map onto
  // themselves, so the sweep stays in place and embarrassingly parallel.
  if (!plan.tile_table.empty() &&
      plan.tile_table.size() * sizeof(Complex) <= scratch_bytes) {
    const int u = static_cast<int>(plan.tile_positions.size());
    const Index tile = Index{1} << u;
    const Index run = Index{1} << plan.tile_low_bits;
    const Index runs = tile >> plan.tile_low_bits;
    const IndexExpander rest(plan.tile_positions);
    const Index num_tiles = size >> u;
    if (static_cast<Index>(threads) > num_tiles) {
      threads = static_cast<int>(num_tiles);
    }
#pragma omp parallel num_threads(threads)
    {
      AlignedVector<Complex> scratch(tile);
      const Index* table = plan.tile_table.data();
      const Index* offsets = plan.tile_run_offsets.data();
#pragma omp for schedule(static)
      for (std::int64_t ti = 0; ti < static_cast<std::int64_t>(num_tiles);
           ++ti) {
        const Index base = rest.expand(static_cast<Index>(ti));
        for (Index h = 0; h < runs; ++h) {
          std::memcpy(scratch.data() + h * run, state + base + offsets[h],
                      run * sizeof(Complex));
        }
        for (Index h = 0; h < runs; ++h) {
          Complex* dst = state + base + offsets[h];
          const Index* row = table + h * run;
          if (has_phase) {
            for (Index i = 0; i < run; ++i) dst[i] = scratch[row[i]] * phase;
          } else {
            for (Index i = 0; i < run; ++i) dst[i] = scratch[row[i]];
          }
        }
      }
    }
    return;
  }

  const Index brick = index_pow2(plan.brick_bits);
  const Index slots = plan.num_slots;
  Index chunk = brick;
  const Index scratch_amps = scratch_bytes / sizeof(Complex);
  if (scratch_amps >= 1 && chunk > scratch_amps) {
    chunk = Index{1} << ilog2(scratch_amps);
  } else if (scratch_amps == 0) {
    chunk = 1;
  }
  if (static_cast<Index>(threads) > slots) {
    threads = static_cast<int>(slots);
  }

#pragma omp parallel num_threads(threads)
  {
    AlignedVector<Complex> bounce(chunk);
#pragma omp for schedule(dynamic, 64)
    for (std::int64_t si = 0; si < static_cast<std::int64_t>(slots); ++si) {
      const Index s = static_cast<Index>(si);
      const Index first = permute_source_slot(plan, s);
      if (first == s) {
        if (has_phase) {
          Complex* p = state + s * brick;
          for (Index i = 0; i < brick; ++i) p[i] *= phase;
        }
        continue;
      }
      // Leader check: walk the cycle; any smaller slot owns it instead.
      bool leader = true;
      for (Index t = first; t != s; t = permute_source_slot(plan, t)) {
        if (t < s) {
          leader = false;
          break;
        }
      }
      if (!leader) continue;
      // Rotate the cycle in place: new[c] = old[sigma(c)] * phase. The
      // leader's brick is saved in the bounce chunk and written last.
      for (Index off = 0; off < brick; off += chunk) {
        std::memcpy(bounce.data(), state + s * brick + off,
                    chunk * sizeof(Complex));
        Index c = s;
        for (;;) {
          const Index next = permute_source_slot(plan, c);
          Complex* dst = state + c * brick + off;
          if (next == s) {
            if (has_phase) {
              for (Index i = 0; i < chunk; ++i) dst[i] = bounce[i] * phase;
            } else {
              std::memcpy(dst, bounce.data(), chunk * sizeof(Complex));
            }
            break;
          }
          const Complex* src = state + next * brick + off;
          if (has_phase) {
            for (Index i = 0; i < chunk; ++i) dst[i] = src[i] * phase;
          } else {
            std::memcpy(dst, src, chunk * sizeof(Complex));
          }
          c = next;
        }
      }
    }
  }
}

}  // namespace detail

}  // namespace quasar
