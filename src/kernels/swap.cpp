#include "kernels/swap.hpp"

#include <omp.h>

#include <utility>
#include <vector>

#include "core/bits.hpp"
#include "core/error.hpp"
#include "kernels/apply.hpp"

namespace quasar {

void apply_bit_swap(Amplitude* state, int num_qubits, int p, int q,
                    int num_threads) {
  QUASAR_CHECK(p >= 0 && p < num_qubits && q >= 0 && q < num_qubits && p != q,
               "apply_bit_swap: invalid bit-locations");
  if (p > q) std::swap(p, q);
  // Only indices with bit p != bit q move; iterate over the other n-2
  // bits and swap the (p=1,q=0) amplitude with the (p=0,q=1) one.
  const IndexExpander expander(std::vector<int>{p, q});
  const Index outer = index_pow2(num_qubits - 2);
  const Index off_p = index_pow2(p);
  const Index off_q = index_pow2(q);
  const int threads = detail::resolve_threads(num_threads, outer);

#pragma omp parallel for schedule(static) num_threads(threads)
  for (std::int64_t i = 0; i < static_cast<std::int64_t>(outer); ++i) {
    const Index base = expander.expand(static_cast<Index>(i));
    std::swap(state[base + off_p], state[base + off_q]);
  }
}

int apply_bit_permutation(Amplitude* state, int num_qubits,
                          const std::vector<int>& perm, int num_threads) {
  QUASAR_CHECK(static_cast<int>(perm.size()) == num_qubits,
               "apply_bit_permutation: permutation size mismatch");
  std::vector<bool> seen(num_qubits, false);
  for (int p : perm) {
    QUASAR_CHECK(p >= 0 && p < num_qubits && !seen[p],
                 "apply_bit_permutation: not a permutation");
    seen[p] = true;
  }
  // current[j] = which input bit currently lives at location j.
  std::vector<int> current(num_qubits);
  for (int j = 0; j < num_qubits; ++j) current[j] = j;
  std::vector<int> location(num_qubits);  // inverse of current
  for (int j = 0; j < num_qubits; ++j) location[j] = j;

  int swaps = 0;
  for (int j = 0; j < num_qubits; ++j) {
    const int want = perm[j];
    if (current[j] == want) continue;
    const int src = location[want];
    apply_bit_swap(state, num_qubits, j, src, num_threads);
    std::swap(current[j], current[src]);
    location[current[j]] = j;
    location[current[src]] = src;
    ++swaps;
  }
  return swaps;
}

}  // namespace quasar
