/// \file dispatch.cpp
/// \brief Backend selection for gate application.
#include "core/error.hpp"
#include "kernels/apply.hpp"
#include "kernels/autotune.hpp"
#include "kernels/simd.hpp"

namespace quasar {

const char* simd_backend_name() {
  if (detail::have_avx512()) return "avx512";
  if (detail::have_avx2()) return "avx2";
  return "scalar";
}

int simd_complex_width() {
  if (detail::have_avx512()) return 4;
  if (detail::have_avx2()) return 2;
  return 1;
}

void apply_gate(Amplitude* state, int num_qubits, const PreparedGate& gate,
                const ApplyOptions& options) {
  QUASAR_CHECK(state != nullptr, "apply_gate: null state");
  QUASAR_CHECK(gate.k >= 1 && gate.k <= num_qubits,
               "apply_gate: gate does not fit the state");
  QUASAR_CHECK(gate.qubits.back() < num_qubits,
               "apply_gate: bit-location out of range");

  // Phase-only gates never need the dense sweep (paper Sec. 3.5).
  if (gate.diagonal) {
    apply_diagonal(state, num_qubits, gate, options);
    return;
  }

  // A 1-qubit gate on bit-location 0 or 1 defeats both SIMD shapes
  // (strides below the vector width). Embed it as a 2-qubit gate on
  // locations {0, 1} — identity on the spectator — which the contiguous
  // GEMV path handles at full speed.
  if (gate.k == 1 && options.backend != KernelBackend::kScalar &&
      num_qubits >= 2 &&
      index_pow2(gate.qubits[0]) < static_cast<Index>(simd_complex_width())) {
    if (gate.widened) {  // prepare-once cache (built by prepare_gate)
      apply_gate(state, num_qubits, *gate.widened, options);
    } else {  // hand-assembled PreparedGate: widen on the fly
      const PreparedGate widened =
          prepare_gate(gate.matrix.embed(2, {gate.qubits[0]}), {0, 1});
      apply_gate(state, num_qubits, widened, options);
    }
    return;
  }

  const int block_rows = options.block_rows > 0
                             ? options.block_rows
                             : kernel_config(gate.k).block_rows;

  switch (options.backend) {
    case KernelBackend::kScalar:
      apply_gate_scalar(state, num_qubits, gate, options.num_threads);
      return;
    case KernelBackend::kSimd:
      QUASAR_CHECK(detail::have_avx512() || detail::have_avx2(),
                   "no SIMD backend was compiled in");
      [[fallthrough]];
    case KernelBackend::kAuto: {
      bool done = false;
      if (detail::have_avx512()) {
        done = detail::apply_gate_avx512(state, num_qubits, gate,
                                         options.num_threads, block_rows);
      } else if (detail::have_avx2()) {
        done = detail::apply_gate_avx2(state, num_qubits, gate,
                                       options.num_threads, block_rows);
      }
      if (!done) {
        apply_gate_scalar(state, num_qubits, gate, options.num_threads);
      }
      return;
    }
  }
}

}  // namespace quasar
