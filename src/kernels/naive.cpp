#include "kernels/naive.hpp"

#include <omp.h>

#include "core/bits.hpp"
#include "core/error.hpp"
#include "kernels/apply.hpp"

namespace quasar {

void apply_single_qubit_two_vector(const Amplitude* in, Amplitude* out,
                                   int num_qubits, const GateMatrix& gate,
                                   int qubit, int num_threads) {
  QUASAR_CHECK(gate.num_qubits() == 1, "expected a single-qubit gate");
  QUASAR_CHECK(qubit >= 0 && qubit < num_qubits, "qubit out of range");
  const Index size = index_pow2(num_qubits);
  const Index mask = index_pow2(qubit);
  const Amplitude m00 = gate.at(0, 0), m01 = gate.at(0, 1);
  const Amplitude m10 = gate.at(1, 0), m11 = gate.at(1, 1);
  const int threads = detail::resolve_threads(num_threads, size);

#pragma omp parallel for schedule(static) num_threads(threads)
  for (std::int64_t j = 0; j < static_cast<std::int64_t>(size); ++j) {
    const Index idx = static_cast<Index>(j);
    const Index partner = idx ^ mask;
    if (idx & mask) {
      out[idx] = m10 * in[partner] + m11 * in[idx];
    } else {
      out[idx] = m00 * in[idx] + m01 * in[partner];
    }
  }
}

void apply_single_qubit_inplace_naive(Amplitude* state, int num_qubits,
                                      const GateMatrix& gate, int qubit,
                                      int num_threads) {
  QUASAR_CHECK(gate.num_qubits() == 1, "expected a single-qubit gate");
  QUASAR_CHECK(qubit >= 0 && qubit < num_qubits, "qubit out of range");
  const Index pairs = index_pow2(num_qubits - 1);
  const Index stride = index_pow2(qubit);
  const Amplitude m00 = gate.at(0, 0), m01 = gate.at(0, 1);
  const Amplitude m10 = gate.at(1, 0), m11 = gate.at(1, 1);
  const int threads = detail::resolve_threads(num_threads, pairs);

#pragma omp parallel for schedule(static) num_threads(threads)
  for (std::int64_t p = 0; p < static_cast<std::int64_t>(pairs); ++p) {
    const Index pi = static_cast<Index>(p);
    const Index i0 = ((pi & ~(stride - 1)) << 1) | (pi & (stride - 1));
    const Index i1 = i0 | stride;
    const Amplitude a = state[i0], b = state[i1];
    state[i0] = m00 * a + m01 * b;
    state[i1] = m10 * a + m11 * b;
  }
}

}  // namespace quasar
