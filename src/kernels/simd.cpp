/// \file simd.cpp
/// \brief Explicitly vectorized k-qubit gate kernels (paper Sec. 3.2).
///
/// The complex multiply-accumulate is implemented with the paper's
/// instruction re-ordering, Eqs. (2)/(3): with the matrix pre-expanded
/// into sign-folded arrays, each complex MAC is exactly two FMAs and the
/// only shuffle is one in-register re/im swap per loaded state vector,
/// amortized over all 2^k uses (the paper: "v_l can be permuted once upon
/// loading ... as it is re-used for 2^k such complex multiplications").
///
/// Two kernel shapes:
///  - k = 1 strided kernel: vectorizes across consecutive outer indices;
///    requires the gate bit-location >= log2(W) so W consecutive
///    amplitudes share the same gate bit.
///  - general k kernel: gathers the 2^k amplitudes into an aligned
///    temporary, performs a register-resident column-major GEMV using the
///    FMA expansion, and scatters back. Register blocking over output
///    rows (block_rows accumulators) mirrors the paper's blocking, with
///    the block size chosen by the autotuner.
#include "kernels/simd.hpp"

#include <immintrin.h>
#include <omp.h>

#include <algorithm>
#include <cstring>

#include "core/error.hpp"
#include "kernels/apply.hpp"

namespace quasar::detail {

namespace {

/// Copies the 2^k gate-local amplitudes between the state vector and a
/// contiguous temporary: bulk memcpy for contiguous runs, direct
/// assignments for scattered singles (a libc memcpy call per 16 bytes
/// costs more than the copy).
inline void gather(const Amplitude* state, Index base, const Index* offsets,
                   Index dim, Index run, Amplitude* tmp) {
  if (run == 1) {
    for (Index t = 0; t < dim; ++t) tmp[t] = state[base + offsets[t]];
    return;
  }
  for (Index t = 0; t < dim; t += run) {
    std::memcpy(tmp + t, state + base + offsets[t],
                run * sizeof(Amplitude));
  }
}

inline void scatter(Amplitude* state, Index base, const Index* offsets,
                    Index dim, Index run, const Amplitude* tmp) {
  if (run == 1) {
    for (Index t = 0; t < dim; ++t) state[base + offsets[t]] = tmp[t];
    return;
  }
  for (Index t = 0; t < dim; t += run) {
    std::memcpy(state + base + offsets[t], tmp + t,
                run * sizeof(Amplitude));
  }
}

}  // namespace

#if defined(__AVX2__) && defined(__FMA__)

namespace {

struct Avx2Traits {
  using Vec = __m256d;
  /// Complex<double> lanes per vector.
  static constexpr int kWidth = 2;
  static Vec load(const double* p) { return _mm256_load_pd(p); }
  static void store(double* p, Vec v) { _mm256_store_pd(p, v); }
  static Vec set1(double x) { return _mm256_set1_pd(x); }
  static Vec zero() { return _mm256_setzero_pd(); }
  static Vec fmadd(Vec a, Vec b, Vec c) { return _mm256_fmadd_pd(a, b, c); }
  /// Swaps re/im within each complex lane.
  static Vec swap_reim(Vec v) { return _mm256_permute_pd(v, 0x5); }
  /// Repeats the pair (a, b) across all complex lanes.
  static Vec pair(double a, double b) { return _mm256_setr_pd(a, b, a, b); }
};

}  // namespace

#endif  // __AVX2__ && __FMA__

#if defined(__AVX512F__) && defined(__AVX512DQ__)

namespace {

struct Avx512Traits {
  using Vec = __m512d;
  static constexpr int kWidth = 4;
  static Vec load(const double* p) { return _mm512_load_pd(p); }
  static void store(double* p, Vec v) { _mm512_store_pd(p, v); }
  static Vec set1(double x) { return _mm512_set1_pd(x); }
  static Vec zero() { return _mm512_setzero_pd(); }
  static Vec fmadd(Vec a, Vec b, Vec c) { return _mm512_fmadd_pd(a, b, c); }
  static Vec swap_reim(Vec v) { return _mm512_permute_pd(v, 0x55); }
  static Vec pair(double a, double b) {
    return _mm512_setr_pd(a, b, a, b, a, b, a, b);
  }
};

}  // namespace

#endif  // __AVX512F__ && __AVX512DQ__

namespace {

/// k = 1 kernel, vectorized across outer indices. Gate bit-location q must
/// satisfy 2^q >= Traits::kWidth. For each vector of W consecutive "low"
/// amplitudes a and their stride-2^q partners b:
///   a' = m00 a + m01 b,  b' = m10 a + m11 b
/// with each complex scalar-times-vector done as two FMAs using the
/// pre-folded (Re m) broadcast and (-Im m, Im m) pair vectors.
template <typename Traits>
void apply_k1(Amplitude* state, int num_qubits, const PreparedGate& gate,
              int num_threads) {
  using Vec = typename Traits::Vec;
  constexpr int kW = Traits::kWidth;
  const int q = gate.qubits[0];
  const Index stride = index_pow2(q);
  const Index pairs = index_pow2(num_qubits - 1);
  const GateMatrix& m = gate.matrix;

  const Vec m00r = Traits::set1(m.at(0, 0).real());
  const Vec m01r = Traits::set1(m.at(0, 1).real());
  const Vec m10r = Traits::set1(m.at(1, 0).real());
  const Vec m11r = Traits::set1(m.at(1, 1).real());
  const Vec m00i = Traits::pair(-m.at(0, 0).imag(), m.at(0, 0).imag());
  const Vec m01i = Traits::pair(-m.at(0, 1).imag(), m.at(0, 1).imag());
  const Vec m10i = Traits::pair(-m.at(1, 0).imag(), m.at(1, 0).imag());
  const Vec m11i = Traits::pair(-m.at(1, 1).imag(), m.at(1, 1).imag());

  double* const data = reinterpret_cast<double*>(state);
  const Index chunks = pairs / kW;
  const int threads = resolve_threads(num_threads, chunks);

#pragma omp parallel for schedule(static) num_threads(threads)
  for (std::int64_t ci = 0; ci < static_cast<std::int64_t>(chunks); ++ci) {
    const Index p = static_cast<Index>(ci) * kW;
    const Index i0 = ((p & ~(stride - 1)) << 1) | (p & (stride - 1));
    double* pa = data + 2 * i0;
    double* pb = data + 2 * (i0 + stride);
    const Vec va = Traits::load(pa);
    const Vec vb = Traits::load(pb);
    const Vec vas = Traits::swap_reim(va);
    const Vec vbs = Traits::swap_reim(vb);
    Vec outa = Traits::fmadd(va, m00r, Traits::zero());
    outa = Traits::fmadd(vas, m00i, outa);
    outa = Traits::fmadd(vb, m01r, outa);
    outa = Traits::fmadd(vbs, m01i, outa);
    Vec outb = Traits::fmadd(va, m10r, Traits::zero());
    outb = Traits::fmadd(vas, m10i, outb);
    outb = Traits::fmadd(vb, m11r, outb);
    outb = Traits::fmadd(vbs, m11i, outb);
    Traits::store(pa, outa);
    Traits::store(pb, outb);
  }
}

/// Fully-contiguous fast path: when the gate occupies bit-locations
/// 0..k-1, the 2^k gate-local amplitudes are consecutive in memory and
/// all output rows fit in registers, so the GEMV reads and writes the
/// state directly — no gather/scatter, no temporaries. This is the
/// common case after the qubit-mapping optimization (Sec. 3.6.2) pushes
/// busy qubits to low-order bit-locations.
template <typename Traits>
void apply_gemv_direct(Amplitude* state, int num_qubits,
                       const PreparedGate& gate, int num_threads) {
  using Vec = typename Traits::Vec;
  constexpr int kW = Traits::kWidth;
  constexpr Index kMaxAcc = 16;
  const Index dim = gate.dim;
  const Index row_vecs = dim / kW;
  QUASAR_ASSERT(row_vecs <= kMaxAcc);

  const Index outer = index_pow2(num_qubits - gate.k);
  const double* col_a = gate.col_a.data();
  const double* col_b = gate.col_b.data();
  const int threads = resolve_threads(num_threads, outer);

#pragma omp parallel for schedule(static) num_threads(threads)
  for (std::int64_t ii = 0; ii < static_cast<std::int64_t>(outer); ++ii) {
    double* const block =
        reinterpret_cast<double*>(state + static_cast<Index>(ii) * dim);
    Vec acc[kMaxAcc];
    for (Index b = 0; b < row_vecs; ++b) acc[b] = Traits::zero();
    for (Index col = 0; col < dim; ++col) {
      const Vec vr = Traits::set1(block[2 * col]);
      const Vec vi = Traits::set1(block[2 * col + 1]);
      const double* ca = col_a + col * dim * 2;
      const double* cb = col_b + col * dim * 2;
      for (Index b = 0; b < row_vecs; ++b) {
        acc[b] = Traits::fmadd(Traits::load(ca + b * 2 * kW), vr, acc[b]);
        acc[b] = Traits::fmadd(Traits::load(cb + b * 2 * kW), vi, acc[b]);
      }
    }
    // All inputs were consumed above; stores cannot clobber pending reads.
    for (Index b = 0; b < row_vecs; ++b) {
      Traits::store(block + b * 2 * kW, acc[b]);
    }
  }
}

/// General k kernel: gather -> register-blocked column GEMV -> scatter.
/// Requires dim >= Traits::kWidth. block_rows accumulators of W complex
/// each are live at a time; the matrix columns stream through L1.
template <typename Traits>
void apply_gemv(Amplitude* state, int num_qubits, const PreparedGate& gate,
                int num_threads, int block_rows) {
  using Vec = typename Traits::Vec;
  constexpr int kW = Traits::kWidth;
  const Index dim = gate.dim;
  const Index row_vecs = dim / kW;  // output row vectors per GEMV
  Index br = block_rows > 0 ? static_cast<Index>(block_rows) : row_vecs;
  if (br > row_vecs) br = row_vecs;
  // kMaxAcc bounds the compiler-visible accumulator array.
  constexpr Index kMaxAcc = 16;
  if (br > kMaxAcc) br = kMaxAcc;

  const Index outer = index_pow2(num_qubits - gate.k);
  const IndexExpander expander = gate.expander();
  const Index* offsets = gate.offsets.data();
  const Index run = gate.contig_run;
  const double* col_a = gate.col_a.data();
  const double* col_b = gate.col_b.data();
  const int threads = resolve_threads(num_threads, outer);

#pragma omp parallel num_threads(threads)
  {
    // Reusable per-thread workspace: gather target + GEMV output. Fetched
    // once per parallel region, not allocated per gate application.
    Amplitude* const tmp = gate_scratch(2 * dim);
    Amplitude* const out = tmp + dim;
    double* const tmpd = reinterpret_cast<double*>(tmp);
    double* const outd = reinterpret_cast<double*>(out);
#pragma omp for schedule(static)
    for (std::int64_t ii = 0; ii < static_cast<std::int64_t>(outer); ++ii) {
      const Index base = expander.expand(static_cast<Index>(ii));
      gather(state, base, offsets, dim, run, tmp);
      for (Index l0 = 0; l0 < row_vecs; l0 += br) {
        const Index nb = std::min(br, row_vecs - l0);
        Vec acc[kMaxAcc];
        for (Index b = 0; b < nb; ++b) acc[b] = Traits::zero();
        for (Index col = 0; col < dim; ++col) {
          const Vec vr = Traits::set1(tmpd[2 * col]);
          const Vec vi = Traits::set1(tmpd[2 * col + 1]);
          const double* ca = col_a + (col * dim + l0 * kW) * 2;
          const double* cb = col_b + (col * dim + l0 * kW) * 2;
          for (Index b = 0; b < nb; ++b) {
            acc[b] = Traits::fmadd(Traits::load(ca + b * 2 * kW), vr, acc[b]);
            acc[b] = Traits::fmadd(Traits::load(cb + b * 2 * kW), vi, acc[b]);
          }
        }
        for (Index b = 0; b < nb; ++b) {
          Traits::store(outd + (l0 + b) * 2 * kW, acc[b]);
        }
      }
      scatter(state, base, offsets, dim, run, out);
    }
  }
}

template <typename Traits>
bool apply_gate_impl(Amplitude* state, int num_qubits,
                     const PreparedGate& gate, int num_threads,
                     int block_rows) {
  constexpr int kW = Traits::kWidth;
  if (gate.k == 1) {
    if (index_pow2(gate.qubits[0]) < static_cast<Index>(kW)) return false;
    if (index_pow2(num_qubits - 1) < static_cast<Index>(kW)) return false;
    apply_k1<Traits>(state, num_qubits, gate, num_threads);
    return true;
  }
  if (gate.k < 1 || gate.k > 8) return false;
  if (gate.dim < static_cast<Index>(kW)) return false;
  const Index row_vecs = gate.dim / kW;
  const bool want_all_rows =
      block_rows <= 0 || static_cast<Index>(block_rows) >= row_vecs;
  if (gate.contig_run == gate.dim && want_all_rows && row_vecs <= 16) {
    apply_gemv_direct<Traits>(state, num_qubits, gate, num_threads);
  } else {
    apply_gemv<Traits>(state, num_qubits, gate, num_threads, block_rows);
  }
  return true;
}

}  // namespace

#if defined(__AVX512F__) && defined(__AVX512DQ__)
bool have_avx512() { return true; }
bool apply_gate_avx512(Amplitude* state, int num_qubits,
                       const PreparedGate& gate, int num_threads,
                       int block_rows) {
  return apply_gate_impl<Avx512Traits>(state, num_qubits, gate, num_threads,
                                       block_rows);
}
#else
bool have_avx512() { return false; }
bool apply_gate_avx512(Amplitude*, int, const PreparedGate&, int, int) {
  throw Error("AVX-512 backend was not compiled in");
}
#endif

#if defined(__AVX2__) && defined(__FMA__)
bool have_avx2() { return true; }
bool apply_gate_avx2(Amplitude* state, int num_qubits,
                     const PreparedGate& gate, int num_threads,
                     int block_rows) {
  return apply_gate_impl<Avx2Traits>(state, num_qubits, gate, num_threads,
                                     block_rows);
}
#else
bool have_avx2() { return false; }
bool apply_gate_avx2(Amplitude*, int, const PreparedGate&, int, int) {
  throw Error("AVX2 backend was not compiled in");
}
#endif

}  // namespace quasar::detail
