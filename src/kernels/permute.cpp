#include "kernels/permute.hpp"

#include <algorithm>
#include <bit>

namespace quasar {

namespace {

/// 64-amplitude contiguous runs: one run spans several cache lines in
/// both precisions, so gathers and scatters stream at full bandwidth.
constexpr int kTileLowBits = 6;
/// Largest tile the plan precomputes a dense lookup for (2^16 amplitudes
/// = 1 MiB of fp64 scratch, and the IndexExpander position cap).
constexpr int kMaxTileBits = 16;

/// Builds the cache-blocked tile fields of `plan` (see PermutePlan): the
/// tile spans every moved bit-location plus the low pad [0, w). Note that
/// {j : perm[j] != j} is closed under j -> perm[j], so all sources lie
/// inside the tile and each tile maps onto itself.
void build_tile_plan(PermutePlan& plan, const std::vector<int>& perm) {
  const int n = plan.num_qubits;
  const int w = std::min(kTileLowBits, n);
  std::vector<bool> in_tile(n, false);
  for (int j = 0; j < w; ++j) in_tile[j] = true;
  for (int j = 0; j < n; ++j) {
    if (perm[j] != j) in_tile[j] = true;
  }
  std::vector<int> positions;
  for (int j = 0; j < n; ++j) {
    if (in_tile[j]) positions.push_back(j);
  }
  const int u = static_cast<int>(positions.size());
  if (u > kMaxTileBits) return;  // fall back to the brick-cycle path

  std::vector<int> tile_bit_of(n, -1);
  for (int k = 0; k < u; ++k) tile_bit_of[positions[k]] = k;
  // Tile destination bit k takes the tile bit holding location
  // perm[positions[k]].
  std::vector<Index> bit_source(u);
  for (int k = 0; k < u; ++k) {
    bit_source[k] = Index{1} << tile_bit_of[perm[positions[k]]];
  }
  std::vector<Index> table(Index{1} << u);
  table[0] = 0;
  for (Index d = 1; d < static_cast<Index>(table.size()); ++d) {
    table[d] = table[d & (d - 1)] | bit_source[std::countr_zero(d)];
  }
  std::vector<Index> run_offsets(Index{1} << (u - w));
  for (Index h = 0; h < static_cast<Index>(run_offsets.size()); ++h) {
    Index offset = 0;
    for (int k = w; k < u; ++k) {
      offset |= static_cast<Index>(get_bit(h, k - w)) << positions[k];
    }
    run_offsets[h] = offset;
  }
  plan.tile_positions = std::move(positions);
  plan.tile_low_bits = w;
  plan.tile_table = std::move(table);
  plan.tile_run_offsets = std::move(run_offsets);
}

}  // namespace

PermutePlan plan_bit_permutation(int num_qubits,
                                 const std::vector<int>& perm) {
  QUASAR_CHECK(static_cast<int>(perm.size()) == num_qubits,
               "plan_bit_permutation: permutation size mismatch");
  std::vector<bool> seen(num_qubits, false);
  for (int p : perm) {
    QUASAR_CHECK(p >= 0 && p < num_qubits && !seen[p],
                 "plan_bit_permutation: not a permutation");
    seen[p] = true;
  }

  PermutePlan plan;
  plan.num_qubits = num_qubits;
  int b = 0;
  while (b < num_qubits && perm[b] == b) ++b;
  if (b == num_qubits) {
    plan.identity = true;
    plan.brick_bits = num_qubits;
    plan.num_slots = 1;
    return plan;
  }
  plan.identity = false;
  plan.brick_bits = b;
  const int slot_bits = num_qubits - b;
  plan.num_slots = index_pow2(slot_bits);
  for (int j = 0; j < slot_bits; ++j) {
    // perm[j + b] >= b because locations [0, b) map to themselves and
    // perm is a bijection.
    const int src = perm[j + b] - b;
    if (src == j) {
      plan.fixed_mask |= Index{1} << j;
    } else {
      plan.moved_positions.push_back(j);
      plan.moved_sources.push_back(src);
    }
  }
  if (b < kTileLowBits) build_tile_plan(plan, perm);
  return plan;
}

void apply_fused_bit_permutation(Amplitude* state, int num_qubits,
                                 const std::vector<int>& perm,
                                 Amplitude phase, int num_threads,
                                 std::size_t scratch_bytes) {
  const PermutePlan plan = plan_bit_permutation(num_qubits, perm);
  detail::run_bit_permutation(state, plan, phase, num_threads,
                              scratch_bytes);
}

}  // namespace quasar
