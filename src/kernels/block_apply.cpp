#include "kernels/block_apply.hpp"

#include <omp.h>

#include <algorithm>
#include <iterator>
#include <memory>

#include "check/invariant.hpp"
#include "core/error.hpp"
#include "kernels/autotune.hpp"
#include "obs/histogram.hpp"
#include "obs/names.hpp"
#include "obs/trace.hpp"

namespace quasar {

namespace {

/// Pre-resolved per-gate application plan for the block loop. Dense gates
/// dispatch through apply_gate on the block; diagonal gates get a split
/// index plan so locations >= b work too (the block's high bits select a
/// constant slice of the phase table).
struct GatePlanEntry {
  const PreparedGate* gate = nullptr;
  bool diagonal = false;
  /// Diagonal split: gate qubits >= b (phase-table high bits, constant
  /// per block) and the within-block enumeration of the qubits < b.
  std::vector<int> high_qubits;
  std::vector<Index> low_offsets;
  IndexExpander low_expander{std::vector<int>{}};
  Index low_outer = 0;  ///< 2^(b - low_k) bases per block
  Index dim_low = 0;    ///< 2^low_k phase entries per base
  int low_k = 0;
};

GatePlanEntry make_plan(const PreparedGate& gate, int b) {
  GatePlanEntry e;
  e.gate = &gate;
  e.diagonal = gate.diagonal;
  if (!gate.diagonal) return e;
  std::vector<int> low_qubits;
  for (int q : gate.qubits) {  // ascending, so low qubits come first
    (q < b ? low_qubits : e.high_qubits).push_back(q);
  }
  e.low_k = static_cast<int>(low_qubits.size());
  e.dim_low = index_pow2(e.low_k);
  e.low_offsets = make_gate_offsets(low_qubits);
  e.low_expander = IndexExpander(low_qubits);
  e.low_outer = index_pow2(b - e.low_k);
  return e;
}

/// Union-k cap for diagonal coalescing: a merged table of 2^12 entries
/// (64 KiB) still streams from L2 while a block is resident; beyond that
/// the table itself starts competing with the block for cache.
constexpr int kMaxMergedDiagonalQubits = 12;

/// Size of the sorted union of `a` and gate qubit list `b` (both
/// ascending), without materializing it.
std::size_t union_size(const std::vector<int>& a, const std::vector<int>& b) {
  std::size_t i = 0, j = 0, count = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] == b[j]) ++i, ++j;
    else if (a[i] < b[j]) ++i;
    else ++j;
    ++count;
  }
  return count + (a.size() - i) + (b.size() - j);
}

std::vector<int> sorted_union(const std::vector<int>& a,
                              const std::vector<int>& b) {
  std::vector<int> u;
  u.reserve(a.size() + b.size());
  std::set_union(a.begin(), a.end(), b.begin(), b.end(),
                 std::back_inserter(u));
  return u;
}

/// Replaces maximal consecutive spans of diagonal gates in `run` (capped
/// at kMaxMergedDiagonalQubits union qubits) with merged gates owned by
/// `storage`. Returns the number of in-block passes eliminated.
std::size_t coalesce_diagonal_spans(
    std::vector<const PreparedGate*>& run,
    std::vector<std::unique_ptr<PreparedGate>>& storage) {
  std::size_t saved = 0;
  std::vector<const PreparedGate*> out;
  out.reserve(run.size());
  std::size_t i = 0;
  while (i < run.size()) {
    if (!run[i]->diagonal) {
      out.push_back(run[i]);
      ++i;
      continue;
    }
    std::vector<int> qubits = run[i]->qubits;
    std::size_t j = i + 1;
    while (j < run.size() && run[j]->diagonal &&
           union_size(qubits, run[j]->qubits) <=
               static_cast<std::size_t>(kMaxMergedDiagonalQubits)) {
      qubits = sorted_union(qubits, run[j]->qubits);
      ++j;
    }
    if (j - i < 2) {
      out.push_back(run[i]);
    } else {
      storage.push_back(std::make_unique<PreparedGate>(
          merge_diagonal_gates(run.data() + i, j - i)));
      out.push_back(storage.back().get());
      saved += (j - i) - 1;
    }
    i = j;
  }
  run.swap(out);
  return saved;
}

/// Publishes a finished blocked-execution breakdown to the active trace
/// session's counter registry (no-op when tracing is disabled).
void publish_block_stats(const BlockRunStats& s) {
  if (!obs::enabled()) return;
  obs::count(obs::names::kBlockGates, static_cast<std::int64_t>(s.gates));
  obs::count(obs::names::kBlockRuns, static_cast<std::int64_t>(s.runs));
  obs::count(obs::names::kBlockRunGates, static_cast<std::int64_t>(s.run_gates));
  obs::count(obs::names::kBlockSweeps, static_cast<std::int64_t>(s.sweeps));
  obs::count(obs::names::kBlockHoisted, static_cast<std::int64_t>(s.hoisted));
  obs::count(obs::names::kBlockCoalesced, static_cast<std::int64_t>(s.coalesced));
}

}  // namespace

PreparedGate merge_diagonal_gates(const PreparedGate* const* gates,
                                  std::size_t count) {
  QUASAR_CHECK(count >= 1, "merge_diagonal_gates: empty list");
  std::vector<int> qubits;
  for (std::size_t g = 0; g < count; ++g) {
    QUASAR_CHECK(gates[g] != nullptr && gates[g]->diagonal,
                 "merge_diagonal_gates: gate is not diagonal");
    qubits = sorted_union(qubits, gates[g]->qubits);
  }
  QUASAR_CHECK(qubits.size() <= 20,
               "merge_diagonal_gates: merged table too large");
  PreparedGate merged;
  merged.k = static_cast<int>(qubits.size());
  merged.dim = index_pow2(merged.k);
  merged.qubits = qubits;
  merged.diagonal = true;
  merged.diag.assign(merged.dim, Amplitude{1.0, 0.0});
  merged.offsets = make_gate_offsets(qubits);
  for (std::size_t g = 0; g < count; ++g) {
    const PreparedGate& src = *gates[g];
    // Position of each source qubit within the merged qubit list (both
    // ascending): table bit t of the source maps to merged bit pos[t].
    std::vector<int> pos(src.qubits.size());
    for (std::size_t t = 0; t < src.qubits.size(); ++t) {
      pos[t] = static_cast<int>(
          std::lower_bound(qubits.begin(), qubits.end(), src.qubits[t]) -
          qubits.begin());
    }
    for (Index idx = 0; idx < merged.dim; ++idx) {
      Index sub = 0;
      for (std::size_t t = 0; t < pos.size(); ++t) {
        sub |= ((idx >> pos[t]) & Index{1}) << t;
      }
      merged.diag[idx] *= src.diag[sub];
    }
  }
  return merged;
}

bool block_run_eligible(const PreparedGate& gate, int block_exponent) {
  if (gate.diagonal) return true;
  const int last =
      gate.widened ? gate.widened->qubits.back() : gate.qubits.back();
  return last < block_exponent;
}

int effective_block_exponent(int num_qubits, const ApplyOptions& options) {
  const int b = options.block_exponent != 0 ? options.block_exponent
                                            : block_run_config().block_exponent;
  if (b < 2) return -1;               // negative/degenerate: disabled
  if (b > num_qubits - 2) return -1;  // fewer than 4 blocks: plain path
  return b;
}

int effective_min_run_length(const ApplyOptions& options) {
  const int m = options.min_run_length > 0
                    ? options.min_run_length
                    : block_run_config().min_run_length;
  return std::max(1, m);
}

std::vector<BlockPlanSegment> plan_gate_runs(
    const std::vector<GateShape>& shapes, bool reorder) {
  // Cap on deferred (solo) gates per segment: bounds how far a run gate
  // can be hoisted and keeps the disjointness test meaningful once the
  // deferred mask saturates.
  constexpr std::size_t kMaxDeferred = 16;
  std::vector<BlockPlanSegment> segments;
  BlockPlanSegment cur;
  std::uint64_t deferred_mask = 0;
  const auto flush = [&] {
    if (!cur.run.empty() || !cur.solo.empty()) {
      segments.push_back(std::move(cur));
    }
    cur = BlockPlanSegment{};
    deferred_mask = 0;
  };
  for (std::size_t i = 0; i < shapes.size(); ++i) {
    const GateShape& s = shapes[i];
    if (s.eligible && (s.qubit_mask & deferred_mask) == 0) {
      cur.run.push_back(i);
      continue;
    }
    cur.solo.push_back(i);
    if (!reorder) {
      flush();  // runs must stay consecutive: the segment ends here
      continue;
    }
    deferred_mask |= s.qubit_mask;
    if (cur.solo.size() >= kMaxDeferred) flush();
  }
  flush();
  return segments;
}

void apply_gate_run(Amplitude* state, int num_qubits,
                    const PreparedGate* const* gates, std::size_t count,
                    int block_exponent, const ApplyOptions& options,
                    Index base_index) {
  QUASAR_CHECK(state != nullptr, "apply_gate_run: null state");
  QUASAR_CHECK(count >= 1, "apply_gate_run: empty run");
  QUASAR_CHECK(block_exponent >= 2 && block_exponent <= num_qubits,
               "apply_gate_run: block exponent out of range");
  QUASAR_CHECK((base_index & (index_pow2(num_qubits) - 1)) == 0,
               "apply_gate_run: base index not segment-aligned");
  std::vector<GatePlanEntry> plans;
  plans.reserve(count);
  for (std::size_t g = 0; g < count; ++g) {
    QUASAR_CHECK(gates[g] != nullptr, "apply_gate_run: null gate");
    // Diagonal gates may reach above num_qubits when a base index pins
    // those bits; dense gates never can.
    QUASAR_CHECK(gates[g]->diagonal || gates[g]->qubits.back() < num_qubits,
                 "apply_gate_run: bit-location out of range");
    QUASAR_CHECK(block_run_eligible(*gates[g], block_exponent),
                 "apply_gate_run: gate not eligible at this block exponent");
    plans.push_back(make_plan(*gates[g], block_exponent));
  }

  // Inside the block loop every kernel runs on the calling thread; the
  // parallelism lives across blocks.
  ApplyOptions serial = options;
  serial.num_threads = 1;

  const int b = block_exponent;
  const Index block_size = index_pow2(b);
  const Index num_blocks = index_pow2(num_qubits - b);
  const int threads = detail::resolve_threads(options.num_threads, num_blocks);

#pragma omp parallel for schedule(static) num_threads(threads)
  for (std::int64_t bi = 0; bi < static_cast<std::int64_t>(num_blocks);
       ++bi) {
    const Index block_base = static_cast<Index>(bi) * block_size;
    Amplitude* const block = state + block_base;
    for (const GatePlanEntry& e : plans) {
      if (!e.diagonal) {
        apply_gate(block, b, *e.gate, serial);
        continue;
      }
      // Diagonal: phase-table index = (high bits from the absolute block
      // base) | (low bits enumerated within the block). The hi bits sit
      // above the low bits, so diag + hi is the block's contiguous table
      // slice; diagonal_multiply is the same compiled multiply the
      // full-state sweep uses, hence bit-identical. Folding base_index
      // in extends the same slicing to gate locations above num_qubits
      // (out-of-core segments, where those bits are the segment id).
      const Amplitude* const diag =
          e.gate->diag.data() +
          (gather_bits(base_index | block_base, e.high_qubits) << e.low_k);
      detail::diagonal_multiply_range(block, e.low_expander,
                                      e.low_offsets.data(), diag, e.dim_low,
                                      0, e.low_outer);
    }
  }
}

namespace {

/// One full-segment sweep of a single gate, honoring a base index: dense
/// gates go through apply_gate unchanged (their locations all sit below
/// num_qubits), diagonal gates whose table needs bits pinned by
/// `base_index` run one parallel diagonal sweep with the sliced table —
/// the same diagonal_multiply_range compile, so still bit-identical to
/// the full-state order.
void apply_gate_based(Amplitude* state, int num_qubits,
                      const PreparedGate& gate, const ApplyOptions& options,
                      Index base_index) {
  if (!gate.diagonal) {
    QUASAR_CHECK(gate.qubits.back() < num_qubits,
                 "apply_gates_blocked: dense bit-location out of range");
    apply_gate(state, num_qubits, gate, options);
    return;
  }
  if (base_index == 0 && gate.qubits.back() < num_qubits) {
    apply_gate(state, num_qubits, gate, options);
    return;
  }
  const GatePlanEntry e = make_plan(gate, num_qubits);
  const Amplitude* const diag =
      gate.diag.data() +
      (gather_bits(base_index, e.high_qubits) << e.low_k);
  const Index outer = e.low_outer;
  const int threads = detail::resolve_threads(options.num_threads, outer);
#pragma omp parallel num_threads(threads)
  {
    const Index tid = static_cast<Index>(omp_get_thread_num());
    const Index tc = static_cast<Index>(omp_get_num_threads());
    const Index chunk = (outer + tc - 1) / tc;
    const Index begin = std::min(outer, tid * chunk);
    const Index end = std::min(outer, begin + chunk);
    if (begin < end) {
      detail::diagonal_multiply_range(state, e.low_expander,
                                      e.low_offsets.data(), diag, e.dim_low,
                                      begin, end);
    }
  }
}

void apply_gates_blocked_impl(Amplitude* state, int num_qubits,
                              const PreparedGate* const* gates,
                              std::size_t count, const ApplyOptions& options,
                              BlockRunStats* stats, Index base_index) {
  BlockRunStats local;
  local.gates = count;
  const int b = effective_block_exponent(num_qubits, options);
  if (b < 0 || count == 0) {
    for (std::size_t g = 0; g < count; ++g) {
      apply_gate_based(state, num_qubits, *gates[g], options, base_index);
    }
    local.sweeps = count;
    publish_block_stats(local);
    if (stats) *stats = local;
    return;
  }

  std::vector<GateShape> shapes(count);
  for (std::size_t g = 0; g < count; ++g) {
    GateShape& s = shapes[g];
    s.eligible = block_run_eligible(*gates[g], b);
    const std::vector<int>& qs =
        (!gates[g]->diagonal && gates[g]->widened) ? gates[g]->widened->qubits
                                                   : gates[g]->qubits;
    for (int q : qs) {
      s.qubit_mask |= q < 64 ? (std::uint64_t{1} << q) : 0;
    }
  }

  const int min_run = effective_min_run_length(options);
  const std::vector<BlockPlanSegment> segments =
      plan_gate_runs(shapes, options.block_reorder);
  std::vector<const PreparedGate*> run_gates;
  std::vector<std::unique_ptr<PreparedGate>> merged_storage;
  for (const BlockPlanSegment& seg : segments) {
    if (static_cast<int>(seg.run.size()) >= min_run) {
      run_gates.clear();
      for (std::size_t g : seg.run) run_gates.push_back(gates[g]);
      if (options.merge_diagonals) {
        merged_storage.clear();
        local.coalesced += coalesce_diagonal_spans(run_gates, merged_storage);
      }
      QUASAR_OBS_SPAN("gate_run", "blocked_run", "gates",
                      static_cast<std::int64_t>(run_gates.size()));
      obs::ScopedLatency run_latency(obs::names::kBlockRunNs);
      apply_gate_run(state, num_qubits, run_gates.data(), run_gates.size(),
                     b, options, base_index);
      local.runs += 1;
      local.run_gates += seg.run.size();
      local.sweeps += 1;
    } else {
      for (std::size_t g : seg.run) {
        apply_gate_based(state, num_qubits, *gates[g], options, base_index);
      }
      local.sweeps += seg.run.size();
    }
    for (std::size_t g : seg.solo) {
      apply_gate_based(state, num_qubits, *gates[g], options, base_index);
    }
    local.sweeps += seg.solo.size();
    if (!seg.solo.empty()) {
      const std::size_t first_solo = seg.solo.front();
      for (std::size_t g : seg.run) local.hoisted += g > first_solo;
    }
  }
  publish_block_stats(local);
  if (stats) *stats = local;
}

}  // namespace

void apply_gates_blocked(Amplitude* state, int num_qubits,
                         const PreparedGate* const* gates, std::size_t count,
                         const ApplyOptions& options, BlockRunStats* stats,
                         Index base_index) {
  QUASAR_CHECK((base_index & (index_pow2(num_qubits) - 1)) == 0,
               "apply_gates_blocked: base index not segment-aligned");
  // Disabled guards cost exactly this one acquire-load + branch.
  if (!check::enabled()) {
    apply_gates_blocked_impl(state, num_qubits, gates, count, options, stats,
                             base_index);
    return;
  }
  const Index size = index_pow2(num_qubits);
  const Real norm_before = check::norm_squared(state, size);
  apply_gates_blocked_impl(state, num_qubits, gates, count, options, stats,
                           base_index);
  check::require_finite(state, size, "apply_gates_blocked");
  check::require_norm_preserved(check::norm_squared(state, size),
                                norm_before,
                                check::norm_tolerance(num_qubits, count),
                                "apply_gates_blocked");
}

}  // namespace quasar
