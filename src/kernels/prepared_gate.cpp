#include "kernels/prepared_gate.hpp"

#include <algorithm>
#include <numeric>

#include "core/error.hpp"
#include "kernels/apply.hpp"

namespace quasar {

PreparedGate prepare_gate(const GateMatrix& matrix,
                          const std::vector<int>& bit_locations) {
  QUASAR_CHECK(matrix.num_qubits() ==
                   static_cast<int>(bit_locations.size()),
               "prepare_gate: matrix arity must match bit-location count");
  QUASAR_CHECK(matrix.num_qubits() >= 1, "prepare_gate: empty gate");

  PreparedGate g;
  g.k = matrix.num_qubits();
  g.dim = index_pow2(g.k);

  // Sort bit-locations ascending and permute the matrix to match:
  // output gate-local qubit j carries input qubit order[j].
  std::vector<int> order(g.k);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    return bit_locations[a] < bit_locations[b];
  });
  g.qubits.resize(g.k);
  for (int j = 0; j < g.k; ++j) {
    g.qubits[j] = bit_locations[order[j]];
    if (j > 0) {
      QUASAR_CHECK(g.qubits[j] != g.qubits[j - 1],
                   "prepare_gate: bit-locations must be distinct");
    }
  }
  g.matrix = matrix.permute_qubits(order);
  g.offsets = make_gate_offsets(g.qubits);

  // Contiguity of the gather: count gate qubits occupying 0,1,2,...
  int low = 0;
  while (low < g.k && g.qubits[low] == low) ++low;
  g.contig_run = index_pow2(low);

  // Diagonal fast path.
  g.diagonal = g.matrix.is_diagonal();
  if (g.diagonal) {
    const auto d = g.matrix.diagonal();
    g.diag.assign(d.begin(), d.end());
  }

  // Column-major FMA expansion (see header).
  g.col_a.resize(g.dim * g.dim * 2);
  g.col_b.resize(g.dim * g.dim * 2);
  for (Index i = 0; i < g.dim; ++i) {    // column = input index
    for (Index l = 0; l < g.dim; ++l) {  // row = output index
      const Amplitude m = g.matrix.at(l, i);
      const Index e = (i * g.dim + l) * 2;
      g.col_a[e + 0] = m.real();
      g.col_a[e + 1] = m.imag();
      g.col_b[e + 0] = -m.imag();
      g.col_b[e + 1] = m.real();
    }
  }

  // Pre-widen the k = 1 low-location case once: a 1-qubit gate below the
  // SIMD vector width cannot use the strided 1-qubit kernel, so the
  // dispatcher applies an equivalent 2-qubit embedding on locations
  // {0, 1} instead. Building it here (immutably, shared) keeps the hot
  // loop free of per-application prepare_gate calls.
  if (g.k == 1 && !g.diagonal && simd_complex_width() > 1 &&
      index_pow2(g.qubits[0]) < static_cast<Index>(simd_complex_width())) {
    g.widened = std::make_shared<const PreparedGate>(
        prepare_gate(g.matrix.embed(2, {g.qubits[0]}), {0, 1}));
  }
  return g;
}

}  // namespace quasar
