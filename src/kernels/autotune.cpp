#include "kernels/autotune.hpp"

#include <array>

#include "core/aligned.hpp"
#include "core/error.hpp"
#include "core/rng.hpp"
#include "core/timing.hpp"
#include "gates/standard.hpp"
#include "kernels/apply.hpp"
#include "kernels/block_apply.hpp"

namespace quasar {

namespace {
constexpr int kMaxK = 12;

std::array<KernelConfig, kMaxK + 1>& config_table() {
  static std::array<KernelConfig, kMaxK + 1> table = [] {
    std::array<KernelConfig, kMaxK + 1> t{};
    for (auto& c : t) c = KernelConfig{};  // block_rows 0 = all rows
    return t;
  }();
  return table;
}

/// Random k-qubit unitary for timing (product of embedded SU(2)s and CZs,
/// dense enough to defeat any sparsity shortcuts).
GateMatrix random_dense_unitary(int k, Rng& rng) {
  GateMatrix u = GateMatrix::identity(k);
  for (int round = 0; round < 3; ++round) {
    for (int q = 0; q < k; ++q) {
      u = gates::random_su2(rng).embed(k, {q}) * u;
    }
    for (int q = 0; q + 1 < k; ++q) {
      u = gates::cz().embed(k, {q, q + 1}) * u;
    }
  }
  return u;
}
}  // namespace

KernelConfig& kernel_config(int k) {
  QUASAR_CHECK(k >= 1 && k <= kMaxK, "kernel_config: k out of range");
  return config_table()[k];
}

std::vector<AutotuneResult> autotune_kernels(int num_qubits, int max_k,
                                             int num_threads) {
  QUASAR_CHECK(num_qubits >= max_k + 2 && num_qubits <= 28,
               "autotune: scratch state must fit and exceed the gates");
  const Index size = index_pow2(num_qubits);
  AlignedVector<Amplitude> state(size, Amplitude{0.0, 0.0});
  state[0] = 1.0;
  Rng rng(0xa070);

  std::vector<AutotuneResult> results;
  const int width = simd_complex_width();
  for (int k = 2; k <= max_k; ++k) {
    const GateMatrix u = random_dense_unitary(k, rng);
    // Mid-range qubit positions: representative strides.
    std::vector<int> qubits(k);
    for (int j = 0; j < k; ++j) qubits[j] = j + (num_qubits - k) / 2;
    const PreparedGate gate = prepare_gate(u, qubits);

    const int row_vecs = static_cast<int>(gate.dim) / width;
    std::vector<int> candidates;
    for (int br = 1; br <= row_vecs && br <= 16; br *= 2) {
      candidates.push_back(br);
    }
    if (candidates.empty()) candidates.push_back(0);

    double best = -1.0;
    int best_br = candidates.front();
    const double flops =
        flops_per_amplitude(k) * static_cast<double>(size);
    for (int br : candidates) {
      ApplyOptions options;
      options.block_rows = br;
      options.num_threads = num_threads;
      const double secs = time_best_of(
          [&] { apply_gate(state.data(), num_qubits, gate, options); },
          0.02);
      const double gflops = flops / secs * 1e-9;
      results.push_back({k, br, gflops, false});
      if (gflops > best) {
        best = gflops;
        best_br = br;
      }
    }
    for (auto& r : results) {
      if (r.k == k && r.block_rows == best_br) r.selected = true;
    }
    kernel_config(k).block_rows = best_br;
    kernel_config(k).tuned = true;
  }
  return results;
}

BlockRunConfig& block_run_config() {
  static BlockRunConfig config;
  return config;
}

std::vector<BlockTuneResult> autotune_blocking(int num_qubits,
                                               int num_threads) {
  QUASAR_CHECK(num_qubits >= 14 && num_qubits <= 30,
               "autotune_blocking: scratch state out of range");
  const Index size = index_pow2(num_qubits);
  AlignedVector<Amplitude> state(size, Amplitude{0.0, 0.0});
  state[0] = 1.0;
  Rng rng(0xb10c);

  // Synthetic stage-like run on bit-locations < 8: the mix the mapper
  // produces — 1-qubit rotations, dense 2-qubit clusters, CZ phases.
  std::vector<PreparedGate> gates;
  for (int q = 0; q < 4; ++q) {
    gates.push_back(prepare_gate(gates::random_su2(rng), {q}));
  }
  gates.push_back(prepare_gate(random_dense_unitary(2, rng), {0, 1}));
  gates.push_back(prepare_gate(random_dense_unitary(2, rng), {2, 3}));
  gates.push_back(prepare_gate(gates::cz(), {4, 5}));
  gates.push_back(prepare_gate(gates::cz(), {6, 7}));
  gates.push_back(prepare_gate(random_dense_unitary(3, rng), {4, 5, 6}));
  for (int q = 4; q < 8; ++q) {
    gates.push_back(prepare_gate(gates::random_su2(rng), {q}));
  }
  std::vector<const PreparedGate*> ptrs;
  for (const PreparedGate& g : gates) ptrs.push_back(&g);

  ApplyOptions options;
  options.num_threads = num_threads;
  const double sweep_bytes = 2.0 * static_cast<double>(size) * 16.0;

  std::vector<BlockTuneResult> results;
  double best = -1.0;
  int best_b = block_run_config().block_exponent;
  for (int b = 10; b <= std::min(num_qubits - 2, 22); b += 2) {
    const double secs = time_best_of(
        [&] {
          apply_gate_run(state.data(), num_qubits, ptrs.data(), ptrs.size(),
                         b, options);
        },
        0.05);
    const double gbps = sweep_bytes / secs * 1e-9;
    results.push_back({b, gbps, false});
    if (gbps > best) {
      best = gbps;
      best_b = b;
    }
  }
  for (auto& r : results) {
    if (r.block_exponent == best_b) r.selected = true;
  }
  block_run_config().block_exponent = best_b;

  // Min-run-length cutoff: is a 2-gate blocked sweep already faster than
  // two plain sweeps? (The blocked path costs plan setup and, below the
  // SIMD-width floor, narrower kernels.)
  const PreparedGate* pair[2] = {ptrs[0], ptrs[1]};
  const double blocked2 = time_best_of(
      [&] {
        apply_gate_run(state.data(), num_qubits, pair, 2, best_b, options);
      },
      0.05);
  const double plain2 = time_best_of(
      [&] {
        apply_gate(state.data(), num_qubits, *pair[0], options);
        apply_gate(state.data(), num_qubits, *pair[1], options);
      },
      0.05);
  block_run_config().min_run_length = blocked2 < plain2 ? 2 : 3;
  block_run_config().tuned = true;
  return results;
}

}  // namespace quasar
