#include "kernels/autotune.hpp"

#include <array>

#include "core/aligned.hpp"
#include "core/error.hpp"
#include "core/rng.hpp"
#include "core/timing.hpp"
#include "gates/standard.hpp"
#include "kernels/apply.hpp"

namespace quasar {

namespace {
constexpr int kMaxK = 12;

std::array<KernelConfig, kMaxK + 1>& config_table() {
  static std::array<KernelConfig, kMaxK + 1> table = [] {
    std::array<KernelConfig, kMaxK + 1> t{};
    for (auto& c : t) c = KernelConfig{};  // block_rows 0 = all rows
    return t;
  }();
  return table;
}

/// Random k-qubit unitary for timing (product of embedded SU(2)s and CZs,
/// dense enough to defeat any sparsity shortcuts).
GateMatrix random_dense_unitary(int k, Rng& rng) {
  GateMatrix u = GateMatrix::identity(k);
  for (int round = 0; round < 3; ++round) {
    for (int q = 0; q < k; ++q) {
      u = gates::random_su2(rng).embed(k, {q}) * u;
    }
    for (int q = 0; q + 1 < k; ++q) {
      u = gates::cz().embed(k, {q, q + 1}) * u;
    }
  }
  return u;
}
}  // namespace

KernelConfig& kernel_config(int k) {
  QUASAR_CHECK(k >= 1 && k <= kMaxK, "kernel_config: k out of range");
  return config_table()[k];
}

std::vector<AutotuneResult> autotune_kernels(int num_qubits, int max_k,
                                             int num_threads) {
  QUASAR_CHECK(num_qubits >= max_k + 2 && num_qubits <= 28,
               "autotune: scratch state must fit and exceed the gates");
  const Index size = index_pow2(num_qubits);
  AlignedVector<Amplitude> state(size, Amplitude{0.0, 0.0});
  state[0] = 1.0;
  Rng rng(0xa070);

  std::vector<AutotuneResult> results;
  const int width = simd_complex_width();
  for (int k = 2; k <= max_k; ++k) {
    const GateMatrix u = random_dense_unitary(k, rng);
    // Mid-range qubit positions: representative strides.
    std::vector<int> qubits(k);
    for (int j = 0; j < k; ++j) qubits[j] = j + (num_qubits - k) / 2;
    const PreparedGate gate = prepare_gate(u, qubits);

    const int row_vecs = static_cast<int>(gate.dim) / width;
    std::vector<int> candidates;
    for (int br = 1; br <= row_vecs && br <= 16; br *= 2) {
      candidates.push_back(br);
    }
    if (candidates.empty()) candidates.push_back(0);

    double best = -1.0;
    int best_br = candidates.front();
    const double flops =
        flops_per_amplitude(k) * static_cast<double>(size);
    for (int br : candidates) {
      ApplyOptions options;
      options.block_rows = br;
      options.num_threads = num_threads;
      const double secs = time_best_of(
          [&] { apply_gate(state.data(), num_qubits, gate, options); },
          0.02);
      const double gflops = flops / secs * 1e-9;
      results.push_back({k, br, gflops, false});
      if (gflops > best) {
        best = gflops;
        best_br = br;
      }
    }
    for (auto& r : results) {
      if (r.k == k && r.block_rows == best_br) r.selected = true;
    }
    kernel_config(k).block_rows = best_br;
    kernel_config(k).tuned = true;
  }
  return results;
}

}  // namespace quasar
