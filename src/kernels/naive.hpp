/// \file naive.hpp
/// \brief Unoptimized baseline kernels for the roofline study (Fig. 2).
///
/// These implement the "standard implementation" of Sec. 3.1 — two state
/// vectors, one gate at a time, straightforward complex arithmetic — and
/// the plain in-place variant, so the benchmark harness can show the
/// optimization steps 1..3 of the paper's roofline plots as measured
/// points rather than only model values.
#pragma once

#include "core/types.hpp"
#include "gates/matrix.hpp"

namespace quasar {

/// Step-0 baseline (Sec. 3.1): out-of-place single-qubit gate. Reads
/// `in`, writes `out`; both of size 2^num_qubits.
void apply_single_qubit_two_vector(const Amplitude* in, Amplitude* out,
                                   int num_qubits, const GateMatrix& gate,
                                   int qubit, int num_threads = 0);

/// Step-1 baseline: in-place single-qubit gate, straightforward complex
/// arithmetic (Eq. (1) of the paper: no FMA re-ordering, no blocking).
void apply_single_qubit_inplace_naive(Amplitude* state, int num_qubits,
                                      const GateMatrix& gate, int qubit,
                                      int num_threads = 0);

}  // namespace quasar
