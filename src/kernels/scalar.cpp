/// \file scalar.cpp
/// \brief Portable scalar kernels: the differential-testing oracle and the
/// fallback for gates wider than the SIMD kernels support.
#include <omp.h>

#include "core/error.hpp"
#include "kernels/apply.hpp"

namespace quasar {

namespace detail {

int resolve_threads(int requested, Index iterations) {
  int threads = requested > 0 ? requested : omp_get_max_threads();
  // Never spawn more threads than independent iterations.
  if (iterations < static_cast<Index>(threads)) {
    threads = static_cast<int>(iterations > 0 ? iterations : 1);
  }
  return threads;
}

}  // namespace detail

void apply_gate_scalar(Amplitude* state, int num_qubits,
                       const PreparedGate& gate, int num_threads) {
  QUASAR_CHECK(gate.k <= num_qubits, "gate wider than the state");
  QUASAR_CHECK(gate.qubits.back() < num_qubits,
               "gate bit-location out of range");
  const Index dim = gate.dim;
  const Index outer = index_pow2(num_qubits - gate.k);
  const IndexExpander expander = gate.expander();
  const Index* offsets = gate.offsets.data();
  const GateMatrix& m = gate.matrix;
  const int threads = detail::resolve_threads(num_threads, outer);

#pragma omp parallel num_threads(threads)
  {
    // Per-thread temporaries; dim <= 2^16 by GateMatrix construction but
    // in practice k <= 10 for anything reachable through the dispatcher.
    std::vector<Amplitude> in(dim), out(dim);
#pragma omp for schedule(static)
    for (std::int64_t i = 0; i < static_cast<std::int64_t>(outer); ++i) {
      const Index base = expander.expand(static_cast<Index>(i));
      for (Index t = 0; t < dim; ++t) in[t] = state[base + offsets[t]];
      for (Index l = 0; l < dim; ++l) {
        Amplitude acc{0.0, 0.0};
        for (Index t = 0; t < dim; ++t) acc += m.at(l, t) * in[t];
        out[l] = acc;
      }
      for (Index t = 0; t < dim; ++t) state[base + offsets[t]] = out[t];
    }
  }
}

void apply_diagonal(Amplitude* state, int num_qubits, const PreparedGate& gate,
                    const ApplyOptions& options) {
  QUASAR_CHECK(gate.diagonal, "apply_diagonal requires a diagonal gate");
  QUASAR_CHECK(gate.k <= num_qubits, "gate wider than the state");
  QUASAR_CHECK(gate.qubits.back() < num_qubits,
               "gate bit-location out of range");
  const Index dim = gate.dim;
  const Index outer = index_pow2(num_qubits - gate.k);
  const IndexExpander expander = gate.expander();
  const Index* offsets = gate.offsets.data();
  const Amplitude* diag = gate.diag.data();
  const int threads = detail::resolve_threads(options.num_threads, outer);

#pragma omp parallel for schedule(static) num_threads(threads)
  for (std::int64_t i = 0; i < static_cast<std::int64_t>(outer); ++i) {
    const Index base = expander.expand(static_cast<Index>(i));
    for (Index t = 0; t < dim; ++t) state[base + offsets[t]] *= diag[t];
  }
}

void apply_global_phase(Amplitude* state, int num_qubits, Amplitude phase,
                        int num_threads) {
  const Index size = index_pow2(num_qubits);
  const int threads = detail::resolve_threads(num_threads, size);
#pragma omp parallel for schedule(static) num_threads(threads)
  for (std::int64_t i = 0; i < static_cast<std::int64_t>(size); ++i) {
    state[i] *= phase;
  }
}

}  // namespace quasar
