/// \file scalar.cpp
/// \brief Portable scalar kernels: the differential-testing oracle and the
/// fallback for gates wider than the SIMD kernels support.
#include <omp.h>

#include "core/aligned.hpp"
#include "core/error.hpp"
#include "kernels/apply.hpp"

namespace quasar {

namespace detail {

int resolve_threads(int requested, Index iterations) {
  int threads = requested > 0 ? requested : omp_get_max_threads();
  // Never spawn more threads than independent iterations.
  if (iterations < static_cast<Index>(threads)) {
    threads = static_cast<int>(iterations > 0 ? iterations : 1);
  }
  return threads;
}

Amplitude* gate_scratch(Index amplitudes) {
  thread_local AlignedVector<Amplitude> scratch;
  if (static_cast<Index>(scratch.size()) < amplitudes) {
    scratch.resize(amplitudes);
  }
  return scratch.data();
}

// noinline: this is the single compiled instance of the diagonal
// multiply (see apply.hpp); inlining at different call sites would let
// the compiler contract the complex arithmetic differently per site.
// The outer loop lives inside the function so callers pay one call per
// range, not one per base.
[[gnu::noinline]] void diagonal_multiply_range(Amplitude* amps,
                                               const IndexExpander& expander,
                                               const Index* offsets,
                                               const Amplitude* diag,
                                               Index dim, Index begin,
                                               Index end) {
  for (Index i = begin; i < end; ++i) {
    Amplitude* const base = amps + expander.expand(i);
    for (Index t = 0; t < dim; ++t) base[offsets[t]] *= diag[t];
  }
}

}  // namespace detail

void apply_gate_scalar(Amplitude* state, int num_qubits,
                       const PreparedGate& gate, int num_threads) {
  QUASAR_CHECK(gate.k <= num_qubits, "gate wider than the state");
  QUASAR_CHECK(gate.qubits.back() < num_qubits,
               "gate bit-location out of range");
  const Index dim = gate.dim;
  const Index outer = index_pow2(num_qubits - gate.k);
  const IndexExpander expander = gate.expander();
  const Index* offsets = gate.offsets.data();
  const GateMatrix& m = gate.matrix;
  const int threads = detail::resolve_threads(num_threads, outer);

#pragma omp parallel num_threads(threads)
  {
    // Per-thread temporaries (reused across gate applications); dim <=
    // 2^16 by GateMatrix construction but in practice k <= 10 for
    // anything reachable through the dispatcher.
    Amplitude* const in = detail::gate_scratch(2 * dim);
    Amplitude* const out = in + dim;
#pragma omp for schedule(static)
    for (std::int64_t i = 0; i < static_cast<std::int64_t>(outer); ++i) {
      const Index base = expander.expand(static_cast<Index>(i));
      for (Index t = 0; t < dim; ++t) in[t] = state[base + offsets[t]];
      for (Index l = 0; l < dim; ++l) {
        Amplitude acc{0.0, 0.0};
        for (Index t = 0; t < dim; ++t) acc += m.at(l, t) * in[t];
        out[l] = acc;
      }
      for (Index t = 0; t < dim; ++t) state[base + offsets[t]] = out[t];
    }
  }
}

void apply_diagonal(Amplitude* state, int num_qubits, const PreparedGate& gate,
                    const ApplyOptions& options) {
  QUASAR_CHECK(gate.diagonal, "apply_diagonal requires a diagonal gate");
  QUASAR_CHECK(gate.k <= num_qubits, "gate wider than the state");
  QUASAR_CHECK(gate.qubits.back() < num_qubits,
               "gate bit-location out of range");
  const Index dim = gate.dim;
  const Index outer = index_pow2(num_qubits - gate.k);
  const IndexExpander expander = gate.expander();
  const Index* offsets = gate.offsets.data();
  const Amplitude* diag = gate.diag.data();
  const int threads = detail::resolve_threads(options.num_threads, outer);

#pragma omp parallel num_threads(threads)
  {
    // Static partition of the outer index space; each thread issues one
    // call into the shared multiply (bitwise result is independent of
    // the split — every base is touched exactly once).
    const Index tid = static_cast<Index>(omp_get_thread_num());
    const Index nth = static_cast<Index>(omp_get_num_threads());
    detail::diagonal_multiply_range(state, expander, offsets, diag, dim,
                                    outer * tid / nth,
                                    outer * (tid + 1) / nth);
  }
}

void apply_global_phase(Amplitude* state, int num_qubits, Amplitude phase,
                        int num_threads) {
  const Index size = index_pow2(num_qubits);
  const int threads = detail::resolve_threads(num_threads, size);
#pragma omp parallel for schedule(static) num_threads(threads)
  for (std::int64_t i = 0; i < static_cast<std::int64_t>(size); ++i) {
    state[i] *= phase;
  }
}

}  // namespace quasar
