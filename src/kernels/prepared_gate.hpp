/// \file prepared_gate.hpp
/// \brief Gate pre-processing for the k-qubit kernels (paper Sec. 3.2).
///
/// Before the sweep over the state vector, a gate is
///  1. permuted so its qubit (bit-location) list is strictly ascending —
///     memory accesses then occur in a more local fashion;
///  2. expanded into two sign-folded real arrays so that each complex
///     multiply-accumulate in the kernel is exactly two FMA instructions
///     (the paper's Eq. (2)/(3) re-ordering). We store the expansion
///     column-major: col_a interleaves (mR, mI) and col_b interleaves
///     (-mI, mR); then acc += col_a * broadcast(vR) followed by
///     acc += col_b * broadcast(vI) computes the complex MAC.
///
/// Because the same matrix is reused for all 2^(n-k) matrix-vector
/// multiplications, this preparation is essentially free.
#pragma once

#include <memory>
#include <vector>

#include "core/aligned.hpp"
#include "core/bits.hpp"
#include "gates/matrix.hpp"

namespace quasar {

/// A gate pre-processed for application to bit-locations of a state vector.
struct PreparedGate {
  /// Number of gate qubits k.
  int k = 0;
  /// Gate matrix dimension 2^k.
  Index dim = 0;
  /// Bit-locations, strictly ascending.
  std::vector<int> qubits;
  /// Matrix permuted to the ascending qubit order, row-major (scalar path
  /// and the test oracle use this directly).
  GateMatrix matrix = GateMatrix::identity(0);
  /// offsets[t] = state-vector offset of gate-local amplitude t relative
  /// to an expanded base index.
  std::vector<Index> offsets;
  /// Gather chunk length in amplitudes: 2^(number of gate qubits that are
  /// exactly the low bit-locations 0,1,2,...). Contiguous runs let the
  /// gather/scatter use bulk copies.
  Index contig_run = 1;
  /// Column-major FMA expansion A: entry (l, i) stored at
  /// col_a[(i * dim + l) * 2 + {0,1}] = { Re m(l,i), Im m(l,i) }.
  AlignedVector<double> col_a;
  /// Column-major FMA expansion B: { -Im m(l,i), Re m(l,i) }.
  AlignedVector<double> col_b;
  /// Whole matrix diagonal (phase-only fast path, Sec. 3.5)?
  bool diagonal = false;
  /// Diagonal entries when `diagonal` is true.
  AlignedVector<Amplitude> diag;
  /// Pre-widened 2-qubit embedding on bit-locations {0, 1}, built once at
  /// preparation time when k == 1 and the bit-location defeats the
  /// compiled SIMD shapes (stride below the vector width). The dispatcher
  /// applies this instead of re-deriving offsets and sign-folded columns
  /// on every hot-loop application. Null when the gate never needs it.
  std::shared_ptr<const PreparedGate> widened;

  /// Expander producing base indices with zeros at the gate bit-locations.
  IndexExpander expander() const { return IndexExpander(qubits); }
};

/// Prepares `matrix` acting on `bit_locations` (any order; the matrix is
/// permuted to ascending order internally). Throws quasar::Error if the
/// locations are not distinct or the matrix arity does not match.
PreparedGate prepare_gate(const GateMatrix& matrix,
                          const std::vector<int>& bit_locations);

}  // namespace quasar
