/// \file block_apply.hpp
/// \brief Cache-blocked multi-gate execution: one DRAM sweep per run.
///
/// The k-qubit kernels are memory-bandwidth bound (paper Sec. 2, Fig. 2):
/// every gate pays a full read + write of the state vector, so after
/// cluster fusion the sweep COUNT — not the FLOPs — governs stage time.
/// When a run of prepared gates has all bit-locations < b, the state
/// factorizes into 2^(n-b) independent 2^b-amplitude blocks and the whole
/// run can be applied block by block while the block is cache-resident:
/// one DRAM read + write for the run instead of one per gate (the
/// qHiPSTER gate-batching idea, arXiv:1601.07195). The qubit mapper
/// (Sec. 3.6.2) already pushes busy qubits to low bit-locations, so
/// consecutive cluster gates routinely satisfy the location bound.
///
/// Diagonal gates join a run at ANY bit-location: they act pointwise, so
/// the per-block diagonal indices only need the block's high bits folded
/// into the phase-table lookup. Per block, the gates reuse the existing
/// SIMD GEMV / strided / diagonal kernels via a num_qubits = b
/// sub-application, making the blocked path bit-identical to gate-by-gate
/// execution with the same backend whenever the block is wide enough for
/// the same kernel shapes to engage.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "kernels/apply.hpp"
#include "kernels/prepared_gate.hpp"

namespace quasar {

/// Counters describing how a gate list was executed.
struct BlockRunStats {
  std::size_t gates = 0;      ///< gates executed in total
  std::size_t runs = 0;       ///< blocked runs executed
  std::size_t run_gates = 0;  ///< gates inside blocked runs
  std::size_t sweeps = 0;     ///< full-state DRAM sweeps performed
  std::size_t hoisted = 0;    ///< gates hoisted over earlier commuting gates
  std::size_t coalesced = 0;  ///< in-block passes saved by diagonal merging

  /// DRAM sweeps avoided relative to gate-by-gate execution.
  std::size_t sweeps_saved() const { return gates - sweeps; }
};

/// Shape summary of one gate, as seen by the run planner.
struct GateShape {
  /// OR of (1 << bit-location) over the locations the applied kernel
  /// touches (for a pre-widened gate: including the spectator qubit).
  std::uint64_t qubit_mask = 0;
  /// Can this gate join a blocked run at the chosen block exponent?
  bool eligible = false;
};

/// One planned execution segment: `run` executes first as a single
/// blocked sweep, then `solo` gates execute one sweep each. Indices refer
/// to the planner's input order. Hoisting a run gate over the earlier
/// solo gates is exact: the planner only admits it when the qubit masks
/// are disjoint (the gates commute).
struct BlockPlanSegment {
  std::vector<std::size_t> run;
  std::vector<std::size_t> solo;
};

/// Partitions a gate list into blocked runs and solo sweeps. With
/// `reorder` false, runs are maximal consecutive eligible spans; with
/// `reorder` true, an eligible gate also joins the current run when its
/// qubit mask is disjoint from every gate deferred to `solo` so far
/// (commuting hoist), bounded by a deferred-gate cap per segment.
std::vector<BlockPlanSegment> plan_gate_runs(
    const std::vector<GateShape>& shapes, bool reorder);

/// Merges `count` diagonal prepared gates into one diagonal gate on the
/// union of their bit-locations: diag[idx] = prod over gates of their
/// phase entry at the sub-index idx restricts to. Diagonal operators
/// commute, so the product is the exact composite operator regardless of
/// gate order; only the rounding of the pre-multiplied table differs
/// from applying the factors one by one. Requires count >= 1, every gate
/// diagonal, and a union of at most 20 qubits (the table has 2^k
/// entries).
PreparedGate merge_diagonal_gates(const PreparedGate* const* gates,
                                  std::size_t count);

/// True when `gate` can join a blocked run at block exponent `b`:
/// diagonal gates always can; dense gates need every bit-location of the
/// kernel that will actually run (the pre-widened embedding, if any)
/// below b.
bool block_run_eligible(const PreparedGate& gate, int block_exponent);

/// Resolves the block exponent for a state of `num_qubits` qubits:
/// options.block_exponent if nonzero, else the autotuned/heuristic
/// default. Returns -1 (blocking disabled) when the resolved value is
/// negative, smaller than 2, or leaves fewer than 4 blocks — small
/// states take the plain gate-by-gate path unchanged.
int effective_block_exponent(int num_qubits, const ApplyOptions& options);

/// Resolves the minimum run length worth blocking (>= 1).
int effective_min_run_length(const ApplyOptions& options);

/// Applies `count` prepared gates — every one eligible at
/// `block_exponent` — in one DRAM sweep: OpenMP over the 2^(n-b) blocks,
/// all gates applied to each block while it is cache-resident.
///
/// `base_index` supports segment-granular sweeps (the out-of-core
/// pipeline, DESIGN.md §11): when `state` is a 2^num_qubits-amplitude
/// segment of a larger vector starting at absolute amplitude index
/// `base_index` (low num_qubits bits zero), diagonal gates may carry
/// bit-locations >= num_qubits — those bits are constant across the
/// segment and select a fixed slice of the phase table, exactly as the
/// block loop already does for locations >= b. Dense gates must keep
/// every touched location below num_qubits regardless.
void apply_gate_run(Amplitude* state, int num_qubits,
                    const PreparedGate* const* gates, std::size_t count,
                    int block_exponent, const ApplyOptions& options = {},
                    Index base_index = 0);

/// Applies a gate list with blocked runs where profitable and plain
/// gate-by-gate sweeps elsewhere. Equivalent to calling apply_gate on
/// each gate in order (up to the exact commuting hoists when
/// options.block_reorder is set). `stats`, when non-null, receives the
/// execution counters. `base_index` as in apply_gate_run: `state` may be
/// an aligned segment of a larger vector, with diagonal gates allowed to
/// reach above num_qubits.
void apply_gates_blocked(Amplitude* state, int num_qubits,
                         const PreparedGate* const* gates, std::size_t count,
                         const ApplyOptions& options = {},
                         BlockRunStats* stats = nullptr,
                         Index base_index = 0);

}  // namespace quasar
