/// \file apply.hpp
/// \brief Public kernel API: in-place k-qubit gate application.
///
/// This is the paper's layered kernel stack (Sec. 3): single-core SIMD
/// kernels, an OpenMP layer over a flat index space (the flat loop plays
/// the role of the paper's `collapse` directive — there is never a short
/// outer loop), and gather/scatter handling for arbitrary qubit positions.
#pragma once

#include "core/types.hpp"
#include "kernels/prepared_gate.hpp"

namespace quasar {

/// Which instruction-set implementation to use.
enum class KernelBackend {
  kAuto,    ///< best compiled-in backend (AVX-512 > AVX2 > scalar)
  kScalar,  ///< portable scalar kernels (differential-test oracle)
  kSimd,    ///< force the SIMD backend; throws if none was compiled in
};

/// Options controlling a gate application sweep.
struct ApplyOptions {
  KernelBackend backend = KernelBackend::kAuto;
  /// OpenMP thread count; 0 means the OpenMP default.
  int num_threads = 0;
  /// Register-blocking factor (output rows per block, in SIMD vectors);
  /// 0 selects the autotuned/heuristic value. Powers of two up to 8.
  int block_rows = 0;
};

/// Name of the best compiled-in SIMD backend ("avx512", "avx2", "scalar").
const char* simd_backend_name();

/// SIMD width of the compiled backend in complex<double> lanes
/// (4 for AVX-512, 2 for AVX2, 1 for scalar).
int simd_complex_width();

/// Applies a prepared k-qubit gate in place to `state` of `num_qubits`
/// qubits. All gate bit-locations must be < num_qubits. Dispatches to the
/// diagonal fast path, the specialized 1-qubit kernel, the SIMD
/// gather/GEMV/scatter kernel, or the scalar fallback.
void apply_gate(Amplitude* state, int num_qubits, const PreparedGate& gate,
                const ApplyOptions& options = {});

/// Scalar reference implementation (any k). Always available; used as the
/// differential-testing oracle for the SIMD paths.
void apply_gate_scalar(Amplitude* state, int num_qubits,
                       const PreparedGate& gate, int num_threads = 0);

/// Diagonal (phase-only) application; requires gate.diagonal.
void apply_diagonal(Amplitude* state, int num_qubits,
                    const PreparedGate& gate, const ApplyOptions& options = {});

/// Multiplies the whole state by a scalar phase (global-phase absorption).
void apply_global_phase(Amplitude* state, int num_qubits, Amplitude phase,
                        int num_threads = 0);

/// Number of floating-point operations one sweep of a dense k-qubit gate
/// performs per state-vector amplitude: 2^k complex MACs = 8*2^k - 2 FLOP
/// (4 mul + 2 add per multiply, 2 add per accumulate; matches the paper's
/// 14 FLOP for k = 1).
constexpr double flops_per_amplitude(int k) {
  return 8.0 * static_cast<double>(Index{1} << k) - 2.0;
}

/// Operational intensity in FLOP/byte of the in-place dense k-qubit
/// kernel: each amplitude is read and written once (16+16 bytes).
constexpr double operational_intensity(int k) {
  return flops_per_amplitude(k) / 32.0;
}

namespace detail {
/// Resolved thread count for a sweep of `iterations` independent tasks.
int resolve_threads(int requested, Index iterations);
}  // namespace detail

}  // namespace quasar
