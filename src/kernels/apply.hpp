/// \file apply.hpp
/// \brief Public kernel API: in-place k-qubit gate application.
///
/// This is the paper's layered kernel stack (Sec. 3): single-core SIMD
/// kernels, an OpenMP layer over a flat index space (the flat loop plays
/// the role of the paper's `collapse` directive — there is never a short
/// outer loop), and gather/scatter handling for arbitrary qubit positions.
#pragma once

#include "core/types.hpp"
#include "kernels/prepared_gate.hpp"

namespace quasar {

/// Which instruction-set implementation to use.
enum class KernelBackend {
  kAuto,    ///< best compiled-in backend (AVX-512 > AVX2 > scalar)
  kScalar,  ///< portable scalar kernels (differential-test oracle)
  kSimd,    ///< force the SIMD backend; throws if none was compiled in
};

/// Options controlling a gate application sweep.
struct ApplyOptions {
  KernelBackend backend = KernelBackend::kAuto;
  /// OpenMP thread count; 0 means the OpenMP default.
  int num_threads = 0;
  /// Register-blocking factor (output rows per block, in SIMD vectors);
  /// 0 selects the autotuned/heuristic value. Powers of two up to 8.
  int block_rows = 0;
  /// Cache-block exponent b for multi-gate runs (block_apply.hpp): runs of
  /// gates with all bit-locations < b share one DRAM sweep over
  /// 2^b-amplitude blocks. 0 = autotuned/heuristic value; negative
  /// disables the blocked path entirely.
  int block_exponent = 0;
  /// Minimum run length worth blocking (shorter runs go gate by gate);
  /// 0 = autotuned/heuristic value.
  int min_run_length = 0;
  /// Allow hoisting gates over earlier qubit-disjoint (commuting) gates
  /// when forming blocked runs. Exact algebraically; results may differ
  /// from program order by floating-point rounding.
  bool block_reorder = true;
  /// Coalesce consecutive diagonal gates inside a blocked run into one
  /// merged phase table (diagonals commute, so the merged operator is
  /// exact algebra; one multiply per amplitude instead of one per gate).
  /// Rounding may differ from per-gate order by ~1 ulp per merged gate.
  bool merge_diagonals = true;
};

/// Name of the best compiled-in SIMD backend ("avx512", "avx2", "scalar").
const char* simd_backend_name();

/// SIMD width of the compiled backend in complex<double> lanes
/// (4 for AVX-512, 2 for AVX2, 1 for scalar).
int simd_complex_width();

/// Applies a prepared k-qubit gate in place to `state` of `num_qubits`
/// qubits. All gate bit-locations must be < num_qubits. Dispatches to the
/// diagonal fast path, the specialized 1-qubit kernel, the SIMD
/// gather/GEMV/scatter kernel, or the scalar fallback.
void apply_gate(Amplitude* state, int num_qubits, const PreparedGate& gate,
                const ApplyOptions& options = {});

/// Scalar reference implementation (any k). Always available; used as the
/// differential-testing oracle for the SIMD paths.
void apply_gate_scalar(Amplitude* state, int num_qubits,
                       const PreparedGate& gate, int num_threads = 0);

/// Diagonal (phase-only) application; requires gate.diagonal.
void apply_diagonal(Amplitude* state, int num_qubits,
                    const PreparedGate& gate, const ApplyOptions& options = {});

/// Multiplies the whole state by a scalar phase (global-phase absorption).
void apply_global_phase(Amplitude* state, int num_qubits, Amplitude phase,
                        int num_threads = 0);

/// Number of floating-point operations one sweep of a dense k-qubit gate
/// performs per state-vector amplitude: 2^k complex MACs = 8*2^k - 2 FLOP
/// (4 mul + 2 add per multiply, 2 add per accumulate; matches the paper's
/// 14 FLOP for k = 1).
constexpr double flops_per_amplitude(int k) {
  return 8.0 * static_cast<double>(Index{1} << k) - 2.0;
}

/// Operational intensity in FLOP/byte of the in-place dense k-qubit
/// kernel: each amplitude is read and written once (16+16 bytes).
constexpr double operational_intensity(int k) {
  return flops_per_amplitude(k) / 32.0;
}

namespace detail {
/// Resolved thread count for a sweep of `iterations` independent tasks.
int resolve_threads(int requested, Index iterations);

/// Reusable per-thread gate workspace of at least `amplitudes` entries
/// (thread-local, grown on demand, 64-byte aligned). Kernels use it for
/// their gather/GEMV temporaries instead of allocating inside the hot
/// loop on every gate application.
Amplitude* gate_scratch(Index amplitudes);

/// Diagonal sweep over the outer-index range [begin, end): for each
/// expanded base, amps[base + offsets[t]] *= diag[t]. Deliberately
/// compiled once and never inlined: the full-state diagonal sweep and
/// the cache-blocked per-block path both funnel through this exact
/// function, so floating-point contraction cannot diverge between them
/// and blocked execution stays bit-identical to gate-by-gate order.
void diagonal_multiply_range(Amplitude* amps, const IndexExpander& expander,
                             const Index* offsets, const Amplitude* diag,
                             Index dim, Index begin, Index end);
}  // namespace detail

}  // namespace quasar
