/// \file segment_store.hpp
/// \brief Disk-resident segmented amplitude slices (DESIGN.md §11).
///
/// One rank's 2^l-amplitude slice is split into 2^(l-s) segments of 2^s
/// amplitudes. Each segment lives in a fixed-stride slot of an unlinked
/// backing file as a codec frame (codec.hpp); the stride is the worst
/// case encoded_bound rounded up to 4096, so compressed frames shrink
/// the I/O volume (pread/pwrite transfer only the frame) while the file
/// offset arithmetic stays trivial and slots never collide.
///
/// The file is opened with O_DIRECT when the filesystem supports it, so
/// reads and writes bypass the page cache — an out-of-core run should
/// measure the disk, not DRAM masquerading as disk. Direct I/O demands
/// 4096-byte aligned buffers/offsets/lengths; the IoBuffer below provides
/// the alignment and frames are padded up to the sector size on write.
/// Filesystems that refuse O_DIRECT (tmpfs) silently fall back to
/// buffered I/O — recorded in `direct_io()` so benchmarks can report
/// which mode actually ran.
///
/// Thread safety: distinct segments may be read/written concurrently
/// (pread/pwrite are positional; per-slot metadata is only touched by
/// the thread handed that segment). The same segment must not be
/// accessed concurrently — the pipeline guarantees that by construction.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "core/types.hpp"
#include "oocore/codec.hpp"

namespace quasar::oocore {

/// 4096-byte-aligned reusable I/O staging buffer (direct-I/O grade).
class IoBuffer {
 public:
  IoBuffer() = default;
  explicit IoBuffer(std::size_t bytes) { resize(bytes); }
  ~IoBuffer();
  IoBuffer(IoBuffer&& other) noexcept;
  IoBuffer& operator=(IoBuffer&& other) noexcept;
  IoBuffer(const IoBuffer&) = delete;
  IoBuffer& operator=(const IoBuffer&) = delete;

  void resize(std::size_t bytes);
  std::uint8_t* data() noexcept { return data_; }
  std::size_t size() const noexcept { return bytes_; }

 private:
  std::uint8_t* data_ = nullptr;
  std::size_t bytes_ = 0;
};

/// Per-thread scratch for one pipeline lane: aligned frame staging plus
/// codec transpose buffers.
struct SegmentScratch {
  IoBuffer frame;
  CodecScratch codec;
};

/// Byte counters a store accumulates (monotonic; read after sweeps).
struct StoreStats {
  std::uint64_t raw_bytes_read = 0;
  std::uint64_t raw_bytes_written = 0;
  std::uint64_t disk_bytes_read = 0;
  std::uint64_t disk_bytes_written = 0;
  std::uint64_t segments_read = 0;
  std::uint64_t segments_written = 0;
};

struct SegmentStoreOptions {
  Codec codec = Codec::kRaw;
  /// Target segment size in bytes (rounded to a power-of-two amplitude
  /// count, clamped to [4, slice] amplitudes).
  std::size_t segment_bytes = std::size_t{4} << 20;
  std::string directory = "/tmp";
  /// Attempt O_DIRECT (falls back to buffered when unsupported).
  bool direct_io = true;
};

/// A segmented, codec-framed, disk-resident slice of `count` amplitudes.
class SegmentStore {
 public:
  SegmentStore(Index count, const SegmentStoreOptions& options);
  ~SegmentStore();
  SegmentStore(const SegmentStore&) = delete;
  SegmentStore& operator=(const SegmentStore&) = delete;

  Index count() const noexcept { return count_; }
  /// Segment exponent s: segments hold 2^s amplitudes.
  int segment_exponent() const noexcept { return seg_exp_; }
  Index segment_amps() const noexcept { return Index{1} << seg_exp_; }
  std::size_t segment_count() const noexcept { return num_segments_; }
  std::size_t segment_raw_bytes() const noexcept {
    return static_cast<std::size_t>(segment_amps()) * sizeof(Amplitude);
  }
  Codec codec() const noexcept { return options_.codec; }
  /// True when the backing file actually runs under O_DIRECT.
  bool direct_io() const noexcept { return direct_io_; }

  /// Encodes `segment_amps()` amplitudes at `src` into slot `segment`.
  void write_segment(std::size_t segment, const Amplitude* src,
                     SegmentScratch& scratch);
  /// Decodes slot `segment` into `dst` (`segment_amps()` amplitudes).
  /// Throws quasar::Error when the slot was never written or the frame
  /// fails its integrity checks.
  void read_segment(std::size_t segment, Amplitude* dst,
                    SegmentScratch& scratch);

  /// Current encoded footprint across all written slots (frame bytes,
  /// before sector padding).
  std::uint64_t encoded_bytes() const noexcept;

  /// Snapshot of the monotonic transfer counters (atomically
  /// accumulated, so I/O worker threads can update them concurrently).
  StoreStats stats() const noexcept;

  /// Minimum SegmentScratch::frame capacity for this store.
  std::size_t frame_capacity() const noexcept { return slot_stride_; }

 private:
  SegmentStoreOptions options_;
  Index count_ = 0;
  int seg_exp_ = 0;
  std::size_t num_segments_ = 0;
  std::size_t slot_stride_ = 0;
  int fd_ = -1;
  bool direct_io_ = false;
  /// Encoded frame size per slot; 0 = never written.
  std::vector<std::uint32_t> frame_bytes_;
  std::atomic<std::uint64_t> raw_read_{0}, raw_written_{0};
  std::atomic<std::uint64_t> disk_read_{0}, disk_written_{0};
  std::atomic<std::uint64_t> segs_read_{0}, segs_written_{0};
};

}  // namespace quasar::oocore
