#include "oocore/codec.hpp"

#include <cstring>

#include "core/crc32c.hpp"
#include "core/error.hpp"

namespace quasar::oocore {

namespace {

constexpr std::uint8_t kMagic[4] = {'Q', 'O', 'C', '1'};

/// LZ77 with LZ4-style tokens over the plane-transposed bytes.
///
/// Token stream: each token is one control byte — high nibble = literal
/// count (15 = extended with 255-continuation bytes), low nibble =
/// match length - 4 (15 = extended) — followed by the literal bytes,
/// then, unless the input is exhausted, a 2-byte little-endian match
/// offset (1..65535, distance back from the current output position).
/// A final token may omit the offset/match when its literals reach the
/// end of input; the decoder knows the compressed size and stops there.
constexpr std::size_t kMinMatch = 4;
constexpr std::size_t kWindow = 65535;
constexpr int kHashBits = 15;

inline std::uint32_t load32(const std::uint8_t* p) {
  std::uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}

inline std::uint32_t hash32(std::uint32_t v) {
  return (v * 2654435761u) >> (32 - kHashBits);
}

void put_varlen(std::vector<std::uint8_t>& out, std::size_t extra) {
  while (extra >= 255) {
    out.push_back(255);
    extra -= 255;
  }
  out.push_back(static_cast<std::uint8_t>(extra));
}

/// Greedy hash-chainless LZ: one 4-byte hash table, last position wins.
void lz_compress(const std::uint8_t* src, std::size_t n,
                 std::vector<std::uint8_t>& out) {
  out.clear();
  out.reserve(n / 2 + 64);
  std::vector<std::int64_t> table(std::size_t{1} << kHashBits, -1);
  std::size_t i = 0;
  std::size_t literal_start = 0;
  const auto emit = [&](std::size_t match_pos, std::size_t match_len) {
    const std::size_t literals = i - literal_start;
    const std::size_t lit_nibble = literals < 15 ? literals : 15;
    if (match_len == 0) {
      // Trailing literals: control byte with an empty match nibble.
      out.push_back(static_cast<std::uint8_t>(lit_nibble << 4));
      if (literals >= 15) put_varlen(out, literals - 15);
      out.insert(out.end(), src + literal_start, src + literal_start + literals);
      return;
    }
    const std::size_t mat = match_len - kMinMatch;
    const std::size_t mat_nibble = mat < 15 ? mat : 15;
    out.push_back(static_cast<std::uint8_t>((lit_nibble << 4) | mat_nibble));
    if (literals >= 15) put_varlen(out, literals - 15);
    out.insert(out.end(), src + literal_start, src + literal_start + literals);
    const std::size_t offset = i - match_pos;
    out.push_back(static_cast<std::uint8_t>(offset & 0xff));
    out.push_back(static_cast<std::uint8_t>(offset >> 8));
    if (mat >= 15) put_varlen(out, mat - 15);
  };
  if (n >= kMinMatch) {
    const std::size_t limit = n - kMinMatch;
    while (i <= limit) {
      const std::uint32_t h = hash32(load32(src + i));
      const std::int64_t cand = table[h];
      table[h] = static_cast<std::int64_t>(i);
      if (cand >= 0 && i - static_cast<std::size_t>(cand) <= kWindow &&
          load32(src + cand) == load32(src + i)) {
        std::size_t len = kMinMatch;
        while (i + len < n && src[cand + len] == src[i + len]) ++len;
        emit(static_cast<std::size_t>(cand), len);
        i += len;
        literal_start = i;
        continue;
      }
      ++i;
    }
  }
  i = n;
  if (literal_start < n || n == 0) emit(0, 0);
}

void lz_decompress(const std::uint8_t* src, std::size_t n, std::uint8_t* dst,
                   std::size_t raw) {
  std::size_t s = 0, d = 0;
  const auto get_varlen = [&](std::size_t base) {
    std::size_t len = base;
    while (true) {
      QUASAR_CHECK(s < n, "oocore codec: truncated LZ stream");
      const std::uint8_t b = src[s++];
      len += b;
      if (b != 255) return len;
    }
  };
  while (s < n) {
    const std::uint8_t ctrl = src[s++];
    std::size_t literals = ctrl >> 4;
    if (literals == 15) literals = get_varlen(15);
    QUASAR_CHECK(s + literals <= n && d + literals <= raw,
                 "oocore codec: LZ literal run out of bounds");
    std::memcpy(dst + d, src + s, literals);
    s += literals;
    d += literals;
    if (s == n) break;  // final token: literals only
    std::size_t match = (ctrl & 0x0f);
    QUASAR_CHECK(s + 2 <= n, "oocore codec: truncated LZ match");
    const std::size_t offset = static_cast<std::size_t>(src[s]) |
                               (static_cast<std::size_t>(src[s + 1]) << 8);
    s += 2;
    if (match == 15) match = get_varlen(15);
    match += kMinMatch;
    QUASAR_CHECK(offset >= 1 && offset <= d && d + match <= raw,
                 "oocore codec: LZ match out of bounds");
    // Overlapping copies are the LZ run-length idiom: byte-wise copy.
    for (std::size_t k = 0; k < match; ++k) dst[d + k] = dst[d + k - offset];
    d += match;
  }
  QUASAR_CHECK(d == raw, "oocore codec: LZ stream decoded to wrong length");
}

/// Gathers byte p of every `width`-byte element into one contiguous
/// plane: out[p * count + i] = in[i * width + p].
void plane_split(const std::uint8_t* in, std::size_t count, std::size_t width,
                 std::uint8_t* out) {
  for (std::size_t p = 0; p < width; ++p) {
    std::uint8_t* plane = out + p * count;
    const std::uint8_t* src = in + p;
    for (std::size_t i = 0; i < count; ++i) plane[i] = src[i * width];
  }
}

void plane_merge(const std::uint8_t* in, std::size_t count, std::size_t width,
                 std::uint8_t* out) {
  for (std::size_t p = 0; p < width; ++p) {
    const std::uint8_t* plane = in + p * count;
    std::uint8_t* dst = out + p;
    for (std::size_t i = 0; i < count; ++i) dst[i * width] = plane[i];
  }
}

void doubles_to_floats(const std::uint8_t* in, std::size_t raw_bytes,
                       std::uint8_t* out) {
  const std::size_t count = raw_bytes / sizeof(double);
  for (std::size_t i = 0; i < count; ++i) {
    double d;
    std::memcpy(&d, in + i * sizeof(double), sizeof(double));
    const float f = static_cast<float>(d);
    std::memcpy(out + i * sizeof(float), &f, sizeof(float));
  }
}

void floats_to_doubles(const std::uint8_t* in, std::size_t f32_bytes,
                       std::uint8_t* out) {
  const std::size_t count = f32_bytes / sizeof(float);
  for (std::size_t i = 0; i < count; ++i) {
    float f;
    std::memcpy(&f, in + i * sizeof(float), sizeof(float));
    const double d = static_cast<double>(f);
    std::memcpy(out + i * sizeof(double), &d, sizeof(double));
  }
}

void write_header(std::uint8_t* dst, Codec codec, std::size_t raw,
                  std::size_t payload, std::uint32_t crc) {
  std::memset(dst, 0, kFrameHeaderBytes);
  std::memcpy(dst, kMagic, 4);
  dst[4] = static_cast<std::uint8_t>(codec);
  const auto put32 = [&](std::size_t at, std::uint32_t v) {
    dst[at] = static_cast<std::uint8_t>(v & 0xff);
    dst[at + 1] = static_cast<std::uint8_t>((v >> 8) & 0xff);
    dst[at + 2] = static_cast<std::uint8_t>((v >> 16) & 0xff);
    dst[at + 3] = static_cast<std::uint8_t>((v >> 24) & 0xff);
  };
  put32(8, static_cast<std::uint32_t>(raw));
  put32(12, static_cast<std::uint32_t>(payload));
  put32(16, crc);
}

std::uint32_t read32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

}  // namespace

bool codec_lossless(Codec codec) noexcept {
  return codec == Codec::kRaw || codec == Codec::kLz;
}

const char* codec_name(Codec codec) noexcept {
  switch (codec) {
    case Codec::kRaw: return "raw";
    case Codec::kLz: return "lz";
    case Codec::kFp32: return "fp32";
    case Codec::kFp32Lz: return "fp32lz";
  }
  return "?";
}

Codec codec_from_name(const std::string& name) {
  if (name == "raw") return Codec::kRaw;
  if (name == "lz") return Codec::kLz;
  if (name == "fp32") return Codec::kFp32;
  if (name == "fp32lz") return Codec::kFp32Lz;
  throw Error("unknown codec '" + name + "' (raw, lz, fp32, fp32lz)");
}

std::size_t encoded_bound(std::size_t raw_bytes) noexcept {
  // Worst case is the incompressible fallback: header + raw payload
  // (fp32 payloads are half of raw, so raw covers every codec).
  return kFrameHeaderBytes + raw_bytes;
}

std::size_t encode(Codec codec, const void* src, std::size_t raw_bytes,
                   void* dst, CodecScratch& scratch) {
  QUASAR_CHECK(raw_bytes <= 0xffffffffu,
               "oocore codec: frame larger than 4 GiB");
  const auto* in = static_cast<const std::uint8_t*>(src);
  auto* out = static_cast<std::uint8_t*>(dst);
  const bool fp32 = codec == Codec::kFp32 || codec == Codec::kFp32Lz;
  const bool lz = codec == Codec::kLz || codec == Codec::kFp32Lz;
  QUASAR_CHECK(!fp32 || raw_bytes % sizeof(double) == 0,
               "oocore codec: fp32 frame needs whole doubles");
  QUASAR_CHECK(!lz || raw_bytes % sizeof(double) == 0,
               "oocore codec: lz frame needs whole doubles");

  const std::uint8_t* base = in;
  std::size_t base_bytes = raw_bytes;
  Codec base_codec = Codec::kRaw;
  if (fp32) {
    scratch.planes.resize(raw_bytes / 2);
    doubles_to_floats(in, raw_bytes, scratch.planes.data());
    base = scratch.planes.data();
    base_bytes = raw_bytes / 2;
    base_codec = Codec::kFp32;
  }
  if (lz) {
    const std::size_t width = fp32 ? sizeof(float) : sizeof(double);
    scratch.stage.resize(base_bytes);
    plane_split(base, base_bytes / width, width, scratch.stage.data());
    std::vector<std::uint8_t> packed;
    lz_compress(scratch.stage.data(), base_bytes, packed);
    if (packed.size() < base_bytes) {
      const std::uint32_t crc =
          quasar::crc32c(packed.data(), packed.size());
      write_header(out, fp32 ? Codec::kFp32Lz : Codec::kLz, raw_bytes,
                   packed.size(), crc);
      std::memcpy(out + kFrameHeaderBytes, packed.data(), packed.size());
      return kFrameHeaderBytes + packed.size();
    }
    // Incompressible: fall through to the un-LZ'd payload.
  }
  const std::uint32_t crc = quasar::crc32c(base, base_bytes);
  write_header(out, base_codec, raw_bytes, base_bytes, crc);
  std::memcpy(out + kFrameHeaderBytes, base, base_bytes);
  return kFrameHeaderBytes + base_bytes;
}

bool peek_frame(const void* src, std::size_t frame_bytes, FrameInfo* info) {
  if (frame_bytes < kFrameHeaderBytes) return false;
  const auto* p = static_cast<const std::uint8_t*>(src);
  if (std::memcmp(p, kMagic, 4) != 0) return false;
  if (p[4] > static_cast<std::uint8_t>(Codec::kFp32Lz)) return false;
  if (info != nullptr) {
    info->codec = static_cast<Codec>(p[4]);
    info->raw_bytes = read32(p + 8);
    info->payload_bytes = read32(p + 12);
  }
  return true;
}

std::size_t decode(const void* src, std::size_t frame_bytes, void* dst,
                   std::size_t dst_bytes, CodecScratch& scratch) {
  FrameInfo info;
  QUASAR_CHECK(peek_frame(src, frame_bytes, &info),
               "oocore codec: bad frame magic (torn or foreign data)");
  const auto* p = static_cast<const std::uint8_t*>(src);
  QUASAR_CHECK(kFrameHeaderBytes + info.payload_bytes <= frame_bytes,
               "oocore codec: frame payload extends past the buffer");
  QUASAR_CHECK(info.raw_bytes <= dst_bytes,
               "oocore codec: decode target too small");
  const std::uint8_t* payload = p + kFrameHeaderBytes;
  const std::uint32_t crc = read32(p + 16);
  QUASAR_CHECK(quasar::crc32c(payload, info.payload_bytes) == crc,
               "oocore codec: payload CRC mismatch (corrupt frame)");
  auto* out = static_cast<std::uint8_t*>(dst);
  switch (info.codec) {
    case Codec::kRaw:
      QUASAR_CHECK(info.payload_bytes == info.raw_bytes,
                   "oocore codec: raw frame length mismatch");
      std::memcpy(out, payload, info.raw_bytes);
      break;
    case Codec::kLz: {
      scratch.stage.resize(info.raw_bytes);
      lz_decompress(payload, info.payload_bytes, scratch.stage.data(),
                    info.raw_bytes);
      plane_merge(scratch.stage.data(), info.raw_bytes / sizeof(double),
                  sizeof(double), out);
      break;
    }
    case Codec::kFp32: {
      QUASAR_CHECK(info.payload_bytes * 2 == info.raw_bytes,
                   "oocore codec: fp32 frame length mismatch");
      floats_to_doubles(payload, info.payload_bytes, out);
      break;
    }
    case Codec::kFp32Lz: {
      const std::size_t f32_bytes = info.raw_bytes / 2;
      scratch.stage.resize(f32_bytes);
      lz_decompress(payload, info.payload_bytes, scratch.stage.data(),
                    f32_bytes);
      scratch.planes.resize(f32_bytes);
      plane_merge(scratch.stage.data(), f32_bytes / sizeof(float),
                  sizeof(float), scratch.planes.data());
      floats_to_doubles(scratch.planes.data(), f32_bytes, out);
      break;
    }
  }
  return info.raw_bytes;
}

}  // namespace quasar::oocore
