#include "oocore/pipeline.hpp"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <exception>
#include <mutex>
#include <thread>

#include "core/error.hpp"
#include "obs/names.hpp"
#include "obs/trace.hpp"

namespace quasar::oocore {

namespace {

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

SegmentPipeline::SegmentPipeline(SegmentStore& store, PipelineOptions options)
    : store_(store), options_(options) {
  options_.io_threads = std::max(1, options_.io_threads);
  options_.depth = std::max(2, options_.depth);
}

void SegmentPipeline::sweep(const std::vector<Tile>& tiles,
                            const ComputeFn& fn, bool writeback) {
  if (tiles.empty()) return;
  const std::uint64_t sweep_start = now_ns();
  // Only this sweep touches the store until it returns, so the stats
  // delta is exactly this sweep's transfer volume.
  const StoreStats store_before = store_.stats();

  std::size_t max_segs = 0, total_segs = 0;
  for (const Tile& t : tiles) {
    QUASAR_CHECK(!t.empty(), "SegmentPipeline: empty tile");
    max_segs = std::max(max_segs, t.size());
    total_segs += t.size();
  }
  const std::size_t seg_amps =
      static_cast<std::size_t>(store_.segment_amps());
  const std::size_t seg_bytes = store_.segment_raw_bytes();

  enum class SlotState { kFree, kLoading, kReady, kStoring };
  struct Slot {
    IoBuffer buf;
    std::size_t tile = 0;
    SlotState state = SlotState::kFree;
  };
  struct Job {
    bool is_store = false;
    std::size_t slot = 0;
  };

  const std::size_t depth =
      std::min<std::size_t>(options_.depth, tiles.size());
  std::vector<Slot> slots(depth);
  for (Slot& s : slots) s.buf.resize(max_segs * seg_bytes);

  std::mutex mu;
  std::condition_variable cv_worker;  // workers wait for jobs
  std::condition_variable cv_main;    // main waits for ready/free slots
  std::deque<Job> jobs;
  bool shutdown = false;
  std::exception_ptr failure;
  std::uint64_t io_busy_ns = 0;
  // tile -> slot holding it (set when the load is scheduled).
  std::vector<std::size_t> slot_of(tiles.size(), SIZE_MAX);

  const auto worker_body = [&] {
    SegmentScratch scratch;
    while (true) {
      Job job;
      {
        std::unique_lock<std::mutex> lock(mu);
        cv_worker.wait(lock, [&] { return !jobs.empty() || shutdown; });
        if (jobs.empty()) return;
        job = jobs.front();
        jobs.pop_front();
      }
      const std::uint64_t t0 = now_ns();
      Slot& slot = slots[job.slot];
      try {
        const Tile& tile = tiles[slot.tile];
        for (std::size_t i = 0; i < tile.size(); ++i) {
          Amplitude* at = reinterpret_cast<Amplitude*>(slot.buf.data()) +
                          i * seg_amps;
          if (job.is_store) {
            store_.write_segment(tile[i], at, scratch);
          } else {
            store_.read_segment(tile[i], at, scratch);
          }
        }
        std::lock_guard<std::mutex> lock(mu);
        io_busy_ns += now_ns() - t0;
        slot.state = job.is_store ? SlotState::kFree : SlotState::kReady;
        cv_main.notify_all();
      } catch (...) {
        std::lock_guard<std::mutex> lock(mu);
        if (!failure) failure = std::current_exception();
        slot.state = SlotState::kFree;
        cv_main.notify_all();
      }
    }
  };

  const int num_workers =
      static_cast<int>(std::min<std::size_t>(options_.io_threads, depth));
  std::vector<std::thread> workers;
  workers.reserve(num_workers);
  for (int w = 0; w < num_workers; ++w) workers.emplace_back(worker_body);

  std::uint64_t compute_ns = 0, stall_ns = 0;
  {
    std::unique_lock<std::mutex> lock(mu);
    std::size_t next_load = 0;
    const auto schedule_loads = [&] {
      while (next_load < tiles.size() && !failure) {
        std::size_t free_slot = SIZE_MAX;
        for (std::size_t s = 0; s < slots.size(); ++s) {
          if (slots[s].state == SlotState::kFree) {
            free_slot = s;
            break;
          }
        }
        if (free_slot == SIZE_MAX) break;
        slots[free_slot].state = SlotState::kLoading;
        slots[free_slot].tile = next_load;
        slot_of[next_load] = free_slot;
        jobs.push_back(Job{false, free_slot});
        ++next_load;
        cv_worker.notify_one();
      }
    };
    schedule_loads();
    for (std::size_t t = 0; t < tiles.size() && !failure; ++t) {
      // The tile's load may not even be scheduled yet when every slot is
      // busy storing; keep scheduling as slots free up, then wait for
      // the load to land. All of it is stall time from the compute
      // thread's point of view.
      const std::uint64_t w0 = now_ns();
      while (!failure) {
        schedule_loads();
        if (slot_of[t] != SIZE_MAX &&
            slots[slot_of[t]].state == SlotState::kReady) {
          break;
        }
        cv_main.wait(lock);
      }
      stall_ns += now_ns() - w0;
      if (failure) break;
      const std::size_t s = slot_of[t];
      lock.unlock();
      const std::uint64_t c0 = now_ns();
      try {
        fn(reinterpret_cast<Amplitude*>(slots[s].buf.data()), tiles[t], t);
      } catch (...) {
        // A throwing compute callback must not unwind past the joinable
        // workers: record it, free the slot, drain and rethrow below.
        lock.lock();
        if (!failure) failure = std::current_exception();
        slots[s].state = SlotState::kFree;
        break;
      }
      const std::uint64_t c1 = now_ns();
      lock.lock();
      compute_ns += c1 - c0;
      if (writeback) {
        slots[s].state = SlotState::kStoring;
        jobs.push_back(Job{true, s});
        cv_worker.notify_one();
      } else {
        slots[s].state = SlotState::kFree;
      }
      schedule_loads();
    }
    // Drain: all stores finished (every slot back to kFree or kReady from
    // a prefetch past the failure point).
    cv_main.wait(lock, [&] {
      for (const Slot& s : slots) {
        if (s.state == SlotState::kLoading || s.state == SlotState::kStoring) {
          return false;
        }
      }
      return true;
    });
    shutdown = true;
    cv_worker.notify_all();
  }
  for (std::thread& w : workers) w.join();
  if (failure) std::rethrow_exception(failure);

  const std::uint64_t sweep_ns = now_ns() - sweep_start;
  stats_.sweeps += 1;
  stats_.tiles += tiles.size();
  stats_.segments += total_segs;
  stats_.compute_ns += compute_ns;
  stats_.stall_ns += stall_ns;
  stats_.sweep_ns += sweep_ns;
  stats_.io_ns += io_busy_ns;
  if (obs::enabled()) {
    const StoreStats after = store_.stats();
    obs::count(obs::names::kOocoreSweeps);
    obs::count(obs::names::kOocoreTiles, tiles.size());
    obs::count(obs::names::kOocoreSegments, total_segs);
    obs::count(obs::names::kOocoreComputeNs, compute_ns);
    obs::count(obs::names::kOocoreStallNs, stall_ns);
    obs::count(obs::names::kOocoreSweepNs, sweep_ns);
    obs::count(obs::names::kOocoreIoNs, io_busy_ns);
    obs::count(obs::names::kOocoreRawBytes,
               (after.raw_bytes_read - store_before.raw_bytes_read) +
                   (after.raw_bytes_written - store_before.raw_bytes_written));
    obs::count(obs::names::kOocoreDiskBytes,
               (after.disk_bytes_read - store_before.disk_bytes_read) +
                   (after.disk_bytes_written -
                    store_before.disk_bytes_written));
  }
}

}  // namespace quasar::oocore
