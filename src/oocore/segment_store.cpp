#include "oocore/segment_store.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <cstring>

#include "core/error.hpp"
#include "core/scratch.hpp"
#include "obs/histogram.hpp"
#include "obs/names.hpp"

namespace quasar::oocore {

namespace {

constexpr std::size_t kSector = 4096;

std::size_t align_up(std::size_t v, std::size_t a) {
  return (v + a - 1) / a * a;
}

[[noreturn]] void throw_errno(const std::string& what) {
  throw Error(what + ": " + std::strerror(errno));
}

}  // namespace

IoBuffer::~IoBuffer() { std::free(data_); }

IoBuffer::IoBuffer(IoBuffer&& other) noexcept
    : data_(other.data_), bytes_(other.bytes_) {
  other.data_ = nullptr;
  other.bytes_ = 0;
}

IoBuffer& IoBuffer::operator=(IoBuffer&& other) noexcept {
  if (this == &other) return *this;
  std::free(data_);
  data_ = other.data_;
  bytes_ = other.bytes_;
  other.data_ = nullptr;
  other.bytes_ = 0;
  return *this;
}

void IoBuffer::resize(std::size_t bytes) {
  if (bytes <= bytes_) return;
  std::free(data_);
  data_ = nullptr;
  bytes_ = 0;
  void* p = nullptr;
  if (::posix_memalign(&p, kSector, align_up(bytes, kSector)) != 0) {
    throw Error("oocore: cannot allocate aligned I/O buffer");
  }
  data_ = static_cast<std::uint8_t*>(p);
  bytes_ = bytes;
}

SegmentStore::SegmentStore(Index count, const SegmentStoreOptions& options)
    : options_(options), count_(count) {
  QUASAR_CHECK(count > 0 && (count & (count - 1)) == 0,
               "SegmentStore: amplitude count must be a power of two");
  // Segment exponent from the byte target, clamped so a segment holds at
  // least 4 amplitudes and at most the whole slice.
  const std::size_t target_amps =
      std::max<std::size_t>(4, options.segment_bytes / sizeof(Amplitude));
  seg_exp_ = 2;
  while ((Index{1} << (seg_exp_ + 1)) <= static_cast<Index>(target_amps) &&
         (Index{1} << (seg_exp_ + 1)) <= count) {
    ++seg_exp_;
  }
  while ((Index{1} << seg_exp_) > count) --seg_exp_;
  num_segments_ = static_cast<std::size_t>(count >> seg_exp_);
  slot_stride_ = align_up(encoded_bound(segment_raw_bytes()), kSector);
  frame_bytes_.assign(num_segments_, 0);

  struct ::stat st;
  if (::stat(options.directory.c_str(), &st) != 0 || !S_ISDIR(st.st_mode)) {
    throw Error("SegmentStore: storage directory '" + options.directory +
                "' does not exist or is not a directory");
  }
  std::string path = options.directory + "/quasar_oocore_(O_TMPFILE)";
  // O_TMPFILE first: the file is anonymous from the instant it exists,
  // so a crash (or fault-injected _Exit) can never strand a multi-GB
  // backing file — mkstemp-then-unlink leaves a named orphan if the
  // process dies in between, and the O_DIRECT re-open used to widen
  // that window further. O_DIRECT rides along on the same open.
  fd_ = -1;
#ifdef O_TMPFILE
  if (options.direct_io) {
    fd_ = ::open(options.directory.c_str(), O_TMPFILE | O_RDWR | O_DIRECT,
                 0600);
    if (fd_ >= 0) direct_io_ = true;
  }
  if (fd_ < 0) {
    fd_ = ::open(options.directory.c_str(), O_TMPFILE | O_RDWR, 0600);
  }
#endif
  if (fd_ < 0) {
    // Filesystem without O_TMPFILE: named mkstemp, re-opened for
    // O_DIRECT, unlinked as early as possible. The per-process scratch
    // tag ("r<slot>." under the proc transport) keeps any orphan from a
    // hard kill attributable to the rank that leaked it.
    path = options.directory + "/quasar_oocore_" + process_scratch_tag() +
           "XXXXXX";
    fd_ = ::mkstemp(path.data());
    if (fd_ < 0) {
      throw_errno("SegmentStore: cannot create backing file in '" +
                  options.directory + "'");
    }
    if (options.direct_io) {
      const int dfd = ::open(path.c_str(), O_RDWR | O_DIRECT);
      if (dfd >= 0) {
        ::close(fd_);
        fd_ = dfd;
        direct_io_ = true;
      }
    }
    ::unlink(path.c_str());
  }
  if (::ftruncate(fd_, static_cast<off_t>(num_segments_ * slot_stride_)) !=
      0) {
    const int err = errno;
    ::close(fd_);
    fd_ = -1;
    errno = err;
    throw_errno("SegmentStore: cannot size backing file '" + path + "' to " +
                std::to_string(num_segments_ * slot_stride_) + " bytes");
  }
}

SegmentStore::~SegmentStore() {
  if (fd_ >= 0) ::close(fd_);
}

void SegmentStore::write_segment(std::size_t segment, const Amplitude* src,
                                 SegmentScratch& scratch) {
  QUASAR_CHECK(segment < num_segments_,
               "SegmentStore: segment index out of range");
  obs::ScopedLatency write_latency(obs::names::kOocoreWriteSegmentNs);
  scratch.frame.resize(slot_stride_);
  const std::size_t raw = segment_raw_bytes();
  std::size_t frame;
  {
    obs::ScopedLatency encode_latency(obs::names::kOocoreEncodeNs);
    frame =
        encode(options_.codec, src, raw, scratch.frame.data(), scratch.codec);
  }
  // Direct I/O needs sector-multiple lengths; the stride always has room.
  const std::size_t padded = align_up(frame, kSector);
  if (padded > frame) {
    std::memset(scratch.frame.data() + frame, 0, padded - frame);
  }
  const off_t at = static_cast<off_t>(segment * slot_stride_);
  std::size_t done = 0;
  while (done < padded) {
    const ssize_t n = ::pwrite(fd_, scratch.frame.data() + done,
                               padded - done, at + static_cast<off_t>(done));
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      throw_errno("SegmentStore: pwrite failed (disk full?)");
    }
    done += static_cast<std::size_t>(n);
  }
  frame_bytes_[segment] = static_cast<std::uint32_t>(frame);
  raw_written_.fetch_add(raw, std::memory_order_relaxed);
  disk_written_.fetch_add(frame, std::memory_order_relaxed);
  segs_written_.fetch_add(1, std::memory_order_relaxed);
}

void SegmentStore::read_segment(std::size_t segment, Amplitude* dst,
                                SegmentScratch& scratch) {
  QUASAR_CHECK(segment < num_segments_,
               "SegmentStore: segment index out of range");
  obs::ScopedLatency read_latency(obs::names::kOocoreReadSegmentNs);
  const std::uint32_t frame = frame_bytes_[segment];
  QUASAR_CHECK(frame > 0, "SegmentStore: reading a never-written segment");
  scratch.frame.resize(slot_stride_);
  const std::size_t padded = align_up(frame, kSector);
  const off_t at = static_cast<off_t>(segment * slot_stride_);
  std::size_t done = 0;
  while (done < padded) {
    const ssize_t n = ::pread(fd_, scratch.frame.data() + done, padded - done,
                              at + static_cast<off_t>(done));
    if (n < 0 && errno == EINTR) continue;
    QUASAR_CHECK(n > 0, "SegmentStore: pread failed or truncated file");
    done += static_cast<std::size_t>(n);
  }
  const std::size_t raw = segment_raw_bytes();
  std::size_t decoded;
  {
    obs::ScopedLatency decode_latency(obs::names::kOocoreDecodeNs);
    decoded = decode(scratch.frame.data(), frame, dst, raw, scratch.codec);
  }
  QUASAR_CHECK(decoded == raw, "SegmentStore: frame decoded to wrong length");
  raw_read_.fetch_add(raw, std::memory_order_relaxed);
  disk_read_.fetch_add(frame, std::memory_order_relaxed);
  segs_read_.fetch_add(1, std::memory_order_relaxed);
}

std::uint64_t SegmentStore::encoded_bytes() const noexcept {
  std::uint64_t total = 0;
  for (const std::uint32_t f : frame_bytes_) total += f;
  return total;
}

StoreStats SegmentStore::stats() const noexcept {
  StoreStats s;
  s.raw_bytes_read = raw_read_.load(std::memory_order_relaxed);
  s.raw_bytes_written = raw_written_.load(std::memory_order_relaxed);
  s.disk_bytes_read = disk_read_.load(std::memory_order_relaxed);
  s.disk_bytes_written = disk_written_.load(std::memory_order_relaxed);
  s.segments_read = segs_read_.load(std::memory_order_relaxed);
  s.segments_written = segs_written_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace quasar::oocore
