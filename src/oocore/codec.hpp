/// \file codec.hpp
/// \brief Shard codecs for the out-of-core pipeline (DESIGN.md §11).
///
/// QSystem's compact representation (PAPERS.md) argues amplitudes carry
/// fewer interesting bits than the 16 bytes they occupy: in a normalized
/// n-qubit state the magnitudes cluster around 2^(-n/2), so the exponent
/// bytes of the IEEE doubles are nearly constant while the mantissa tails
/// are noise. The lossless codec exploits exactly that structure with a
/// byte-plane split (byte p of every double gathered into one plane, so
/// the near-constant sign/exponent planes become long runs) followed by a
/// greedy LZ77 pass with LZ4-style tokens. The lossy codec truncates
/// doubles to floats first — the same precision the fp32 engine runs at —
/// halving the raw volume before the planes are split.
///
/// Every encoded buffer is a self-describing frame:
///
///   offset  size  field
///        0     4  magic "QOC1"
///        4     1  codec id (the codec actually used, see below)
///        5     1  flags (reserved, 0)
///        6     2  reserved (0)
///        8     4  raw (decoded) length, little endian
///       12     4  payload length, little endian
///       16     4  CRC32C of the payload bytes
///       20    12  reserved (0) — header padded to 32 bytes
///       32     …  payload
///
/// Incompressible input never expands past `encoded_bound`: when the LZ
/// pass fails to beat the identity, the frame is emitted with the raw
/// (or fp32-truncated) payload and the codec id downgraded accordingly —
/// the id in the frame is authoritative, the caller's choice is only an
/// upper bound. decode() verifies magic, lengths and payload CRC and
/// throws quasar::Error on any mismatch, so a torn or corrupted frame is
/// detected before a single amplitude is trusted.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "core/types.hpp"

namespace quasar::oocore {

/// Shard codec selector.
enum class Codec : std::uint8_t {
  kRaw = 0,     ///< identity (frame header + verbatim bytes)
  kLz = 1,      ///< byte-plane split + LZ77 (lossless)
  kFp32 = 2,    ///< double -> float truncation (lossy, fp32-engine grade)
  kFp32Lz = 3,  ///< fp32 truncation, then byte-plane + LZ77
};

/// True when round-tripping through `codec` reproduces the input bytes.
bool codec_lossless(Codec codec) noexcept;

/// "raw", "lz", "fp32", "fp32lz".
const char* codec_name(Codec codec) noexcept;

/// Inverse of codec_name; throws quasar::Error on an unknown name.
Codec codec_from_name(const std::string& name);

/// Frame header size in bytes.
inline constexpr std::size_t kFrameHeaderBytes = 32;

/// Upper bound on encode() output for `raw_bytes` of input under any
/// codec (header + worst-case incompressible payload).
std::size_t encoded_bound(std::size_t raw_bytes) noexcept;

/// Scratch buffers reused across encode/decode calls (plane transpose and
/// LZ staging). One instance per thread; not thread-safe.
struct CodecScratch {
  std::vector<std::uint8_t> planes;
  std::vector<std::uint8_t> stage;
};

/// Encodes `raw_bytes` bytes at `src` into a frame at `dst` (capacity at
/// least encoded_bound(raw_bytes)). `raw_bytes` must be a multiple of 8
/// for kLz and of 16 for the fp32 codecs (whole double / complex<double>
/// elements). Returns the total frame size (header + payload).
std::size_t encode(Codec codec, const void* src, std::size_t raw_bytes,
                   void* dst, CodecScratch& scratch);

/// Decodes the frame at `src` (`frame_bytes` total) into `dst` (capacity
/// `dst_bytes`). Returns the decoded length, which always equals the
/// frame's recorded raw length. Verifies magic, lengths and payload CRC;
/// throws quasar::Error on malformed or corrupt frames.
std::size_t decode(const void* src, std::size_t frame_bytes, void* dst,
                   std::size_t dst_bytes, CodecScratch& scratch);

/// Peeks at a frame header without decoding. Returns false when the
/// buffer is too small or the magic does not match.
struct FrameInfo {
  Codec codec = Codec::kRaw;
  std::size_t raw_bytes = 0;
  std::size_t payload_bytes = 0;
};
bool peek_frame(const void* src, std::size_t frame_bytes, FrameInfo* info);

}  // namespace quasar::oocore
