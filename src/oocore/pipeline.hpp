/// \file pipeline.hpp
/// \brief Asynchronous segment pipeline: overlap disk I/O with compute.
///
/// The out-of-core execution model (DESIGN.md §11): a rank's slice lives
/// in a SegmentStore and is streamed through a small ring of DRAM
/// buffers. Background I/O workers (the CheckpointWriter writer-thread
/// pattern: mutex + condition variables + a job queue) prefetch tile
/// k+1 — pread + codec decode — and write back tile k-1 — codec encode +
/// pwrite — while the calling thread runs the compute callback over tile
/// k. With enough overlap the sweep costs max(compute, io/ratio) instead
/// of compute + io, and a compression ratio > 1 multiplies the effective
/// disk bandwidth.
///
/// A *tile* is an ordered list of segment indices materialized together
/// in one buffer (packed contiguously in list order). The common sweep
/// uses single-segment tiles; gates acting on bit-locations above the
/// segment exponent use grouped tiles that gather the 2^h segments
/// touched by one gate application (see runtime/oocore_exec.cpp).
/// Tiles must be disjoint; compute runs strictly in tile order on the
/// calling thread, so results are deterministic regardless of I/O timing.
///
/// io_uring would be the next step for the I/O lanes (one ring per
/// worker, batched submissions); the job-queue structure below maps onto
/// it directly, but worker threads with pread/pwrite are portable and
/// already saturate the container disks this code is measured on.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "core/types.hpp"
#include "oocore/segment_store.hpp"

namespace quasar::oocore {

struct PipelineOptions {
  /// Background I/O worker threads (clamped to >= 1).
  int io_threads = 2;
  /// DRAM ring depth in tiles (clamped to >= 2; 3 lets a load, the
  /// compute and a store proceed concurrently).
  int depth = 3;
};

/// Wall-clock accounting for the sweeps run so far (monotonic).
struct PipelineStats {
  std::uint64_t sweeps = 0;
  std::uint64_t tiles = 0;
  std::uint64_t segments = 0;
  /// Calling thread: inside the compute callback / waiting for I/O.
  std::uint64_t compute_ns = 0;
  std::uint64_t stall_ns = 0;
  /// End-to-end sweep wall time.
  std::uint64_t sweep_ns = 0;
  /// Busy time summed across I/O workers (read+decode and encode+write).
  std::uint64_t io_ns = 0;
};

/// Streams tiles of a SegmentStore through a DRAM ring with background
/// I/O workers. The pipeline itself is not thread-safe: one sweep at a
/// time, driven from one thread.
class SegmentPipeline {
 public:
  /// One tile: segment indices packed together in one buffer.
  using Tile = std::vector<std::uint32_t>;
  /// Compute callback: `data` holds the tile's segments packed in list
  /// order; `tile_index` is the position within the sweep's tile list.
  using ComputeFn =
      std::function<void(Amplitude* data, const Tile& tile,
                         std::size_t tile_index)>;

  explicit SegmentPipeline(SegmentStore& store, PipelineOptions options = {});

  /// Runs `fn` over every tile in order, prefetching ahead and (when
  /// `writeback` is set) re-encoding and writing each tile back after
  /// its compute finishes. Rethrows any I/O worker failure.
  void sweep(const std::vector<Tile>& tiles, const ComputeFn& fn,
             bool writeback = true);

  const PipelineStats& stats() const noexcept { return stats_; }
  SegmentStore& store() noexcept { return store_; }

 private:
  SegmentStore& store_;
  PipelineOptions options_;
  PipelineStats stats_;
};

}  // namespace quasar::oocore
