#include "serve/admission.hpp"

#include <limits>

#include "core/error.hpp"
#include "perfmodel/comm_model.hpp"
#include "perfmodel/machine.hpp"
#include "perfmodel/run_model.hpp"
#include "runtime/proc_transport.hpp"

namespace quasar::serve {

std::uint64_t peak_run_bytes(int num_qubits, const std::string& engine,
                             std::size_t bounce_buffer_bytes) {
  constexpr std::uint64_t kSaturated =
      std::numeric_limits<std::uint64_t>::max();
  // Amplitudes are 8 bytes (fp32 pairs) or 16 (fp64 pairs), so the
  // statevector is 2^(n + shift) bytes. A shift past 63 bits would wrap
  // and make an exabyte-scale job look tiny to the budget check, so
  // saturate instead: over any finite budget, always rejected.
  const int amp_shift = engine == "fp32" ? 3 : 4;
  if (num_qubits < 0 || num_qubits + amp_shift >= 64) {
    return kSaturated;
  }
  const std::uint64_t amp_bytes = std::uint64_t{1}
                                  << (num_qubits + amp_shift);
  const std::uint64_t bounce = bounce_buffer_bytes;
  return amp_bytes > kSaturated - bounce ? kSaturated : amp_bytes + bounce;
}

JobPrice price_job(const Circuit& circuit, const Schedule& schedule,
                   const JobSpec& spec, std::size_t bounce_buffer_bytes,
                   double interactive_threshold_s) {
  // host_machine(false) skips the STREAM benchmark: admission pricing
  // must stay microseconds-cheap even on the first job.
  static const MachineModel node = host_machine(false);
  static const InterconnectModel net = aries_dragonfly();
  const int g = circuit.num_qubits() - schedule.options.num_local;
  // admission_error() bounds g on untrusted input before anything is
  // priced; this check keeps the rank-count shift defined even if a
  // caller skips admission.
  QUASAR_CHECK(g >= 1 && g <= kMaxGlobalQubits,
               "serve: price_job needs 1 <= global qubits <= " +
                   std::to_string(kMaxGlobalQubits) + ", got " +
                   std::to_string(g));
  const int nodes = static_cast<int>(std::uint64_t{1} << g);
  const RunPrediction prediction =
      model_run(circuit, schedule, node, net, nodes);

  JobPrice price;
  price.predicted_seconds = prediction.total_seconds();
  // An fp32 state halves the amplitude bytes but not the model's fp64
  // kernel estimate; the seconds stay a conservative upper bound.
  price.peak_bytes =
      peak_run_bytes(circuit.num_qubits(), spec.engine, bounce_buffer_bytes);
  switch (spec.priority) {
    case JobSpec::Priority::kInteractive:
      price.interactive = true;
      break;
    case JobSpec::Priority::kBatch:
      price.interactive = false;
      break;
    case JobSpec::Priority::kAuto:
      price.interactive = price.predicted_seconds < interactive_threshold_s;
      break;
  }
  return price;
}

std::string admission_error(const Circuit& circuit, const JobSpec& spec,
                            std::uint64_t peak_bytes,
                            std::uint64_t max_job_bytes) {
  const int n = circuit.num_qubits();
  const int l = spec.local;
  if (l >= n) {
    return "reason=local msg=local qubits (" + std::to_string(l) +
           ") must be below the circuit width (" + std::to_string(n) +
           "); the server only runs distributed engines";
  }
  const int g = n - l;
  // Bound g first: every later check (and the pricing model) shifts by
  // it, and circuits allow up to 62 qubits with l as low as 1.
  if (g > kMaxGlobalQubits) {
    return "reason=geometry msg=server caps global qubits at " +
           std::to_string(kMaxGlobalQubits) + " (2^g ranks), got " +
           std::to_string(g);
  }
  if (spec.engine == "fp32") {
    if (g > 12) {
      return "reason=geometry msg=fp32 engine supports at most 12 global "
             "qubits, got " +
             std::to_string(g);
    }
    if (g > l) {
      return "reason=geometry msg=fp32 engine needs global <= local "
             "qubits, got " +
             std::to_string(g) + " > " + std::to_string(l);
    }
    if (spec.samples > 0) {
      return "reason=samples msg=fp32 engine has no sampler; "
             "submit samples=0 or engine=fp64";
    }
  }
  const std::uint64_t ranks = std::uint64_t{1} << g;
  if (spec.transport == TransportKind::kProc &&
      ranks > static_cast<std::uint64_t>(proc::kMaxProcRanks)) {
    return "reason=transport msg=transport=proc supports at most " +
           std::to_string(proc::kMaxProcRanks) + " ranks, job needs " +
           std::to_string(ranks);
  }
  if (peak_bytes > max_job_bytes) {
    return "reason=memory msg=job needs " + std::to_string(peak_bytes) +
           " bytes, per-job budget is " + std::to_string(max_job_bytes);
  }
  return std::string();
}

}  // namespace quasar::serve
