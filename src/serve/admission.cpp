#include "serve/admission.hpp"

#include "perfmodel/comm_model.hpp"
#include "perfmodel/machine.hpp"
#include "perfmodel/run_model.hpp"
#include "runtime/proc_transport.hpp"

namespace quasar::serve {

std::uint64_t peak_run_bytes(int num_qubits, const std::string& engine,
                             std::size_t bounce_buffer_bytes) {
  const std::uint64_t amp_bytes = engine == "fp32" ? 8 : 16;
  return (amp_bytes << num_qubits) +
         static_cast<std::uint64_t>(bounce_buffer_bytes);
}

JobPrice price_job(const Circuit& circuit, const Schedule& schedule,
                   const JobSpec& spec, std::size_t bounce_buffer_bytes,
                   double interactive_threshold_s) {
  // host_machine(false) skips the STREAM benchmark: admission pricing
  // must stay microseconds-cheap even on the first job.
  static const MachineModel node = host_machine(false);
  static const InterconnectModel net = aries_dragonfly();
  const int nodes = 1 << (circuit.num_qubits() - schedule.options.num_local);
  const RunPrediction prediction =
      model_run(circuit, schedule, node, net, nodes);

  JobPrice price;
  price.predicted_seconds = prediction.total_seconds();
  // An fp32 state halves the amplitude bytes but not the model's fp64
  // kernel estimate; the seconds stay a conservative upper bound.
  price.peak_bytes =
      peak_run_bytes(circuit.num_qubits(), spec.engine, bounce_buffer_bytes);
  switch (spec.priority) {
    case JobSpec::Priority::kInteractive:
      price.interactive = true;
      break;
    case JobSpec::Priority::kBatch:
      price.interactive = false;
      break;
    case JobSpec::Priority::kAuto:
      price.interactive = price.predicted_seconds < interactive_threshold_s;
      break;
  }
  return price;
}

std::string admission_error(const Circuit& circuit, const JobSpec& spec,
                            std::uint64_t peak_bytes,
                            std::uint64_t max_job_bytes) {
  const int n = circuit.num_qubits();
  const int l = spec.local;
  if (l >= n) {
    return "reason=local msg=local qubits (" + std::to_string(l) +
           ") must be below the circuit width (" + std::to_string(n) +
           "); the server only runs distributed engines";
  }
  const int g = n - l;
  if (spec.engine == "fp32") {
    if (g > 12) {
      return "reason=geometry msg=fp32 engine supports at most 12 global "
             "qubits, got " +
             std::to_string(g);
    }
    if (g > l) {
      return "reason=geometry msg=fp32 engine needs global <= local "
             "qubits, got " +
             std::to_string(g) + " > " + std::to_string(l);
    }
    if (spec.samples > 0) {
      return "reason=samples msg=fp32 engine has no sampler; "
             "submit samples=0 or engine=fp64";
    }
  }
  if (spec.transport == TransportKind::kProc &&
      (1 << g) > proc::kMaxProcRanks) {
    return "reason=transport msg=transport=proc supports at most " +
           std::to_string(proc::kMaxProcRanks) + " ranks, job needs " +
           std::to_string(1 << g);
  }
  if (peak_bytes > max_job_bytes) {
    return "reason=memory msg=job needs " + std::to_string(peak_bytes) +
           " bytes, per-job budget is " + std::to_string(max_job_bytes);
  }
  return std::string();
}

}  // namespace quasar::serve
