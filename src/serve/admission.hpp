/// \file admission.hpp
/// \brief Job pricing and admission control for the serve subsystem.
///
/// Every admitted job is priced BEFORE it queues: the performance model
/// (perfmodel/run_model) predicts wall-clock seconds for the schedule on
/// the host machine, and the engine geometry gives the peak resident
/// bytes (full statevector in the job's precision plus the bounce
/// buffer). The price drives three decisions:
///
///   1. reject: jobs whose peak bytes exceed the server's per-job budget
///      never run and cannot OOM a tenant next door;
///   2. classify: predicted seconds under the interactive threshold ->
///      interactive class, else batch (unless the client pinned one);
///   3. order: within a class, cheaper-predicted jobs run first.
///
/// Pricing uses host_machine(false) — the calibrated-but-unmeasured
/// model — so admission costs microseconds, not a bandwidth benchmark.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "circuit/circuit.hpp"
#include "sched/schedule.hpp"
#include "serve/protocol.hpp"

namespace quasar::serve {

/// Hard ceiling on global qubits (the server runs 2^g ranks): keeps the
/// rank count inside `int` for the pricing model and the engines, and
/// bounds every shift in the admission math. Circuits allow n <= 62, so
/// g could otherwise reach 61.
constexpr int kMaxGlobalQubits = 30;

/// The job's admission price.
struct JobPrice {
  double predicted_seconds = 0.0;  ///< perfmodel wall-clock estimate
  std::uint64_t peak_bytes = 0;    ///< statevector + bounce buffer
  bool interactive = false;        ///< final class after overrides
};

/// Peak resident bytes of a run: 2^n amplitudes in the engine's
/// precision plus the transition bounce buffer. Saturates to
/// uint64-max when 2^n bytes would overflow 64 bits (n >= 60 for
/// fp64), so an absurd submission trips the budget check instead of
/// wrapping past it.
std::uint64_t peak_run_bytes(int num_qubits, const std::string& engine,
                             std::size_t bounce_buffer_bytes);

/// Prices a job and resolves its queue class. `interactive_threshold_s`
/// is the server's cutoff for auto-classified jobs. Requires an
/// admissible geometry (1 <= global qubits <= kMaxGlobalQubits) — run
/// admission_error() first on untrusted input.
JobPrice price_job(const Circuit& circuit, const Schedule& schedule,
                   const JobSpec& spec, std::size_t bounce_buffer_bytes,
                   double interactive_threshold_s);

/// Validates a spec against a circuit and the server's limits. Returns
/// an empty string when admissible, else a one-line rejection reason
/// (stable `reason=` token first, then prose).
std::string admission_error(const Circuit& circuit, const JobSpec& spec,
                            std::uint64_t peak_bytes,
                            std::uint64_t max_job_bytes);

}  // namespace quasar::serve
