#include "serve/cache.hpp"

#include "core/error.hpp"

namespace quasar::serve {

ScheduleCache::ScheduleCache(std::size_t capacity) : capacity_(capacity) {
  QUASAR_CHECK(capacity >= 1, "schedule cache capacity must be >= 1");
}

std::shared_ptr<const Schedule> ScheduleCache::lookup(
    const std::string& key_text) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = index_.find(key_text);
  if (it == index_.end()) {
    ++misses_;
    return nullptr;
  }
  ++hits_;
  lru_.splice(lru_.begin(), lru_, it->second);
  return it->second->schedule;
}

void ScheduleCache::insert(const std::string& key_text,
                           std::shared_ptr<const Schedule> schedule) {
  QUASAR_CHECK(schedule != nullptr, "schedule cache rejects null entries");
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = index_.find(key_text);
  if (it != index_.end()) {
    it->second->schedule = std::move(schedule);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.push_front(Entry{key_text, std::move(schedule)});
  index_[key_text] = lru_.begin();
  while (lru_.size() > capacity_) {
    index_.erase(lru_.back().key);
    lru_.pop_back();
    ++evictions_;
  }
}

ScheduleCache::Stats ScheduleCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Stats s;
  s.hits = hits_;
  s.misses = misses_;
  s.evictions = evictions_;
  s.entries = lru_.size();
  return s;
}

}  // namespace quasar::serve
