/// \file fingerprint.hpp
/// \brief The canonical run-state fingerprint and result-line formats.
///
/// One job's observable outcome is four deterministic lines:
///
///     fingerprint 0x%08x
///     norm %.17g
///     entropy %.12g
///     samples <outcome> <outcome> ...
///
/// `quasar_cli run --digest`, the job server's RESULT section, and the
/// checkpoint/transport demos all print them through these helpers, so
/// "bit-identical across paths" is checkable with a line diff (the
/// serve-smoke and ckpt-smoke CI jobs do exactly that).
///
/// The fingerprint is an order-sensitive CRC32C of the full distributed
/// run state: every rank slice in rank order, then the qubit mapping
/// and the deferred per-rank phases. Two runs print the same
/// fingerprint iff their distributed states are bit-identical.
/// rank_slice() works on every transport — cluster() would throw under
/// QUASAR_TRANSPORT=proc. Header-only: demos and the CLI use it without
/// linking the serve library.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <type_traits>
#include <vector>

#include "ckpt/crc32c.hpp"
#include "core/types.hpp"

namespace quasar::serve {

/// Order-sensitive digest of a distributed engine's full run state.
/// Works on DistributedSimulator and DistributedSimulatorF (the
/// amplitude width comes from the engine's slice type, so fp64 and fp32
/// states of "the same" run fingerprint differently, as they must).
template <typename Sim>
std::uint32_t state_fingerprint(const Sim& sim) {
  using Amp = std::remove_cv_t<
      std::remove_pointer_t<decltype(sim.rank_slice(0))>>;
  std::uint32_t crc = 0;
  for (int r = 0; r < sim.num_ranks(); ++r) {
    crc = ckpt::crc32c_extend(
        crc, sim.rank_slice(r),
        static_cast<std::size_t>(sim.local_size()) * sizeof(Amp));
  }
  crc = ckpt::crc32c_extend(crc, sim.mapping().data(),
                            sim.mapping().size() * sizeof(int));
  crc = ckpt::crc32c_extend(
      crc, sim.pending_phases().data(),
      sim.pending_phases().size() * sizeof(sim.pending_phases()[0]));
  return crc;
}

inline std::string format_fingerprint_line(std::uint32_t crc) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "fingerprint 0x%08x", crc);
  return buffer;
}

inline std::string format_norm_line(double norm_squared) {
  char buffer[48];
  std::snprintf(buffer, sizeof(buffer), "norm %.17g", norm_squared);
  return buffer;
}

inline std::string format_entropy_line(double entropy) {
  char buffer[48];
  std::snprintf(buffer, sizeof(buffer), "entropy %.12g", entropy);
  return buffer;
}

inline std::string format_samples_line(const std::vector<Index>& outcomes) {
  std::string line = "samples";
  char buffer[32];
  for (const Index outcome : outcomes) {
    std::snprintf(buffer, sizeof(buffer), " %llu",
                  static_cast<unsigned long long>(outcome));
    line += buffer;
  }
  return line;
}

}  // namespace quasar::serve
