/// \file protocol.hpp
/// \brief The job-server wire protocol: endpoints, line channel, job spec.
///
/// The server speaks a line-oriented text protocol over UNIX-domain or
/// TCP stream sockets (the same socket style as runtime/proc_transport,
/// minus the binary frames — results must be diffable against
/// `quasar_cli run --digest` output, so everything is text). Grammar
/// (DESIGN.md §13):
///
///   client -> server:
///     SUBMIT <key>=<value> ...      begin a job; keys are JobSpec fields
///     <circuit text lines>          circuit/io.hpp format, verbatim
///     END                           terminates the circuit
///     STATS | PING | SHUTDOWN      control verbs (no body)
///
///   server -> client (one submission):
///     QUEUED id=<id> digest=0x<crc> cache=<hit|miss> class=<class>
///            predicted_s=<s> peak_bytes=<b>
///     STATUS id=<id> state=<running|queued|preempted> stage=<k>/<N>
///            eta=<s>              (zero or more, while the job runs)
///     RESULT id=<id>
///     <result lines>               fingerprint/norm/entropy/samples
///                                  (fingerprint.hpp formats), then
///                                  optional `metrics <path>` and
///                                  `trace <path>` artifact pointers
///     DONE id=<id>
///   or:
///     REJECTED reason=<token> msg=<text>   (admission control)
///     ERROR msg=<text>                     (parse/run failure)
///
/// Strictness matches the rest of the codebase: unknown SUBMIT keys,
/// malformed values, or a circuit that fails read_circuit() are
/// rejected loudly — nothing is guessed at.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "runtime/communicator.hpp"
#include "sched/schedule.hpp"

namespace quasar::serve {

/// A listen/connect address: `unix:<path>` or `tcp:<host>:<port>`
/// (numeric IPv4 or `localhost`; port 0 lets the kernel pick — read the
/// resolved one back with bound_tcp_port()).
struct Endpoint {
  enum class Kind { kUnix, kTcp };
  Kind kind = Kind::kUnix;
  std::string path;  ///< kUnix: socket path
  std::string host;  ///< kTcp: numeric IPv4 or "localhost"
  int port = 0;      ///< kTcp
  std::string to_string() const;
};

/// Strict endpoint parser; throws quasar::Error on anything else.
Endpoint parse_endpoint(const std::string& text);

/// Creates a listening socket (unlinking a stale UNIX path first).
/// Throws quasar::Error on failure.
int listen_endpoint(const Endpoint& endpoint, int backlog = 16);

/// Connects to a server. Throws quasar::Error on failure.
int connect_endpoint(const Endpoint& endpoint);

/// The port a tcp:...:0 listener actually bound.
int bound_tcp_port(int fd);

/// Buffered line I/O over a stream socket. Owns the fd. Reads are
/// newline-delimited; writes append the newline. EINTR is retried and
/// SIGPIPE suppressed (MSG_NOSIGNAL), mirroring proc_transport — a
/// vanished peer surfaces as a false return, never a signal.
class LineChannel {
 public:
  /// Longest accepted incoming line. Generous because a RESULT samples
  /// line can carry 2^20 draws (~20 MB), but finite so a peer cannot
  /// grow the read buffer without bound by never sending a newline;
  /// past it read_line() fails as if the connection dropped.
  static constexpr std::size_t kMaxLineBytes = std::size_t{64} << 20;

  explicit LineChannel(int fd) : fd_(fd) {}
  ~LineChannel();
  LineChannel(LineChannel&& other) noexcept;
  LineChannel& operator=(LineChannel&&) = delete;
  LineChannel(const LineChannel&) = delete;
  LineChannel& operator=(const LineChannel&) = delete;

  /// Reads one line (without the newline). False on EOF or error.
  bool read_line(std::string& line);
  /// Writes one line (appends the newline). False once the peer is gone.
  bool write_line(const std::string& line);
  int fd() const { return fd_; }
  void close();

 private:
  int fd_ = -1;
  std::string buffer_;
};

/// Splits on runs of spaces (no empty tokens).
std::vector<std::string> split_tokens(const std::string& line);

/// Everything a submission says about how to run its circuit. The
/// defaults match `quasar_cli run`: fp64, basis-state |0..0> init, seed
/// 2026, worst-case specialization — so a default submission is
/// line-diffable against a default CLI run.
struct JobSpec {
  std::string engine = "fp64";  ///< "fp64" | "fp32"
  int local = -1;               ///< local qubits; -1 = auto (n - 2)
  int kmax = 5;
  SpecializationMode mode = SpecializationMode::kWorstCase;
  int samples = 0;
  std::uint64_t seed = 2026;
  bool uniform_init = false;  ///< |+>^n instead of |0..0>
  /// Queue class: kAuto prices the job and classifies by the server's
  /// interactive threshold; explicit values override.
  enum class Priority { kAuto, kInteractive, kBatch };
  Priority priority = Priority::kAuto;
  TransportKind transport = TransportKind::kVirtual;
  /// Testing knob: sleep this long at every stage boundary, making a
  /// job's duration deterministic for preemption tests (DESIGN.md §13).
  int stall_ms = 0;

  /// `key=value` tokens for the SUBMIT line (every field, canonical
  /// order). parse(to_tokens()) round-trips.
  std::string to_tokens() const;
  /// Strict parse of SUBMIT tokens (sans the verb). Unknown keys and
  /// malformed values throw quasar::Error naming the offender.
  static JobSpec parse(const std::vector<std::string>& tokens);
};

/// Token <-> enum helpers shared with the CLI front ends.
SpecializationMode parse_specialization(const std::string& token);
const char* specialization_token(SpecializationMode mode);

}  // namespace quasar::serve
