/// \file client.hpp
/// \brief Client side of the job-server protocol.
///
/// A thin, blocking wrapper over the line protocol: submit a circuit,
/// collect STATUS lines (optionally streamed to a callback as they
/// arrive) and the RESULT payload. The payload lines are returned
/// verbatim — `quasar_client` prints them unmodified so CI can diff a
/// served run line-exactly against `quasar_cli run --digest`.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "serve/protocol.hpp"

namespace quasar::serve {

/// Everything one submission produced.
struct SubmitOutcome {
  /// True when the server QUEUED the job (even if it later errored).
  bool accepted = false;
  /// True when the RESULT/DONE section arrived.
  bool done = false;
  std::uint64_t id = 0;
  bool cache_hit = false;
  std::string queued_line;   ///< full QUEUED line (pricing, class, digest)
  std::string reject_line;   ///< REJECTED/ERROR line when !accepted
  std::string error;         ///< terminal ERROR msg after acceptance
  std::vector<std::string> status_lines;
  /// Lines between RESULT and DONE: fingerprint/norm/entropy/samples,
  /// then any metrics/trace artifact pointers.
  std::vector<std::string> result_lines;
};

/// One connection to a job server. Submissions on a client are
/// sequential (the protocol interleaves one job per connection at a
/// time); open several clients for concurrency.
class ServeClient {
 public:
  /// Connects immediately; throws quasar::Error on failure.
  explicit ServeClient(const Endpoint& endpoint);

  /// Submits `circuit_text` (circuit/io.hpp format) under `spec` and
  /// blocks until the job finishes. `on_status`, when given, sees every
  /// STATUS line as it arrives.
  SubmitOutcome submit(
      const JobSpec& spec, const std::string& circuit_text,
      const std::function<void(const std::string&)>& on_status = nullptr);

  /// The server's one-line STATS reply (empty on connection loss).
  std::string stats();
  /// True when the server answered PONG.
  bool ping();
  /// Asks the server to shut down; returns its acknowledgement line.
  std::string shutdown_server();

 private:
  LineChannel channel_;
};

}  // namespace quasar::serve
