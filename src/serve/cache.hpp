/// \file cache.hpp
/// \brief LRU cache of built schedules, keyed on the canonical digest text.
///
/// Scheduling is the server's only per-shape cost that repeats across
/// submissions of the same circuit — the swap search and cluster build
/// are pure functions of (circuit, options). The cache keys on the FULL
/// canonical key text from sched::schedule_key_text, not the 32-bit
/// digest: a CRC collision must never silently reuse another circuit's
/// schedule. The digest is still what counters and wire messages show
/// (it is the same value checkpoint manifests carry, so a cache entry
/// and a snapshot made from it always agree).
///
/// Entries are immutable shared_ptr<const Schedule>; a hit hands out the
/// pointer without copying, so concurrent jobs can run off one entry
/// while the cache evicts it.
#pragma once

#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "sched/schedule.hpp"

namespace quasar::serve {

/// Thread-safe LRU schedule cache.
class ScheduleCache {
 public:
  /// `capacity` is the maximum number of cached schedules (>= 1).
  explicit ScheduleCache(std::size_t capacity);

  /// Looks up the schedule for a canonical key text (see
  /// sched::schedule_key_text). A hit refreshes recency and returns the
  /// entry; a miss returns nullptr.
  std::shared_ptr<const Schedule> lookup(const std::string& key_text);

  /// Inserts (or refreshes) an entry, evicting the least recently used
  /// one when over capacity.
  void insert(const std::string& key_text,
              std::shared_ptr<const Schedule> schedule);

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::size_t entries = 0;
  };
  Stats stats() const;

 private:
  struct Entry {
    std::string key;
    std::shared_ptr<const Schedule> schedule;
  };

  mutable std::mutex mutex_;
  std::size_t capacity_;
  std::list<Entry> lru_;  // front = most recently used
  std::unordered_map<std::string, std::list<Entry>::iterator> index_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
};

}  // namespace quasar::serve
