#include "serve/client.hpp"

#include "core/error.hpp"
#include "core/parse.hpp"

namespace quasar::serve {

namespace {

/// Pulls `key=` from a server line's tokens; empty when absent.
std::string token_value(const std::vector<std::string>& tokens,
                        const std::string& key) {
  const std::string prefix = key + "=";
  for (const std::string& token : tokens) {
    if (token.rfind(prefix, 0) == 0) {
      return token.substr(prefix.size());
    }
  }
  return std::string();
}

}  // namespace

ServeClient::ServeClient(const Endpoint& endpoint)
    : channel_(connect_endpoint(endpoint)) {}

SubmitOutcome ServeClient::submit(
    const JobSpec& spec, const std::string& circuit_text,
    const std::function<void(const std::string&)>& on_status) {
  SubmitOutcome outcome;
  if (!channel_.write_line("SUBMIT " + spec.to_tokens())) {
    outcome.reject_line = "ERROR msg=connection lost during SUBMIT";
    return outcome;
  }
  std::size_t start = 0;
  while (start <= circuit_text.size()) {
    const std::size_t newline = circuit_text.find('\n', start);
    const std::size_t end =
        newline == std::string::npos ? circuit_text.size() : newline;
    if (end > start || newline != std::string::npos) {
      if (!channel_.write_line(circuit_text.substr(start, end - start))) {
        outcome.reject_line = "ERROR msg=connection lost sending circuit";
        return outcome;
      }
    }
    if (newline == std::string::npos) break;
    start = newline + 1;
  }
  if (!channel_.write_line("END")) {
    outcome.reject_line = "ERROR msg=connection lost sending END";
    return outcome;
  }

  std::string line;
  if (!channel_.read_line(line)) {
    outcome.reject_line = "ERROR msg=connection closed before a reply";
    return outcome;
  }
  std::vector<std::string> tokens = split_tokens(line);
  if (tokens.empty() || tokens[0] != "QUEUED") {
    outcome.reject_line = line;
    return outcome;
  }
  outcome.accepted = true;
  outcome.queued_line = line;
  outcome.id = parse_uint64(token_value(tokens, "id"), "job id", line);
  outcome.cache_hit = token_value(tokens, "cache") == "hit";

  bool in_result = false;
  while (channel_.read_line(line)) {
    if (!in_result) {
      tokens = split_tokens(line);
      const std::string& verb = tokens.empty() ? line : tokens[0];
      if (verb == "STATUS") {
        outcome.status_lines.push_back(line);
        if (on_status) on_status(line);
        continue;
      }
      if (verb == "RESULT") {
        in_result = true;
        continue;
      }
      if (verb == "ERROR") {
        const std::size_t msg = line.find("msg=");
        outcome.error =
            msg == std::string::npos ? line : line.substr(msg + 4);
        return outcome;
      }
      throw Error("serve client: unexpected server line '" + line + "'");
    }
    if (split_tokens(line).size() >= 1 &&
        line.rfind("DONE ", 0) == 0) {
      outcome.done = true;
      return outcome;
    }
    outcome.result_lines.push_back(line);
  }
  outcome.error = "connection closed mid-job";
  return outcome;
}

std::string ServeClient::stats() {
  if (!channel_.write_line("STATS")) return std::string();
  std::string line;
  if (!channel_.read_line(line)) return std::string();
  return line;
}

bool ServeClient::ping() {
  if (!channel_.write_line("PING")) return false;
  std::string line;
  return channel_.read_line(line) && line == "PONG";
}

std::string ServeClient::shutdown_server() {
  if (!channel_.write_line("SHUTDOWN")) return std::string();
  std::string line;
  channel_.read_line(line);
  return line;
}

}  // namespace quasar::serve
