#include "serve/protocol.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "core/error.hpp"
#include "core/parse.hpp"

namespace quasar::serve {

namespace {

[[noreturn]] void fail(const std::string& message) { throw Error(message); }

[[noreturn]] void fail_errno(const std::string& what) {
  fail("serve: " + what + ": " + std::strerror(errno));
}

int make_socket(int domain) {
  const int fd = ::socket(domain, SOCK_STREAM, 0);
  if (fd < 0) {
    fail_errno("socket()");
  }
  return fd;
}

sockaddr_un unix_address(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() + 1 > sizeof(addr.sun_path)) {
    fail("serve: UNIX socket path too long (" + std::to_string(path.size()) +
         " bytes): " + path);
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

sockaddr_in tcp_address(const Endpoint& endpoint) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port =
      htons(static_cast<std::uint16_t>(static_cast<unsigned>(endpoint.port)));
  const std::string host =
      endpoint.host == "localhost" ? std::string("127.0.0.1") : endpoint.host;
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    fail("serve: tcp host must be a numeric IPv4 address or localhost, got '" +
         endpoint.host + "'");
  }
  return addr;
}

}  // namespace

std::string Endpoint::to_string() const {
  if (kind == Kind::kUnix) {
    return "unix:" + path;
  }
  return "tcp:" + host + ":" + std::to_string(port);
}

Endpoint parse_endpoint(const std::string& text) {
  Endpoint endpoint;
  if (text.rfind("unix:", 0) == 0) {
    endpoint.kind = Endpoint::Kind::kUnix;
    endpoint.path = text.substr(5);
    if (endpoint.path.empty()) {
      fail("serve: empty UNIX socket path in endpoint '" + text + "'");
    }
    return endpoint;
  }
  if (text.rfind("tcp:", 0) == 0) {
    const std::string rest = text.substr(4);
    const std::size_t colon = rest.rfind(':');
    if (colon == std::string::npos || colon == 0 ||
        colon + 1 == rest.size()) {
      fail("serve: tcp endpoint must be tcp:<host>:<port>, got '" + text +
           "'");
    }
    endpoint.kind = Endpoint::Kind::kTcp;
    endpoint.host = rest.substr(0, colon);
    endpoint.port = parse_int_in_range(rest.substr(colon + 1), 0, 65535,
                                       "tcp port", text);
    return endpoint;
  }
  fail("serve: endpoint must start with unix: or tcp:, got '" + text + "'");
}

int listen_endpoint(const Endpoint& endpoint, int backlog) {
  if (endpoint.kind == Endpoint::Kind::kUnix) {
    const sockaddr_un addr = unix_address(endpoint.path);
    ::unlink(endpoint.path.c_str());
    const int fd = make_socket(AF_UNIX);
    if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
        0) {
      ::close(fd);
      fail_errno("bind(" + endpoint.path + ")");
    }
    if (::listen(fd, backlog) < 0) {
      ::close(fd);
      fail_errno("listen(" + endpoint.path + ")");
    }
    return fd;
  }
  const sockaddr_in addr = tcp_address(endpoint);
  const int fd = make_socket(AF_INET);
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    fail_errno("bind(" + endpoint.to_string() + ")");
  }
  if (::listen(fd, backlog) < 0) {
    ::close(fd);
    fail_errno("listen(" + endpoint.to_string() + ")");
  }
  return fd;
}

int connect_endpoint(const Endpoint& endpoint) {
  if (endpoint.kind == Endpoint::Kind::kUnix) {
    const sockaddr_un addr = unix_address(endpoint.path);
    const int fd = make_socket(AF_UNIX);
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) < 0) {
      ::close(fd);
      fail_errno("connect(" + endpoint.path + ")");
    }
    return fd;
  }
  const sockaddr_in addr = tcp_address(endpoint);
  const int fd = make_socket(AF_INET);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
      0) {
    ::close(fd);
    fail_errno("connect(" + endpoint.to_string() + ")");
  }
  return fd;
}

int bound_tcp_port(int fd) {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
    fail_errno("getsockname()");
  }
  return static_cast<int>(ntohs(addr.sin_port));
}

LineChannel::~LineChannel() { close(); }

LineChannel::LineChannel(LineChannel&& other) noexcept
    : fd_(other.fd_), buffer_(std::move(other.buffer_)) {
  other.fd_ = -1;
}

void LineChannel::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

bool LineChannel::read_line(std::string& line) {
  while (true) {
    const std::size_t newline = buffer_.find('\n');
    if (newline != std::string::npos) {
      line.assign(buffer_, 0, newline);
      buffer_.erase(0, newline + 1);
      return true;
    }
    if (fd_ < 0) {
      return false;
    }
    if (buffer_.size() > kMaxLineBytes) {
      return false;  // protocol violation: a line that never ends
    }
    char chunk[4096];
    const ssize_t got = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (got < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (got == 0) {
      return false;  // clean EOF; a trailing partial line is dropped
    }
    buffer_.append(chunk, static_cast<std::size_t>(got));
  }
}

bool LineChannel::write_line(const std::string& line) {
  if (fd_ < 0) {
    return false;
  }
  std::string framed = line;
  framed.push_back('\n');
  const char* p = framed.data();
  std::size_t len = framed.size();
  while (len > 0) {
    const ssize_t sent = ::send(fd_, p, len, MSG_NOSIGNAL);
    if (sent < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    p += sent;
    len -= static_cast<std::size_t>(sent);
  }
  return true;
}

std::vector<std::string> split_tokens(const std::string& line) {
  std::vector<std::string> tokens;
  std::size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() && line[i] == ' ') ++i;
    std::size_t j = i;
    while (j < line.size() && line[j] != ' ') ++j;
    if (j > i) {
      tokens.emplace_back(line, i, j - i);
    }
    i = j;
  }
  return tokens;
}

SpecializationMode parse_specialization(const std::string& token) {
  if (token == "worst") return SpecializationMode::kWorstCase;
  if (token == "full") return SpecializationMode::kFull;
  if (token == "none") return SpecializationMode::kNone;
  fail("serve: specialization mode must be worst|full|none, got '" + token +
       "'");
}

const char* specialization_token(SpecializationMode mode) {
  switch (mode) {
    case SpecializationMode::kWorstCase:
      return "worst";
    case SpecializationMode::kFull:
      return "full";
    case SpecializationMode::kNone:
      return "none";
  }
  return "worst";
}

std::string JobSpec::to_tokens() const {
  std::string text;
  text += "v=1";
  text += " engine=" + engine;
  text += " local=" + std::to_string(local);
  text += " kmax=" + std::to_string(kmax);
  text += std::string(" mode=") + specialization_token(mode);
  text += " samples=" + std::to_string(samples);
  text += " seed=" + std::to_string(seed);
  text += std::string(" init=") + (uniform_init ? "uniform" : "basis");
  text += std::string(" priority=") +
          (priority == Priority::kInteractive
               ? "interactive"
               : priority == Priority::kBatch ? "batch" : "auto");
  text += std::string(" transport=") +
          (transport == TransportKind::kProc ? "proc" : "virtual");
  text += " stall_ms=" + std::to_string(stall_ms);
  return text;
}

JobSpec JobSpec::parse(const std::vector<std::string>& tokens) {
  JobSpec spec;
  bool saw_version = false;
  for (const std::string& token : tokens) {
    const std::size_t eq = token.find('=');
    if (eq == std::string::npos || eq == 0) {
      fail("serve: SUBMIT expects key=value tokens, got '" + token + "'");
    }
    const std::string key = token.substr(0, eq);
    const std::string value = token.substr(eq + 1);
    if (key == "v") {
      if (value != "1") {
        fail("serve: unsupported protocol version '" + value + "'");
      }
      saw_version = true;
    } else if (key == "engine") {
      if (value != "fp64" && value != "fp32") {
        fail("serve: engine must be fp64|fp32, got '" + value + "'");
      }
      spec.engine = value;
    } else if (key == "local") {
      spec.local = parse_int_in_range(value, -1, 62, "local qubits", token);
    } else if (key == "kmax") {
      spec.kmax = parse_int_in_range(value, 1, 62, "kmax", token);
    } else if (key == "mode") {
      spec.mode = parse_specialization(value);
    } else if (key == "samples") {
      spec.samples = parse_int_in_range(value, 0, 1 << 20, "samples", token);
    } else if (key == "seed") {
      spec.seed = parse_uint64(value, "seed", token);
    } else if (key == "init") {
      if (value == "basis") {
        spec.uniform_init = false;
      } else if (value == "uniform") {
        spec.uniform_init = true;
      } else {
        fail("serve: init must be basis|uniform, got '" + value + "'");
      }
    } else if (key == "priority") {
      if (value == "auto") {
        spec.priority = Priority::kAuto;
      } else if (value == "interactive") {
        spec.priority = Priority::kInteractive;
      } else if (value == "batch") {
        spec.priority = Priority::kBatch;
      } else {
        fail("serve: priority must be auto|interactive|batch, got '" + value +
             "'");
      }
    } else if (key == "transport") {
      if (value == "virtual") {
        spec.transport = TransportKind::kVirtual;
      } else if (value == "proc") {
        spec.transport = TransportKind::kProc;
      } else {
        fail("serve: transport must be virtual|proc, got '" + value + "'");
      }
    } else if (key == "stall_ms") {
      spec.stall_ms =
          parse_int_in_range(value, 0, 60 * 1000, "stall_ms", token);
    } else {
      fail("serve: unknown SUBMIT key '" + key + "'");
    }
  }
  if (!saw_version) {
    fail("serve: SUBMIT is missing the protocol version token v=1");
  }
  return spec;
}

}  // namespace quasar::serve
