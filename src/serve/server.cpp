#include "serve/server.hpp"

#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <climits>
#include <cstdio>
#include <filesystem>
#include <sstream>
#include <type_traits>

#include "ckpt/reader.hpp"
#include "ckpt/writer.hpp"
#include "circuit/io.hpp"
#include "core/error.hpp"
#include "core/rng.hpp"
#include "fp32/distributed_f32.hpp"
#include "obs/names.hpp"
#include "obs/trace.hpp"
#include "obs/trace_export.hpp"
#include "runtime/distributed.hpp"
#include "sched/digest.hpp"
#include "serve/fingerprint.hpp"

namespace quasar::serve {

namespace {

namespace fs = std::filesystem;

/// Wire messages are one line each; embedded newlines would desync the
/// protocol.
std::string one_line(std::string text) {
  for (char& c : text) {
    if (c == '\n' || c == '\r') c = ' ';
  }
  return text;
}

std::string format_seconds(double seconds) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.6g", seconds);
  return buffer;
}

const char* state_token(Job::State state) {
  switch (state) {
    case Job::State::kQueued:
      return "queued";
    case Job::State::kRunning:
      return "running";
    case Job::State::kPreempted:
      return "preempted";
    case Job::State::kDone:
      return "done";
    case Job::State::kError:
      return "error";
  }
  return "unknown";
}

ScheduleOptions schedule_options_for(const JobSpec& spec, int num_local) {
  ScheduleOptions options;
  options.num_local = num_local;
  options.kmax = spec.kmax;
  options.specialization = spec.mode;
  return options;
}

}  // namespace

JobServer::JobServer(ServeOptions options)
    : options_(std::move(options)), cache_(options_.cache_capacity) {
  QUASAR_CHECK(options_.workers >= 1, "serve: workers must be >= 1");
}

JobServer::~JobServer() { stop(); }

void JobServer::start() {
  QUASAR_CHECK(!running_.load(), "serve: server already started");
  bound_ = options_.endpoint;
  const int listen_fd = listen_endpoint(bound_);
  if (bound_.kind == Endpoint::Kind::kTcp && bound_.port == 0) {
    bound_.port = bound_tcp_port(listen_fd);
  }
  listen_fd_.store(listen_fd, std::memory_order_release);
  running_.store(true);
  stopping_.store(false);
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    idle_workers_ = 0;
  }
  accept_thread_ = std::thread([this] { accept_loop(); });
  for (int w = 0; w < options_.workers; ++w) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

void JobServer::stop() {
  if (!running_.exchange(false)) {
    return;
  }
  stopping_.store(true);

  // Unblock the accept thread; the fd is only closed after the join so
  // accept() never races a close-and-reuse of the descriptor number.
  const int listen_fd = listen_fd_.exchange(-1, std::memory_order_acq_rel);
  if (listen_fd >= 0) {
    ::shutdown(listen_fd, SHUT_RDWR);
  }
  if (accept_thread_.joinable()) {
    accept_thread_.join();
  }
  if (listen_fd >= 0) {
    ::close(listen_fd);
  }

  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    // Running jobs checkpoint at their next stage boundary (the worker
    // sees stopping_ and finalizes them as shutdown-preempted); queued
    // jobs fail fast so their clients are not left hanging.
    for (const std::shared_ptr<Job>& job : active_) {
      job->stop.store(true, std::memory_order_release);
    }
    for (const std::shared_ptr<Job>& job : pending_) {
      std::lock_guard<std::mutex> job_lock(job->mutex);
      job->state = Job::State::kError;
      job->error = "server shutting down";
      job->cv.notify_all();
    }
    pending_.clear();
  }
  queue_cv_.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();

  std::vector<std::thread> connections;
  {
    std::lock_guard<std::mutex> lock(connections_mutex_);
    for (const int fd : connection_fds_) {
      ::shutdown(fd, SHUT_RDWR);
    }
    connections.swap(connection_threads_);
  }
  for (std::thread& connection : connections) {
    if (connection.joinable()) connection.join();
  }
  {
    // Every joined thread deregistered itself; clear defensively so
    // nothing stale survives a start()/stop() cycle.
    std::lock_guard<std::mutex> lock(connections_mutex_);
    connection_fds_.clear();
  }
  if (bound_.kind == Endpoint::Kind::kUnix) {
    ::unlink(bound_.path.c_str());
  }
}

void JobServer::run_until_shutdown(const std::atomic<bool>* external_flag) {
  while (running_.load(std::memory_order_acquire)) {
    if (shutdown_requested_.load(std::memory_order_acquire) ||
        (external_flag != nullptr &&
         external_flag->load(std::memory_order_acquire))) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  stop();
}

JobServer::Stats JobServer::stats() const {
  Stats s;
  s.submitted = submitted_.load();
  s.done = done_.load();
  s.rejected = rejected_.load();
  s.preemptions = preemptions_.load();
  s.resumes = resumes_.load();
  s.cache = cache_.stats();
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    s.queued = pending_.size();
    s.running = active_.size();
  }
  s.workers = options_.workers;
  return s;
}

std::string JobServer::stats_line() const {
  const Stats s = stats();
  std::string line = "STATS";
  line += " submitted=" + std::to_string(s.submitted);
  line += " done=" + std::to_string(s.done);
  line += " rejected=" + std::to_string(s.rejected);
  line += " preemptions=" + std::to_string(s.preemptions);
  line += " resumes=" + std::to_string(s.resumes);
  line += " cache_hits=" + std::to_string(s.cache.hits);
  line += " cache_misses=" + std::to_string(s.cache.misses);
  line += " cache_entries=" + std::to_string(s.cache.entries);
  line += " cache_evictions=" + std::to_string(s.cache.evictions);
  line += " queued=" + std::to_string(s.queued);
  line += " running=" + std::to_string(s.running);
  line += " workers=" + std::to_string(s.workers);
  return line;
}

void JobServer::accept_loop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    const int fd =
        ::accept(listen_fd_.load(std::memory_order_acquire), nullptr,
                 nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // listener closed (stop()) or fatal
    }
    std::lock_guard<std::mutex> lock(connections_mutex_);
    if (stopping_.load(std::memory_order_acquire)) {
      ::close(fd);
      break;
    }
    connection_fds_.push_back(fd);
    connection_threads_.emplace_back([this, fd] { connection_loop(fd); });
  }
}

void JobServer::connection_loop(int fd) {
  LineChannel channel(fd);
  std::string line;
  while (channel.read_line(line)) {
    const std::vector<std::string> tokens = split_tokens(line);
    if (tokens.empty()) {
      continue;
    }
    const std::string& verb = tokens[0];
    if (verb == "PING") {
      if (!channel.write_line("PONG")) break;
    } else if (verb == "STATS") {
      if (!channel.write_line(stats_line())) break;
    } else if (verb == "SHUTDOWN") {
      // Flag first: a client that saw the ack must observe
      // shutdown_requested() == true.
      shutdown_requested_.store(true, std::memory_order_release);
      channel.write_line("OK shutting down");
      break;
    } else if (verb == "SUBMIT") {
      try {
        handle_submit(channel,
                      std::vector<std::string>(tokens.begin() + 1,
                                               tokens.end()));
      } catch (const std::exception& e) {
        rejected_.fetch_add(1);
        obs::count(obs::names::kServeRejected);
        if (!channel.write_line("ERROR msg=" + one_line(e.what()))) break;
      }
    } else {
      if (!channel.write_line("ERROR msg=unknown verb '" + one_line(verb) +
                              "'")) {
        break;
      }
    }
  }
  // Deregister before the channel's destructor closes the fd: the
  // kernel reuses descriptor numbers, so a stale entry would let
  // stop() shutdown() an unrelated fd.
  {
    std::lock_guard<std::mutex> lock(connections_mutex_);
    connection_fds_.erase(
        std::remove(connection_fds_.begin(), connection_fds_.end(), fd),
        connection_fds_.end());
  }
}

void JobServer::reject(LineChannel& channel, const std::string& reason) {
  rejected_.fetch_add(1);
  obs::count(obs::names::kServeRejected);
  channel.write_line("REJECTED " + one_line(reason));
}

void JobServer::handle_submit(LineChannel& channel,
                              const std::vector<std::string>& tokens) {
  // Parse the spec up front but report failures only after the body is
  // consumed: replying mid-body would make the client's remaining
  // circuit lines parse as verbs and desync the channel permanently.
  JobSpec spec;
  std::string spec_error;
  try {
    spec = JobSpec::parse(tokens);
  } catch (const std::exception& e) {
    spec_error = e.what();
  }

  std::string circuit_text;
  std::string line;
  bool saw_end = false;
  bool oversized = false;
  while (channel.read_line(line)) {
    if (line == "END") {
      saw_end = true;
      break;
    }
    if (!oversized &&
        circuit_text.size() + line.size() + 1 > options_.max_body_bytes) {
      // Stop buffering but keep draining to END so the channel stays
      // request/reply aligned; the submission is rejected below.
      oversized = true;
      circuit_text.clear();
      circuit_text.shrink_to_fit();
    }
    if (!oversized) {
      circuit_text += line;
      circuit_text += '\n';
    }
  }
  if (!saw_end) {
    throw Error("serve: connection closed before END terminated the circuit");
  }
  if (!spec_error.empty()) {
    throw Error(spec_error);
  }
  if (oversized) {
    reject(channel, "reason=body msg=circuit body exceeds the " +
                        std::to_string(options_.max_body_bytes) +
                        "-byte limit");
    return;
  }

  std::istringstream stream(circuit_text);
  Circuit circuit = read_circuit(stream);

  const int n = circuit.num_qubits();
  JobSpec resolved = spec;
  if (resolved.local < 0) {
    resolved.local = n - 2;  // four ranks by default
  }
  if (resolved.local < 1 || resolved.local >= n) {
    reject(channel,
           "reason=local msg=need 1 <= local < qubits, got local=" +
               std::to_string(resolved.local) +
               " qubits=" + std::to_string(n));
    return;
  }

  // Admission runs BEFORE scheduling and pricing: both walk the whole
  // circuit, peak_run_bytes saturates instead of wrapping, and the
  // pricing model's 2^g rank count is only evaluated on geometries
  // admission already bounded — untrusted input never reaches either.
  const std::uint64_t peak_bytes =
      peak_run_bytes(n, resolved.engine, options_.bounce_buffer_bytes);
  const std::string rejection =
      admission_error(circuit, resolved, peak_bytes, options_.max_job_bytes);
  if (!rejection.empty()) {
    reject(channel, rejection);
    return;
  }

  // Scheduling, deduplicated through the cache. The key is the FULL
  // canonical key text — a digest collision must not reuse a wrong
  // schedule — while counters and the QUEUED line show the digest.
  const ScheduleOptions schedule_options =
      schedule_options_for(resolved, resolved.local);
  const std::string key_text = sched::schedule_key_text(circuit,
                                                        schedule_options);
  std::shared_ptr<const Schedule> schedule = cache_.lookup(key_text);
  const bool cache_hit = schedule != nullptr;
  if (cache_hit) {
    obs::count(obs::names::kServeCacheHit);
  } else {
    obs::count(obs::names::kServeCacheMiss);
    QUASAR_OBS_SPAN("serve", "schedule");
    schedule = std::make_shared<const Schedule>(
        make_schedule(circuit, schedule_options));
    cache_.insert(key_text, schedule);
  }
  const std::uint32_t digest =
      sched::schedule_digest(circuit, schedule_options);

  const JobPrice price =
      price_job(circuit, *schedule, resolved, options_.bounce_buffer_bytes,
                options_.interactive_threshold_s);

  auto job = std::make_shared<Job>(next_id_.fetch_add(1), resolved,
                                   std::move(circuit));
  job->schedule = std::move(schedule);
  job->digest = digest;
  job->price = price;
  job->cache_hit = cache_hit;
  job->ckpt_dir =
      options_.scratch_dir + "/job-" + std::to_string(job->id);
  submitted_.fetch_add(1);
  obs::count(obs::names::kServeJobs);

  char digest_hex[16];
  std::snprintf(digest_hex, sizeof(digest_hex), "0x%08x", job->digest);
  std::string queued = "QUEUED id=" + std::to_string(job->id);
  queued += std::string(" digest=") + digest_hex;
  queued += std::string(" cache=") + (cache_hit ? "hit" : "miss");
  queued += std::string(" class=") +
            (price.interactive ? "interactive" : "batch");
  queued += " predicted_s=" + format_seconds(price.predicted_seconds);
  queued += " peak_bytes=" + std::to_string(price.peak_bytes);
  if (!channel.write_line(queued)) {
    return;  // client vanished before the job started; never enqueue
  }

  enqueue(job, /*resumed=*/false);
  stream_job(channel, job);
}

void JobServer::stream_job(LineChannel& channel,
                           const std::shared_ptr<Job>& job) {
  Job::State last_state = Job::State::kQueued;
  int last_stage = -1;
  while (true) {
    Job::State state;
    obs::ProgressSnapshot progress;
    std::vector<std::string> result_lines;
    std::string error;
    {
      std::unique_lock<std::mutex> lock(job->mutex);
      job->cv.wait_for(lock, std::chrono::milliseconds(100));
      state = job->state;
      progress = job->progress;
      if (state == Job::State::kDone) result_lines = job->result_lines;
      if (state == Job::State::kError) error = job->error;
    }
    if (state == Job::State::kDone) {
      channel.write_line("RESULT id=" + std::to_string(job->id));
      for (const std::string& result_line : result_lines) {
        channel.write_line(result_line);
      }
      channel.write_line("DONE id=" + std::to_string(job->id));
      return;
    }
    if (state == Job::State::kError) {
      channel.write_line("ERROR msg=" + one_line(error));
      return;
    }
    if (state != last_state || progress.stages_done != last_stage) {
      last_state = state;
      last_stage = progress.stages_done;
      std::string status = "STATUS id=" + std::to_string(job->id);
      status += std::string(" state=") + state_token(state);
      status += " stage=" + std::to_string(progress.stages_done) + "/" +
                std::to_string(progress.num_stages);
      status += " eta=" + format_seconds(progress.eta_s);
      if (!channel.write_line(status)) {
        // Client is gone; the job still runs to completion (results are
        // simply dropped), keeping worker state machines simple.
        return;
      }
    }
  }
}

void JobServer::enqueue(const std::shared_ptr<Job>& job, bool resumed) {
  std::lock_guard<std::mutex> lock(queue_mutex_);
  if (stopping_.load(std::memory_order_acquire)) {
    std::lock_guard<std::mutex> job_lock(job->mutex);
    job->state = Job::State::kError;
    job->error = "server shutting down";
    job->cv.notify_all();
    return;
  }
  pending_.push_back(job);
  if (!resumed && job->price.interactive && idle_workers_ == 0) {
    // Every worker is busy: evict one running batch job so the
    // interactive tenant does not wait behind a long run. Stage
    // boundaries are the preemption points, so the latency bound is one
    // stage, not one job.
    for (const std::shared_ptr<Job>& victim : active_) {
      if (!victim->price.interactive &&
          !victim->stop.load(std::memory_order_acquire)) {
        victim->stop.store(true, std::memory_order_release);
        break;
      }
    }
  }
  queue_cv_.notify_all();
}

std::shared_ptr<Job> JobServer::next_job() {
  std::unique_lock<std::mutex> lock(queue_mutex_);
  ++idle_workers_;
  queue_cv_.wait(lock, [this] {
    return stopping_.load(std::memory_order_acquire) || !pending_.empty();
  });
  --idle_workers_;
  if (stopping_.load(std::memory_order_acquire)) {
    return nullptr;
  }
  std::size_t best = 0;
  for (std::size_t i = 1; i < pending_.size(); ++i) {
    const Job& a = *pending_[i];
    const Job& b = *pending_[best];
    const bool better =
        a.price.interactive != b.price.interactive
            ? a.price.interactive
            : a.price.predicted_seconds != b.price.predicted_seconds
                  ? a.price.predicted_seconds < b.price.predicted_seconds
                  : a.id < b.id;
    if (better) best = i;
  }
  std::shared_ptr<Job> job = pending_[best];
  pending_.erase(pending_.begin() + static_cast<std::ptrdiff_t>(best));
  active_.push_back(job);
  return job;
}

void JobServer::worker_loop() {
  while (true) {
    std::shared_ptr<Job> job = next_job();
    if (job == nullptr) {
      return;
    }
    execute(job);
    {
      std::lock_guard<std::mutex> lock(queue_mutex_);
      for (std::size_t i = 0; i < active_.size(); ++i) {
        if (active_[i] == job) {
          active_.erase(active_.begin() + static_cast<std::ptrdiff_t>(i));
          break;
        }
      }
    }
    queue_cv_.notify_all();
  }
}

template <typename Sim>
bool JobServer::run_attempt(Sim& sim, const std::shared_ptr<Job>& job) {
  const Circuit& circuit = job->circuit;
  const Schedule& schedule = *job->schedule;
  Rng rng(job->spec.seed);

  std::size_t first_stage = 0;
  if (job->resume_cursor > 0) {
    ckpt::CheckpointReader reader(job->ckpt_dir);
    const auto snapshot = reader.load_latest();
    if (!snapshot.has_value()) {
      throw Error("serve: preempted job " + std::to_string(job->id) +
                  " has no loadable checkpoint in " + job->ckpt_dir);
    }
    first_stage = sim.resume(*snapshot, circuit, schedule, &rng);
    resumes_.fetch_add(1);
    obs::count(obs::names::kServeResumes);
  } else if (job->spec.uniform_init) {
    sim.init_uniform();
  } else {
    sim.init_basis(0);
  }

  ckpt::CheckpointOptions ckpt_options;
  ckpt_options.directory = job->ckpt_dir;
  ckpt::CheckpointWriter writer(ckpt_options);
  CheckpointedRun ckpt;
  ckpt.writer = &writer;
  ckpt.first_stage = first_stage;
  ckpt.rng = &rng;
  // No periodic snapshots and no final one: the checkpoint machinery
  // exists purely as the preemption mechanism here.
  ckpt.snapshot_every = INT_MAX;
  ckpt.final_snapshot = false;
  ckpt.stop = &job->stop;

  const int stall_ms = job->spec.stall_ms;
  obs::ProgressScope progress_scope(
      [job, stall_ms](const obs::ProgressSnapshot& snapshot) {
        {
          std::lock_guard<std::mutex> lock(job->mutex);
          job->progress = snapshot;
          job->cv.notify_all();
        }
        if (stall_ms > 0) {
          std::this_thread::sleep_for(std::chrono::milliseconds(stall_ms));
        }
      });

  const std::size_t cursor = sim.run(circuit, schedule, ckpt);
  writer.close();

  if (cursor < schedule.stages.size()) {
    // Preempted (or shutting down): the boundary snapshot is committed
    // and the writer drained, so the next attempt resumes bit-exactly.
    job->resume_cursor = cursor;
    job->stop.store(false, std::memory_order_release);
    preemptions_.fetch_add(1);
    obs::count(obs::names::kServePreemptions);
    {
      std::lock_guard<std::mutex> lock(job->mutex);
      job->state = Job::State::kPreempted;
      ++job->preemptions;
      job->cv.notify_all();
    }
    if (stopping_.load(std::memory_order_acquire)) {
      std::lock_guard<std::mutex> lock(job->mutex);
      job->state = Job::State::kError;
      job->error = "preempted by shutdown; checkpoint kept in " +
                   job->ckpt_dir;
      job->cv.notify_all();
      return false;
    }
    enqueue(job, /*resumed=*/true);
    return false;
  }

  std::vector<std::string> lines;
  lines.push_back(format_fingerprint_line(state_fingerprint(sim)));
  lines.push_back(format_norm_line(sim.norm_squared()));
  lines.push_back(format_entropy_line(sim.entropy()));
  std::vector<Index> outcomes;
  if constexpr (std::is_same_v<Sim, DistributedSimulator>) {
    if (job->spec.samples > 0) {
      outcomes = sim.sample(job->spec.samples, rng);
    }
  }
  lines.push_back(format_samples_line(outcomes));

  {
    std::lock_guard<std::mutex> lock(job->mutex);
    job->result_lines = std::move(lines);
  }
  return true;
}

void JobServer::execute(const std::shared_ptr<Job>& job) {
  {
    std::lock_guard<std::mutex> lock(job->mutex);
    job->state = Job::State::kRunning;
    job->cv.notify_all();
  }

  // Per-job observability: a private session bound to this worker's
  // OpenMP team, so concurrent tenants' spans/counters never mix.
  obs::TraceSession session;
  obs::ThreadSessionScope session_scope(&session);
#pragma omp parallel
  { obs::set_thread_session(&session); }

  const int n = job->circuit.num_qubits();
  const int l = job->spec.local;
  bool finished = false;
  try {
    if (job->spec.engine == "fp32") {
      DistributedSimulatorF sim(n, l, 0, options_.bounce_buffer_bytes,
                                job->spec.transport);
      finished = run_attempt(sim, job);
    } else {
      StorageOptions storage;
      storage.bounce_buffer_bytes = options_.bounce_buffer_bytes;
      DistributedSimulator sim(n, l, ApplyOptions{}, storage,
                               job->spec.transport);
      finished = run_attempt(sim, job);
    }
  } catch (const std::exception& e) {
    std::lock_guard<std::mutex> lock(job->mutex);
    job->state = Job::State::kError;
    job->error = e.what();
    job->cv.notify_all();
  }

#pragma omp parallel
  { obs::clear_thread_session(); }

  if (finished) {
    done_.fetch_add(1);
    std::vector<std::string> artifact_lines;
    if (!options_.artifact_dir.empty()) {
      try {
        fs::create_directories(options_.artifact_dir);
        const std::string base =
            options_.artifact_dir + "/job-" + std::to_string(job->id);
        obs::write_file(base + ".metrics.json", obs::metrics_json(session));
        obs::write_file(base + ".trace.json", obs::chrome_trace_json(session));
        artifact_lines.push_back("metrics " + base + ".metrics.json");
        artifact_lines.push_back("trace " + base + ".trace.json");
      } catch (const std::exception&) {
        // Artifacts are best-effort; the result lines stand on their own.
      }
    }
    {
      std::lock_guard<std::mutex> lock(job->mutex);
      for (std::string& artifact_line : artifact_lines) {
        job->result_lines.push_back(std::move(artifact_line));
      }
      job->state = Job::State::kDone;
      job->cv.notify_all();
    }
    std::error_code ec;
    fs::remove_all(job->ckpt_dir, ec);  // scratch; nothing to resume
  }
}

}  // namespace quasar::serve
