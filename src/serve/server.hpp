/// \file server.hpp
/// \brief The multi-tenant job server (DESIGN.md §13).
///
/// A JobServer owns one listening socket and three kinds of threads:
///
///   - the accept thread turns connections into connection threads;
///   - connection threads speak the line protocol (protocol.hpp): they
///     parse submissions, consult the schedule cache, price the job for
///     admission, enqueue it, and stream STATUS/RESULT back;
///   - a fixed worker pool executes jobs on the existing engines
///     (DistributedSimulator / DistributedSimulatorF, virtual or proc
///     transport), one job per worker at a time.
///
/// Scheduling work is deduplicated through a ScheduleCache keyed on the
/// canonical circuit+options key text (sched::schedule_key_text); the
/// matching digest is what QUEUED lines and checkpoint manifests show.
/// The pending queue orders interactive jobs before batch, then by
/// predicted seconds, then by id. When an interactive job arrives and
/// every worker is busy on batch work, one running batch job is
/// preempted: its per-job stop flag makes the engine checkpoint at the
/// next stage boundary and return its cursor; the job re-queues and
/// later resumes bit-identically from its own checkpoint directory
/// (the manifest's schedule digest guarantees it resumes against the
/// same circuit and options).
///
/// Observability is per job: each execution runs under its own
/// TraceSession (bound to the worker's OpenMP team via thread-scoped
/// sessions) and its own ProgressScope, so concurrent tenants get
/// independent traces, metrics and progress. Server-wide serve.*
/// counters (obs/names.hpp) land in whichever global session the
/// embedding process installed.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "circuit/circuit.hpp"
#include "obs/progress.hpp"
#include "serve/admission.hpp"
#include "serve/cache.hpp"
#include "serve/protocol.hpp"

namespace quasar::serve {

struct ServeOptions {
  Endpoint endpoint;
  /// Worker pool size (concurrent jobs).
  int workers = 2;
  /// Schedule cache entries.
  std::size_t cache_capacity = 32;
  /// Auto-classified jobs predicted under this many seconds are
  /// interactive; everything else is batch (and preemptible).
  double interactive_threshold_s = 1.0;
  /// Per-job peak-memory budget (statevector + bounce buffer).
  std::uint64_t max_job_bytes = std::uint64_t{8} << 30;
  /// Max SUBMIT circuit-body bytes buffered per submission; anything
  /// larger is drained through END (keeping the channel aligned) and
  /// rejected with reason=body, so a client cannot exhaust server
  /// memory before admission runs.
  std::size_t max_body_bytes = std::size_t{8} << 20;
  /// Bounce-buffer budget handed to every engine instance.
  std::size_t bounce_buffer_bytes = std::size_t{16} << 20;
  /// Root for per-job checkpoint directories (preemption state).
  std::string scratch_dir = "/tmp/quasar-serve";
  /// When non-empty, per-job metrics/trace JSON artifacts are written
  /// here and their paths appended to the RESULT payload.
  std::string artifact_dir;
};

/// One submitted job. Shared between the connection thread that owns
/// the client socket and whichever worker executes it; `mutex`/`cv`
/// guard the mutable tail.
struct Job {
  Job(std::uint64_t job_id, JobSpec job_spec, Circuit job_circuit)
      : id(job_id), spec(std::move(job_spec)),
        circuit(std::move(job_circuit)) {}

  const std::uint64_t id;
  const JobSpec spec;
  const Circuit circuit;
  std::shared_ptr<const Schedule> schedule;
  std::uint32_t digest = 0;
  JobPrice price;
  bool cache_hit = false;
  std::string ckpt_dir;

  /// Cooperative preemption flag; the engine polls it at stage
  /// boundaries (CheckpointedRun::stop).
  std::atomic<bool> stop{false};

  enum class State { kQueued, kRunning, kPreempted, kDone, kError };

  std::mutex mutex;
  std::condition_variable cv;
  State state = State::kQueued;
  /// First unexecuted stage; > 0 after a preemption (resume point).
  std::size_t resume_cursor = 0;
  int preemptions = 0;
  obs::ProgressSnapshot progress;
  std::vector<std::string> result_lines;
  std::string error;
};

class JobServer {
 public:
  explicit JobServer(ServeOptions options);
  ~JobServer();
  JobServer(const JobServer&) = delete;
  JobServer& operator=(const JobServer&) = delete;

  /// Binds the endpoint and launches the accept thread and worker pool.
  void start();

  /// Graceful shutdown (idempotent): stops accepting, preempts running
  /// jobs at their next stage boundary (checkpoints committed, writers
  /// drained), fails queued jobs with "server shutting down", and joins
  /// every thread.
  void stop();

  /// Serves until `external_flag` (e.g. quasar::shutdown_flag()) or a
  /// client SHUTDOWN sets the exit condition, then stop()s.
  void run_until_shutdown(const std::atomic<bool>* external_flag);

  /// True once a client issued SHUTDOWN.
  bool shutdown_requested() const {
    return shutdown_requested_.load(std::memory_order_acquire);
  }

  /// The resolved endpoint (tcp:...:0 gets its kernel-assigned port).
  Endpoint endpoint() const { return bound_; }

  struct Stats {
    std::uint64_t submitted = 0;
    std::uint64_t done = 0;
    std::uint64_t rejected = 0;
    std::uint64_t preemptions = 0;
    std::uint64_t resumes = 0;
    ScheduleCache::Stats cache;
    std::size_t queued = 0;
    std::size_t running = 0;
    int workers = 0;
  };
  Stats stats() const;

 private:
  void accept_loop();
  void connection_loop(int fd);
  void handle_submit(LineChannel& channel,
                     const std::vector<std::string>& tokens);
  /// Counts the rejection and writes the one-line REJECTED reply.
  void reject(LineChannel& channel, const std::string& reason);
  /// Streams STATUS transitions until the job finishes, then the
  /// RESULT/DONE or ERROR section.
  void stream_job(LineChannel& channel, const std::shared_ptr<Job>& job);
  void worker_loop();
  /// Pops the best pending job: interactive first, then predicted
  /// seconds ascending, then id ascending. Blocks; null on shutdown.
  std::shared_ptr<Job> next_job();
  void enqueue(const std::shared_ptr<Job>& job, bool resumed);
  /// One execution attempt; re-queues the job when preempted.
  void execute(const std::shared_ptr<Job>& job);
  /// Runs the engine; true when the job completed. Result lines are
  /// staged in the job but kDone is only published by execute(), after
  /// the artifact lines are appended — streamers must not see a partial
  /// result list.
  template <typename Sim>
  bool run_attempt(Sim& sim, const std::shared_ptr<Job>& job);
  std::string stats_line() const;

  const ServeOptions options_;
  Endpoint bound_;
  /// Atomic: the accept thread reads it while stop() retires it.
  std::atomic<int> listen_fd_{-1};
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  std::atomic<bool> shutdown_requested_{false};

  ScheduleCache cache_;
  std::atomic<std::uint64_t> next_id_{1};
  std::atomic<std::uint64_t> submitted_{0};
  std::atomic<std::uint64_t> done_{0};
  std::atomic<std::uint64_t> rejected_{0};
  std::atomic<std::uint64_t> preemptions_{0};
  std::atomic<std::uint64_t> resumes_{0};

  mutable std::mutex queue_mutex_;
  std::condition_variable queue_cv_;
  std::vector<std::shared_ptr<Job>> pending_;
  std::vector<std::shared_ptr<Job>> active_;  // currently on a worker
  int idle_workers_ = 0;

  std::thread accept_thread_;
  std::vector<std::thread> workers_;
  std::mutex connections_mutex_;
  std::vector<std::thread> connection_threads_;
  /// fds of live connections only: each connection thread deregisters
  /// its fd before closing it, so stop() never shutdown()s a kernel fd
  /// number that has been reused by someone else.
  std::vector<int> connection_fds_;
};

}  // namespace quasar::serve
