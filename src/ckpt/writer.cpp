#include "ckpt/writer.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <utility>

#include "ckpt/crc32c.hpp"
#include "core/error.hpp"
#include "core/parse.hpp"
#include "obs/histogram.hpp"
#include "obs/names.hpp"
#include "obs/trace.hpp"
#include "oocore/codec.hpp"

namespace quasar::ckpt {

namespace fs = std::filesystem;

namespace {

std::string generation_name(std::size_t cursor) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "gen-%06zu", cursor);
  return buf;
}

void write_file(const fs::path& path, const void* data, std::size_t bytes,
                bool do_fsync) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  QUASAR_CHECK(os.good(),
               "checkpoint: cannot open " + path.string() + " for writing");
  os.write(static_cast<const char*>(data),
           static_cast<std::streamsize>(bytes));
  os.flush();
  QUASAR_CHECK(os.good(), "checkpoint: short write to " + path.string());
  os.close();
  if (do_fsync) {
    const int fd = ::open(path.c_str(), O_RDONLY);
    QUASAR_CHECK(fd >= 0, "checkpoint: cannot reopen " + path.string() +
                              " for fsync");
    const int rc = ::fsync(fd);
    ::close(fd);
    QUASAR_CHECK(rc == 0, "checkpoint: fsync failed on " + path.string());
  }
}

void fsync_directory(const fs::path& dir) {
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd >= 0) {
    ::fsync(fd);
    ::close(fd);
  }
}

}  // namespace

CheckpointWriter::CheckpointWriter(CheckpointOptions options)
    : options_(std::move(options)), fault_(FaultInjector::from_env()) {
  QUASAR_CHECK(!options_.directory.empty(),
               "checkpoint: directory must not be empty");
  QUASAR_CHECK(options_.keep_generations >= 1,
               "checkpoint: keep_generations must be >= 1");
  QUASAR_CHECK(oocore::codec_lossless(options_.codec),
               "checkpoint: shard codec must be lossless (raw or lz)");
  fs::create_directories(options_.directory);
  if (options_.background) {
    worker_ = std::thread([this] { worker_loop(); });
  }
}

CheckpointWriter::~CheckpointWriter() {
  try {
    close();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "checkpoint: close failed: %s\n", e.what());
  }
}

void CheckpointWriter::wait_idle() {
  std::unique_lock<std::mutex> lock(mutex_);
  cv_.wait(lock, [this] { return pending_slot_ < 0 && !writing_; });
  if (worker_error_) {
    std::exception_ptr error = worker_error_;
    worker_error_ = nullptr;
    std::rethrow_exception(error);
  }
}

void CheckpointWriter::commit() {
  QUASAR_CHECK(!closed_, "checkpoint: commit after close");
  if (!options_.background) {
    write_generation(slots_[staging_slot_]);
    return;
  }
  {
    std::unique_lock<std::mutex> lock(mutex_);
    QUASAR_CHECK(pending_slot_ < 0 && !writing_,
                 "checkpoint: commit without wait_idle");
    pending_slot_ = staging_slot_;
    staging_slot_ ^= 1;
  }
  cv_.notify_all();
}

void CheckpointWriter::worker_loop() {
  for (;;) {
    int slot;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return pending_slot_ >= 0 || shutdown_; });
      if (pending_slot_ < 0 && shutdown_) return;
      slot = pending_slot_;
      pending_slot_ = -1;
      writing_ = true;
    }
    try {
      write_generation(slots_[slot]);
    } catch (...) {
      std::lock_guard<std::mutex> lock(mutex_);
      worker_error_ = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      writing_ = false;
    }
    cv_.notify_all();
  }
}

void CheckpointWriter::write_generation(Snapshot& snap) {
  const auto start = std::chrono::steady_clock::now();
  std::uint64_t bytes = 0;
  std::uint64_t raw_bytes = 0;
  const std::string name = generation_name(snap.manifest.cursor);
  const fs::path dir = fs::path(options_.directory) / name;
  const fs::path tmp = fs::path(options_.directory) / (name + ".tmp");
  {
    QUASAR_OBS_SPAN("checkpoint", "snapshot_write", "cursor",
                    static_cast<std::int64_t>(snap.manifest.cursor));
    fs::remove_all(tmp);
    fs::create_directory(tmp);

    snap.manifest.codec = options_.codec;
    snap.manifest.shards.clear();
    std::vector<std::uint8_t> frame;
    oocore::CodecScratch scratch;
    for (std::size_t r = 0; r < snap.shard_bytes.size(); ++r) {
      obs::ScopedLatency shard_latency(obs::names::kCkptShardWriteNs);
      const std::vector<std::uint8_t>& shard = snap.shard_bytes[r];
      ShardInfo info;
      info.raw_bytes = shard.size();
      info.raw_crc = crc32c(shard.data(), shard.size());
      const std::uint8_t* file_data = shard.data();
      std::size_t file_bytes = shard.size();
      if (options_.codec != oocore::Codec::kRaw) {
        // Compress here, on the background thread: the frame's own CRC
        // plus the manifest's raw CRC keep integrity end-to-end.
        frame.resize(oocore::encoded_bound(shard.size()));
        file_bytes = oocore::encode(options_.codec, shard.data(),
                                    shard.size(), frame.data(), scratch);
        file_data = frame.data();
      }
      info.bytes = file_bytes;
      info.crc = crc32c(file_data, file_bytes);
      snap.manifest.shards.push_back(info);
      write_file(tmp / shard_file_name(static_cast<int>(r)), file_data,
                 file_bytes, options_.fsync);
      bytes += file_bytes;
      raw_bytes += shard.size();
    }
    const std::string text = manifest_to_string(snap.manifest);
    write_file(tmp / kManifestFileName, text.data(), text.size(),
               options_.fsync);
    bytes += text.size();
    if (options_.fsync) fsync_directory(tmp);

    // The commit point: one atomic rename. Until it happens the reader
    // sees only the previous generations.
    fs::remove_all(dir);
    fs::rename(tmp, dir);
    if (options_.fsync) fsync_directory(options_.directory);
  }
  const std::uint64_t ns =
      static_cast<std::uint64_t>(std::chrono::duration_cast<
                                     std::chrono::nanoseconds>(
                                     std::chrono::steady_clock::now() - start)
                                     .count());
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.snapshots;
    stats_.bytes_written += bytes;
    stats_.write_ns += ns;
    latest_generation_ = name;
  }
  obs::count(obs::names::kCkptSnapshots);
  obs::count(obs::names::kCkptBytesWritten, bytes);
  obs::count(obs::names::kCkptRawBytes, raw_bytes);
  obs::count(obs::names::kCkptWriteNs, ns);
  prune_generations();
}

void CheckpointWriter::prune_generations() {
  // Committed generations, oldest first by cursor.
  std::vector<std::pair<std::uint64_t, fs::path>> gens;
  for (const auto& entry : fs::directory_iterator(options_.directory)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("gen-", 0) != 0 || !entry.is_directory()) continue;
    if (name.size() > 4 && name.find('.') == std::string::npos) {
      try {
        gens.emplace_back(parse_uint64(name.substr(4), "generation", name),
                          entry.path());
      } catch (const Error&) {
        // Not a generation directory; leave it alone.
      }
    }
  }
  std::sort(gens.begin(), gens.end());
  while (gens.size() > static_cast<std::size_t>(options_.keep_generations)) {
    fs::remove_all(gens.front().second);
    gens.erase(gens.begin());
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.generations_pruned;
  }
}

void CheckpointWriter::apply_close_faults() {
  if (latest_generation().empty()) return;
  const fs::path dir = fs::path(options_.directory) / latest_generation();
  if (const auto rank = fault_.corrupt_shard()) {
    const fs::path shard = dir / shard_file_name(*rank);
    if (fs::exists(shard) && fs::file_size(shard) > 0) {
      // Flip one byte in the middle of the shard; the CRC recorded in the
      // manifest no longer matches and the reader must fall back.
      std::fstream f(shard, std::ios::binary | std::ios::in | std::ios::out);
      const auto offset =
          static_cast<std::streamoff>(fs::file_size(shard) / 2);
      f.seekg(offset);
      char byte = 0;
      f.get(byte);
      byte = static_cast<char>(byte ^ 0x5a);
      f.seekp(offset);
      f.put(byte);
      std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.injected_faults;
    }
  }
  if (fault_.torn_manifest()) {
    const fs::path manifest = dir / kManifestFileName;
    if (fs::exists(manifest) && fs::file_size(manifest) > 1) {
      // Truncate mid-file: the trailing self-CRC line is gone, so the
      // reader's manifest parse must reject it as torn.
      fs::resize_file(manifest, fs::file_size(manifest) / 2);
      std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.injected_faults;
    }
  }
}

void CheckpointWriter::close() {
  if (closed_) return;
  wait_idle();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
    closed_ = true;
  }
  cv_.notify_all();
  if (worker_.joinable()) worker_.join();
  if (worker_error_) {
    std::exception_ptr error = worker_error_;
    worker_error_ = nullptr;
    std::rethrow_exception(error);
  }
  apply_close_faults();
}

CheckpointStats CheckpointWriter::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

std::string CheckpointWriter::latest_generation() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return latest_generation_;
}

}  // namespace quasar::ckpt
