/// \file fault.hpp
/// \brief Env-driven fault injection for the checkpoint recovery paths.
///
/// The recovery logic — resume after a kill, CRC fallback after a bit
/// flip, torn-manifest detection — is exactly the code that never runs in
/// a healthy CI. QUASAR_FAULT makes each failure reproducible on demand:
///
///     QUASAR_FAULT=kill_stage:<k>      terminate the process (exit 137,
///                                      as after SIGKILL) at the boundary
///                                      before executing stage k
///     QUASAR_FAULT=corrupt_shard:<r>   flip one byte of rank r's shard
///                                      in the newest generation when the
///                                      writer closes
///     QUASAR_FAULT=torn_manifest       truncate the newest generation's
///                                      manifest mid-file when the writer
///                                      closes (simulates a torn write on
///                                      a non-atomic filesystem)
///
/// Several faults combine comma-separated. Malformed specs throw
/// quasar::Error at parse time — a typo'd fault must not silently become
/// a fault-free run (core/parse discipline).
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace quasar::ckpt {

enum class FaultKind { kKillStage, kCorruptShard, kTornManifest };

struct FaultSpec {
  FaultKind kind = FaultKind::kKillStage;
  /// Stage for kKillStage, rank for kCorruptShard, unused otherwise.
  int value = 0;
};

/// Parses the QUASAR_FAULT grammar (comma-separated specs). Throws
/// quasar::Error on unknown fault names, missing or trailing-garbage
/// arguments.
std::vector<FaultSpec> parse_fault_specs(std::string_view text);

/// Thrown instead of terminating when kill-throws mode is on (unit tests
/// cannot survive a real _Exit; the demo and CI use the real path).
/// Deliberately NOT a quasar::Error so no recovery path can swallow it.
struct SimulatedKill {
  std::size_t stage = 0;
};

/// Holds armed faults and applies them at the writer's hook points.
class FaultInjector {
 public:
  /// No faults armed.
  FaultInjector() = default;
  /// Reads QUASAR_FAULT (strict parse; throws on malformed values).
  static FaultInjector from_env();

  void arm(FaultSpec spec) { specs_.push_back(spec); }
  bool any_armed() const { return !specs_.empty(); }

  /// Stage to kill at, if a kill fault is armed.
  std::optional<int> kill_stage() const;
  /// Rank whose shard to corrupt at writer close, if armed.
  std::optional<int> corrupt_shard() const;
  /// True when the newest manifest should be torn at writer close.
  bool torn_manifest() const;

  /// Terminates the process with exit code 137 (the shell's code for a
  /// SIGKILLed child), or throws SimulatedKill in kill-throws mode. When a
  /// kill delegate is installed it runs FIRST — under the multi-process
  /// transport it lands the fault in a real rank process and tears the
  /// survivors down before this process dies.
  [[noreturn]] void kill(std::size_t stage) const;
  /// Unit-test mode: kill() throws SimulatedKill instead of exiting.
  void set_kill_throws(bool throws) { kill_throws_ = throws; }
  /// Hook run at the start of kill() (e.g. kill one rank process). A
  /// throwing delegate does not stop the kill.
  void set_kill_delegate(std::function<void(std::size_t)> delegate) {
    kill_delegate_ = std::move(delegate);
  }

 private:
  std::vector<FaultSpec> specs_;
  std::function<void(std::size_t)> kill_delegate_;
  bool kill_throws_ = false;
};

}  // namespace quasar::ckpt
