#include "ckpt/fault.hpp"

#include <cstdio>
#include <cstdlib>

#include "core/error.hpp"
#include "core/parse.hpp"

namespace quasar::ckpt {

std::vector<FaultSpec> parse_fault_specs(std::string_view text) {
  std::vector<FaultSpec> specs;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t comma = std::min(text.find(',', pos), text.size());
    const std::string_view item = text.substr(pos, comma - pos);
    pos = comma + 1;
    if (item.empty()) {
      throw Error("QUASAR_FAULT: empty fault spec in '" +
                  std::string(text) + "'");
    }
    const std::size_t colon = item.find(':');
    const std::string_view name = item.substr(0, colon);
    const std::string_view arg =
        colon == std::string_view::npos ? std::string_view{}
                                        : item.substr(colon + 1);
    FaultSpec spec;
    if (name == "kill_stage") {
      spec.kind = FaultKind::kKillStage;
      spec.value = parse_int_in_range(arg, 0, 1 << 20, "kill_stage",
                                      std::string(item));
    } else if (name == "corrupt_shard") {
      spec.kind = FaultKind::kCorruptShard;
      spec.value = parse_int_in_range(arg, 0, 1 << 20, "corrupt_shard",
                                      std::string(item));
    } else if (name == "torn_manifest") {
      if (colon != std::string_view::npos) {
        throw Error("QUASAR_FAULT: torn_manifest takes no argument in '" +
                    std::string(item) + "'");
      }
      spec.kind = FaultKind::kTornManifest;
    } else {
      throw Error("QUASAR_FAULT: unknown fault '" + std::string(item) +
                  "' (expected kill_stage:<k>, corrupt_shard:<rank>, or "
                  "torn_manifest)");
    }
    specs.push_back(spec);
    if (comma == text.size()) break;
  }
  return specs;
}

FaultInjector FaultInjector::from_env() {
  FaultInjector injector;
  const char* value = std::getenv("QUASAR_FAULT");
  if (value == nullptr || *value == '\0') return injector;
  for (const FaultSpec& spec : parse_fault_specs(value)) {
    injector.arm(spec);
  }
  return injector;
}

std::optional<int> FaultInjector::kill_stage() const {
  for (const FaultSpec& s : specs_) {
    if (s.kind == FaultKind::kKillStage) return s.value;
  }
  return std::nullopt;
}

std::optional<int> FaultInjector::corrupt_shard() const {
  for (const FaultSpec& s : specs_) {
    if (s.kind == FaultKind::kCorruptShard) return s.value;
  }
  return std::nullopt;
}

bool FaultInjector::torn_manifest() const {
  for (const FaultSpec& s : specs_) {
    if (s.kind == FaultKind::kTornManifest) return true;
  }
  return false;
}

void FaultInjector::kill(std::size_t stage) const {
  if (kill_delegate_) {
    try {
      kill_delegate_(stage);
    } catch (...) {
      // The delegate is best-effort staging for the real kill below.
    }
  }
  if (kill_throws_) throw SimulatedKill{stage};
  std::fprintf(stderr,
               "QUASAR_FAULT: killing process at stage %zu boundary\n",
               stage);
  std::fflush(stderr);
  // _Exit: no destructors, no atexit — the closest in-process stand-in
  // for SIGKILL. 137 = 128 + SIGKILL, what a shell reports for kill -9.
  std::_Exit(137);
}

}  // namespace quasar::ckpt
