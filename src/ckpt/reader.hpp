/// \file reader.hpp
/// \brief Snapshot loading with CRC verification and generation fallback.
///
/// The reader side of the DESIGN.md §10 protocol: scan the checkpoint
/// directory for committed generations (ignoring `.tmp` leftovers of a
/// killed writer), try them newest-first, and accept the first one whose
/// manifest self-CRC and every shard CRC verify. A torn or corrupted
/// newest generation therefore falls back to its predecessor instead of
/// poisoning the resume — the scenario FaultInjector makes testable.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "ckpt/manifest.hpp"

namespace quasar::ckpt {

/// A fully verified snapshot held in memory: the manifest plus every
/// shard's raw bytes (CRC-checked against the manifest).
struct LoadedSnapshot {
  Manifest manifest;
  std::vector<std::vector<std::uint8_t>> shard_bytes;
  /// Generation directory the snapshot came from (e.g. "gen-000007").
  std::string generation;
  /// Newer generations skipped because they failed verification.
  int fallbacks = 0;
};

class CheckpointReader {
 public:
  explicit CheckpointReader(std::string directory);

  const std::string& directory() const { return directory_; }

  /// Committed generation directory names, newest (highest cursor) first.
  /// `.tmp` staging directories and unrelated files are ignored.
  std::vector<std::string> generations() const;

  /// Loads and fully verifies one generation: manifest self-CRC, field
  /// structure, per-shard byte counts and CRC32C. Throws quasar::Error
  /// (check::ValidationError for integrity failures) on any mismatch.
  LoadedSnapshot load(const std::string& generation) const;

  /// Walks generations newest-first and returns the first that verifies,
  /// with `fallbacks` counting the corrupt ones skipped (also exported as
  /// the ckpt.fallbacks counter). nullopt when no valid snapshot exists.
  std::optional<LoadedSnapshot> load_latest() const;

 private:
  std::string directory_;
};

}  // namespace quasar::ckpt
