/// \file writer.hpp
/// \brief Generation-based snapshot writer with a background I/O thread.
///
/// One CheckpointWriter owns a checkpoint directory and writes snapshot
/// *generations* into it, one per committed stage boundary:
///
///     <dir>/gen-000007/manifest.txt      (self-CRC'd, see manifest.hpp)
///     <dir>/gen-000007/shard-0000.bin    (raw amplitudes, CRC in manifest)
///     ...
///
/// Durability protocol (DESIGN.md §10): a generation is first assembled
/// under `gen-<k>.tmp/`, every file fully written (optionally fsync'ed),
/// and only then renamed to `gen-<k>/` — a single atomic directory
/// rename. A process killed mid-write leaves a `.tmp` directory the
/// reader never looks at; the newest *committed* generation is always
/// intact. Older generations are pruned down to `keep_generations`, so a
/// generation that turns out corrupted on disk (CRC mismatch at read
/// time) still has a predecessor to fall back to.
///
/// Double buffering: the compute thread copies the run state into a
/// staging snapshot (a memcpy at DRAM bandwidth) and commit() hands it to
/// a background thread that CRCs, serializes, and renames while the next
/// stage computes. wait_idle() blocks until the in-flight write (if any)
/// is durable, so at most one extra state copy exists at any time.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "ckpt/fault.hpp"
#include "ckpt/manifest.hpp"

namespace quasar::ckpt {

struct CheckpointOptions {
  /// Checkpoint directory; created (recursively) if missing.
  std::string directory;
  /// Committed generations kept on disk (>= 1). Two generations is the
  /// minimum for torn/corrupt fallback to have somewhere to land.
  int keep_generations = 2;
  /// Serialize on a background thread, overlapping the next stage's
  /// compute. When false, commit() writes synchronously in the caller.
  bool background = true;
  /// fsync shard/manifest files and the directory before the commit
  /// rename. Off by default: rename ordering alone survives kill -9;
  /// fsync additionally survives power loss at a large cost on slow
  /// disks.
  bool fsync = false;
  /// Shard codec (oocore/codec.hpp). Non-raw codecs wrap every shard in
  /// a self-describing frame, encoded on the background thread so the
  /// compression overlaps the next stage's compute. Restricted to
  /// lossless codecs — a checkpoint that does not restore the exact
  /// state defeats resume verification.
  oocore::Codec codec = oocore::Codec::kRaw;
};

/// Writer-side counters (a superset is exported as ckpt.* obs counters).
struct CheckpointStats {
  std::uint64_t snapshots = 0;        ///< generations committed
  std::uint64_t bytes_written = 0;    ///< shard + manifest bytes
  std::uint64_t write_ns = 0;         ///< background serialize+rename time
  std::uint64_t generations_pruned = 0;
  std::uint64_t injected_faults = 0;  ///< close-time corruptions applied
};

/// One snapshot in flight: the manifest (shards field filled during the
/// write) plus every rank's raw amplitude bytes.
struct Snapshot {
  Manifest manifest;
  std::vector<std::vector<std::uint8_t>> shard_bytes;
};

class CheckpointWriter {
 public:
  /// Creates the directory and (by default) arms faults from QUASAR_FAULT.
  explicit CheckpointWriter(CheckpointOptions options);
  /// Drains and closes; close-time write errors are reported to stderr
  /// (destructors cannot throw).
  ~CheckpointWriter();
  CheckpointWriter(const CheckpointWriter&) = delete;
  CheckpointWriter& operator=(const CheckpointWriter&) = delete;

  const CheckpointOptions& options() const { return options_; }
  /// Armed fault set; tests swap in their own (see FaultInjector).
  FaultInjector& fault() { return fault_; }

  /// Blocks until no write is in flight, then rethrows any error the
  /// background writer hit. After wait_idle() the staging snapshot may be
  /// refilled.
  void wait_idle();
  /// The staging snapshot. Only valid to mutate between wait_idle() and
  /// commit(); buffers are reused across snapshots to avoid reallocating
  /// a state-sized copy every boundary.
  Snapshot& staging() { return slots_[staging_slot_]; }
  /// Enqueues the staging snapshot for writing (or writes it inline when
  /// background is off). The snapshot's manifest must carry everything
  /// but the shards field, which the writer fills from shard_bytes.
  void commit();

  /// Drains, joins the background thread, applies close-time faults
  /// (corrupt_shard / torn_manifest) to the newest generation, and prunes.
  /// Idempotent; throws on pending background errors.
  void close();

  /// Counters (quiesced under the writer lock).
  CheckpointStats stats() const;
  /// Directory name (relative to the checkpoint directory) of the newest
  /// committed generation; empty before the first commit.
  std::string latest_generation() const;

 private:
  void worker_loop();
  /// Serializes one snapshot as a generation directory: tmp dir, shards
  /// + CRCs, manifest, optional fsync, atomic rename, prune.
  void write_generation(Snapshot& snap);
  void prune_generations();
  void apply_close_faults();

  CheckpointOptions options_;
  FaultInjector fault_;

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  Snapshot slots_[2];
  int staging_slot_ = 0;
  int pending_slot_ = -1;  ///< slot queued for the worker, -1 = none
  bool writing_ = false;
  bool shutdown_ = false;
  bool closed_ = false;
  std::exception_ptr worker_error_;
  CheckpointStats stats_;
  std::string latest_generation_;
  std::thread worker_;
};

}  // namespace quasar::ckpt
