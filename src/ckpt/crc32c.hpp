/// \file crc32c.hpp
/// \brief CRC32C (Castagnoli) checksums for snapshot integrity.
///
/// Every checkpoint artifact — amplitude shards and the manifest itself —
/// carries a CRC32C so a torn write, a bit flip on disk, or a truncated
/// file is detected before the state is trusted (DESIGN.md §10). CRC32C
/// is the storage-stack convention (iSCSI, ext4, RocksDB) and its
/// software slicing-by-8 form streams at several GB/s, far above the
/// snapshot write bandwidth it guards.
#pragma once

#include <cstddef>
#include <cstdint>

namespace quasar::ckpt {

/// CRC32C of `bytes` bytes at `data`.
std::uint32_t crc32c(const void* data, std::size_t bytes);

/// Incremental form: extends `crc` (a previous crc32c result, or 0 for an
/// empty prefix) over the next `bytes` bytes. Chaining extensions over a
/// split buffer equals one crc32c over the concatenation.
std::uint32_t crc32c_extend(std::uint32_t crc, const void* data,
                            std::size_t bytes);

}  // namespace quasar::ckpt
