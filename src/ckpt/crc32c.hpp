/// \file crc32c.hpp
/// \brief Forwarding header: the CRC32C implementation moved to
/// core/crc32c.hpp so the out-of-core codec layer can share it without a
/// ckpt dependency. Checkpoint code keeps calling ckpt::crc32c unchanged.
#pragma once

#include "core/crc32c.hpp"

namespace quasar::ckpt {

using quasar::crc32c;
using quasar::crc32c_extend;

}  // namespace quasar::ckpt
