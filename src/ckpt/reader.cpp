#include "ckpt/reader.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <utility>

#include "check/invariant.hpp"
#include "ckpt/crc32c.hpp"
#include "core/error.hpp"
#include "core/parse.hpp"
#include "obs/names.hpp"
#include "obs/trace.hpp"
#include "oocore/codec.hpp"

namespace quasar::ckpt {

namespace fs = std::filesystem;

namespace {

std::string read_file(const fs::path& path) {
  std::ifstream is(path, std::ios::binary);
  QUASAR_CHECK(is.good(), "checkpoint: cannot open " + path.string());
  std::string out((std::istreambuf_iterator<char>(is)),
                  std::istreambuf_iterator<char>());
  QUASAR_CHECK(!is.bad(), "checkpoint: read failed on " + path.string());
  return out;
}

}  // namespace

CheckpointReader::CheckpointReader(std::string directory)
    : directory_(std::move(directory)) {
  QUASAR_CHECK(!directory_.empty(),
               "checkpoint: directory must not be empty");
}

std::vector<std::string> CheckpointReader::generations() const {
  std::vector<std::pair<std::uint64_t, std::string>> gens;
  if (!fs::is_directory(directory_)) return {};
  for (const auto& entry : fs::directory_iterator(directory_)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("gen-", 0) != 0 || !entry.is_directory()) continue;
    if (name.find('.') != std::string::npos) continue;  // .tmp leftovers
    try {
      gens.emplace_back(parse_uint64(name.substr(4), "generation", name),
                        name);
    } catch (const Error&) {
      // Unrelated directory; skip.
    }
  }
  std::sort(gens.begin(), gens.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  std::vector<std::string> out;
  out.reserve(gens.size());
  for (auto& [cursor, name] : gens) out.push_back(std::move(name));
  return out;
}

LoadedSnapshot CheckpointReader::load(const std::string& generation) const {
  QUASAR_OBS_SPAN("checkpoint", "snapshot_read");
  const fs::path dir = fs::path(directory_) / generation;
  LoadedSnapshot snap;
  snap.generation = generation;
  snap.manifest = manifest_from_string(read_file(dir / kManifestFileName));

  snap.shard_bytes.resize(snap.manifest.shards.size());
  oocore::CodecScratch scratch;
  for (std::size_t r = 0; r < snap.manifest.shards.size(); ++r) {
    const ShardInfo& info = snap.manifest.shards[r];
    const fs::path path = dir / shard_file_name(static_cast<int>(r));
    std::string raw = read_file(path);
    if (raw.size() != info.bytes) {
      throw check::ValidationError(
          "checkpoint: " + path.string() + " holds " +
          std::to_string(raw.size()) + " bytes, manifest records " +
          std::to_string(info.bytes) + " (torn write?)");
    }
    const std::uint32_t actual = crc32c(raw.data(), raw.size());
    if (actual != info.crc) {
      obs::count(obs::names::kCkptShardCrcFailures);
      char buf[160];
      std::snprintf(buf, sizeof(buf),
                    "checkpoint: %s CRC mismatch (stored %08x, computed "
                    "%08x) — corrupted shard",
                    path.string().c_str(), info.crc, actual);
      throw check::ValidationError(buf);
    }
    if (snap.manifest.codec == oocore::Codec::kRaw) {
      snap.shard_bytes[r].assign(raw.begin(), raw.end());
    } else {
      // Frame-wrapped shard: decode (the frame verifies its own payload
      // CRC), then check the decoded amplitudes against the manifest's
      // raw CRC so corruption anywhere in the chain reads as a torn
      // generation and load_latest falls back.
      snap.shard_bytes[r].resize(info.raw_bytes);
      std::size_t decoded = 0;
      try {
        decoded = oocore::decode(raw.data(), raw.size(),
                                 snap.shard_bytes[r].data(), info.raw_bytes,
                                 scratch);
      } catch (const Error& e) {
        obs::count(obs::names::kCkptShardCrcFailures);
        throw check::ValidationError("checkpoint: " + path.string() +
                                     " frame decode failed (" + e.what() +
                                     ") — corrupted shard");
      }
      const std::uint32_t raw_actual =
          crc32c(snap.shard_bytes[r].data(), decoded);
      if (decoded != info.raw_bytes || raw_actual != info.raw_crc) {
        obs::count(obs::names::kCkptShardCrcFailures);
        throw check::ValidationError(
            "checkpoint: " + path.string() +
            " decoded shard does not match the manifest's raw size/CRC — "
            "corrupted shard");
      }
    }
  }
  obs::count(obs::names::kCkptBytesRead, [&] {
    std::uint64_t total = 0;
    for (const auto& s : snap.shard_bytes) total += s.size();
    return total;
  }());
  return snap;
}

std::optional<LoadedSnapshot> CheckpointReader::load_latest() const {
  int fallbacks = 0;
  for (const std::string& generation : generations()) {
    try {
      LoadedSnapshot snap = load(generation);
      snap.fallbacks = fallbacks;
      return snap;
    } catch (const Error& e) {
      // Torn or corrupted generation: report, count, fall back to the
      // previous one.
      std::fprintf(stderr,
                   "checkpoint: %s failed verification (%s); falling back\n",
                   generation.c_str(), e.what());
      obs::count(obs::names::kCkptFallbacks);
      ++fallbacks;
    }
  }
  return std::nullopt;
}

}  // namespace quasar::ckpt
