/// \file manifest.hpp
/// \brief Snapshot manifest: everything a resume needs besides the shards.
///
/// One manifest per snapshot generation describes the full run state at a
/// stage boundary (DESIGN.md §10): the engine and geometry, the schedule
/// cursor (first unexecuted stage), the program-qubit -> bit-location
/// mapping, the deferred per-rank phases of Sec. 3.5, the recorded
/// squared norm, the sampling RNG state, a digest of the schedule it was
/// built against, and the byte count + CRC32C of every amplitude shard.
///
/// Format (text, line oriented, deterministic — no timestamps):
///
///     quasar-checkpoint 1
///     engine fp64|fp32
///     qubits <n> local <l>
///     cursor <first unexecuted stage>
///     schedule <crc32c of the schedule text, 8 hex digits; 0 = unknown>
///     norm <squared norm, C99 hexfloat>
///     mapping <location of qubit 0> <location of qubit 1> ...
///     rng <mt19937_64 state tokens>            (optional)
///     codec <raw|lz>                           (optional; absent = raw)
///     phase <rank> <re hexfloat> <im hexfloat> (one line per rank)
///     shard <rank> <bytes> <crc32c hex> [<raw bytes> <raw crc32c hex>]
///     crc <crc32c of every preceding byte, 8 hex digits>
///
/// Doubles are serialized as hexfloats so a parse-print round trip is
/// bit-exact; the trailing `crc` line makes a torn or truncated manifest
/// detectable without trusting any field before it. With a non-raw codec
/// the shard files hold oocore frames (codec.hpp); the shard line then
/// records both the on-disk frame size/CRC (torn-write detection without
/// decoding) and the uncompressed size/CRC (end-to-end integrity of the
/// amplitudes the resume actually loads).
#pragma once

#include <complex>
#include <cstdint>
#include <string>
#include <vector>

#include "oocore/codec.hpp"

namespace quasar::ckpt {

/// Integrity record of one rank's amplitude shard file.
struct ShardInfo {
  std::uint64_t bytes = 0;  ///< on-disk bytes (frame size under a codec)
  std::uint32_t crc = 0;    ///< CRC32C of the on-disk bytes
  /// Uncompressed amplitude bytes / CRC. Equal to bytes/crc for raw
  /// shards; under a codec they cover the decoded payload.
  std::uint64_t raw_bytes = 0;
  std::uint32_t raw_crc = 0;
};

/// Parsed (or to-be-written) snapshot manifest.
struct Manifest {
  std::string engine;  ///< "fp64" or "fp32"
  int num_qubits = 0;
  int num_local = 0;
  /// First unexecuted stage of the schedule (0 = nothing ran yet).
  std::size_t cursor = 0;
  /// Canonical circuit+options digest (sched::schedule_digest) for the
  /// schedule this snapshot belongs to; 0 when unknown. Resume refuses a
  /// mismatched circuit or option set. The job server's schedule cache
  /// keys on the same digest, so the two schemes cannot drift.
  std::uint32_t schedule_crc = 0;
  /// Squared norm of the distributed state at snapshot time; verified
  /// against the reloaded shards before the state is trusted.
  double norm_squared = 0.0;
  /// Program qubit -> bit-location mapping at the stage boundary.
  std::vector<int> mapping;
  /// Serialized sampling Rng (Rng::serialize()); empty = not recorded.
  std::string rng_state;
  /// Shard codec (DESIGN.md §11). kRaw shards are verbatim amplitude
  /// bytes (and the codec line is omitted for backward compatibility);
  /// anything else wraps each shard in a self-describing oocore frame.
  oocore::Codec codec = oocore::Codec::kRaw;
  /// Deferred per-rank phases (Sec. 3.5), one per rank.
  std::vector<std::complex<double>> pending_phase;
  /// Per-rank shard integrity, one per rank.
  std::vector<ShardInfo> shards;

  int num_ranks() const { return 1 << (num_qubits - num_local); }
};

/// Serializes the manifest, including the trailing self-CRC line.
std::string manifest_to_string(const Manifest& manifest);

/// Parses and validates a manifest. Verifies the trailing self-CRC first
/// (a mismatch means a torn or corrupted write), then field structure and
/// cross-field consistency (rank counts, mapping size). Throws
/// quasar::Error naming what failed.
Manifest manifest_from_string(const std::string& text);

/// Name of the manifest file inside a generation directory.
inline constexpr const char* kManifestFileName = "manifest.txt";
/// Shard file name for one rank.
std::string shard_file_name(int rank);

}  // namespace quasar::ckpt
