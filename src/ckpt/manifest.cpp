#include "ckpt/manifest.hpp"

#include <cinttypes>
#include <cstdio>
#include <sstream>
#include <string_view>

#include "check/invariant.hpp"
#include "ckpt/crc32c.hpp"
#include "core/error.hpp"
#include "core/parse.hpp"

namespace quasar::ckpt {

namespace {

/// Hexfloat rendering: bit-exact under strtod round trip.
std::string hex_double(double value) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%a", value);
  return buf;
}

std::uint32_t parse_hex32(std::string_view token, const std::string& what,
                          const std::string& context) {
  QUASAR_CHECK(!token.empty() && token.size() <= 8,
               "manifest: " + what + " must be 1-8 hex digits in: " + context);
  std::uint32_t value = 0;
  for (char c : token) {
    int digit;
    if (c >= '0' && c <= '9') digit = c - '0';
    else if (c >= 'a' && c <= 'f') digit = c - 'a' + 10;
    else if (c >= 'A' && c <= 'F') digit = c - 'A' + 10;
    else {
      throw Error("manifest: " + what + " has a non-hex digit in: " +
                  context);
    }
    value = value << 4 | static_cast<std::uint32_t>(digit);
  }
  return value;
}

std::vector<std::string> tokens_of(const std::string& line) {
  std::vector<std::string> out;
  std::istringstream iss(line);
  std::string tok;
  while (iss >> tok) out.push_back(tok);
  return out;
}

}  // namespace

std::string shard_file_name(int rank) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "shard-%04d.bin", rank);
  return buf;
}

std::string manifest_to_string(const Manifest& m) {
  std::string out;
  out += "quasar-checkpoint 1\n";
  out += "engine " + m.engine + "\n";
  out += "qubits " + std::to_string(m.num_qubits) + " local " +
         std::to_string(m.num_local) + "\n";
  out += "cursor " + std::to_string(m.cursor) + "\n";
  char hex[16];
  std::snprintf(hex, sizeof(hex), "%08" PRIx32, m.schedule_crc);
  out += std::string("schedule ") + hex + "\n";
  out += "norm " + hex_double(m.norm_squared) + "\n";
  out += "mapping";
  for (int loc : m.mapping) out += " " + std::to_string(loc);
  out += "\n";
  if (!m.rng_state.empty()) out += "rng " + m.rng_state + "\n";
  if (m.codec != oocore::Codec::kRaw) {
    out += std::string("codec ") + oocore::codec_name(m.codec) + "\n";
  }
  for (std::size_t r = 0; r < m.pending_phase.size(); ++r) {
    out += "phase " + std::to_string(r) + " " +
           hex_double(m.pending_phase[r].real()) + " " +
           hex_double(m.pending_phase[r].imag()) + "\n";
  }
  for (std::size_t r = 0; r < m.shards.size(); ++r) {
    std::snprintf(hex, sizeof(hex), "%08" PRIx32, m.shards[r].crc);
    out += "shard " + std::to_string(r) + " " +
           std::to_string(m.shards[r].bytes) + " " + hex;
    if (m.codec != oocore::Codec::kRaw) {
      std::snprintf(hex, sizeof(hex), "%08" PRIx32, m.shards[r].raw_crc);
      out += " " + std::to_string(m.shards[r].raw_bytes) + " " + hex;
    }
    out += "\n";
  }
  std::snprintf(hex, sizeof(hex), "%08" PRIx32,
                crc32c(out.data(), out.size()));
  out += std::string("crc ") + hex + "\n";
  return out;
}

Manifest manifest_from_string(const std::string& text) {
  // 1. Self-CRC: the last line must be `crc <hex>` covering every byte
  // before it. Checked before anything else is trusted — a truncated
  // (torn) manifest fails here.
  std::size_t tail = text.size();
  if (tail > 0 && text[tail - 1] == '\n') --tail;
  const std::size_t crc_line = text.rfind('\n', tail == 0 ? 0 : tail - 1);
  if (crc_line == std::string::npos) {
    throw check::ValidationError(
        "manifest: missing trailing crc line (torn write?)");
  }
  const std::string last = text.substr(crc_line + 1, tail - crc_line - 1);
  const auto crc_tokens = tokens_of(last);
  if (crc_tokens.size() != 2 || crc_tokens[0] != "crc") {
    throw check::ValidationError(
        "manifest: malformed trailing crc line (torn write?)");
  }
  const std::uint32_t recorded = parse_hex32(crc_tokens[1], "crc", last);
  const std::uint32_t actual = crc32c(text.data(), crc_line + 1);
  if (recorded != actual) {
    throw check::ValidationError(
        "manifest: self-CRC mismatch (torn or corrupted write)");
  }

  // 2. Line-by-line field parsing.
  Manifest m;
  bool saw_header = false, saw_qubits = false, saw_cursor = false;
  bool saw_norm = false, saw_schedule = false;
  std::istringstream is(text.substr(0, crc_line + 1));
  std::string line;
  std::size_t next_phase = 0, next_shard = 0;
  while (std::getline(is, line)) {
    const auto toks = tokens_of(line);
    if (toks.empty()) continue;
    const std::string& key = toks[0];
    if (key == "quasar-checkpoint") {
      QUASAR_CHECK(toks.size() == 2 &&
                       parse_int(toks[1], "manifest version", line) == 1,
                   "manifest: unsupported version in: " + line);
      saw_header = true;
    } else if (key == "engine") {
      QUASAR_CHECK(toks.size() == 2 &&
                       (toks[1] == "fp64" || toks[1] == "fp32"),
                   "manifest: engine must be fp64 or fp32 in: " + line);
      m.engine = toks[1];
    } else if (key == "qubits") {
      QUASAR_CHECK(toks.size() == 4 && toks[2] == "local",
                   "manifest: malformed qubits line: " + line);
      m.num_qubits = parse_int_in_range(toks[1], 1, 62, "qubits", line);
      m.num_local =
          parse_int_in_range(toks[3], 1, m.num_qubits, "local", line);
      saw_qubits = true;
    } else if (key == "cursor") {
      QUASAR_CHECK(toks.size() == 2, "manifest: malformed cursor: " + line);
      m.cursor = static_cast<std::size_t>(
          parse_int_in_range(toks[1], 0, 1 << 20, "cursor", line));
      saw_cursor = true;
    } else if (key == "schedule") {
      QUASAR_CHECK(toks.size() == 2,
                   "manifest: malformed schedule line: " + line);
      m.schedule_crc = parse_hex32(toks[1], "schedule crc", line);
      saw_schedule = true;
    } else if (key == "norm") {
      QUASAR_CHECK(toks.size() == 2, "manifest: malformed norm: " + line);
      m.norm_squared = parse_double(toks[1], "norm", line);
      saw_norm = true;
    } else if (key == "mapping") {
      QUASAR_CHECK(m.mapping.empty(), "manifest: duplicate mapping line");
      for (std::size_t i = 1; i < toks.size(); ++i) {
        m.mapping.push_back(parse_int(toks[i], "mapping entry", line));
      }
    } else if (key == "rng") {
      QUASAR_CHECK(m.rng_state.empty(), "manifest: duplicate rng line");
      const std::size_t at = line.find("rng ");
      m.rng_state = line.substr(at + 4);
    } else if (key == "phase") {
      QUASAR_CHECK(toks.size() == 4, "manifest: malformed phase: " + line);
      const std::size_t rank = static_cast<std::size_t>(
          parse_int_in_range(toks[1], 0, 1 << 20, "phase rank", line));
      QUASAR_CHECK(rank == next_phase++,
                   "manifest: phase lines out of order at: " + line);
      m.pending_phase.emplace_back(parse_double(toks[2], "phase re", line),
                                   parse_double(toks[3], "phase im", line));
    } else if (key == "codec") {
      QUASAR_CHECK(toks.size() == 2, "manifest: malformed codec: " + line);
      m.codec = oocore::codec_from_name(toks[1]);
    } else if (key == "shard") {
      QUASAR_CHECK(toks.size() == 4 || toks.size() == 6,
                   "manifest: malformed shard: " + line);
      const std::size_t rank = static_cast<std::size_t>(
          parse_int_in_range(toks[1], 0, 1 << 20, "shard rank", line));
      QUASAR_CHECK(rank == next_shard++,
                   "manifest: shard lines out of order at: " + line);
      ShardInfo shard;
      shard.bytes = parse_uint64(toks[2], "shard bytes", line);
      shard.crc = parse_hex32(toks[3], "shard crc", line);
      if (toks.size() == 6) {
        shard.raw_bytes = parse_uint64(toks[4], "shard raw bytes", line);
        shard.raw_crc = parse_hex32(toks[5], "shard raw crc", line);
      } else {
        shard.raw_bytes = shard.bytes;
        shard.raw_crc = shard.crc;
      }
      m.shards.push_back(shard);
    } else {
      throw Error("manifest: unknown line: " + line);
    }
  }

  // 3. Cross-field consistency.
  QUASAR_CHECK(saw_header, "manifest: missing quasar-checkpoint header");
  QUASAR_CHECK(!m.engine.empty(), "manifest: missing engine line");
  QUASAR_CHECK(saw_qubits && saw_cursor && saw_norm && saw_schedule,
               "manifest: missing qubits/cursor/norm/schedule line");
  QUASAR_CHECK(m.num_qubits - m.num_local <= 20,
               "manifest: implausible rank count");
  const std::size_t ranks = static_cast<std::size_t>(m.num_ranks());
  QUASAR_CHECK(m.mapping.size() == static_cast<std::size_t>(m.num_qubits),
               "manifest: mapping does not cover every qubit");
  QUASAR_CHECK(m.pending_phase.size() == ranks,
               "manifest: expected one phase line per rank");
  QUASAR_CHECK(m.shards.size() == ranks,
               "manifest: expected one shard line per rank");
  return m;
}

}  // namespace quasar::ckpt
