#include "gates/matrix.hpp"

#include <cmath>

#include "core/bits.hpp"

namespace quasar {

GateMatrix GateMatrix::identity(int num_qubits) {
  GateMatrix m = zero(num_qubits);
  for (Index i = 0; i < m.dim_; ++i) m.at(i, i) = 1.0;
  return m;
}

GateMatrix GateMatrix::zero(int num_qubits) {
  QUASAR_CHECK(num_qubits >= 0 && num_qubits <= 16,
               "GateMatrix supports 0..16 qubits");
  GateMatrix m;
  m.num_qubits_ = num_qubits;
  m.dim_ = index_pow2(num_qubits);
  m.data_.assign(m.dim_ * m.dim_, Amplitude{0.0, 0.0});
  return m;
}

GateMatrix::GateMatrix(Index dim, std::vector<Amplitude> entries) {
  QUASAR_CHECK(is_pow2(dim), "GateMatrix dimension must be a power of two");
  QUASAR_CHECK(entries.size() == dim * dim,
               "GateMatrix entry count must be dim*dim");
  dim_ = dim;
  num_qubits_ = ilog2(dim);
  data_.assign(entries.begin(), entries.end());
}

GateMatrix::GateMatrix(Index dim, std::initializer_list<Amplitude> entries)
    : GateMatrix(dim, std::vector<Amplitude>(entries)) {}

GateMatrix GateMatrix::operator*(const GateMatrix& rhs) const {
  QUASAR_CHECK(dim_ == rhs.dim_, "matrix product dimension mismatch");
  GateMatrix out = zero(num_qubits_);
  for (Index r = 0; r < dim_; ++r) {
    for (Index k = 0; k < dim_; ++k) {
      const Amplitude a = at(r, k);
      if (a == Amplitude{}) continue;
      for (Index c = 0; c < dim_; ++c) out.at(r, c) += a * rhs.at(k, c);
    }
  }
  return out;
}

GateMatrix GateMatrix::adjoint() const {
  GateMatrix out = zero(num_qubits_);
  for (Index r = 0; r < dim_; ++r) {
    for (Index c = 0; c < dim_; ++c) out.at(c, r) = std::conj(at(r, c));
  }
  return out;
}

GateMatrix GateMatrix::kron(const GateMatrix& rhs) const {
  GateMatrix out = zero(num_qubits_ + rhs.num_qubits_);
  for (Index r1 = 0; r1 < dim_; ++r1) {
    for (Index c1 = 0; c1 < dim_; ++c1) {
      const Amplitude a = at(r1, c1);
      if (a == Amplitude{}) continue;
      for (Index r2 = 0; r2 < rhs.dim_; ++r2) {
        for (Index c2 = 0; c2 < rhs.dim_; ++c2) {
          out.at(r1 * rhs.dim_ + r2, c1 * rhs.dim_ + c2) = a * rhs.at(r2, c2);
        }
      }
    }
  }
  return out;
}

GateMatrix GateMatrix::permute_qubits(const std::vector<int>& perm) const {
  QUASAR_CHECK(static_cast<int>(perm.size()) == num_qubits_,
               "permutation size must equal qubit count");
  std::vector<bool> seen(num_qubits_, false);
  for (int p : perm) {
    QUASAR_CHECK(p >= 0 && p < num_qubits_ && !seen[p],
                 "permute_qubits requires a permutation of [0, k)");
    seen[p] = true;
  }
  // Output index bit j corresponds to input index bit perm[j].
  auto map_index = [&](Index out_idx) {
    Index in_idx = 0;
    for (int j = 0; j < num_qubits_; ++j) {
      in_idx |= static_cast<Index>(get_bit(out_idx, j)) << perm[j];
    }
    return in_idx;
  };
  GateMatrix out = zero(num_qubits_);
  for (Index r = 0; r < dim_; ++r) {
    const Index ri = map_index(r);
    for (Index c = 0; c < dim_; ++c) out.at(r, c) = at(ri, map_index(c));
  }
  return out;
}

GateMatrix GateMatrix::embed(int cluster_qubits,
                             const std::vector<int>& gate_qubits) const {
  QUASAR_CHECK(static_cast<int>(gate_qubits.size()) == num_qubits_,
               "embed: gate qubit count mismatch");
  std::vector<bool> seen(cluster_qubits, false);
  for (int q : gate_qubits) {
    QUASAR_CHECK(q >= 0 && q < cluster_qubits && !seen[q],
                 "embed: gate qubits must be distinct cluster positions");
    seen[q] = true;
  }
  const Index out_dim = index_pow2(cluster_qubits);
  GateMatrix out = zero(cluster_qubits);
  const Index gate_dim = dim_;
  // For every assignment of the spectator bits, copy the gate block.
  for (Index r_out = 0; r_out < out_dim; ++r_out) {
    Index r_gate = 0;
    for (int j = 0; j < num_qubits_; ++j) {
      r_gate |= static_cast<Index>(get_bit(r_out, gate_qubits[j])) << j;
    }
    for (Index c_gate = 0; c_gate < gate_dim; ++c_gate) {
      const Amplitude a = at(r_gate, c_gate);
      if (a == Amplitude{}) continue;
      // Column index: spectator bits equal r_out's, gate bits from c_gate.
      Index c_out = r_out;
      for (int j = 0; j < num_qubits_; ++j) {
        c_out = set_bit(c_out, gate_qubits[j],
                        get_bit(c_gate, j));
      }
      out.at(r_out, c_out) = a;
    }
  }
  return out;
}

Real GateMatrix::distance(const GateMatrix& other) const {
  QUASAR_CHECK(dim_ == other.dim_, "distance: dimension mismatch");
  Real sum = 0.0;
  for (Index i = 0; i < dim_ * dim_; ++i) {
    sum += std::norm(data_[i] - other.data_[i]);
  }
  return std::sqrt(sum);
}

bool GateMatrix::is_unitary(Real tol) const {
  const GateMatrix product = (*this) * adjoint();
  return product.distance(identity(num_qubits_)) <= tol * std::sqrt(
             static_cast<Real>(dim_));
}

bool GateMatrix::is_diagonal(Real tol) const {
  for (Index r = 0; r < dim_; ++r) {
    for (Index c = 0; c < dim_; ++c) {
      if (r != c && std::abs(at(r, c)) > tol) return false;
    }
  }
  return true;
}

std::vector<bool> GateMatrix::diagonal_qubits(Real tol) const {
  std::vector<bool> result(num_qubits_, true);
  for (Index r = 0; r < dim_; ++r) {
    for (Index c = 0; c < dim_; ++c) {
      if (std::abs(at(r, c)) <= tol) continue;
      for (int j = 0; j < num_qubits_; ++j) {
        if (get_bit(r, j) != get_bit(c, j)) result[j] = false;
      }
    }
  }
  return result;
}

std::vector<Amplitude> GateMatrix::diagonal() const {
  QUASAR_CHECK(is_diagonal(), "diagonal() requires a diagonal matrix");
  std::vector<Amplitude> d(dim_);
  for (Index i = 0; i < dim_; ++i) d[i] = at(i, i);
  return d;
}

std::optional<GateMatrix::PhasedPermutation> GateMatrix::phased_permutation(
    Real tol) const {
  PhasedPermutation result;
  result.target.assign(dim_, dim_);
  result.phase.assign(dim_, Amplitude{0.0, 0.0});
  std::vector<bool> row_used(dim_, false);
  for (Index c = 0; c < dim_; ++c) {
    for (Index r = 0; r < dim_; ++r) {
      const Amplitude v = at(r, c);
      if (std::abs(v) <= tol) continue;
      if (result.target[c] != dim_) return std::nullopt;  // 2nd entry
      if (std::abs(std::abs(v) - 1.0) > tol) return std::nullopt;
      if (row_used[r]) return std::nullopt;
      result.target[c] = r;
      result.phase[c] = v;
      row_used[r] = true;
    }
    if (result.target[c] == dim_) return std::nullopt;  // zero column
  }
  return result;
}

void GateMatrix::scale(Amplitude factor) {
  for (auto& v : data_) v *= factor;
}

}  // namespace quasar
