/// \file standard.hpp
/// \brief The standard gate library used by supremacy circuits and examples.
///
/// Matches the definitions in Sec. 2 of the paper: H, T, X^1/2, Y^1/2, CZ,
/// plus the usual Paulis, rotations, and controlled gates needed by the
/// example algorithms and tests.
#pragma once

#include <string>

#include "gates/matrix.hpp"

namespace quasar {

/// Identifies a named gate. `kCustom` marks gates carrying an arbitrary
/// caller-provided matrix. The scheduler keys its global-gate
/// specializations (Sec. 3.5) off the *matrix structure*, not this enum,
/// so custom gates benefit too; the enum exists for printing, circuit I/O,
/// and the supremacy generator's "previous gate" rules.
enum class GateKind {
  kH,
  kX,
  kY,
  kZ,
  kT,
  kTdg,
  kS,
  kSdg,
  kSqrtX,   ///< X^(1/2) as defined in the paper.
  kSqrtY,   ///< Y^(1/2) as defined in the paper.
  kRx,
  kRy,
  kRz,
  kPhase,   ///< diag(1, e^{i theta})
  kCZ,
  kCNot,
  kSwap,
  kCPhase,  ///< diag(1,1,1,e^{i theta})
  kCustom,
};

/// Human-readable gate name ("H", "T", "X_1_2", ...).
std::string gate_name(GateKind kind);

class Rng;

namespace gates {

/// Hadamard.
GateMatrix h();
/// Pauli X (bit flip).
GateMatrix x();
/// Pauli Y.
GateMatrix y();
/// Pauli Z.
GateMatrix z();
/// T gate: diag(1, e^{i pi/4}).
GateMatrix t();
/// T-dagger.
GateMatrix tdg();
/// S gate: diag(1, i).
GateMatrix s();
/// S-dagger.
GateMatrix sdg();
/// X^(1/2) = 1/2 [[1+i, 1-i], [1-i, 1+i]]  (paper Sec. 2).
GateMatrix sqrt_x();
/// Y^(1/2) = 1/2 [[1+i, -1-i], [1+i, 1+i]]  (paper Sec. 2).
GateMatrix sqrt_y();
/// Rotation about X by theta.
GateMatrix rx(Real theta);
/// Rotation about Y by theta.
GateMatrix ry(Real theta);
/// Rotation about Z by theta (diagonal).
GateMatrix rz(Real theta);
/// Phase gate diag(1, e^{i theta}) (diagonal).
GateMatrix phase(Real theta);
/// Controlled-Z: diag(1,1,1,-1); symmetric in its two qubits.
GateMatrix cz();
/// Controlled-NOT; qubit 0 is the control, qubit 1 the target.
GateMatrix cnot();
/// Swap of two qubits.
GateMatrix swap();
/// Controlled phase diag(1,1,1,e^{i theta}).
GateMatrix cphase(Real theta);
/// Haar-ish random single-qubit unitary (for property tests): built from
/// random Euler angles drawn via the supplied generator.
GateMatrix random_su2(::quasar::Rng& rng);

}  // namespace gates

/// Returns the canonical matrix for a parameterless standard gate kind.
/// Throws quasar::Error for parameterized kinds (kRx/kRy/kRz/kPhase/
/// kCPhase) and kCustom.
GateMatrix standard_matrix(GateKind kind);

/// True iff the kind takes an angle parameter (kRx/kRy/kRz/kPhase/kCPhase).
bool is_parameterized(GateKind kind);

/// Returns the matrix for a parameterized standard kind at angle theta.
/// Throws quasar::Error for parameterless kinds and kCustom.
GateMatrix parameterized_matrix(GateKind kind, Real theta);

/// Number of qubits a standard gate kind acts on (1 or 2). Throws for
/// kCustom.
int standard_arity(GateKind kind);

}  // namespace quasar
