#include "gates/standard.hpp"

#include <cmath>
#include <numbers>

#include "core/rng.hpp"

namespace quasar {

namespace {
constexpr double kInvSqrt2 = 0.7071067811865475244008443621048490;
const Amplitude kI{0.0, 1.0};
}  // namespace

std::string gate_name(GateKind kind) {
  switch (kind) {
    case GateKind::kH: return "H";
    case GateKind::kX: return "X";
    case GateKind::kY: return "Y";
    case GateKind::kZ: return "Z";
    case GateKind::kT: return "T";
    case GateKind::kTdg: return "Tdg";
    case GateKind::kS: return "S";
    case GateKind::kSdg: return "Sdg";
    case GateKind::kSqrtX: return "X_1_2";
    case GateKind::kSqrtY: return "Y_1_2";
    case GateKind::kRx: return "Rx";
    case GateKind::kRy: return "Ry";
    case GateKind::kRz: return "Rz";
    case GateKind::kPhase: return "P";
    case GateKind::kCZ: return "CZ";
    case GateKind::kCNot: return "CNOT";
    case GateKind::kSwap: return "SWAP";
    case GateKind::kCPhase: return "CP";
    case GateKind::kCustom: return "U";
  }
  return "?";
}

namespace gates {

GateMatrix h() {
  return GateMatrix(2, {kInvSqrt2, kInvSqrt2, kInvSqrt2, -kInvSqrt2});
}

GateMatrix x() { return GateMatrix(2, {0.0, 1.0, 1.0, 0.0}); }

GateMatrix y() { return GateMatrix(2, {0.0, -kI, kI, 0.0}); }

GateMatrix z() { return GateMatrix(2, {1.0, 0.0, 0.0, -1.0}); }

GateMatrix t() {
  return GateMatrix(
      2, {1.0, 0.0, 0.0, std::polar(1.0, std::numbers::pi / 4.0)});
}

GateMatrix tdg() {
  return GateMatrix(
      2, {1.0, 0.0, 0.0, std::polar(1.0, -std::numbers::pi / 4.0)});
}

GateMatrix s() { return GateMatrix(2, {1.0, 0.0, 0.0, kI}); }

GateMatrix sdg() { return GateMatrix(2, {1.0, 0.0, 0.0, -kI}); }

GateMatrix sqrt_x() {
  const Amplitude p{0.5, 0.5}, m{0.5, -0.5};
  return GateMatrix(2, {p, m, m, p});
}

GateMatrix sqrt_y() {
  const Amplitude p{0.5, 0.5}, n{-0.5, -0.5};
  return GateMatrix(2, {p, n, p, p});
}

GateMatrix rx(Real theta) {
  const Real c = std::cos(theta / 2), sn = std::sin(theta / 2);
  return GateMatrix(2, {Amplitude{c, 0}, Amplitude{0, -sn},
                        Amplitude{0, -sn}, Amplitude{c, 0}});
}

GateMatrix ry(Real theta) {
  const Real c = std::cos(theta / 2), sn = std::sin(theta / 2);
  return GateMatrix(2, {Amplitude{c, 0}, Amplitude{-sn, 0},
                        Amplitude{sn, 0}, Amplitude{c, 0}});
}

GateMatrix rz(Real theta) {
  return GateMatrix(2, {std::polar(1.0, -theta / 2), 0.0, 0.0,
                        std::polar(1.0, theta / 2)});
}

GateMatrix phase(Real theta) {
  return GateMatrix(2, {1.0, 0.0, 0.0, std::polar(1.0, theta)});
}

GateMatrix cz() {
  GateMatrix m = GateMatrix::identity(2);
  m.at(3, 3) = -1.0;
  return m;
}

GateMatrix cnot() {
  // Qubit 0 = control (low bit), qubit 1 = target.
  GateMatrix m = GateMatrix::zero(2);
  m.at(0, 0) = 1.0;  // |00> -> |00>
  m.at(2, 2) = 1.0;  // |10> -> |10>  (control low bit = 0)
  m.at(1, 3) = 1.0;  // |11> -> |01>
  m.at(3, 1) = 1.0;  // |01> -> |11>
  return m;
}

GateMatrix swap() {
  GateMatrix m = GateMatrix::zero(2);
  m.at(0, 0) = 1.0;
  m.at(1, 2) = 1.0;
  m.at(2, 1) = 1.0;
  m.at(3, 3) = 1.0;
  return m;
}

GateMatrix cphase(Real theta) {
  GateMatrix m = GateMatrix::identity(2);
  m.at(3, 3) = std::polar(1.0, theta);
  return m;
}

GateMatrix random_su2(Rng& rng) {
  const Real alpha = rng.uniform_real() * 2 * std::numbers::pi;
  const Real beta = rng.uniform_real() * 2 * std::numbers::pi;
  const Real gamma = std::acos(std::sqrt(rng.uniform_real()));
  const Real delta = rng.uniform_real() * 2 * std::numbers::pi;
  // U = e^{i alpha} Rz(beta) Ry(2 gamma) Rz(delta)
  GateMatrix u = rz(beta) * ry(2 * gamma) * rz(delta);
  u.scale(std::polar(1.0, alpha));
  return u;
}

}  // namespace gates

GateMatrix standard_matrix(GateKind kind) {
  switch (kind) {
    case GateKind::kH: return gates::h();
    case GateKind::kX: return gates::x();
    case GateKind::kY: return gates::y();
    case GateKind::kZ: return gates::z();
    case GateKind::kT: return gates::t();
    case GateKind::kTdg: return gates::tdg();
    case GateKind::kS: return gates::s();
    case GateKind::kSdg: return gates::sdg();
    case GateKind::kSqrtX: return gates::sqrt_x();
    case GateKind::kSqrtY: return gates::sqrt_y();
    case GateKind::kCZ: return gates::cz();
    case GateKind::kCNot: return gates::cnot();
    case GateKind::kSwap: return gates::swap();
    default:
      throw Error("standard_matrix: gate kind requires parameters or a "
                  "custom matrix: " + gate_name(kind));
  }
}

bool is_parameterized(GateKind kind) {
  switch (kind) {
    case GateKind::kRx:
    case GateKind::kRy:
    case GateKind::kRz:
    case GateKind::kPhase:
    case GateKind::kCPhase:
      return true;
    default:
      return false;
  }
}

GateMatrix parameterized_matrix(GateKind kind, Real theta) {
  switch (kind) {
    case GateKind::kRx: return gates::rx(theta);
    case GateKind::kRy: return gates::ry(theta);
    case GateKind::kRz: return gates::rz(theta);
    case GateKind::kPhase: return gates::phase(theta);
    case GateKind::kCPhase: return gates::cphase(theta);
    default:
      throw Error("parameterized_matrix: gate kind takes no parameter: " +
                  gate_name(kind));
  }
}

int standard_arity(GateKind kind) {
  switch (kind) {
    case GateKind::kCZ:
    case GateKind::kCNot:
    case GateKind::kSwap:
    case GateKind::kCPhase:
      return 2;
    case GateKind::kCustom:
      throw Error("standard_arity: custom gates have caller-defined arity");
    default:
      return 1;
  }
}

}  // namespace quasar
