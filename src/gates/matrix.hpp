/// \file matrix.hpp
/// \brief Dense complex matrices for k-qubit gates and their algebra.
///
/// Gates are 2^k x 2^k unitaries. Cluster fusion (paper Sec. 3.6.1 step 2)
/// multiplies many small gates, each embedded into the cluster's qubit
/// set, into one k-qubit matrix that the kernels then apply in a single
/// sweep over the state vector. Qubit-index convention: gate-local qubit j
/// corresponds to bit j of the row/column index (qubit 0 is the least
/// significant bit), matching the state-vector convention in Sec. 2.
#pragma once

#include <initializer_list>
#include <optional>
#include <vector>

#include "core/aligned.hpp"
#include "core/error.hpp"
#include "core/types.hpp"

namespace quasar {

/// Dense, row-major complex matrix of dimension 2^k (k = qubit count).
class GateMatrix {
 public:
  /// Identity on k qubits.
  static GateMatrix identity(int num_qubits);

  /// Zero matrix on k qubits (building block for accumulation).
  static GateMatrix zero(int num_qubits);

  /// Builds from a row-major list of dim*dim entries; dim must be a power
  /// of two. Throws quasar::Error otherwise.
  GateMatrix(Index dim, std::vector<Amplitude> entries);

  /// Convenience constructor for literal 2x2 / 4x4 matrices in tests and
  /// the standard gate library.
  GateMatrix(Index dim, std::initializer_list<Amplitude> entries);

  /// Number of qubits the matrix acts on (log2 of dimension).
  int num_qubits() const noexcept { return num_qubits_; }

  /// Matrix dimension (2^num_qubits).
  Index dim() const noexcept { return dim_; }

  /// Element access, row-major.
  Amplitude& at(Index row, Index col) { return data_[row * dim_ + col]; }
  const Amplitude& at(Index row, Index col) const {
    return data_[row * dim_ + col];
  }
  /// Contiguous row-major storage.
  const Amplitude* data() const noexcept { return data_.data(); }

  /// Matrix product this * rhs (apply rhs first).
  GateMatrix operator*(const GateMatrix& rhs) const;

  /// Conjugate transpose.
  GateMatrix adjoint() const;

  /// Kronecker product: (*this) ⊗ rhs, with rhs occupying the low qubits.
  GateMatrix kron(const GateMatrix& rhs) const;

  /// Reorders the tensor factors: output gate-local qubit j carries what
  /// this matrix's qubit perm[j] carried. perm must be a permutation of
  /// [0, num_qubits). Used to sort gate qubits ascending before the sweep
  /// so the kernels see monotone strides (paper Sec. 3.2).
  GateMatrix permute_qubits(const std::vector<int>& perm) const;

  /// Embeds this gate, acting on `gate_qubits` (positions within a
  /// cluster of `cluster_qubits` total), into a 2^cluster_qubits matrix
  /// that is identity elsewhere. gate_qubits[j] is the cluster-local
  /// position carrying this matrix's qubit j.
  GateMatrix embed(int cluster_qubits, const std::vector<int>& gate_qubits) const;

  /// Frobenius distance to another matrix.
  Real distance(const GateMatrix& other) const;

  /// True iff unitary within tolerance.
  bool is_unitary(Real tol = 1e-10) const;

  /// True iff all off-diagonal entries are below tolerance. Diagonal gates
  /// applied to global qubits require no communication (paper Sec. 3.5).
  bool is_diagonal(Real tol = 1e-12) const;

  /// Returns, for each gate-local qubit, whether the matrix acts
  /// "diagonally" on it: no entry connects basis states that differ in that
  /// qubit's bit. A CNOT acts diagonally on its control but not its
  /// target; this is what makes control qubits free to keep global.
  std::vector<bool> diagonal_qubits(Real tol = 1e-12) const;

  /// The diagonal as a vector; precondition: is_diagonal().
  std::vector<Amplitude> diagonal() const;

  /// If the matrix is a phased permutation — exactly one unit-magnitude
  /// entry per column — returns, for each input basis state (column),
  /// the output basis state it maps to and the phase it picks up.
  /// X, Y, CNOT, SWAP, and every diagonal gate qualify; H does not.
  /// Applied to global qubits, such a gate is a rank renumbering plus
  /// per-rank phases and needs no communication (paper Sec. 3.5).
  struct PhasedPermutation {
    std::vector<Index> target;     ///< target[col] = row of the nonzero
    std::vector<Amplitude> phase;  ///< phase[col] = that entry's value
  };
  std::optional<PhasedPermutation> phased_permutation(
      Real tol = 1e-12) const;

  /// Multiplies every entry by a scalar (global-phase absorption,
  /// paper Sec. 3.5: a T gate on a global qubit becomes a phase folded
  /// into the next matrix).
  void scale(Amplitude factor);

 private:
  GateMatrix() = default;

  Index dim_ = 0;
  int num_qubits_ = 0;
  AlignedVector<Amplitude> data_;
};

}  // namespace quasar
