#include "obs/progress.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "core/parse.hpp"
#include "obs/names.hpp"
#include "obs/trace.hpp"

namespace quasar::obs {

namespace detail {

using Clock = std::chrono::steady_clock;

/// One live run's state. Owned by its ProgressRun; registered in the
/// global list for progress_snapshot() while alive.
struct RunState {
  mutable std::mutex mutex;
  int num_stages = 0;
  int first_stage = 0;
  int stages_done = 0;
  Clock::time_point start;
  bool print = false;  // QUASAR_PROGRESS=1 at run start
  std::vector<double> predictions;  // adopted from the globals at start
  ProgressScope* scope = nullptr;   // delivery target; null = global sink

  ProgressSnapshot snapshot_locked() const;
  static void deliver_to_scope(ProgressScope* scope,
                               const ProgressSnapshot& snap) {
    scope->deliver(snap);
  }
};

}  // namespace detail

namespace {

using detail::Clock;
using detail::RunState;

/// Process-wide registry: delivery defaults and the live runs in
/// creation order (progress_snapshot() reports the oldest — the
/// single-run behavior every existing consumer expects).
struct Globals {
  std::mutex mutex;
  std::vector<double> predictions;
  ProgressSink sink;
  std::vector<RunState*> live;  // creation order
};

Globals& globals() {
  static Globals g;
  return g;
}

/// Per-thread nesting and scoping state. `current` makes nested runs on
/// one thread inert; `scope` routes runs launched from this thread.
thread_local RunState* t_current_run = nullptr;
thread_local ProgressScope* t_scope = nullptr;

bool env_progress_enabled() {
  const char* value = std::getenv("QUASAR_PROGRESS");
  // Strict: "1" on, "0"/unset/empty off, anything else throws.
  return value != nullptr && value[0] != '\0' &&
         parse_flag(value, "QUASAR_PROGRESS");
}

}  // namespace

namespace detail {

/// Builds the snapshot from run state; call with the run's lock held.
ProgressSnapshot RunState::snapshot_locked() const {
  ProgressSnapshot snap;
  snap.active = true;
  snap.stages_done = stages_done;
  snap.num_stages = num_stages;
  snap.elapsed_s =
      std::chrono::duration<double>(Clock::now() - start).count();

  // ETA: weight by installed per-stage predictions when they cover the
  // schedule, else extrapolate linearly. Either way only stages timed
  // in *this* run (>= first_stage) feed the rate, so a checkpoint
  // restart doesn't count resumed-over stages as free.
  const int done_here = stages_done - first_stage;
  const int remaining = num_stages - stages_done;
  if (done_here > 0 && remaining >= 0) {
    if (static_cast<int>(predictions.size()) == num_stages) {
      double predicted_done = 0.0, predicted_remaining = 0.0;
      for (int i = first_stage; i < stages_done; ++i) {
        predicted_done += predictions[static_cast<std::size_t>(i)];
      }
      for (int i = stages_done; i < num_stages; ++i) {
        predicted_remaining += predictions[static_cast<std::size_t>(i)];
      }
      if (predicted_done > 0.0) {
        snap.eta_s = predicted_remaining * (snap.elapsed_s / predicted_done);
      }
    }
    if (snap.eta_s < 0.0) {
      snap.eta_s = snap.elapsed_s / done_here * remaining;
    }
  }

  // Byte counters come from the thread-visible trace session, if any; a
  // run without tracing still gets stage counts and ETA. Per-job
  // sessions (ThreadSessionScope) make this per-job I/O accounting.
  if (const TraceSession* session = global_session()) {
    const std::uint64_t oocore_disk =
        session->counter_value(names::kOocoreDiskBytes);
    const std::uint64_t ckpt_disk =
        session->counter_value(names::kCkptBytesWritten);
    snap.gb_written = static_cast<double>(oocore_disk + ckpt_disk) / 1.0e9;
    const std::uint64_t oocore_raw =
        session->counter_value(names::kOocoreRawBytes);
    if (oocore_disk > 0 && oocore_raw > 0) {
      snap.ratio = static_cast<double>(oocore_raw) /
                   static_cast<double>(oocore_disk);
    }
  }
  return snap;
}

}  // namespace detail

void set_progress_predictions(std::vector<double> seconds_per_stage) {
  Globals& g = globals();
  std::lock_guard<std::mutex> lock(g.mutex);
  g.predictions = std::move(seconds_per_stage);
}

void set_progress_sink(ProgressSink sink) {
  Globals& g = globals();
  std::lock_guard<std::mutex> lock(g.mutex);
  g.sink = std::move(sink);
}

ProgressSnapshot progress_snapshot() {
  Globals& g = globals();
  std::lock_guard<std::mutex> lock(g.mutex);
  if (g.live.empty()) return ProgressSnapshot{};
  // The oldest live run; its state cannot die while we hold g.mutex
  // (ProgressRun's destructor deregisters under the same lock).
  const RunState& state = *g.live.front();
  std::lock_guard<std::mutex> run_lock(state.mutex);
  return state.snapshot_locked();
}

std::string format_progress_line(const ProgressSnapshot& p) {
  char buffer[192];
  int n = std::snprintf(buffer, sizeof(buffer),
                        "[quasar] stage %d/%d  elapsed %.1fs", p.stages_done,
                        p.num_stages, p.elapsed_s);
  if (p.eta_s >= 0.0) {
    n += std::snprintf(buffer + n, sizeof(buffer) - static_cast<size_t>(n),
                       "  eta %.1fs", p.eta_s);
  } else {
    n += std::snprintf(buffer + n, sizeof(buffer) - static_cast<size_t>(n),
                       "  eta --");
  }
  if (p.gb_written > 0.0) {
    n += std::snprintf(buffer + n, sizeof(buffer) - static_cast<size_t>(n),
                       "  written %.2f GB", p.gb_written);
  }
  if (p.ratio > 0.0) {
    n += std::snprintf(buffer + n, sizeof(buffer) - static_cast<size_t>(n),
                       "  ratio %.1fx", p.ratio);
  }
  return std::string(buffer, static_cast<std::size_t>(n));
}

ProgressRun::ProgressRun(int num_stages, int first_stage) {
  if (t_current_run != nullptr) return;  // nested on this thread: inert
  auto state = std::make_unique<RunState>();
  state->num_stages = num_stages;
  state->first_stage = first_stage;
  state->stages_done = first_stage;
  state->start = Clock::now();
  state->print = env_progress_enabled();
  state->scope = t_scope;
  Globals& g = globals();
  {
    std::lock_guard<std::mutex> lock(g.mutex);
    state->predictions = g.predictions;
    g.live.push_back(state.get());
  }
  t_current_run = state.get();
  state_ = std::move(state);
}

ProgressRun::~ProgressRun() {
  if (state_ == nullptr) return;
  Globals& g = globals();
  {
    std::lock_guard<std::mutex> lock(g.mutex);
    g.live.erase(std::remove(g.live.begin(), g.live.end(), state_.get()),
                 g.live.end());
  }
  if (t_current_run == state_.get()) t_current_run = nullptr;
}

void ProgressRun::stage_completed(int stages_done) {
  if (state_ == nullptr) return;
  ProgressSnapshot snap;
  {
    std::lock_guard<std::mutex> lock(state_->mutex);
    state_->stages_done = stages_done;
    snap = state_->snapshot_locked();
  }
  if (state_->print) {
    std::fprintf(stderr, "%s\n", format_progress_line(snap).c_str());
  }
  if (state_->scope != nullptr) {
    RunState::deliver_to_scope(state_->scope, snap);
    return;
  }
  Globals& g = globals();
  std::lock_guard<std::mutex> lock(g.mutex);
  if (g.sink) g.sink(snap);
}

ProgressSnapshot ProgressRun::snapshot() const {
  if (state_ == nullptr) return ProgressSnapshot{};
  std::lock_guard<std::mutex> lock(state_->mutex);
  return state_->snapshot_locked();
}

ProgressScope::ProgressScope(ProgressSink sink) : sink_(std::move(sink)) {
  prev_ = t_scope;
  t_scope = this;
}

ProgressScope::~ProgressScope() { t_scope = prev_; }

ProgressSnapshot ProgressScope::latest() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return latest_;
}

void ProgressScope::deliver(const ProgressSnapshot& snap) {
  ProgressSink sink;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    latest_ = snap;
    sink = sink_;
  }
  if (sink) sink(snap);
}

}  // namespace quasar::obs
