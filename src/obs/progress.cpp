#include "obs/progress.hpp"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <mutex>

#include "core/parse.hpp"
#include "obs/names.hpp"
#include "obs/trace.hpp"

namespace quasar::obs {

namespace {

using Clock = std::chrono::steady_clock;

struct TrackerState {
  std::mutex mutex;
  bool active = false;
  int num_stages = 0;
  int first_stage = 0;
  int stages_done = 0;
  Clock::time_point start;
  bool print = false;  // QUASAR_PROGRESS=1 at run start
  std::vector<double> predictions;
  ProgressSink sink;
};

TrackerState& tracker() {
  static TrackerState state;
  return state;
}

bool env_progress_enabled() {
  const char* value = std::getenv("QUASAR_PROGRESS");
  // Strict: "1" on, "0"/unset/empty off, anything else throws.
  return value != nullptr && value[0] != '\0' &&
         parse_flag(value, "QUASAR_PROGRESS");
}

/// Builds the snapshot from tracker state; call with the lock held.
ProgressSnapshot snapshot_locked(const TrackerState& state) {
  ProgressSnapshot snap;
  snap.active = state.active;
  snap.stages_done = state.stages_done;
  snap.num_stages = state.num_stages;
  if (!state.active) return snap;
  snap.elapsed_s =
      std::chrono::duration<double>(Clock::now() - state.start).count();

  // ETA: weight by installed per-stage predictions when they cover the
  // schedule, else extrapolate linearly. Either way only stages timed
  // in *this* process (>= first_stage) feed the rate, so a checkpoint
  // restart doesn't count resumed-over stages as free.
  const int done_here = state.stages_done - state.first_stage;
  const int remaining = state.num_stages - state.stages_done;
  if (done_here > 0 && remaining >= 0) {
    if (static_cast<int>(state.predictions.size()) == state.num_stages) {
      double predicted_done = 0.0, predicted_remaining = 0.0;
      for (int i = state.first_stage; i < state.stages_done; ++i) {
        predicted_done += state.predictions[static_cast<std::size_t>(i)];
      }
      for (int i = state.stages_done; i < state.num_stages; ++i) {
        predicted_remaining +=
            state.predictions[static_cast<std::size_t>(i)];
      }
      if (predicted_done > 0.0) {
        snap.eta_s = predicted_remaining * (snap.elapsed_s / predicted_done);
      }
    }
    if (snap.eta_s < 0.0) {
      snap.eta_s = snap.elapsed_s / done_here * remaining;
    }
  }

  // Byte counters come from the installed trace session, if any; a run
  // without tracing still gets stage counts and ETA.
  if (const TraceSession* session = global_session()) {
    const std::uint64_t oocore_disk =
        session->counter_value(names::kOocoreDiskBytes);
    const std::uint64_t ckpt_disk =
        session->counter_value(names::kCkptBytesWritten);
    snap.gb_written =
        static_cast<double>(oocore_disk + ckpt_disk) / 1.0e9;
    const std::uint64_t oocore_raw =
        session->counter_value(names::kOocoreRawBytes);
    if (oocore_disk > 0 && oocore_raw > 0) {
      snap.ratio = static_cast<double>(oocore_raw) /
                   static_cast<double>(oocore_disk);
    }
  }
  return snap;
}

}  // namespace

void set_progress_predictions(std::vector<double> seconds_per_stage) {
  TrackerState& state = tracker();
  std::lock_guard<std::mutex> lock(state.mutex);
  state.predictions = std::move(seconds_per_stage);
}

void set_progress_sink(ProgressSink sink) {
  TrackerState& state = tracker();
  std::lock_guard<std::mutex> lock(state.mutex);
  state.sink = std::move(sink);
}

ProgressSnapshot progress_snapshot() {
  TrackerState& state = tracker();
  std::lock_guard<std::mutex> lock(state.mutex);
  return snapshot_locked(state);
}

std::string format_progress_line(const ProgressSnapshot& p) {
  char buffer[192];
  int n = std::snprintf(buffer, sizeof(buffer),
                        "[quasar] stage %d/%d  elapsed %.1fs", p.stages_done,
                        p.num_stages, p.elapsed_s);
  if (p.eta_s >= 0.0) {
    n += std::snprintf(buffer + n, sizeof(buffer) - static_cast<size_t>(n),
                       "  eta %.1fs", p.eta_s);
  } else {
    n += std::snprintf(buffer + n, sizeof(buffer) - static_cast<size_t>(n),
                       "  eta --");
  }
  if (p.gb_written > 0.0) {
    n += std::snprintf(buffer + n, sizeof(buffer) - static_cast<size_t>(n),
                       "  written %.2f GB", p.gb_written);
  }
  if (p.ratio > 0.0) {
    n += std::snprintf(buffer + n, sizeof(buffer) - static_cast<size_t>(n),
                       "  ratio %.1fx", p.ratio);
  }
  return std::string(buffer, static_cast<std::size_t>(n));
}

ProgressRun::ProgressRun(int num_stages, int first_stage) {
  TrackerState& state = tracker();
  std::lock_guard<std::mutex> lock(state.mutex);
  if (state.active) return;  // nested run: stay inert
  state.active = true;
  state.num_stages = num_stages;
  state.first_stage = first_stage;
  state.stages_done = first_stage;
  state.start = Clock::now();
  state.print = env_progress_enabled();
  active_ = true;
}

ProgressRun::~ProgressRun() {
  if (!active_) return;
  TrackerState& state = tracker();
  std::lock_guard<std::mutex> lock(state.mutex);
  state.active = false;
  state.num_stages = 0;
  state.first_stage = 0;
  state.stages_done = 0;
}

void ProgressRun::stage_completed(int stages_done) {
  if (!active_) return;
  TrackerState& state = tracker();
  std::lock_guard<std::mutex> lock(state.mutex);
  state.stages_done = stages_done;
  const ProgressSnapshot snap = snapshot_locked(state);
  if (state.print) {
    std::fprintf(stderr, "%s\n", format_progress_line(snap).c_str());
  }
  if (state.sink) state.sink(snap);
}

}  // namespace quasar::obs
