#include "obs/sampler.hpp"

#include <algorithm>
#include <chrono>

namespace quasar::obs {

TimeSeriesSampler::TimeSeriesSampler(TraceSession& session, int period_ms,
                                     std::size_t capacity)
    : session_(session),
      period_ms_(std::max(1, period_ms)),
      capacity_(std::max<std::size_t>(2, capacity)) {}

TimeSeriesSampler::~TimeSeriesSampler() { stop(); }

void TimeSeriesSampler::start() {
  if (thread_.joinable()) return;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_requested_ = false;
    take_sample_locked();
  }
  thread_ = std::thread(&TimeSeriesSampler::run_loop, this);
}

void TimeSeriesSampler::stop() {
  if (!thread_.joinable()) return;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_requested_ = true;
  }
  cv_.notify_all();
  thread_.join();
  std::lock_guard<std::mutex> lock(mutex_);
  take_sample_locked();
}

void TimeSeriesSampler::run_loop() {
  std::unique_lock<std::mutex> lock(mutex_);
  while (!stop_requested_) {
    // wait_for (not a fixed deadline schedule): if the host stalls past
    // one period we take one late sample rather than a catch-up burst.
    cv_.wait_for(lock, std::chrono::milliseconds(period_ms_),
                 [this] { return stop_requested_; });
    if (stop_requested_) break;
    take_sample_locked();
  }
}

void TimeSeriesSampler::take_sample_locked() {
  TimeSample sample;
  sample.t_ns = session_.now_ns();
  sample.counters = session_.counters();
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(sample));
  } else {
    ring_[next_slot_] = std::move(sample);
  }
  next_slot_ = (next_slot_ + 1) % capacity_;
  ++total_;
}

std::uint64_t TimeSeriesSampler::total_samples() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return total_;
}

std::vector<TimeSample> TimeSeriesSampler::samples() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<TimeSample> out;
  out.reserve(ring_.size());
  if (ring_.size() < capacity_) {
    out = ring_;  // not yet wrapped: ring_ is already oldest-first
  } else {
    for (std::size_t i = 0; i < ring_.size(); ++i) {
      out.push_back(ring_[(next_slot_ + i) % capacity_]);
    }
  }
  return out;
}

}  // namespace quasar::obs
