/// \file json.hpp
/// \brief Minimal dependency-free JSON parser for telemetry tooling.
///
/// The repo's exporters *emit* JSON by hand and validate_json() checks
/// well-formedness without building a tree; the bench regression gate
/// (regress.hpp) is the first consumer that must *read* values back
/// (committed baselines vs. fresh bench output). This is a small strict
/// recursive-descent parser for standard JSON — objects keep insertion
/// order, numbers remember whether they were written as integers
/// (regression rules treat integer leaves as deterministic and
/// exact-match them). Not a general-purpose library: no streaming, no
/// NaN/Inf extensions, inputs are small files.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace quasar::obs {

/// One parsed JSON value (a tree; arrays/objects own their children).
struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  /// True when the literal had no '.', 'e' or 'E' and fits an int64 —
  /// `integer` then holds the exact value.
  bool number_is_integer = false;
  std::int64_t integer = 0;
  std::string string;
  std::vector<JsonValue> array;
  /// Insertion-ordered; duplicate keys keep the last occurrence wins
  /// semantics of find().
  std::vector<std::pair<std::string, JsonValue>> object;

  bool is_object() const { return kind == Kind::kObject; }
  bool is_array() const { return kind == Kind::kArray; }
  bool is_number() const { return kind == Kind::kNumber; }

  /// Member lookup (objects only); nullptr when absent.
  const JsonValue* find(std::string_view key) const;
};

/// Parses `text` as one JSON document (trailing whitespace allowed,
/// trailing garbage is an error). On failure returns nullopt and, when
/// `error` is non-null, stores a message with the byte offset.
std::optional<JsonValue> parse_json(std::string_view text,
                                    std::string* error = nullptr);

}  // namespace quasar::obs
