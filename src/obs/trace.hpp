/// \file trace.hpp
/// \brief Run-wide tracing and metrics: nested spans + a counter registry.
///
/// The paper's contribution is an *accounting* of where a run's time goes
/// (kernel sweeps, node bandwidth, all-to-alls — Sec. 3.2–3.4, Fig. 7–10).
/// This layer records that accounting from real executions: a TraceSession
/// collects nested spans (`run > stage > {gate_run, exchange, permute,
/// measure}`) into per-thread buffers with steady-clock timestamps, plus a
/// registry of named monotonic counters that absorbs the scattered
/// CommStats/BlockRunStats-style tallies. Exporters (trace_export.hpp)
/// turn a session into chrome://tracing JSON, a flat metrics dump, and a
/// measured-vs-predicted stage report (obs/report.hpp).
///
/// Cost model: instrumentation sites are always compiled in; when no
/// session is installed every site costs one atomic pointer load and one
/// branch (measured <1% on stage_sweep_microbench — DESIGN.md §8). When a
/// session is installed, span recording appends to a buffer owned by the
/// calling thread (no locks after first touch), and counter increments
/// are relaxed atomic adds.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <vector>

namespace quasar::obs {

/// One completed span (a chrome://tracing "X" complete event). `name` and
/// `category` must be string literals (or otherwise outlive the session);
/// instrumentation sites always pass literals, which keeps recording
/// allocation-free.
struct SpanEvent {
  const char* category = "";
  const char* name = "";
  std::int64_t begin_ns = 0;  ///< steady-clock, relative to session start
  std::int64_t end_ns = 0;
  int thread = 0;  ///< per-session thread index (registration order)
  int depth = 0;   ///< nesting depth on that thread (0 = outermost)
  /// Optional numeric argument (nullptr arg_name = none), e.g. the stage
  /// index of a stage span or the byte volume of an exchange.
  const char* arg_name = nullptr;
  std::int64_t arg_value = 0;
};

/// Snapshot of one registry counter.
struct CounterValue {
  std::string name;
  std::uint64_t value = 0;
  /// True for high-water-mark counters (merged with max, not +).
  bool is_peak = false;
};

struct HistogramSnapshot;  // histogram.hpp
namespace detail {
struct HistogramCell;  // histogram.hpp
}  // namespace detail

/// Collects spans and counters for one traced run. Install with
/// set_global_session() to activate the instrumentation sites; reading
/// (spans()/counters()) is meant for after the traced region, though it
/// is safe against concurrent counter increments.
class TraceSession {
 public:
  TraceSession();
  ~TraceSession();
  TraceSession(const TraceSession&) = delete;
  TraceSession& operator=(const TraceSession&) = delete;

  /// Nanoseconds since the session was created (steady clock).
  std::int64_t now_ns() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now() - start_)
        .count();
  }

  /// Opens a span on the calling thread: returns the begin timestamp and
  /// increments the thread's nesting depth.
  std::int64_t begin_span();
  /// Closes the innermost span on the calling thread and records it.
  void end_span(const char* category, const char* name, std::int64_t begin_ns,
                const char* arg_name = nullptr, std::int64_t arg_value = 0);

  /// Adds `delta` to the named monotonic counter (relaxed atomic add;
  /// safe under concurrent OpenMP increments).
  void add_counter(std::string_view name, std::uint64_t delta);
  /// Raises the named high-water-mark counter to at least `value`.
  void peak_counter(std::string_view name, std::uint64_t value);

  /// Records one nanosecond latency sample into the named log-bucketed
  /// histogram (histogram.hpp). `name` must be a string literal with a
  /// stable address (obs/names.hpp) — the fast path caches the calling
  /// thread's shard keyed on that address. Wait-free after first touch.
  void record_latency(const char* name, std::uint64_t ns);

  /// All recorded spans, merged across threads, sorted by begin time
  /// (ties: outer span first). Call after the traced region.
  std::vector<SpanEvent> spans() const;
  /// All counters, sorted by name.
  std::vector<CounterValue> counters() const;
  /// The named counter's current value, or 0 if it was never touched.
  /// Safe against concurrent increments (used by the live progress and
  /// sampler readers).
  std::uint64_t counter_value(std::string_view name) const;
  /// Merged cross-thread snapshots of every latency histogram, sorted
  /// by name. Safe to call mid-run (may lag in-flight increments).
  std::vector<HistogramSnapshot> histograms() const;
  /// Number of threads that recorded at least one span.
  int num_threads() const;

 private:
  friend class ScopedSpan;
  struct ThreadBuffer {
    std::vector<SpanEvent> events;  // appended only by the owning thread
    std::thread::id owner;
    int index = 0;
    int depth = 0;  // current nesting depth, owning thread only
  };
  struct CounterCell {
    std::atomic<std::uint64_t> value{0};
    bool is_peak = false;
  };

  /// The calling thread's buffer, registered on first touch.
  ThreadBuffer& thread_buffer();
  CounterCell& counter_cell(std::string_view name, bool is_peak);
  /// Slow path of record_latency: registers (or finds) the calling
  /// thread's shard of the named histogram under mutex_.
  void* histogram_shard_slow(const char* name);

  std::chrono::steady_clock::time_point start_;
  std::uint64_t id_;  ///< process-unique, distinguishes reused addresses

  mutable std::mutex mutex_;  // guards registration + counter map shape
  std::vector<std::unique_ptr<ThreadBuffer>> buffers_;
  std::unordered_map<std::string, std::unique_ptr<CounterCell>> counters_;
  std::unordered_map<std::string, std::unique_ptr<detail::HistogramCell>>
      histograms_;
};

namespace detail {
extern std::atomic<TraceSession*> g_session;
/// Per-thread session override (job server: one session per job, bound
/// to the worker thread and its OpenMP team for the job's lifetime).
/// `t_session_override` distinguishes "no override installed" (fall
/// through to the process-global session) from "overridden to nullptr"
/// (forked proc workers silence instrumentation on their thread even if
/// a global session leaks across the fork).
extern thread_local TraceSession* t_session;
extern thread_local bool t_session_override;
}  // namespace detail

/// Installs `session` as the process-global trace sink (nullptr disables
/// tracing). The caller keeps ownership and must keep the session alive
/// until it is uninstalled.
void set_global_session(TraceSession* session);

/// Installs `session` as the *calling thread's* trace sink, shadowing
/// the global session on this thread until clear_thread_session().
/// nullptr silences instrumentation on this thread. The caller keeps
/// ownership. Threads the runtime spawns itself (OpenMP teams, the
/// checkpoint writer) do not inherit the override — bind them
/// explicitly or accept that their events land in the global session.
void set_thread_session(TraceSession* session);

/// Removes the calling thread's override; instrumentation on this
/// thread reads the process-global session again.
void clear_thread_session();

/// The session visible to the calling thread: its override when one is
/// installed, the process-global session otherwise. This (one TLS flag
/// test + one load) is the whole hot-path cost of a disabled
/// instrumentation site.
inline TraceSession* global_session() {
  if (detail::t_session_override) return detail::t_session;
  return detail::g_session.load(std::memory_order_acquire);
}

/// RAII thread-session override: installs `session` on the calling
/// thread for the scope, restoring the previous override state on exit
/// (scopes nest). The job server wraps each job's scheduling and
/// execution in one of these so concurrent jobs trace into their own
/// sessions instead of interleaving in the global one.
class ThreadSessionScope {
 public:
  explicit ThreadSessionScope(TraceSession* session)
      : prev_session_(detail::t_session),
        prev_override_(detail::t_session_override) {
    set_thread_session(session);
  }
  ~ThreadSessionScope() {
    detail::t_session = prev_session_;
    detail::t_session_override = prev_override_;
  }
  ThreadSessionScope(const ThreadSessionScope&) = delete;
  ThreadSessionScope& operator=(const ThreadSessionScope&) = delete;

 private:
  TraceSession* prev_session_;
  bool prev_override_;
};

/// True when a session is installed.
inline bool enabled() { return global_session() != nullptr; }

/// RAII span: records [construction, destruction) on the calling thread
/// under the session installed at construction time. A no-op (one load +
/// branch) when tracing is disabled.
class ScopedSpan {
 public:
  ScopedSpan(const char* category, const char* name)
      : ScopedSpan(category, name, nullptr, 0) {}
  ScopedSpan(const char* category, const char* name, const char* arg_name,
             std::int64_t arg_value)
      : session_(global_session()), category_(category), name_(name),
        arg_name_(arg_name), arg_value_(arg_value) {
    if (session_ != nullptr) begin_ns_ = session_->begin_span();
  }
  ~ScopedSpan() {
    if (session_ != nullptr) {
      session_->end_span(category_, name_, begin_ns_, arg_name_, arg_value_);
    }
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// Updates the numeric argument before the span closes (e.g. a byte
  /// count known only at the end of the traced region).
  void set_arg(const char* arg_name, std::int64_t arg_value) {
    arg_name_ = arg_name;
    arg_value_ = arg_value;
  }

 private:
  TraceSession* session_;
  const char* category_;
  const char* name_;
  const char* arg_name_;
  std::int64_t arg_value_ = 0;
  std::int64_t begin_ns_ = 0;
};

/// Adds `delta` to a registry counter of the installed session; no-op
/// when tracing is disabled.
inline void count(std::string_view name, std::uint64_t delta = 1) {
  if (TraceSession* s = global_session()) s->add_counter(name, delta);
}

/// Raises a high-water-mark registry counter; no-op when disabled.
inline void count_peak(std::string_view name, std::uint64_t value) {
  if (TraceSession* s = global_session()) s->peak_counter(name, value);
}

}  // namespace quasar::obs

/// Span macro: `QUASAR_OBS_SPAN("exchange", "alltoall");` traces the
/// enclosing scope. Optional extra args: (arg_name, arg_value).
#define QUASAR_OBS_CONCAT_(a, b) a##b
#define QUASAR_OBS_CONCAT(a, b) QUASAR_OBS_CONCAT_(a, b)
#define QUASAR_OBS_SPAN(...) \
  ::quasar::obs::ScopedSpan QUASAR_OBS_CONCAT(quasar_obs_span_, \
                                              __LINE__)(__VA_ARGS__)
