/// \file progress.hpp
/// \brief Live stage progress and ETA for long runs.
///
/// A 0.5 PB-class circuit runs for hours; the operator's question is not
/// "what happened" (spans, after the fact) but "where are we and when
/// does it finish". The runtime's stage loops mark stage boundaries
/// through a process-global tracker; at each boundary the tracker joins
/// the live stage count with (a) per-stage duration predictions injected
/// by whoever holds a perfmodel (obs cannot depend on perfmodel — the
/// caller computes predict_stages() and hands the seconds down), and
/// (b) the installed TraceSession's byte counters, to produce a
/// ProgressSnapshot: `stage k/N, elapsed, ETA, GB written, ratio`.
///
/// Consumers: QUASAR_PROGRESS=1 prints one line per stage boundary to
/// stderr; set_progress_sink() delivers the same struct programmatically
/// (tests today, the job server of ROADMAP item 2 tomorrow). Tracking
/// itself costs one mutex acquisition per *stage boundary* — stages are
/// seconds-to-minutes long, so this is nowhere near a hot path.
#pragma once

#include <functional>
#include <string>
#include <vector>

namespace quasar::obs {

/// The progress state at one stage boundary.
struct ProgressSnapshot {
  bool active = false;   ///< a ProgressRun is live
  int stages_done = 0;   ///< completed stages
  int num_stages = 0;    ///< total stages in the schedule
  double elapsed_s = 0.0;
  /// Estimated seconds remaining; < 0 when unknown (no stages done yet).
  /// Prediction-weighted when per-stage predictions are installed
  /// (heterogeneous stages stay honest), linear extrapolation otherwise.
  double eta_s = -1.0;
  double gb_written = 0.0;  ///< oocore + ckpt bytes on disk, in GB (1e9)
  double ratio = 0.0;       ///< oocore raw/disk compression ratio; 0 = n/a
};

/// Installs per-stage predicted durations in seconds (e.g. from
/// perfmodel predict_stages()) used to weight the ETA. Cleared by an
/// empty vector; ignored when its length does not match the running
/// schedule's stage count.
void set_progress_predictions(std::vector<double> seconds_per_stage);

/// Programmatic observer invoked (under the tracker lock, keep it
/// cheap) at every stage boundary of the active run. nullptr clears.
using ProgressSink = std::function<void(const ProgressSnapshot&)>;
void set_progress_sink(ProgressSink sink);

/// The current progress state (active=false between runs). Callable
/// from any thread, any time — this is the job-server poll entry point.
ProgressSnapshot progress_snapshot();

/// Renders one stderr progress line, e.g.
/// `[quasar] stage 3/12  elapsed 12.4s  eta 41.2s  written 1.25 GB  ratio 3.9x`
/// (eta shown as `--` when unknown; written/ratio omitted when zero).
std::string format_progress_line(const ProgressSnapshot& p);

/// RAII run registration for the runtime's stage loops. Only the
/// outermost ProgressRun in the process is live (nested runs — e.g. a
/// driver invoking a sub-schedule — become inert observers), so stage
/// counts never interleave. Stage boundaries are reported with
/// stage_completed(); printing to stderr is gated on QUASAR_PROGRESS=1
/// read at construction.
class ProgressRun {
 public:
  /// `first_stage` > 0 resumes counting mid-schedule (checkpoint
  /// restart): ETA extrapolates only from stages timed in this process.
  explicit ProgressRun(int num_stages, int first_stage = 0);
  ~ProgressRun();
  ProgressRun(const ProgressRun&) = delete;
  ProgressRun& operator=(const ProgressRun&) = delete;

  /// Marks stages [0, stages_done) complete; emits to stderr/sink.
  void stage_completed(int stages_done);
  /// True when this is the outermost (live) run.
  bool active() const { return active_; }

 private:
  bool active_ = false;
};

}  // namespace quasar::obs
