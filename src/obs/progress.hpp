/// \file progress.hpp
/// \brief Live stage progress and ETA for long runs.
///
/// A 0.5 PB-class circuit runs for hours; the operator's question is not
/// "what happened" (spans, after the fact) but "where are we and when
/// does it finish". The runtime's stage loops mark stage boundaries
/// through a ProgressRun; at each boundary the run joins the live stage
/// count with (a) per-stage duration predictions injected by whoever
/// holds a perfmodel (obs cannot depend on perfmodel — the caller
/// computes predict_stages() and hands the seconds down), and (b) the
/// thread-visible TraceSession's byte counters, to produce a
/// ProgressSnapshot: `stage k/N, elapsed, ETA, GB written, ratio`.
///
/// Concurrency model (the job server runs many schedules at once):
/// every ProgressRun owns its state, so two runs on different threads
/// never interleave stage marks. A *nested* run on the same thread (a
/// driver invoking a sub-schedule) stays inert, exactly as before.
/// Delivery is scoped the same way: a ProgressScope installed on the
/// launching thread captures that thread's runs exclusively (per-job
/// progress in the server); runs launched outside any scope report to
/// the process-global sink, and progress_snapshot() observes the oldest
/// live run — so single-run processes behave exactly as they always
/// have.
///
/// Consumers: QUASAR_PROGRESS=1 prints one line per stage boundary to
/// stderr; set_progress_sink()/ProgressScope deliver the same struct
/// programmatically. Tracking costs a couple of mutex acquisitions per
/// *stage boundary* — stages are seconds-to-minutes long, so this is
/// nowhere near a hot path.
#pragma once

#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace quasar::obs {

/// The progress state at one stage boundary.
struct ProgressSnapshot {
  bool active = false;   ///< a ProgressRun is live
  int stages_done = 0;   ///< completed stages
  int num_stages = 0;    ///< total stages in the schedule
  double elapsed_s = 0.0;
  /// Estimated seconds remaining; < 0 when unknown (no stages done yet).
  /// Prediction-weighted when per-stage predictions are installed
  /// (heterogeneous stages stay honest), linear extrapolation otherwise.
  double eta_s = -1.0;
  double gb_written = 0.0;  ///< oocore + ckpt bytes on disk, in GB (1e9)
  double ratio = 0.0;       ///< oocore raw/disk compression ratio; 0 = n/a
};

/// Installs per-stage predicted durations in seconds (e.g. from
/// perfmodel predict_stages()) used to weight the ETA. Adopted by runs
/// constructed afterwards. Cleared by an empty vector; ignored when its
/// length does not match the running schedule's stage count.
void set_progress_predictions(std::vector<double> seconds_per_stage);

/// Programmatic observer invoked (under the progress lock, keep it
/// cheap) at every stage boundary of runs launched outside any
/// ProgressScope. nullptr clears.
using ProgressSink = std::function<void(const ProgressSnapshot&)>;
void set_progress_sink(ProgressSink sink);

/// The oldest live run's progress (active=false when no run is live).
/// Callable from any thread, any time — the single-run poll entry
/// point; the job server polls its per-job ProgressScope instead.
ProgressSnapshot progress_snapshot();

/// Renders one stderr progress line, e.g.
/// `[quasar] stage 3/12  elapsed 12.4s  eta 41.2s  written 1.25 GB  ratio 3.9x`
/// (eta shown as `--` when unknown; written/ratio omitted when zero).
std::string format_progress_line(const ProgressSnapshot& p);

namespace detail {
struct RunState;
}  // namespace detail

/// RAII run registration for the runtime's stage loops. The outermost
/// ProgressRun *per thread* is live; a nested run on the same thread
/// becomes an inert observer, so a driver invoking a sub-schedule never
/// interleaves stage counts. Runs on different threads are all live and
/// fully independent. Stage boundaries are reported with
/// stage_completed(); printing to stderr is gated on QUASAR_PROGRESS=1
/// read at construction.
class ProgressRun {
 public:
  /// `first_stage` > 0 resumes counting mid-schedule (checkpoint
  /// restart): ETA extrapolates only from stages timed in this process.
  explicit ProgressRun(int num_stages, int first_stage = 0);
  ~ProgressRun();
  ProgressRun(const ProgressRun&) = delete;
  ProgressRun& operator=(const ProgressRun&) = delete;

  /// Marks stages [0, stages_done) complete; emits to stderr and the
  /// run's delivery target (its ProgressScope, else the global sink).
  void stage_completed(int stages_done);
  /// True when this is the outermost (live) run on its thread.
  bool active() const { return state_ != nullptr; }
  /// This run's progress (inactive snapshot for an inert nested run).
  /// Callable from any thread while the run is alive.
  ProgressSnapshot snapshot() const;

 private:
  std::unique_ptr<detail::RunState> state_;  // null = inert nested run
};

/// Thread-scoped progress capture for the job server: while a
/// ProgressScope is installed on a thread, every ProgressRun *launched
/// from that thread* delivers its boundary snapshots to this scope's
/// sink instead of the global one, and latest() returns the most recent
/// snapshot delivered. Scopes nest (inner shadows outer) and must
/// outlive the runs launched under them.
class ProgressScope {
 public:
  /// `sink` may be empty — latest() still captures.
  explicit ProgressScope(ProgressSink sink = nullptr);
  ~ProgressScope();
  ProgressScope(const ProgressScope&) = delete;
  ProgressScope& operator=(const ProgressScope&) = delete;

  /// The most recent snapshot delivered to this scope (a default,
  /// inactive snapshot before the first boundary).
  ProgressSnapshot latest() const;

 private:
  friend struct detail::RunState;
  void deliver(const ProgressSnapshot& snap);

  mutable std::mutex mutex_;
  ProgressSink sink_;
  ProgressSnapshot latest_;
  ProgressScope* prev_ = nullptr;  // shadowed outer scope, restored on exit
};

}  // namespace quasar::obs
