#include "obs/trace.hpp"

#include <algorithm>
#include <thread>

#include "obs/histogram.hpp"

namespace quasar::obs {

namespace detail {
std::atomic<TraceSession*> g_session{nullptr};
thread_local TraceSession* t_session = nullptr;
thread_local bool t_session_override = false;
}  // namespace detail

namespace {

/// Process-unique session ids let the thread-local buffer cache detect a
/// new session that happens to reuse a freed session's address.
std::atomic<std::uint64_t> g_next_session_id{1};

struct ThreadCache {
  std::uint64_t session_id = 0;
  void* buffer = nullptr;
};
thread_local ThreadCache t_cache;

/// Per-thread cache of histogram shards, keyed on (session id, name
/// literal address). A handful of entries per thread in practice (one
/// per instrumented site), so a linear scan beats any map.
struct HistCacheEntry {
  std::uint64_t session_id = 0;
  const char* name = nullptr;
  void* shard = nullptr;
};
thread_local std::vector<HistCacheEntry> t_hist_cache;

}  // namespace

TraceSession::TraceSession()
    : start_(std::chrono::steady_clock::now()),
      id_(g_next_session_id.fetch_add(1, std::memory_order_relaxed)) {}

TraceSession::~TraceSession() {
  // Never destroy an installed session out from under the hot path.
  if (detail::g_session.load(std::memory_order_acquire) == this) {
    set_global_session(nullptr);
  }
}

void set_global_session(TraceSession* session) {
  detail::g_session.store(session, std::memory_order_release);
}

void set_thread_session(TraceSession* session) {
  detail::t_session = session;
  detail::t_session_override = true;
}

void clear_thread_session() {
  detail::t_session = nullptr;
  detail::t_session_override = false;
}

TraceSession::ThreadBuffer& TraceSession::thread_buffer() {
  if (t_cache.session_id == id_) {
    return *static_cast<ThreadBuffer*>(t_cache.buffer);
  }
  // Slow path: the cache points at another session. Re-find this thread's
  // buffer (a thread alternating between two live sessions must not
  // register twice) or create it.
  const std::thread::id self = std::this_thread::get_id();
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& existing : buffers_) {
    if (existing->owner == self) {
      t_cache.session_id = id_;
      t_cache.buffer = existing.get();
      return *existing;
    }
  }
  buffers_.push_back(std::make_unique<ThreadBuffer>());
  ThreadBuffer& buf = *buffers_.back();
  buf.index = static_cast<int>(buffers_.size()) - 1;
  buf.owner = self;
  t_cache.session_id = id_;
  t_cache.buffer = &buf;
  return buf;
}

std::int64_t TraceSession::begin_span() {
  ThreadBuffer& buf = thread_buffer();
  ++buf.depth;
  return now_ns();
}

void TraceSession::end_span(const char* category, const char* name,
                            std::int64_t begin_ns, const char* arg_name,
                            std::int64_t arg_value) {
  ThreadBuffer& buf = thread_buffer();
  SpanEvent event;
  event.category = category;
  event.name = name;
  event.begin_ns = begin_ns;
  event.end_ns = now_ns();
  event.thread = buf.index;
  event.depth = --buf.depth;
  event.arg_name = arg_name;
  event.arg_value = arg_value;
  buf.events.push_back(event);
}

TraceSession::CounterCell& TraceSession::counter_cell(std::string_view name,
                                                      bool is_peak) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = counters_.find(std::string(name));
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name),
                           std::make_unique<CounterCell>()).first;
    it->second->is_peak = is_peak;
  }
  return *it->second;
}

void TraceSession::add_counter(std::string_view name, std::uint64_t delta) {
  counter_cell(name, /*is_peak=*/false)
      .value.fetch_add(delta, std::memory_order_relaxed);
}

void TraceSession::peak_counter(std::string_view name, std::uint64_t value) {
  std::atomic<std::uint64_t>& cell =
      counter_cell(name, /*is_peak=*/true).value;
  std::uint64_t seen = cell.load(std::memory_order_relaxed);
  while (seen < value &&
         !cell.compare_exchange_weak(seen, value,
                                     std::memory_order_relaxed)) {
  }
}

void TraceSession::record_latency(const char* name, std::uint64_t ns) {
  detail::HistogramShard* shard = nullptr;
  for (const HistCacheEntry& entry : t_hist_cache) {
    if (entry.session_id == id_ && entry.name == name) {
      shard = static_cast<detail::HistogramShard*>(entry.shard);
      break;
    }
  }
  if (shard == nullptr) {
    shard = static_cast<detail::HistogramShard*>(histogram_shard_slow(name));
    // Entries from dead sessions accumulate in long-lived threads that
    // see many sessions (tests); drop them before they make the linear
    // scan noticeable.
    if (t_hist_cache.size() >= 64) {
      std::erase_if(t_hist_cache, [this](const HistCacheEntry& entry) {
        return entry.session_id != id_;
      });
    }
    t_hist_cache.push_back(HistCacheEntry{id_, name, shard});
  }
  shard->record(ns);
}

void* TraceSession::histogram_shard_slow(const char* name) {
  // Keyed by string *content*: two literals with the same spelling but
  // different addresses (e.g. across translation units before the
  // linker merges them) must land in the same histogram. The address
  // only serves as the per-thread cache key.
  const std::thread::id self = std::this_thread::get_id();
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = histograms_.find(std::string(name));
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name),
                      std::make_unique<detail::HistogramCell>())
             .first;
  }
  detail::HistogramCell& cell = *it->second;
  for (const auto& existing : cell.shards) {
    if (existing->owner == self) return existing.get();
  }
  cell.shards.push_back(std::make_unique<detail::HistogramShard>());
  cell.shards.back()->owner = self;
  return cell.shards.back().get();
}

std::vector<HistogramSnapshot> TraceSession::histograms() const {
  std::vector<HistogramSnapshot> all;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    all.reserve(histograms_.size());
    for (const auto& [name, cell] : histograms_) {
      HistogramSnapshot snap;
      snap.name = name;
      snap.buckets.assign(kNumLatencyBuckets, 0);
      cell->merge_into(snap);
      all.push_back(std::move(snap));
    }
  }
  std::sort(all.begin(), all.end(),
            [](const HistogramSnapshot& a, const HistogramSnapshot& b) {
              return a.name < b.name;
            });
  return all;
}

std::uint64_t TraceSession::counter_value(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = counters_.find(std::string(name));
  if (it == counters_.end()) return 0;
  return it->second->value.load(std::memory_order_relaxed);
}

std::vector<SpanEvent> TraceSession::spans() const {
  std::vector<SpanEvent> all;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& buf : buffers_) {
      all.insert(all.end(), buf->events.begin(), buf->events.end());
    }
  }
  std::sort(all.begin(), all.end(),
            [](const SpanEvent& a, const SpanEvent& b) {
              if (a.begin_ns != b.begin_ns) return a.begin_ns < b.begin_ns;
              return a.depth < b.depth;  // outer span first on a tie
            });
  return all;
}

std::vector<CounterValue> TraceSession::counters() const {
  std::vector<CounterValue> all;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    all.reserve(counters_.size());
    for (const auto& [name, cell] : counters_) {
      all.push_back(CounterValue{
          name, cell->value.load(std::memory_order_relaxed),
          cell->is_peak});
    }
  }
  std::sort(all.begin(), all.end(),
            [](const CounterValue& a, const CounterValue& b) {
              return a.name < b.name;
            });
  return all;
}

int TraceSession::num_threads() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return static_cast<int>(buffers_.size());
}

}  // namespace quasar::obs
