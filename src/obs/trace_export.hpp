/// \file trace_export.hpp
/// \brief Trace/metrics exporters: chrome://tracing JSON, a flat metrics
/// dump for CI artifacts, and the QUASAR_TRACE env-variable wiring.
#pragma once

#include <memory>
#include <string>
#include <string_view>

#include "obs/trace.hpp"

namespace quasar::obs {

class TimeSeriesSampler;  // sampler.hpp

/// Serializes the session as chrome://tracing "JSON object format":
/// {"traceEvents": [ {"name", "cat", "ph": "X", "ts", "dur", "pid",
/// "tid", "args": {...}}, ... ], "displayTimeUnit": "ms"}. Load the file
/// in chrome://tracing or https://ui.perfetto.dev. Timestamps are
/// microseconds since session start.
std::string chrome_trace_json(const TraceSession& session);

/// Flat metrics dump: {"counters": {name: value, ...}, "spans": {
/// "<category>": {"count": N, "seconds": S}, ...}, "histograms": {name:
/// {"count", "mean_ns", "p50_ns", "p90_ns", "p99_ns", "max_ns"}, ...}}
/// — the CI-artifact companion of the chrome trace. When `sampler` is
/// non-null its ring buffer rides along as a "timeseries" section:
/// {"period_ms": P, "total_samples": T, "samples": [{"t_ms": X,
/// "counters": {...}}, ...]} (stop the sampler first for a complete
/// series).
std::string metrics_json(const TraceSession& session,
                         const TimeSeriesSampler* sampler = nullptr);

/// Writes `text` to `path`; throws quasar::Error on I/O failure.
void write_file(const std::string& path, std::string_view text);

/// Minimal strict JSON syntax checker (objects, arrays, strings, numbers,
/// true/false/null; rejects trailing garbage). Used by the tests and the
/// CI trace checker to validate emitted documents without a JSON
/// dependency. Returns false and fills `error` (when non-null) with a
/// byte offset + reason on the first violation.
bool validate_json(std::string_view text, std::string* error = nullptr);

/// Environment wiring for examples and benches. The guard installs a
/// fresh global TraceSession for its lifetime when *either* output is
/// requested, and writes on destruction:
///   QUASAR_TRACE=<file>          chrome://tracing JSON
///   QUASAR_TRACE_METRICS=<file>  flat metrics dump (works standalone —
///                                it no longer requires QUASAR_TRACE)
///   QUASAR_SAMPLE_MS=<period>    run a background TimeSeriesSampler at
///                                that period; its ring is exported as
///                                the metrics dump's timeseries section
/// With none of them set the guard does nothing and tracing stays
/// disabled.
class EnvTraceGuard {
 public:
  EnvTraceGuard();
  ~EnvTraceGuard();
  EnvTraceGuard(const EnvTraceGuard&) = delete;
  EnvTraceGuard& operator=(const EnvTraceGuard&) = delete;

  /// True when tracing was requested and a session is active.
  bool active() const { return session_ != nullptr; }
  /// The installed session (nullptr when inactive).
  TraceSession* session() { return session_.get(); }

 private:
  std::unique_ptr<TraceSession> session_;
  std::unique_ptr<TimeSeriesSampler> sampler_;
  std::string trace_path_;
  std::string metrics_path_;
};

}  // namespace quasar::obs
