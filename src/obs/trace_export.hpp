/// \file trace_export.hpp
/// \brief Trace/metrics exporters: chrome://tracing JSON, a flat metrics
/// dump for CI artifacts, and the QUASAR_TRACE env-variable wiring.
#pragma once

#include <memory>
#include <string>
#include <string_view>

#include "obs/trace.hpp"

namespace quasar::obs {

/// Serializes the session as chrome://tracing "JSON object format":
/// {"traceEvents": [ {"name", "cat", "ph": "X", "ts", "dur", "pid",
/// "tid", "args": {...}}, ... ], "displayTimeUnit": "ms"}. Load the file
/// in chrome://tracing or https://ui.perfetto.dev. Timestamps are
/// microseconds since session start.
std::string chrome_trace_json(const TraceSession& session);

/// Flat metrics dump: {"counters": {name: value, ...}, "spans": {
/// "<category>": {"count": N, "seconds": S}, ...}} — the CI-artifact
/// companion of the chrome trace.
std::string metrics_json(const TraceSession& session);

/// Writes `text` to `path`; throws quasar::Error on I/O failure.
void write_file(const std::string& path, std::string_view text);

/// Minimal strict JSON syntax checker (objects, arrays, strings, numbers,
/// true/false/null; rejects trailing garbage). Used by the tests and the
/// CI trace checker to validate emitted documents without a JSON
/// dependency. Returns false and fills `error` (when non-null) with a
/// byte offset + reason on the first violation.
bool validate_json(std::string_view text, std::string* error = nullptr);

/// QUASAR_TRACE wiring for examples and benches: when the QUASAR_TRACE
/// environment variable names a file, the guard installs a fresh global
/// TraceSession for its lifetime and, on destruction, writes the chrome
/// trace there plus the flat metrics dump to QUASAR_TRACE_METRICS (when
/// that is also set). When QUASAR_TRACE is unset the guard does nothing
/// and tracing stays disabled.
class EnvTraceGuard {
 public:
  EnvTraceGuard();
  ~EnvTraceGuard();
  EnvTraceGuard(const EnvTraceGuard&) = delete;
  EnvTraceGuard& operator=(const EnvTraceGuard&) = delete;

  /// True when QUASAR_TRACE was set and tracing is active.
  bool active() const { return session_ != nullptr; }
  /// The installed session (nullptr when inactive).
  TraceSession* session() { return session_.get(); }

 private:
  std::unique_ptr<TraceSession> session_;
  std::string trace_path_;
  std::string metrics_path_;
};

}  // namespace quasar::obs
