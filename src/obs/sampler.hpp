/// \file sampler.hpp
/// \brief Background time-series sampler over the counter registry.
///
/// Spans answer "what happened when"; counters answer "how much total";
/// neither answers "was the oocore pipeline stalling early or late in
/// the run?". The sampler closes that gap: a background thread snapshots
/// the installed session's counter registry every `period` into a
/// bounded ring buffer, and trace_export.cpp serialises the ring as a
/// `timeseries` section next to the chrome://tracing JSON. Differencing
/// consecutive samples of a monotonic counter gives a rate curve
/// (bytes/s, stalls/s) with zero cost on the instrumented threads — the
/// sampler only ever *reads* (relaxed loads under the registry mutex).
///
/// Enable from the environment with QUASAR_SAMPLE_MS=<period> (handled
/// by EnvTraceGuard) or programmatically via start()/stop().
#pragma once

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/trace.hpp"

namespace quasar::obs {

/// One sampler tick: session-relative capture time + the full counter
/// registry at that instant.
struct TimeSample {
  std::int64_t t_ns = 0;
  std::vector<CounterValue> counters;
};

/// Periodically snapshots `session`'s counters into a ring buffer.
/// start()/stop() are idempotent; the destructor stops the thread. The
/// sampled session must outlive the sampler or its stop() call.
class TimeSeriesSampler {
 public:
  /// `period_ms` is clamped to >= 1; `capacity` ring slots are kept
  /// (oldest overwritten), clamped to >= 2.
  explicit TimeSeriesSampler(TraceSession& session, int period_ms,
                             std::size_t capacity = 4096);
  ~TimeSeriesSampler();
  TimeSeriesSampler(const TimeSeriesSampler&) = delete;
  TimeSeriesSampler& operator=(const TimeSeriesSampler&) = delete;

  /// Launches the sampling thread (no-op if already running). Takes an
  /// immediate first sample so even a short-lived run exports >= 1 tick.
  void start();
  /// Stops and joins the thread, taking one final sample so the series
  /// always covers the end of the sampled region (no-op if stopped).
  void stop();
  bool running() const { return thread_.joinable(); }

  int period_ms() const { return period_ms_; }
  /// Total ticks taken since construction — exceeds samples().size()
  /// once the ring has wrapped.
  std::uint64_t total_samples() const;
  /// The retained window, oldest first. Call after stop(), or mid-run
  /// for a live peek.
  std::vector<TimeSample> samples() const;

 private:
  void run_loop();
  void take_sample_locked();

  TraceSession& session_;
  const int period_ms_;
  const std::size_t capacity_;

  mutable std::mutex mutex_;  // ring + stop flag
  std::condition_variable cv_;
  bool stop_requested_ = false;
  std::vector<TimeSample> ring_;
  std::size_t next_slot_ = 0;
  std::uint64_t total_ = 0;
  std::thread thread_;
};

}  // namespace quasar::obs
