/// \file names.hpp
/// \brief The canonical registry of obs counter / histogram names.
///
/// Counter names are the join key between the increment sites (runtime,
/// kernels, ckpt, oocore) and the consumers (report.cpp, progress.cpp,
/// CI artifact scripts). Before this header they were raw string
/// literals repeated at both ends, so a typo at either end silently
/// dropped the metric from every report. Every increment and every
/// lookup goes through these constants; adding a metric means adding a
/// name here first.
///
/// All constants are inline char arrays (not std::string) so using them
/// stays allocation-free on the hot path and their addresses are stable
/// process-wide — the latency-histogram thread cache keys on the
/// pointer (histogram.hpp).
#pragma once

namespace quasar::obs::names {

// --- comm.*: VirtualCluster primitives --------------------------------
inline constexpr char kCommAlltoalls[] = "comm.alltoalls";
inline constexpr char kCommBytesSentPerRank[] = "comm.bytes_sent_per_rank";
inline constexpr char kCommPeakBounceBytes[] = "comm.peak_bounce_bytes";
inline constexpr char kCommLocalPermutationSweeps[] =
    "comm.local_permutation_sweeps";
inline constexpr char kCommLocalPermutationBytes[] =
    "comm.local_permutation_bytes";
inline constexpr char kCommLocalSwapSweeps[] = "comm.local_swap_sweeps";
inline constexpr char kCommPairwiseExchanges[] = "comm.pairwise_exchanges";
inline constexpr char kCommRankRenumberings[] = "comm.rank_renumberings";
/// Latency histogram: one bounce-buffer chunk triple-copy inside an
/// all-to-all (a -> bounce -> b -> a).
inline constexpr char kCommExchangeChunkNs[] = "comm.exchange_chunk_ns";

// --- block.*: cache-blocked stage execution ---------------------------
inline constexpr char kBlockGates[] = "block.gates";
inline constexpr char kBlockRuns[] = "block.runs";
inline constexpr char kBlockRunGates[] = "block.run_gates";
inline constexpr char kBlockSweeps[] = "block.sweeps";
inline constexpr char kBlockHoisted[] = "block.hoisted";
inline constexpr char kBlockCoalesced[] = "block.coalesced";
/// Latency histogram: one blocked multi-gate run (a full DRAM sweep).
inline constexpr char kBlockRunNs[] = "block.run_ns";

// --- ckpt.*: checkpoint/restart ---------------------------------------
inline constexpr char kCkptSnapshots[] = "ckpt.snapshots";
inline constexpr char kCkptBytesWritten[] = "ckpt.bytes_written";
inline constexpr char kCkptRawBytes[] = "ckpt.raw_bytes";
inline constexpr char kCkptWriteNs[] = "ckpt.write_ns";
inline constexpr char kCkptBytesRead[] = "ckpt.bytes_read";
inline constexpr char kCkptShardCrcFailures[] = "ckpt.shard_crc_failures";
inline constexpr char kCkptFallbacks[] = "ckpt.fallbacks";
inline constexpr char kCkptResumes[] = "ckpt.resumes";
/// Latency histogram: one shard encode + write + (optional) fsync.
inline constexpr char kCkptShardWriteNs[] = "ckpt.shard_write_ns";

// --- serve.*: the job server (DESIGN.md §13) --------------------------
inline constexpr char kServeJobs[] = "serve.jobs";
inline constexpr char kServeCacheHit[] = "serve.cache_hit";
inline constexpr char kServeCacheMiss[] = "serve.cache_miss";
inline constexpr char kServePreemptions[] = "serve.preemptions";
inline constexpr char kServeResumes[] = "serve.resumes";
inline constexpr char kServeRejected[] = "serve.rejected";
/// Latency histogram: one job's queue wait (admission to first stage).
inline constexpr char kServeQueueWaitNs[] = "serve.queue_wait_ns";

// --- oocore.*: segmented out-of-core pipeline -------------------------
inline constexpr char kOocoreSweeps[] = "oocore.sweeps";
inline constexpr char kOocoreTiles[] = "oocore.tiles";
inline constexpr char kOocoreSegments[] = "oocore.segments";
inline constexpr char kOocoreComputeNs[] = "oocore.compute_ns";
inline constexpr char kOocoreStallNs[] = "oocore.stall_ns";
inline constexpr char kOocoreSweepNs[] = "oocore.sweep_ns";
inline constexpr char kOocoreIoNs[] = "oocore.io_ns";
inline constexpr char kOocoreRawBytes[] = "oocore.raw_bytes";
inline constexpr char kOocoreDiskBytes[] = "oocore.disk_bytes";
inline constexpr char kOocoreMaterializations[] = "oocore.materializations";
inline constexpr char kOocoreDematerializations[] =
    "oocore.dematerializations";
/// Latency histograms: one segment read (pread + decode) / write
/// (encode + pwrite), and the codec halves on their own.
inline constexpr char kOocoreReadSegmentNs[] = "oocore.read_segment_ns";
inline constexpr char kOocoreWriteSegmentNs[] = "oocore.write_segment_ns";
inline constexpr char kOocoreEncodeNs[] = "oocore.encode_ns";
inline constexpr char kOocoreDecodeNs[] = "oocore.decode_ns";

}  // namespace quasar::obs::names
