#include "obs/json.hpp"

#include <cctype>
#include <cerrno>
#include <cstdlib>

namespace quasar::obs {

const JsonValue* JsonValue::find(std::string_view key) const {
  if (kind != Kind::kObject) return nullptr;
  const JsonValue* found = nullptr;
  for (const auto& [k, v] : object) {
    if (k == key) found = &v;
  }
  return found;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  std::optional<JsonValue> parse(std::string* error) {
    JsonValue root;
    if (!parse_value(root)) {
      if (error != nullptr) {
        *error = error_ + " (at byte " + std::to_string(pos_) + ")";
      }
      return std::nullopt;
    }
    skip_ws();
    if (pos_ != text_.size()) {
      if (error != nullptr) {
        *error = "trailing garbage after document (at byte " +
                 std::to_string(pos_) + ")";
      }
      return std::nullopt;
    }
    return root;
  }

 private:
  bool fail(const char* what) {
    error_ = what;
    return false;
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool consume_literal(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) return false;
    pos_ += literal.size();
    return true;
  }

  bool parse_value(JsonValue& out) {
    skip_ws();
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    const char c = text_[pos_];
    switch (c) {
      case '{':
        return parse_object(out);
      case '[':
        return parse_array(out);
      case '"':
        out.kind = JsonValue::Kind::kString;
        return parse_string(out.string);
      case 't':
        if (!consume_literal("true")) return fail("bad literal");
        out.kind = JsonValue::Kind::kBool;
        out.boolean = true;
        return true;
      case 'f':
        if (!consume_literal("false")) return fail("bad literal");
        out.kind = JsonValue::Kind::kBool;
        out.boolean = false;
        return true;
      case 'n':
        if (!consume_literal("null")) return fail("bad literal");
        out.kind = JsonValue::Kind::kNull;
        return true;
      default:
        if (c == '-' || (c >= '0' && c <= '9')) return parse_number(out);
        return fail("unexpected character");
    }
  }

  bool parse_object(JsonValue& out) {
    out.kind = JsonValue::Kind::kObject;
    ++pos_;  // '{'
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return fail("expected object key");
      }
      std::string key;
      if (!parse_string(key)) return false;
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != ':') {
        return fail("expected ':'");
      }
      ++pos_;
      JsonValue value;
      if (!parse_value(value)) return false;
      out.object.emplace_back(std::move(key), std::move(value));
      skip_ws();
      if (pos_ >= text_.size()) return fail("unterminated object");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      return fail("expected ',' or '}'");
    }
  }

  bool parse_array(JsonValue& out) {
    out.kind = JsonValue::Kind::kArray;
    ++pos_;  // '['
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      JsonValue value;
      if (!parse_value(value)) return false;
      out.array.push_back(std::move(value));
      skip_ws();
      if (pos_ >= text_.size()) return fail("unterminated array");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      return fail("expected ',' or ']'");
    }
  }

  bool parse_string(std::string& out) {
    ++pos_;  // opening quote
    out.clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        return fail("unescaped control character in string");
      }
      if (c != '\\') {
        out.push_back(c);
        ++pos_;
        continue;
      }
      if (pos_ + 1 >= text_.size()) return fail("bad escape");
      const char esc = text_[pos_ + 1];
      pos_ += 2;
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return fail("bad \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_ + static_cast<std::size_t>(i)];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else return fail("bad \\u escape");
          }
          pos_ += 4;
          // UTF-8 encode the BMP code point; surrogate pairs are not
          // needed by any producer in this repo.
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          return fail("bad escape");
      }
    }
    return fail("unterminated string");
  }

  bool parse_number(JsonValue& out) {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    if (pos_ >= text_.size() || !std::isdigit(
            static_cast<unsigned char>(text_[pos_]))) {
      return fail("bad number");
    }
    bool integral = true;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (std::isdigit(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        // '+'/'-' only valid inside an exponent; strtod re-validates.
        integral = false;
        ++pos_;
      } else {
        break;
      }
    }
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    out.kind = JsonValue::Kind::kNumber;
    out.number = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') return fail("bad number");
    if (integral) {
      errno = 0;
      const long long v = std::strtoll(token.c_str(), &end, 10);
      if (errno == 0 && end != nullptr && *end == '\0') {
        out.number_is_integer = true;
        out.integer = static_cast<std::int64_t>(v);
      }
    }
    return true;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::string error_ = "parse error";
};

}  // namespace

std::optional<JsonValue> parse_json(std::string_view text,
                                    std::string* error) {
  return Parser(text).parse(error);
}

}  // namespace quasar::obs
