#include "obs/regress.hpp"

#include <algorithm>
#include <cstdio>

namespace quasar::obs {

namespace {

bool ends_with(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

bool contains(std::string_view text, std::string_view needle) {
  return text.find(needle) != std::string_view::npos;
}

/// Leaf classes, decided by the key's last path component.
enum class LeafClass {
  kTimeSeconds,       // lower-better, gated
  kTimeInformational, // _mean/_stddev companions
  kThroughput,        // higher-better, gated
  kStructural,        // integers: exact match
  kInformational,
};

LeafClass classify(std::string_view key, const JsonValue& value) {
  if (ends_with(key, "_mean_seconds") || ends_with(key, "_stddev_seconds")) {
    return LeafClass::kTimeInformational;
  }
  if (ends_with(key, "_seconds")) return LeafClass::kTimeSeconds;
  if (ends_with(key, "_gbs") || ends_with(key, "_gflops") ||
      contains(key, "speedup") || contains(key, "ratio")) {
    return LeafClass::kThroughput;
  }
  if (value.is_number() && value.number_is_integer) {
    if (contains(key, "threads")) return LeafClass::kInformational;
    return LeafClass::kStructural;
  }
  return LeafClass::kInformational;
}

std::string render(const JsonValue& value) {
  switch (value.kind) {
    case JsonValue::Kind::kNull:
      return "null";
    case JsonValue::Kind::kBool:
      return value.boolean ? "true" : "false";
    case JsonValue::Kind::kString:
      return "\"" + value.string + "\"";
    case JsonValue::Kind::kNumber: {
      if (value.number_is_integer) return std::to_string(value.integer);
      char buffer[48];
      std::snprintf(buffer, sizeof(buffer), "%.6g", value.number);
      return buffer;
    }
    case JsonValue::Kind::kArray:
      return "[array]";
    case JsonValue::Kind::kObject:
      return "{object}";
  }
  return "?";
}

std::string percent(double ratio) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%+.1f%%", (ratio - 1.0) * 100.0);
  return buffer;
}

struct Walker {
  const CompareOptions& options;
  CompareReport& report;

  void add(std::string path, std::string baseline, std::string result,
           std::string note, bool failed, bool checked) {
    if (failed) ++report.failures;
    report.diffs.push_back(MetricDiff{std::move(path), std::move(baseline),
                                      std::move(result), std::move(note),
                                      failed, checked});
  }

  std::string last_component(const std::string& path) {
    const std::size_t dot = path.rfind('.');
    return dot == std::string::npos ? path : path.substr(dot + 1);
  }

  void compare_leaf(const std::string& path, const JsonValue& base,
                    const JsonValue& res) {
    if (base.kind != res.kind) {
      add(path, render(base), render(res), "type changed", /*failed=*/true,
          /*checked=*/true);
      return;
    }
    const std::string key = last_component(path);
    switch (classify(key, base)) {
      case LeafClass::kTimeSeconds: {
        const double b = base.number, r = res.number;
        const double limit = b * (1.0 + options.rel_tolerance);
        const bool failed =
            r > limit && (r - b) > options.abs_floor_seconds;
        char note[96];
        std::snprintf(note, sizeof(note), "time %s (limit %+.1f%%)",
                      b > 0.0 ? percent(r / b).c_str() : "n/a",
                      options.rel_tolerance * 100.0);
        add(path, render(base), render(res), note, failed, true);
        return;
      }
      case LeafClass::kThroughput: {
        const double b = base.number, r = res.number;
        const double limit = b / (1.0 + options.rel_tolerance);
        const bool failed = b > 0.0 && r < limit;
        char note[96];
        std::snprintf(note, sizeof(note),
                      "throughput %s (limit -%.1f%%)",
                      b > 0.0 ? percent(r / b).c_str() : "n/a",
                      options.rel_tolerance / (1.0 + options.rel_tolerance) *
                          100.0);
        add(path, render(base), render(res), note, failed, true);
        return;
      }
      case LeafClass::kStructural: {
        const bool failed = base.integer != res.integer;
        add(path, render(base), render(res),
            failed ? "structural integer changed" : "structural integer",
            failed, true);
        return;
      }
      case LeafClass::kTimeInformational:
        add(path, render(base), render(res), "informational (mean/stddev)",
            false, false);
        return;
      case LeafClass::kInformational: {
        if (base.kind == JsonValue::Kind::kString) {
          const bool failed = base.string != res.string;
          add(path, render(base), render(res),
              failed ? "config string changed" : "config string", failed,
              true);
          return;
        }
        add(path, render(base), render(res), "informational", false, false);
        return;
      }
    }
  }

  void compare(const std::string& path, const JsonValue& base,
               const JsonValue& res) {
    if (base.is_object() && res.is_object()) {
      for (const auto& [key, bval] : base.object) {
        const std::string child = path.empty() ? key : path + "." + key;
        const JsonValue* rval = res.find(key);
        if (rval == nullptr) {
          add(child, render(bval), "<missing>",
              "metric present in baseline but missing from result",
              /*failed=*/true, /*checked=*/true);
          continue;
        }
        compare(child, bval, *rval);
      }
      for (const auto& [key, rval] : res.object) {
        if (base.find(key) == nullptr) {
          const std::string child = path.empty() ? key : path + "." + key;
          add(child, "<absent>", render(rval),
              "new metric not in baseline", false, false);
        }
      }
      return;
    }
    if (base.is_array() && res.is_array()) {
      if (base.array.size() != res.array.size()) {
        add(path, std::to_string(base.array.size()) + " elements",
            std::to_string(res.array.size()) + " elements",
            "array length changed", /*failed=*/true, /*checked=*/true);
        return;
      }
      for (std::size_t i = 0; i < base.array.size(); ++i) {
        compare(path + "[" + std::to_string(i) + "]", base.array[i],
                res.array[i]);
      }
      return;
    }
    compare_leaf(path, base, res);
  }
};

}  // namespace

CompareReport compare_bench_json(const JsonValue& baseline,
                                 const JsonValue& result,
                                 const CompareOptions& options) {
  CompareReport report;
  Walker walker{options, report};
  walker.compare("", baseline, result);
  return report;
}

std::string format_compare_report(const CompareReport& report,
                                  bool verbose) {
  std::string out;
  int checked = 0;
  for (const MetricDiff& diff : report.diffs) {
    checked += diff.checked ? 1 : 0;
    if (!diff.failed && !verbose) continue;
    out += diff.failed ? "  FAIL  " : (diff.checked ? "  ok    "
                                                    : "  info  ");
    out += diff.path + ": baseline " + diff.baseline + ", result " +
           diff.result + "  [" + diff.note + "]\n";
  }
  out += report.passed()
             ? "PASS: " + std::to_string(checked) + " metrics checked, " +
                   "no regressions\n"
             : "REGRESSION: " + std::to_string(report.failures) + " of " +
                   std::to_string(checked) + " checked metrics failed\n";
  return out;
}

void inject_slowdown(JsonValue& value, double factor) {
  if (value.is_object()) {
    for (auto& [key, child] : value.object) {
      if (child.is_number()) {
        if (ends_with(key, "_seconds")) {
          child.number *= factor;
          child.number_is_integer = false;
        } else if (ends_with(key, "_gbs") || ends_with(key, "_gflops") ||
                   contains(key, "speedup")) {
          child.number /= factor;
          child.number_is_integer = false;
        }
      } else {
        inject_slowdown(child, factor);
      }
    }
    return;
  }
  if (value.is_array()) {
    for (JsonValue& child : value.array) inject_slowdown(child, factor);
  }
}

}  // namespace quasar::obs
