/// \file histogram.hpp
/// \brief Lock-free log-bucketed latency histograms.
///
/// A mean hides the one slow O_DIRECT segment write that stalls a whole
/// pipeline sweep; the paper-scale argument needs *distributions*
/// (qHiPSTER and mpiQulacs both report per-operation latency spreads,
/// not totals). Each named histogram owned by a TraceSession buckets
/// nanosecond latencies into log2 octaves with 2^kLatencySubBits
/// sub-buckets per octave (<= ~12.5% relative bucket width; values
/// below 2^(kLatencySubBits+1) ns are exact). Recording is wait-free
/// after first touch: every thread gets its own shard of relaxed
/// atomics (registered once under the session mutex, found through a
/// thread-local cache keyed on the name literal's address), and shards
/// are merged only at export. A disabled site costs the usual one
/// acquire-load + branch.
///
/// Names must be string literals with stable addresses — use the
/// constants in obs/names.hpp.
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/trace.hpp"

namespace quasar::obs {

/// Sub-bucket resolution: 2^3 = 8 sub-buckets per power of two.
inline constexpr int kLatencySubBits = 3;
/// Bucket count covering the full uint64 nanosecond range: the largest
/// index is reached at bit_width 64 (shift 64-1-kSubBits, octave
/// 64-kSubBits) with the sub-bucket bits all set.
inline constexpr int kNumLatencyBuckets =
    ((64 - kLatencySubBits) << kLatencySubBits) + (1 << kLatencySubBits);

/// Bucket index for a nanosecond value. Values below 2^(kSubBits+1) map
/// to themselves (exact); larger values keep the top kSubBits+1
/// significant bits (the leading 1 selects the octave, the next
/// kSubBits bits the sub-bucket).
inline int latency_bucket_index(std::uint64_t ns) {
  if (ns < (std::uint64_t{1} << (kLatencySubBits + 1))) {
    return static_cast<int>(ns);
  }
  const int shift = std::bit_width(ns) - 1 - kLatencySubBits;
  return ((shift + 1) << kLatencySubBits) +
         static_cast<int>((ns >> shift) & ((1u << kLatencySubBits) - 1));
}

/// Smallest nanosecond value that lands in `index`.
inline std::uint64_t latency_bucket_lower(int index) {
  if (index < (1 << (kLatencySubBits + 1))) {
    return static_cast<std::uint64_t>(index);
  }
  const int shift = (index >> kLatencySubBits) - 1;
  const std::uint64_t sub = static_cast<std::uint64_t>(
      index & ((1 << kLatencySubBits) - 1));
  return ((std::uint64_t{1} << kLatencySubBits) | sub) << shift;
}

/// Largest nanosecond value that lands in `index` (inclusive).
inline std::uint64_t latency_bucket_upper(int index) {
  if (index + 1 >= kNumLatencyBuckets) return ~std::uint64_t{0};
  return latency_bucket_lower(index + 1) - 1;
}

/// Merged (cross-shard) view of one histogram, taken at export time.
struct HistogramSnapshot {
  std::string name;
  std::uint64_t count = 0;
  std::uint64_t total_ns = 0;
  std::uint64_t max_ns = 0;
  std::vector<std::uint64_t> buckets;  ///< kNumLatencyBuckets counts

  double mean_ns() const {
    return count > 0 ? static_cast<double>(total_ns) /
                           static_cast<double>(count)
                     : 0.0;
  }

  /// The q-quantile (q in [0,1]) as the upper bound of the bucket
  /// holding the ceil(q*count)-th sample, clamped to the observed max —
  /// a conservative (never under-reporting) estimate that is exact for
  /// values below 2^(kLatencySubBits+1) ns and within one sub-bucket
  /// (~12.5%) otherwise. Returns 0 when the histogram is empty.
  std::uint64_t quantile_ns(double q) const;
};

namespace detail {

/// One thread's private slice of a histogram. Only the owning thread
/// increments (relaxed), exporters read concurrently (relaxed loads) —
/// a snapshot taken mid-run may lag by in-flight increments, which is
/// fine for monitoring.
struct HistogramShard {
  std::thread::id owner;
  std::array<std::atomic<std::uint64_t>, kNumLatencyBuckets> buckets{};
  std::atomic<std::uint64_t> total_ns{0};
  std::atomic<std::uint64_t> max_ns{0};

  void record(std::uint64_t ns) {
    buckets[latency_bucket_index(ns)].fetch_add(1,
                                                std::memory_order_relaxed);
    total_ns.fetch_add(ns, std::memory_order_relaxed);
    std::uint64_t seen = max_ns.load(std::memory_order_relaxed);
    while (seen < ns && !max_ns.compare_exchange_weak(
                            seen, ns, std::memory_order_relaxed)) {
    }
  }
};

/// A named histogram: the registry of per-thread shards.
struct HistogramCell {
  std::vector<std::unique_ptr<HistogramShard>> shards;  // guarded by the
                                                        // session mutex
  /// Merges every shard into `out` (buckets must already be sized).
  void merge_into(HistogramSnapshot& out) const;
};

}  // namespace detail

/// Records one latency sample into the installed session's named
/// histogram; no-op when tracing is disabled. `name` must be a string
/// literal (obs/names.hpp).
inline void record_latency(const char* name, std::uint64_t ns) {
  if (TraceSession* s = global_session()) s->record_latency(name, ns);
}

/// RAII latency sample: records [construction, destruction) into the
/// session installed at construction. One load + branch when disabled —
/// in particular the clock is never read.
class ScopedLatency {
 public:
  explicit ScopedLatency(const char* name)
      : session_(global_session()), name_(name) {
    if (session_ != nullptr) begin_ns_ = session_->now_ns();
  }
  ~ScopedLatency() {
    if (session_ != nullptr) {
      session_->record_latency(
          name_, static_cast<std::uint64_t>(session_->now_ns() - begin_ns_));
    }
  }
  ScopedLatency(const ScopedLatency&) = delete;
  ScopedLatency& operator=(const ScopedLatency&) = delete;

 private:
  TraceSession* session_;
  const char* name_;
  std::int64_t begin_ns_ = 0;
};

}  // namespace quasar::obs
