#include "obs/trace_export.hpp"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <map>

#include "core/error.hpp"
#include "core/parse.hpp"
#include "obs/histogram.hpp"
#include "obs/sampler.hpp"

namespace quasar::obs {

namespace {

/// JSON string escaping for span/counter names. Instrumentation names are
/// plain ASCII literals, but the exporter must stay correct for anything.
void append_escaped(std::string& out, std::string_view text) {
  out += '"';
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void append_us(std::string& out, std::int64_t ns) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", static_cast<double>(ns) * 1e-3);
  out += buf;
}

}  // namespace

std::string chrome_trace_json(const TraceSession& session) {
  const std::vector<SpanEvent> spans = session.spans();
  const std::vector<CounterValue> counters = session.counters();
  std::string out;
  out.reserve(128 + 160 * spans.size() + 48 * counters.size());
  out += "{\"traceEvents\": [";
  bool first = true;
  for (const SpanEvent& e : spans) {
    if (!first) out += ',';
    first = false;
    out += "\n  {\"name\": ";
    append_escaped(out, e.name);
    out += ", \"cat\": ";
    append_escaped(out, e.category);
    out += ", \"ph\": \"X\", \"ts\": ";
    append_us(out, e.begin_ns);
    out += ", \"dur\": ";
    append_us(out, e.end_ns - e.begin_ns);
    out += ", \"pid\": 0, \"tid\": " + std::to_string(e.thread);
    out += ", \"args\": {\"depth\": " + std::to_string(e.depth);
    if (e.arg_name != nullptr) {
      out += ", ";
      append_escaped(out, e.arg_name);
      out += ": " + std::to_string(e.arg_value);
    }
    out += "}}";
  }
  // Counters ride along as one metadata-style instant event so a single
  // file carries the whole run's accounting.
  if (!counters.empty()) {
    if (!first) out += ',';
    out += "\n  {\"name\": \"counters\", \"cat\": \"metrics\", "
           "\"ph\": \"I\", \"ts\": 0, \"s\": \"g\", \"pid\": 0, "
           "\"tid\": 0, \"args\": {";
    bool first_counter = true;
    for (const CounterValue& c : counters) {
      if (!first_counter) out += ", ";
      first_counter = false;
      append_escaped(out, c.name);
      out += ": " + std::to_string(c.value);
    }
    out += "}}";
  }
  out += "\n], \"displayTimeUnit\": \"ms\"}\n";
  return out;
}

std::string metrics_json(const TraceSession& session,
                         const TimeSeriesSampler* sampler) {
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const CounterValue& c : session.counters()) {
    if (!first) out += ',';
    first = false;
    out += "\n    ";
    append_escaped(out, c.name);
    out += ": " + std::to_string(c.value);
  }
  out += "\n  },\n  \"spans\": {";

  struct Aggregate {
    std::uint64_t count = 0;
    std::int64_t total_ns = 0;
  };
  std::map<std::string, Aggregate> by_category;
  for (const SpanEvent& e : session.spans()) {
    Aggregate& agg = by_category[e.category];
    ++agg.count;
    agg.total_ns += e.end_ns - e.begin_ns;
  }
  first = true;
  for (const auto& [category, agg] : by_category) {
    if (!first) out += ',';
    first = false;
    out += "\n    ";
    append_escaped(out, category);
    char buf[64];
    std::snprintf(buf, sizeof(buf),
                  ": {\"count\": %llu, \"seconds\": %.6f}",
                  static_cast<unsigned long long>(agg.count),
                  static_cast<double>(agg.total_ns) * 1e-9);
    out += buf;
  }
  out += "\n  },\n  \"histograms\": {";

  first = true;
  for (const HistogramSnapshot& h : session.histograms()) {
    if (!first) out += ',';
    first = false;
    out += "\n    ";
    append_escaped(out, h.name);
    char buf[224];
    std::snprintf(
        buf, sizeof(buf),
        ": {\"count\": %llu, \"mean_ns\": %.1f, \"p50_ns\": %llu, "
        "\"p90_ns\": %llu, \"p99_ns\": %llu, \"max_ns\": %llu}",
        static_cast<unsigned long long>(h.count), h.mean_ns(),
        static_cast<unsigned long long>(h.quantile_ns(0.50)),
        static_cast<unsigned long long>(h.quantile_ns(0.90)),
        static_cast<unsigned long long>(h.quantile_ns(0.99)),
        static_cast<unsigned long long>(h.max_ns));
    out += buf;
  }
  out += "\n  }";

  if (sampler != nullptr) {
    out += ",\n  \"timeseries\": {\"period_ms\": " +
           std::to_string(sampler->period_ms()) +
           ", \"total_samples\": " +
           std::to_string(sampler->total_samples()) + ", \"samples\": [";
    first = true;
    for (const TimeSample& sample : sampler->samples()) {
      if (!first) out += ',';
      first = false;
      char tbuf[48];
      std::snprintf(tbuf, sizeof(tbuf), "\n    {\"t_ms\": %.3f",
                    static_cast<double>(sample.t_ns) * 1e-6);
      out += tbuf;
      out += ", \"counters\": {";
      bool first_counter = true;
      for (const CounterValue& c : sample.counters) {
        if (!first_counter) out += ", ";
        first_counter = false;
        append_escaped(out, c.name);
        out += ": " + std::to_string(c.value);
      }
      out += "}}";
    }
    out += "\n  ]}";
  }
  out += "\n}\n";
  return out;
}

void write_file(const std::string& path, std::string_view text) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  QUASAR_CHECK(f != nullptr, "write_file: cannot open output file");
  const std::size_t written = std::fwrite(text.data(), 1, text.size(), f);
  const int close_err = std::fclose(f);
  QUASAR_CHECK(written == text.size() && close_err == 0,
               "write_file: short write");
}

namespace {

/// Recursive-descent strict JSON checker.
class JsonChecker {
 public:
  explicit JsonChecker(std::string_view text) : text_(text) {}

  bool run(std::string* error) {
    ok_ = value();
    skip_ws();
    if (ok_ && pos_ != text_.size()) {
      fail("trailing characters after document");
    }
    if (!ok_ && error != nullptr) *error = error_;
    return ok_;
  }

 private:
  void fail(const std::string& why) {
    if (ok_) error_ = "offset " + std::to_string(pos_) + ": " + why;
    ok_ = false;
  }
  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }
  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) {
      fail("bad literal");
      return false;
    }
    pos_ += word.size();
    return true;
  }
  bool string() {
    if (pos_ >= text_.size() || text_[pos_] != '"') {
      fail("expected string");
      return false;
    }
    ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        fail("control character in string");
        return false;
      }
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) break;
        const char esc = text_[pos_];
        if (esc == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++pos_;
            if (pos_ >= text_.size() ||
                !std::isxdigit(static_cast<unsigned char>(text_[pos_]))) {
              fail("bad \\u escape");
              return false;
            }
          }
        } else if (esc != '"' && esc != '\\' && esc != '/' && esc != 'b' &&
                   esc != 'f' && esc != 'n' && esc != 'r' && esc != 't') {
          fail("bad escape");
          return false;
        }
      }
      ++pos_;
    }
    fail("unterminated string");
    return false;
  }
  bool number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    if (pos_ >= text_.size() ||
        !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      fail("expected digit");
      return false;
    }
    if (text_[pos_] == '0') {
      ++pos_;
    } else {
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (pos_ >= text_.size() ||
          !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        fail("expected fraction digits");
        return false;
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (pos_ >= text_.size() ||
          !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        fail("expected exponent digits");
        return false;
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    return pos_ > start;
  }
  bool value() {
    if (++depth_ > 256) {
      fail("nesting too deep");
      return false;
    }
    skip_ws();
    if (pos_ >= text_.size()) {
      fail("unexpected end of document");
      return false;
    }
    bool result = false;
    switch (text_[pos_]) {
      case '{': result = object(); break;
      case '[': result = array(); break;
      case '"': result = string(); break;
      case 't': result = literal("true"); break;
      case 'f': result = literal("false"); break;
      case 'n': result = literal("null"); break;
      default: result = number(); break;
    }
    --depth_;
    return result;
  }
  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != ':') {
        fail("expected ':'");
        return false;
      }
      ++pos_;
      if (!value()) return false;
      skip_ws();
      if (pos_ < text_.size() && text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (pos_ < text_.size() && text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      fail("expected ',' or '}'");
      return false;
    }
  }
  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      if (!value()) return false;
      skip_ws();
      if (pos_ < text_.size() && text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (pos_ < text_.size() && text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      fail("expected ',' or ']'");
      return false;
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
  bool ok_ = true;
  std::string error_;
};

}  // namespace

bool validate_json(std::string_view text, std::string* error) {
  return JsonChecker(text).run(error);
}

EnvTraceGuard::EnvTraceGuard() {
  const char* path = std::getenv("QUASAR_TRACE");
  if (path != nullptr && path[0] != '\0') trace_path_ = path;
  const char* metrics = std::getenv("QUASAR_TRACE_METRICS");
  if (metrics != nullptr && metrics[0] != '\0') metrics_path_ = metrics;
  // Either output alone activates tracing: a metrics-only CI capture
  // must not be forced to also write (and then discard) a full trace.
  if (trace_path_.empty() && metrics_path_.empty()) return;
  session_ = std::make_unique<TraceSession>();
  set_global_session(session_.get());
  const char* sample_ms = std::getenv("QUASAR_SAMPLE_MS");
  if (sample_ms != nullptr && sample_ms[0] != '\0') {
    // Strict: atoi would read "50x" as 50 and "x" as "sampler off".
    const int period =
        parse_int_in_range(sample_ms, 1, 3600000, "QUASAR_SAMPLE_MS");
    sampler_ = std::make_unique<TimeSeriesSampler>(*session_, period);
    sampler_->start();
  }
}

EnvTraceGuard::~EnvTraceGuard() {
  if (session_ == nullptr) return;
  if (sampler_ != nullptr) sampler_->stop();
  set_global_session(nullptr);
  try {
    if (!trace_path_.empty()) {
      write_file(trace_path_, chrome_trace_json(*session_));
      std::fprintf(stderr, "[obs] wrote trace to %s\n", trace_path_.c_str());
    }
    if (!metrics_path_.empty()) {
      write_file(metrics_path_, metrics_json(*session_, sampler_.get()));
      std::fprintf(stderr, "[obs] wrote metrics to %s\n",
                   metrics_path_.c_str());
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "[obs] trace export failed: %s\n", e.what());
  }
}

}  // namespace quasar::obs
