/// \file report.hpp
/// \brief Measured-vs-predicted stage reports: joins a TraceSession's
/// stage spans against the perfmodel predictions.
///
/// The paper validates its implementation with per-stage breakdowns of
/// where time went versus where the model said it would go (Sec. 4,
/// Fig. 7–10, Table 2). This header produces the same artifact from a
/// traced run: per stage, the measured gate/exchange/permute seconds
/// (aggregated from the trace) next to the kernel_model/comm_model
/// prediction and the ratio — the "why is this stage 1.8x over model?"
/// table.
#pragma once

#include <string>
#include <vector>

#include "obs/trace.hpp"
#include "perfmodel/comm_model.hpp"
#include "perfmodel/machine.hpp"
#include "perfmodel/oocore_model.hpp"
#include "sched/schedule.hpp"

namespace quasar::obs {

/// Measured wall-clock decomposition of one stage span, aggregated from
/// its direct child spans by category.
struct StageBreakdown {
  int stage = 0;
  double total_seconds = 0.0;     ///< the stage span itself
  double gate_seconds = 0.0;      ///< "gate_run" children
  double exchange_seconds = 0.0;  ///< "exchange" children (all-to-alls)
  double permute_seconds = 0.0;   ///< "permute" children (local sweeps)
  double renumber_seconds = 0.0;  ///< "renumber" children (zero-volume)
  double measure_seconds = 0.0;   ///< "measure" children
  /// "checkpoint" children: snapshot staging + any non-overlapped write
  /// time on the compute thread (DESIGN.md §10).
  double checkpoint_seconds = 0.0;
  /// "oocore" children: pipelined out-of-core stage execution (§11).
  double oocore_seconds = 0.0;
  /// Stage time not covered by any categorized child span.
  double other_seconds() const {
    const double covered = gate_seconds + exchange_seconds +
                           permute_seconds + renumber_seconds +
                           measure_seconds + checkpoint_seconds +
                           oocore_seconds;
    return total_seconds > covered ? total_seconds - covered : 0.0;
  }
};

/// Aggregates the session's "stage" spans (sorted by their stage-index
/// argument) into per-stage breakdowns. Sessions holding several runs
/// repeat stage indices; entries appear in span order.
std::vector<StageBreakdown> measured_stages(const TraceSession& session);

/// Modeled wall-clock decomposition of one stage (and the transition
/// leading into it).
struct StagePrediction {
  int stage = 0;
  double gate_seconds = 0.0;
  double exchange_seconds = 0.0;
  double permute_seconds = 0.0;
  double total_seconds() const {
    return gate_seconds + exchange_seconds + permute_seconds;
  }
};

/// How the prediction should treat the execution substrate.
struct ReportOptions {
  /// In-process virtual cluster (the default): the 2^g ranks execute
  /// sequentially on one host, so per-node kernel and permute times are
  /// multiplied by the rank count and the "all-to-all" is modeled as
  /// host-bandwidth data motion (memcpy through the bounce buffer, ~2
  /// reads + 2 writes per moved byte) instead of the interconnect model.
  bool in_process = true;
  /// Bytes each stored amplitude occupies (16 for the double engine,
  /// 8 for the fp32 mirror).
  double bytes_per_amplitude = 16.0;
  /// Disk-side pipeline model for runs on segmented out-of-core storage;
  /// compression_ratio is overridden by the measured ratio when the
  /// trace carries the oocore byte counters.
  OocoreModel oocore;
};

/// Per-stage predictions with the same decomposition the instrumentation
/// records: gate time from the kernel model (one sweep per stage item,
/// matching the distributed executor), exchange/permute from the
/// transition into the stage. Mirrors run_model's per-stage accounting.
std::vector<StagePrediction> predict_stages(const Circuit& circuit,
                                            const Schedule& schedule,
                                            const MachineModel& node,
                                            const InterconnectModel& net,
                                            const ReportOptions& options = {});

/// The human-readable measured-vs-predicted table: one row per stage,
/// columns for measured/predicted gate, exchange, and permute seconds
/// plus the measured/predicted ratio, with a totals row. Stages present
/// in only one of the two sides are reported with the other side blank.
/// Runs on segmented storage additionally get an out-of-core summary
/// block: measured sweep/compute/stall/io-busy time and compression
/// ratio next to the overlap model's max(compute, io/ratio) prediction.
std::string run_report(const TraceSession& session, const Circuit& circuit,
                       const Schedule& schedule, const MachineModel& node,
                       const InterconnectModel& net,
                       const ReportOptions& options = {});

/// Just the out-of-core summary block (empty string when the session
/// recorded no oocore sweeps). Exposed for benches that run without a
/// schedule.
std::string oocore_report(const TraceSession& session,
                          const OocoreModel& model);

/// The latency-distribution block: one row per recorded histogram with
/// count, p50/p90/p99 and max in human units (histogram.hpp). Empty
/// string when the session recorded no latency samples. Appended to
/// run_report and exposed standalone for benches.
std::string latency_report(const TraceSession& session);

}  // namespace quasar::obs
