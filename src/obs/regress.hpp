/// \file regress.hpp
/// \brief Bench baseline comparison: the CI perf-regression gate.
///
/// Every microbench emits the shared timing schema (bench/common.hpp):
/// `<metric>_seconds` best-of-N leaves plus `_mean_seconds` /
/// `_stddev_seconds` companions, throughput leaves (`*_gbs`, `*_gflops`,
/// `*speedup*`, `*ratio*`), and deterministic structural integers
/// (counts, block sizes). This comparator diffs a fresh result against a
/// committed baseline by walking both trees and classifying each leaf by
/// its name:
///
///  - `*_seconds` (lower-better): FAIL when result > baseline*(1+tol)
///    AND result-baseline > abs_floor — the floor keeps sub-millisecond
///    timings from tripping on scheduler jitter. `_mean_seconds` /
///    `_stddev_seconds` are informational (means absorb outliers the
///    best-of already rejects).
///  - `*_gbs`, `*_gflops`, `*speedup*`, `*ratio*` (higher-better): FAIL
///    when result < baseline/(1+tol).
///  - integer leaves: exact match (these encode deterministic structure
///    — a changed gate count is a correctness bug, not noise); keys
///    containing "threads" are exempt (machine-dependent).
///  - strings: exact match; bools and other doubles: informational.
///  - baseline keys missing from the result: FAIL (a silently dropped
///    metric must not pass the gate); extra result keys: informational.
///
/// CI runs two gates (see .github/workflows/ci.yml): a self-compare
/// with --inject 2 that must FAIL (proves the gate trips on a real 2x
/// slowdown, machine-consistent by construction) and a committed-
/// baseline compare with a wide tolerance that absorbs runner-to-runner
/// variance while still catching order-of-magnitude regressions.
#pragma once

#include <string>
#include <vector>

#include "obs/json.hpp"

namespace quasar::obs {

struct CompareOptions {
  /// Relative tolerance for time/throughput leaves: a time may grow to
  /// baseline*(1+rel_tolerance), a throughput may shrink to
  /// baseline/(1+rel_tolerance). Default trips comfortably below a 2x
  /// regression on a quiet host.
  double rel_tolerance = 0.75;
  /// Absolute floor for time leaves: differences smaller than this many
  /// seconds never fail regardless of ratio.
  double abs_floor_seconds = 0.005;
};

/// One compared leaf.
struct MetricDiff {
  std::string path;       ///< dotted path, e.g. "blocked.sweep_seconds"
  std::string baseline;   ///< rendered baseline value
  std::string result;     ///< rendered result value
  std::string note;       ///< human explanation (limit, class, reason)
  bool failed = false;
  bool checked = false;   ///< participated in a pass/fail rule
};

struct CompareReport {
  std::vector<MetricDiff> diffs;
  int failures = 0;
  bool passed() const { return failures == 0; }
};

/// Walks baseline vs. result and applies the rules above.
CompareReport compare_bench_json(const JsonValue& baseline,
                                 const JsonValue& result,
                                 const CompareOptions& options = {});

/// Renders the report: failures always, every leaf when `verbose`.
std::string format_compare_report(const CompareReport& report,
                                  bool verbose);

/// Multiplies every `*_seconds` leaf by `factor` and divides every
/// higher-better leaf by it — a synthetic uniform slowdown used by CI to
/// prove the gate actually trips (`quasar_bench_check --inject 2`).
void inject_slowdown(JsonValue& value, double factor);

}  // namespace quasar::obs
