#include "obs/report.hpp"

#include <cstdio>
#include <cstring>
#include <map>
#include <numeric>

#include "core/types.hpp"
#include "obs/histogram.hpp"
#include "obs/names.hpp"
#include "perfmodel/kernel_model.hpp"
#include "perfmodel/run_model.hpp"

namespace quasar::obs {

namespace {

/// Seconds for one phase-only streaming sweep of a 2^l slice (one read +
/// one write per amplitude), as in run_model.
double diagonal_sweep_seconds(const MachineModel& node, int local_qubits,
                              double bytes_per_amplitude) {
  const double bytes = 2.0 *
                       static_cast<double>(index_pow2(local_qubits)) *
                       bytes_per_amplitude;
  return bytes * 1e-9 / node.achievable_bw();
}

/// Per-slice modeled seconds for one stage item: one kernel sweep per
/// cluster (the distributed executor's plain path), a diagonal-cost sweep
/// for specialized global ops that touch local locations, zero for pure
/// global phases/renumberings.
double item_seconds(const Circuit& circuit, const Stage& stage,
                    const StageItem& item, const MachineModel& node,
                    int local_qubits, double bytes_per_amplitude) {
  if (item.kind == StageItem::Kind::kCluster) {
    const Cluster& cluster = stage.clusters[item.cluster];
    if (cluster.diagonal) {
      return diagonal_sweep_seconds(node, local_qubits, bytes_per_amplitude);
    }
    double secs = kernel_seconds_spilled(node, cluster.width(), local_qubits);
    if (!cluster.qubits.empty() &&
        cluster.qubits.front() >= kHighOrderThreshold) {
      const double stride_sets =
          static_cast<double>(index_pow2(cluster.width()));
      if (stride_sets > node.effective_cache_ways) {
        secs *= stride_sets / node.effective_cache_ways;
      }
    }
    return secs;
  }
  const GateOp& op = circuit.op(item.op);
  for (Qubit q : op.qubits) {
    if (stage.location(q) < local_qubits) {
      return diagonal_sweep_seconds(node, local_qubits, bytes_per_amplitude);
    }
  }
  return 0.0;  // all-global specialization: phases / renumbering only
}

/// Transition shape between two qubit->location mappings: how many qubits
/// cross the local/global boundary and whether a local sweep runs.
struct TransitionShape {
  int crossing = 0;
  bool local_sweep = false;
};

TransitionShape transition_shape(const std::vector<int>& from,
                                 const std::vector<int>& to, int l) {
  TransitionShape shape;
  if (from == to) return shape;
  const int n = static_cast<int>(from.size());
  std::vector<int> local_perm(l);
  std::iota(local_perm.begin(), local_perm.end(), 0);
  std::vector<int> park_slot;  // incoming targets, paired in order below
  std::vector<int> outgoing;
  for (Qubit q = 0; q < n; ++q) {
    const bool was_global = from[q] >= l;
    const bool is_global = to[q] >= l;
    if (was_global && !is_global) {
      ++shape.crossing;
      park_slot.push_back(to[q]);
    }
    if (!was_global && is_global) outgoing.push_back(q);
  }
  std::vector<int> park_of(n, -1);
  for (std::size_t i = 0; i < outgoing.size(); ++i) {
    park_of[outgoing[i]] = park_slot[i];
  }
  for (Qubit q = 0; q < n; ++q) {
    if (from[q] >= l) continue;
    const int target = to[q] < l ? to[q] : park_of[q];
    local_perm[target] = from[q];
  }
  for (int j = 0; j < l; ++j) shape.local_sweep |= local_perm[j] != j;
  // With crossing qubits the fused sweep still runs to park the outgoing
  // qubits (and flush deferred phases), even if it happens to be cheap.
  shape.local_sweep |= shape.crossing > 0;
  return shape;
}

struct Cols {
  double gate = 0.0, exch = 0.0, perm = 0.0;
  double total() const { return gate + exch + perm; }
};

void append_row(std::string& out, const char* label, const Cols& measured,
                bool have_measured, const Cols& predicted,
                bool have_predicted) {
  char buf[160];
  const auto cell = [](double v, bool have, char* dst) {
    if (have) std::snprintf(dst, 10, "%8.3f", v);
    else std::strcpy(dst, "       -");
  };
  char m[3][10], p[3][10];
  cell(measured.gate, have_measured, m[0]);
  cell(measured.exch, have_measured, m[1]);
  cell(measured.perm, have_measured, m[2]);
  cell(predicted.gate, have_predicted, p[0]);
  cell(predicted.exch, have_predicted, p[1]);
  cell(predicted.perm, have_predicted, p[2]);
  char ratio[12];
  if (have_measured && have_predicted && predicted.total() > 0.0) {
    std::snprintf(ratio, sizeof(ratio), "%7.2fx",
                  measured.total() / predicted.total());
  } else {
    std::strcpy(ratio, "      - ");
  }
  std::snprintf(buf, sizeof(buf), "%5s |%s %s %s |%s %s %s |%s\n", label,
                m[0], m[1], m[2], p[0], p[1], p[2], ratio);
  out += buf;
}

}  // namespace

std::vector<StageBreakdown> measured_stages(const TraceSession& session) {
  const std::vector<SpanEvent> spans = session.spans();
  std::vector<StageBreakdown> stages;
  for (const SpanEvent& s : spans) {
    if (std::strcmp(s.category, "stage") != 0) continue;
    StageBreakdown b;
    b.stage = s.arg_name != nullptr ? static_cast<int>(s.arg_value) : 0;
    b.total_seconds = static_cast<double>(s.end_ns - s.begin_ns) * 1e-9;
    for (const SpanEvent& c : spans) {
      if (c.thread != s.thread || c.depth != s.depth + 1) continue;
      if (c.begin_ns < s.begin_ns || c.end_ns > s.end_ns) continue;
      const double secs = static_cast<double>(c.end_ns - c.begin_ns) * 1e-9;
      if (std::strcmp(c.category, "gate_run") == 0) b.gate_seconds += secs;
      else if (std::strcmp(c.category, "exchange") == 0)
        b.exchange_seconds += secs;
      else if (std::strcmp(c.category, "permute") == 0)
        b.permute_seconds += secs;
      else if (std::strcmp(c.category, "renumber") == 0)
        b.renumber_seconds += secs;
      else if (std::strcmp(c.category, "measure") == 0)
        b.measure_seconds += secs;
      else if (std::strcmp(c.category, "checkpoint") == 0)
        b.checkpoint_seconds += secs;
      else if (std::strcmp(c.category, "oocore") == 0)
        b.oocore_seconds += secs;
    }
    stages.push_back(b);
  }
  return stages;
}

std::vector<StagePrediction> predict_stages(const Circuit& circuit,
                                            const Schedule& schedule,
                                            const MachineModel& node,
                                            const InterconnectModel& net,
                                            const ReportOptions& options) {
  const int l = schedule.num_local;
  const int g = schedule.num_qubits - l;
  const int ranks = static_cast<int>(index_pow2(g));
  const double slice_amps = static_cast<double>(index_pow2(l));
  const double slice_bytes = slice_amps * options.bytes_per_amplitude;
  // In-process: every rank's sweep runs sequentially on this host. At
  // scale: ranks run concurrently, one slice per node.
  const double slice_factor = options.in_process ? ranks : 1;

  std::vector<StagePrediction> out;
  std::vector<int> prev(schedule.num_qubits);
  std::iota(prev.begin(), prev.end(), 0);
  for (std::size_t si = 0; si < schedule.stages.size(); ++si) {
    const Stage& stage = schedule.stages[si];
    StagePrediction p;
    p.stage = static_cast<int>(si);

    const TransitionShape shape = transition_shape(
        prev, stage.qubit_to_location, l);
    if (shape.local_sweep) {
      p.permute_seconds = slice_factor * 2.0 * slice_bytes * 1e-9 /
                          node.achievable_bw();
    }
    if (shape.crossing > 0) {
      const double kept = slice_bytes /
                          static_cast<double>(index_pow2(shape.crossing));
      const double moved_per_rank = slice_bytes - kept;
      if (options.in_process) {
        // memcpy through the bounce buffer: ~2 reads + 2 writes of DRAM
        // per moved byte (a -> bounce -> b plus the reverse), with the
        // bounce chunk partially cache-resident — call it 3x streaming
        // traffic over the moved volume, across every rank.
        p.exchange_seconds = ranks * moved_per_rank * 3.0 * 1e-9 /
                             node.achievable_bw();
      } else {
        p.exchange_seconds =
            net.chunked_alltoall_seconds(ranks, moved_per_rank);
      }
    }

    for (const StageItem& item : stage.items) {
      p.gate_seconds += slice_factor *
                        item_seconds(circuit, stage, item, node, l,
                                     options.bytes_per_amplitude);
    }
    out.push_back(p);
    prev = stage.qubit_to_location;
  }
  return out;
}

std::string run_report(const TraceSession& session, const Circuit& circuit,
                       const Schedule& schedule, const MachineModel& node,
                       const InterconnectModel& net,
                       const ReportOptions& options) {
  const std::vector<StageBreakdown> measured = measured_stages(session);
  const std::vector<StagePrediction> predicted =
      predict_stages(circuit, schedule, node, net, options);

  std::map<int, Cols> measured_by_stage;
  std::map<int, Cols> predicted_by_stage;
  for (const StageBreakdown& m : measured) {
    Cols& c = measured_by_stage[m.stage];
    c.gate += m.gate_seconds;
    c.exch += m.exchange_seconds;
    c.perm += m.permute_seconds;
  }
  for (const StagePrediction& p : predicted) {
    predicted_by_stage[p.stage] =
        Cols{p.gate_seconds, p.exchange_seconds, p.permute_seconds};
  }

  char head[200];
  std::snprintf(head, sizeof(head),
                "measured vs predicted stage breakdown — machine %s, "
                "%d rank(s)%s\n",
                node.name.c_str(),
                static_cast<int>(
                    index_pow2(schedule.num_qubits - schedule.num_local)),
                options.in_process ? " (in-process virtual cluster)" : "");
  std::string out = head;
  out += "stage |     measured seconds      |     predicted seconds     "
         "| meas/pred\n";
  out += "      |    gate    exch    perm |    gate    exch    perm |\n";

  Cols m_total, p_total;
  bool any_measured = false, any_predicted = false;
  std::map<int, std::pair<bool, bool>> stages;
  for (const auto& [id, cols] : measured_by_stage) {
    (void)cols;
    stages[id].first = true;
  }
  for (const auto& [id, cols] : predicted_by_stage) {
    (void)cols;
    stages[id].second = true;
  }
  for (const auto& [id, have] : stages) {
    char label[16];
    std::snprintf(label, sizeof(label), "%d", id);
    const Cols m = have.first ? measured_by_stage[id] : Cols{};
    const Cols p = have.second ? predicted_by_stage[id] : Cols{};
    append_row(out, label, m, have.first, p, have.second);
    if (have.first) {
      m_total.gate += m.gate;
      m_total.exch += m.exch;
      m_total.perm += m.perm;
      any_measured = true;
    }
    if (have.second) {
      p_total.gate += p.gate;
      p_total.exch += p.exch;
      p_total.perm += p.perm;
      any_predicted = true;
    }
  }
  append_row(out, "total", m_total, any_measured, p_total, any_predicted);
  // Checkpoint overhead is reported as one summary line instead of a
  // table column: it is zero for most runs and, with the background
  // writer, mostly off the critical path anyway.
  double ckpt_seconds = 0.0;
  int ckpt_stages = 0;
  for (const StageBreakdown& m : measured) {
    if (m.checkpoint_seconds > 0.0) {
      ckpt_seconds += m.checkpoint_seconds;
      ++ckpt_stages;
    }
  }
  if (ckpt_stages > 0) {
    char line[120];
    std::snprintf(line, sizeof(line),
                  "checkpoint: %8.3f s on the compute thread across %d "
                  "snapshot boundar%s\n",
                  ckpt_seconds, ckpt_stages, ckpt_stages == 1 ? "y" : "ies");
    out += line;
  }
  out += oocore_report(session, options.oocore);
  out += latency_report(session);
  return out;
}

namespace {

/// Human-scaled nanoseconds: "427ns", "3.2us", "18ms", "1.25s".
void format_ns(char* dst, std::size_t size, double ns) {
  if (ns < 1e3) std::snprintf(dst, size, "%.0fns", ns);
  else if (ns < 1e6) std::snprintf(dst, size, "%.1fus", ns * 1e-3);
  else if (ns < 1e9) std::snprintf(dst, size, "%.1fms", ns * 1e-6);
  else std::snprintf(dst, size, "%.2fs", ns * 1e-9);
}

}  // namespace

std::string latency_report(const TraceSession& session) {
  const std::vector<HistogramSnapshot> histograms = session.histograms();
  bool any = false;
  for (const HistogramSnapshot& h : histograms) any |= h.count > 0;
  if (!any) return "";

  std::string out =
      "latency distributions (per-thread shards merged):\n"
      "  site                         count      p50      p90      p99"
      "      max\n";
  for (const HistogramSnapshot& h : histograms) {
    if (h.count == 0) continue;
    char p50[16], p90[16], p99[16], max[16];
    format_ns(p50, sizeof(p50), static_cast<double>(h.quantile_ns(0.50)));
    format_ns(p90, sizeof(p90), static_cast<double>(h.quantile_ns(0.90)));
    format_ns(p99, sizeof(p99), static_cast<double>(h.quantile_ns(0.99)));
    format_ns(max, sizeof(max), static_cast<double>(h.max_ns));
    char line[160];
    std::snprintf(line, sizeof(line),
                  "  %-26s %7llu %8s %8s %8s %8s\n", h.name.c_str(),
                  static_cast<unsigned long long>(h.count), p50, p90, p99,
                  max);
    out += line;
  }
  return out;
}

std::string oocore_report(const TraceSession& session,
                          const OocoreModel& model) {
  double sweeps = 0.0, segments = 0.0;
  double compute_ns = 0.0, stall_ns = 0.0, sweep_ns = 0.0, io_ns = 0.0;
  double raw_bytes = 0.0, disk_bytes = 0.0;
  for (const CounterValue& c : session.counters()) {
    if (c.name == names::kOocoreSweeps) sweeps = c.value;
    else if (c.name == names::kOocoreSegments) segments = c.value;
    else if (c.name == names::kOocoreComputeNs) compute_ns = c.value;
    else if (c.name == names::kOocoreStallNs) stall_ns = c.value;
    else if (c.name == names::kOocoreSweepNs) sweep_ns = c.value;
    else if (c.name == names::kOocoreIoNs) io_ns = c.value;
    else if (c.name == names::kOocoreRawBytes) raw_bytes = c.value;
    else if (c.name == names::kOocoreDiskBytes) disk_bytes = c.value;
  }
  if (sweeps <= 0.0) return "";

  const double compute_s = compute_ns * 1e-9;
  const double stall_s = stall_ns * 1e-9;
  const double sweep_s = sweep_ns * 1e-9;
  const double io_s = io_ns * 1e-9;
  // Prefer the ratio the run actually achieved over the model's guess:
  // raw amplitudes moved vs bytes that hit the disk.
  const double ratio =
      disk_bytes > 0.0 ? raw_bytes / disk_bytes : model.compression_ratio;
  OocoreModel m = model;
  m.compression_ratio = ratio;
  const double pred_io_s = oocore_io_seconds(m, raw_bytes);
  const double pred_sweep_s = oocore_sweep_seconds(m, compute_s, raw_bytes);
  const double efficiency =
      oocore_overlap_efficiency(compute_s, io_s, sweep_s);

  std::string out;
  char line[200];
  std::snprintf(line, sizeof(line),
                "out-of-core: %.0f sweep(s), %.0f segment(s), %.2f GB raw "
                "(%.2f GB on disk, ratio %.2fx)\n",
                sweeps, segments, raw_bytes * 1e-9, disk_bytes * 1e-9,
                ratio);
  out += line;
  std::snprintf(line, sizeof(line),
                "  measured: sweep %8.3f s  compute %8.3f s  stall %8.3f s"
                "  io-busy %8.3f s  overlap %3.0f%%\n",
                sweep_s, compute_s, stall_s, io_s, efficiency * 100.0);
  out += line;
  char ratio_cell[12];
  if (pred_sweep_s > 0.0) {
    std::snprintf(ratio_cell, sizeof(ratio_cell), "%.2fx",
                  sweep_s / pred_sweep_s);
  } else {
    std::strcpy(ratio_cell, "-");
  }
  std::snprintf(line, sizeof(line),
                "  model:    sweep %8.3f s = max(compute %8.3f s, io "
                "%8.3f s @ %.2f GB/s) — meas/pred %s\n",
                pred_sweep_s, compute_s, pred_io_s, m.disk_bw_gbs,
                ratio_cell);
  out += line;
  return out;
}

}  // namespace quasar::obs
