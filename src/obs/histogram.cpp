#include "obs/histogram.hpp"

#include <algorithm>
#include <cmath>

namespace quasar::obs {

std::uint64_t HistogramSnapshot::quantile_ns(double q) const {
  if (count == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the q-quantile sample, 1-based; q=0 degenerates to the
  // first sample, q=1 to the last.
  std::uint64_t rank = static_cast<std::uint64_t>(
      std::ceil(q * static_cast<double>(count)));
  if (rank == 0) rank = 1;
  if (rank > count) rank = count;
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    cumulative += buckets[i];
    if (cumulative >= rank) {
      return std::min(latency_bucket_upper(static_cast<int>(i)), max_ns);
    }
  }
  return max_ns;  // unreachable when bucket counts sum to `count`
}

namespace detail {

void HistogramCell::merge_into(HistogramSnapshot& out) const {
  for (const auto& shard : shards) {
    for (int i = 0; i < kNumLatencyBuckets; ++i) {
      const std::uint64_t c =
          shard->buckets[static_cast<std::size_t>(i)].load(
              std::memory_order_relaxed);
      out.buckets[static_cast<std::size_t>(i)] += c;
      out.count += c;
    }
    out.total_ns += shard->total_ns.load(std::memory_order_relaxed);
    out.max_ns = std::max(out.max_ns,
                          shard->max_ns.load(std::memory_order_relaxed));
  }
}

}  // namespace detail

}  // namespace quasar::obs
