#include "runtime/communicator.hpp"

#include <cstdlib>
#include <cstring>
#include <string>

#include "core/error.hpp"
#include "kernels/prepared_gate.hpp"
#include "runtime/proc_transport.hpp"

namespace quasar {

TransportKind transport_from_env(TransportKind fallback) {
  const char* value = std::getenv("QUASAR_TRANSPORT");
  if (value == nullptr || *value == '\0') return fallback;
  const std::string token(value);
  if (token == "virtual") return TransportKind::kVirtual;
  if (token == "proc") return TransportKind::kProc;
  throw Error("QUASAR_TRANSPORT: expected \"virtual\" or \"proc\", got \"" +
              token + "\"");
}

Real Communicator::norm_squared() {
  // Identical reduction loop to VirtualCluster::norm_squared, run at the
  // root over slice() on every backend => bit-identical across
  // transports for the same thread count.
  Real total = 0.0;
  const int ranks = num_ranks();
  const std::int64_t count = static_cast<std::int64_t>(local_size());
  for (int r = 0; r < ranks; ++r) {
    const Amplitude* data = slice(r);
#pragma omp parallel for schedule(static) reduction(+ : total)
    for (std::int64_t i = 0; i < count; ++i) total += std::norm(data[i]);
  }
  return total;
}

VirtualCommunicator::VirtualCommunicator(int num_qubits, int num_local,
                                         StorageOptions storage)
    : cluster_(num_qubits, num_local, std::move(storage)) {}

void VirtualCommunicator::apply_gate_all(const GateMatrix& matrix,
                                         const std::vector<int>& local_locations,
                                         const ApplyOptions& options) {
  const PreparedGate prepared = prepare_gate(matrix, local_locations);
  for (int r = 0; r < cluster_.num_ranks(); ++r) {
    apply_gate(cluster_.rank_data(r), cluster_.num_local(), prepared, options);
  }
}

void VirtualCommunicator::apply_gate_rank(int rank, const GateMatrix& matrix,
                                          const std::vector<int>& local_locations,
                                          const ApplyOptions& options) {
  const PreparedGate prepared = prepare_gate(matrix, local_locations);
  apply_gate(cluster_.rank_data(rank), cluster_.num_local(), prepared, options);
}

void VirtualCommunicator::write_slice(int rank, const Amplitude* data) {
  std::memcpy(cluster_.rank_data(rank), data,
              static_cast<std::size_t>(cluster_.local_size()) *
                  sizeof(Amplitude));
}

std::unique_ptr<Communicator> make_communicator(int num_qubits, int num_local,
                                                StorageOptions storage,
                                                const ApplyOptions& apply,
                                                TransportKind transport) {
  if (transport == TransportKind::kVirtual) {
    return std::make_unique<VirtualCommunicator>(num_qubits, num_local,
                                                 std::move(storage));
  }
  QUASAR_CHECK(storage.medium != StorageMedium::kOocore,
               "QUASAR_TRANSPORT=proc does not support oocore storage "
               "(the segment-streaming executor is in-process only)");
  return std::make_unique<ProcCommunicator>(num_qubits, num_local,
                                            std::move(storage), apply);
}

}  // namespace quasar
