/// \file oocore_exec.cpp
/// \brief Out-of-core stage executor: stream segments, don't materialize.
///
/// DESIGN.md §11. The in-memory executor (distributed.cpp) touches every
/// rank's flat slice once per stage item; on segmented storage that would
/// materialize (decode) and dematerialize (encode) the whole slice per
/// item. This executor instead *defers* the stage's gate work into
/// per-rank gate lists and flushes each rank with as few pipelined
/// segment sweeps as possible:
///
///  - cluster items and conditioned global sub-gates append to the rank's
///    pending list (conditioned matrices are cached per global-bit
///    pattern, exactly like apply_global_op);
///  - pure phases multiply pending_phase_ immediately — a scalar commutes
///    with every deferred gate;
///  - all-global phased permutations permute the rank stores (zero
///    decode), the deferred phases AND the pending gate lists, so each
///    list stays attached to the slice it was recorded against;
///  - at flush time, maximal spans of segment-eligible gates (diagonal
///    gates at any location; dense gates entirely below the segment
///    exponent s) run as ONE pipelined sweep per span — apply_gates_blocked
///    per segment with base_index = segment << s so diagonal phase tables
///    slice correctly;
///  - a dense gate reaching location >= s runs as a grouped sweep: each
///    tile gathers the 2^h segments one application couples and the gate
///    is re-prepared with its high locations remapped into the packed
///    geometry (relative qubit order preserved, so the matvec
///    accumulation order — and its rounding — is unchanged);
///  - a grouped tile that would cover most of the slice falls back to
///    materializing the rank and finishing the stage on the flat scratch,
///    which is what the ring would have amounted to anyway.
///
/// Bit-parity with the in-memory executor (asserted by the differential
/// fuzzer for lossless codecs): segment sweeps disable diagonal merging
/// and commuting hoists so every amplitude sees the same multiplies in
/// the same order as per-gate apply_gate on the full slice.
#include <cstdint>
#include <deque>
#include <map>
#include <vector>

#include "core/bits.hpp"
#include "core/error.hpp"
#include "kernels/block_apply.hpp"
#include "obs/trace.hpp"
#include "oocore/pipeline.hpp"
#include "runtime/conditional.hpp"
#include "runtime/distributed.hpp"

namespace quasar {
namespace {

/// One deferred gate application: matrix + local bit-locations. Both
/// point into stage data or into the executor's arenas (std::deque keeps
/// addresses stable).
struct PendingGate {
  const GateMatrix* matrix;
  const std::vector<int>* locations;
};

/// Conditioned-gate cache entry for one global-bit pattern.
struct CondEntry {
  const GateMatrix* matrix = nullptr;  ///< arena-owned; null if unused
  Amplitude phase{1.0, 0.0};
  bool is_identity = false;
  bool pure_phase = false;
};

}  // namespace

void DistributedSimulator::execute_stage_oocore(const Circuit& circuit,
                                                const Stage& stage) {
  const int l = num_local();
  // Segmented storage is in-process only (the proc factory rejects it),
  // so the seam is guaranteed to expose the raw cluster here.
  VirtualCluster& vc = local_cluster();
  const int ranks = vc.num_ranks();
  QUASAR_OBS_SPAN("oocore", "stage_oocore", "items",
                  static_cast<std::int64_t>(stage.items.size()));

  // The pipeline reads/writes the segment stores directly; any resident
  // scratch copy (left by sampling, checkpointing, a transition sweep...)
  // must be written back first so the stores are authoritative.
  for (int r = 0; r < ranks; ++r) vc.rank_storage(r).dematerialize();

  // ---- Phase 1: defer the stage's work into per-rank gate lists. ----
  std::deque<GateMatrix> matrix_arena;
  std::deque<std::vector<int>> location_arena;
  std::vector<std::vector<PendingGate>> pending(ranks);

  for (const StageItem& item : stage.items) {
    if (item.kind == StageItem::Kind::kCluster) {
      const Cluster& cluster = stage.clusters[item.cluster];
      QUASAR_ASSERT(cluster.matrix.has_value());
      for (int r = 0; r < ranks; ++r) {
        pending[r].push_back({&*cluster.matrix, &cluster.qubits});
      }
      continue;
    }

    const GateOp& op = circuit.op(item.op);
    // Classification identical to apply_global_op.
    std::vector<bool> fixed(op.arity(), false);
    std::vector<int> global_bits;
    std::vector<int> local_locations;
    for (int j = 0; j < op.arity(); ++j) {
      const int loc = stage.location(op.qubits[j]);
      if (loc >= l) {
        fixed[j] = true;
        global_bits.push_back(loc - l);
      } else {
        local_locations.push_back(loc);
      }
    }
    QUASAR_ASSERT(!global_bits.empty());

    if (!op.diagonal && local_locations.empty()) {
      // All-global phased permutation: renumber the rank stores (zero
      // data decoded) and carry the deferred phases AND gate lists along
      // with their slices.
      const auto perm = op.matrix->phased_permutation();
      QUASAR_CHECK(perm.has_value(),
                   "execute_stage_oocore: a dense all-global gate reached "
                   "the executor; the scheduler should have forced a swap");
      std::vector<Index> source_of(ranks);
      std::vector<Amplitude> next_phase(ranks);
      for (int r = 0; r < ranks; ++r) {
        Index col = 0;
        for (std::size_t j = 0; j < global_bits.size(); ++j) {
          col |= static_cast<Index>(
                     get_bit(static_cast<Index>(r), global_bits[j]))
                 << j;
        }
        const Index row = perm->target[col];
        Index dest = static_cast<Index>(r);
        for (std::size_t j = 0; j < global_bits.size(); ++j) {
          dest = set_bit(dest, global_bits[j],
                         get_bit(row, static_cast<int>(j)));
        }
        source_of[dest] = static_cast<Index>(r);
        next_phase[dest] = pending_phase_[r] * perm->phase[col];
      }
      vc.permute_ranks(source_of);
      pending_phase_ = std::move(next_phase);
      std::vector<std::vector<PendingGate>> moved(ranks);
      for (int dest = 0; dest < ranks; ++dest) {
        moved[dest] = std::move(pending[source_of[dest]]);
      }
      pending = std::move(moved);
      continue;
    }

    // Conditioned per global-bit pattern, cached like apply_global_op.
    location_arena.push_back(std::move(local_locations));
    const std::vector<int>* locs = &location_arena.back();
    std::map<Index, CondEntry> cache;
    for (int r = 0; r < ranks; ++r) {
      Index pattern = 0;
      for (std::size_t i = 0; i < global_bits.size(); ++i) {
        pattern |= static_cast<Index>(
                       get_bit(static_cast<Index>(r), global_bits[i]))
                   << i;
      }
      auto it = cache.find(pattern);
      if (it == cache.end()) {
        ConditionalGate cond = condition_gate(*op.matrix, fixed, pattern);
        CondEntry entry;
        entry.is_identity = cond.is_identity;
        entry.pure_phase = cond.matrix.num_qubits() == 0;
        entry.phase = cond.phase;
        if (!entry.is_identity && !entry.pure_phase) {
          matrix_arena.push_back(std::move(cond.matrix));
          entry.matrix = &matrix_arena.back();
        }
        it = cache.emplace(pattern, entry).first;
      }
      const CondEntry& entry = it->second;
      if (entry.is_identity) continue;
      if (entry.pure_phase) {
        // A scalar commutes with every deferred gate; applying it to the
        // phase now yields the same final value as the in-memory order.
        pending_phase_[r] *= entry.phase;
        continue;
      }
      pending[r].push_back({entry.matrix, locs});
    }
  }

  // ---- Phase 2: flush each rank with pipelined segment sweeps. ----
  oocore::PipelineOptions popts;
  popts.io_threads = vc.storage().io_threads;
  popts.depth = vc.storage().pipeline_depth;
  // Per-gate parity: no merged diagonal tables, no commuting hoists —
  // every amplitude sees the in-memory executor's multiplies in order.
  ApplyOptions sweep_opts = options_;
  sweep_opts.merge_diagonals = false;
  sweep_opts.block_reorder = false;

  for (int r = 0; r < ranks; ++r) {
    std::vector<PendingGate>& work = pending[r];
    if (work.empty()) continue;
    RankStorage& rs = vc.rank_storage(r);
    oocore::SegmentStore& store = *rs.store();
    const int s = store.segment_exponent();
    const std::size_t num_segs = store.segment_count();

    std::vector<PreparedGate> preps;
    preps.reserve(work.size());
    std::vector<char> eligible(work.size());
    for (std::size_t i = 0; i < work.size(); ++i) {
      preps.push_back(prepare_gate(*work[i].matrix, *work[i].locations));
      // Segment eligibility: diagonal gates at any location (base_index
      // slices their tables); dense gates entirely below s.
      eligible[i] = block_run_eligible(preps[i], s) ? 1 : 0;
    }

    std::size_t i = 0;
    while (i < work.size()) {
      if (rs.resident()) {
        // A grouped sweep fell back to materialization below; finish the
        // remaining work on the flat scratch like the in-memory executor.
        for (; i < work.size(); ++i) {
          apply_gate(rs.data(), l, preps[i], options_);
        }
        break;
      }

      if (eligible[i]) {
        // Maximal eligible span -> one pipelined sweep, single-segment
        // tiles in order.
        std::vector<const PreparedGate*> run;
        std::size_t j = i;
        while (j < work.size() && eligible[j]) run.push_back(&preps[j++]);
        std::vector<oocore::SegmentPipeline::Tile> tiles(num_segs);
        for (std::size_t seg = 0; seg < num_segs; ++seg) {
          tiles[seg] = {static_cast<std::uint32_t>(seg)};
        }
        oocore::SegmentPipeline pipe(store, popts);
        pipe.sweep(tiles,
                   [&](Amplitude* buf, const oocore::SegmentPipeline::Tile& t,
                       std::size_t) {
                     apply_gates_blocked(
                         buf, s, run.data(), run.size(), sweep_opts, nullptr,
                         static_cast<Index>(t[0]) << s);
                   });
        i = j;
        continue;
      }

      // Dense gate reaching location >= s: grouped tiles of the 2^h
      // segments one application couples. Remap the high locations into
      // the packed geometry, preserving relative qubit order (so the
      // matvec accumulation order — and its rounding — is unchanged).
      const std::vector<int>& locs = *work[i].locations;
      std::vector<int> high;      // segment-index bit positions
      std::vector<int> remapped;  // strictly ascending by construction
      for (const int loc : locs) {
        if (loc < s) {
          remapped.push_back(loc);
        } else {
          remapped.push_back(s + static_cast<int>(high.size()));
          high.push_back(loc - s);
        }
      }
      const int h = static_cast<int>(high.size());
      const std::size_t group = std::size_t{1} << h;
      if (group * 2 > num_segs) {
        // The ring would hold most of the slice anyway; the flat scratch
        // is simpler and no larger. data() materializes and marks dirty.
        apply_gate(rs.data(), l, preps[i], options_);
        ++i;
        continue;
      }
      const PreparedGate prep2 = prepare_gate(*work[i].matrix, remapped);
      std::size_t high_mask = 0;
      for (const int b : high) high_mask |= std::size_t{1} << b;
      std::vector<oocore::SegmentPipeline::Tile> tiles;
      tiles.reserve(num_segs / group);
      for (std::size_t base = 0; base < num_segs; ++base) {
        if ((base & high_mask) != 0) continue;
        oocore::SegmentPipeline::Tile tile;
        tile.reserve(group);
        for (std::size_t p = 0; p < group; ++p) {
          std::size_t sid = base;
          for (int k = 0; k < h; ++k) {
            if ((p >> k) & 1) sid |= std::size_t{1} << high[k];
          }
          tile.push_back(static_cast<std::uint32_t>(sid));
        }
        tiles.push_back(std::move(tile));
      }
      oocore::SegmentPipeline pipe(store, popts);
      pipe.sweep(tiles,
                 [&](Amplitude* buf, const oocore::SegmentPipeline::Tile&,
                     std::size_t) {
                   apply_gate(buf, s + h, prep2, options_);
                 });
      ++i;
    }
  }
}

}  // namespace quasar
