/// \file proc_transport.hpp
/// \brief Multi-process transport: forked rank processes over UNIX-domain
/// sockets (DESIGN.md §12).
///
/// The root process forks 2^g workers, one per rank slice. Each worker is
/// strictly serial (OpenMP pinned to one thread, so forking from the
/// OpenMP-using root is safe: the children never touch the inherited
/// thread pool) and owns its 2^l amplitudes in its own address space.
///
/// Wiring: one control socketpair root<->worker per slot, plus a full
/// mesh of data socketpairs between worker slots. The root drives every
/// collective in lockstep over the control plane ({op, len, payload}
/// frames, ack per worker); bulk amplitude motion for the all-to-all and
/// the pairwise baseline exchange runs directly worker-to-worker over the
/// data plane in bounce-bounded chunks, so the 1+epsilon footprint
/// guarantee of the in-place exchange survives the process split.
///
/// Rank renumbering (Sec. 3.5) is zero-volume here too: the root
/// broadcasts a relabel table and every worker adopts a new logical rank
/// number — no amplitude crosses a socket.
///
/// Determinism: workers run the identical kernels (permutation sweeps,
/// gate application) as the virtual transport; their arithmetic is
/// independent of thread count, so worker slices are bit-identical to
/// the corresponding VirtualCluster slices on the same machine. Root-side
/// reductions (norm, entropy, sampling, checkpoint digests) run over
/// fetched slices with the same loops as the virtual transport, which is
/// what lets CI diff fingerprint/norm/entropy lines exactly across
/// QUASAR_TRANSPORT values.
#pragma once

#include <algorithm>
#include <array>
#include <cmath>
#include <complex>
#include <cstdint>
#include <cstring>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include <sys/types.h>

#include "core/aligned.hpp"
#include "core/bits.hpp"
#include "core/error.hpp"
#include "core/types.hpp"
#include "gates/matrix.hpp"
#include "kernels/apply.hpp"
#include "kernels/permute.hpp"
#include "kernels/prepared_gate.hpp"
#include "obs/histogram.hpp"
#include "obs/names.hpp"
#include "obs/trace.hpp"
#include "runtime/comm.hpp"
#include "runtime/communicator.hpp"
#include "runtime/rank_storage.hpp"

namespace quasar::proc {

/// Control/data plane opcodes.
enum class Op : std::uint32_t {
  kAck = 0,
  kInitBasis,
  kInitUniform,
  kAlltoall,
  kLocalPermute,
  kRelabel,
  kApplyGate,
  kPairwiseGate,
  kReadSlice,
  kWriteSlice,
  kStats,
  kDie,
  kShutdown,
};

/// Fixed 16-byte frame header preceding every payload. Same-host forked
/// processes share endianness, so fields travel in native byte order.
struct Frame {
  std::uint32_t op = 0;
  std::uint32_t pad = 0;
  std::uint64_t len = 0;
};

/// Blocking socket I/O looping over partial transfers and EINTR; send
/// uses MSG_NOSIGNAL so a dead peer surfaces as quasar::Error, not
/// SIGPIPE. recv_all treats EOF as an error ("rank process died").
void send_all(int fd, const void* data, std::size_t len);
void recv_all(int fd, void* data, std::size_t len);
void send_frame(int fd, Op op, const void* payload, std::size_t len);
Frame recv_frame(int fd);

/// Hard cap on forked rank processes (full data mesh = W*(W-1)/2
/// socketpairs; 16 ranks = 120 pairs).
constexpr int kMaxProcRanks = 16;

/// Serialization cursors over little POD payloads.
class PayloadWriter {
 public:
  template <typename T>
  void pod(const T& value) {
    raw(&value, sizeof(T));
  }
  void raw(const void* data, std::size_t len) {
    const auto* p = static_cast<const std::uint8_t*>(data);
    bytes_.insert(bytes_.end(), p, p + len);
  }
  const std::uint8_t* data() const { return bytes_.data(); }
  std::size_t size() const { return bytes_.size(); }

 private:
  std::vector<std::uint8_t> bytes_;
};

class PayloadReader {
 public:
  PayloadReader(const std::uint8_t* data, std::size_t len)
      : p_(data), end_(data + len) {}
  template <typename T>
  T pod() {
    T value;
    raw(&value, sizeof(T));
    return value;
  }
  void raw(void* out, std::size_t len) {
    QUASAR_CHECK(static_cast<std::size_t>(end_ - p_) >= len,
                 "proc transport: truncated payload");
    std::memcpy(out, p_, len);
    p_ += len;
  }

 private:
  const std::uint8_t* p_;
  const std::uint8_t* end_;
};

/// Fork/socket plumbing shared by the fp64 and fp32 proc backends.
/// Creates all socketpairs, forks `num_workers` children (each running
/// `worker_main`, which must never return), and gives the root per-slot
/// control descriptors plus pid bookkeeping, orderly shutdown, and the
/// fault-injection kill. Type-agnostic: amplitude format is the typed
/// layer's business.
class ProcessGroup {
 public:
  /// What a worker child inherits: its fixed process slot, the control
  /// socket to the root, and one data socket per peer slot (-1 for
  /// itself and out-of-range slots).
  struct WorkerEndpoints {
    int slot = 0;
    int control_fd = -1;
    std::array<int, kMaxProcRanks> data_fd{};
  };
  using WorkerMain = std::function<void(const WorkerEndpoints&)>;

  /// Forks the workers. In each child: PDEATHSIG=SIGKILL, OpenMP pinned
  /// to 1 thread, obs instrumentation disabled, scratch files tagged
  /// "r<slot>.", then worker_main(ep) — which must exit the process.
  ProcessGroup(int num_workers, const WorkerMain& worker_main);
  ~ProcessGroup();

  ProcessGroup(const ProcessGroup&) = delete;
  ProcessGroup& operator=(const ProcessGroup&) = delete;

  int num_workers() const { return num_workers_; }
  bool alive(int slot) const { return pid_[slot] > 0; }
  pid_t pid(int slot) const { return pid_[slot]; }
  int control_fd(int slot) const { return control_[slot]; }

  /// Sends one frame to every live worker.
  void broadcast(Op op, const void* payload, std::size_t len);
  void send(int slot, Op op, const void* payload, std::size_t len);
  /// Waits for a kAck frame from `slot`, returning its payload.
  std::vector<std::uint8_t> wait_ack(int slot);
  /// Collects one ack from every live worker, in slot order.
  void wait_acks();

  /// Fault injection: orders `slot` to _Exit(137) and reaps it,
  /// verifying the exit status. The caller then shuts the rest down.
  void kill_worker(int slot, std::size_t stage);

  /// Orderly teardown: best-effort kShutdown to every live worker, reap
  /// with a bounded wait, SIGKILL stragglers. Idempotent, never throws.
  void shutdown() noexcept;

 private:
  void reap(int slot, bool allow_kill) noexcept;

  int num_workers_ = 0;
  std::array<pid_t, kMaxProcRanks> pid_{};
  std::array<int, kMaxProcRanks> control_{};
};

/// Engine traits for the fp64 proc backend. The fp32 twin lives with the
/// fp32 engine (src/fp32/cluster_f32.cpp).
struct ProcTraits64 {
  using Amp = Amplitude;
  /// Worker-side slice storage: RankStorage, so QUASAR_STORAGE=disk rank
  /// slices work per process (with per-rank-tagged backing files).
  using Slice = RankStorage;
  static Slice make_slice(Index count, const StorageOptions& storage) {
    return Slice(count, storage);
  }
  static Amp* data(Slice& slice) { return slice.data(); }
  static void apply(Amp* state, int num_local, const GateMatrix& matrix,
                    const std::vector<int>& locations,
                    const ApplyOptions& options) {
    apply_gate(state, num_local, prepare_gate(matrix, locations), options);
  }
};

/// The worker side: one instance per forked child, executing control
/// frames until kShutdown/kDie. Mirrors VirtualCluster's arithmetic and
/// CommStats formulas exactly (the stats are rank-invariant model
/// numbers, so every worker computes identical volume fields and the
/// root reduction is a consistency check).
template <typename Traits>
class ProcWorker {
 public:
  using Amp = typename Traits::Amp;
  using Scalar = typename Amp::value_type;

  ProcWorker(int num_qubits, int num_local, const StorageOptions& storage,
             ApplyOptions apply, const ProcessGroup::WorkerEndpoints& ep)
      : n_(num_qubits), l_(num_local),
        num_ranks_(checked_int(index_pow2(n_ - l_), "proc rank count")),
        local_size_(index_pow2(l_)),
        bounce_bytes_(storage.bounce_buffer_bytes), apply_(apply), ep_(ep),
        logical_(ep.slot), slice_(Traits::make_slice(local_size_, storage)) {
    apply_.num_threads = 1;
    for (int i = 0; i < num_ranks_; ++i) slot_of_logical_[i] = i;
  }

  [[noreturn]] void run() {
    std::vector<std::uint8_t> payload;
    for (;;) {
      const Frame frame = recv_frame(ep_.control_fd);
      payload.resize(frame.len);
      if (frame.len > 0) recv_all(ep_.control_fd, payload.data(), frame.len);
      PayloadReader in(payload.data(), payload.size());
      switch (static_cast<Op>(frame.op)) {
        case Op::kInitBasis:
          do_init_basis(in);
          ack();
          break;
        case Op::kInitUniform:
          do_init_uniform(in);
          ack();
          break;
        case Op::kAlltoall:
          do_alltoall(in);
          ack();
          break;
        case Op::kLocalPermute:
          do_local_permute(in);
          ack();
          break;
        case Op::kRelabel:
          do_relabel(in);
          ack();
          break;
        case Op::kApplyGate:
          do_apply_gate(in);
          ack();
          break;
        case Op::kPairwiseGate:
          do_pairwise_gate(in);
          ack();
          break;
        case Op::kReadSlice:
          send_frame(ep_.control_fd, Op::kAck, data(),
                     static_cast<std::size_t>(local_size_) * sizeof(Amp));
          break;
        case Op::kWriteSlice:
          in.raw(data(), static_cast<std::size_t>(local_size_) * sizeof(Amp));
          ack();
          break;
        case Op::kStats:
          send_frame(ep_.control_fd, Op::kAck, &stats_, sizeof(stats_));
          break;
        case Op::kDie:
          std::_Exit(137);
        case Op::kShutdown:
          std::_Exit(0);
        default:
          std::_Exit(5);
      }
    }
  }

 private:
  Amp* data() { return Traits::data(slice_); }

  void ack() { send_frame(ep_.control_fd, Op::kAck, nullptr, 0); }

  int data_fd_to_logical(int peer_logical) const {
    return ep_.data_fd[static_cast<std::size_t>(
        slot_of_logical_[peer_logical])];
  }

  void do_init_basis(PayloadReader& in) {
    const Index index = in.pod<std::uint64_t>();
    Amp* d = data();
    std::fill(d, d + local_size_, Amp{});
    if (static_cast<int>(index >> l_) == logical_) {
      d[index & (local_size_ - 1)] = Amp(Scalar(1));
    }
  }

  void do_init_uniform(PayloadReader& in) {
    const double value = in.pod<double>();
    Amp* d = data();
    std::fill(d, d + local_size_, Amp(static_cast<Scalar>(value)));
  }

  void do_relabel(PayloadReader& in) {
    logical_ = in.pod<std::int32_t>();
    for (int r = 0; r < num_ranks_; ++r) {
      slot_of_logical_[r] = in.pod<std::int32_t>();
    }
    ++stats_.rank_renumberings;
  }

  /// Same orbit schedule as VirtualCluster::alltoall_swap, restricted to
  /// the orbits this logical rank participates in, walked in the global
  /// enumeration order. Per chunk the lower-enumeration side ("a", the
  /// rank whose bits spell `theirs`) sends first; the "b" side bounces
  /// through a chunk-sized buffer. Deadlock-free: both members of the
  /// globally earliest incomplete orbit are always positioned at it.
  void do_alltoall(PayloadReader& in) {
    const int q = in.pod<std::int32_t>();
    std::vector<int> globals(q), locals(q);
    for (int i = 0; i < q; ++i) globals[i] = in.pod<std::int32_t>();
    for (int i = 0; i < q; ++i) locals[i] = in.pod<std::int32_t>();
    const Index chunk = in.pod<std::uint64_t>();

    std::vector<int> sorted_locals = locals;
    std::sort(sorted_locals.begin(), sorted_locals.end());
    const int run_bits = sorted_locals.front();
    const Index run = index_pow2(run_bits);
    const Index num_runs = index_pow2(l_ - q - run_bits);
    const Index chunks_per_run = run / chunk;
    const IndexExpander expander(sorted_locals);
    if (bounce_.size() < chunk) bounce_.resize(chunk);
    Amp* d = data();
    const std::size_t bytes =
        static_cast<std::size_t>(chunk) * sizeof(Amp);

    for (int r = 0; r < num_ranks_; ++r) {
      Index theirs = 0;
      for (int i = 0; i < q; ++i) {
        theirs |= static_cast<Index>(
                      get_bit(static_cast<Index>(r), globals[i] - l_))
                  << i;
      }
      for (Index mine = 0; mine < theirs; ++mine) {
        Index partner = static_cast<Index>(r);
        for (int i = 0; i < q; ++i) {
          partner = set_bit(partner, globals[i] - l_, get_bit(mine, i));
        }
        const bool a_side = logical_ == r;
        const bool b_side = logical_ == static_cast<int>(partner);
        if (!a_side && !b_side) continue;
        Index off_mine = 0, off_theirs = 0;
        for (int i = 0; i < q; ++i) {
          off_mine |= static_cast<Index>(get_bit(mine, i)) << locals[i];
          off_theirs |= static_cast<Index>(get_bit(theirs, i)) << locals[i];
        }
        const int peer = a_side ? static_cast<int>(partner) : r;
        const int fd = data_fd_to_logical(peer);
        const Index my_off = a_side ? off_mine : off_theirs;
        const Index tasks = num_runs * chunks_per_run;
        for (Index t = 0; t < tasks; ++t) {
          const Index run_idx = t / chunks_per_run;
          const Index coff = (t % chunks_per_run) * chunk;
          const Index base = expander.expand(run_idx << run_bits) + coff;
          Amp* p = d + my_off + base;
          if (a_side) {
            send_all(fd, p, bytes);
            recv_all(fd, p, bytes);
          } else {
            recv_all(fd, bounce_.data(), bytes);
            send_all(fd, p, bytes);
            std::memcpy(p, bounce_.data(), bytes);
          }
        }
      }
    }

    const Index block = index_pow2(l_ - q);
    ++stats_.alltoalls;
    stats_.bytes_sent_per_rank +=
        static_cast<std::uint64_t>(local_size_ - block) * sizeof(Amp);
    const std::uint64_t bounce_b =
        static_cast<std::uint64_t>(chunk) * sizeof(Amp);
    if (bounce_b > stats_.peak_bounce_bytes) {
      stats_.peak_bounce_bytes = bounce_b;
    }
  }

  void do_local_permute(PayloadReader& in) {
    std::vector<int> perm(l_);
    for (int j = 0; j < l_; ++j) perm[j] = in.pod<std::int32_t>();
    const double re = in.pod<double>();
    const double im = in.pod<double>();
    const std::size_t scratch_bytes = in.pod<std::uint64_t>();
    const PermutePlan plan = plan_bit_permutation(l_, perm);
    const Amp phase(static_cast<Scalar>(re), static_cast<Scalar>(im));
    detail::run_bit_permutation(data(), plan, phase, 1, scratch_bytes);
    ++stats_.local_permutation_sweeps;
    stats_.local_permutation_bytes +=
        static_cast<std::uint64_t>(num_ranks_) * local_size_ * sizeof(Amp);
    if (!plan.identity) {
      const std::uint64_t brick_bytes =
          index_pow2(plan.brick_bits) * sizeof(Amp);
      const std::uint64_t bounce_b =
          std::min<std::uint64_t>(scratch_bytes, brick_bytes);
      if (bounce_b > stats_.peak_bounce_bytes) {
        stats_.peak_bounce_bytes = bounce_b;
      }
    }
  }

  void do_apply_gate(PayloadReader& in) {
    const int matrix_qubits = in.pod<std::uint32_t>();
    const Index dim = index_pow2(matrix_qubits);
    std::vector<Amplitude> entries(static_cast<std::size_t>(dim) * dim);
    in.raw(entries.data(), entries.size() * sizeof(Amplitude));
    const GateMatrix matrix(dim, std::move(entries));
    const int num_locations = in.pod<std::uint32_t>();
    std::vector<int> locations(num_locations);
    for (int i = 0; i < num_locations; ++i) {
      locations[i] = in.pod<std::int32_t>();
    }
    Traits::apply(data(), l_, matrix, locations, apply_);
  }

  /// Baseline pairwise exchange: the lower rank of the (r0, r1 = r0|bit)
  /// pair sends its original chunk first; each side then computes its
  /// row of the 2x2 gate with the same expression as VirtualCluster
  /// (a = m00*va + m01*vb on r0, b = m10*va + m11*vb on r1).
  void do_pairwise_gate(PayloadReader& in) {
    const int location = in.pod<std::int32_t>();
    std::complex<double> m[4];
    in.raw(m, sizeof(m));
    const Index chunk = in.pod<std::uint64_t>();
    const Index bit = index_pow2(location - l_);
    const Index half = local_size_ / 2;
    const Index total = 2 * half;
    const bool lo = (static_cast<Index>(logical_) & bit) == 0;
    const int peer = static_cast<int>(
        lo ? (static_cast<Index>(logical_) | bit)
           : (static_cast<Index>(logical_) & ~bit));
    const int fd = data_fd_to_logical(peer);
    const Amp m00(static_cast<Scalar>(m[0].real()),
                  static_cast<Scalar>(m[0].imag()));
    const Amp m01(static_cast<Scalar>(m[1].real()),
                  static_cast<Scalar>(m[1].imag()));
    const Amp m10(static_cast<Scalar>(m[2].real()),
                  static_cast<Scalar>(m[2].imag()));
    const Amp m11(static_cast<Scalar>(m[3].real()),
                  static_cast<Scalar>(m[3].imag()));
    if (bounce_.size() < chunk) bounce_.resize(chunk);
    Amp* d = data();
    for (Index off = 0; off < total; off += chunk) {
      const Index count = std::min(chunk, total - off);
      const std::size_t bytes =
          static_cast<std::size_t>(count) * sizeof(Amp);
      if (lo) {
        send_all(fd, d + off, bytes);
        recv_all(fd, bounce_.data(), bytes);
        for (Index i = 0; i < count; ++i) {
          const Amp va = d[off + i], vb = bounce_[i];
          d[off + i] = m00 * va + m01 * vb;
        }
      } else {
        recv_all(fd, bounce_.data(), bytes);
        send_all(fd, d + off, bytes);
        for (Index i = 0; i < count; ++i) {
          const Amp va = bounce_[i], vb = d[off + i];
          d[off + i] = m10 * va + m11 * vb;
        }
      }
    }
    stats_.pairwise_exchanges += 2;
    stats_.bytes_sent_per_rank +=
        static_cast<std::uint64_t>(2 * half) * sizeof(Amp);
  }

  int n_;
  int l_;
  int num_ranks_;
  Index local_size_;
  std::size_t bounce_bytes_;
  ApplyOptions apply_;
  ProcessGroup::WorkerEndpoints ep_;
  int logical_;
  std::array<int, kMaxProcRanks> slot_of_logical_{};
  typename Traits::Slice slice_;
  AlignedVector<Amp> bounce_;
  CommStats stats_;
};

/// The root side: geometry, the logical-rank relabel table, the slice
/// cache, and one method per collective. Shared between the fp64 and
/// fp32 proc backends via the engine traits.
template <typename Traits>
class ProcClusterT {
 public:
  using Amp = typename Traits::Amp;

  ProcClusterT(int num_qubits, int num_local, StorageOptions storage,
               const ApplyOptions& apply)
      : n_(num_qubits), l_(num_local), storage_(std::move(storage)) {
    QUASAR_CHECK(l_ >= 1 && l_ <= n_,
                 "proc transport: num_local must be in [1, num_qubits]");
    QUASAR_CHECK(n_ - l_ <= l_,
                 "proc transport: needs g <= l so a full swap is possible");
    const Index ranks = index_pow2(n_ - l_);
    QUASAR_CHECK(ranks <= static_cast<Index>(kMaxProcRanks),
                 "QUASAR_TRANSPORT=proc supports at most 16 rank processes "
                 "(g <= 4); use the virtual transport for wider geometries");
    num_ranks_ = checked_int(ranks, "proc rank count");
    local_size_ = index_pow2(l_);
    for (int r = 0; r < num_ranks_; ++r) {
      slot_of_logical_[r] = r;
      logical_of_slot_[r] = r;
    }
    cache_.resize(num_ranks_);
    fresh_.assign(num_ranks_, false);
    const int n = n_;
    const int l = l_;
    const StorageOptions worker_storage = storage_;
    group_ = std::make_unique<ProcessGroup>(
        num_ranks_,
        [n, l, worker_storage, apply](const ProcessGroup::WorkerEndpoints& ep) {
          ProcWorker<Traits> worker(n, l, worker_storage, apply, ep);
          worker.run();
        });
  }

  int num_qubits() const { return n_; }
  int num_local() const { return l_; }
  int num_ranks() const { return num_ranks_; }
  Index local_size() const { return local_size_; }
  const StorageOptions& storage() const { return storage_; }
  ProcessGroup& group() { return *group_; }

  void init_basis(Index index) {
    QUASAR_CHECK(index < index_pow2(n_), "basis index out of range");
    PayloadWriter out;
    out.pod<std::uint64_t>(index);
    collective(Op::kInitBasis, out);
  }

  void init_uniform() {
    PayloadWriter out;
    out.pod<double>(std::pow(2.0, -0.5 * n_));
    collective(Op::kInitUniform, out);
  }

  void alltoall_swap(const std::vector<int>& global_locations,
                     const std::vector<int>& local_positions) {
    obs::ScopedSpan span("exchange", "alltoall");
    const int q = static_cast<int>(global_locations.size());
    QUASAR_CHECK(q >= 1 && q <= n_ - l_,
                 "alltoall_swap: need 1..g global locations");
    QUASAR_CHECK(static_cast<int>(local_positions.size()) == q,
                 "alltoall_swap: one local position per global location");
    for (int i = 0; i < q; ++i) {
      QUASAR_CHECK(global_locations[i] >= l_ && global_locations[i] < n_,
                   "alltoall_swap: location is not global");
      QUASAR_CHECK(i == 0 || global_locations[i] > global_locations[i - 1],
                   "alltoall_swap: locations must be ascending");
      QUASAR_CHECK(local_positions[i] >= 0 && local_positions[i] < l_,
                   "alltoall_swap: position is not local");
    }
    std::vector<int> sorted_locals = local_positions;
    std::sort(sorted_locals.begin(), sorted_locals.end());
    for (int i = 1; i < q; ++i) {
      QUASAR_CHECK(sorted_locals[i] > sorted_locals[i - 1],
                   "alltoall_swap: local positions must be distinct");
    }
    // One serial bounce chunk per worker, bounded by the whole budget
    // (the worker is the only thread in its process).
    const Index run = index_pow2(sorted_locals.front());
    const Index budget_amps = std::max<std::size_t>(
        std::size_t{1}, storage_.bounce_buffer_bytes / sizeof(Amp));
    Index chunk = run;
    if (chunk > budget_amps) chunk = Index{1} << ilog2(budget_amps);

    PayloadWriter out;
    out.pod<std::int32_t>(q);
    for (int g : global_locations) out.pod<std::int32_t>(g);
    for (int p : local_positions) out.pod<std::int32_t>(p);
    out.pod<std::uint64_t>(chunk);
    collective(Op::kAlltoall, out);

    const Index block = index_pow2(l_ - q);
    const std::uint64_t sent =
        static_cast<std::uint64_t>(local_size_ - block) * sizeof(Amp);
    span.set_arg("bytes_per_rank", static_cast<std::int64_t>(sent));
    obs::count(obs::names::kCommAlltoalls);
    obs::count(obs::names::kCommBytesSentPerRank, sent);
    obs::count_peak(obs::names::kCommPeakBounceBytes,
                    static_cast<std::uint64_t>(chunk) * sizeof(Amp));
  }

  /// `phase_of_logical` is indexed by logical rank (empty = no phases);
  /// `any_phase` is the engine-specific "some phase is not exactly 1"
  /// predicate, computed by the caller so the identity-skip matches the
  /// virtual backend bit-for-bit.
  void local_permute(const std::vector<int>& perm,
                     const std::vector<std::complex<double>>& phase_of_logical,
                     bool any_phase) {
    const PermutePlan plan = plan_bit_permutation(l_, perm);
    if (plan.identity && !any_phase) return;
    obs::ScopedSpan span("permute", "local_permute", "bytes",
                         static_cast<std::int64_t>(num_ranks_) *
                             static_cast<std::int64_t>(local_size_) *
                             static_cast<std::int64_t>(sizeof(Amp)));
    const std::size_t scratch_bytes =
        std::max<std::size_t>(sizeof(Amp), storage_.bounce_buffer_bytes);
    for (int slot = 0; slot < num_ranks_; ++slot) {
      const int logical = logical_of_slot_[slot];
      const std::complex<double> phase =
          phase_of_logical.empty() ? std::complex<double>(1.0, 0.0)
                                   : phase_of_logical[logical];
      PayloadWriter out;
      for (int j : perm) out.pod<std::int32_t>(j);
      out.pod<double>(phase.real());
      out.pod<double>(phase.imag());
      out.pod<std::uint64_t>(scratch_bytes);
      group_->send(slot, Op::kLocalPermute, out.data(), out.size());
    }
    group_->wait_acks();
    invalidate_all();
    obs::count(obs::names::kCommLocalPermutationSweeps);
    obs::count(obs::names::kCommLocalPermutationBytes,
               static_cast<std::uint64_t>(num_ranks_) * local_size_ *
                   sizeof(Amp));
  }

  /// Zero-volume rank renumbering: new logical rank r is the worker that
  /// held logical source_of[r]. Broadcasts each worker's new logical
  /// number plus the full logical->slot table for data-plane addressing.
  void permute_ranks(const std::vector<Index>& source_of) {
    QUASAR_OBS_SPAN("renumber", "permute_ranks");
    QUASAR_CHECK(static_cast<int>(source_of.size()) == num_ranks_,
                 "permute_ranks: must cover every rank");
    std::vector<bool> used(num_ranks_, false);
    for (Index src : source_of) {
      QUASAR_CHECK(src < static_cast<Index>(num_ranks_) && !used[src],
                   "permute_ranks: not a bijection");
      used[src] = true;
    }
    std::array<int, kMaxProcRanks> next_slot_of_logical{};
    for (int r = 0; r < num_ranks_; ++r) {
      next_slot_of_logical[r] = slot_of_logical_[source_of[r]];
    }
    slot_of_logical_ = next_slot_of_logical;
    for (int r = 0; r < num_ranks_; ++r) {
      logical_of_slot_[slot_of_logical_[r]] = r;
    }
    std::vector<std::vector<Amp>> next_cache(num_ranks_);
    std::vector<bool> next_fresh(num_ranks_, false);
    for (int r = 0; r < num_ranks_; ++r) {
      next_cache[r] = std::move(cache_[source_of[r]]);
      next_fresh[r] = fresh_[source_of[r]];
    }
    cache_ = std::move(next_cache);
    fresh_ = std::move(next_fresh);
    for (int slot = 0; slot < num_ranks_; ++slot) {
      PayloadWriter out;
      out.pod<std::int32_t>(logical_of_slot_[slot]);
      for (int r = 0; r < num_ranks_; ++r) {
        out.pod<std::int32_t>(slot_of_logical_[r]);
      }
      group_->send(slot, Op::kRelabel, out.data(), out.size());
    }
    group_->wait_acks();
    obs::count(obs::names::kCommRankRenumberings);
  }

  void renumber_ranks(const std::vector<int>& perm) {
    const int g = n_ - l_;
    QUASAR_CHECK(static_cast<int>(perm.size()) == g,
                 "renumber_ranks: permutation must cover all global bits");
    std::vector<Index> source_of(num_ranks_);
    for (int r = 0; r < num_ranks_; ++r) {
      Index src = 0;
      for (int j = 0; j < g; ++j) {
        QUASAR_CHECK(perm[j] >= 0 && perm[j] < g, "renumber_ranks: bad perm");
        src |= static_cast<Index>(get_bit(static_cast<Index>(r), j))
               << perm[j];
      }
      source_of[r] = src;
    }
    permute_ranks(source_of);
  }

  void apply_gate_all(const GateMatrix& matrix,
                      const std::vector<int>& locations) {
    PayloadWriter out;
    write_gate(out, matrix, locations);
    collective(Op::kApplyGate, out);
  }

  void apply_gate_rank(int logical, const GateMatrix& matrix,
                       const std::vector<int>& locations) {
    PayloadWriter out;
    write_gate(out, matrix, locations);
    const int slot = slot_of_logical_[logical];
    group_->send(slot, Op::kApplyGate, out.data(), out.size());
    group_->wait_ack(slot);
    fresh_[logical] = false;
  }

  void pairwise_global_gate(const GateMatrix& gate, int location) {
    QUASAR_OBS_SPAN("exchange", "pairwise_gate");
    QUASAR_CHECK(gate.num_qubits() == 1,
                 "pairwise_global_gate expects a single-qubit gate");
    QUASAR_CHECK(location >= l_ && location < n_,
                 "pairwise_global_gate: location must be global");
    const Index budget_amps =
        std::min<Index>(local_size_,
                        std::max<std::size_t>(std::size_t{1},
                                              storage_.bounce_buffer_bytes /
                                                  sizeof(Amp)));
    PayloadWriter out;
    out.pod<std::int32_t>(location);
    const std::complex<double> m[4] = {
        std::complex<double>(gate.at(0, 0)), std::complex<double>(gate.at(0, 1)),
        std::complex<double>(gate.at(1, 0)), std::complex<double>(gate.at(1, 1))};
    out.raw(m, sizeof(m));
    out.pod<std::uint64_t>(budget_amps);
    collective(Op::kPairwiseGate, out);
    const Index half = local_size_ / 2;
    obs::count(obs::names::kCommPairwiseExchanges, 2);
    obs::count(obs::names::kCommBytesSentPerRank,
               static_cast<std::uint64_t>(2 * half) * sizeof(Amp));
  }

  /// Root-side cached fetch of logical rank r's slice.
  const Amp* slice(int logical) {
    if (!fresh_[logical]) {
      const int slot = slot_of_logical_[logical];
      group_->send(slot, Op::kReadSlice, nullptr, 0);
      std::vector<std::uint8_t> bytes = group_->wait_ack(slot);
      QUASAR_CHECK(bytes.size() ==
                       static_cast<std::size_t>(local_size_) * sizeof(Amp),
                   "proc transport: short slice read");
      cache_[logical].resize(static_cast<std::size_t>(local_size_));
      std::memcpy(cache_[logical].data(), bytes.data(), bytes.size());
      fresh_[logical] = true;
    }
    return cache_[logical].data();
  }

  void write_slice(int logical, const Amp* data) {
    const int slot = slot_of_logical_[logical];
    group_->send(slot, Op::kWriteSlice, data,
                 static_cast<std::size_t>(local_size_) * sizeof(Amp));
    group_->wait_ack(slot);
    fresh_[logical] = false;
  }

  /// Per-rank counters reduced at the root: field-wise max. The volume
  /// fields are identical across workers by construction (each computes
  /// the same rank-invariant formulas in lockstep), so the max is just
  /// the common value; peak_bounce_bytes is a genuine max.
  CommStats stats() {
    CommStats reduced;
    for (int slot = 0; slot < num_ranks_; ++slot) {
      if (!group_->alive(slot)) continue;
      group_->send(slot, Op::kStats, nullptr, 0);
      const std::vector<std::uint8_t> bytes = group_->wait_ack(slot);
      QUASAR_CHECK(bytes.size() == sizeof(CommStats),
                   "proc transport: bad stats payload");
      CommStats s;
      std::memcpy(&s, bytes.data(), sizeof(s));
      reduced.alltoalls = std::max(reduced.alltoalls, s.alltoalls);
      reduced.pairwise_exchanges =
          std::max(reduced.pairwise_exchanges, s.pairwise_exchanges);
      reduced.bytes_sent_per_rank =
          std::max(reduced.bytes_sent_per_rank, s.bytes_sent_per_rank);
      reduced.local_swap_sweeps =
          std::max(reduced.local_swap_sweeps, s.local_swap_sweeps);
      reduced.local_permutation_sweeps =
          std::max(reduced.local_permutation_sweeps, s.local_permutation_sweeps);
      reduced.local_permutation_bytes =
          std::max(reduced.local_permutation_bytes, s.local_permutation_bytes);
      reduced.peak_bounce_bytes =
          std::max(reduced.peak_bounce_bytes, s.peak_bounce_bytes);
      reduced.rank_renumberings =
          std::max(reduced.rank_renumberings, s.rank_renumberings);
    }
    return reduced;
  }

  /// Fault injection: kills the rank process that stage lands on (slot
  /// stage mod W), reaps it (exit 137), and shuts the survivors down.
  void kill_rank_for_fault(std::size_t stage) {
    const int victim = static_cast<int>(stage % static_cast<std::size_t>(
                                                    num_ranks_));
    group_->kill_worker(victim, stage);
    group_->shutdown();
  }

 private:
  void collective(Op op, const PayloadWriter& out) {
    group_->broadcast(op, out.data(), out.size());
    group_->wait_acks();
    invalidate_all();
  }

  void invalidate_all() { fresh_.assign(num_ranks_, false); }

  static void write_gate(PayloadWriter& out, const GateMatrix& matrix,
                         const std::vector<int>& locations) {
    out.pod<std::uint32_t>(static_cast<std::uint32_t>(matrix.num_qubits()));
    out.raw(matrix.data(), static_cast<std::size_t>(matrix.dim()) *
                               static_cast<std::size_t>(matrix.dim()) *
                               sizeof(Amplitude));
    out.pod<std::uint32_t>(static_cast<std::uint32_t>(locations.size()));
    for (int loc : locations) out.pod<std::int32_t>(loc);
  }

  int n_;
  int l_;
  int num_ranks_ = 0;
  Index local_size_ = 0;
  StorageOptions storage_;
  std::array<int, kMaxProcRanks> slot_of_logical_{};
  std::array<int, kMaxProcRanks> logical_of_slot_{};
  std::vector<std::vector<Amp>> cache_;
  std::vector<bool> fresh_;
  std::unique_ptr<ProcessGroup> group_;
};

}  // namespace quasar::proc

namespace quasar {

/// fp64 multi-process backend behind the Communicator seam.
class ProcCommunicator final : public Communicator {
 public:
  ProcCommunicator(int num_qubits, int num_local, StorageOptions storage,
                   const ApplyOptions& apply = {})
      : impl_(num_qubits, num_local, std::move(storage), apply) {}

  int num_qubits() const override { return impl_.num_qubits(); }
  int num_local() const override { return impl_.num_local(); }
  int num_ranks() const override { return impl_.num_ranks(); }
  bool multiprocess() const override { return true; }
  const StorageOptions& storage() const override { return impl_.storage(); }

  void init_basis(Index index) override { impl_.init_basis(index); }
  void init_uniform() override { impl_.init_uniform(); }

  void alltoall_swap(const std::vector<int>& global_locations) override {
    std::vector<int> local_positions;
    for (std::size_t i = 0; i < global_locations.size(); ++i) {
      local_positions.push_back(
          num_local() - static_cast<int>(global_locations.size()) +
          static_cast<int>(i));
    }
    impl_.alltoall_swap(global_locations, local_positions);
  }
  void alltoall_swap(const std::vector<int>& global_locations,
                     const std::vector<int>& local_positions) override {
    impl_.alltoall_swap(global_locations, local_positions);
  }
  void local_permute(const std::vector<int>& perm,
                     const std::vector<Amplitude>* rank_phase,
                     const ApplyOptions& options) override {
    (void)options;  // workers use construction-time options, serial
    std::vector<std::complex<double>> phases;
    bool any_phase = false;
    if (rank_phase != nullptr) {
      QUASAR_CHECK(static_cast<int>(rank_phase->size()) == num_ranks(),
                   "local_permute: one phase per rank");
      phases.assign(rank_phase->begin(), rank_phase->end());
      for (const Amplitude& p : *rank_phase) {
        any_phase |= p != Amplitude{1.0, 0.0};
      }
    }
    impl_.local_permute(perm, phases, any_phase);
  }
  void renumber_ranks(const std::vector<int>& perm) override {
    impl_.renumber_ranks(perm);
  }
  void permute_ranks(const std::vector<Index>& source_of) override {
    impl_.permute_ranks(source_of);
  }
  void pairwise_global_gate(const GateMatrix& gate, int location,
                            const ApplyOptions& options) override {
    (void)options;
    impl_.pairwise_global_gate(gate, location);
  }

  void apply_gate_all(const GateMatrix& matrix,
                      const std::vector<int>& local_locations,
                      const ApplyOptions& options) override {
    (void)options;
    impl_.apply_gate_all(matrix, local_locations);
  }
  void apply_gate_rank(int rank, const GateMatrix& matrix,
                       const std::vector<int>& local_locations,
                       const ApplyOptions& options) override {
    (void)options;
    impl_.apply_gate_rank(rank, matrix, local_locations);
  }

  const Amplitude* slice(int rank) override { return impl_.slice(rank); }
  void write_slice(int rank, const Amplitude* data) override {
    impl_.write_slice(rank, data);
  }

  CommStats stats() override { return impl_.stats(); }

  bool kill_rank_for_fault(std::size_t stage) override {
    impl_.kill_rank_for_fault(stage);
    return true;
  }

  /// Testing access to the process group (pids, liveness).
  proc::ProcessGroup& process_group() { return impl_.group(); }

 private:
  proc::ProcClusterT<proc::ProcTraits64> impl_;
};

}  // namespace quasar
