/// \file rank_storage.hpp
/// \brief Rank-local amplitude storage: DRAM, file-backed, or segmented
/// out-of-core (Sec. 5).
///
/// The paper's outlook: with only two all-to-alls for a whole depth-25
/// circuit, the state vector could live on solid-state drives. This
/// class makes that concrete in two grades:
///
///  - kDisk: the rank's slice is an anonymous (unlinked) mmap'ed file —
///    the kernels stream through the page cache to disk. Correct, but
///    synchronous: every page fault and writeback serializes with
///    compute (PR 5 measured 0.13 GB/s on the container disk).
///  - kOocore: the slice lives in a segmented, codec-framed SegmentStore
///    (DESIGN.md §11). The distributed executor streams eligible gate
///    work through the async pipeline without ever holding the full
///    slice in DRAM; operations that genuinely need the flat slice
///    (all-to-all, permutation sweeps, sampling, gather) transparently
///    *materialize* it into a disk-backed scratch mapping on first
///    data() access and write it back — re-encoded — before the next
///    pipelined sweep. Every existing code path therefore stays correct
///    unchanged; only its speed differs.
///
/// The VirtualCluster works identically over any medium.
#pragma once

#include <memory>
#include <string>

#include "core/aligned.hpp"
#include "core/types.hpp"
#include "oocore/segment_store.hpp"

namespace quasar {

/// Where rank slices live.
enum class StorageMedium {
  kMemory,  ///< cache-line-aligned heap allocation (default)
  kDisk,    ///< mmap'ed unlinked file (SSD-backed state, Sec. 5 outlook)
  kOocore,  ///< segmented + codec-framed store, async pipeline (§11)
};

/// Storage configuration for a VirtualCluster.
struct StorageOptions {
  StorageMedium medium = StorageMedium::kMemory;
  /// Directory for the backing files in kDisk/kOocore modes.
  std::string directory = "/tmp";
  /// Total bounce-buffer budget (bytes, split across threads) for the
  /// in-place chunked all-to-all and the fused permutation sweeps. This
  /// bounds the peak extra allocation of a qubit remapping — the state
  /// itself is never shadow-copied. At least one amplitude per thread is
  /// always granted.
  std::size_t bounce_buffer_bytes = std::size_t{64} << 20;
  /// kOocore: shard codec between DRAM and disk.
  oocore::Codec codec = oocore::Codec::kRaw;
  /// kOocore: target segment size in bytes.
  std::size_t segment_bytes = std::size_t{4} << 20;
  /// kOocore: background I/O worker threads per pipelined sweep.
  int io_threads = 2;
  /// kOocore: DRAM ring depth in tiles (>= 2).
  int pipeline_depth = 3;
};

/// Reads storage configuration from the environment: QUASAR_STORAGE
/// (memory | disk | oocore), QUASAR_STORAGE_DIR, QUASAR_OOC_CODEC
/// (raw | lz | fp32 | fp32lz), QUASAR_OOC_SEGMENT_KB,
/// QUASAR_OOC_IO_THREADS. Unset variables keep the defaults; malformed
/// values throw quasar::Error naming the variable.
StorageOptions storage_options_from_env(StorageOptions defaults = {});

/// A move-only buffer of amplitudes on the chosen medium. Disk-backed
/// buffers are unlinked at creation, so they vanish when released (or if
/// the process dies).
class RankStorage {
 public:
  RankStorage() = default;
  /// Allocates and zero-fills `count` amplitudes. Throws quasar::Error
  /// with a diagnostic naming the directory when a disk-backed medium
  /// cannot create its backing file there.
  RankStorage(Index count, const StorageOptions& options);
  ~RankStorage();

  RankStorage(RankStorage&& other) noexcept;
  RankStorage& operator=(RankStorage&& other) noexcept;
  RankStorage(const RankStorage&) = delete;
  RankStorage& operator=(const RankStorage&) = delete;

  /// Flat amplitude access. On kOocore this lazily materializes the
  /// segmented slice into the scratch mapping (and the mutable overload
  /// marks it dirty, so the next dematerialize() re-encodes); kMemory
  /// and kDisk return their backing directly.
  Amplitude* data();
  const Amplitude* data() const;

  Index size() const noexcept { return count_; }
  /// True when the slice is backed by disk (mmap'ed file or segmented
  /// store) rather than DRAM.
  bool on_disk() const noexcept {
    return mapped_bytes_ > 0 || store_ != nullptr;
  }

  /// kOocore only (null otherwise): the segmented store. The pipelined
  /// executor reads/writes segments directly; it must only do so while
  /// the slice is not resident (see dematerialize()).
  oocore::SegmentStore* store() noexcept { return store_.get(); }
  const oocore::SegmentStore* store() const noexcept { return store_.get(); }
  /// True when this is a kOocore slice (whether or not it is resident).
  bool segmented() const noexcept { return store_ != nullptr; }
  /// True while the flat scratch copy is the authoritative data.
  bool resident() const noexcept { return resident_; }

  /// kOocore: if the slice is resident and dirty, re-encodes every
  /// segment back into the store; afterwards the store is authoritative
  /// again and pipelined sweeps may run. No-op on other media.
  void dematerialize();
  /// kOocore: drops residency WITHOUT writing back — caller just rewrote
  /// the store directly (e.g. state initialization). No-op otherwise.
  void discard_resident() noexcept;

  /// Streaming-pattern hints on the mmap'ed backing (kDisk and a
  /// materialized kOocore scratch): madvise(MADV_SEQUENTIAL) /
  /// madvise(MADV_DONTNEED). No-ops for heap storage. advise_dontneed
  /// drops the mapping's resident pages (cheap — the file's page-cache
  /// copy survives, so the next touch soft-faults from DRAM).
  void advise_sequential() noexcept;
  void advise_dontneed() noexcept;
  /// Synchronously writes dirty pages to the device (msync) and evicts
  /// the file's page-cache copy (posix_fadvise(POSIX_FADV_DONTNEED) +
  /// madvise), so the next touch hard-faults from the actual disk —
  /// benchmarks use this to measure cold sweeps honestly. The ranged
  /// overload flushes just `count` amplitudes starting at `first`
  /// (rounded out to page boundaries), which is how a bounded working
  /// set streams over a slice bigger than DRAM: write segment k back
  /// before touching segment k+1. No-op for heap storage.
  void flush_and_evict() noexcept;
  void flush_and_evict(Index first, Index count) noexcept;

 private:
  void release() noexcept;
  /// Maps an unlinked zero-filled file of `bytes` in options_.directory.
  void* map_backing_file(std::size_t bytes, const std::string& what);
  /// Decodes every segment into the scratch mapping (created on first
  /// use). Called from both data() overloads — the const one casts away
  /// constness, because residency is a cache, not observable state.
  void materialize();

  Amplitude* data_ = nullptr;
  Index count_ = 0;
  /// Nonzero iff mmap'ed (kDisk slice or kOocore scratch); munmap length.
  std::size_t mapped_bytes_ = 0;
  /// Backing-file descriptor of the mapping, kept open so
  /// flush_and_evict can posix_fadvise the page cache away; -1 otherwise.
  int map_fd_ = -1;
  /// Heap storage in memory mode.
  AlignedVector<Amplitude> heap_;
  /// Segmented store in kOocore mode.
  std::unique_ptr<oocore::SegmentStore> store_;
  StorageOptions options_;
  /// kOocore residency cache state.
  bool resident_ = false;
  bool dirty_ = false;
};

}  // namespace quasar
