/// \file rank_storage.hpp
/// \brief Rank-local amplitude storage: DRAM or file-backed (Sec. 5).
///
/// The paper's outlook: with only two all-to-alls for a whole depth-25
/// circuit, the state vector could live on solid-state drives. This
/// class makes that concrete — a rank's slice can be backed by an
/// anonymous (unlinked) file on any filesystem, mmap'ed shared, so the
/// kernels stream through the page cache to disk instead of DRAM. The
/// VirtualCluster works identically over either medium.
#pragma once

#include <string>

#include "core/aligned.hpp"
#include "core/types.hpp"

namespace quasar {

/// Where rank slices live.
enum class StorageMedium {
  kMemory,  ///< cache-line-aligned heap allocation (default)
  kDisk,    ///< mmap'ed unlinked file (SSD-backed state, Sec. 5 outlook)
};

/// Storage configuration for a VirtualCluster.
struct StorageOptions {
  StorageMedium medium = StorageMedium::kMemory;
  /// Directory for the backing files in kDisk mode.
  std::string directory = "/tmp";
  /// Total bounce-buffer budget (bytes, split across threads) for the
  /// in-place chunked all-to-all and the fused permutation sweeps. This
  /// bounds the peak extra allocation of a qubit remapping — the state
  /// itself is never shadow-copied. At least one amplitude per thread is
  /// always granted.
  std::size_t bounce_buffer_bytes = std::size_t{64} << 20;
};

/// A move-only buffer of amplitudes on the chosen medium. Disk-backed
/// buffers are unlinked at creation, so they vanish when released (or if
/// the process dies).
class RankStorage {
 public:
  RankStorage() = default;
  /// Allocates and zero-fills `count` amplitudes.
  RankStorage(Index count, const StorageOptions& options);
  ~RankStorage();

  RankStorage(RankStorage&& other) noexcept;
  RankStorage& operator=(RankStorage&& other) noexcept;
  RankStorage(const RankStorage&) = delete;
  RankStorage& operator=(const RankStorage&) = delete;

  Amplitude* data() noexcept { return data_; }
  const Amplitude* data() const noexcept { return data_; }
  Index size() const noexcept { return count_; }
  bool on_disk() const noexcept { return mapped_bytes_ > 0; }

 private:
  void release() noexcept;

  Amplitude* data_ = nullptr;
  Index count_ = 0;
  /// Nonzero iff mmap'ed (disk mode); the munmap length.
  std::size_t mapped_bytes_ = 0;
  /// Heap storage in memory mode.
  AlignedVector<Amplitude> heap_;
};

}  // namespace quasar
