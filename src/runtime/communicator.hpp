/// \file communicator.hpp
/// \brief Transport seam over the cluster primitives (DESIGN.md §12).
///
/// DistributedSimulator speaks to the machine exclusively through this
/// interface: the six primitives of Secs. 3.4/3.5 (two all-to-all forms,
/// the fused local permutation, the two rank renumberings, the baseline
/// pairwise exchange), gate application, state initialization, slice
/// access, and the CommStats reduction. Two backends implement it:
///
///  - VirtualCommunicator: the in-process VirtualCluster, unchanged
///    semantics — every rank slice lives in this process.
///  - ProcCommunicator (proc_transport.hpp): 2^g forked rank processes
///    wired over UNIX-domain sockets, each owning its 2^l-amplitude
///    slice. The root drives them in lockstep; data-plane exchanges run
///    directly between worker pairs with bounce-bounded chunks, so the
///    1+epsilon footprint guarantee survives the process split.
///
/// QUASAR_TRANSPORT=virtual|proc selects the backend at runtime.
/// Cross-transport bit parity (same seeds, identical amplitudes, sample
/// streams, and CommStats volumes) is enforced by the differential-fuzz
/// harness and tests/transport_test.cpp.
#pragma once

#include <memory>
#include <vector>

#include "gates/matrix.hpp"
#include "kernels/apply.hpp"
#include "runtime/comm.hpp"
#include "runtime/rank_storage.hpp"
#include "runtime/virtual_cluster.hpp"

namespace quasar {

/// Which transport backs the cluster primitives.
enum class TransportKind {
  kVirtual,  ///< in-process VirtualCluster (default)
  kProc,     ///< forked rank processes over UNIX-domain sockets
};

/// Strict QUASAR_TRANSPORT reader: "virtual" | "proc", unset keeps the
/// default. Anything else throws quasar::Error naming the token.
TransportKind transport_from_env(TransportKind fallback = TransportKind::kVirtual);

/// Abstract transport: 2^g ranks of 2^l amplitudes, addressed by logical
/// rank number. All methods are collective — the caller is the single
/// driver (root) and every rank participates.
class Communicator {
 public:
  virtual ~Communicator() = default;

  virtual int num_qubits() const = 0;
  virtual int num_local() const = 0;
  int num_global() const { return num_qubits() - num_local(); }
  virtual int num_ranks() const = 0;
  Index local_size() const { return index_pow2(num_local()); }

  /// True for backends whose ranks are separate OS processes.
  virtual bool multiprocess() const = 0;
  /// Storage configuration in effect.
  virtual const StorageOptions& storage() const = 0;

  virtual void init_basis(Index index) = 0;
  virtual void init_uniform() = 0;

  /// The six cluster primitives — signatures and arithmetic match
  /// VirtualCluster bit-for-bit (see virtual_cluster.hpp for contracts).
  virtual void alltoall_swap(const std::vector<int>& global_locations) = 0;
  virtual void alltoall_swap(const std::vector<int>& global_locations,
                             const std::vector<int>& local_positions) = 0;
  virtual void local_permute(const std::vector<int>& perm,
                             const std::vector<Amplitude>* rank_phase,
                             const ApplyOptions& options) = 0;
  virtual void renumber_ranks(const std::vector<int>& perm) = 0;
  virtual void permute_ranks(const std::vector<Index>& source_of) = 0;
  virtual void pairwise_global_gate(const GateMatrix& gate, int location,
                                    const ApplyOptions& options) = 0;

  /// Applies the same prepared gate to every rank's slice (the kCluster
  /// stage-item path: prepare once, sweep all ranks).
  virtual void apply_gate_all(const GateMatrix& matrix,
                              const std::vector<int>& local_locations,
                              const ApplyOptions& options) = 0;
  /// Applies a gate to one rank's slice (the conditional-gate path).
  virtual void apply_gate_rank(int rank, const GateMatrix& matrix,
                               const std::vector<int>& local_locations,
                               const ApplyOptions& options) = 0;

  /// Read access to rank `rank`'s full slice in logical-rank order.
  /// Virtual: a direct pointer. Proc: fetches the slice over the wire
  /// into a root-side cache (invalidated by any mutating call), so
  /// per-amplitude readers (gather, sampling, checkpointing) stay
  /// correct and amortized.
  virtual const Amplitude* slice(int rank) = 0;
  /// Overwrites rank `rank`'s slice (checkpoint resume).
  virtual void write_slice(int rank, const Amplitude* data) = 0;

  /// Total squared norm across ranks. Computed at the root over slice()
  /// with the same reduction loop on every backend, so the result is
  /// bit-identical across transports.
  Real norm_squared();

  /// Communication counters. Virtual: the cluster's counters. Proc: the
  /// per-rank worker counters reduced at the root (volume fields are
  /// identical across ranks by construction; peak_bounce_bytes is the
  /// max, and depends on the per-backend chunking).
  virtual CommStats stats() = 0;

  /// The in-process cluster behind a virtual transport, or nullptr for
  /// multi-process backends. The out-of-core executor (which streams
  /// segment stores directly) and the Fig. 3 demo use this escape hatch.
  virtual VirtualCluster* local_cluster() { return nullptr; }

  /// Multi-process fault injection: sends a die order to one live rank
  /// process (chosen from `stage`), reaps it (exit 137), and tears the
  /// remaining ranks down cleanly. Returns false on single-process
  /// backends (the injector then just kills this process as before).
  virtual bool kill_rank_for_fault(std::size_t stage) {
    (void)stage;
    return false;
  }
};

/// In-process backend: owns a VirtualCluster and forwards verbatim.
class VirtualCommunicator final : public Communicator {
 public:
  VirtualCommunicator(int num_qubits, int num_local, StorageOptions storage);

  int num_qubits() const override { return cluster_.num_qubits(); }
  int num_local() const override { return cluster_.num_local(); }
  int num_ranks() const override { return cluster_.num_ranks(); }
  bool multiprocess() const override { return false; }
  const StorageOptions& storage() const override { return cluster_.storage(); }

  void init_basis(Index index) override { cluster_.init_basis(index); }
  void init_uniform() override { cluster_.init_uniform(); }

  void alltoall_swap(const std::vector<int>& global_locations) override {
    cluster_.alltoall_swap(global_locations);
  }
  void alltoall_swap(const std::vector<int>& global_locations,
                     const std::vector<int>& local_positions) override {
    cluster_.alltoall_swap(global_locations, local_positions);
  }
  void local_permute(const std::vector<int>& perm,
                     const std::vector<Amplitude>* rank_phase,
                     const ApplyOptions& options) override {
    cluster_.local_permute(perm, rank_phase, options);
  }
  void renumber_ranks(const std::vector<int>& perm) override {
    cluster_.renumber_ranks(perm);
  }
  void permute_ranks(const std::vector<Index>& source_of) override {
    cluster_.permute_ranks(source_of);
  }
  void pairwise_global_gate(const GateMatrix& gate, int location,
                            const ApplyOptions& options) override {
    cluster_.pairwise_global_gate(gate, location, options);
  }

  void apply_gate_all(const GateMatrix& matrix,
                      const std::vector<int>& local_locations,
                      const ApplyOptions& options) override;
  void apply_gate_rank(int rank, const GateMatrix& matrix,
                       const std::vector<int>& local_locations,
                       const ApplyOptions& options) override;

  const Amplitude* slice(int rank) override { return cluster_.rank_data(rank); }
  void write_slice(int rank, const Amplitude* data) override;

  CommStats stats() override { return cluster_.stats(); }
  VirtualCluster* local_cluster() override { return &cluster_; }

 private:
  VirtualCluster cluster_;
};

/// Builds the requested backend. kProc supports kMemory and kDisk rank
/// slices (each rank process creates its own per-rank-tagged backing
/// file), rejects kOocore (the segment-streaming executor is
/// virtual-transport-only), and caps the rank count at 16 processes.
/// `apply` is the gate-application configuration the proc workers use
/// (with num_threads forced to 1 — workers are strictly serial so the
/// fork is OpenMP-safe); the virtual backend ignores it and takes the
/// per-call options instead.
std::unique_ptr<Communicator> make_communicator(int num_qubits, int num_local,
                                                StorageOptions storage,
                                                const ApplyOptions& apply,
                                                TransportKind transport);

}  // namespace quasar
