#include "runtime/comm.hpp"

namespace quasar {

CommStats& CommStats::operator+=(const CommStats& other) {
  alltoalls += other.alltoalls;
  pairwise_exchanges += other.pairwise_exchanges;
  bytes_sent_per_rank += other.bytes_sent_per_rank;
  local_swap_sweeps += other.local_swap_sweeps;
  local_permutation_sweeps += other.local_permutation_sweeps;
  local_permutation_bytes += other.local_permutation_bytes;
  if (other.peak_bounce_bytes > peak_bounce_bytes) {
    peak_bounce_bytes = other.peak_bounce_bytes;
  }
  rank_renumberings += other.rank_renumberings;
  return *this;
}

}  // namespace quasar
