/// \file distributed.hpp
/// \brief Multi-node simulator: schedule execution over a VirtualCluster.
///
/// Implements the paper's preferred multi-node scheme (Sec. 3.4): keep a
/// stage's gates local, then perform a global-to-local swap realized as
/// local bit swaps + one (group) all-to-all + local bit swaps, plus the
/// Sec. 3.5 specializations (diagonal global gates applied in place as
/// rank-conditional phases/sub-gates, pure phases deferred and absorbed,
/// global permutations as rank renumbering).
#pragma once

#include <vector>

#include "circuit/circuit.hpp"
#include "core/rng.hpp"
#include "runtime/virtual_cluster.hpp"
#include "sched/schedule.hpp"
#include "simulator/statevector.hpp"

namespace quasar {

/// Distributed statevector simulator over 2^(n-l) virtual ranks.
class DistributedSimulator {
 public:
  DistributedSimulator(int num_qubits, int num_local,
                       ApplyOptions options = {},
                       StorageOptions storage = {});

  int num_qubits() const noexcept { return cluster_.num_qubits(); }
  int num_local() const noexcept { return cluster_.num_local(); }

  /// State initialization (resets the current mapping to identity).
  void init_basis(Index index);
  void init_uniform();

  /// Executes `schedule` (built for the same qubit/local counts) of
  /// `circuit`. May be called repeatedly; the qubit mapping carries over.
  void run(const Circuit& circuit, const Schedule& schedule);

  /// Schedules `circuit` with `options` and executes it.
  void run(const Circuit& circuit, const ScheduleOptions& options);

  /// Reassembles the full state vector in program-qubit order, including
  /// deferred phases. Only for n small enough to hold twice.
  StateVector gather() const;

  /// Distributed reductions.
  Real norm_squared() const { return cluster_.norm_squared(); }
  Real entropy() const;

  /// Amplitude of one program-order basis state (includes deferred
  /// phases). In a real MPI deployment this is a single point-to-point
  /// read from the owning rank.
  Amplitude amplitude(Index program_index) const;
  /// |amplitude|^2 of one basis state.
  Real probability(Index program_index) const {
    return std::norm(amplitude(program_index));
  }

  /// Samples `count` program-order outcomes from |amplitude|^2 without
  /// reassembling the state. The scan runs in program order with the
  /// same accumulation as sample_outcomes() on a gathered state, so the
  /// outcome stream is bit-for-bit identical to the single-node path
  /// under the same seed (the cross-engine property the fuzz harness
  /// asserts). An MPI deployment would pay one ordered prefix-sum pass
  /// for this determinism.
  std::vector<Index> sample(int count, Rng& rng) const;

  /// Communication counters accumulated so far.
  const CommStats& stats() const { return cluster_.stats(); }

  /// Current program-qubit -> bit-location mapping.
  const std::vector<int>& mapping() const { return mapping_; }

  /// Re-arranges the distributed state so program qubit q sits at
  /// bit-location to[q]: at most one fused local permutation sweep, one
  /// group all-to-all (only if qubits cross the local/global boundary)
  /// and one rank renumbering. `to` must be a bijection on [0, n).
  void remap(const std::vector<int>& to);

  /// Underlying virtual cluster (benchmarks read per-rank slices).
  const VirtualCluster& cluster() const { return cluster_; }

 private:
  /// Re-arranges the distributed state from mapping `from` to `to`.
  void transition(const std::vector<int>& from, const std::vector<int>& to);
  /// QUASAR_VALIDATE guard body: mapping bijectivity, deferred-phase unit
  /// modulus, per-rank finiteness, and norm preservation vs `norm_before`
  /// with a tolerance derived from `ops` executed items.
  void validate_invariants(const char* site, Real norm_before,
                           std::size_t ops) const;
  void execute_stage(const Circuit& circuit, const Stage& stage);
  void apply_global_op(const GateOp& op, const Stage& stage);

  VirtualCluster cluster_;
  ApplyOptions options_;
  std::vector<int> mapping_;
  std::vector<Amplitude> pending_phase_;
};

}  // namespace quasar
