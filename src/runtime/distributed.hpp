/// \file distributed.hpp
/// \brief Multi-node simulator: schedule execution over a Communicator.
///
/// Implements the paper's preferred multi-node scheme (Sec. 3.4): keep a
/// stage's gates local, then perform a global-to-local swap realized as
/// local bit swaps + one (group) all-to-all + local bit swaps, plus the
/// Sec. 3.5 specializations (diagonal global gates applied in place as
/// rank-conditional phases/sub-gates, pure phases deferred and absorbed,
/// global permutations as rank renumbering).
///
/// All cluster traffic goes through the Communicator seam (DESIGN.md
/// §12): QUASAR_TRANSPORT=virtual runs the in-process VirtualCluster,
/// QUASAR_TRANSPORT=proc runs real forked rank processes over
/// UNIX-domain sockets. The simulator's own logic is transport-blind.
#pragma once

#include <atomic>
#include <cstddef>
#include <memory>
#include <vector>

#include "circuit/circuit.hpp"
#include "ckpt/reader.hpp"
#include "ckpt/writer.hpp"
#include "core/rng.hpp"
#include "runtime/communicator.hpp"
#include "sched/schedule.hpp"
#include "simulator/statevector.hpp"

namespace quasar {

/// Checkpointing policy for one run (DESIGN.md §10). The writer snapshots
/// the full run state at stage boundaries; `first_stage` starts the
/// schedule mid-way (the value resume() returned); `rng` is the sampling
/// stream whose state rides along in every manifest so a resumed run's
/// sample draws are bit-identical; `snapshot_every` thins snapshots to
/// every k-th boundary (the final boundary is always snapshotted).
struct CheckpointedRun {
  ckpt::CheckpointWriter* writer = nullptr;
  std::size_t first_stage = 0;
  Rng* rng = nullptr;
  int snapshot_every = 1;
  /// Cooperative preemption/shutdown flag (DESIGN.md §13). When set and
  /// it reads true at a stage boundary, the run snapshots that boundary
  /// (unless it just did), drains the writer, and returns its cursor
  /// early instead of executing further stages. Point it at
  /// quasar::shutdown_flag() for SIGINT/SIGTERM draining, or at a
  /// per-job flag for job-server preemption.
  const std::atomic<bool>* stop = nullptr;
  /// Snapshot the final stage boundary even when snapshot_every does not
  /// land on it (the restart contract of DESIGN.md §10). The job server
  /// turns this off: a completed job's results are read from memory, so
  /// a final full-state write would be pure overhead.
  bool final_snapshot = true;
};

/// Distributed statevector simulator over 2^(n-l) ranks (virtual or real
/// processes, per the transport).
class DistributedSimulator {
 public:
  DistributedSimulator(int num_qubits, int num_local,
                       ApplyOptions options = {},
                       StorageOptions storage = {},
                       TransportKind transport = transport_from_env());

  int num_qubits() const noexcept { return comm_->num_qubits(); }
  int num_local() const noexcept { return comm_->num_local(); }
  int num_ranks() const noexcept { return comm_->num_ranks(); }
  Index local_size() const noexcept { return comm_->local_size(); }
  /// True when ranks are separate OS processes (QUASAR_TRANSPORT=proc).
  bool multiprocess() const noexcept { return comm_->multiprocess(); }

  /// State initialization (resets the current mapping to identity).
  void init_basis(Index index);
  void init_uniform();

  /// Executes `schedule` (built for the same qubit/local counts) of
  /// `circuit`. May be called repeatedly; the qubit mapping carries over.
  void run(const Circuit& circuit, const Schedule& schedule);

  /// Schedules `circuit` with `options` and executes it.
  void run(const Circuit& circuit, const ScheduleOptions& options);

  /// Executes `schedule` under a checkpointing policy: snapshots the run
  /// state through `ckpt.writer` at stage boundaries (after every
  /// `ckpt.snapshot_every`-th stage and, when `ckpt.final_snapshot`,
  /// always after the last), starting from stage `ckpt.first_stage` (0
  /// for a fresh run, the return value of resume() for a restarted one).
  /// If the writer's fault injector arms kill_stage:k, the process dies
  /// at the boundary *before* stage k executes, after draining any
  /// in-flight snapshot — so the newest on-disk generation is always a
  /// fully committed one. Under the proc transport the kill first lands
  /// in a real rank process (which exits 137) and the remaining ranks
  /// are torn down before the root dies.
  ///
  /// Returns the cursor (first unexecuted stage): stages.size() when the
  /// schedule completed, or the preemption boundary when `ckpt.stop`
  /// read true — in that case the boundary has been snapshotted and the
  /// writer drained, so a later resume() continues bit-identically.
  std::size_t run(const Circuit& circuit, const Schedule& schedule,
                  const CheckpointedRun& ckpt);

  /// Snapshots the current state (amplitude shards + mapping + deferred
  /// phases + RNG stream + norm) into `writer`'s staging buffer and hands
  /// it to the background thread. `cursor` is the index of the first
  /// stage NOT yet executed; `schedule_crc` ties the snapshot to one
  /// schedule (0 = unknown). Blocks only while a previous snapshot is
  /// still being written (double buffering, DESIGN.md §10). Under the
  /// proc transport the per-rank shards are fetched from the rank
  /// processes and reduced into the snapshot at the root.
  void checkpoint(ckpt::CheckpointWriter& writer, std::size_t cursor,
                  const Rng* rng, std::uint32_t schedule_crc) const;

  /// Adopts a verified snapshot: checks engine/geometry/schedule
  /// consistency (the manifest's schedule_crc against the canonical
  /// sched::schedule_digest of `circuit` + the schedule's options),
  /// mapping bijectivity, deferred-phase unit modulus, finiteness and
  /// norm agreement before overwriting any state, then installs the
  /// shards, mapping and phases. Restores `rng` from the manifest when
  /// both are present. Returns the schedule cursor (first stage to
  /// execute); throws check::ValidationError if the snapshot fails
  /// verification. These checks run unconditionally — a snapshot is
  /// untrusted input regardless of QUASAR_VALIDATE.
  std::size_t resume(const ckpt::LoadedSnapshot& snapshot,
                     const Circuit& circuit, const Schedule& schedule,
                     Rng* rng = nullptr);

  /// Reassembles the full state vector in program-qubit order, including
  /// deferred phases. Only for n small enough to hold twice.
  StateVector gather() const;

  /// Distributed reductions, computed at the root with the same loops on
  /// every transport (bit-identical across QUASAR_TRANSPORT values).
  Real norm_squared() const { return comm().norm_squared(); }
  Real entropy() const;

  /// Amplitude of one program-order basis state (includes deferred
  /// phases). Under the proc transport this fetches (and caches) the
  /// owning rank's slice.
  Amplitude amplitude(Index program_index) const;
  /// |amplitude|^2 of one basis state.
  Real probability(Index program_index) const {
    return std::norm(amplitude(program_index));
  }

  /// Samples `count` program-order outcomes from |amplitude|^2 without
  /// reassembling the state. The scan runs in program order with the
  /// same accumulation as sample_outcomes() on a gathered state, so the
  /// outcome stream is bit-for-bit identical to the single-node path
  /// under the same seed (the cross-engine property the fuzz harness
  /// asserts). An MPI deployment would pay one ordered prefix-sum pass
  /// for this determinism.
  std::vector<Index> sample(int count, Rng& rng) const;

  /// Communication counters accumulated so far. Virtual transport: the
  /// cluster's counters. Proc transport: per-rank worker counters
  /// reduced at the root (volume fields agree across ranks).
  CommStats stats() const { return comm().stats(); }

  /// Current program-qubit -> bit-location mapping.
  const std::vector<int>& mapping() const { return mapping_; }

  /// Deferred per-rank phases (Sec. 3.5), one unit-modulus factor per
  /// rank. Snapshot/verification code reads these; run state is not
  /// complete without them.
  const std::vector<Amplitude>& pending_phases() const {
    return pending_phase_;
  }

  /// Read access to logical rank r's slice on any transport (fetched and
  /// cached over the wire under proc). Benchmarks, demos and digests use
  /// this instead of cluster().
  const Amplitude* rank_slice(int rank) const { return comm().slice(rank); }

  /// Re-arranges the distributed state so program qubit q sits at
  /// bit-location to[q]: at most one fused local permutation sweep, one
  /// group all-to-all (only if qubits cross the local/global boundary)
  /// and one rank renumbering. `to` must be a bijection on [0, n).
  void remap(const std::vector<int>& to);

  /// Underlying in-process cluster. Throws under multi-process
  /// transports — use rank_slice()/stats() for transport-agnostic reads.
  const VirtualCluster& cluster() const;

 private:
  /// comm_ is behaviorally const from the simulator's point of view in
  /// const methods (slice reads mutate only the root-side fetch cache),
  /// so const methods funnel through this accessor.
  Communicator& comm() const { return *comm_; }
  /// The in-process cluster behind the virtual transport; throws under
  /// proc. Only the out-of-core executor and cluster() use it.
  VirtualCluster& local_cluster() const;
  /// Re-arranges the distributed state from mapping `from` to `to`.
  void transition(const std::vector<int>& from, const std::vector<int>& to);
  /// QUASAR_VALIDATE guard body: mapping bijectivity, deferred-phase unit
  /// modulus, per-rank finiteness, and norm preservation vs `norm_before`
  /// with a tolerance derived from `ops` executed items.
  void validate_invariants(const char* site, Real norm_before,
                           std::size_t ops) const;
  void execute_stage(const Circuit& circuit, const Stage& stage);
  void apply_global_op(const GateOp& op, const Stage& stage);
  /// Out-of-core stage executor (runtime/oocore_exec.cpp, DESIGN.md §11):
  /// streams each rank's segmented slice through the async pipeline
  /// instead of materializing it, applying the stage's gate work
  /// segment-granularly. Bit-identical to execute_stage for lossless
  /// codecs (the differential fuzzer asserts this).
  void execute_stage_oocore(const Circuit& circuit, const Stage& stage);

  std::unique_ptr<Communicator> comm_;
  ApplyOptions options_;
  std::vector<int> mapping_;
  std::vector<Amplitude> pending_phase_;
};

}  // namespace quasar
