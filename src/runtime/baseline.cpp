#include "runtime/baseline.hpp"

#include <map>

#include "core/bits.hpp"
#include "core/error.hpp"
#include "runtime/conditional.hpp"

namespace quasar {

BaselineSimulator::BaselineSimulator(int num_qubits, int num_local,
                                     BaselineOptions options)
    : cluster_(num_qubits, num_local), options_(options) {}

void BaselineSimulator::init_basis(Index index) { cluster_.init_basis(index); }

void BaselineSimulator::init_uniform() { cluster_.init_uniform(); }

void BaselineSimulator::run(const Circuit& circuit) {
  QUASAR_CHECK(circuit.num_qubits() == num_qubits(),
               "baseline run: qubit count mismatch");
  for (const GateOp& op : circuit.ops()) apply_op(op);
}

void BaselineSimulator::apply_op(const GateOp& op) {
  const int l = num_local();

  // Classify qubits: global-dense qubits force communication.
  std::vector<int> dense_global;  // gate-local indices
  bool any_global = false;
  for (int j = 0; j < op.arity(); ++j) {
    if (op.qubits[j] >= l) {
      any_global = true;
      if (requires_local(op, j, options_.specialization)) {
        dense_global.push_back(j);
      }
    }
  }

  if (!any_global) {
    // Purely local: every rank applies it to its slice.
    std::vector<int> locations(op.qubits.begin(), op.qubits.end());
    const PreparedGate prepared = prepare_gate(*op.matrix, locations);
    for (int r = 0; r < cluster_.num_ranks(); ++r) {
      apply_gate(cluster_.rank_data(r), l, prepared, options_.apply);
    }
    return;
  }

  if (dense_global.empty()) {
    // Diagonal on all its global qubits: apply the rank-conditional
    // sub-gate in place (qHiPSTER-style diagonal handling).
    std::vector<bool> fixed(op.arity(), false);
    std::vector<int> global_bits, local_locations;
    for (int j = 0; j < op.arity(); ++j) {
      if (op.qubits[j] >= l) {
        fixed[j] = true;
        global_bits.push_back(op.qubits[j] - l);
      } else {
        local_locations.push_back(op.qubits[j]);
      }
    }
    std::map<Index, ConditionalGate> cache;
    for (int r = 0; r < cluster_.num_ranks(); ++r) {
      Index pattern = 0;
      for (std::size_t i = 0; i < global_bits.size(); ++i) {
        pattern |= static_cast<Index>(
                       get_bit(static_cast<Index>(r), global_bits[i]))
                   << i;
      }
      auto it = cache.find(pattern);
      if (it == cache.end()) {
        it = cache.emplace(pattern,
                           condition_gate(*op.matrix, fixed, pattern)).first;
      }
      const ConditionalGate& cond = it->second;
      if (cond.is_identity) continue;
      if (cond.matrix.num_qubits() == 0) {
        apply_global_phase(cluster_.rank_data(r), l, cond.phase,
                           options_.apply.num_threads);
        continue;
      }
      const PreparedGate prepared =
          prepare_gate(cond.matrix, local_locations);
      apply_gate(cluster_.rank_data(r), l, prepared, options_.apply);
    }
    return;
  }

  QUASAR_CHECK(dense_global.size() == 1 && op.arity() == 1,
               "baseline scheme: only single-qubit dense global gates are "
               "supported (supremacy circuits need no more)");
  cluster_.pairwise_global_gate(*op.matrix, op.qubits[0], options_.apply);
}

StateVector BaselineSimulator::gather() const {
  const int n = num_qubits();
  QUASAR_CHECK(n <= 28, "gather: state too large to reassemble");
  StateVector out(n);
  const Index size = cluster_.local_size();
  for (int r = 0; r < cluster_.num_ranks(); ++r) {
    const Amplitude* data = cluster_.rank_data(r);
    for (Index i = 0; i < size; ++i) {
      out[(static_cast<Index>(r) << num_local()) | i] = data[i];
    }
  }
  return out;
}

}  // namespace quasar
