#include "runtime/proc_transport.hpp"

#include <omp.h>

#include <cerrno>
#include <csignal>
#include <cstring>

#include <sys/prctl.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <time.h>
#include <unistd.h>

#include "core/scratch.hpp"

namespace quasar::proc {

void send_all(int fd, const void* data, std::size_t len) {
  const char* p = static_cast<const char*>(data);
  while (len > 0) {
    const ssize_t sent = ::send(fd, p, len, MSG_NOSIGNAL);
    if (sent < 0) {
      if (errno == EINTR) continue;
      throw Error(std::string("proc transport: send failed: ") +
                  std::strerror(errno));
    }
    p += sent;
    len -= static_cast<std::size_t>(sent);
  }
}

void recv_all(int fd, void* data, std::size_t len) {
  char* p = static_cast<char*>(data);
  while (len > 0) {
    const ssize_t got = ::recv(fd, p, len, 0);
    if (got < 0) {
      if (errno == EINTR) continue;
      throw Error(std::string("proc transport: recv failed: ") +
                  std::strerror(errno));
    }
    if (got == 0) {
      throw Error("proc transport: rank process closed the connection");
    }
    p += got;
    len -= static_cast<std::size_t>(got);
  }
}

void send_frame(int fd, Op op, const void* payload, std::size_t len) {
  Frame frame;
  frame.op = static_cast<std::uint32_t>(op);
  frame.len = len;
  send_all(fd, &frame, sizeof(frame));
  if (len > 0) send_all(fd, payload, len);
}

Frame recv_frame(int fd) {
  Frame frame;
  recv_all(fd, &frame, sizeof(frame));
  return frame;
}

namespace {

void close_quietly(int fd) {
  if (fd >= 0) ::close(fd);
}

void sleep_ms(int ms) {
  struct timespec ts;
  ts.tv_sec = ms / 1000;
  ts.tv_nsec = static_cast<long>(ms % 1000) * 1000000L;
  ::nanosleep(&ts, nullptr);
}

}  // namespace

ProcessGroup::ProcessGroup(int num_workers, const WorkerMain& worker_main)
    : num_workers_(num_workers) {
  QUASAR_CHECK(num_workers_ >= 1 && num_workers_ <= kMaxProcRanks,
               "ProcessGroup: worker count out of range");
  pid_.fill(-1);
  control_.fill(-1);

  // All sockets exist before the first fork, so every child inherits the
  // full wiring and keeps only its own ends.
  int ctrl[kMaxProcRanks][2];
  for (auto& pair : ctrl) pair[0] = pair[1] = -1;
  // data[i][j]: slot i's end of the (i, j) pair, i != j.
  int data[kMaxProcRanks][kMaxProcRanks];
  for (auto& row : data) {
    for (int& fd : row) fd = -1;
  }
  bool socket_failed = false;
  for (int s = 0; s < num_workers_ && !socket_failed; ++s) {
    int pair[2];
    if (::socketpair(AF_UNIX, SOCK_STREAM, 0, pair) != 0) {
      socket_failed = true;
      break;
    }
    ctrl[s][0] = pair[0];
    ctrl[s][1] = pair[1];
  }
  for (int i = 0; i < num_workers_ && !socket_failed; ++i) {
    for (int j = i + 1; j < num_workers_ && !socket_failed; ++j) {
      int pair[2];
      if (::socketpair(AF_UNIX, SOCK_STREAM, 0, pair) != 0) {
        socket_failed = true;
        break;
      }
      data[i][j] = pair[0];
      data[j][i] = pair[1];
    }
  }

  const auto close_all_sockets = [&]() {
    for (int s = 0; s < num_workers_; ++s) {
      close_quietly(ctrl[s][0]);
      close_quietly(ctrl[s][1]);
      ctrl[s][0] = ctrl[s][1] = -1;
    }
    for (auto& row : data) {
      for (int& fd : row) {
        close_quietly(fd);
        fd = -1;
      }
    }
  };
  if (socket_failed) {
    close_all_sockets();
    throw Error("proc transport: socketpair failed");
  }

  for (int slot = 0; slot < num_workers_; ++slot) {
    const pid_t pid = ::fork();
    if (pid < 0) {
      // Kill and reap the workers already launched, release every fd.
      for (int s = 0; s < slot; ++s) {
        ::kill(pid_[s], SIGKILL);
        int status = 0;
        while (::waitpid(pid_[s], &status, 0) < 0 && errno == EINTR) {
        }
        pid_[s] = -1;
      }
      close_all_sockets();
      throw Error("proc transport: fork failed");
    }
    if (pid == 0) {
      // --- child (rank process) ---
      ::prctl(PR_SET_PDEATHSIG, SIGKILL);
      if (::getppid() == 1) std::_Exit(0);  // root died before prctl took
      ::signal(SIGPIPE, SIG_IGN);
      WorkerEndpoints ep;
      ep.slot = slot;
      ep.control_fd = ctrl[slot][1];
      ep.data_fd.fill(-1);
      for (int s = 0; s < num_workers_; ++s) {
        close_quietly(ctrl[s][0]);
        if (s != slot) close_quietly(ctrl[s][1]);
      }
      for (int i = 0; i < num_workers_; ++i) {
        for (int j = 0; j < num_workers_; ++j) {
          if (data[i][j] < 0) continue;
          if (i == slot) {
            ep.data_fd[static_cast<std::size_t>(j)] = data[i][j];
          } else {
            close_quietly(data[i][j]);
          }
        }
      }
      // Workers are strictly serial: only the forking thread survives in
      // the child, and pinning OpenMP to one thread means no region ever
      // touches the (not inherited) pool of the parent.
      omp_set_num_threads(1);
      // Forked workers never export traces; drop the inherited session so
      // instrumentation sites are no-ops (and cannot touch a mutex some
      // parent thread held at fork time). The forking thread may also
      // carry a per-job thread override (the job server forks from a
      // worker thread) — silence that too.
      obs::set_global_session(nullptr);
      obs::set_thread_session(nullptr);
      set_process_scratch_tag("r" + std::to_string(slot) + ".");
      try {
        worker_main(ep);
      } catch (...) {
      }
      std::_Exit(4);  // worker_main must exit the process itself
    }
    pid_[slot] = pid;
  }

  // --- root ---
  for (int s = 0; s < num_workers_; ++s) {
    control_[s] = ctrl[s][0];
    close_quietly(ctrl[s][1]);
  }
  for (auto& row : data) {
    for (int& fd : row) {
      close_quietly(fd);
      fd = -1;
    }
  }
}

ProcessGroup::~ProcessGroup() { shutdown(); }

void ProcessGroup::broadcast(Op op, const void* payload, std::size_t len) {
  // Collectives are lockstep SPMD: a dead member makes the operation
  // meaningless, so a broadcast over a partial group is an error, never
  // a silent no-op.
  for (int s = 0; s < num_workers_; ++s) {
    QUASAR_CHECK(alive(s),
                 "proc transport: collective with a dead rank process");
  }
  for (int s = 0; s < num_workers_; ++s) {
    send_frame(control_[s], op, payload, len);
  }
}

void ProcessGroup::send(int slot, Op op, const void* payload,
                        std::size_t len) {
  QUASAR_CHECK(alive(slot), "proc transport: rank process is not alive");
  send_frame(control_[slot], op, payload, len);
}

std::vector<std::uint8_t> ProcessGroup::wait_ack(int slot) {
  const Frame frame = recv_frame(control_[slot]);
  QUASAR_CHECK(frame.op == static_cast<std::uint32_t>(Op::kAck),
               "proc transport: expected ack frame");
  std::vector<std::uint8_t> payload(frame.len);
  if (frame.len > 0) recv_all(control_[slot], payload.data(), frame.len);
  return payload;
}

void ProcessGroup::wait_acks() {
  for (int s = 0; s < num_workers_; ++s) {
    if (alive(s)) wait_ack(s);
  }
}

void ProcessGroup::kill_worker(int slot, std::size_t stage) {
  QUASAR_CHECK(alive(slot), "kill_worker: rank process is not alive");
  const std::uint64_t payload = stage;
  send_frame(control_[slot], Op::kDie, &payload, sizeof(payload));
  int status = 0;
  while (::waitpid(pid_[slot], &status, 0) < 0 && errno == EINTR) {
  }
  close_quietly(control_[slot]);
  control_[slot] = -1;
  pid_[slot] = -1;
  QUASAR_CHECK(WIFEXITED(status) && WEXITSTATUS(status) == 137,
               "kill_worker: rank process did not exit with status 137");
}

void ProcessGroup::reap(int slot, bool allow_kill) noexcept {
  if (pid_[slot] <= 0) return;
  int status = 0;
  for (int spin = 0; spin < 200; ++spin) {  // ~2 s of 10 ms polls
    const pid_t got = ::waitpid(pid_[slot], &status, WNOHANG);
    if (got == pid_[slot]) {
      pid_[slot] = -1;
      return;
    }
    if (got < 0 && errno != EINTR) {
      pid_[slot] = -1;  // already reaped elsewhere
      return;
    }
    sleep_ms(10);
  }
  if (allow_kill) {
    ::kill(pid_[slot], SIGKILL);
    while (::waitpid(pid_[slot], &status, 0) < 0 && errno == EINTR) {
    }
  }
  pid_[slot] = -1;
}

void ProcessGroup::shutdown() noexcept {
  for (int s = 0; s < num_workers_; ++s) {
    if (!alive(s)) continue;
    try {
      send_frame(control_[s], Op::kShutdown, nullptr, 0);
    } catch (...) {
      // Worker already gone; reap below.
    }
  }
  for (int s = 0; s < num_workers_; ++s) {
    reap(s, /*allow_kill=*/true);
    close_quietly(control_[s]);
    control_[s] = -1;
  }
}

}  // namespace quasar::proc
