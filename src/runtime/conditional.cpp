#include "runtime/conditional.hpp"

#include <cmath>

#include "core/bits.hpp"
#include "core/error.hpp"

namespace quasar {

ConditionalGate condition_gate(const GateMatrix& matrix,
                               const std::vector<bool>& fixed,
                               Index fixed_bits) {
  const int k = matrix.num_qubits();
  QUASAR_CHECK(static_cast<int>(fixed.size()) == k,
               "condition_gate: flag count must match arity");
  const auto diag = matrix.diagonal_qubits();
  std::vector<int> free_qubits;
  int fixed_count = 0;
  for (int j = 0; j < k; ++j) {
    if (fixed[j]) {
      QUASAR_CHECK(diag[j],
                   "condition_gate: matrix acts non-diagonally on a fixed "
                   "(global) qubit — it cannot be specialized");
      ++fixed_count;
    } else {
      free_qubits.push_back(j);
    }
  }

  // Build the base index with the fixed bits in place.
  Index base = 0;
  {
    int fi = 0;
    for (int j = 0; j < k; ++j) {
      if (fixed[j]) {
        base = set_bit(base, j, get_bit(fixed_bits, fi));
        ++fi;
      }
    }
  }

  ConditionalGate result;
  const int free_k = static_cast<int>(free_qubits.size());
  GateMatrix sub = GateMatrix::zero(free_k);
  const Index dim = index_pow2(free_k);
  for (Index r = 0; r < dim; ++r) {
    Index row = base;
    for (int j = 0; j < free_k; ++j) {
      row = set_bit(row, free_qubits[j], get_bit(r, j));
    }
    for (Index c = 0; c < dim; ++c) {
      Index col = base;
      for (int j = 0; j < free_k; ++j) {
        col = set_bit(col, free_qubits[j], get_bit(c, j));
      }
      sub.at(r, c) = matrix.at(row, col);
    }
  }
  result.is_identity =
      sub.distance(GateMatrix::identity(free_k)) < 1e-14;
  if (free_k == 0) result.phase = sub.at(0, 0);
  result.matrix = std::move(sub);
  return result;
}

}  // namespace quasar
