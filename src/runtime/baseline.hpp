/// \file baseline.hpp
/// \brief The state-of-the-art baseline the paper compares against.
///
/// Implements the communication scheme of [19] as used by [5]/qHiPSTER:
/// a fixed qubit layout (no global-to-local swaps), gates executed one by
/// one, and every dense gate on a global qubit paid for with two pairwise
/// half-state exchanges. Diagonal global gates are applied in place
/// (qHiPSTER exploits diagonality too); the `specialization` option
/// controls whether single-qubit diagonal gates count as dense, matching
/// the worst-case/median distinction of Fig. 5.
#pragma once

#include "circuit/circuit.hpp"
#include "runtime/virtual_cluster.hpp"
#include "sched/schedule.hpp"
#include "simulator/statevector.hpp"

namespace quasar {

/// Options for the baseline run.
struct BaselineOptions {
  /// kWorstCase: single-qubit gates always communicate when global (the
  /// regime of [5]); kFull: diagonal single-qubit gates are free.
  SpecializationMode specialization = SpecializationMode::kWorstCase;
  ApplyOptions apply;
};

/// Gate-by-gate distributed simulator with pairwise-exchange global
/// gates. Supports the gate set of supremacy circuits and all gates whose
/// dense action touches at most one global qubit (single-qubit dense
/// gates); wider dense-global gates throw quasar::Error.
class BaselineSimulator {
 public:
  BaselineSimulator(int num_qubits, int num_local,
                    BaselineOptions options = {});

  int num_qubits() const noexcept { return cluster_.num_qubits(); }
  int num_local() const noexcept { return cluster_.num_local(); }

  void init_basis(Index index);
  void init_uniform();

  /// Runs the circuit gate by gate under the identity layout.
  void run(const Circuit& circuit);

  /// Reassembles the state vector (program order == layout order here).
  StateVector gather() const;

  Real norm_squared() const { return cluster_.norm_squared(); }
  const CommStats& stats() const { return cluster_.stats(); }

 private:
  void apply_op(const GateOp& op);

  VirtualCluster cluster_;
  BaselineOptions options_;
};

}  // namespace quasar
