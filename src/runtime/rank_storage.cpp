#include "runtime/rank_storage.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <utility>

#include "core/error.hpp"
#include "core/parse.hpp"
#include "core/scratch.hpp"
#include "obs/names.hpp"
#include "obs/trace.hpp"

namespace quasar {

namespace {

/// Fails early with a diagnostic naming the path when `directory` cannot
/// host backing files — a raw mkstemp errno ("Invalid argument") never
/// tells the user which knob to fix.
void require_writable_directory(const std::string& directory,
                                const char* what) {
  struct ::stat st;
  if (::stat(directory.c_str(), &st) != 0) {
    throw Error(std::string(what) + ": storage directory '" + directory +
                "' does not exist (StorageOptions::directory)");
  }
  if (!S_ISDIR(st.st_mode)) {
    throw Error(std::string(what) + ": storage path '" + directory +
                "' is not a directory (StorageOptions::directory)");
  }
  if (::access(directory.c_str(), W_OK | X_OK) != 0) {
    throw Error(std::string(what) + ": storage directory '" + directory +
                "' is not writable (StorageOptions::directory)");
  }
}

}  // namespace

StorageOptions storage_options_from_env(StorageOptions defaults) {
  StorageOptions opts = std::move(defaults);
  if (const char* v = std::getenv("QUASAR_STORAGE")) {
    const std::string s(v);
    if (s == "memory") {
      opts.medium = StorageMedium::kMemory;
    } else if (s == "disk") {
      opts.medium = StorageMedium::kDisk;
    } else if (s == "oocore") {
      opts.medium = StorageMedium::kOocore;
    } else {
      throw Error("QUASAR_STORAGE='" + s +
                  "' (expected memory, disk, or oocore)");
    }
  }
  if (const char* v = std::getenv("QUASAR_STORAGE_DIR")) {
    opts.directory = v;
  }
  if (const char* v = std::getenv("QUASAR_OOC_CODEC")) {
    opts.codec = oocore::codec_from_name(v);
  }
  if (const char* v = std::getenv("QUASAR_OOC_SEGMENT_KB")) {
    opts.segment_bytes =
        static_cast<std::size_t>(
            parse_int_in_range(v, 1, 1 << 22, "QUASAR_OOC_SEGMENT_KB"))
        << 10;
  }
  if (const char* v = std::getenv("QUASAR_OOC_IO_THREADS")) {
    opts.io_threads = parse_int_in_range(v, 1, 64, "QUASAR_OOC_IO_THREADS");
  }
  if (const char* v = std::getenv("QUASAR_OOC_PIPELINE_DEPTH")) {
    opts.pipeline_depth =
        parse_int_in_range(v, 1, 64, "QUASAR_OOC_PIPELINE_DEPTH");
  }
  return opts;
}

RankStorage::RankStorage(Index count, const StorageOptions& options)
    : count_(count), options_(options) {
  QUASAR_CHECK(count > 0, "RankStorage: empty buffer");
  if (options.medium == StorageMedium::kMemory) {
    heap_.assign(count, Amplitude{0.0, 0.0});
    data_ = heap_.data();
    return;
  }
  if (options.medium == StorageMedium::kOocore) {
    oocore::SegmentStoreOptions store_opts;
    store_opts.codec = options.codec;
    store_opts.segment_bytes = options.segment_bytes;
    store_opts.directory = options.directory;
    require_writable_directory(options.directory, "RankStorage");
    store_ = std::make_unique<oocore::SegmentStore>(count, store_opts);
    // Seed every slot with encoded zeros so reads are defined from the
    // start, exactly like ftruncate zero-fills the kDisk mapping.
    oocore::SegmentScratch scratch;
    AlignedVector<Amplitude> zeros(store_->segment_amps(),
                                   Amplitude{0.0, 0.0});
    for (std::size_t s = 0; s < store_->segment_count(); ++s) {
      store_->write_segment(s, zeros.data(), scratch);
    }
    return;
  }
  // Disk mode: unlinked temporary file + shared mapping.
  const std::size_t bytes = count * sizeof(Amplitude);
  void* mapping = map_backing_file(bytes, "RankStorage");
  data_ = static_cast<Amplitude*>(mapping);
  mapped_bytes_ = bytes;
  // ftruncate already zero-filled; declare the streaming access pattern.
  advise_sequential();
}

void* RankStorage::map_backing_file(std::size_t bytes,
                                    const std::string& what) {
  require_writable_directory(options_.directory, what.c_str());
  // The tag ("r<slot>." under the proc transport) namespaces each rank
  // process's scratch, so concurrent ranks sharing one directory stay
  // attributable and never contend on a pattern.
  std::string path =
      options_.directory + "/quasar_rank_" + process_scratch_tag() + "XXXXXX";
  const int fd = ::mkstemp(path.data());
  if (fd < 0) {
    throw Error(what + ": cannot create backing file in '" +
                options_.directory + "': " + std::strerror(errno));
  }
  ::unlink(path.c_str());  // anonymous: vanishes when unmapped
  if (::ftruncate(fd, static_cast<off_t>(bytes)) != 0) {
    const std::string detail = std::strerror(errno);
    ::close(fd);
    throw Error(what + ": cannot size backing file in '" +
                options_.directory + "' to " + std::to_string(bytes) +
                " bytes (disk full?): " + detail);
  }
  void* mapping =
      ::mmap(nullptr, bytes, PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
  if (mapping == MAP_FAILED) {
    const std::string detail = std::strerror(errno);
    ::close(fd);
    throw Error(what + ": mmap of " + std::to_string(bytes) +
                " bytes failed: " + detail);
  }
  // Keep the descriptor: flush_and_evict needs it to push the page-cache
  // copy out (posix_fadvise works on fds, not mappings).
  map_fd_ = fd;
  return mapping;
}

RankStorage::~RankStorage() { release(); }

RankStorage::RankStorage(RankStorage&& other) noexcept {
  *this = std::move(other);
}

RankStorage& RankStorage::operator=(RankStorage&& other) noexcept {
  if (this == &other) return *this;
  release();
  heap_ = std::move(other.heap_);
  store_ = std::move(other.store_);
  options_ = std::move(other.options_);
  // Moved-from heap vectors keep no storage; re-derive the pointer.
  data_ = other.mapped_bytes_ > 0 ? other.data_ : heap_.data();
  count_ = other.count_;
  mapped_bytes_ = other.mapped_bytes_;
  map_fd_ = other.map_fd_;
  resident_ = other.resident_;
  dirty_ = other.dirty_;
  other.data_ = nullptr;
  other.count_ = 0;
  other.mapped_bytes_ = 0;
  other.map_fd_ = -1;
  other.resident_ = false;
  other.dirty_ = false;
  return *this;
}

void RankStorage::release() noexcept {
  if (mapped_bytes_ > 0) {
    ::munmap(data_, mapped_bytes_);
    mapped_bytes_ = 0;
  }
  if (map_fd_ >= 0) {
    ::close(map_fd_);
    map_fd_ = -1;
  }
  heap_.clear();
  store_.reset();
  data_ = nullptr;
  count_ = 0;
  resident_ = false;
  dirty_ = false;
}

Amplitude* RankStorage::data() {
  if (store_ != nullptr) {
    if (!resident_) materialize();
    // A mutable access may write; the next dematerialize re-encodes.
    dirty_ = true;
  }
  return data_;
}

const Amplitude* RankStorage::data() const {
  if (store_ != nullptr && !resident_) {
    // Residency is a cache: materializing does not change the logical
    // state this object holds.
    const_cast<RankStorage*>(this)->materialize();
  }
  return data_;
}

void RankStorage::materialize() {
  if (mapped_bytes_ == 0) {
    const std::size_t bytes = count_ * sizeof(Amplitude);
    data_ = static_cast<Amplitude*>(
        map_backing_file(bytes, "RankStorage (oocore scratch)"));
    mapped_bytes_ = bytes;
  }
  const std::size_t segs = store_->segment_count();
  const Index amps = store_->segment_amps();
#pragma omp parallel
  {
    oocore::SegmentScratch scratch;
#pragma omp for schedule(dynamic)
    for (std::int64_t s = 0; s < static_cast<std::int64_t>(segs); ++s) {
      store_->read_segment(static_cast<std::size_t>(s),
                           data_ + static_cast<Index>(s) * amps, scratch);
    }
  }
  resident_ = true;
  dirty_ = false;
  if (obs::enabled()) obs::count(obs::names::kOocoreMaterializations);
}

void RankStorage::dematerialize() {
  if (store_ == nullptr || !resident_) return;
  if (dirty_) {
    const std::size_t segs = store_->segment_count();
    const Index amps = store_->segment_amps();
#pragma omp parallel
    {
      oocore::SegmentScratch scratch;
#pragma omp for schedule(dynamic)
      for (std::int64_t s = 0; s < static_cast<std::int64_t>(segs); ++s) {
        store_->write_segment(static_cast<std::size_t>(s),
                              data_ + static_cast<Index>(s) * amps, scratch);
      }
    }
    if (obs::enabled()) obs::count(obs::names::kOocoreDematerializations);
  }
  resident_ = false;
  dirty_ = false;
  // Scratch pages are stale now; let the kernel drop them.
  advise_dontneed();
}

void RankStorage::discard_resident() noexcept {
  resident_ = false;
  dirty_ = false;
  advise_dontneed();
}

void RankStorage::advise_sequential() noexcept {
  if (mapped_bytes_ > 0) {
    ::madvise(data_, mapped_bytes_, MADV_SEQUENTIAL);
  }
}

void RankStorage::advise_dontneed() noexcept {
  if (mapped_bytes_ > 0) {
    ::madvise(data_, mapped_bytes_, MADV_DONTNEED);
  }
}

void RankStorage::flush_and_evict() noexcept {
  flush_and_evict(0, count_);
}

void RankStorage::flush_and_evict(Index first, Index count) noexcept {
  if (mapped_bytes_ == 0 || count <= 0) return;
  // MADV_DONTNEED alone only drops the PTEs of a shared file mapping —
  // the page-cache copy survives and the "cold" re-read would come from
  // DRAM. Write the dirty pages out, then tell the kernel to drop the
  // cached file pages too, so the next touch goes to the device.
  const std::size_t page = 4096;
  std::size_t begin = static_cast<std::size_t>(first) * sizeof(Amplitude);
  std::size_t end =
      static_cast<std::size_t>(first + count) * sizeof(Amplitude);
  begin -= begin % page;
  end = std::min(mapped_bytes_, end + (page - end % page) % page);
  if (begin >= end) return;
  char* addr = reinterpret_cast<char*>(data_) + begin;
  const std::size_t len = end - begin;
  ::msync(addr, len, MS_SYNC);
  if (map_fd_ >= 0) {
    ::posix_fadvise(map_fd_, static_cast<off_t>(begin),
                    static_cast<off_t>(len), POSIX_FADV_DONTNEED);
  }
  ::madvise(addr, len, MADV_DONTNEED);
}

}  // namespace quasar
