#include "runtime/rank_storage.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <unistd.h>

#include <cstring>
#include <utility>

#include "core/error.hpp"

namespace quasar {

RankStorage::RankStorage(Index count, const StorageOptions& options)
    : count_(count) {
  QUASAR_CHECK(count > 0, "RankStorage: empty buffer");
  if (options.medium == StorageMedium::kMemory) {
    heap_.assign(count, Amplitude{0.0, 0.0});
    data_ = heap_.data();
    return;
  }
  // Disk mode: unlinked temporary file + shared mapping.
  std::string path = options.directory + "/quasar_rank_XXXXXX";
  const int fd = ::mkstemp(path.data());
  QUASAR_CHECK(fd >= 0, "RankStorage: cannot create backing file in " +
                            options.directory);
  ::unlink(path.c_str());  // anonymous: vanishes when unmapped
  const std::size_t bytes = count * sizeof(Amplitude);
  if (::ftruncate(fd, static_cast<off_t>(bytes)) != 0) {
    ::close(fd);
    throw Error("RankStorage: cannot size backing file (disk full?)");
  }
  void* mapping =
      ::mmap(nullptr, bytes, PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
  ::close(fd);  // the mapping keeps the file alive
  QUASAR_CHECK(mapping != MAP_FAILED, "RankStorage: mmap failed");
  data_ = static_cast<Amplitude*>(mapping);
  mapped_bytes_ = bytes;
  // ftruncate already zero-fills; nothing more to do.
}

RankStorage::~RankStorage() { release(); }

RankStorage::RankStorage(RankStorage&& other) noexcept {
  *this = std::move(other);
}

RankStorage& RankStorage::operator=(RankStorage&& other) noexcept {
  if (this == &other) return *this;
  release();
  heap_ = std::move(other.heap_);
  // Moved-from heap vectors keep no storage; re-derive the pointer.
  data_ = other.mapped_bytes_ > 0 ? other.data_ : heap_.data();
  count_ = other.count_;
  mapped_bytes_ = other.mapped_bytes_;
  other.data_ = nullptr;
  other.count_ = 0;
  other.mapped_bytes_ = 0;
  return *this;
}

void RankStorage::release() noexcept {
  if (mapped_bytes_ > 0) {
    ::munmap(data_, mapped_bytes_);
    mapped_bytes_ = 0;
  }
  heap_.clear();
  data_ = nullptr;
  count_ = 0;
}

}  // namespace quasar
