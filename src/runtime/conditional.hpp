/// \file conditional.hpp
/// \brief Global-gate specialization (paper Sec. 3.5).
///
/// A gate that acts diagonally on its global qubits block-diagonalizes
/// over the global bit values: on a rank whose global bits are b, the
/// gate reduces to the sub-matrix M_b on its local qubits. Examples from
/// the paper: a global CZ becomes a conditional phase or a local Z; a
/// global T becomes a pure phase absorbed later; a CNOT with a global
/// control becomes a rank-conditional X.
#pragma once

#include <vector>

#include "gates/matrix.hpp"

namespace quasar {

/// Result of conditioning a gate on fixed values of some of its qubits.
struct ConditionalGate {
  /// Sub-matrix on the remaining (non-fixed) gate qubits. 0-qubit (1x1)
  /// when every qubit was fixed; then `phase` carries the entry.
  GateMatrix matrix = GateMatrix::identity(0);
  /// True when the sub-matrix is the identity (nothing to apply).
  bool is_identity = false;
  /// Convenience: matrix.at(0,0) when the sub-matrix is 0-qubit.
  Amplitude phase{1.0, 0.0};
};

/// Conditions `matrix` on fixed bit values for the gate-local qubits
/// flagged in `fixed`; `fixed_bits` packs the values in ascending
/// gate-local qubit order (bit i of fixed_bits = value of the i-th fixed
/// qubit). Throws quasar::Error unless the matrix acts diagonally on
/// every fixed qubit.
ConditionalGate condition_gate(const GateMatrix& matrix,
                               const std::vector<bool>& fixed,
                               Index fixed_bits);

}  // namespace quasar
