#include "runtime/distributed.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <map>
#include <numeric>
#include <utility>

#include "check/invariant.hpp"
#include "ckpt/crc32c.hpp"
#include "core/bits.hpp"
#include "core/error.hpp"
#include "obs/names.hpp"
#include "obs/progress.hpp"
#include "obs/trace.hpp"
#include "runtime/conditional.hpp"
#include "sched/digest.hpp"
#include "sched/schedule_io.hpp"

namespace quasar {
namespace {

/// Gate-sweep count the invariant tolerances assume after executing
/// stages [0, cursor): the same per-stage accounting run() uses.
std::size_t ops_through_stage(const Schedule& schedule, std::size_t cursor) {
  std::size_t ops = 3;
  for (std::size_t si = 0; si < cursor && si < schedule.stages.size(); ++si) {
    ops += schedule.stages[si].items.size() + 3;
  }
  return ops;
}

}  // namespace

DistributedSimulator::DistributedSimulator(int num_qubits, int num_local,
                                           ApplyOptions options,
                                           StorageOptions storage,
                                           TransportKind transport)
    : comm_(make_communicator(num_qubits, num_local, std::move(storage),
                              options, transport)),
      options_(options) {
  mapping_.resize(num_qubits);
  std::iota(mapping_.begin(), mapping_.end(), 0);
  pending_phase_.assign(comm_->num_ranks(), Amplitude{1.0, 0.0});
}

const VirtualCluster& DistributedSimulator::cluster() const {
  return local_cluster();
}

VirtualCluster& DistributedSimulator::local_cluster() const {
  VirtualCluster* local = comm().local_cluster();
  QUASAR_CHECK(local != nullptr,
               "cluster(): the active transport does not expose an "
               "in-process cluster (QUASAR_TRANSPORT=proc); use "
               "rank_slice()/stats() for transport-agnostic reads");
  return *local;
}

void DistributedSimulator::init_basis(Index index) {
  comm_->init_basis(index);
  std::iota(mapping_.begin(), mapping_.end(), 0);
  std::fill(pending_phase_.begin(), pending_phase_.end(),
            Amplitude{1.0, 0.0});
}

void DistributedSimulator::init_uniform() {
  comm_->init_uniform();
  std::iota(mapping_.begin(), mapping_.end(), 0);
  std::fill(pending_phase_.begin(), pending_phase_.end(),
            Amplitude{1.0, 0.0});
}

void DistributedSimulator::run(const Circuit& circuit,
                               const Schedule& schedule) {
  QUASAR_CHECK(schedule.num_qubits == num_qubits() &&
                   schedule.num_local == num_local(),
               "run: schedule was built for a different configuration");
  QUASAR_CHECK(schedule.options.build_matrices,
               "run: schedule lacks fused matrices "
               "(ScheduleOptions::build_matrices was false)");
  QUASAR_OBS_SPAN("run", "distributed_run", "stages",
                  static_cast<std::int64_t>(schedule.stages.size()));
  obs::ProgressRun progress(static_cast<int>(schedule.stages.size()));
  const bool validate = check::enabled();
  Real norm_before = 0.0;
  std::size_t ops_done = 0;
  if (validate) norm_before = comm_->norm_squared();
  for (std::size_t si = 0; si < schedule.stages.size(); ++si) {
    const Stage& stage = schedule.stages[si];
    QUASAR_OBS_SPAN("stage", "stage", "stage",
                    static_cast<std::int64_t>(si));
    transition(mapping_, stage.qubit_to_location);
    mapping_ = stage.qubit_to_location;
    execute_stage(circuit, stage);
    if (validate) {
      ops_done += stage.items.size() + 3;  // items + transition sweeps
      const std::string site =
          "DistributedSimulator::run stage " + std::to_string(si);
      validate_invariants(site.c_str(), norm_before, ops_done);
    }
    progress.stage_completed(static_cast<int>(si) + 1);
  }
}

std::size_t DistributedSimulator::run(const Circuit& circuit,
                                      const Schedule& schedule,
                                      const CheckpointedRun& ckpt_run) {
  QUASAR_CHECK(ckpt_run.writer != nullptr,
               "run: CheckpointedRun requires a writer");
  QUASAR_CHECK(ckpt_run.snapshot_every >= 1,
               "run: snapshot_every must be >= 1");
  QUASAR_CHECK(schedule.num_qubits == num_qubits() &&
                   schedule.num_local == num_local(),
               "run: schedule was built for a different configuration");
  QUASAR_CHECK(schedule.options.build_matrices,
               "run: schedule lacks fused matrices "
               "(ScheduleOptions::build_matrices was false)");
  QUASAR_CHECK(ckpt_run.first_stage <= schedule.stages.size(),
               "run: first_stage is beyond the end of the schedule");
  ckpt::CheckpointWriter& writer = *ckpt_run.writer;
  const std::uint32_t schedule_crc =
      sched::schedule_digest(circuit, schedule.options);
  const std::size_t num_stages = schedule.stages.size();
  QUASAR_OBS_SPAN("run", "distributed_run", "stages",
                  static_cast<std::int64_t>(num_stages));
  obs::ProgressRun progress(static_cast<int>(num_stages),
                            static_cast<int>(ckpt_run.first_stage));
  const bool validate = check::enabled();
  Real norm_before = 0.0;
  std::size_t ops_done = 0;
  if (validate) norm_before = comm_->norm_squared();
  const std::optional<int> kill_at = writer.fault().kill_stage();
  if (kill_at && comm_->multiprocess()) {
    // Under the proc transport a fault must land in a real rank process
    // first: the delegate kills one worker (exit 137) and tears down the
    // survivors before the injector takes the root down.
    writer.fault().set_kill_delegate([this](std::size_t stage) {
      comm_->kill_rank_for_fault(stage);
    });
  }
  // The newest boundary already on disk: the resumed-from snapshot for a
  // restarted run, none for a fresh one. Preemption snapshots only when
  // the stop boundary isn't covered yet.
  std::size_t last_snapshot = ckpt_run.first_stage > 0
                                  ? ckpt_run.first_stage
                                  : static_cast<std::size_t>(-1);
  for (std::size_t si = ckpt_run.first_stage; si < num_stages; ++si) {
    if (ckpt_run.stop != nullptr &&
        ckpt_run.stop->load(std::memory_order_acquire)) {
      // Preempted (job-server eviction or SIGINT/SIGTERM): persist this
      // boundary, drain the writer, and hand the cursor back so a
      // resume() continues bit-identically from here.
      if (last_snapshot != si) {
        checkpoint(writer, si, ckpt_run.rng, schedule_crc);
      }
      writer.wait_idle();
      return si;
    }
    if (kill_at && static_cast<std::size_t>(*kill_at) == si) {
      // Drain the in-flight snapshot first: the newest generation on disk
      // at the moment of "death" is then always a committed boundary, so
      // what a restart recovers is deterministic and testable.
      writer.wait_idle();
      writer.fault().kill(si);
    }
    const Stage& stage = schedule.stages[si];
    QUASAR_OBS_SPAN("stage", "stage", "stage",
                    static_cast<std::int64_t>(si));
    transition(mapping_, stage.qubit_to_location);
    mapping_ = stage.qubit_to_location;
    execute_stage(circuit, stage);
    if (validate) {
      ops_done += stage.items.size() + 3;  // items + transition sweeps
      const std::string site =
          "DistributedSimulator::run stage " + std::to_string(si);
      validate_invariants(site.c_str(), norm_before, ops_done);
    }
    if ((si + 1) % static_cast<std::size_t>(ckpt_run.snapshot_every) == 0 ||
        (si + 1 == num_stages && ckpt_run.final_snapshot)) {
      checkpoint(writer, si + 1, ckpt_run.rng, schedule_crc);
      last_snapshot = si + 1;
    }
    progress.stage_completed(static_cast<int>(si) + 1);
  }
  return num_stages;
}

void DistributedSimulator::checkpoint(ckpt::CheckpointWriter& writer,
                                      std::size_t cursor, const Rng* rng,
                                      std::uint32_t schedule_crc) const {
  // Charged to the "checkpoint" category as a child of the enclosing
  // stage span, so run_report() shows snapshot overhead per stage.
  QUASAR_OBS_SPAN("checkpoint", "snapshot_stage", "cursor",
                  static_cast<std::int64_t>(cursor));
  writer.wait_idle();
  ckpt::Snapshot& snap = writer.staging();
  ckpt::Manifest& m = snap.manifest;
  m.engine = "fp64";
  m.num_qubits = num_qubits();
  m.num_local = num_local();
  m.cursor = cursor;
  m.schedule_crc = schedule_crc;
  m.norm_squared = comm().norm_squared();
  m.mapping = mapping_;
  m.rng_state = rng != nullptr ? rng->serialize() : std::string();
  m.pending_phase.assign(pending_phase_.begin(), pending_phase_.end());
  m.shards.clear();
  const int ranks = comm().num_ranks();
  const std::size_t bytes =
      static_cast<std::size_t>(comm().local_size()) * sizeof(Amplitude);
  snap.shard_bytes.resize(ranks);
  for (int r = 0; r < ranks; ++r) {
    snap.shard_bytes[r].resize(bytes);
    std::memcpy(snap.shard_bytes[r].data(), comm().slice(r), bytes);
  }
  writer.commit();
}

std::size_t DistributedSimulator::resume(const ckpt::LoadedSnapshot& snapshot,
                                         const Circuit& circuit,
                                         const Schedule& schedule, Rng* rng) {
  QUASAR_OBS_SPAN("checkpoint", "resume");
  constexpr const char* kSite = "DistributedSimulator::resume";
  const ckpt::Manifest& m = snapshot.manifest;
  const auto fail = [&](const std::string& what) {
    throw check::ValidationError(std::string(kSite) + ": " + what);
  };
  if (m.engine != "fp64") {
    fail("snapshot engine is '" + m.engine + "', this simulator is fp64");
  }
  if (m.num_qubits != num_qubits() || m.num_local != num_local()) {
    fail("snapshot geometry " + std::to_string(m.num_qubits) + "q/" +
         std::to_string(m.num_local) + "l does not match simulator " +
         std::to_string(num_qubits()) + "q/" + std::to_string(num_local()) +
         "l");
  }
  if (m.cursor > schedule.stages.size()) {
    fail("cursor " + std::to_string(m.cursor) + " is beyond the " +
         std::to_string(schedule.stages.size()) + "-stage schedule");
  }
  if (m.schedule_crc != 0 &&
      m.schedule_crc != sched::schedule_digest(circuit, schedule.options)) {
    fail("snapshot was taken against a different circuit or scheduling "
         "options (schedule digest mismatch)");
  }
  // The snapshot is untrusted input: every invariant is verified before
  // any member is overwritten, unconditionally (not QUASAR_VALIDATE-gated).
  check::require_bijection(m.mapping, num_qubits(), kSite);
  if (m.cursor > 0 &&
      m.mapping != schedule.stages[m.cursor - 1].qubit_to_location) {
    fail("snapshot mapping does not match the stage " +
         std::to_string(m.cursor - 1) + " boundary mapping");
  }
  const std::size_t ops = ops_through_stage(schedule, m.cursor);
  check::require_unit_phases(m.pending_phase, check::phase_tolerance(ops),
                             kSite);
  const int ranks = comm_->num_ranks();
  if (static_cast<int>(m.pending_phase.size()) != ranks) {
    fail("snapshot carries " + std::to_string(m.pending_phase.size()) +
         " deferred phases for " + std::to_string(ranks) + " ranks");
  }
  if (static_cast<int>(snapshot.shard_bytes.size()) != ranks) {
    fail("snapshot carries " + std::to_string(snapshot.shard_bytes.size()) +
         " shards for " + std::to_string(ranks) + " ranks");
  }
  const Index count = comm_->local_size();
  const std::size_t bytes = static_cast<std::size_t>(count) *
                            sizeof(Amplitude);
  for (int r = 0; r < ranks; ++r) {
    if (snapshot.shard_bytes[r].size() != bytes) {
      fail("shard " + std::to_string(r) + " holds " +
           std::to_string(snapshot.shard_bytes[r].size()) +
           " bytes, expected " + std::to_string(bytes));
    }
  }
  Real norm = 0.0;
  for (int r = 0; r < ranks; ++r) {
    const auto* amps = reinterpret_cast<const std::complex<double>*>(
        snapshot.shard_bytes[r].data());
    check::require_finite(amps, count, kSite);
    norm += check::norm_squared(amps, count);
  }
  check::require_norm_preserved(norm, m.norm_squared,
                                check::norm_tolerance(num_qubits(), ops),
                                kSite);
  // Everything verified — install the state.
  for (int r = 0; r < ranks; ++r) {
    comm_->write_slice(r, reinterpret_cast<const Amplitude*>(
                              snapshot.shard_bytes[r].data()));
  }
  mapping_ = m.mapping;
  pending_phase_ = m.pending_phase;
  if (rng != nullptr && !m.rng_state.empty()) rng->restore(m.rng_state);
  obs::count(obs::names::kCkptResumes);
  return m.cursor;
}

void DistributedSimulator::validate_invariants(const char* site,
                                               Real norm_before,
                                               std::size_t ops) const {
  check::require_bijection(mapping_, num_qubits(), site);
  check::require_unit_phases(pending_phase_, check::phase_tolerance(ops),
                             site);
  for (int r = 0; r < comm().num_ranks(); ++r) {
    check::require_finite(comm().slice(r), comm().local_size(), site);
  }
  // A lossy shard codec truncates amplitudes to fp32 on every segment
  // round trip, so norm drift is bounded by the fp32 epsilon, not fp64.
  const Real eps = oocore::codec_lossless(comm().storage().codec)
                       ? check::kEps64
                       : check::kEps32;
  check::require_norm_preserved(comm().norm_squared(), norm_before,
                                check::norm_tolerance(num_qubits(), ops, eps),
                                site);
}

void DistributedSimulator::run(const Circuit& circuit,
                               const ScheduleOptions& options) {
  run(circuit, make_schedule(circuit, options));
}

void DistributedSimulator::execute_stage(const Circuit& circuit,
                                         const Stage& stage) {
  const VirtualCluster* local = comm_->local_cluster();
  if (local != nullptr && local->segmented()) {
    // Segmented storage: stream gate work through the async pipeline
    // instead of materializing flat slices (runtime/oocore_exec.cpp).
    execute_stage_oocore(circuit, stage);
    return;
  }
  for (const StageItem& item : stage.items) {
    if (item.kind == StageItem::Kind::kCluster) {
      const Cluster& cluster = stage.clusters[item.cluster];
      QUASAR_ASSERT(cluster.matrix.has_value());
      QUASAR_OBS_SPAN("gate_run", "cluster", "width",
                      static_cast<std::int64_t>(cluster.width()));
      comm_->apply_gate_all(*cluster.matrix, cluster.qubits, options_);
    } else {
      QUASAR_OBS_SPAN("gate_run", "global_op");
      apply_global_op(circuit.op(item.op), stage);
    }
  }
}

void DistributedSimulator::apply_global_op(const GateOp& op,
                                           const Stage& stage) {
  const int l = num_local();
  // Which gate-local qubits sit on global locations, and where the local
  // ones live.
  std::vector<bool> fixed(op.arity(), false);
  std::vector<int> global_bits;   // rank-bit positions, ascending gate order
  std::vector<int> local_locations;
  for (int j = 0; j < op.arity(); ++j) {
    const int loc = stage.location(op.qubits[j]);
    if (loc >= l) {
      fixed[j] = true;
      global_bits.push_back(loc - l);
    } else {
      local_locations.push_back(loc);
    }
  }
  QUASAR_ASSERT(!global_bits.empty());

  // A non-diagonal phased permutation entirely on global qubits (X, Y,
  // CNOT, SWAP): pure rank renumbering plus per-rank phases — zero data
  // volume (Sec. 3.5).
  if (!op.diagonal && local_locations.empty()) {
    const auto perm = op.matrix->phased_permutation();
    QUASAR_CHECK(perm.has_value(),
                 "apply_global_op: a dense all-global gate reached the "
                 "executor; the scheduler should have forced a swap");
    const int ranks = comm_->num_ranks();
    std::vector<Index> source_of(ranks);
    std::vector<Amplitude> next_phase(ranks);
    for (int r = 0; r < ranks; ++r) {
      Index col = 0;
      for (std::size_t j = 0; j < global_bits.size(); ++j) {
        col |= static_cast<Index>(
                   get_bit(static_cast<Index>(r), global_bits[j]))
               << j;
      }
      const Index row = perm->target[col];
      Index dest = static_cast<Index>(r);
      for (std::size_t j = 0; j < global_bits.size(); ++j) {
        dest = set_bit(dest, global_bits[j],
                       get_bit(row, static_cast<int>(j)));
      }
      source_of[dest] = static_cast<Index>(r);
      next_phase[dest] = pending_phase_[r] * perm->phase[col];
    }
    comm_->permute_ranks(source_of);
    pending_phase_ = std::move(next_phase);
    return;
  }

  // The conditioned sub-gate depends only on the rank's bits at
  // global_bits; cache per bit pattern.
  std::map<Index, ConditionalGate> cache;
  for (int r = 0; r < comm_->num_ranks(); ++r) {
    Index pattern = 0;
    for (std::size_t i = 0; i < global_bits.size(); ++i) {
      pattern |= static_cast<Index>(
                     get_bit(static_cast<Index>(r), global_bits[i]))
                 << i;
    }
    auto it = cache.find(pattern);
    if (it == cache.end()) {
      it = cache.emplace(pattern,
                         condition_gate(*op.matrix, fixed, pattern)).first;
    }
    const ConditionalGate& cond = it->second;
    if (cond.is_identity) continue;
    if (cond.matrix.num_qubits() == 0) {
      // Pure phase: deferred and absorbed at gather/analysis time
      // (Sec. 3.5: "a global phase, which can be absorbed").
      pending_phase_[r] *= cond.phase;
      continue;
    }
    comm_->apply_gate_rank(r, cond.matrix, local_locations, options_);
  }
}

void DistributedSimulator::remap(const std::vector<int>& to) {
  QUASAR_CHECK(static_cast<int>(to.size()) == num_qubits(),
               "remap: mapping must cover every qubit");
  std::vector<bool> used(to.size(), false);
  for (int loc : to) {
    QUASAR_CHECK(loc >= 0 && loc < num_qubits() && !used[loc],
                 "remap: mapping must be a bijection on bit-locations");
    used[loc] = true;
  }
  const bool validate = check::enabled();
  Real norm_before = 0.0;
  if (validate) norm_before = comm_->norm_squared();
  transition(mapping_, to);
  mapping_ = to;
  if (validate) {
    validate_invariants("DistributedSimulator::remap", norm_before, 3);
  }
}

void DistributedSimulator::transition(const std::vector<int>& from,
                                      const std::vector<int>& to) {
  if (from == to) return;
  const int n = num_qubits();
  const int l = num_local();
  std::vector<int> cur = from;
  std::vector<Qubit> at(n);  // location -> qubit
  for (Qubit q = 0; q < n; ++q) at[cur[q]] = q;

  // Qubits crossing the local/global boundary, paired index-for-index.
  std::vector<Qubit> incoming, outgoing;  // to-local / to-global
  for (Qubit q = 0; q < n; ++q) {
    const bool was_global = cur[q] >= l;
    const bool is_global = to[q] >= l;
    if (was_global && !is_global) incoming.push_back(q);
    if (!was_global && is_global) outgoing.push_back(q);
  }
  QUASAR_ASSERT(incoming.size() == outgoing.size());
  const int q_move = static_cast<int>(incoming.size());

  // 1. One fused local bit-permutation sweep. Every stay-local qubit
  // moves straight to its final location; outgoing qubit i parks at the
  // location its paired incoming qubit must end up in, so the exchange
  // below lands incoming qubits at their final spots directly. Both
  // target sets together cover [0, l) exactly (to restricted to
  // stay-local + incoming qubits is onto the local locations), so this
  // is a bijection. When an all-to-all follows, the deferred per-rank
  // phases are folded into the same sweep — amplitudes scale before any
  // of them changes rank, which is exactly what a separate flush did.
  std::vector<int> park_location(n, -1);  // outgoing qubit -> park slot
  for (int i = 0; i < q_move; ++i) {
    park_location[outgoing[i]] = to[incoming[i]];
  }
  std::vector<int> local_perm(l);
  for (Qubit q = 0; q < n; ++q) {
    if (cur[q] >= l) continue;
    const int target = to[q] < l ? to[q] : park_location[q];
    local_perm[target] = cur[q];
  }
  if (q_move > 0) {
    comm_->local_permute(local_perm, &pending_phase_, options_);
    std::fill(pending_phase_.begin(), pending_phase_.end(),
              Amplitude{1.0, 0.0});
  } else {
    comm_->local_permute(local_perm, nullptr, options_);
  }
  {
    std::vector<Qubit> prev_at(at.begin(), at.begin() + l);
    for (int j = 0; j < l; ++j) {
      at[j] = prev_at[local_perm[j]];
      cur[at[j]] = j;
    }
  }

  // 2. One (group) all-to-all pairing each incoming qubit's global
  // location with the local location it lands on (where its partner
  // outgoing qubit was just parked) — no parking swap chain.
  if (q_move > 0) {
    std::vector<std::pair<int, int>> pairs;  // (global loc, local loc)
    for (int i = 0; i < q_move; ++i) {
      pairs.emplace_back(cur[incoming[i]], to[incoming[i]]);
    }
    std::sort(pairs.begin(), pairs.end());
    std::vector<int> global_locations, local_positions;
    for (const auto& [gloc, lloc] : pairs) {
      global_locations.push_back(gloc);
      local_positions.push_back(lloc);
    }
    comm_->alltoall_swap(global_locations, local_positions);
    for (const auto& [gloc, lloc] : pairs) {
      const Qubit qg = at[gloc], ql = at[lloc];
      std::swap(at[gloc], at[lloc]);
      cur[qg] = lloc;
      cur[ql] = gloc;
    }
  }

  // 3. Global-global permutation = rank renumbering (zero volume).
  bool global_moves = false;
  for (Qubit q = 0; q < n; ++q) global_moves |= cur[q] != to[q];
  if (global_moves) {
    const int g = n - l;
    std::vector<int> perm(g);
    for (int j = 0; j < g; ++j) {
      const Qubit q = at[l + j];  // currently at global bit j
      perm[to[q] - l] = j;        // new rank bit (to[q]-l) = old bit j
    }
    bool identity = true;
    for (int j = 0; j < g; ++j) identity &= perm[j] == j;
    if (!identity) {
      comm_->renumber_ranks(perm);
      // The deferred per-rank phases move with their slices.
      std::vector<Amplitude> next_phase(pending_phase_.size());
      for (int r = 0; r < comm_->num_ranks(); ++r) {
        Index src = 0;
        for (int j = 0; j < g; ++j) {
          src |= static_cast<Index>(get_bit(static_cast<Index>(r), j))
                 << perm[j];
        }
        next_phase[r] = pending_phase_[src];
      }
      pending_phase_.swap(next_phase);
    }
  }
}

StateVector DistributedSimulator::gather() const {
  const int n = num_qubits();
  QUASAR_CHECK(n <= 28, "gather: state too large to reassemble");
  const int l = num_local();
  StateVector out(n);
  const Index local_mask = index_pow2(l) - 1;
  // Pin every slice once up front: under the proc transport slice()
  // fetches over the wire on first touch, and the returned pointers stay
  // valid until the next mutating collective.
  const int ranks = comm().num_ranks();
  std::vector<const Amplitude*> slices(ranks);
  for (int r = 0; r < ranks; ++r) slices[r] = comm().slice(r);
  for (Index p = 0; p < out.size(); ++p) {
    Index machine = 0;
    for (int q = 0; q < n; ++q) {
      machine |= static_cast<Index>(get_bit(p, q)) << mapping_[q];
    }
    const int rank = static_cast<int>(machine >> l);
    out[p] = slices[rank][machine & local_mask] * pending_phase_[rank];
  }
  return out;
}

Amplitude DistributedSimulator::amplitude(Index program_index) const {
  QUASAR_CHECK(program_index < index_pow2(num_qubits()),
               "amplitude: basis index out of range");
  const int l = num_local();
  Index machine = 0;
  for (int q = 0; q < num_qubits(); ++q) {
    machine |= static_cast<Index>(get_bit(program_index, q)) << mapping_[q];
  }
  const int rank = static_cast<int>(machine >> l);
  return comm().slice(rank)[machine & (comm().local_size() - 1)] *
         pending_phase_[rank];
}

std::vector<Index> DistributedSimulator::sample(int count, Rng& rng) const {
  QUASAR_CHECK(count >= 0, "sample count must be non-negative");
  QUASAR_OBS_SPAN("measure", "sample", "count",
                  static_cast<std::int64_t>(count));
  const int n = num_qubits();
  const int l = num_local();
  const Index local_mask = index_pow2(l) - 1;

  // Sorted uniforms resolved against one sequential cumulative scan in
  // PROGRAM order, accumulating std::norm(raw * pending_phase) — the
  // exact expression and summation order sample_outcomes() sees on the
  // gathered state. This makes distributed sampling bit-for-bit
  // reproducible against the single-node path under the same seed. The
  // previous implementation walked ranks in machine order with per-rank
  // partial masses; whenever the qubit mapping was not the identity its
  // traversal order (and its rounding) diverged from the gathered scan,
  // so identical seeds produced different outcome streams — exactly the
  // class of cross-engine bug the differential fuzzer flags.
  std::vector<Real> thresholds(count);
  for (auto& u : thresholds) u = rng.uniform_real();
  std::sort(thresholds.begin(), thresholds.end());

  const int ranks = comm().num_ranks();
  std::vector<const Amplitude*> slices(ranks);
  for (int r = 0; r < ranks; ++r) slices[r] = comm().slice(r);

  std::vector<Index> outcomes;
  outcomes.reserve(count);
  Real cumulative = 0.0;
  std::size_t next = 0;
  const Index size = index_pow2(n);
  for (Index p = 0; p < size && next < thresholds.size(); ++p) {
    Index machine = 0;
    for (int q = 0; q < n; ++q) {
      machine |= static_cast<Index>(get_bit(p, q)) << mapping_[q];
    }
    const int rank = static_cast<int>(machine >> l);
    cumulative += std::norm(slices[rank][machine & local_mask] *
                            pending_phase_[rank]);
    while (next < thresholds.size() && thresholds[next] < cumulative) {
      outcomes.push_back(p);
      ++next;
    }
  }
  // Rounding at the top end: leftovers land on the last program-order
  // basis state, mirroring sample_outcomes().
  while (next++ < thresholds.size()) outcomes.push_back(size - 1);
  return outcomes;
}

Real DistributedSimulator::entropy() const {
  QUASAR_OBS_SPAN("measure", "entropy");
  Real total = 0.0;
  const Index size = comm().local_size();
  for (int r = 0; r < comm().num_ranks(); ++r) {
    const Amplitude* data = comm().slice(r);
    Real partial = 0.0;
#pragma omp parallel for schedule(static) reduction(+ : partial)
    for (std::int64_t i = 0; i < static_cast<std::int64_t>(size); ++i) {
      const Real p = std::norm(data[i]);
      if (p > 0.0) partial -= p * std::log(p);
    }
    total += partial;  // the "final reduction" of Sec. 4.2.2
  }
  return total;
}

}  // namespace quasar
