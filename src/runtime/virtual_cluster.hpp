/// \file virtual_cluster.hpp
/// \brief In-process stand-in for the MPI machine (see DESIGN.md §3).
///
/// Holds 2^g rank-local state-vector slices of 2^l amplitudes each and
/// implements the communication primitives of Sec. 3.4 bit-exactly:
///   - the (group) all-to-all that swaps q global qubits with the q
///     highest-order local qubits (Fig. 3);
///   - rank renumbering (global permutations, e.g. a CNOT on global
///     qubits, Sec. 3.5);
///   - per-rank local bit swaps (executed with the swap kernels);
///   - the baseline pairwise half-state exchange of [19]/[5].
/// Every primitive updates CommStats. A real MPI backend would implement
/// the same primitives SPMD-style behind the same call signatures.
#pragma once

#include <vector>

#include "core/aligned.hpp"
#include "core/bits.hpp"
#include "core/types.hpp"
#include "gates/matrix.hpp"
#include "kernels/apply.hpp"
#include "runtime/comm.hpp"
#include "runtime/rank_storage.hpp"

namespace quasar {

/// 2^g ranks, each owning 2^l amplitudes.
class VirtualCluster {
 public:
  /// \param num_qubits total qubits n; \param num_local local qubits l.
  /// g = n - l global qubits => 2^(n-l) ranks. `storage` selects DRAM or
  /// SSD-backed rank slices (Sec. 5 outlook).
  explicit VirtualCluster(int num_qubits, int num_local,
                          StorageOptions storage = {});

  int num_qubits() const noexcept { return num_qubits_; }
  int num_local() const noexcept { return num_local_; }
  int num_global() const noexcept { return num_qubits_ - num_local_; }
  int num_ranks() const {
    // checked: 2^g silently truncates through a bare static_cast once
    // g >= 31, and every rank loop bounds itself on this value.
    return checked_int(index_pow2(num_global()), "VirtualCluster rank count");
  }
  Index local_size() const noexcept { return index_pow2(num_local_); }

  /// Mutable access to one rank's slice. On segmented (kOocore) storage
  /// this materializes the slice into its disk-backed scratch first; the
  /// pipelined stage executor avoids these calls and streams segments
  /// instead (runtime/oocore_exec.cpp).
  Amplitude* rank_data(int rank) { return buffers_[rank].data(); }
  const Amplitude* rank_data(int rank) const { return buffers_[rank].data(); }
  /// Direct access to one rank's storage object (segment store,
  /// residency control). Used by the out-of-core executor and tests.
  RankStorage& rank_storage(int rank) { return buffers_[rank]; }
  const RankStorage& rank_storage(int rank) const { return buffers_[rank]; }
  /// True when slices live in segmented out-of-core storage.
  bool segmented() const noexcept {
    return storage_.medium == StorageMedium::kOocore;
  }
  /// Storage configuration in effect.
  const StorageOptions& storage() const noexcept { return storage_; }

  /// Initializes the distributed state to the basis state |index>.
  void init_basis(Index index);
  /// Initializes every amplitude to 2^(-n/2) (post-Hadamard-layer state).
  void init_uniform();

  /// Swaps the global bit-locations `global_locations` (all >= l, sorted
  /// ascending) with the highest |global_locations| local bit-locations,
  /// via one (group) all-to-all. Swapping all g globals is one world
  /// all-to-all. Executed in place with a bounded bounce buffer
  /// (StorageOptions::bounce_buffer_bytes): peak footprint is 1+epsilon
  /// times the state, never 2x.
  void alltoall_swap(const std::vector<int>& global_locations);

  /// Generalized form: swaps global_locations[i] with the arbitrary
  /// local bit-location local_positions[i] (pairwise, one group
  /// all-to-all). Lets a stage transition skip the parking swap chain:
  /// outgoing qubits are exchanged straight from wherever they sit.
  void alltoall_swap(const std::vector<int>& global_locations,
                     const std::vector<int>& local_positions);

  /// One fused local bit-permutation sweep over every rank (single pass,
  /// in place): location j afterwards holds what location perm[j] held.
  /// If `rank_phase` is non-null, rank r's amplitudes are additionally
  /// multiplied by (*rank_phase)[r] during the same pass — this is how
  /// deferred per-rank phases are flushed without a dedicated sweep.
  void local_permute(const std::vector<int>& perm,
                     const std::vector<Amplitude>* rank_phase = nullptr,
                     const ApplyOptions& options = {});

  /// Applies a permutation of the global bit-locations by renumbering
  /// ranks (zero data volume). perm maps global-bit j (0-based within the
  /// global bits) to the global bit whose value it takes: new rank bit j
  /// = old rank bit perm[j].
  void renumber_ranks(const std::vector<int>& perm);

  /// General rank renumbering: after the call, rank r holds what rank
  /// source_of[r] held. Must be a bijection. Used for global
  /// permutation gates (X/CNOT/SWAP on global qubits, Sec. 3.5) whose
  /// action is a rank permutation that need not be a bit permutation.
  void permute_ranks(const std::vector<Index>& source_of);

  /// Swaps two local bit-locations on every rank (kernel sweep).
  void local_swap(int p, int q, const ApplyOptions& options = {});

  /// Baseline [19] primitive: applies a dense single-qubit gate on global
  /// bit-location `location` using two pairwise half-state exchanges.
  void pairwise_global_gate(const GateMatrix& gate, int location,
                            const ApplyOptions& options = {});

  /// Total squared norm across ranks.
  Real norm_squared() const;

  /// Communication counters.
  const CommStats& stats() const noexcept { return stats_; }
  CommStats& stats() noexcept { return stats_; }

 private:
  /// Constant fill of every slice; writes segment stores directly on
  /// kOocore so initialization never materializes the flat slices.
  void init_fill(Amplitude value);

  int num_qubits_;
  int num_local_;
  StorageOptions storage_;
  std::vector<RankStorage> buffers_;
  CommStats stats_;
};

}  // namespace quasar
