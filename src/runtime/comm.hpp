/// \file comm.hpp
/// \brief Communication accounting shared by the multi-node simulators.
///
/// The in-process virtual cluster is bit-exact about *what* moves; the
/// perfmodel layer converts these counts into modeled wall-clock for the
/// machines of the paper (Sec. 4). One full global-to-local swap is one
/// all-to-all; one dense global gate in the baseline scheme is two
/// pairwise half-state exchanges — the same volume (Sec. 3.4).
#pragma once

#include <cstdint>

namespace quasar {

/// Tallies of the communication a run performed.
struct CommStats {
  /// World or group all-to-alls executed (global-to-local swaps).
  std::uint64_t alltoalls = 0;
  /// Pairwise half-state exchange rounds (baseline global gates; one
  /// dense global gate = 2 rounds).
  std::uint64_t pairwise_exchanges = 0;
  /// Bytes sent per rank, summed over operations (send side only).
  std::uint64_t bytes_sent_per_rank = 0;
  /// Local bit-swap sweeps executed around the all-to-alls.
  std::uint64_t local_swap_sweeps = 0;
  /// Fused local bit-permutation sweeps (one counts a single pass over
  /// the whole distributed state, covering every rank).
  std::uint64_t local_permutation_sweeps = 0;
  /// Amplitude bytes passed over by the fused permutation sweeps.
  std::uint64_t local_permutation_bytes = 0;
  /// Largest bounce-buffer allocation any in-place exchange or fused
  /// sweep used (peak scratch footprint; merged with max, not +).
  std::uint64_t peak_bounce_bytes = 0;
  /// Rank renumberings (zero-cost global permutations).
  std::uint64_t rank_renumberings = 0;

  CommStats& operator+=(const CommStats& other);
};

}  // namespace quasar
