#include "runtime/virtual_cluster.hpp"

#include <omp.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <utility>

#include "check/invariant.hpp"
#include "core/bits.hpp"
#include "core/error.hpp"
#include "kernels/permute.hpp"
#include "kernels/swap.hpp"
#include "obs/histogram.hpp"
#include "obs/names.hpp"
#include "obs/trace.hpp"

namespace quasar {

VirtualCluster::VirtualCluster(int num_qubits, int num_local,
                               StorageOptions storage)
    : num_qubits_(num_qubits), num_local_(num_local),
      storage_(std::move(storage)) {
  QUASAR_CHECK(num_local >= 1 && num_local <= num_qubits,
               "VirtualCluster: num_local must be in [1, num_qubits]");
  QUASAR_CHECK(num_qubits - num_local <= 12,
               "VirtualCluster: at most 2^12 simulated ranks");
  QUASAR_CHECK(num_qubits - num_local <= num_local,
               "VirtualCluster: needs g <= l so a full swap is possible");
  buffers_.reserve(index_pow2(num_global()));
  for (Index r = 0; r < index_pow2(num_global()); ++r) {
    buffers_.emplace_back(local_size(), storage_);
  }
}

void VirtualCluster::init_fill(Amplitude value) {
  if (!segmented()) {
    for (auto& buffer : buffers_) {
      std::fill(buffer.data(), buffer.data() + buffer.size(), value);
    }
    return;
  }
  // Segmented slices: encode one constant segment and stamp it into
  // every slot directly — the full flat slice never exists in DRAM.
  oocore::SegmentScratch scratch;
  for (auto& buffer : buffers_) {
    buffer.discard_resident();
    oocore::SegmentStore* store = buffer.store();
    const AlignedVector<Amplitude> seg(store->segment_amps(), value);
    for (std::size_t s = 0; s < store->segment_count(); ++s) {
      store->write_segment(s, seg.data(), scratch);
    }
  }
}

void VirtualCluster::init_basis(Index index) {
  QUASAR_CHECK(index < index_pow2(num_qubits_), "basis index out of range");
  init_fill(Amplitude{0.0, 0.0});
  const Index rank = index >> num_local_;
  const Index offset = index & (local_size() - 1);
  if (!segmented()) {
    buffers_[rank].data()[offset] = 1.0;
    return;
  }
  oocore::SegmentStore* store = buffers_[rank].store();
  const Index seg_amps = store->segment_amps();
  oocore::SegmentScratch scratch;
  AlignedVector<Amplitude> seg(seg_amps, Amplitude{0.0, 0.0});
  seg[offset & (seg_amps - 1)] = 1.0;
  store->write_segment(static_cast<std::size_t>(offset / seg_amps),
                       seg.data(), scratch);
}

void VirtualCluster::init_uniform() {
  const double value = std::pow(2.0, -0.5 * num_qubits_);
  init_fill(Amplitude{value, 0.0});
}

void VirtualCluster::alltoall_swap(const std::vector<int>& global_locations) {
  // Classic pairing (Fig. 3): global_locations[i] <-> local slot l-q+i.
  std::vector<int> local_positions;
  for (std::size_t i = 0; i < global_locations.size(); ++i) {
    local_positions.push_back(num_local_ -
                              static_cast<int>(global_locations.size()) +
                              static_cast<int>(i));
  }
  alltoall_swap(global_locations, local_positions);
}

void VirtualCluster::alltoall_swap(const std::vector<int>& global_locations,
                                   const std::vector<int>& local_positions) {
  obs::ScopedSpan span("exchange", "alltoall");
  const int q = static_cast<int>(global_locations.size());
  QUASAR_CHECK(q >= 1 && q <= num_global(),
               "alltoall_swap: need 1..g global locations");
  QUASAR_CHECK(static_cast<int>(local_positions.size()) == q,
               "alltoall_swap: one local position per global location");
  for (int i = 0; i < q; ++i) {
    QUASAR_CHECK(global_locations[i] >= num_local_ &&
                     global_locations[i] < num_qubits_,
                 "alltoall_swap: location is not global");
    QUASAR_CHECK(i == 0 || global_locations[i] > global_locations[i - 1],
                 "alltoall_swap: locations must be ascending");
    QUASAR_CHECK(local_positions[i] >= 0 && local_positions[i] < num_local_,
                 "alltoall_swap: position is not local");
  }
  std::vector<int> sorted_locals = local_positions;
  std::sort(sorted_locals.begin(), sorted_locals.end());
  for (int i = 1; i < q; ++i) {
    QUASAR_CHECK(sorted_locals[i] > sorted_locals[i - 1],
                 "alltoall_swap: local positions must be distinct");
  }
  // The exchange is an involution moving amplitudes verbatim, so the
  // total norm is invariant up to reduction rounding; a lost or
  // duplicated orbit breaks it loudly.
  const bool validate_norm = check::enabled();
  const Real norm_before = validate_norm ? norm_squared() : 0.0;

  // The machine-index permutation swapping bit local_positions[i] with
  // bit global_locations[i] is an involution, so every amplitude has a
  // unique partner and the exchange runs fully in place: rank r (bits
  // `theirs` at the swapped global positions) trades its sub-indices with
  // local pattern `mine` against rank r' (pattern `mine`) holding local
  // pattern `theirs` — the block-cyclic picture of Fig. 3, generalized to
  // arbitrary local positions. Data moves through per-thread bounce
  // chunks bounded by StorageOptions::bounce_buffer_bytes in total.
  const int l = num_local_;
  const Index block = index_pow2(l - q);
  const int ranks = num_ranks();

  // Contiguous runs below the lowest swapped local bit.
  const int run_bits = sorted_locals.front();
  const Index run = index_pow2(run_bits);
  const Index num_runs = index_pow2(l - q - run_bits);
  const IndexExpander expander(sorted_locals);

  const int threads = omp_get_max_threads();
  Index chunk = run;
  const Index budget_amps = std::max<std::size_t>(
      std::size_t{1},
      storage_.bounce_buffer_bytes /
          (static_cast<std::size_t>(threads) * sizeof(Amplitude)));
  if (chunk > budget_amps) chunk = Index{1} << ilog2(budget_amps);
  const Index chunks_per_run = run / chunk;

  // One orbit per unordered pattern pair {mine, theirs}, mine < theirs:
  // base pointers already offset by the scattered pattern bits.
  struct Orbit {
    Amplitude* a;
    Amplitude* b;
  };
  std::vector<Orbit> orbits;
  for (int r = 0; r < ranks; ++r) {
    Index theirs = 0;
    for (int i = 0; i < q; ++i) {
      theirs |= static_cast<Index>(get_bit(static_cast<Index>(r),
                                           global_locations[i] - l))
                << i;
    }
    for (Index mine = 0; mine < theirs; ++mine) {
      Index partner = static_cast<Index>(r);
      for (int i = 0; i < q; ++i) {
        partner = set_bit(partner, global_locations[i] - l,
                          get_bit(mine, i));
      }
      Index off_mine = 0, off_theirs = 0;
      for (int i = 0; i < q; ++i) {
        off_mine |= static_cast<Index>(get_bit(mine, i))
                    << local_positions[i];
        off_theirs |= static_cast<Index>(get_bit(theirs, i))
                      << local_positions[i];
      }
      orbits.push_back(Orbit{buffers_[r].data() + off_mine,
                             buffers_[partner].data() + off_theirs});
    }
  }

  const std::int64_t num_orbits = static_cast<std::int64_t>(orbits.size());
  const std::int64_t tasks =
      static_cast<std::int64_t>(num_runs * chunks_per_run);
  // Hoisted so the per-chunk latency probe costs nothing (not even the
  // session load) in the untraced inner loop.
  const bool record_latency = obs::enabled();
#pragma omp parallel num_threads(threads)
  {
    AlignedVector<Amplitude> bounce(chunk);
#pragma omp for collapse(2) schedule(static)
    for (std::int64_t o = 0; o < num_orbits; ++o) {
      for (std::int64_t t = 0; t < tasks; ++t) {
        const Index run_idx = static_cast<Index>(t) / chunks_per_run;
        const Index coff = (static_cast<Index>(t) % chunks_per_run) * chunk;
        const Index base = expander.expand(run_idx << run_bits) + coff;
        Amplitude* pa = orbits[o].a + base;
        Amplitude* pb = orbits[o].b + base;
        const std::size_t bytes = chunk * sizeof(Amplitude);
        if (record_latency) {
          obs::ScopedLatency chunk_latency(obs::names::kCommExchangeChunkNs);
          std::memcpy(bounce.data(), pa, bytes);
          std::memcpy(pa, pb, bytes);
          std::memcpy(pb, bounce.data(), bytes);
        } else {
          std::memcpy(bounce.data(), pa, bytes);
          std::memcpy(pa, pb, bytes);
          std::memcpy(pb, bounce.data(), bytes);
        }
      }
    }
  }

  ++stats_.alltoalls;
  // Each rank keeps one of 2^q blocks and sends the rest — independent of
  // which local positions carry the exchange.
  const std::uint64_t sent = (local_size() - block) * kBytesPerAmplitude;
  stats_.bytes_sent_per_rank += sent;
  const std::uint64_t bounce_bytes =
      static_cast<std::uint64_t>(threads) * chunk * sizeof(Amplitude);
  if (bounce_bytes > stats_.peak_bounce_bytes) {
    stats_.peak_bounce_bytes = bounce_bytes;
  }
  span.set_arg("bytes_per_rank", static_cast<std::int64_t>(sent));
  obs::count(obs::names::kCommAlltoalls);
  obs::count(obs::names::kCommBytesSentPerRank, sent);
  obs::count_peak(obs::names::kCommPeakBounceBytes, bounce_bytes);

  if (validate_norm) {
    check::require_norm_preserved(norm_squared(), norm_before,
                                  check::norm_tolerance(num_qubits_, 1),
                                  "VirtualCluster::alltoall_swap");
  }
}

void VirtualCluster::local_permute(const std::vector<int>& perm,
                                   const std::vector<Amplitude>* rank_phase,
                                   const ApplyOptions& options) {
  const PermutePlan plan = plan_bit_permutation(num_local_, perm);
  bool any_phase = false;
  if (rank_phase != nullptr) {
    QUASAR_CHECK(static_cast<int>(rank_phase->size()) == num_ranks(),
                 "local_permute: one phase per rank");
    for (const Amplitude& p : *rank_phase) {
      any_phase |= p != Amplitude{1.0, 0.0};
    }
  }
  const bool validate_norm = check::enabled();
  if (validate_norm) {
    check::require_bijection(perm, num_local_,
                             "VirtualCluster::local_permute");
    if (rank_phase != nullptr) {
      // The caller does not say how many multiplications accumulated in
      // these phases; 4096 unit-modulus factors is a generous ceiling.
      check::require_unit_phases(*rank_phase, check::phase_tolerance(4096),
                                 "VirtualCluster::local_permute");
    }
  }
  if (plan.identity && !any_phase) return;
  const Real norm_before = validate_norm ? norm_squared() : 0.0;
  obs::ScopedSpan span("permute", "local_permute", "bytes",
                       static_cast<std::int64_t>(num_ranks()) *
                           static_cast<std::int64_t>(local_size()) *
                           static_cast<std::int64_t>(kBytesPerAmplitude));

  const int threads = options.num_threads > 0 ? options.num_threads
                                              : omp_get_max_threads();
  const std::size_t scratch_bytes = std::max<std::size_t>(
      sizeof(Amplitude),
      storage_.bounce_buffer_bytes / static_cast<std::size_t>(threads));
  for (int r = 0; r < num_ranks(); ++r) {
    const Amplitude phase =
        rank_phase != nullptr ? (*rank_phase)[r] : Amplitude{1.0, 0.0};
    detail::run_bit_permutation(buffers_[r].data(), plan, phase,
                                options.num_threads, scratch_bytes);
  }

  ++stats_.local_permutation_sweeps;
  stats_.local_permutation_bytes +=
      static_cast<std::uint64_t>(num_ranks()) * local_size() *
      kBytesPerAmplitude;
  obs::count(obs::names::kCommLocalPermutationSweeps);
  obs::count(obs::names::kCommLocalPermutationBytes,
             static_cast<std::uint64_t>(num_ranks()) * local_size() *
                 kBytesPerAmplitude);
  if (!plan.identity) {
    const std::uint64_t brick_bytes =
        index_pow2(plan.brick_bits) * sizeof(Amplitude);
    const std::uint64_t bounce_bytes =
        static_cast<std::uint64_t>(threads) *
        std::min<std::uint64_t>(scratch_bytes, brick_bytes);
    if (bounce_bytes > stats_.peak_bounce_bytes) {
      stats_.peak_bounce_bytes = bounce_bytes;
    }
    obs::count_peak(obs::names::kCommPeakBounceBytes, bounce_bytes);
  }

  if (validate_norm) {
    // A bit permutation moves amplitudes verbatim; the folded phases are
    // unit modulus. Either failing to be a bijection in the executed plan
    // or a non-unit phase shows up as norm drift.
    check::require_norm_preserved(norm_squared(), norm_before,
                                  check::norm_tolerance(num_qubits_, 2),
                                  "VirtualCluster::local_permute");
  }
}

void VirtualCluster::renumber_ranks(const std::vector<int>& perm) {
  QUASAR_OBS_SPAN("renumber", "renumber_ranks");
  const int g = num_global();
  QUASAR_CHECK(static_cast<int>(perm.size()) == g,
               "renumber_ranks: permutation must cover all global bits");
  if (check::enabled()) {
    check::require_bijection(perm, g, "VirtualCluster::renumber_ranks");
  }
  const int ranks = num_ranks();
  std::vector<RankStorage> next(ranks);
  for (int r = 0; r < ranks; ++r) {
    Index src = 0;
    for (int j = 0; j < g; ++j) {
      QUASAR_CHECK(perm[j] >= 0 && perm[j] < g, "renumber_ranks: bad perm");
      src |= static_cast<Index>(get_bit(static_cast<Index>(r), j))
             << perm[j];
    }
    // perm is a bijection, so each source buffer moves exactly once.
    next[static_cast<Index>(r)] = std::move(buffers_[src]);
  }
  buffers_ = std::move(next);
  ++stats_.rank_renumberings;
  obs::count(obs::names::kCommRankRenumberings);
}

void VirtualCluster::permute_ranks(const std::vector<Index>& source_of) {
  QUASAR_OBS_SPAN("renumber", "permute_ranks");
  const int ranks = num_ranks();
  QUASAR_CHECK(static_cast<int>(source_of.size()) == ranks,
               "permute_ranks: must cover every rank");
  std::vector<bool> used(ranks, false);
  for (Index src : source_of) {
    QUASAR_CHECK(src < static_cast<Index>(ranks) && !used[src],
                 "permute_ranks: not a bijection");
    used[src] = true;
  }
  std::vector<RankStorage> next(ranks);
  for (int r = 0; r < ranks; ++r) {
    next[r] = std::move(buffers_[source_of[r]]);
  }
  buffers_ = std::move(next);
  ++stats_.rank_renumberings;
  obs::count(obs::names::kCommRankRenumberings);
}

void VirtualCluster::local_swap(int p, int q, const ApplyOptions& options) {
  QUASAR_OBS_SPAN("permute", "local_swap");
  QUASAR_CHECK(p >= 0 && p < num_local_ && q >= 0 && q < num_local_,
               "local_swap: locations must be local");
  for (auto& buffer : buffers_) {
    apply_bit_swap(buffer.data(), num_local_, p, q, options.num_threads);
  }
  ++stats_.local_swap_sweeps;
  obs::count(obs::names::kCommLocalSwapSweeps);
}

void VirtualCluster::pairwise_global_gate(const GateMatrix& gate,
                                          int location,
                                          const ApplyOptions& options) {
  QUASAR_OBS_SPAN("exchange", "pairwise_gate");
  (void)options;
  QUASAR_CHECK(gate.num_qubits() == 1,
               "pairwise_global_gate expects a single-qubit gate");
  QUASAR_CHECK(location >= num_local_ && location < num_qubits_,
               "pairwise_global_gate: location must be global");
  const Index bit = index_pow2(location - num_local_);
  const Amplitude m00 = gate.at(0, 0), m01 = gate.at(0, 1);
  const Amplitude m10 = gate.at(1, 0), m11 = gate.at(1, 1);
  const Index half = local_size() / 2;

  for (Index r0 = 0; r0 < static_cast<Index>(num_ranks()); ++r0) {
    if (r0 & bit) continue;
    const Index r1 = r0 | bit;
    Amplitude* a = buffers_[r0].data();
    Amplitude* b = buffers_[r1].data();
    // In the scheme of [19], rank r0 computes the lower-half pairs and
    // rank r1 the upper half, after exchanging half the state vector
    // each way; the result is another half-exchange back. The net data
    // motion is 2 x half the local state per rank; the arithmetic below
    // is what both ranks jointly produce.
#pragma omp parallel for schedule(static)
    for (std::int64_t i = 0; i < static_cast<std::int64_t>(2 * half); ++i) {
      const Amplitude va = a[i], vb = b[i];
      a[i] = m00 * va + m01 * vb;
      b[i] = m10 * va + m11 * vb;
    }
  }
  stats_.pairwise_exchanges += 2;
  stats_.bytes_sent_per_rank += 2 * half * kBytesPerAmplitude;
  obs::count(obs::names::kCommPairwiseExchanges, 2);
  obs::count(obs::names::kCommBytesSentPerRank, 2 * half * kBytesPerAmplitude);
}

Real VirtualCluster::norm_squared() const {
  Real total = 0.0;
  for (const auto& buffer : buffers_) {
    const Amplitude* data = buffer.data();
    const std::int64_t count = static_cast<std::int64_t>(buffer.size());
#pragma omp parallel for schedule(static) reduction(+ : total)
    for (std::int64_t i = 0; i < count; ++i) total += std::norm(data[i]);
  }
  return total;
}

}  // namespace quasar
