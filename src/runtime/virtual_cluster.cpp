#include "runtime/virtual_cluster.hpp"

#include <cmath>
#include <cstring>
#include <utility>

#include "core/bits.hpp"
#include "core/error.hpp"
#include "kernels/swap.hpp"

namespace quasar {

VirtualCluster::VirtualCluster(int num_qubits, int num_local,
                               StorageOptions storage)
    : num_qubits_(num_qubits), num_local_(num_local),
      storage_(std::move(storage)) {
  QUASAR_CHECK(num_local >= 1 && num_local <= num_qubits,
               "VirtualCluster: num_local must be in [1, num_qubits]");
  QUASAR_CHECK(num_qubits - num_local <= 12,
               "VirtualCluster: at most 2^12 simulated ranks");
  QUASAR_CHECK(num_qubits - num_local <= num_local,
               "VirtualCluster: needs g <= l so a full swap is possible");
  buffers_.reserve(index_pow2(num_global()));
  for (Index r = 0; r < index_pow2(num_global()); ++r) {
    buffers_.emplace_back(local_size(), storage_);
  }
}

void VirtualCluster::init_basis(Index index) {
  QUASAR_CHECK(index < index_pow2(num_qubits_), "basis index out of range");
  for (auto& buffer : buffers_) {
    std::fill(buffer.data(), buffer.data() + buffer.size(),
              Amplitude{0.0, 0.0});
  }
  buffers_[index >> num_local_].data()[index & (local_size() - 1)] = 1.0;
}

void VirtualCluster::init_uniform() {
  const double value = std::pow(2.0, -0.5 * num_qubits_);
  for (auto& buffer : buffers_) {
    std::fill(buffer.data(), buffer.data() + buffer.size(),
              Amplitude{value, 0.0});
  }
}

void VirtualCluster::alltoall_swap(const std::vector<int>& global_locations) {
  const int q = static_cast<int>(global_locations.size());
  QUASAR_CHECK(q >= 1 && q <= num_global(),
               "alltoall_swap: need 1..g global locations");
  for (int i = 0; i < q; ++i) {
    QUASAR_CHECK(global_locations[i] >= num_local_ &&
                     global_locations[i] < num_qubits_,
                 "alltoall_swap: location is not global");
    QUASAR_CHECK(i == 0 || global_locations[i] > global_locations[i - 1],
                 "alltoall_swap: locations must be ascending");
  }
  // Swap global bits G = global_locations with local bits
  // [l-q, l): rank bits at positions (G[i] - l) exchange with the top-q
  // local index bits. Low (l-q) bits are untouched => block copies.
  const int l = num_local_;
  const Index block = index_pow2(l - q);
  const Index top_count = index_pow2(q);
  const int ranks = num_ranks();

  std::vector<RankStorage> next;
  next.reserve(ranks);
  for (int r = 0; r < ranks; ++r) next.emplace_back(local_size(), storage_);

  for (int r = 0; r < ranks; ++r) {
    // Bits of r at the swapped positions, packed.
    Index r_swapped = 0;
    for (int i = 0; i < q; ++i) {
      r_swapped |= static_cast<Index>(
                       get_bit(static_cast<Index>(r),
                               global_locations[i] - l))
                   << i;
    }
    for (Index h = 0; h < top_count; ++h) {
      // Destination rank: replace the swapped bits with h.
      Index dest_rank = static_cast<Index>(r);
      for (int i = 0; i < q; ++i) {
        dest_rank = set_bit(dest_rank, global_locations[i] - l,
                            get_bit(h, i));
      }
      // Destination local block: top-q bits become r_swapped.
      std::memcpy(next[dest_rank].data() + r_swapped * block,
                  buffers_[r].data() + h * block,
                  block * sizeof(Amplitude));
    }
  }
  buffers_.swap(next);

  ++stats_.alltoalls;
  // Each rank keeps one of 2^q blocks and sends the rest.
  stats_.bytes_sent_per_rank +=
      (local_size() - block) * kBytesPerAmplitude;
}

void VirtualCluster::renumber_ranks(const std::vector<int>& perm) {
  const int g = num_global();
  QUASAR_CHECK(static_cast<int>(perm.size()) == g,
               "renumber_ranks: permutation must cover all global bits");
  const int ranks = num_ranks();
  std::vector<RankStorage> next(ranks);
  for (int r = 0; r < ranks; ++r) {
    Index src = 0;
    for (int j = 0; j < g; ++j) {
      QUASAR_CHECK(perm[j] >= 0 && perm[j] < g, "renumber_ranks: bad perm");
      src |= static_cast<Index>(get_bit(static_cast<Index>(r), j))
             << perm[j];
    }
    // perm is a bijection, so each source buffer moves exactly once.
    next[static_cast<Index>(r)] = std::move(buffers_[src]);
  }
  buffers_ = std::move(next);
  ++stats_.rank_renumberings;
}

void VirtualCluster::permute_ranks(const std::vector<Index>& source_of) {
  const int ranks = num_ranks();
  QUASAR_CHECK(static_cast<int>(source_of.size()) == ranks,
               "permute_ranks: must cover every rank");
  std::vector<bool> used(ranks, false);
  for (Index src : source_of) {
    QUASAR_CHECK(src < static_cast<Index>(ranks) && !used[src],
                 "permute_ranks: not a bijection");
    used[src] = true;
  }
  std::vector<RankStorage> next(ranks);
  for (int r = 0; r < ranks; ++r) {
    next[r] = std::move(buffers_[source_of[r]]);
  }
  buffers_ = std::move(next);
  ++stats_.rank_renumberings;
}

void VirtualCluster::local_swap(int p, int q, const ApplyOptions& options) {
  QUASAR_CHECK(p >= 0 && p < num_local_ && q >= 0 && q < num_local_,
               "local_swap: locations must be local");
  for (auto& buffer : buffers_) {
    apply_bit_swap(buffer.data(), num_local_, p, q, options.num_threads);
  }
  ++stats_.local_swap_sweeps;
}

void VirtualCluster::pairwise_global_gate(const GateMatrix& gate,
                                          int location,
                                          const ApplyOptions& options) {
  (void)options;
  QUASAR_CHECK(gate.num_qubits() == 1,
               "pairwise_global_gate expects a single-qubit gate");
  QUASAR_CHECK(location >= num_local_ && location < num_qubits_,
               "pairwise_global_gate: location must be global");
  const Index bit = index_pow2(location - num_local_);
  const Amplitude m00 = gate.at(0, 0), m01 = gate.at(0, 1);
  const Amplitude m10 = gate.at(1, 0), m11 = gate.at(1, 1);
  const Index half = local_size() / 2;

  for (Index r0 = 0; r0 < static_cast<Index>(num_ranks()); ++r0) {
    if (r0 & bit) continue;
    const Index r1 = r0 | bit;
    Amplitude* a = buffers_[r0].data();
    Amplitude* b = buffers_[r1].data();
    // In the scheme of [19], rank r0 computes the lower-half pairs and
    // rank r1 the upper half, after exchanging half the state vector
    // each way; the result is another half-exchange back. The net data
    // motion is 2 x half the local state per rank; the arithmetic below
    // is what both ranks jointly produce.
#pragma omp parallel for schedule(static)
    for (std::int64_t i = 0; i < static_cast<std::int64_t>(2 * half); ++i) {
      const Amplitude va = a[i], vb = b[i];
      a[i] = m00 * va + m01 * vb;
      b[i] = m10 * va + m11 * vb;
    }
  }
  stats_.pairwise_exchanges += 2;
  stats_.bytes_sent_per_rank += 2 * half * kBytesPerAmplitude;
}

Real VirtualCluster::norm_squared() const {
  Real total = 0.0;
  for (const auto& buffer : buffers_) {
    const Amplitude* data = buffer.data();
    for (Index i = 0; i < buffer.size(); ++i) total += std::norm(data[i]);
  }
  return total;
}

}  // namespace quasar
