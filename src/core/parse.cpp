#include "core/parse.hpp"

#include <charconv>
#include <cstdlib>

#include "core/error.hpp"

namespace quasar {

namespace {

[[noreturn]] void fail(std::string_view token, const std::string& what,
                       const std::string& context, const char* reason) {
  std::string message = "parse error: " + what + " '" + std::string(token) +
                        "' " + reason;
  if (!context.empty()) message += " in: " + context;
  throw Error(message);
}

}  // namespace

int parse_int(std::string_view token, const std::string& what,
              const std::string& context) {
  if (token.empty()) fail(token, what, context, "is empty");
  int value = 0;
  const char* first = token.data();
  const char* last = token.data() + token.size();
  const auto [ptr, ec] = std::from_chars(first, last, value);
  if (ec == std::errc::result_out_of_range) {
    fail(token, what, context, "is out of range");
  }
  if (ec != std::errc() || ptr != last) {
    fail(token, what, context, "is not an integer");
  }
  return value;
}

int parse_int_in_range(std::string_view token, int min, int max,
                       const std::string& what, const std::string& context) {
  const int value = parse_int(token, what, context);
  if (value < min || value > max) {
    fail(token, what, context,
         ("must be in [" + std::to_string(min) + ", " + std::to_string(max) +
          "]")
             .c_str());
  }
  return value;
}

std::uint64_t parse_uint64(std::string_view token, const std::string& what,
                           const std::string& context) {
  if (token.empty()) fail(token, what, context, "is empty");
  std::uint64_t value = 0;
  const char* first = token.data();
  const char* last = token.data() + token.size();
  const auto [ptr, ec] = std::from_chars(first, last, value);
  if (ec == std::errc::result_out_of_range) {
    fail(token, what, context, "is out of range");
  }
  if (ec != std::errc() || ptr != last) {
    fail(token, what, context, "is not a non-negative integer");
  }
  return value;
}

double parse_double(std::string_view token, const std::string& what,
                    const std::string& context) {
  if (token.empty()) fail(token, what, context, "is empty");
  // std::from_chars for double is not available on every libstdc++ this
  // project targets; strtod + whole-token check gives the same contract.
  const std::string copy(token);
  char* end = nullptr;
  const double value = std::strtod(copy.c_str(), &end);
  if (end != copy.c_str() + copy.size() || copy.empty()) {
    fail(token, what, context, "is not a number");
  }
  return value;
}

bool parse_flag(std::string_view token, const std::string& what) {
  if (token == "0") return false;
  if (token == "1") return true;
  fail(token, what, std::string(), "is not a flag (expected 0 or 1)");
}

}  // namespace quasar
