#include "core/crc32c.hpp"

#include <array>

namespace quasar {

namespace {

/// Reflected Castagnoli polynomial.
constexpr std::uint32_t kPoly = 0x82f63b78u;

/// Slicing-by-8 tables: table[0] is the classic byte-at-a-time table,
/// table[k][b] extends a CRC by byte b followed by k zero bytes.
struct Tables {
  std::array<std::array<std::uint32_t, 256>, 8> t{};
  Tables() {
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc >> 1) ^ ((crc & 1u) ? kPoly : 0u);
      }
      t[0][i] = crc;
    }
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t crc = t[0][i];
      for (std::size_t k = 1; k < 8; ++k) {
        crc = t[0][crc & 0xffu] ^ (crc >> 8);
        t[k][i] = crc;
      }
    }
  }
};

const Tables& tables() {
  static const Tables instance;
  return instance;
}

}  // namespace

std::uint32_t crc32c_extend(std::uint32_t crc, const void* data,
                            std::size_t bytes) {
  const auto& t = tables().t;
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint32_t state = ~crc;
  // Head: align to 8 bytes.
  while (bytes > 0 && (reinterpret_cast<std::uintptr_t>(p) & 7u) != 0) {
    state = t[0][(state ^ *p++) & 0xffu] ^ (state >> 8);
    --bytes;
  }
  // Body: 8 bytes per step via the slicing tables.
  while (bytes >= 8) {
    const std::uint32_t low =
        state ^ (static_cast<std::uint32_t>(p[0]) |
                 static_cast<std::uint32_t>(p[1]) << 8 |
                 static_cast<std::uint32_t>(p[2]) << 16 |
                 static_cast<std::uint32_t>(p[3]) << 24);
    state = t[7][low & 0xffu] ^ t[6][(low >> 8) & 0xffu] ^
            t[5][(low >> 16) & 0xffu] ^ t[4][low >> 24] ^
            t[3][p[4]] ^ t[2][p[5]] ^ t[1][p[6]] ^ t[0][p[7]];
    p += 8;
    bytes -= 8;
  }
  // Tail.
  while (bytes-- > 0) {
    state = t[0][(state ^ *p++) & 0xffu] ^ (state >> 8);
  }
  return ~state;
}

std::uint32_t crc32c(const void* data, std::size_t bytes) {
  return crc32c_extend(0, data, bytes);
}

}  // namespace quasar
