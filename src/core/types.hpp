/// \file types.hpp
/// \brief Fundamental scalar and index types used throughout quasar.
#pragma once

#include <complex>
#include <cstdint>

namespace quasar {

/// Complex double-precision amplitude. One amplitude occupies 16 bytes,
/// which is the unit the paper's memory accounting (Sec. 2) is based on:
/// a 45-qubit state vector holds 2^45 amplitudes = 0.5 PB.
using Amplitude = std::complex<double>;

/// Real scalar used for probabilities, norms, and entropies.
using Real = double;

/// Index into a state vector. 2^n amplitudes for n qubits; n <= 62 fits.
using Index = std::uint64_t;

/// A qubit label. Program-level qubits and bit-locations (the physical
/// position of a qubit inside the state-vector index, Sec. 3.6.2) share
/// this type; APIs document which one they mean.
using Qubit = int;

/// Number of bytes per stored amplitude.
inline constexpr Index kBytesPerAmplitude = sizeof(Amplitude);

/// Returns 2^n as an Index. Precondition: 0 <= n < 64.
constexpr Index index_pow2(int n) noexcept { return Index{1} << n; }

}  // namespace quasar
