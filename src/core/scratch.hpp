/// \file scratch.hpp
/// \brief Process-wide scratch-file namespace tag.
///
/// Every temp file the simulator creates (disk-backed rank slices,
/// out-of-core segment stores, disk benchmarks) embeds this tag in its
/// mkstemp pattern. Single-process runs leave it empty; the multi-process
/// transport sets it to "r<rank>." in each forked rank, so concurrent
/// ranks sharing one scratch directory can never collide on a pattern and
/// a leftover file (there should be none — everything is unlinked at
/// birth) is attributable to the rank that made it.
#pragma once

#include <string>

namespace quasar {

/// Sets the scratch tag for this process. Pass e.g. "r3." in rank 3 of a
/// multi-process job. Not thread-safe; call before spawning sweeps.
void set_process_scratch_tag(std::string tag);

/// Current tag ("" by default). Embedded into mkstemp patterns as
/// <dir>/quasar_<kind>_<tag>XXXXXX.
const std::string& process_scratch_tag();

}  // namespace quasar
