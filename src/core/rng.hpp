/// \file rng.hpp
/// \brief Deterministic, splittable random number generation.
///
/// Circuit generation (Fig. 1 randomness) and sampling must be reproducible
/// across runs and across the single-node / distributed simulators, so all
/// randomness flows through Rng instances seeded explicitly.
#pragma once

#include <cstdint>
#include <random>
#include <string>
#include <string_view>

#include "core/types.hpp"

namespace quasar {

/// Deterministic RNG. Thin wrapper over std::mt19937_64 with convenience
/// draws and a split() operation for creating statistically independent
/// child streams (used to give each MPI-style rank its own stream).
class Rng {
 public:
  explicit Rng(std::uint64_t seed);

  /// Uniform integer in [0, bound). Precondition: bound > 0.
  std::uint64_t uniform_int(std::uint64_t bound);

  /// Uniform real in [0, 1).
  double uniform_real();

  /// Standard normal draw.
  double normal();

  /// Derives an independent child generator. Children with distinct
  /// `stream` values (under the same parent state) do not correlate.
  Rng split(std::uint64_t stream);

  /// Full engine state as a text token stream (the mt19937_64 stream
  /// format). restore(serialize()) reproduces the draw sequence exactly —
  /// the bit-exact-resume requirement of checkpointed sampling
  /// (DESIGN.md §10).
  std::string serialize() const;

  /// Replaces the engine state with a previously serialized one. Throws
  /// quasar::Error on malformed input, leaving the current state intact.
  void restore(std::string_view state);

  /// Underlying engine, for use with std:: distributions.
  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace quasar
