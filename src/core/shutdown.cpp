#include "core/shutdown.hpp"

#include <csignal>
#include <cstdlib>

namespace quasar {

namespace {

std::atomic<bool> g_shutdown{false};
std::atomic<int> g_signal_count{0};
std::atomic<bool> g_installed{false};

extern "C" void quasar_shutdown_handler(int) {
  // Async-signal-safe: atomics and _Exit only.
  if (g_signal_count.fetch_add(1, std::memory_order_relaxed) >= 1) {
    std::_Exit(130);
  }
  g_shutdown.store(true, std::memory_order_release);
}

}  // namespace

void install_shutdown_handler() {
  bool expected = false;
  if (!g_installed.compare_exchange_strong(expected, true)) return;
  struct sigaction action = {};
  action.sa_handler = quasar_shutdown_handler;
  sigemptyset(&action.sa_mask);
  // SA_RESTART: blocking I/O elsewhere keeps working; the stage loops
  // and the server's poll()-with-timeout observe the flag soon enough.
  action.sa_flags = SA_RESTART;
  ::sigaction(SIGINT, &action, nullptr);
  ::sigaction(SIGTERM, &action, nullptr);
}

const std::atomic<bool>* shutdown_flag() { return &g_shutdown; }

bool shutdown_requested() {
  return g_shutdown.load(std::memory_order_acquire);
}

void request_shutdown() {
  g_shutdown.store(true, std::memory_order_release);
}

void reset_shutdown_flag() {
  g_shutdown.store(false, std::memory_order_release);
  g_signal_count.store(0, std::memory_order_relaxed);
}

}  // namespace quasar
