/// \file aligned.hpp
/// \brief 64-byte-aligned storage for state vectors and SIMD temporaries.
///
/// AVX-512 loads want 64-byte alignment; we also page-touch large buffers
/// in parallel on construction (NUMA first-touch, paper Sec. 3.3) from
/// StateVector rather than here.
#pragma once

#include <cstddef>
#include <cstdlib>
#include <limits>
#include <new>
#include <vector>

namespace quasar {

/// Minimum alignment for SIMD-visible arrays (one cache line).
inline constexpr std::size_t kSimdAlignment = 64;

/// Standard-allocator wrapper around aligned operator new.
template <typename T, std::size_t Alignment = kSimdAlignment>
class AlignedAllocator {
 public:
  using value_type = T;
  static_assert(Alignment >= alignof(T));

  /// Explicit rebind: allocator_traits cannot synthesize it because of
  /// the non-type Alignment parameter.
  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Alignment>;
  };

  AlignedAllocator() noexcept = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U, Alignment>&) noexcept {}

  T* allocate(std::size_t n) {
    if (n > std::numeric_limits<std::size_t>::max() / sizeof(T)) {
      throw std::bad_alloc();
    }
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t{Alignment}));
  }

  void deallocate(T* p, std::size_t) noexcept {
    ::operator delete(p, std::align_val_t{Alignment});
  }

  template <typename U>
  bool operator==(const AlignedAllocator<U, Alignment>&) const noexcept {
    return true;
  }
};

/// Vector with cache-line-aligned storage.
template <typename T>
using AlignedVector = std::vector<T, AlignedAllocator<T>>;

}  // namespace quasar
