/// \file error.hpp
/// \brief Error handling: a library exception type and check macros.
///
/// quasar reports precondition violations by throwing quasar::Error so that
/// embedding applications (and the test suite) can recover; internal
/// invariants use QUASAR_ASSERT which is compiled out in release builds.
#pragma once

#include <stdexcept>
#include <string>

namespace quasar {

/// Exception thrown on invalid arguments or violated API preconditions.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] void throw_check_failure(const char* expr, const char* file,
                                      int line, const std::string& message);
}  // namespace detail

}  // namespace quasar

/// Validates a user-facing precondition; throws quasar::Error on failure.
/// Always enabled, including in release builds.
#define QUASAR_CHECK(expr, message)                                        \
  do {                                                                     \
    if (!(expr)) {                                                         \
      ::quasar::detail::throw_check_failure(#expr, __FILE__, __LINE__,     \
                                            (message));                    \
    }                                                                      \
  } while (false)

/// Internal invariant check; compiled out when NDEBUG is defined.
#ifdef NDEBUG
#define QUASAR_ASSERT(expr) ((void)0)
#else
#define QUASAR_ASSERT(expr)                                                \
  do {                                                                     \
    if (!(expr)) {                                                         \
      ::quasar::detail::throw_check_failure(#expr, __FILE__, __LINE__,     \
                                            "internal invariant violated"); \
    }                                                                      \
  } while (false)
#endif
