// timing.hpp is header-only; this TU anchors the target so every quasar
// library links a concrete quasar_core object.
#include "core/timing.hpp"

namespace quasar {
namespace {
[[maybe_unused]] Timer anchor_timer;
}  // namespace
}  // namespace quasar
