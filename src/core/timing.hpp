/// \file timing.hpp
/// \brief Wall-clock timing used by the autotuner and benchmark harnesses.
#pragma once

#include <algorithm>
#include <chrono>
#include <cmath>

namespace quasar {

/// Monotonic wall-clock stopwatch.
class Timer {
 public:
  Timer() { reset(); }

  /// Restarts the stopwatch.
  void reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Per-call timing distribution from a repeated measurement loop.
struct TimingStats {
  double best = 0.0;    ///< minimum per-call seconds
  double mean = 0.0;    ///< arithmetic mean per-call seconds
  double stddev = 0.0;  ///< population standard deviation
  int reps = 0;         ///< number of calls measured
};

/// Runs `fn` repeatedly until at least `min_seconds` have elapsed (and at
/// least once), returning best/mean/stddev per-call seconds. Welford's
/// online update keeps the loop allocation-free regardless of rep count.
template <typename Fn>
TimingStats time_stats(Fn&& fn, double min_seconds = 0.05) {
  Timer total;
  TimingStats stats;
  stats.best = 1e300;
  double m2 = 0.0;
  do {
    Timer t;
    fn();
    const double secs = t.seconds();
    stats.best = std::min(stats.best, secs);
    ++stats.reps;
    const double delta = secs - stats.mean;
    stats.mean += delta / stats.reps;
    m2 += delta * (secs - stats.mean);
  } while (total.seconds() < min_seconds);
  stats.stddev = stats.reps > 0 ? std::sqrt(m2 / stats.reps) : 0.0;
  return stats;
}

/// Runs `fn` exactly `reps` times (at least once), returning best/mean/
/// stddev per-call seconds. The fixed-rep companion of time_stats for
/// benchmarks whose iteration count is chosen by the harness.
template <typename Fn>
TimingStats time_stats_n(Fn&& fn, int reps) {
  TimingStats stats;
  stats.best = 1e300;
  double m2 = 0.0;
  for (int r = 0; r < (reps > 0 ? reps : 1); ++r) {
    Timer t;
    fn();
    const double secs = t.seconds();
    stats.best = std::min(stats.best, secs);
    ++stats.reps;
    const double delta = secs - stats.mean;
    stats.mean += delta / stats.reps;
    m2 += delta * (secs - stats.mean);
  }
  stats.stddev = stats.reps > 0 ? std::sqrt(m2 / stats.reps) : 0.0;
  return stats;
}

/// Runs `fn` repeatedly until at least `min_seconds` have elapsed (and at
/// least once), returning the best (minimum) per-call seconds observed.
/// Used by the kernel autotuner's benchmarking feedback loop (Sec. 3.2).
template <typename Fn>
double time_best_of(Fn&& fn, double min_seconds = 0.05) {
  return time_stats(static_cast<Fn&&>(fn), min_seconds).best;
}

}  // namespace quasar
