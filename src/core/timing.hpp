/// \file timing.hpp
/// \brief Wall-clock timing used by the autotuner and benchmark harnesses.
#pragma once

#include <chrono>

namespace quasar {

/// Monotonic wall-clock stopwatch.
class Timer {
 public:
  Timer() { reset(); }

  /// Restarts the stopwatch.
  void reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Runs `fn` repeatedly until at least `min_seconds` have elapsed (and at
/// least once), returning the best (minimum) per-call seconds observed.
/// Used by the kernel autotuner's benchmarking feedback loop (Sec. 3.2).
template <typename Fn>
double time_best_of(Fn&& fn, double min_seconds = 0.05) {
  Timer total;
  double best = 1e300;
  do {
    Timer t;
    fn();
    best = std::min(best, t.seconds());
  } while (total.seconds() < min_seconds);
  return best;
}

}  // namespace quasar
