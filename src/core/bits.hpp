/// \file bits.hpp
/// \brief Bit-manipulation utilities for state-vector index arithmetic.
///
/// Applying a k-qubit gate walks all indices whose bits at the k gate
/// positions are free while the remaining n-k bits form the "c" substring
/// of the paper (Sec. 3.2). The helpers here expand a dense counter into
/// such an index (insert_zero_bit / IndexExpander), extract the gate-local
/// sub-index, and build masks.
#pragma once

#include <array>
#include <bit>
#include <string>
#include <vector>

#include "core/error.hpp"
#include "core/types.hpp"

namespace quasar {

/// Returns floor(log2(x)) for x > 0.
constexpr int ilog2(Index x) noexcept {
  return 63 - std::countl_zero(x);
}

/// True iff x is a power of two (and nonzero).
constexpr bool is_pow2(Index x) noexcept { return std::has_single_bit(x); }

/// Inserts a zero bit at position `pos`: bits [0,pos) stay, bits [pos,..)
/// shift up by one. insert_zero_bit(0b1011, 2) == 0b10011.
constexpr Index insert_zero_bit(Index x, int pos) noexcept {
  const Index low_mask = (Index{1} << pos) - 1;
  return ((x & ~low_mask) << 1) | (x & low_mask);
}

/// Narrows an Index to int with a range check: counts derived from qubit
/// geometry (rank counts, block counts) travel as Index but feed int
/// interfaces; an absurd exponent must fail loudly, not wrap negative.
inline int checked_int(Index value, const char* what) {
  QUASAR_CHECK(value <= Index{2147483647},
               std::string(what) + " exceeds int range");
  return static_cast<int>(value);
}

/// Extracts the bit at position `pos` (0 or 1).
constexpr int get_bit(Index x, int pos) noexcept {
  return static_cast<int>((x >> pos) & 1u);
}

/// Sets (value=1) or clears (value=0) the bit at `pos`.
constexpr Index set_bit(Index x, int pos, int value) noexcept {
  const Index mask = Index{1} << pos;
  return value ? (x | mask) : (x & ~mask);
}

/// Expands dense counters into state-vector indices that have zeros at a
/// fixed, sorted set of bit positions. Given gate qubit positions
/// q0 < q1 < ... < q(k-1), expand(i) inserts zero bits at those positions,
/// enumerating exactly the paper's "c" index substrings in increasing order.
class IndexExpander {
 public:
  /// \param sorted_positions strictly ascending bit positions (gate qubits).
  explicit IndexExpander(const std::vector<int>& sorted_positions) {
    QUASAR_CHECK(sorted_positions.size() <= kMaxPositions,
                 "too many gate qubits for IndexExpander");
    k_ = static_cast<int>(sorted_positions.size());
    for (int j = 0; j < k_; ++j) {
      if (j > 0) {
        QUASAR_CHECK(sorted_positions[j] > sorted_positions[j - 1],
                     "IndexExpander positions must be strictly ascending");
      }
      positions_[j] = sorted_positions[j];
    }
  }

  /// Number of zeroed positions.
  int count() const noexcept { return k_; }

  /// Expands dense counter i (0 <= i < 2^(n-k)) into an n-bit index with
  /// zero bits at all configured positions.
  Index expand(Index i) const noexcept {
    Index x = i;
    for (int j = 0; j < k_; ++j) x = insert_zero_bit(x, positions_[j]);
    return x;
  }

  /// Collapses an expanded index back to the dense counter (inverse of
  /// expand for indices with zeros at the configured positions).
  Index collapse(Index x) const noexcept {
    for (int j = k_ - 1; j >= 0; --j) {
      const Index low_mask = (Index{1} << positions_[j]) - 1;
      x = ((x >> 1) & ~low_mask) | (x & low_mask);
    }
    return x;
  }

 private:
  static constexpr std::size_t kMaxPositions = 16;
  std::array<int, kMaxPositions> positions_{};
  int k_ = 0;
};

/// Combines the bits of `index` at positions qs (ascending significance in
/// the output: qs[0] -> output bit 0) into the paper's gate-local index
/// "x = x_{i_{k-1}} ... x_{i_1} x_{i_0}".
inline Index gather_bits(Index index, const std::vector<int>& qs) noexcept {
  Index x = 0;
  for (std::size_t j = 0; j < qs.size(); ++j) {
    x |= static_cast<Index>(get_bit(index, qs[j])) << j;
  }
  return x;
}

/// Scatters the low bits of `x` to positions qs inside a zero base index.
inline Index scatter_bits(Index x, const std::vector<int>& qs) noexcept {
  Index out = 0;
  for (std::size_t j = 0; j < qs.size(); ++j) {
    out |= static_cast<Index>(get_bit(x, static_cast<int>(j))) << qs[j];
  }
  return out;
}

/// Precomputed offsets for a k-qubit gate: offset(t) = scatter_bits(t, qs)
/// for t in [0, 2^k). offsets[t] added to an expanded base index gives the
/// state-vector position of gate-local amplitude t.
inline std::vector<Index> make_gate_offsets(const std::vector<int>& qs) {
  const Index m = Index{1} << qs.size();
  std::vector<Index> offsets(m);
  for (Index t = 0; t < m; ++t) offsets[t] = scatter_bits(t, qs);
  return offsets;
}

}  // namespace quasar
