/// \file crc32c.hpp
/// \brief CRC32C (Castagnoli) checksums for on-disk integrity.
///
/// Every artifact this code puts on disk — checkpoint shards, manifests,
/// out-of-core segment frames — carries a CRC32C so a torn write, a bit
/// flip on disk, or a truncated file is detected before the data is
/// trusted (DESIGN.md §10/§11). CRC32C is the storage-stack convention
/// (iSCSI, ext4, RocksDB) and its software slicing-by-8 form streams at
/// several GB/s, far above the disk bandwidth it guards. Lives in core so
/// both the ckpt and oocore subsystems can share one implementation.
#pragma once

#include <cstddef>
#include <cstdint>

namespace quasar {

/// CRC32C of `bytes` bytes at `data`.
std::uint32_t crc32c(const void* data, std::size_t bytes);

/// Incremental form: extends `crc` (a previous crc32c result, or 0 for an
/// empty prefix) over the next `bytes` bytes. Chaining extensions over a
/// split buffer equals one crc32c over the concatenation.
std::uint32_t crc32c_extend(std::uint32_t crc, const void* data,
                            std::size_t bytes);

}  // namespace quasar
