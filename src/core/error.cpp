#include "core/error.hpp"

#include <sstream>

namespace quasar::detail {

void throw_check_failure(const char* expr, const char* file, int line,
                         const std::string& message) {
  std::ostringstream os;
  os << "quasar check failed: " << message << " [" << expr << " at " << file
     << ":" << line << "]";
  throw Error(os.str());
}

}  // namespace quasar::detail
