#include "core/scratch.hpp"

#include <utility>

namespace quasar {

namespace {
std::string& tag_storage() {
  static std::string tag;
  return tag;
}
}  // namespace

void set_process_scratch_tag(std::string tag) {
  tag_storage() = std::move(tag);
}

const std::string& process_scratch_tag() { return tag_storage(); }

}  // namespace quasar
