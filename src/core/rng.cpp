#include "core/rng.hpp"

#include <sstream>

#include "core/error.hpp"

namespace quasar {

namespace {
/// splitmix64 step; used to decorrelate seeds before feeding mt19937_64.
std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t s = seed;
  engine_.seed(splitmix64(s));
}

std::uint64_t Rng::uniform_int(std::uint64_t bound) {
  QUASAR_CHECK(bound > 0, "uniform_int bound must be positive");
  return std::uniform_int_distribution<std::uint64_t>(0, bound - 1)(engine_);
}

double Rng::uniform_real() {
  return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
}

double Rng::normal() {
  return std::normal_distribution<double>(0.0, 1.0)(engine_);
}

Rng Rng::split(std::uint64_t stream) {
  std::uint64_t mix = engine_() ^ (0xa02bdbf7bb3c0a7ull * (stream + 1));
  return Rng(mix);
}

std::string Rng::serialize() const {
  std::ostringstream os;
  os << engine_;
  return os.str();
}

void Rng::restore(std::string_view state) {
  // Deserialize into a scratch engine first so a malformed token stream
  // cannot leave this Rng half-updated.
  std::mt19937_64 restored;
  std::istringstream is{std::string(state)};
  is >> restored;
  QUASAR_CHECK(!is.fail(), "Rng::restore: malformed serialized state");
  is >> std::ws;
  QUASAR_CHECK(is.eof(),
               "Rng::restore: trailing garbage after serialized state");
  engine_ = restored;
}

}  // namespace quasar
