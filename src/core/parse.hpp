/// \file parse.hpp
/// \brief Strict text-to-number parsing for the circuit/schedule readers.
///
/// std::stoi silently accepts trailing garbage ("3x" -> 3) and escapes as
/// std::invalid_argument / std::out_of_range on malformed input, which
/// surfaces raw standard-library errors to CLI users. These helpers parse
/// the WHOLE token or throw quasar::Error naming the offending text.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace quasar {

/// Parses `token` as a decimal integer. The entire token must be consumed
/// (no trailing garbage) and the value must fit an int; otherwise throws
/// quasar::Error mentioning `what` and `context` (e.g. the input line).
int parse_int(std::string_view token, const std::string& what,
              const std::string& context = std::string());

/// Same, with an inclusive range check.
int parse_int_in_range(std::string_view token, int min, int max,
                       const std::string& what,
                       const std::string& context = std::string());

/// Parses `token` as a non-negative decimal 64-bit integer, whole-token
/// (shard byte counts in checkpoint manifests exceed int range).
std::uint64_t parse_uint64(std::string_view token, const std::string& what,
                           const std::string& context = std::string());

/// Parses `token` as a double, whole-token, throwing quasar::Error on
/// malformed input (used for gate parameters in the circuit format).
double parse_double(std::string_view token, const std::string& what,
                    const std::string& context = std::string());

/// Parses an on/off switch ("0" -> false, "1" -> true). Anything else
/// throws quasar::Error naming `what` — environment toggles must not
/// guess at "true"/"yes"/garbage.
bool parse_flag(std::string_view token, const std::string& what);

}  // namespace quasar
