/// \file shutdown.hpp
/// \brief Cooperative SIGINT/SIGTERM shutdown for long-lived processes.
///
/// The job server (DESIGN.md §13) and the checkpointed demos run for
/// minutes to hours; killing them with Ctrl-C must not tear a snapshot
/// or orphan rank processes. This module installs an async-signal-safe
/// handler that only sets an atomic flag; the stage loops poll the flag
/// at stage boundaries (via CheckpointedRun::stop), checkpoint, drain
/// the writer, and return. A second signal while the first is still
/// draining exits immediately with the conventional 128+SIGINT status —
/// the operator's escape hatch from a wedged drain.
#pragma once

#include <atomic>

namespace quasar {

/// Installs the SIGINT/SIGTERM handler (idempotent). First signal sets
/// the shutdown flag; a second one calls _Exit(130).
void install_shutdown_handler();

/// The flag the handler sets. Stable address for the whole process —
/// point CheckpointedRun::stop at it to make any checkpointed run
/// preempt itself at the next stage boundary after a signal.
const std::atomic<bool>* shutdown_flag();

/// True once a shutdown was requested (signal or programmatic).
bool shutdown_requested();

/// Programmatic shutdown request (the server's SHUTDOWN verb, tests).
void request_shutdown();

/// Clears the flag (tests re-running shutdown scenarios in-process).
void reset_shutdown_flag();

}  // namespace quasar
