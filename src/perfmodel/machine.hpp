/// \file machine.hpp
/// \brief Machine descriptions for the performance model.
///
/// Edison and Cori II numbers come straight from the paper (Fig. 2,
/// Sec. 4.1/4.2); the host model is detected and measured at runtime so
/// the benches can print "model vs measured" for the machine they
/// actually run on. Efficiency factors (achievable fractions of peak and
/// of nominal bandwidth) are calibrated against the paper's Figs. 6/9 and
/// documented in EXPERIMENTS.md.
#pragma once

#include <string>

namespace quasar {

/// A node- or socket-level machine description.
struct MachineModel {
  std::string name;
  int cores = 1;
  double ghz = 1.0;
  /// Theoretical peak, GFLOP/s (all cores).
  double peak_gflops = 1.0;
  /// SIMD width in complex<double> lanes (2 = AVX, 4 = AVX-512).
  int simd_complex_width = 1;
  bool fma = false;
  /// Nominal main-memory bandwidth, GB/s.
  double dram_bw_gbs = 1.0;
  /// Fast-memory bandwidth (MCDRAM), GB/s; equals dram_bw_gbs if absent.
  double fast_bw_gbs = 1.0;
  /// Fast-memory capacity in bytes (0 when absent).
  double fast_mem_bytes = 0.0;
  /// Effective last-level-cache associativity per core as seen by the
  /// strided gather (KNL: 16-way L2 shared by 2 cores => 8).
  int effective_cache_ways = 8;
  /// Fraction of nominal bandwidth a streaming kernel achieves.
  double bw_efficiency = 0.6;
  /// Fraction of peak the compute-bound kernels achieve.
  double compute_efficiency = 0.35;

  /// Achievable streaming bandwidth (fast memory when present), GB/s.
  double achievable_bw() const { return fast_bw_gbs * bw_efficiency; }
  /// Achievable compute rate, GFLOP/s.
  double achievable_gflops() const { return peak_gflops * compute_efficiency; }
};

/// One 12-core Intel Xeon E5-2695 v2 socket of Edison (Fig. 2a:
/// 230.4 GFLOPS peak with AVX, 52 GB/s stream TRIAD; Ivy Bridge 8-way
/// L1/L2 caches).
MachineModel edison_socket();

/// A full 2-socket, 24-core Edison node (Fig. 9/10).
MachineModel edison_node();

/// One 68-core Intel Xeon Phi 7250 (KNL) node of Cori II (Fig. 2b:
/// 3133.4 GFLOPS peak, 460 GB/s MCDRAM, 115.2 GB/s DRAM, 16 GB MCDRAM;
/// 16-way L2 shared between 2 cores).
MachineModel cori_knl_node();

/// Describes the machine this process runs on: core count and SIMD width
/// from the build/runtime, bandwidth measured with a short STREAM-triad
/// sweep when `measure_bandwidth` (otherwise a conservative guess).
MachineModel host_machine(bool measure_bandwidth = true);

/// Measured STREAM-triad bandwidth of this host in GB/s.
double measure_stream_triad_gbs();

}  // namespace quasar
