/// \file kernel_model.hpp
/// \brief Predicted k-qubit kernel performance (Figs. 6, 7, 9, 10).
#pragma once

#include <vector>

#include "perfmodel/machine.hpp"

namespace quasar {

/// Predicted GFLOPS of the k-qubit kernel on `machine`. `high_order`
/// applies the cache-associativity penalty of Sec. 3.3: once the 2^k
/// gathered strides exceed the effective cache ways, each matrix-vector
/// multiplication re-misses, dividing throughput by ~2^k/ways (Fig. 6/9).
double kernel_gflops(const MachineModel& machine, int k, bool high_order);

/// Predicted GFLOPS when only `cores` of the machine's cores are used
/// (strong scaling, Figs. 7 and 10): bandwidth saturates at ~1/3 of the
/// cores while the compute ceiling scales linearly.
double kernel_gflops_cores(const MachineModel& machine, int k, int cores,
                           bool high_order = false);

/// Seconds to sweep one dense k-qubit kernel over a 2^n state.
double kernel_seconds(const MachineModel& machine, int k, int num_qubits,
                      bool high_order = false);

/// Seconds for the 2x-slower regime when the state exceeds fast memory
/// (KNL: spill out of MCDRAM, Sec. 4.1.2).
double kernel_seconds_spilled(const MachineModel& machine, int k,
                              int num_qubits);

/// Seconds to apply one cache-blocked run of gates (block_apply.hpp) to
/// a 2^n state: the whole run pays ONE streaming read + write of the
/// state (instead of one per gate), overlapped with the run's summed
/// compute. `ks` holds each gate's width; entry 0 means a diagonal
/// (phase-only, 6 FLOP/amplitude) gate.
double blocked_run_seconds(const MachineModel& machine,
                           const std::vector<int>& ks, int num_qubits);

}  // namespace quasar
