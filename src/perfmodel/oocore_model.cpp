#include "perfmodel/oocore_model.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <cstring>

#include "core/error.hpp"
#include "core/scratch.hpp"

namespace quasar {

double oocore_io_seconds(const OocoreModel& model, double raw_bytes_moved) {
  const double ratio = std::max(model.compression_ratio, 1e-9);
  const double bw = std::max(model.disk_bw_gbs, 1e-9) * 1e9;
  return raw_bytes_moved / (ratio * bw);
}

double oocore_sweep_seconds(const OocoreModel& model, double compute_seconds,
                            double raw_bytes_moved) {
  return std::max(compute_seconds, oocore_io_seconds(model, raw_bytes_moved));
}

double oocore_overlap_efficiency(double compute_seconds, double io_seconds,
                                 double sweep_seconds) {
  const double ideal = std::max(compute_seconds, io_seconds);
  const double serial = compute_seconds + io_seconds;
  if (serial <= ideal || sweep_seconds <= ideal) return 1.0;
  if (sweep_seconds >= serial) return 0.0;
  return (serial - sweep_seconds) / (serial - ideal);
}

namespace {

double now_seconds() {
  return std::chrono::duration_cast<std::chrono::duration<double>>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

double measure_disk_stream_gbs(const std::string& directory,
                               std::size_t bytes) {
  constexpr std::size_t kAlign = 4096;
  constexpr std::size_t kChunk = std::size_t{4} << 20;
  bytes = std::max(bytes, kChunk);
  bytes = bytes / kChunk * kChunk;

  std::string path =
      directory + "/quasar_diskbench_" + process_scratch_tag() + "XXXXXX";
  const int fd = ::mkstemp(path.data());
  QUASAR_CHECK(fd >= 0, "measure_disk_stream_gbs: cannot create a scratch "
                        "file in '" + directory + "'");
  ::unlink(path.c_str());
  // Direct I/O keeps the page cache out of the measurement; tmpfs-style
  // filesystems refuse it, in which case buffered + fsync is the honest
  // figure for what the pipeline will see there anyway.
  int flags = ::fcntl(fd, F_GETFL);
  const bool direct =
      flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_DIRECT) == 0;

  void* raw = nullptr;
  if (::posix_memalign(&raw, kAlign, kChunk) != 0) {
    ::close(fd);
    throw Error("measure_disk_stream_gbs: allocation failed");
  }
  std::memset(raw, 0x5a, kChunk);

  double elapsed = 0.0;
  std::size_t moved = 0;
  const double t0 = now_seconds();
  for (std::size_t off = 0; off < bytes; off += kChunk) {
    const ssize_t w =
        ::pwrite(fd, raw, kChunk, static_cast<off_t>(off));
    if (w != static_cast<ssize_t>(kChunk)) break;
    moved += kChunk;
  }
  if (!direct) ::fdatasync(fd);
  for (std::size_t off = 0; off < moved; off += kChunk) {
    if (::pread(fd, raw, kChunk, static_cast<off_t>(off)) !=
        static_cast<ssize_t>(kChunk)) {
      break;
    }
  }
  elapsed = now_seconds() - t0;
  std::free(raw);
  ::close(fd);
  if (moved == 0 || elapsed <= 0.0) return 0.0;
  // Write + read passes: 2x the file size moved.
  return 2.0 * static_cast<double>(moved) / elapsed * 1e-9;
}

}  // namespace quasar
