#include "perfmodel/machine.hpp"

#include <omp.h>

#include <algorithm>
#include <vector>

#include "core/aligned.hpp"
#include "core/timing.hpp"
#include "kernels/apply.hpp"

namespace quasar {

MachineModel edison_socket() {
  MachineModel m;
  m.name = "Edison socket (Xeon E5-2695 v2, Ivy Bridge)";
  m.cores = 12;
  m.ghz = 2.4;
  m.peak_gflops = 230.4;  // 12 cores x 2.4 GHz x 8 FLOP/cycle (AVX)
  m.simd_complex_width = 2;
  m.fma = false;
  m.dram_bw_gbs = 52.0;  // stream TRIAD, Fig. 2a
  m.fast_bw_gbs = 52.0;
  m.fast_mem_bytes = 0.0;
  m.effective_cache_ways = 8;  // 8-way L1/L2 (Sec. 4.2.1)
  m.bw_efficiency = 0.85;      // TRIAD number is already achievable
  m.compute_efficiency = 0.47; // "47% of theoretical peak" (Sec. 4.2.2)
  return m;
}

MachineModel edison_node() {
  MachineModel m = edison_socket();
  m.name = "Edison node (2 sockets, 24 cores)";
  m.cores = 24;
  m.peak_gflops = 460.8;
  m.dram_bw_gbs = 104.0;
  m.fast_bw_gbs = 104.0;
  return m;
}

MachineModel cori_knl_node() {
  MachineModel m;
  m.name = "Cori II node (Xeon Phi 7250, KNL)";
  m.cores = 68;
  m.ghz = 1.4;
  m.peak_gflops = 3133.4;  // Fig. 2b
  m.simd_complex_width = 4;
  m.fma = true;
  m.dram_bw_gbs = 115.2;   // Fig. 2b
  m.fast_bw_gbs = 460.0;   // MCDRAM, Fig. 2b
  m.fast_mem_bytes = 16.0 * (1ull << 30);
  m.effective_cache_ways = 8;  // 16-way L2 shared between 2 cores (Fig. 6)
  // Calibrated to Fig. 6: k=1 kernel ~120 GFLOPS => ~0.6 x 460 GB/s; the
  // k=5 kernel saturates near 1050 GFLOPS => ~0.34 x peak.
  m.bw_efficiency = 0.60;
  m.compute_efficiency = 0.34;
  return m;
}

double measure_stream_triad_gbs() {
  // Classic a[i] = b[i] + s*c[i] over arrays far larger than the LLC.
  const std::size_t n = 1u << 23;  // 3 x 64 MiB of doubles
  AlignedVector<double> a(n, 0.0), b(n, 1.0), c(n, 2.0);
  const double s = 3.0;
  auto triad = [&] {
#pragma omp parallel for schedule(static)
    for (std::int64_t i = 0; i < static_cast<std::int64_t>(n); ++i) {
      a[i] = b[i] + s * c[i];
    }
  };
  triad();  // warm up / first touch
  const double secs = time_best_of(triad, 0.2);
  const double bytes = 3.0 * static_cast<double>(n) * sizeof(double);
  return bytes / secs * 1e-9;
}

MachineModel host_machine(bool measure_bandwidth) {
  MachineModel m;
  m.name = "host";
  m.cores = omp_get_max_threads();
  m.ghz = 0.0;  // unknown without cpuid MSR access; peak left heuristic
  m.simd_complex_width = simd_complex_width();
  m.fma = m.simd_complex_width >= 2;
  m.dram_bw_gbs = measure_bandwidth ? measure_stream_triad_gbs() : 10.0;
  m.fast_bw_gbs = m.dram_bw_gbs;
  m.fast_mem_bytes = 0.0;
  m.effective_cache_ways = 8;
  m.bw_efficiency = 1.0;  // measured, already achievable
  // Peak estimate: assume ~3 GHz, 2 FMA ports when FMA is available.
  const double flops_per_cycle =
      2.0 * m.simd_complex_width * (m.fma ? 2.0 : 1.0) * 2.0;
  m.peak_gflops = m.cores * 3.0 * flops_per_cycle;
  m.compute_efficiency = 0.35;
  return m;
}

}  // namespace quasar
