/// \file comm_model.hpp
/// \brief Interconnect model for the Cray Aries dragonfly (Sec. 4.1/4.2).
///
/// Calibrated against the paper's published runs (Table 2):
///   36 qubits,   64 nodes: 1 swap, 17.2 GB/node, 12.4 s comm
///   42 qubits, 4096 nodes: 2 swaps, 17.2 GB/node each, 57.1 s comm
///   45 qubits, 8192 nodes: 2 swaps, 68.7 GB/node each, 431 s comm
/// The effective per-node all-to-all bandwidth shrinks with node count
/// (bisection pressure on the dragonfly) and each collective pays a
/// synchronization/imbalance cost that grows with the machine size.
#pragma once

#include <cstdint>

namespace quasar {

/// Parameters of the all-to-all model; defaults fit the paper's runs.
struct InterconnectModel {
  /// Effective per-node all-to-all bandwidth at the reference node count.
  double base_bw_gbs = 1.45;
  /// Reference node count for base_bw_gbs.
  int base_nodes = 64;
  /// Power-law exponent of the bandwidth decay with node count.
  double decay = 0.28;
  /// Synchronization / load-imbalance seconds per collective, per
  /// sqrt(nodes).
  double sync_per_sqrt_node = 0.08;

  /// Effective per-node bandwidth for a world all-to-all on `nodes`.
  double alltoall_bw_gbs(int nodes) const;

  /// Seconds for one all-to-all moving `bytes_per_node` from every node.
  double alltoall_seconds(int nodes, double bytes_per_node) const;

  /// Seconds for one baseline dense global gate (2 pairwise half-state
  /// exchanges, Sec. 3.4): same volume as a swap, but point-to-point, so
  /// it runs at pair bandwidth — except that, averaged over global
  /// qubits, it is ~2x faster than the all-to-all (Sec. 4.1.2: low-order
  /// global qubits enjoy locality in the dragonfly).
  double pairwise_gate_seconds(int nodes, double bytes_per_node) const;
};

/// The Cray Aries instance used for both Edison and Cori II.
InterconnectModel aries_dragonfly();

}  // namespace quasar
