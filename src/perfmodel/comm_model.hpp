/// \file comm_model.hpp
/// \brief Interconnect model for the Cray Aries dragonfly (Sec. 4.1/4.2).
///
/// Calibrated against the paper's published runs (Table 2):
///   36 qubits,   64 nodes: 1 swap, 17.2 GB/node, 12.4 s comm
///   42 qubits, 4096 nodes: 2 swaps, 17.2 GB/node each, 57.1 s comm
///   45 qubits, 8192 nodes: 2 swaps, 68.7 GB/node each, 431 s comm
/// The effective per-node all-to-all bandwidth shrinks with node count
/// (bisection pressure on the dragonfly) and each collective pays a
/// synchronization/imbalance cost that grows with the machine size.
#pragma once

#include <cstdint>

namespace quasar {

/// Parameters of the all-to-all model; defaults fit the paper's runs.
struct InterconnectModel {
  /// Effective per-node all-to-all bandwidth at the reference node count.
  double base_bw_gbs = 1.45;
  /// Reference node count for base_bw_gbs.
  int base_nodes = 64;
  /// Power-law exponent of the bandwidth decay with node count.
  double decay = 0.28;
  /// Synchronization / load-imbalance seconds per collective, per
  /// sqrt(nodes).
  double sync_per_sqrt_node = 0.08;
  /// Extra per-round synchronization when the exchange is chunked
  /// through a bounded bounce buffer (one barrier per chunk round).
  double chunk_sync_seconds = 2e-5;

  /// Effective per-node bandwidth for a world all-to-all on `nodes`.
  double alltoall_bw_gbs(int nodes) const;

  /// Seconds for one all-to-all moving `bytes_per_node` from every node.
  double alltoall_seconds(int nodes, double bytes_per_node) const;

  /// Seconds for the in-place chunked all-to-all: the same volume as
  /// alltoall_seconds, plus one chunk_sync_seconds round per bounce
  /// buffer refill. With the default 64 MB buffer this overhead is a few
  /// milliseconds against hundreds of seconds of transfer — the price of
  /// dropping the 2x shadow allocation (Sec. 4 discussion).
  double chunked_alltoall_seconds(
      int nodes, double bytes_per_node,
      double bounce_bytes = 64.0 * 1024.0 * 1024.0) const;

  /// Seconds for one baseline dense global gate (2 pairwise half-state
  /// exchanges, Sec. 3.4): same volume as a swap, but point-to-point, so
  /// it runs at pair bandwidth — except that, averaged over global
  /// qubits, it is ~2x faster than the all-to-all (Sec. 4.1.2: low-order
  /// global qubits enjoy locality in the dragonfly).
  double pairwise_gate_seconds(int nodes, double bytes_per_node) const;
};

/// The Cray Aries instance used for both Edison and Cori II.
InterconnectModel aries_dragonfly();

}  // namespace quasar
