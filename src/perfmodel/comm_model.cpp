#include "perfmodel/comm_model.hpp"

#include <cmath>

namespace quasar {

double InterconnectModel::alltoall_bw_gbs(int nodes) const {
  if (nodes <= 1) return 1e9;  // no network involved
  const double ratio = static_cast<double>(nodes) / base_nodes;
  return base_bw_gbs * std::pow(ratio, -decay);
}

double InterconnectModel::alltoall_seconds(int nodes,
                                           double bytes_per_node) const {
  if (nodes <= 1) return 0.0;
  return bytes_per_node * 1e-9 / alltoall_bw_gbs(nodes) +
         sync_per_sqrt_node * std::sqrt(static_cast<double>(nodes));
}

double InterconnectModel::chunked_alltoall_seconds(
    int nodes, double bytes_per_node, double bounce_bytes) const {
  if (nodes <= 1) return 0.0;
  const double rounds =
      bounce_bytes > 0.0 ? std::ceil(bytes_per_node / bounce_bytes) : 1.0;
  return alltoall_seconds(nodes, bytes_per_node) +
         rounds * chunk_sync_seconds;
}

double InterconnectModel::pairwise_gate_seconds(
    int nodes, double bytes_per_node) const {
  if (nodes <= 1) return 0.0;
  // Average over global qubits: ~1/2 the cost of a full swap (Fig. 5
  // caption), plus the same per-collective synchronization.
  return 0.5 * bytes_per_node * 1e-9 / alltoall_bw_gbs(nodes) +
         sync_per_sqrt_node * std::sqrt(static_cast<double>(nodes));
}

InterconnectModel aries_dragonfly() { return InterconnectModel{}; }

}  // namespace quasar
