#include "perfmodel/run_model.hpp"

#include <algorithm>
#include <cmath>

#include "core/error.hpp"
#include "kernels/apply.hpp"
#include "kernels/autotune.hpp"
#include "kernels/block_apply.hpp"

namespace quasar {

namespace {

/// Seconds for one diagonal (phase-only) sweep of a 2^l state: pure
/// streaming, one read + one write per amplitude.
double diagonal_sweep_seconds(const MachineModel& node, int local_qubits) {
  const double bytes =
      2.0 * static_cast<double>(index_pow2(local_qubits)) *
      kBytesPerAmplitude;
  return bytes * 1e-9 / node.achievable_bw();
}

bool is_high_order(const std::vector<int>& locations) {
  // The associativity penalty applies when the gathered strides are
  // large; the lowest gate location sets the smallest stride.
  return !locations.empty() && locations.front() >= kHighOrderThreshold;
}

/// model_run body; when `stage_seconds` is non-null it receives each
/// stage's critical-path compute time (plain kernel sweeps plus, for
/// every stage after the first, its transition's all-to-all + permute) —
/// the per-stage granularity the checkpoint overlap model needs.
RunPrediction model_run_impl(const Circuit& circuit,
                             const Schedule& schedule,
                             const MachineModel& node,
                             const InterconnectModel& net, int nodes,
                             std::vector<double>* stage_seconds) {
  QUASAR_CHECK(nodes >= 1 && is_pow2(static_cast<Index>(nodes)),
               "model_run: nodes must be a power of two");
  const int l = schedule.num_local;
  QUASAR_CHECK(schedule.num_qubits - l == ilog2(static_cast<Index>(nodes)),
               "model_run: nodes must equal 2^(n - num_local)");

  RunPrediction p;
  p.swaps = schedule.num_swaps();
  const double per_node_amps = static_cast<double>(index_pow2(l));

  // Block exponent the node-level executor would use (block_apply.hpp):
  // the installed configuration, disabled when too few blocks remain.
  const int b_conf = block_run_config().block_exponent;
  const int b_model = (b_conf >= 2 && b_conf <= l - 2) ? b_conf : -1;
  const int min_run = std::max(1, block_run_config().min_run_length);

  for (const Stage& stage : schedule.stages) {
    // Plain per-item sweep costs, plus the shapes the run planner sees.
    std::vector<double> item_seconds(stage.items.size(), 0.0);
    std::vector<int> item_k(stage.items.size(), 0);  // 0 = diagonal
    std::vector<GateShape> shapes(stage.items.size());
    for (std::size_t i = 0; i < stage.items.size(); ++i) {
      const StageItem& item = stage.items[i];
      if (item.kind == StageItem::Kind::kCluster) {
        const Cluster& cluster = stage.clusters[item.cluster];
        for (int q : cluster.qubits) {
          shapes[i].qubit_mask |= q < 64 ? (std::uint64_t{1} << q) : 0;
        }
        if (cluster.diagonal) {
          shapes[i].eligible = b_model > 0;  // any location (phase table)
          item_seconds[i] = diagonal_sweep_seconds(node, l);
          p.total_flops += 6.0 * per_node_amps * nodes;
          continue;
        }
        item_k[i] = cluster.width();
        shapes[i].eligible =
            b_model > 0 && cluster.qubits.back() < b_model;
        double secs = kernel_seconds_spilled(node, cluster.width(), l);
        if (is_high_order(cluster.qubits)) {
          const double stride_sets =
              static_cast<double>(index_pow2(cluster.width()));
          if (stride_sets > node.effective_cache_ways) {
            secs *= stride_sets / node.effective_cache_ways;
          }
        }
        item_seconds[i] = secs;
        p.total_flops +=
            flops_per_amplitude(cluster.width()) * per_node_amps * nodes;
      } else {
        // Specialized global op: at worst a rank-conditional diagonal or
        // small local sweep; phases are free. Never joins a blocked run
        // (it may involve rank-dependent control flow).
        const GateOp& op = circuit.op(item.op);
        bool has_local = false;
        for (Qubit q : op.qubits) {
          const int loc = stage.location(q);
          has_local |= loc < l;
          shapes[i].qubit_mask |= loc < 64 ? (std::uint64_t{1} << loc) : 0;
        }
        if (has_local) {
          item_seconds[i] = diagonal_sweep_seconds(node, l);
          p.total_flops += 6.0 * per_node_amps * nodes;
        }
      }
    }
    double stage_kernel = 0.0;
    for (double secs : item_seconds) stage_kernel += secs;
    p.kernel_seconds += stage_kernel;
    if (stage_seconds != nullptr) stage_seconds->push_back(stage_kernel);

    // Blocked-executor prediction: same planner as the real executor,
    // runs of >= min_run items share one streaming sweep.
    for (const BlockPlanSegment& seg : plan_gate_runs(shapes, true)) {
      if (static_cast<int>(seg.run.size()) >= min_run) {
        std::vector<int> ks;
        ks.reserve(seg.run.size());
        for (std::size_t g : seg.run) ks.push_back(item_k[g]);
        p.blocked_kernel_seconds += blocked_run_seconds(node, ks, l);
        p.blocked_runs += 1;
        p.blocked_sweeps_saved += static_cast<int>(seg.run.size()) - 1;
      } else {
        for (std::size_t g : seg.run) {
          p.blocked_kernel_seconds += item_seconds[g];
        }
      }
      for (std::size_t g : seg.solo) {
        p.blocked_kernel_seconds += item_seconds[g];
      }
    }
  }

  const double bytes_per_node = per_node_amps * kBytesPerAmplitude;
  p.comm_seconds =
      p.swaps * net.chunked_alltoall_seconds(nodes, bytes_per_node);
  // Each transition also pays one fused local permutation sweep (read +
  // write every local amplitude once, streaming).
  p.permute_seconds = p.swaps * 2.0 * per_node_amps * kBytesPerAmplitude *
                      1e-9 / node.achievable_bw();
  // Every stage after the first starts with one transition; charge its
  // all-to-all + permute to that stage for the per-stage breakdown.
  if (stage_seconds != nullptr && p.swaps > 0) {
    const double per_swap = (p.comm_seconds + p.permute_seconds) / p.swaps;
    for (std::size_t si = 1; si < stage_seconds->size(); ++si) {
      (*stage_seconds)[si] += per_swap;
    }
  }
  return p;
}

}  // namespace

RunPrediction model_run(const Circuit& circuit, const Schedule& schedule,
                        const MachineModel& node,
                        const InterconnectModel& net, int nodes) {
  return model_run_impl(circuit, schedule, node, net, nodes, nullptr);
}

RunPrediction model_run(const Circuit& circuit, const Schedule& schedule,
                        const MachineModel& node,
                        const InterconnectModel& net, int nodes,
                        const CheckpointModel& ckpt) {
  QUASAR_CHECK(ckpt.write_gbs > 0.0,
               "model_run: checkpoint write bandwidth must be positive");
  QUASAR_CHECK(ckpt.snapshot_every >= 1,
               "model_run: snapshot_every must be >= 1");
  std::vector<double> stage_seconds;
  RunPrediction p =
      model_run_impl(circuit, schedule, node, net, nodes, &stage_seconds);
  const std::size_t num_stages = stage_seconds.size();
  if (num_stages == 0) return p;

  const double bytes_per_node =
      static_cast<double>(index_pow2(schedule.num_local)) *
      kBytesPerAmplitude;
  // Staging copy: read the state, write the double-buffer slot — always
  // on the critical path, at achievable memory bandwidth.
  const double copy_seconds =
      2.0 * bytes_per_node * 1e-9 / node.achievable_bw();
  const double write_seconds = bytes_per_node * 1e-9 / ckpt.write_gbs;

  const std::size_t every = static_cast<std::size_t>(ckpt.snapshot_every);
  for (std::size_t si = 0; si < num_stages; ++si) {
    const bool boundary = (si + 1) % every == 0 || si + 1 == num_stages;
    if (!boundary) continue;
    ++p.snapshots;
    double exposed = copy_seconds;
    if (!ckpt.overlapped) {
      exposed += write_seconds;
    } else {
      // The background write hides behind compute until the next
      // snapshot boundary; the final snapshot has nothing to hide behind
      // (the writer drains at close()).
      double hide = 0.0;
      for (std::size_t sj = si + 1; sj < num_stages; ++sj) {
        hide += stage_seconds[sj];
        if ((sj + 1) % every == 0) break;  // next snapshot drains first
      }
      exposed += std::max(0.0, write_seconds - hide);
    }
    p.checkpoint_seconds += exposed;
  }
  return p;
}

RunPrediction model_baseline_run(const Circuit& circuit, int num_local,
                                 SpecializationMode mode,
                                 const MachineModel& node,
                                 const InterconnectModel& net, int nodes) {
  QUASAR_CHECK(nodes >= 1 && is_pow2(static_cast<Index>(nodes)),
               "model_baseline_run: nodes must be a power of two");
  QUASAR_CHECK(circuit.num_qubits() - num_local ==
                   ilog2(static_cast<Index>(nodes)),
               "model_baseline_run: nodes must equal 2^(n - num_local)");

  RunPrediction p;
  const double per_node_amps =
      static_cast<double>(index_pow2(num_local));
  const double bytes_per_node = per_node_amps * kBytesPerAmplitude;

  for (const GateOp& op : circuit.ops()) {
    bool dense_global = false;
    for (int j = 0; j < op.arity(); ++j) {
      if (op.qubits[j] >= num_local && requires_local(op, j, mode)) {
        dense_global = true;
      }
    }
    if (dense_global) {
      ++p.comm_gates;
      p.comm_seconds += net.pairwise_gate_seconds(nodes, bytes_per_node);
      // The exchanged halves still get the 2x2 applied locally.
      p.kernel_seconds += kernel_seconds_spilled(node, 1, num_local);
      p.total_flops += flops_per_amplitude(1) * per_node_amps * nodes;
      continue;
    }
    bool any_global = false;
    for (Qubit q : op.qubits) any_global |= q >= num_local;
    if (any_global && op.diagonal) {
      p.kernel_seconds += diagonal_sweep_seconds(node, num_local);
      p.total_flops += 6.0 * per_node_amps * nodes;
      continue;
    }
    // Purely local gate-by-gate sweep (no fusion in the baseline).
    const int k = op.arity();
    p.kernel_seconds += kernel_seconds_spilled(node, k, num_local);
    p.total_flops += flops_per_amplitude(k) * per_node_amps * nodes;
  }
  return p;
}

}  // namespace quasar
