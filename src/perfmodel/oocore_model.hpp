/// \file oocore_model.hpp
/// \brief Cost model for the out-of-core segment pipeline (DESIGN.md §11).
///
/// A pipelined sweep overlaps the compute on tile k with background I/O
/// on tiles k-1 / k+1, so with enough ring depth the wall time is
///
///   sweep = max(compute, io)   with   io = raw_bytes / (ratio * disk_bw)
///
/// instead of compute + io: the codec's compression ratio multiplies the
/// effective disk bandwidth, and whichever side is slower sets the pace.
/// The obs run report joins this prediction against the pipeline's
/// measured compute/stall/io counters — the out-of-core analogue of the
/// paper's measured-vs-predicted stage tables (Sec. 4).
#pragma once

#include <cstddef>
#include <string>

namespace quasar {

/// Disk-side parameters of the pipeline model.
struct OocoreModel {
  /// Effective streaming bandwidth of the backing device, GB/s. Measure
  /// with measure_disk_stream_gbs() for the directory that will host the
  /// segment files; defaults to a conservative container-SSD figure.
  double disk_bw_gbs = 0.5;
  /// Raw bytes / encoded bytes achieved by the shard codec (1.0 = kRaw).
  double compression_ratio = 1.0;
};

/// Seconds the disk needs to move `raw_bytes_moved` logical bytes (reads
/// plus writebacks) through the codec: raw volume shrunk by the ratio,
/// streamed at the modeled bandwidth.
double oocore_io_seconds(const OocoreModel& model, double raw_bytes_moved);

/// Pipelined sweep wall time: max(compute, io) — full overlap of the
/// slower side over the faster one.
double oocore_sweep_seconds(const OocoreModel& model, double compute_seconds,
                            double raw_bytes_moved);

/// Fraction of the ideal overlap actually achieved by a measured sweep:
/// 1.0 when wall == max(compute, io), 0.0 when wall == compute + io.
/// Returns 1.0 when there was nothing to overlap.
double oocore_overlap_efficiency(double compute_seconds, double io_seconds,
                                 double sweep_seconds);

/// Measures the streaming write+read bandwidth (GB/s) of the filesystem
/// hosting `directory` with a short direct-I/O pass over a scratch file
/// (buffered + fsync fallback when O_DIRECT is unsupported). The scratch
/// file is unlinked before use and never survives the call.
double measure_disk_stream_gbs(const std::string& directory,
                               std::size_t bytes = std::size_t{64} << 20);

}  // namespace quasar
