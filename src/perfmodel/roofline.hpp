/// \file roofline.hpp
/// \brief Roofline model (Fig. 2) over MachineModel.
#pragma once

#include <string>
#include <vector>

#include "perfmodel/machine.hpp"

namespace quasar {

/// The optimization steps annotated in Fig. 2.
enum class OptStep {
  kBaseline,   ///< Sec. 3.1 two-vector implementation
  kStep1,      ///< lazy evaluation / in-place fused kernels
  kStep2,      ///< + explicit vectorization and FMA re-ordering
  kStep3,      ///< + register blocking and matrix pre-permutation
};

/// Roofline-attainable GFLOPS at a given operational intensity:
/// min(ceiling(step), OI x achievable bandwidth).
double roofline_attainable(const MachineModel& machine, double oi,
                           OptStep step);

/// The compute ceiling a given optimization step can reach, GFLOPS:
/// baseline/step1 run scalar (peak / SIMD width, and /2 without FMA use);
/// step2 adds the vector units; step3 adds the blocking efficiency.
double step_ceiling(const MachineModel& machine, OptStep step);

/// One row of the roofline table.
struct RooflinePoint {
  std::string label;
  double oi = 0.0;
  double gflops = 0.0;
};

/// Model points for the 1- and 4-qubit kernels at every optimization step
/// on `machine` (the data behind Fig. 2a/2b).
std::vector<RooflinePoint> roofline_model_points(const MachineModel& machine);

}  // namespace quasar
