/// \file run_model.hpp
/// \brief End-to-end run-time prediction (Table 2, Fig. 8, Sec. 4.2.2).
///
/// Combines the kernel model (per-cluster sweep times on one node) with
/// the interconnect model (per-swap all-to-all times) to predict the
/// time-to-solution of a scheduled circuit at full machine scale, and the
/// baseline [5] cost of the same circuit for the speedup column.
#pragma once

#include "perfmodel/comm_model.hpp"
#include "perfmodel/kernel_model.hpp"
#include "sched/schedule.hpp"

namespace quasar {

/// Checkpointing policy for the model_run() overload below: matches the
/// runtime's CheckpointedRun + CheckpointWriter knobs (DESIGN.md §10).
struct CheckpointModel {
  /// Sustained per-node snapshot write bandwidth, GB/s (disk or parallel
  /// file system share).
  double write_gbs = 1.0;
  /// Stage boundaries between snapshots (the final boundary is always
  /// snapshotted, mirroring the runtime).
  int snapshot_every = 1;
  /// Background writer: the disk write overlaps the following stages'
  /// compute, leaving only the staging memcpy (and any write tail longer
  /// than the compute it hides behind) on the critical path.
  bool overlapped = true;
};

/// Predicted wall-clock decomposition of one run.
struct RunPrediction {
  double kernel_seconds = 0.0;
  double comm_seconds = 0.0;
  /// Local data motion of the stage transitions: one fused
  /// bit-permutation sweep per transition (read + write every amplitude
  /// once at node memory bandwidth).
  double permute_seconds = 0.0;
  int swaps = 0;
  int comm_gates = 0;       ///< baseline only: dense global gates
  double total_flops = 0.0; ///< across the whole machine
  /// Kernel time when stage items execute through the cache-blocked run
  /// executor (block_apply.hpp): runs of low-location clusters share one
  /// streaming sweep. Computed alongside kernel_seconds (which stays the
  /// plain one-sweep-per-cluster prediction).
  double blocked_kernel_seconds = 0.0;
  int blocked_runs = 0;         ///< blocked runs formed across all stages
  int blocked_sweeps_saved = 0; ///< DRAM sweeps avoided by blocking
  /// Critical-path checkpoint overhead (0 when no CheckpointModel was
  /// given): staging copies plus any disk-write tail the background
  /// writer could not hide behind compute.
  double checkpoint_seconds = 0.0;
  int snapshots = 0;            ///< snapshot generations the model assumes

  double total_seconds() const {
    return kernel_seconds + comm_seconds + permute_seconds +
           checkpoint_seconds;
  }
  /// Predicted wall clock with the cache-blocked executor.
  double blocked_total_seconds() const {
    return blocked_kernel_seconds + comm_seconds + permute_seconds +
           checkpoint_seconds;
  }
  double comm_fraction() const {
    const double t = total_seconds();
    return t > 0.0 ? comm_seconds / t : 0.0;
  }
  /// Sustained PFLOPS over the whole run.
  double sustained_pflops() const {
    const double t = total_seconds();
    return t > 0.0 ? total_flops / t * 1e-15 : 0.0;
  }
};

/// Predicts our simulator's run: per-node cluster sweeps + one all-to-all
/// per stage transition. `nodes` must be a power of two and match
/// 2^(circuit qubits - schedule.num_local).
RunPrediction model_run(const Circuit& circuit, const Schedule& schedule,
                        const MachineModel& node,
                        const InterconnectModel& net, int nodes);

/// Same prediction under a checkpointing policy: every snapshot pays a
/// staging memcpy (read + write of the full per-node state at memory
/// bandwidth) on the critical path; the disk write either adds fully
/// (synchronous) or only its tail beyond the compute of the stages until
/// the next snapshot (background writer). Fills checkpoint_seconds and
/// snapshots; all other fields match the plain overload.
RunPrediction model_run(const Circuit& circuit, const Schedule& schedule,
                        const MachineModel& node,
                        const InterconnectModel& net, int nodes,
                        const CheckpointModel& ckpt);

/// Predicts the baseline scheme of [5]: gate-by-gate sweeps, two pairwise
/// half-state exchanges per dense global gate.
RunPrediction model_baseline_run(const Circuit& circuit, int num_local,
                                 SpecializationMode mode,
                                 const MachineModel& node,
                                 const InterconnectModel& net, int nodes);

/// Bit-location above which a sweep is treated as "high-order" for the
/// cache-associativity penalty (strides past the L2 capacity per way).
inline constexpr int kHighOrderThreshold = 13;

}  // namespace quasar
