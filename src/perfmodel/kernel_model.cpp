#include "perfmodel/kernel_model.hpp"

#include <algorithm>
#include <cmath>

#include "core/types.hpp"
#include "kernels/apply.hpp"

namespace quasar {

double kernel_gflops(const MachineModel& machine, int k, bool high_order) {
  const double bw_bound = operational_intensity(k) * machine.achievable_bw();
  const double compute_bound = machine.achievable_gflops();
  double perf = std::min(bw_bound, compute_bound);
  if (high_order) {
    const double stride_sets = static_cast<double>(Index{1} << k);
    const double ways = machine.effective_cache_ways;
    if (stride_sets > ways) perf /= stride_sets / ways;
  }
  return perf;
}

double kernel_gflops_cores(const MachineModel& machine, int k, int cores,
                           bool high_order) {
  MachineModel scaled = machine;
  const double frac = static_cast<double>(cores) / machine.cores;
  scaled.peak_gflops = machine.peak_gflops * frac;
  // Memory bandwidth saturates once ~1/3 of the cores stream (a few
  // cores already fill the memory pipeline).
  const double bw_frac = std::min(1.0, 3.0 * frac);
  scaled.fast_bw_gbs = machine.fast_bw_gbs * bw_frac;
  scaled.dram_bw_gbs = machine.dram_bw_gbs * bw_frac;
  return kernel_gflops(scaled, k, high_order);
}

double kernel_seconds(const MachineModel& machine, int k, int num_qubits,
                      bool high_order) {
  const double flops = flops_per_amplitude(k) *
                       static_cast<double>(index_pow2(num_qubits));
  return flops / (kernel_gflops(machine, k, high_order) * 1e9);
}

double blocked_run_seconds(const MachineModel& machine,
                           const std::vector<int>& ks, int num_qubits) {
  const double amps = static_cast<double>(index_pow2(num_qubits));
  // One streaming sweep for the whole run: read + write every amplitude
  // once at the achievable bandwidth.
  const double sweep_seconds =
      2.0 * amps * kBytesPerAmplitude * 1e-9 / machine.achievable_bw();
  // The run's compute, at the achievable FLOP rate; gates execute while
  // each block is cache-resident, so compute overlaps the stream and the
  // run costs the max of the two.
  double flops = 0.0;
  for (int k : ks) {
    flops += (k == 0 ? 6.0 : flops_per_amplitude(k)) * amps;
  }
  const double compute_seconds =
      flops / (machine.achievable_gflops() * 1e9);
  return std::max(sweep_seconds, compute_seconds);
}

double kernel_seconds_spilled(const MachineModel& machine, int k,
                              int num_qubits) {
  const double state_bytes =
      static_cast<double>(index_pow2(num_qubits)) * kBytesPerAmplitude;
  if (machine.fast_mem_bytes <= 0.0 ||
      state_bytes <= machine.fast_mem_bytes) {
    return kernel_seconds(machine, k, num_qubits);
  }
  // Sec. 4.1.2: the 4-qubit kernel reaches ~1/2 MCDRAM bandwidth, i.e.
  // ~2x DRAM bandwidth, so spilling out of MCDRAM costs ~2x.
  MachineModel spilled = machine;
  spilled.fast_bw_gbs = machine.dram_bw_gbs;
  spilled.bw_efficiency = 1.0;  // streaming DRAM reaches its nominal rate
  return kernel_seconds(spilled, k, num_qubits);
}

}  // namespace quasar
