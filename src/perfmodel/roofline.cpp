#include "perfmodel/roofline.hpp"

#include <algorithm>

#include "kernels/apply.hpp"

namespace quasar {

double step_ceiling(const MachineModel& machine, OptStep step) {
  const double width = machine.simd_complex_width;
  const double fma_factor = machine.fma ? 2.0 : 1.0;
  const double step3 = machine.peak_gflops * machine.compute_efficiency;
  // Step 2 vectorizes but register spills and shuffles cost ~40%;
  // steps 0/1 run scalar (no vector lanes, no packed FMA), additionally
  // capped below step 2 — un-blocked scalar code never beats the
  // vectorized kernel in practice.
  const double step2 = 0.6 * step3;
  const double scalar = machine.peak_gflops / (width * fma_factor);
  switch (step) {
    case OptStep::kBaseline:
    case OptStep::kStep1:
      return std::min(scalar, 0.8 * step2);
    case OptStep::kStep2:
      return step2;
    case OptStep::kStep3:
      return step3;
  }
  return machine.peak_gflops;
}

double roofline_attainable(const MachineModel& machine, double oi,
                           OptStep step) {
  double bw = machine.achievable_bw();
  if (step == OptStep::kBaseline) {
    // Two state vectors: the output store also costs a read-for-ownership
    // and the effective intensity halves.
    oi *= 0.5;
    bw = machine.dram_bw_gbs * machine.bw_efficiency;
  }
  return std::min(step_ceiling(machine, step), oi * bw);
}

std::vector<RooflinePoint> roofline_model_points(
    const MachineModel& machine) {
  std::vector<RooflinePoint> points;
  const double oi1 = operational_intensity(1);
  const double oi4 = operational_intensity(4);
  points.push_back({"1-qubit baseline (two vectors)", oi1,
                    roofline_attainable(machine, oi1, OptStep::kBaseline)});
  points.push_back({"1-qubit step1 (in-place)", oi1,
                    roofline_attainable(machine, oi1, OptStep::kStep1)});
  points.push_back({"4-qubit step1 (fused, scalar)", oi4,
                    roofline_attainable(machine, oi4, OptStep::kStep1)});
  points.push_back({"4-qubit step2 (vectorized)", oi4,
                    roofline_attainable(machine, oi4, OptStep::kStep2)});
  points.push_back({"4-qubit step3 (blocked)", oi4,
                    roofline_attainable(machine, oi4, OptStep::kStep3)});
  return points;
}

}  // namespace quasar
