#include "check/fuzz.hpp"

#include <algorithm>
#include <cmath>
#include <complex>
#include <cstring>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "check/invariant.hpp"
#include "circuit/io.hpp"
#include "core/rng.hpp"
#include "fp32/distributed_f32.hpp"
#include "fp32/simulator_f32.hpp"
#include "fp32/statevector_f32.hpp"
#include "gates/standard.hpp"
#include "oocore/codec.hpp"
#include "runtime/distributed.hpp"
#include "sched/executor.hpp"
#include "sched/schedule.hpp"
#include "simulator/measure.hpp"
#include "simulator/reference.hpp"
#include "simulator/simulator.hpp"
#include "simulator/statevector.hpp"

namespace quasar::check {

namespace {

constexpr double kPi = 3.14159265358979323846;

/// Distributed geometries (global qubit counts g) fuzzed for an n-qubit
/// circuit. g = 1 exercises the single-boundary case, g = 2 the common
/// multi-rank shape, g = n/2 the extreme where half the qubits live in
/// the rank index (the constraint is g <= l, i.e. g <= n/2).
std::vector<int> fuzz_geometries(int n) {
  std::vector<int> gs;
  for (int g : {1, 2, n / 2}) {
    if (g >= 1 && g <= n - g &&
        std::find(gs.begin(), gs.end(), g) == gs.end()) {
      gs.push_back(g);
    }
  }
  return gs;
}

std::string engine_threw(const std::exception& e) {
  return std::string("engine threw: ") + e.what();
}

/// Cross-transport parity extends to the accounting: the volume counters
/// state what the schedule moved, so both backends must report identical
/// values. peak_bounce_bytes is deliberately excluded — it reflects how a
/// backend chunks an exchange, not what was exchanged.
std::string compare_comm_volumes(const CommStats& a, const CommStats& b) {
  std::ostringstream out;
  const auto field = [&](const char* name, std::uint64_t x, std::uint64_t y) {
    if (x != y && out.tellp() == 0) {
      out << "comm volume diverged: " << name << " " << x << " vs " << y;
    }
  };
  field("alltoalls", a.alltoalls, b.alltoalls);
  field("pairwise_exchanges", a.pairwise_exchanges, b.pairwise_exchanges);
  field("bytes_sent_per_rank", a.bytes_sent_per_rank, b.bytes_sent_per_rank);
  field("local_swap_sweeps", a.local_swap_sweeps, b.local_swap_sweeps);
  field("local_permutation_sweeps", a.local_permutation_sweeps,
        b.local_permutation_sweeps);
  field("local_permutation_bytes", a.local_permutation_bytes,
        b.local_permutation_bytes);
  field("rank_renumberings", a.rank_renumberings, b.rank_renumberings);
  return out.str();
}

/// Max-|diff| comparison against the reference oracle. Works for both
/// StateVector and StateVectorF (float amplitudes widen losslessly to
/// double). Empty string means agreement within tol.
template <typename State>
std::string compare_states(const StateVector& ref, const State& got,
                           Real tol) {
  Real worst = 0.0;
  Index worst_index = 0;
  for (Index i = 0; i < ref.size(); ++i) {
    const Amplitude g(got[i]);
    const Real diff = std::abs(ref[i] - g);
    if (diff > worst) {
      worst = diff;
      worst_index = i;
    }
  }
  if (worst <= tol) return {};
  std::ostringstream os;
  const Amplitude g(got[worst_index]);
  os << std::setprecision(17) << "amplitude[" << worst_index
     << "]: reference (" << ref[worst_index].real() << ", "
     << ref[worst_index].imag() << ") vs (" << g.real() << ", " << g.imag()
     << "), |diff| = " << worst << " > tol = " << tol;
  return os.str();
}

std::string compare_samples(const std::vector<Index>& want,
                            const std::vector<Index>& got) {
  if (want == got) return {};
  std::ostringstream os;
  if (want.size() != got.size()) {
    os << "sample count " << got.size() << " != " << want.size();
    return os.str();
  }
  for (std::size_t i = 0; i < want.size(); ++i) {
    if (want[i] != got[i]) {
      os << "sample[" << i << "]: sample_outcomes(gather) drew " << want[i]
         << " but DistributedSimulator::sample drew " << got[i]
         << " (same-seed draws must agree exactly)";
      break;
    }
  }
  return os.str();
}

/// Circuit without gates [first, last) — the minimizer's deletion step.
Circuit erase_gate_range(const Circuit& circuit, std::size_t first,
                         std::size_t last) {
  Circuit out(circuit.num_qubits());
  for (std::size_t i = 0; i < circuit.num_gates(); ++i) {
    if (i < first || i >= last) out.append_op(circuit.op(i));
  }
  return out;
}

}  // namespace

Circuit random_circuit(std::uint64_t seed, const FuzzOptions& options) {
  Rng rng(seed);
  const int span_q = options.max_qubits - options.min_qubits + 1;
  const int n =
      options.min_qubits + static_cast<int>(rng.uniform_int(span_q));
  const int span_g = options.max_gates - options.min_gates + 1;
  const int target =
      options.min_gates + static_cast<int>(rng.uniform_int(span_g));

  Circuit circuit(n);

  // Half the qubit draws come from the top band [n-4, n): those are the
  // qubits that straddle (or sit beyond) the local/global boundary for
  // every fuzzed geometry, where transition scheduling, rank renumbering,
  // and deferred phases all live.
  auto pick_qubit = [&]() -> Qubit {
    if (n > 4 && rng.uniform_real() < 0.5) {
      return static_cast<Qubit>(n - 1 -
                                static_cast<int>(rng.uniform_int(4)));
    }
    return static_cast<Qubit>(rng.uniform_int(n));
  };
  auto pick_distinct = [&](Qubit a) -> Qubit {
    Qubit b = a;
    while (b == a) b = pick_qubit();
    return b;
  };
  // Mostly arbitrary angles; sometimes exact multiples of pi/4 so the
  // diagonal-merge and phase-folding paths see the T/S/Z special values
  // through the generic parameterized entry points too.
  auto pick_angle = [&]() -> Real {
    if (rng.uniform_real() < 0.2) {
      return static_cast<Real>(rng.uniform_int(8)) * (kPi / 4.0);
    }
    return (2.0 * rng.uniform_real() - 1.0) * 2.0 * kPi;
  };

  // Openers: spread amplitude so diagonal gates act on superpositions
  // (on a bare basis state most diagonals are global phases and cannot
  // distinguish a buggy engine from a correct one).
  for (int q = 0; q < n; ++q) {
    if (rng.uniform_real() < 0.5) circuit.h(static_cast<Qubit>(q));
  }

  while (static_cast<int>(circuit.num_gates()) < target) {
    const double roll = rng.uniform_real();
    if (roll < 0.25) {
      // Adversarial shape 1: a run of consecutive diagonal gates, the
      // food of merge_diagonal_gates and the global-op phase folding.
      const int len = 2 + static_cast<int>(rng.uniform_int(5));
      for (int i = 0; i < len; ++i) {
        const Qubit q = pick_qubit();
        switch (rng.uniform_int(6)) {
          case 0: circuit.t(q); break;
          case 1: circuit.s(q); break;
          case 2: circuit.z(q); break;
          case 3: circuit.rz(q, pick_angle()); break;
          case 4: circuit.phase(q, pick_angle()); break;
          default:
            if (rng.uniform_real() < 0.5) {
              circuit.cz(q, pick_distinct(q));
            } else {
              circuit.cphase(q, pick_distinct(q), pick_angle());
            }
            break;
        }
      }
    } else if (roll < 0.35) {
      // Adversarial shape 2: custom U<k> matrices — no standard-gate
      // fast path, no shared registry matrix, exercised as raw data.
      const Qubit q = pick_qubit();
      if (rng.uniform_real() < 0.5) {
        circuit.append_custom({q}, gates::random_su2(rng));
      } else {
        GateMatrix m = gates::random_su2(rng).kron(gates::random_su2(rng));
        if (rng.uniform_real() < 0.5) m = m * gates::cz();  // entangling
        circuit.append_custom({q, pick_distinct(q)}, std::move(m));
      }
    } else if (roll < 0.55) {
      // Adversarial shape 3: parameterized gates at arbitrary angles.
      const Qubit q = pick_qubit();
      switch (rng.uniform_int(5)) {
        case 0: circuit.rx(q, pick_angle()); break;
        case 1: circuit.ry(q, pick_angle()); break;
        case 2: circuit.rz(q, pick_angle()); break;
        case 3: circuit.phase(q, pick_angle()); break;
        default: circuit.cphase(q, pick_distinct(q), pick_angle()); break;
      }
    } else if (roll < 0.85) {
      static constexpr GateKind kSingle[] = {
          GateKind::kH,   GateKind::kX,   GateKind::kY,    GateKind::kZ,
          GateKind::kT,   GateKind::kTdg, GateKind::kS,    GateKind::kSdg,
          GateKind::kSqrtX, GateKind::kSqrtY};
      circuit.append_standard(kSingle[rng.uniform_int(10)], {pick_qubit()});
    } else {
      static constexpr GateKind kDouble[] = {GateKind::kCZ, GateKind::kCNot,
                                             GateKind::kSwap};
      const Qubit q = pick_qubit();
      circuit.append_standard(kDouble[rng.uniform_int(3)],
                              {q, pick_distinct(q)});
    }
  }
  return circuit;
}

std::optional<Mismatch> run_differential(const Circuit& circuit,
                                         std::uint64_t seed,
                                         const FuzzOptions& options) {
  const int n = circuit.num_qubits();
  const std::size_t ops = circuit.num_gates();

  // Oracle: the brute-force reference shares no kernel code with the
  // engines under test. Let it propagate exceptions — a throwing oracle
  // means the harness itself produced an invalid circuit.
  StateVector reference(n);
  reference_run(reference, circuit);

  auto fail = [&](std::string engine, std::string detail) {
    Mismatch m;
    m.seed = seed;
    m.engine_a = "reference";
    m.engine_b = std::move(engine);
    m.detail = std::move(detail);
    m.circuit = circuit;
    return m;
  };

  const Real tol64 = state_tolerance(n, ops, kEps64);

  // --- plain Simulator (optionally corrupted for the self-test) -------
  {
    Circuit run_me(n);
    run_me.extend(circuit);
    if (options.corrupt_simulator) options.corrupt_simulator(run_me);
    StateVector state(n);
    try {
      Simulator(state).run(run_me);
    } catch (const std::exception& e) {
      return fail("simulator", engine_threw(e));
    }
    if (auto d = compare_states(reference, state, tol64); !d.empty()) {
      return fail("simulator", std::move(d));
    }
  }

  // --- fused + blocked (layout permute, cluster fusion) ---------------
  {
    StateVector state(n);
    try {
      run_fused(state, circuit);
    } catch (const std::exception& e) {
      return fail("fused", engine_threw(e));
    }
    if (auto d = compare_states(reference, state, tol64); !d.empty()) {
      return fail("fused", std::move(d));
    }
  }

  // --- distributed, several geometries ---------------------------------
  for (int g : fuzz_geometries(n)) {
    const int l = n - g;
    std::ostringstream name;
    name << "distributed(l=" << l << ",ranks=" << (1 << g) << ")";
    // The baseline is pinned in-process so the cross-transport twin below
    // always compares two *different* backends, whatever QUASAR_TRANSPORT
    // says.
    DistributedSimulator sim(n, l, {}, {}, TransportKind::kVirtual);
    sim.init_basis(0);
    ScheduleOptions sched;
    sched.num_local = l;
    sched.kmax = std::min(sched.kmax, l);  // kmax <= num_local precondition
    // Exercise the cache-layout qubit mapping on one geometry so stage
    // mappings differ from identity.
    sched.qubit_mapping = (g == 2);
    try {
      sim.run(circuit, sched);
    } catch (const std::exception& e) {
      return fail(name.str(), engine_threw(e));
    }
    const StateVector gathered = sim.gather();
    if (auto d = compare_states(reference, gathered, tol64); !d.empty()) {
      return fail(name.str(), std::move(d));
    }
    if (options.samples > 0) {
      // Exact parity: same seed, same draws. DistributedSimulator::sample
      // promises bit-for-bit agreement with sample_outcomes on the
      // gathered state, not just statistical agreement.
      const std::uint64_t sample_seed =
          seed ^ (0x9E3779B97F4A7C15ull +
                  static_cast<std::uint64_t>(g) * 0xBF58476D1CE4E5B9ull);
      Rng rng_single(sample_seed);
      Rng rng_dist(sample_seed);
      const auto want =
          sample_outcomes(gathered, options.samples, rng_single);
      const auto got = sim.sample(options.samples, rng_dist);
      if (auto d = compare_samples(want, got); !d.empty()) {
        return fail(name.str() + " sampling", std::move(d));
      }
    }
    if (options.cross_transport) {
      // Same circuit, same schedule, real rank processes: the gathered
      // state and the volume counters must match the in-process run bit
      // for bit (DESIGN.md §12). memcmp is stricter than a tolerance-0
      // compare — it even distinguishes -0.0 from 0.0.
      std::ostringstream pname;
      pname << "distributed-proc(l=" << l << ",ranks=" << (1 << g) << ")";
      DistributedSimulator proc_sim(n, l, {}, {}, TransportKind::kProc);
      proc_sim.init_basis(0);
      try {
        proc_sim.run(circuit, sched);
      } catch (const std::exception& e) {
        return fail(pname.str(), engine_threw(e));
      }
      const StateVector proc_state = proc_sim.gather();
      if (std::memcmp(proc_state.data(), gathered.data(),
                      static_cast<std::size_t>(gathered.size()) *
                          sizeof(Amplitude)) != 0) {
        std::string d = compare_states(gathered, proc_state, 0.0);
        if (d.empty()) d = "states differ in bit representation only";
        Mismatch m;
        m.seed = seed;
        m.engine_a = name.str();
        m.engine_b = pname.str();
        m.detail = "transports lost bit parity: " + std::move(d);
        m.circuit = circuit;
        return m;
      }
      if (auto d = compare_comm_volumes(sim.stats(), proc_sim.stats());
          !d.empty()) {
        Mismatch m;
        m.seed = seed;
        m.engine_a = name.str();
        m.engine_b = pname.str();
        m.detail = std::move(d);
        m.circuit = circuit;
        return m;
      }
    }
  }

  // --- out-of-core distributed (segmented disk-backed storage) ----------
  if (options.oocore) {
    const int g = std::min(2, n / 2);
    if (g >= 1) {
      const int l = n - g;
      ScheduleOptions sched;
      sched.num_local = l;
      sched.kmax = std::min(sched.kmax, l);
      const Schedule schedule = make_schedule(circuit, sched);
      // The parity baseline: the in-memory distributed engine over the
      // same schedule. The lossless pipeline must match it bit for bit,
      // which is a far stronger check than the tolerance model. Pinned
      // in-process: the proc transport rejects segmented storage, so
      // this whole section is single-process by construction.
      DistributedSimulator mem(n, l, {}, {}, TransportKind::kVirtual);
      mem.init_basis(0);
      mem.run(circuit, schedule);
      const StateVector mem_state = mem.gather();

      StorageOptions storage;
      storage.medium = StorageMedium::kOocore;
      storage.codec = oocore::Codec::kLz;
      storage.segment_bytes = 512;  // many segments even at fuzz sizes
      {
        std::ostringstream name;
        name << "oocore-lz(l=" << l << ",ranks=" << (1 << g) << ")";
        DistributedSimulator sim(n, l, {}, storage, TransportKind::kVirtual);
        sim.init_basis(0);
        try {
          sim.run(circuit, schedule);
        } catch (const std::exception& e) {
          return fail(name.str(), engine_threw(e));
        }
        const StateVector got = sim.gather();
        if (auto d = compare_states(mem_state, got, 0.0); !d.empty()) {
          Mismatch m;
          m.seed = seed;
          m.engine_a = "distributed(in-memory)";
          m.engine_b = name.str();
          m.detail = "lossless pipeline lost bit parity: " + std::move(d);
          m.circuit = circuit;
          return m;
        }
        if (auto d = compare_states(reference, got, tol64); !d.empty()) {
          return fail(name.str(), std::move(d));
        }
      }
      if (options.fp32) {
        std::ostringstream name;
        name << "oocore-fp32lz(l=" << l << ",ranks=" << (1 << g) << ")";
        storage.codec = oocore::Codec::kFp32Lz;
        DistributedSimulator sim(n, l, {}, storage, TransportKind::kVirtual);
        sim.init_basis(0);
        try {
          sim.run(circuit, schedule);
        } catch (const std::exception& e) {
          return fail(name.str(), engine_threw(e));
        }
        if (auto d = compare_states(reference, sim.gather(),
                                    state_tolerance(n, ops, kEps32));
            !d.empty()) {
          return fail(name.str(), std::move(d));
        }
      }
    }
  }

  // --- fp32 engines -----------------------------------------------------
  if (options.fp32) {
    const Real tol32 = state_tolerance(n, ops, kEps32);
    {
      StateVectorF state(n);
      try {
        SimulatorF(state).run(circuit);
      } catch (const std::exception& e) {
        return fail("fp32", engine_threw(e));
      }
      if (auto d = compare_states(reference, state, tol32); !d.empty()) {
        return fail("fp32", std::move(d));
      }
    }
    const int g = std::min(2, n / 2);
    if (g >= 1) {
      const int l = n - g;
      std::ostringstream name;
      name << "fp32-distributed(l=" << l << ",ranks=" << (1 << g) << ")";
      DistributedSimulatorF sim(n, l, 0, std::size_t{64} << 20,
                                TransportKind::kVirtual);
      sim.init_basis(0);
      ScheduleOptions sched;
      sched.num_local = l;
      sched.kmax = std::min(sched.kmax, l);
      const Schedule schedule = make_schedule(circuit, sched);
      try {
        sim.run(circuit, schedule);
      } catch (const std::exception& e) {
        return fail(name.str(), engine_threw(e));
      }
      const StateVectorF gathered = sim.gather();
      if (auto d = compare_states(reference, gathered, tol32); !d.empty()) {
        return fail(name.str(), std::move(d));
      }
      if (options.cross_transport) {
        // fp32 rank processes receive matrices and deferred phases in
        // double over the wire and cast exactly where the in-process
        // backend casts, so bit parity holds here too.
        std::ostringstream pname;
        pname << "fp32-distributed-proc(l=" << l << ",ranks=" << (1 << g)
              << ")";
        DistributedSimulatorF proc_sim(n, l, 0, std::size_t{64} << 20,
                                       TransportKind::kProc);
        proc_sim.init_basis(0);
        try {
          proc_sim.run(circuit, schedule);
        } catch (const std::exception& e) {
          return fail(pname.str(), engine_threw(e));
        }
        const StateVectorF proc_state = proc_sim.gather();
        if (std::memcmp(proc_state.data(), gathered.data(),
                        static_cast<std::size_t>(gathered.size()) *
                            sizeof(AmplitudeF)) != 0) {
          std::string d = "states differ in bit representation only";
          for (Index i = 0; i < gathered.size(); ++i) {
            if (std::memcmp(&gathered[i], &proc_state[i],
                            sizeof(AmplitudeF)) != 0) {
              std::ostringstream os;
              os << std::setprecision(9) << "amplitude[" << i
                 << "]: virtual (" << gathered[i].real() << ", "
                 << gathered[i].imag() << ") vs proc ("
                 << proc_state[i].real() << ", " << proc_state[i].imag()
                 << ")";
              d = os.str();
              break;
            }
          }
          Mismatch m;
          m.seed = seed;
          m.engine_a = name.str();
          m.engine_b = pname.str();
          m.detail = "transports lost bit parity: " + std::move(d);
          m.circuit = circuit;
          return m;
        }
        if (auto d = compare_comm_volumes(sim.stats(), proc_sim.stats());
            !d.empty()) {
          Mismatch m;
          m.seed = seed;
          m.engine_a = name.str();
          m.engine_b = pname.str();
          m.detail = std::move(d);
          m.circuit = circuit;
          return m;
        }
      }
    }
  }

  return std::nullopt;
}

Circuit minimize_circuit(const Circuit& circuit, std::uint64_t seed,
                         const FuzzOptions& options) {
  auto still_fails = [&](const Circuit& candidate) {
    return run_differential(candidate, seed, options).has_value();
  };

  // ddmin-style greedy deletion: try dropping contiguous chunks, halving
  // the chunk size down to single gates, looping at size one until a
  // fixpoint. Every accepted deletion keeps the mismatch alive, so the
  // result still reproduces the original failure.
  Circuit current(circuit.num_qubits());
  current.extend(circuit);
  std::size_t chunk = std::max<std::size_t>(1, current.num_gates() / 2);
  for (;;) {
    bool removed = false;
    for (std::size_t start = 0; start < current.num_gates();) {
      if (current.num_gates() <= 1) break;
      const std::size_t stop = std::min(start + chunk, current.num_gates());
      Circuit candidate = erase_gate_range(current, start, stop);
      if (candidate.num_gates() > 0 && still_fails(candidate)) {
        current = std::move(candidate);
        removed = true;  // same start now points at the next chunk
      } else {
        start += chunk;
      }
    }
    if (chunk > 1) {
      chunk = std::max<std::size_t>(1, chunk / 2);
    } else if (!removed) {
      break;  // single-gate fixpoint: nothing more can go
    }
  }
  return current;
}

std::string format_reproducer(const Mismatch& mismatch) {
  std::ostringstream os;
  os << "=== quasar fuzz mismatch ===\n"
     << "seed:    " << mismatch.seed << "\n"
     << "engines: " << mismatch.engine_a << " vs " << mismatch.engine_b
     << "\n"
     << "detail:  " << mismatch.detail << "\n"
     << "circuit (" << mismatch.circuit.num_gates() << " gates):\n"
     << circuit_to_string(mismatch.circuit)
     << "replay: feed this circuit text to check::run_differential with "
        "the seed above\n";
  return os.str();
}

FuzzReport run_fuzz(std::uint64_t first_seed, int num_seeds,
                    const FuzzOptions& options, std::ostream* log) {
  FuzzReport report;
  for (int i = 0; i < num_seeds; ++i) {
    const std::uint64_t seed = first_seed + static_cast<std::uint64_t>(i);
    const Circuit circuit = random_circuit(seed, options);
    std::optional<Mismatch> mismatch =
        run_differential(circuit, seed, options);
    if (mismatch) {
      if (options.minimize) {
        mismatch->circuit =
            minimize_circuit(mismatch->circuit, seed, options);
        // Re-derive the detail line for the minimized circuit (the
        // worst-amplitude index usually moves as gates disappear).
        if (auto re = run_differential(mismatch->circuit, seed, options)) {
          mismatch->engine_b = std::move(re->engine_b);
          mismatch->detail = std::move(re->detail);
        }
      }
      if (log != nullptr) *log << format_reproducer(*mismatch) << std::endl;
      report.mismatches.push_back(std::move(*mismatch));
    }
    ++report.seeds_run;
  }
  if (log != nullptr) {
    *log << "fuzz: " << report.seeds_run << " seeds, "
         << report.mismatches.size() << " mismatch(es)\n";
  }
  return report;
}

}  // namespace quasar::check
