#include "check/invariant.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <sstream>

#include "core/parse.hpp"

namespace quasar::check {

namespace detail {

std::atomic<int> g_enabled{-1};

bool init_from_env() {
  const char* value = std::getenv("QUASAR_VALIDATE");
  // Strict: "1" on, "0"/unset/empty off, anything else is an error — a
  // typo must not silently disable the guards it was meant to enable.
  const bool on = value != nullptr && value[0] != '\0' &&
                  parse_flag(value, "QUASAR_VALIDATE");
  // Another thread may race the same init; both compute the same answer.
  g_enabled.store(on ? 1 : 0, std::memory_order_release);
  return on;
}

namespace {

[[noreturn]] void violation(const char* site, const std::string& what) {
  throw ValidationError(std::string("invariant violated [") + site + "]: " +
                        what);
}

}  // namespace
}  // namespace detail

void set_enabled(bool enabled) {
  detail::g_enabled.store(enabled ? 1 : 0, std::memory_order_release);
}

void reset_enabled() {
  detail::g_enabled.store(-1, std::memory_order_release);
}

Real norm_tolerance(int num_qubits, std::size_t ops, Real eps) {
  const int n = num_qubits < 50 ? num_qubits : 50;
  const Real sweep_walk =
      16.0 * std::sqrt(static_cast<Real>(ops) + 1.0);
  const Real reduction_walk =
      8.0 * std::sqrt(static_cast<Real>(index_pow2(n)));
  return eps * (32.0 + sweep_walk + reduction_walk);
}

Real state_tolerance(int num_qubits, std::size_t ops, Real eps) {
  // Amplitude moduli are bounded by 1, so an absolute bound of
  // eps * O(sqrt(ops)) covers both concentrated states (|amp| ~ 1) and
  // spread states (|amp| ~ 2^(-n/2)). A genuine cross-engine bug moves an
  // amplitude by O(2^(-n/2)) or more — orders of magnitude above this
  // bound at any qubit count the harness runs.
  (void)num_qubits;
  return eps * 256.0 * (std::sqrt(static_cast<Real>(ops) + 1.0) + 4.0);
}

Real phase_tolerance(std::size_t ops, Real eps) {
  return eps * (16.0 + 4.0 * std::sqrt(static_cast<Real>(ops) + 1.0));
}

namespace {

template <typename Scalar>
Real norm_squared_impl(const std::complex<Scalar>* data, Index count) {
  Real total = 0.0;
#pragma omp parallel for schedule(static) reduction(+ : total)
  for (std::int64_t i = 0; i < static_cast<std::int64_t>(count); ++i) {
    total += static_cast<Real>(data[i].real()) * data[i].real() +
             static_cast<Real>(data[i].imag()) * data[i].imag();
  }
  return total;
}

template <typename Scalar>
void require_finite_impl(const std::complex<Scalar>* data, Index count,
                         const char* site) {
  // Exceptions cannot leave an OpenMP region, so the parallel pass only
  // locates the first offender; the throw happens outside.
  std::int64_t first_bad = static_cast<std::int64_t>(count);
#pragma omp parallel for schedule(static) reduction(min : first_bad)
  for (std::int64_t i = 0; i < static_cast<std::int64_t>(count); ++i) {
    if (!std::isfinite(data[i].real()) || !std::isfinite(data[i].imag())) {
      if (i < first_bad) first_bad = i;
    }
  }
  if (first_bad < static_cast<std::int64_t>(count)) {
    std::ostringstream os;
    os << "non-finite amplitude (" << data[first_bad].real() << ", "
       << data[first_bad].imag() << ") at index " << first_bad;
    detail::violation(site, os.str());
  }
}

}  // namespace

Real norm_squared(const std::complex<double>* data, Index count) {
  return norm_squared_impl(data, count);
}

Real norm_squared(const std::complex<float>* data, Index count) {
  return norm_squared_impl(data, count);
}

void require_finite(const std::complex<double>* data, Index count,
                    const char* site) {
  require_finite_impl(data, count, site);
}

void require_finite(const std::complex<float>* data, Index count,
                    const char* site) {
  require_finite_impl(data, count, site);
}

void require_norm_preserved(Real after, Real before, Real tol,
                            const char* site) {
  // Scale-invariant: rounding drifts norm^2 in proportion to its size,
  // and benches legitimately sweep unnormalized states (norm^2 >> 1).
  const Real bound = tol * std::max(static_cast<Real>(1.0), before);
  if (!std::isfinite(after) || std::abs(after - before) > bound) {
    std::ostringstream os;
    os.precision(17);
    os << "norm^2 drifted from " << before << " to " << after
       << " (|delta| = " << std::abs(after - before) << ", tolerance "
       << bound << ")";
    detail::violation(site, os.str());
  }
}

void require_bijection(const std::vector<int>& map, int domain,
                       const char* site) {
  if (static_cast<int>(map.size()) != domain) {
    detail::violation(site, "mapping size " + std::to_string(map.size()) +
                                " != domain " + std::to_string(domain));
  }
  std::vector<bool> used(domain, false);
  for (std::size_t q = 0; q < map.size(); ++q) {
    const int loc = map[q];
    if (loc < 0 || loc >= domain || used[loc]) {
      detail::violation(site, "mapping is not a bijection: entry " +
                                  std::to_string(q) + " -> " +
                                  std::to_string(loc));
    }
    used[loc] = true;
  }
}

void require_unit_phases(const std::vector<std::complex<double>>& phases,
                         Real tol, const char* site) {
  for (std::size_t r = 0; r < phases.size(); ++r) {
    const Real modulus = std::abs(phases[r]);
    if (!std::isfinite(modulus) || std::abs(modulus - 1.0) > tol) {
      std::ostringstream os;
      os.precision(17);
      os << "deferred phase for rank " << r << " has modulus " << modulus
         << " (tolerance " << tol << " around 1)";
      detail::violation(site, os.str());
    }
  }
}

}  // namespace quasar::check
