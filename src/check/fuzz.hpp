/// \file fuzz.hpp
/// \brief Differential fuzzing across every simulation engine.
///
/// The repo ships several independent ways to run the same circuit: the
/// brute-force reference (the oracle), the plain Simulator, fused+blocked
/// execution (run_fused), the distributed engine over several
/// (num_local, ranks) geometries, the out-of-core distributed engine on
/// segmented disk-backed storage, and the fp32 engines. Any disagreement
/// beyond the floating-point tolerance models of invariant.hpp is a bug
/// in exactly one of them — the differential harness hunts for such
/// disagreements with seed-driven random circuits biased toward the
/// shapes that have historically broken engines:
///
///   * qubits straddling the local/global boundary of the distributed
///     geometries (transition scheduling, deferred phases),
///   * long runs of diagonal gates (merge_diagonal_gates, global-op
///     phase folding),
///   * custom U<k> matrices (no standard-gate fast path to hide behind),
///   * parameterized gates at arbitrary angles (serialization and
///     matrix-construction parity).
///
/// On a mismatch the harness prints a self-contained reproducer (seed +
/// circuit text) and greedily minimizes it by gate-bisection so the
/// failing circuit is as small as the bug allows.
///
/// Everything is deterministic in the seed: the same seed always yields
/// the same circuit, the same engine schedule, and the same sample draws,
/// so a reproducer line from CI replays locally bit-for-bit.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "circuit/circuit.hpp"

namespace quasar::check {

/// Knobs for circuit generation and engine comparison.
struct FuzzOptions {
  /// Generated circuit width range. The reference oracle is O(4^n) per
  /// two-qubit gate, so keep the ceiling small; 9 qubits already covers
  /// every distributed geometry shape (g up to n/2).
  int min_qubits = 4;
  int max_qubits = 9;
  /// Generated gate-count range.
  int min_gates = 8;
  int max_gates = 48;
  /// Sampling-parity draws per distributed geometry (0 disables the
  /// sampling comparison).
  int samples = 24;
  /// Include the fp32 engines (SimulatorF, DistributedSimulatorF).
  bool fp32 = true;
  /// Include the out-of-core distributed engines (segmented disk-backed
  /// storage, DESIGN.md §11): the lossless lz pipeline is held to BIT
  /// parity with the in-memory distributed engine, the lossy fp32lz
  /// pipeline to the fp32 tolerance model.
  bool oocore = true;
  /// Cross-transport bit parity: rerun every distributed geometry (fp64
  /// and fp32) on the multi-process backend — real forked rank
  /// processes exchanging slices over UNIX sockets — and require the
  /// gathered state and the communication-volume counters to match the
  /// in-process run bit for bit. Off by default: forking 2^g ranks per
  /// geometry per seed costs far more than the in-process engines.
  bool cross_transport = false;
  /// Gate-bisection minimization of failing circuits inside run_fuzz.
  bool minimize = true;
  /// Optional corruption applied to the circuit seen by the plain
  /// Simulator engine only — simulates a kernel bug for the harness
  /// self-test (e.g. flip every T into Tdg and check the harness
  /// catches and minimizes it). Never set in real fuzzing.
  std::function<void(Circuit&)> corrupt_simulator;
};

/// One engine disagreement. `circuit` is the failing circuit (already
/// minimized when produced by run_fuzz with options.minimize).
struct Mismatch {
  std::uint64_t seed = 0;
  std::string engine_a;  ///< the agreeing baseline (usually "reference")
  std::string engine_b;  ///< the engine that disagreed
  std::string detail;    ///< what differed, where, and by how much
  Circuit circuit{1};
};

/// Aggregate result of a fuzzing run.
struct FuzzReport {
  int seeds_run = 0;
  std::vector<Mismatch> mismatches;
};

/// Generates the seed's random circuit (deterministic in seed+options).
Circuit random_circuit(std::uint64_t seed, const FuzzOptions& options = {});

/// Runs `circuit` through every engine and compares all of them against
/// the brute-force reference under the invariant.hpp tolerance models,
/// plus the exact sampling-parity check (same-seed sample_outcomes on
/// the gathered state vs DistributedSimulator::sample must agree
/// bit-for-bit). Returns the first mismatch, or nullopt if every engine
/// agrees. An engine that throws is reported as a mismatch too — with
/// QUASAR_VALIDATE=1 this surfaces invariant-guard trips under the same
/// reproducer machinery.
std::optional<Mismatch> run_differential(const Circuit& circuit,
                                         std::uint64_t seed,
                                         const FuzzOptions& options = {});

/// Greedy gate-bisection minimization: repeatedly deletes contiguous gate
/// chunks (halving the chunk size down to single gates) while
/// run_differential still reports a mismatch. Returns the smallest
/// still-failing circuit found. Precondition: `circuit` currently fails.
Circuit minimize_circuit(const Circuit& circuit, std::uint64_t seed,
                         const FuzzOptions& options = {});

/// Self-contained reproducer: seed, engine pair, failure detail, and the
/// circuit in the text format of circuit/io.hpp (kind- and
/// parameter-preserving, so the replay is exact).
std::string format_reproducer(const Mismatch& mismatch);

/// Fuzzes seeds [first_seed, first_seed + num_seeds): generates each
/// circuit, runs the differential comparison, and on mismatch minimizes
/// (if enabled) and writes the reproducer to `log` (when non-null).
/// Keeps going after a mismatch so one bug does not mask another.
FuzzReport run_fuzz(std::uint64_t first_seed, int num_seeds,
                    const FuzzOptions& options = {},
                    std::ostream* log = nullptr);

}  // namespace quasar::check
