/// \file invariant.hpp
/// \brief Opt-in run-time invariant guards (env QUASAR_VALIDATE).
///
/// The paper's argument rests on five code paths — naive baseline,
/// optimized single-node kernels, blocked runs, the distributed swap
/// scheme of Sec. 3.4, and the fp32 variant of Sec. 4 — computing the
/// same quantum state. These guards verify, after every run / stage /
/// cluster primitive, the physical invariants every one of those paths
/// must preserve:
///   - norm preservation within a model-derived tolerance (unitarity),
///   - finiteness of every amplitude (NaN/Inf detector),
///   - bijectivity of qubit -> bit-location mappings,
///   - unit modulus of deferred per-rank phases (Sec. 3.5 absorption).
///
/// Cost model mirrors the obs layer (DESIGN.md §8): the instrumentation
/// is always compiled in, and when validation is disabled every site
/// costs one atomic load and one branch (enabled()). Enabling
/// QUASAR_VALIDATE=1 adds norm/finiteness sweeps — O(state) work per
/// guarded region, measured on stage_sweep_microbench in EXPERIMENTS.md.
/// Violations throw ValidationError (a quasar::Error) naming the site,
/// the measured value, and the tolerance.
#pragma once

#include <atomic>
#include <complex>
#include <vector>

#include "core/error.hpp"
#include "core/types.hpp"

namespace quasar::check {

/// Thrown when a run-time invariant is violated. Derives from
/// quasar::Error so existing handlers keep working; the distinct type
/// lets tests and the fuzz harness tell validation failures from
/// precondition errors.
class ValidationError : public Error {
 public:
  explicit ValidationError(const std::string& what) : Error(what) {}
};

namespace detail {
/// -1 = not yet resolved from the environment, else 0/1.
extern std::atomic<int> g_enabled;
/// Reads QUASAR_VALIDATE once and caches the result.
bool init_from_env();
}  // namespace detail

/// True when validation is active: QUASAR_VALIDATE is set to a non-empty
/// value other than "0", or set_enabled(true) was called. This is the
/// whole hot-path cost of a disabled guard site.
inline bool enabled() {
  const int state = detail::g_enabled.load(std::memory_order_acquire);
  if (state >= 0) return state != 0;
  return detail::init_from_env();
}

/// Overrides the environment (tests flip validation on and off without
/// re-execing). Passing through to the env again requires reset_enabled().
void set_enabled(bool enabled);
/// Forgets any override and re-reads QUASAR_VALIDATE on the next query.
void reset_enabled();

/// Machine epsilons for the two amplitude precisions.
inline constexpr Real kEps64 = 2.220446049250313e-16;
inline constexpr Real kEps32 = 1.1920928955078125e-07;

/// Tolerance for |norm_after - norm_before| after `ops` gate sweeps over
/// an n-qubit state. Each sweep perturbs amplitudes relatively by O(eps)
/// and errors accumulate like a random walk over ops; the norm reduction
/// itself adds a sqrt(2^n)-term rounding walk. The constants are generous
/// (a real unitarity bug produces norm drift many orders of magnitude
/// larger than rounding).
Real norm_tolerance(int num_qubits, std::size_t ops, Real eps = kEps64);

/// Per-amplitude tolerance for differential comparison of two engines
/// that executed the same `ops`-gate circuit on n qubits. Absolute bound
/// of eps * O(sqrt(ops)): valid whether the state is concentrated
/// (|amp| ~ 1) or spread (|amp| ~ 2^(-n/2)), and far below the
/// O(2^(-n/2)) displacement a genuine bug produces.
Real state_tolerance(int num_qubits, std::size_t ops, Real eps = kEps64);

/// Tolerance for the modulus drift of deferred per-rank phases after
/// `ops` unit-modulus multiplications (random-walk accumulation).
Real phase_tolerance(std::size_t ops, Real eps = kEps64);

/// Squared norm of a raw amplitude buffer (OpenMP reduction). The guards
/// need this for buffers that are not wrapped in a StateVector.
Real norm_squared(const std::complex<double>* data, Index count);
Real norm_squared(const std::complex<float>* data, Index count);

/// Throws ValidationError if any amplitude in [data, data+count) is NaN
/// or infinite. `site` names the guarded region in the message.
void require_finite(const std::complex<double>* data, Index count,
                    const char* site);
void require_finite(const std::complex<float>* data, Index count,
                    const char* site);

/// Throws ValidationError unless |after - before| <= tol * max(1, before).
/// The relative scaling makes the check norm-agnostic: unitarity drifts a
/// norm^2 of N by O(N * eps), and benchmarks deliberately run on
/// unnormalized states.
void require_norm_preserved(Real after, Real before, Real tol,
                            const char* site);

/// Throws ValidationError unless `map` is a bijection of [0, domain):
/// size == domain, every value in range, no duplicates.
void require_bijection(const std::vector<int>& map, int domain,
                       const char* site);

/// Throws ValidationError unless every deferred phase has unit modulus
/// within tol (Sec. 3.5 only ever defers pure phases).
void require_unit_phases(const std::vector<std::complex<double>>& phases,
                         Real tol, const char* site);

}  // namespace quasar::check
