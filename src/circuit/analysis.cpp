#include "circuit/analysis.hpp"

#include <algorithm>

namespace quasar {

CircuitStats analyze(const Circuit& circuit) {
  CircuitStats stats;
  stats.num_gates = circuit.num_gates();
  for (const GateOp& op : circuit.ops()) {
    if (op.arity() == 1) ++stats.num_single_qubit;
    if (op.arity() == 2) ++stats.num_two_qubit;
    if (op.diagonal) ++stats.num_diagonal;
    ++stats.by_name[gate_name(op.kind)];
  }
  const auto layers = layerize(circuit);
  stats.depth = layers.empty()
                    ? 0
                    : 1 + *std::max_element(layers.begin(), layers.end());
  return stats;
}

std::vector<int> layerize(const Circuit& circuit) {
  std::vector<int> layer(circuit.num_gates(), 0);
  std::vector<int> qubit_frontier(circuit.num_qubits(), 0);
  for (std::size_t i = 0; i < circuit.num_gates(); ++i) {
    const GateOp& op = circuit.op(i);
    int l = 0;
    for (Qubit q : op.qubits) l = std::max(l, qubit_frontier[q]);
    layer[i] = l;
    for (Qubit q : op.qubits) qubit_frontier[q] = l + 1;
  }
  return layer;
}

std::vector<std::vector<std::size_t>> gates_by_qubit(const Circuit& circuit) {
  std::vector<std::vector<std::size_t>> result(circuit.num_qubits());
  for (std::size_t i = 0; i < circuit.num_gates(); ++i) {
    for (Qubit q : circuit.op(i).qubits) result[q].push_back(i);
  }
  return result;
}

Circuit strip_trailing_diagonals(const Circuit& circuit) {
  // Walk backwards: a diagonal gate is droppable while every qubit it
  // touches has seen no kept gate yet.
  std::vector<bool> keep(circuit.num_gates(), true);
  std::vector<bool> sealed(circuit.num_qubits(), false);
  for (std::size_t i = circuit.num_gates(); i-- > 0;) {
    const GateOp& op = circuit.op(i);
    bool blocked = false;
    for (Qubit q : op.qubits) blocked |= sealed[q];
    if (op.diagonal && !blocked) {
      keep[i] = false;
    } else {
      for (Qubit q : op.qubits) sealed[q] = true;
    }
  }
  Circuit out(circuit.num_qubits());
  for (std::size_t i = 0; i < circuit.num_gates(); ++i) {
    if (!keep[i]) continue;
    const GateOp& op = circuit.op(i);
    out.append(op.kind, op.qubits, op.matrix, op.cycle);
  }
  return out;
}

}  // namespace quasar
