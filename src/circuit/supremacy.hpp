/// \file supremacy.hpp
/// \brief Generator for Google quantum-supremacy random circuits (Fig. 1).
///
/// Construction rules (paper Fig. 1 caption, following Boixo et al. [5]):
///  - clock cycle 0 applies a Hadamard to every qubit;
///  - cycles 1..depth apply one of eight CZ patterns, cycling; the eight
///    patterns partition all nearest-neighbour bonds of the 2D grid, so
///    every possible two-qubit interaction happens once per 8 cycles;
///  - in each cycle, a single-qubit gate is applied to every qubit that
///    performed a CZ in the previous cycle but not in the current one;
///    the gate is randomly T, X^1/2, or Y^1/2, except that (a) the second
///    single-qubit gate on a qubit (the first being the cycle-0 H) is
///    always T, and (b) a randomly chosen gate must differ from the
///    previous single-qubit gate on that qubit.
///
/// Qubit (r, c) of the grid maps to program qubit r*cols + c.
#pragma once

#include <utility>
#include <vector>

#include "circuit/circuit.hpp"

namespace quasar {

/// Parameters for a supremacy circuit instance.
struct SupremacyOptions {
  int rows = 4;          ///< grid rows
  int cols = 4;          ///< grid columns
  int depth = 25;        ///< number of CZ cycles (cycles 1..depth)
  std::uint64_t seed = 0;  ///< RNG seed for the single-qubit gate choices
  bool initial_hadamards = true;  ///< include the cycle-0 H layer
};

/// A nearest-neighbour bond between two grid qubits.
struct Bond {
  Qubit a;
  Qubit b;
};

/// Returns the CZ bonds activated by pattern `pattern` (0..7) on an
/// rows x cols grid. Within one pattern no qubit appears twice; the union
/// over the eight patterns is exactly the set of all grid bonds.
std::vector<Bond> supremacy_cz_pattern(int pattern, int rows, int cols);

/// Generates a supremacy circuit. Each GateOp carries its clock cycle in
/// GateOp::cycle. Deterministic in (rows, cols, depth, seed).
Circuit make_supremacy_circuit(const SupremacyOptions& options);

/// Grid sizes used in the paper's evaluation (Table 2): 30 = 6x5,
/// 36 = 6x6, 42 = 7x6, 45 = 9x5, 49 = 7x7. Throws for other counts.
std::pair<int, int> supremacy_grid_for_qubits(int num_qubits);

}  // namespace quasar
