#include "circuit/circuit.hpp"

#include <algorithm>
#include <array>
#include <mutex>
#include <unordered_map>

#include "core/error.hpp"

namespace quasar {

GateOp::GateOp(GateKind kind, std::vector<Qubit> qubits,
               std::shared_ptr<const GateMatrix> matrix, int cycle)
    : kind(kind), qubits(std::move(qubits)), matrix(std::move(matrix)),
      cycle(cycle) {
  QUASAR_CHECK(this->matrix != nullptr, "GateOp requires a matrix");
  QUASAR_CHECK(this->matrix->num_qubits() ==
                   static_cast<int>(this->qubits.size()),
               "GateOp matrix dimension does not match qubit count");
  diagonal = this->matrix->is_diagonal();
  phased_permutation = this->matrix->phased_permutation().has_value();
  diagonal_on = this->matrix->diagonal_qubits();
}

bool GateOp::acts_diagonally_on(Qubit q) const {
  for (std::size_t j = 0; j < qubits.size(); ++j) {
    if (qubits[j] == q) return diagonal_on[j];
  }
  return true;
}

bool GateOp::touches(Qubit q) const {
  return std::find(qubits.begin(), qubits.end(), q) != qubits.end();
}

Circuit::Circuit(int num_qubits) : num_qubits_(num_qubits) {
  QUASAR_CHECK(num_qubits >= 1 && num_qubits <= 62,
               "Circuit supports 1..62 qubits");
}

void Circuit::append(GateKind kind, std::vector<Qubit> qubits,
                     std::shared_ptr<const GateMatrix> matrix, int cycle) {
  QUASAR_CHECK(!qubits.empty(), "gate must act on at least one qubit");
  for (std::size_t i = 0; i < qubits.size(); ++i) {
    QUASAR_CHECK(qubits[i] >= 0 && qubits[i] < num_qubits_,
                 "gate qubit out of range");
    for (std::size_t j = i + 1; j < qubits.size(); ++j) {
      QUASAR_CHECK(qubits[i] != qubits[j], "gate qubits must be distinct");
    }
  }
  ops_.emplace_back(kind, std::move(qubits), std::move(matrix), cycle);
}

void Circuit::append_standard(GateKind kind, std::vector<Qubit> qubits,
                              int cycle) {
  append(kind, std::move(qubits), shared_standard_matrix(kind), cycle);
}

void Circuit::append_custom(std::vector<Qubit> qubits, GateMatrix matrix,
                            int cycle) {
  QUASAR_CHECK(matrix.is_unitary(1e-9),
               "append_custom requires a unitary matrix");
  append(GateKind::kCustom, std::move(qubits),
         std::make_shared<const GateMatrix>(std::move(matrix)), cycle);
}

void Circuit::append_parameterized(GateKind kind, std::vector<Qubit> qubits,
                                   Real theta, int cycle) {
  append(kind, std::move(qubits),
         std::make_shared<const GateMatrix>(parameterized_matrix(kind, theta)),
         cycle);
  ops_.back().param = theta;
}

void Circuit::append_op(const GateOp& op) {
  append(op.kind, op.qubits, op.matrix, op.cycle);
  ops_.back().param = op.param;
}

void Circuit::rz(Qubit q, Real theta) {
  append_parameterized(GateKind::kRz, {q}, theta);
}

void Circuit::ry(Qubit q, Real theta) {
  append_parameterized(GateKind::kRy, {q}, theta);
}

void Circuit::rx(Qubit q, Real theta) {
  append_parameterized(GateKind::kRx, {q}, theta);
}

void Circuit::phase(Qubit q, Real theta) {
  append_parameterized(GateKind::kPhase, {q}, theta);
}

void Circuit::cphase(Qubit control, Qubit target, Real theta) {
  append_parameterized(GateKind::kCPhase, {control, target}, theta);
}

void Circuit::extend(const Circuit& other) {
  QUASAR_CHECK(other.num_qubits_ == num_qubits_,
               "extend: qubit count mismatch");
  ops_.insert(ops_.end(), other.ops_.begin(), other.ops_.end());
}

std::shared_ptr<const GateMatrix> shared_standard_matrix(GateKind kind) {
  static std::mutex mutex;
  static std::unordered_map<int, std::shared_ptr<const GateMatrix>> cache;
  std::lock_guard<std::mutex> lock(mutex);
  auto [it, inserted] = cache.try_emplace(static_cast<int>(kind));
  if (inserted) {
    it->second = std::make_shared<const GateMatrix>(standard_matrix(kind));
  }
  return it->second;
}

}  // namespace quasar
