/// \file io.hpp
/// \brief Plain-text circuit serialization.
///
/// Format (one gate per line, little-endian qubit order as everywhere):
///
///     qubits <n>
///     H 5
///     CZ 3 4
///     U2 0 1  <8 re,im pairs row-major>   # custom 2-qubit unitary
///
/// Cycle tags are emitted as a trailing "@<cycle>" when present. The
/// format exists so circuit instances (e.g. generated supremacy circuits)
/// can be stored, diffed, and re-loaded by the bench harnesses.
#pragma once

#include <iosfwd>
#include <string>

#include "circuit/circuit.hpp"

namespace quasar {

/// Writes a circuit in the text format.
void write_circuit(std::ostream& os, const Circuit& circuit);

/// Serializes to a string.
std::string circuit_to_string(const Circuit& circuit);

/// Parses the text format. Throws quasar::Error on malformed input.
Circuit read_circuit(std::istream& is);

/// Parses from a string.
Circuit circuit_from_string(const std::string& text);

}  // namespace quasar
