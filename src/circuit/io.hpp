/// \file io.hpp
/// \brief Plain-text circuit serialization.
///
/// Format (one gate per line, little-endian qubit order as everywhere):
///
///     qubits <n>
///     H 5
///     CZ 3 4
///     Rz 2 0.78539816339744828       # parameterized: <name> <qubits> <theta>
///     U2 0 1  <8 re,im pairs row-major>   # custom 2-qubit unitary
///
/// Parameterized standard gates (Rx/Ry/Rz/P/CP) are written with their
/// angle at 17 significant digits, so the round trip preserves both the
/// gate kind and the exact double parameter — they do not degrade to
/// anonymous U<k> matrices. Cycle tags are emitted as a trailing
/// "@<cycle>" when present. Malformed input (unknown gates, non-numeric
/// or trailing tokens, out-of-range qubits) throws quasar::Error naming
/// the offending line. The format exists so circuit instances (e.g.
/// generated supremacy circuits) can be stored, diffed, and re-loaded by
/// the bench harnesses.
#pragma once

#include <iosfwd>
#include <string>

#include "circuit/circuit.hpp"

namespace quasar {

/// Writes a circuit in the text format.
void write_circuit(std::ostream& os, const Circuit& circuit);

/// Serializes to a string.
std::string circuit_to_string(const Circuit& circuit);

/// Parses the text format. Throws quasar::Error on malformed input.
Circuit read_circuit(std::istream& is);

/// Parses from a string.
Circuit circuit_from_string(const std::string& text);

}  // namespace quasar
