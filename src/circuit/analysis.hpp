/// \file analysis.hpp
/// \brief Structural circuit analyses used by the scheduler and reports.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "circuit/circuit.hpp"

namespace quasar {

/// Summary statistics of a circuit.
struct CircuitStats {
  std::size_t num_gates = 0;
  std::size_t num_single_qubit = 0;
  std::size_t num_two_qubit = 0;
  std::size_t num_diagonal = 0;
  int depth = 0;  ///< greedy-layered depth (gates on disjoint qubits share a layer)
  std::map<std::string, std::size_t> by_name;
};

/// Computes summary statistics.
CircuitStats analyze(const Circuit& circuit);

/// Greedy layering: assigns each gate the earliest layer after all earlier
/// gates sharing a qubit. Returns per-gate layer indices.
std::vector<int> layerize(const Circuit& circuit);

/// Per-gate index lists per qubit, in program order. gates_on[q] lists the
/// indices of ops touching qubit q; this is the dependency structure the
/// stage finder walks (gates on the same qubit never commute for
/// supremacy circuits by design, Sec. 3.6.1).
std::vector<std::vector<std::size_t>> gates_by_qubit(const Circuit& circuit);

/// Removes trailing diagonal gates: any diagonal gate with no later gate
/// on any of its qubits alters only phases, not the output probabilities,
/// so a simulator interested in p_i = |a_i|^2 can skip it (paper
/// Sec. 3.6: "we do not simulate the final CZ gates"). Applied
/// repeatedly until a fixpoint.
Circuit strip_trailing_diagonals(const Circuit& circuit);

}  // namespace quasar
