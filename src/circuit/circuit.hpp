/// \file circuit.hpp
/// \brief Quantum circuit intermediate representation.
///
/// A Circuit is an ordered list of GateOps on program qubits. Gate order
/// matters only per qubit: gates on disjoint qubit sets commute trivially
/// (paper Sec. 3.6.1), which is exactly the freedom the scheduler exploits.
#pragma once

#include <memory>
#include <vector>

#include "core/types.hpp"
#include "gates/standard.hpp"

namespace quasar {

/// One gate application. `qubits[j]` is the program qubit carrying the
/// matrix's gate-local qubit j. Diagonal-action flags are cached from the
/// matrix at construction because the scheduler queries them constantly.
struct GateOp {
  GateKind kind = GateKind::kCustom;
  std::vector<Qubit> qubits;
  std::shared_ptr<const GateMatrix> matrix;
  /// True iff the whole matrix is diagonal (phases only).
  bool diagonal = false;
  /// True iff the matrix is a phased permutation (X, Y, CNOT, SWAP, any
  /// diagonal). Such a gate applied entirely to global qubits is a rank
  /// renumbering (Sec. 3.5) and needs no communication.
  bool phased_permutation = false;
  /// Per gate-local qubit: does the matrix act diagonally on it?
  std::vector<bool> diagonal_on;
  /// Generator metadata: clock cycle the gate belongs to (-1 if untagged).
  int cycle = -1;
  /// Angle for parameterized kinds (is_parameterized(kind)); the matrix is
  /// always derivable as parameterized_matrix(kind, param). Keeping the
  /// angle on the op makes serialization kind- and parameter-preserving
  /// instead of flattening Rz/P/CP to anonymous U<k> matrices. 0 otherwise.
  Real param = 0.0;

  /// Builds an op and caches the diagonal-action flags.
  GateOp(GateKind kind, std::vector<Qubit> qubits,
         std::shared_ptr<const GateMatrix> matrix, int cycle = -1);

  /// Number of qubits the gate acts on.
  int arity() const { return static_cast<int>(qubits.size()); }

  /// True iff the gate acts diagonally on program qubit q (also true when
  /// the gate does not touch q at all).
  bool acts_diagonally_on(Qubit q) const;

  /// True iff the gate touches program qubit q.
  bool touches(Qubit q) const;
};

/// An ordered gate list over a fixed number of program qubits.
class Circuit {
 public:
  explicit Circuit(int num_qubits);

  int num_qubits() const noexcept { return num_qubits_; }
  std::size_t num_gates() const noexcept { return ops_.size(); }
  const std::vector<GateOp>& ops() const noexcept { return ops_; }
  const GateOp& op(std::size_t i) const { return ops_[i]; }

  /// Appends a gate with an explicit matrix. Validates qubit indices,
  /// distinctness, and that the matrix dimension matches the qubit count.
  void append(GateKind kind, std::vector<Qubit> qubits,
              std::shared_ptr<const GateMatrix> matrix, int cycle = -1);

  /// Appends a parameterless standard gate (matrix taken from the shared
  /// registry, so repeated T gates share one matrix instance).
  void append_standard(GateKind kind, std::vector<Qubit> qubits,
                       int cycle = -1);

  /// Appends a custom-unitary gate.
  void append_custom(std::vector<Qubit> qubits, GateMatrix matrix,
                     int cycle = -1);

  /// Appends a parameterized standard gate (kRx/kRy/kRz/kPhase/kCPhase),
  /// recording the angle on the op so circuit I/O can round-trip it.
  void append_parameterized(GateKind kind, std::vector<Qubit> qubits,
                            Real theta, int cycle = -1);

  /// Appends a copy of an existing op (qubit count must fit). Used by the
  /// fuzz minimizer to splice gate subsets while preserving kind, angle,
  /// and cycle metadata.
  void append_op(const GateOp& op);

  // Convenience builders used by examples and tests.
  void h(Qubit q) { append_standard(GateKind::kH, {q}); }
  void x(Qubit q) { append_standard(GateKind::kX, {q}); }
  void y(Qubit q) { append_standard(GateKind::kY, {q}); }
  void z(Qubit q) { append_standard(GateKind::kZ, {q}); }
  void t(Qubit q) { append_standard(GateKind::kT, {q}); }
  void s(Qubit q) { append_standard(GateKind::kS, {q}); }
  void sqrt_x(Qubit q) { append_standard(GateKind::kSqrtX, {q}); }
  void sqrt_y(Qubit q) { append_standard(GateKind::kSqrtY, {q}); }
  void cz(Qubit a, Qubit b) { append_standard(GateKind::kCZ, {a, b}); }
  void cnot(Qubit control, Qubit target) {
    append_standard(GateKind::kCNot, {control, target});
  }
  void swap(Qubit a, Qubit b) { append_standard(GateKind::kSwap, {a, b}); }
  void rz(Qubit q, Real theta);
  void ry(Qubit q, Real theta);
  void rx(Qubit q, Real theta);
  void phase(Qubit q, Real theta);
  void cphase(Qubit control, Qubit target, Real theta);

  /// Appends all gates of another circuit (qubit counts must match).
  void extend(const Circuit& other);

 private:
  int num_qubits_;
  std::vector<GateOp> ops_;
};

/// Shared canonical matrix for a parameterless standard gate kind.
/// All circuits appending e.g. kT share one immutable matrix instance.
std::shared_ptr<const GateMatrix> shared_standard_matrix(GateKind kind);

}  // namespace quasar
