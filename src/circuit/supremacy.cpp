#include "circuit/supremacy.hpp"

#include <array>

#include "core/error.hpp"
#include "core/rng.hpp"

namespace quasar {

namespace {

/// Pattern table: each entry selects an orientation and the parities of
/// the bond coordinates. Horizontal bond (r, c)-(r, c+1) has class
/// (c % 2, r % 2); vertical bond (r, c)-(r+1, c) has class (r % 2, c % 2).
/// Each class is a matching (no qubit twice: the two bonds at a qubit in
/// the same orientation differ in their first-parity), and the four
/// classes per orientation cover all bonds of that orientation. The order
/// alternates orientations every two cycles so consecutive cycles change
/// the active qubit set, exercising the single-qubit-gate rules the same
/// way the circuits of [5] do.
struct PatternSpec {
  bool horizontal;
  int first_parity;   // parity of c (horizontal) or r (vertical)
  int second_parity;  // parity of r (horizontal) or c (vertical)
};

constexpr std::array<PatternSpec, 8> kPatterns = {{
    {true, 0, 0},   // 1: horizontal, even column, even row
    {true, 1, 1},   // 2: horizontal, odd column, odd row
    {false, 0, 0},  // 3: vertical, even row, even column
    {false, 1, 1},  // 4: vertical, odd row, odd column
    {true, 0, 1},   // 5: horizontal, even column, odd row
    {true, 1, 0},   // 6: horizontal, odd column, even row
    {false, 0, 1},  // 7: vertical, even row, odd column
    {false, 1, 0},  // 8: vertical, odd row, even column
}};

}  // namespace

std::vector<Bond> supremacy_cz_pattern(int pattern, int rows, int cols) {
  QUASAR_CHECK(pattern >= 0 && pattern < 8, "pattern index must be in 0..7");
  QUASAR_CHECK(rows >= 1 && cols >= 1, "grid must be non-empty");
  const PatternSpec& spec = kPatterns[pattern];
  std::vector<Bond> bonds;
  auto qubit = [cols](int r, int c) { return r * cols + c; };
  if (spec.horizontal) {
    for (int r = 0; r < rows; ++r) {
      if (r % 2 != spec.second_parity) continue;
      for (int c = 0; c + 1 < cols; ++c) {
        if (c % 2 != spec.first_parity) continue;
        bonds.push_back({qubit(r, c), qubit(r, c + 1)});
      }
    }
  } else {
    for (int r = 0; r + 1 < rows; ++r) {
      if (r % 2 != spec.first_parity) continue;
      for (int c = 0; c < cols; ++c) {
        if (c % 2 != spec.second_parity) continue;
        bonds.push_back({qubit(r, c), qubit(r + 1, c)});
      }
    }
  }
  return bonds;
}

Circuit make_supremacy_circuit(const SupremacyOptions& options) {
  QUASAR_CHECK(options.rows >= 1 && options.cols >= 1,
               "supremacy grid must be non-empty");
  QUASAR_CHECK(options.depth >= 1, "supremacy depth must be >= 1");
  const int n = options.rows * options.cols;
  QUASAR_CHECK(n >= 2, "supremacy circuits need at least 2 qubits");
  Circuit circuit(n);
  Rng rng(options.seed);

  if (options.initial_hadamards) {
    for (Qubit q = 0; q < n; ++q) {
      circuit.append_standard(GateKind::kH, {q}, /*cycle=*/0);
    }
  }

  // Per-qubit state for the single-qubit-gate rules.
  std::vector<GateKind> last_single(n, GateKind::kH);
  std::vector<int> singles_applied(n, 1);  // the cycle-0 Hadamard
  std::vector<bool> cz_prev(n, false);

  constexpr std::array<GateKind, 3> kRandomGates = {
      GateKind::kT, GateKind::kSqrtX, GateKind::kSqrtY};

  for (int cycle = 1; cycle <= options.depth; ++cycle) {
    const auto bonds =
        supremacy_cz_pattern((cycle - 1) % 8, options.rows, options.cols);
    std::vector<bool> cz_now(n, false);
    for (const Bond& bond : bonds) {
      cz_now[bond.a] = true;
      cz_now[bond.b] = true;
    }
    // Single-qubit gates: on qubits that had a CZ last cycle but not now.
    for (Qubit q = 0; q < n; ++q) {
      if (!cz_prev[q] || cz_now[q]) continue;
      GateKind pick;
      if (singles_applied[q] == 1) {
        pick = GateKind::kT;  // the second single-qubit gate is always T
      } else {
        // Uniform over the two gates different from the previous one.
        std::array<GateKind, 2> choices{};
        int count = 0;
        for (GateKind g : kRandomGates) {
          if (g != last_single[q]) choices[count++] = g;
        }
        QUASAR_ASSERT(count == 2);
        pick = choices[rng.uniform_int(2)];
      }
      circuit.append_standard(pick, {q}, cycle);
      last_single[q] = pick;
      ++singles_applied[q];
    }
    for (const Bond& bond : bonds) {
      circuit.append_standard(GateKind::kCZ, {bond.a, bond.b}, cycle);
    }
    cz_prev = cz_now;
  }
  return circuit;
}

std::pair<int, int> supremacy_grid_for_qubits(int num_qubits) {
  switch (num_qubits) {
    case 30: return {6, 5};
    case 36: return {6, 6};
    case 42: return {7, 6};
    case 45: return {9, 5};
    case 49: return {7, 7};
    default:
      throw Error("no canonical supremacy grid for this qubit count; use "
                  "SupremacyOptions directly");
  }
}

}  // namespace quasar
