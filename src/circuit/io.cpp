#include "circuit/io.hpp"

#include <iomanip>
#include <map>
#include <sstream>

#include "core/error.hpp"

namespace quasar {

namespace {

const std::map<std::string, GateKind>& name_to_kind() {
  static const std::map<std::string, GateKind> table = {
      {"H", GateKind::kH},         {"X", GateKind::kX},
      {"Y", GateKind::kY},         {"Z", GateKind::kZ},
      {"T", GateKind::kT},         {"Tdg", GateKind::kTdg},
      {"S", GateKind::kS},         {"Sdg", GateKind::kSdg},
      {"X_1_2", GateKind::kSqrtX}, {"Y_1_2", GateKind::kSqrtY},
      {"CZ", GateKind::kCZ},       {"CNOT", GateKind::kCNot},
      {"SWAP", GateKind::kSwap},
  };
  return table;
}

bool is_parameterless_standard(GateKind kind) {
  switch (kind) {
    case GateKind::kRx:
    case GateKind::kRy:
    case GateKind::kRz:
    case GateKind::kPhase:
    case GateKind::kCPhase:
    case GateKind::kCustom:
      return false;
    default:
      return true;
  }
}

}  // namespace

void write_circuit(std::ostream& os, const Circuit& circuit) {
  os << "qubits " << circuit.num_qubits() << "\n";
  os << std::setprecision(17);
  for (const GateOp& op : circuit.ops()) {
    if (is_parameterless_standard(op.kind)) {
      os << gate_name(op.kind);
    } else {
      os << "U" << op.arity();
    }
    for (Qubit q : op.qubits) os << ' ' << q;
    if (!is_parameterless_standard(op.kind)) {
      const GateMatrix& m = *op.matrix;
      for (Index r = 0; r < m.dim(); ++r) {
        for (Index c = 0; c < m.dim(); ++c) {
          os << ' ' << m.at(r, c).real() << ' ' << m.at(r, c).imag();
        }
      }
    }
    if (op.cycle >= 0) os << " @" << op.cycle;
    os << "\n";
  }
}

std::string circuit_to_string(const Circuit& circuit) {
  std::ostringstream os;
  write_circuit(os, circuit);
  return os.str();
}

Circuit read_circuit(std::istream& is) {
  std::string header;
  int n = 0;
  if (!(is >> header >> n) || header != "qubits") {
    throw Error("circuit parse error: expected 'qubits <n>' header");
  }
  Circuit circuit(n);
  std::string line;
  std::getline(is, line);  // consume rest of header line
  while (std::getline(is, line)) {
    // Strip comments and blanks.
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream ls(line);
    std::string name;
    if (!(ls >> name)) continue;

    int cycle = -1;
    auto read_qubits = [&](int arity) {
      std::vector<Qubit> qs(arity);
      for (int i = 0; i < arity; ++i) {
        if (!(ls >> qs[i])) {
          throw Error("circuit parse error: missing qubit in: " + line);
        }
      }
      return qs;
    };
    auto read_cycle_tag = [&]() {
      std::string tok;
      if (ls >> tok) {
        if (tok.size() < 2 || tok[0] != '@') {
          throw Error("circuit parse error: unexpected token '" + tok +
                      "' in: " + line);
        }
        cycle = std::stoi(tok.substr(1));
      }
    };

    if (name.size() >= 2 && name[0] == 'U' &&
        std::isdigit(static_cast<unsigned char>(name[1]))) {
      const int arity = std::stoi(name.substr(1));
      QUASAR_CHECK(arity >= 1 && arity <= 10, "custom gate arity 1..10");
      auto qs = read_qubits(arity);
      const Index dim = index_pow2(arity);
      std::vector<Amplitude> entries(dim * dim);
      for (auto& e : entries) {
        double re = 0.0, im = 0.0;
        if (!(ls >> re >> im)) {
          throw Error("circuit parse error: missing matrix entry in: " + line);
        }
        e = Amplitude{re, im};
      }
      read_cycle_tag();
      circuit.append(GateKind::kCustom, std::move(qs),
                     std::make_shared<const GateMatrix>(dim, std::move(entries)),
                     cycle);
      continue;
    }

    const auto it = name_to_kind().find(name);
    if (it == name_to_kind().end()) {
      throw Error("circuit parse error: unknown gate '" + name + "'");
    }
    auto qs = read_qubits(standard_arity(it->second));
    read_cycle_tag();
    circuit.append_standard(it->second, std::move(qs), cycle);
  }
  return circuit;
}

Circuit circuit_from_string(const std::string& text) {
  std::istringstream is(text);
  return read_circuit(is);
}

}  // namespace quasar
