#include "circuit/io.hpp"

#include <cctype>
#include <iomanip>
#include <map>
#include <sstream>

#include "core/error.hpp"
#include "core/parse.hpp"

namespace quasar {

namespace {

const std::map<std::string, GateKind>& name_to_kind() {
  static const std::map<std::string, GateKind> table = {
      {"H", GateKind::kH},         {"X", GateKind::kX},
      {"Y", GateKind::kY},         {"Z", GateKind::kZ},
      {"T", GateKind::kT},         {"Tdg", GateKind::kTdg},
      {"S", GateKind::kS},         {"Sdg", GateKind::kSdg},
      {"X_1_2", GateKind::kSqrtX}, {"Y_1_2", GateKind::kSqrtY},
      {"CZ", GateKind::kCZ},       {"CNOT", GateKind::kCNot},
      {"SWAP", GateKind::kSwap},
  };
  return table;
}

const std::map<std::string, GateKind>& param_name_to_kind() {
  static const std::map<std::string, GateKind> table = {
      {"Rx", GateKind::kRx},   {"Ry", GateKind::kRy},
      {"Rz", GateKind::kRz},   {"P", GateKind::kPhase},
      {"CP", GateKind::kCPhase},
  };
  return table;
}

bool is_parameterless_standard(GateKind kind) {
  return kind != GateKind::kCustom && !is_parameterized(kind);
}

/// True iff the op's matrix is exactly the canonical matrix for
/// (kind, param). Ops built through append_parameterized always match
/// (same construction path, bit-identical entries); an op assembled via
/// raw append() with a parameterized kind but an unrecorded angle does
/// not, and falls back to the lossless anonymous U<k> form.
bool param_matrix_matches(const GateOp& op) {
  const GateMatrix canonical = parameterized_matrix(op.kind, op.param);
  if (canonical.dim() != op.matrix->dim()) return false;
  for (Index r = 0; r < canonical.dim(); ++r) {
    for (Index c = 0; c < canonical.dim(); ++c) {
      if (canonical.at(r, c) != op.matrix->at(r, c)) return false;
    }
  }
  return true;
}

std::vector<std::string> tokenize(const std::string& line) {
  std::vector<std::string> tokens;
  std::istringstream ls(line);
  std::string token;
  while (ls >> token) tokens.push_back(token);
  return tokens;
}

}  // namespace

void write_circuit(std::ostream& os, const Circuit& circuit) {
  os << "qubits " << circuit.num_qubits() << "\n";
  os << std::setprecision(17);
  for (const GateOp& op : circuit.ops()) {
    if (is_parameterless_standard(op.kind)) {
      os << gate_name(op.kind);
      for (Qubit q : op.qubits) os << ' ' << q;
    } else if (is_parameterized(op.kind) && param_matrix_matches(op)) {
      os << gate_name(op.kind);
      for (Qubit q : op.qubits) os << ' ' << q;
      os << ' ' << op.param;
    } else {
      os << "U" << op.arity();
      for (Qubit q : op.qubits) os << ' ' << q;
      const GateMatrix& m = *op.matrix;
      for (Index r = 0; r < m.dim(); ++r) {
        for (Index c = 0; c < m.dim(); ++c) {
          os << ' ' << m.at(r, c).real() << ' ' << m.at(r, c).imag();
        }
      }
    }
    if (op.cycle >= 0) os << " @" << op.cycle;
    os << "\n";
  }
}

std::string circuit_to_string(const Circuit& circuit) {
  std::ostringstream os;
  write_circuit(os, circuit);
  return os.str();
}

Circuit read_circuit(std::istream& is) {
  std::string line;
  int n = -1;
  // Header: the first non-blank, non-comment line must be "qubits <n>".
  while (std::getline(is, line)) {
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    const auto tokens = tokenize(line);
    if (tokens.empty()) continue;
    if (tokens.size() != 2 || tokens[0] != "qubits") {
      throw Error("circuit parse error: expected 'qubits <n>' header in: " +
                  line);
    }
    n = parse_int_in_range(tokens[1], 1, 62, "qubit count", line);
    break;
  }
  if (n < 0) {
    throw Error("circuit parse error: expected 'qubits <n>' header");
  }
  Circuit circuit(n);

  while (std::getline(is, line)) {
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    const auto tokens = tokenize(line);
    if (tokens.empty()) continue;

    std::size_t pos = 0;
    const std::string& name = tokens[pos++];
    auto take = [&](const char* what) -> const std::string& {
      if (pos >= tokens.size()) {
        throw Error(std::string("circuit parse error: missing ") + what +
                    " in: " + line);
      }
      return tokens[pos++];
    };
    auto read_qubits = [&](int arity) {
      std::vector<Qubit> qs(arity);
      for (int i = 0; i < arity; ++i) {
        qs[i] = parse_int_in_range(take("qubit"), 0, n - 1, "qubit", line);
      }
      return qs;
    };
    // Optional trailing "@<cycle>" tag, then the line must be exhausted.
    auto finish_line = [&]() {
      int cycle = -1;
      if (pos < tokens.size() && tokens[pos][0] == '@') {
        cycle = parse_int(std::string_view(tokens[pos]).substr(1),
                          "cycle tag", line);
        ++pos;
      }
      if (pos != tokens.size()) {
        throw Error("circuit parse error: trailing garbage '" + tokens[pos] +
                    "' in: " + line);
      }
      return cycle;
    };

    if (name.size() >= 2 && name[0] == 'U' &&
        std::isdigit(static_cast<unsigned char>(name[1]))) {
      const int arity = parse_int_in_range(name.substr(1), 1, 10,
                                           "custom gate arity", line);
      auto qs = read_qubits(arity);
      const Index dim = index_pow2(arity);
      std::vector<Amplitude> entries(dim * dim);
      for (auto& e : entries) {
        const double re = parse_double(take("matrix entry"), "matrix entry",
                                       line);
        const double im = parse_double(take("matrix entry"), "matrix entry",
                                       line);
        e = Amplitude{re, im};
      }
      const int cycle = finish_line();
      circuit.append(
          GateKind::kCustom, std::move(qs),
          std::make_shared<const GateMatrix>(dim, std::move(entries)), cycle);
      continue;
    }

    if (const auto it = param_name_to_kind().find(name);
        it != param_name_to_kind().end()) {
      auto qs = read_qubits(standard_arity(it->second));
      const double theta = parse_double(take("gate angle"), "gate angle",
                                        line);
      const int cycle = finish_line();
      circuit.append_parameterized(it->second, std::move(qs), theta, cycle);
      continue;
    }

    const auto it = name_to_kind().find(name);
    if (it == name_to_kind().end()) {
      throw Error("circuit parse error: unknown gate '" + name +
                  "' in: " + line);
    }
    auto qs = read_qubits(standard_arity(it->second));
    const int cycle = finish_line();
    circuit.append_standard(it->second, std::move(qs), cycle);
  }
  return circuit;
}

Circuit circuit_from_string(const std::string& text) {
  std::istringstream is(text);
  return read_circuit(is);
}

}  // namespace quasar
