/// \file schedule_io.hpp
/// \brief Schedule serialization.
///
/// The paper reuses one scheduling result "for all instances of the same
/// size" (Table 1 caption): the stage structure depends only on the
/// circuit's gate *topology*, not on which random single-qubit gates were
/// drawn. Persisting a schedule makes that reuse explicit: schedule once,
/// store, and re-attach to any same-shape circuit.
///
/// Format (text, line oriented):
///
///     schedule <num_qubits> <num_local> <kmax> <num_stages>
///     stage <gate_count>
///     map <location of qubit 0> <location of qubit 1> ...
///     gates <op indices...>
///     cluster <location...> ; <op indices...>
///     global <op index>
///
/// Fused matrices are *not* stored; they are rebuilt from the circuit on
/// load (cheap, and it keeps files small and circuit-independent).
#pragma once

#include <iosfwd>
#include <string>

#include "sched/schedule.hpp"

namespace quasar {

/// Writes the schedule structure (stages, mappings, cluster membership).
void write_schedule(std::ostream& os, const Schedule& schedule);

/// Serializes to a string.
std::string schedule_to_string(const Schedule& schedule);

/// Reads a schedule and re-attaches it to `circuit`: validates gate
/// indices, rebuilds stage items in order, and re-fuses cluster matrices
/// when `build_matrices`. Throws quasar::Error on malformed input or if
/// the circuit does not match (gate count, qubit count, cluster
/// qubit-order consistency).
Schedule read_schedule(std::istream& is, const Circuit& circuit,
                       bool build_matrices = true);

/// Parses from a string.
Schedule schedule_from_string(const std::string& text,
                              const Circuit& circuit,
                              bool build_matrices = true);

}  // namespace quasar
