#include "sched/stage_finder.hpp"

#include <algorithm>
#include <limits>
#include <numeric>

#include "core/error.hpp"

namespace quasar {

bool requires_local(const GateOp& op, int gate_local_qubit,
                    SpecializationMode mode) {
  switch (mode) {
    case SpecializationMode::kNone:
      return true;
    case SpecializationMode::kWorstCase:
      // The paper's stage finder assumes every randomly-picked
      // single-qubit gate is dense; only multi-qubit diagonal structure
      // (CZ) is exploited.
      if (op.arity() == 1) return true;
      return !op.diagonal_on[gate_local_qubit];
    case SpecializationMode::kFull:
      return !op.diagonal_on[gate_local_qubit];
  }
  return true;
}

namespace detail {

bool executable_under(const GateOp& op, const std::vector<int>& mapping,
                      int num_local, SpecializationMode mode) {
  // A non-diagonal phased-permutation gate (X, Y, CNOT, SWAP) acting
  // entirely on global qubits is a rank renumbering — zero communication
  // (Sec. 3.5: a global CNOT "causes merely a re-numbering of ranks").
  // Diagonal gates follow the per-qubit rules below instead, so the
  // worst-case mode's "treat single-qubit diagonal gates as dense"
  // assumption is unaffected.
  if (mode != SpecializationMode::kNone && !op.diagonal &&
      op.phased_permutation) {
    bool all_global = true;
    for (Qubit q : op.qubits) all_global &= mapping[q] >= num_local;
    if (all_global) return true;
  }
  for (int j = 0; j < op.arity(); ++j) {
    if (requires_local(op, j, mode) && mapping[op.qubits[j]] >= num_local) {
      return false;
    }
  }
  return true;
}

namespace {

constexpr std::size_t kInfinity = std::numeric_limits<std::size_t>::max();

/// Tracks which gates remain and per-qubit readiness.
struct Frontier {
  const Circuit* circuit;
  /// Remaining op indices, ascending.
  std::vector<std::size_t> remaining;
  /// scheduled[i] true once op i was assigned to a stage.
  std::vector<bool> scheduled;

  explicit Frontier(const Circuit& c)
      : circuit(&c), scheduled(c.num_gates(), false) {
    remaining.resize(c.num_gates());
    std::iota(remaining.begin(), remaining.end(), std::size_t{0});
  }

  bool empty() const { return remaining.empty(); }

  /// Assigns every executable, order-respecting gate under `mapping` to a
  /// new stage list, iterating to a fixpoint. Blocked qubits carry the
  /// per-qubit ordering constraint.
  std::vector<std::size_t> take_stage(const std::vector<int>& mapping,
                                      int num_local,
                                      SpecializationMode mode) {
    std::vector<std::size_t> stage;
    std::vector<bool> blocked(circuit->num_qubits(), false);
    std::vector<std::size_t> still;
    still.reserve(remaining.size());
    for (std::size_t op_index : remaining) {
      const GateOp& op = circuit->op(op_index);
      bool can = executable_under(op, mapping, num_local, mode);
      if (can) {
        for (Qubit q : op.qubits) {
          if (blocked[q]) {
            can = false;
            break;
          }
        }
      }
      if (can) {
        stage.push_back(op_index);
        scheduled[op_index] = true;
      } else {
        for (Qubit q : op.qubits) blocked[q] = true;
        still.push_back(op_index);
      }
    }
    remaining.swap(still);
    return stage;
  }

  /// First remaining gate index on each program qubit that uses it
  /// densely (mode-aware); kInfinity when none.
  std::vector<std::size_t> next_dense_use(SpecializationMode mode) const {
    std::vector<std::size_t> next(circuit->num_qubits(), kInfinity);
    for (std::size_t pos = 0; pos < remaining.size(); ++pos) {
      const GateOp& op = circuit->op(remaining[pos]);
      for (int j = 0; j < op.arity(); ++j) {
        const Qubit q = op.qubits[j];
        if (next[q] == kInfinity && requires_local(op, j, mode)) {
          next[q] = pos;
        }
      }
    }
    return next;
  }
};

/// Builds the next-stage mapping: qubits in `globals` move to global
/// locations; everyone else becomes local. Unmoved qubits keep their
/// locations; movers fill the freed slots in ascending order (the paper's
/// "swap global qubits with the lowest-order local qubits" upper bound —
/// the search below explores better choices at the set level).
std::vector<int> make_mapping(const std::vector<int>& old_mapping,
                              const std::vector<bool>& is_global,
                              int num_local) {
  const int n = static_cast<int>(old_mapping.size());
  std::vector<int> mapping(n, -1);
  std::vector<int> free_local, free_global;
  std::vector<Qubit> need_local, need_global;
  // Keep unmoved qubits in place.
  for (Qubit q = 0; q < n; ++q) {
    const bool was_global = old_mapping[q] >= num_local;
    if (was_global == is_global[q]) {
      mapping[q] = old_mapping[q];
    } else if (is_global[q]) {
      need_global.push_back(q);
    } else {
      need_local.push_back(q);
    }
  }
  std::vector<bool> used(n, false);
  for (Qubit q = 0; q < n; ++q) {
    if (mapping[q] >= 0) used[mapping[q]] = true;
  }
  for (int loc = 0; loc < n; ++loc) {
    if (used[loc]) continue;
    (loc < num_local ? free_local : free_global).push_back(loc);
  }
  QUASAR_ASSERT(free_local.size() == need_local.size());
  QUASAR_ASSERT(free_global.size() == need_global.size());
  for (std::size_t i = 0; i < need_local.size(); ++i) {
    mapping[need_local[i]] = free_local[i];
  }
  for (std::size_t i = 0; i < need_global.size(); ++i) {
    mapping[need_global[i]] = free_global[i];
  }
  return mapping;
}

/// Heuristic global set: the g qubits whose next dense use is farthest
/// away (ties: prefer keeping currently-global qubits global, to avoid
/// moving data for nothing).
std::vector<bool> pick_globals(const std::vector<std::size_t>& next_use,
                               const std::vector<int>& old_mapping,
                               int num_local) {
  const int n = static_cast<int>(next_use.size());
  const int g = n - num_local;
  std::vector<Qubit> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](Qubit a, Qubit b) {
    if (next_use[a] != next_use[b]) return next_use[a] > next_use[b];
    const bool ga = old_mapping[a] >= num_local;
    const bool gb = old_mapping[b] >= num_local;
    if (ga != gb) return ga;
    return a < b;
  });
  std::vector<bool> is_global(n, false);
  for (int i = 0; i < g; ++i) is_global[order[i]] = true;
  return is_global;
}

/// Greedy rollout: number of further stages needed to finish `frontier`
/// using the base heuristic. Used to score swap candidates.
int rollout(Frontier frontier, std::vector<int> mapping,
            const ScheduleOptions& options) {
  int stages = 0;
  while (!frontier.empty()) {
    const auto stage = frontier.take_stage(mapping, options.num_local,
                                           options.specialization);
    ++stages;
    if (frontier.empty()) break;
    QUASAR_CHECK(!stage.empty() || stages == 1,
                 "scheduler stalled: a gate needs more dense qubits than "
                 "there are local locations");
    const auto next_use = frontier.next_dense_use(options.specialization);
    mapping = make_mapping(
        mapping, pick_globals(next_use, mapping, options.num_local),
        options.num_local);
  }
  return stages;
}

}  // namespace

std::vector<StagePlan> find_stages(const Circuit& circuit,
                                   const ScheduleOptions& options,
                                   std::vector<int> initial_mapping) {
  const int n = circuit.num_qubits();
  const int num_local = options.num_local;
  QUASAR_CHECK(num_local >= 1 && num_local <= n,
               "num_local must be in [1, num_qubits]");
  if (initial_mapping.empty()) {
    initial_mapping.resize(n);
    std::iota(initial_mapping.begin(), initial_mapping.end(), 0);
  }
  QUASAR_CHECK(static_cast<int>(initial_mapping.size()) == n,
               "initial mapping size mismatch");

  // Feasibility: every gate must fit its dense qubits into local slots.
  for (const GateOp& op : circuit.ops()) {
    int dense = 0;
    for (int j = 0; j < op.arity(); ++j) {
      if (requires_local(op, j, options.specialization)) ++dense;
    }
    QUASAR_CHECK(dense <= num_local,
                 "unschedulable: a gate acts densely on more qubits than "
                 "there are local locations");
  }

  Frontier frontier(circuit);
  std::vector<int> mapping = std::move(initial_mapping);
  std::vector<StagePlan> plans;

  while (true) {
    StagePlan plan;
    plan.qubit_to_location = mapping;
    plan.gates = frontier.take_stage(mapping, num_local,
                                     options.specialization);
    // An empty stage is a wasted swap; the stall penalty in the candidate
    // scoring makes this unreachable in practice, and the base heuristic
    // always unblocks the head gate, so the loop cannot live-lock.
    if (!plan.gates.empty() || plans.empty()) {
      plans.push_back(std::move(plan));
    }
    if (frontier.empty()) break;

    // Choose the next global set.
    const auto next_use = frontier.next_dense_use(options.specialization);
    auto base = pick_globals(next_use, mapping, num_local);
    std::vector<std::vector<bool>> candidates{base};

    if (options.swap_search && num_local < n) {
      // Boundary exchanges: the sort order near position g is where the
      // heuristic is least sure; try flipping the qubits adjacent to the
      // cut (the "cheap search algorithm to find better local qubits to
      // swap with").
      std::vector<Qubit> globals, locals;
      for (Qubit q = 0; q < n; ++q) (base[q] ? globals : locals).push_back(q);
      std::sort(globals.begin(), globals.end(), [&](Qubit a, Qubit b) {
        return next_use[a] < next_use[b];  // soonest-needed global first
      });
      std::sort(locals.begin(), locals.end(), [&](Qubit a, Qubit b) {
        return next_use[a] > next_use[b];  // least-needed local first
      });
      const int variants = std::min<std::size_t>(
          3, std::min(globals.size(), locals.size()));
      for (int v = 0; v < variants; ++v) {
        auto alt = base;
        alt[globals[v]] = false;
        alt[locals[v]] = true;
        candidates.push_back(std::move(alt));
      }
      // One variant exchanging two boundary pairs at once.
      if (globals.size() >= 2 && locals.size() >= 2) {
        auto alt = base;
        alt[globals[0]] = false;
        alt[locals[0]] = true;
        alt[globals[1]] = false;
        alt[locals[1]] = true;
        candidates.push_back(std::move(alt));
      }
    }

    int best_score = std::numeric_limits<int>::max();
    std::vector<int> best_mapping;
    for (const auto& candidate : candidates) {
      auto cand_mapping = make_mapping(mapping, candidate, num_local);
      int score = 0;
      if (options.swap_search) {
        // Candidates that stall (empty next stage) are heavily penalized;
        // the base heuristic never stalls (the head gate's dense qubits
        // always have the earliest next use and become local).
        Frontier probe = frontier;
        const auto first = probe.take_stage(cand_mapping, num_local,
                                            options.specialization);
        score = rollout(frontier, cand_mapping, options);
        if (first.empty()) score += 1000000;
      }
      if (score < best_score) {
        best_score = score;
        best_mapping = std::move(cand_mapping);
      }
      if (!options.swap_search) break;
    }
    mapping = best_mapping.empty()
                  ? make_mapping(mapping, base, num_local)
                  : std::move(best_mapping);
  }
  return plans;
}

void adjust_stage_boundaries(const Circuit& circuit,
                             const ScheduleOptions& options,
                             std::vector<StagePlan>& plans,
                             std::size_t max_moved) {
  for (std::size_t s = 0; s + 1 < plans.size(); ++s) {
    StagePlan& cur = plans[s];
    StagePlan& next = plans[s + 1];
    // Walk the stage backwards; a gate may move if it is executable under
    // the next stage's mapping and no later gate in this stage shares a
    // qubit with it (per-qubit suffix property).
    std::vector<bool> blocked(circuit.num_qubits(), false);
    std::vector<std::size_t> moved;  // reverse order
    std::vector<bool> move_flag(cur.gates.size(), false);
    for (std::size_t r = cur.gates.size(); r-- > 0;) {
      if (moved.size() >= max_moved) break;
      const GateOp& op = circuit.op(cur.gates[r]);
      bool can = executable_under(op, next.qubit_to_location,
                                  options.num_local, options.specialization);
      for (Qubit q : op.qubits) can = can && !blocked[q];
      if (can) {
        moved.push_back(cur.gates[r]);
        move_flag[r] = true;
      } else {
        for (Qubit q : op.qubits) blocked[q] = true;
      }
    }
    if (moved.empty()) continue;
    std::vector<std::size_t> kept;
    kept.reserve(cur.gates.size() - moved.size());
    for (std::size_t r = 0; r < cur.gates.size(); ++r) {
      if (!move_flag[r]) kept.push_back(cur.gates[r]);
    }
    cur.gates.swap(kept);
    // Prepend in original order.
    std::reverse(moved.begin(), moved.end());
    moved.insert(moved.end(), next.gates.begin(), next.gates.end());
    next.gates.swap(moved);
  }
}

}  // namespace detail
}  // namespace quasar
