/// \file report.hpp
/// \brief Human-readable schedule rendering (Fig. 4-style stage/cluster
/// pictures and summary tables).
#pragma once

#include <string>

#include "sched/schedule.hpp"

namespace quasar {

/// One-line-per-stage summary: gate counts, cluster counts and widths,
/// global specialized ops, and the qubit mapping deltas between stages.
std::string schedule_summary(const Circuit& circuit,
                             const Schedule& schedule);

/// ASCII rendering of one stage in the style of Fig. 4: one row per
/// bit-location, one column per stage item; cluster members share a
/// column label. Intended for small circuits (<= 26 locations).
std::string render_stage(const Circuit& circuit, const Schedule& schedule,
                         std::size_t stage_index);

}  // namespace quasar
