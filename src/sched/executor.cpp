#include "sched/executor.hpp"

#include <algorithm>
#include <numeric>

#include "check/invariant.hpp"
#include "core/error.hpp"
#include "kernels/block_apply.hpp"
#include "kernels/permute.hpp"
#include "kernels/swap.hpp"
#include "obs/trace.hpp"

namespace quasar {

void run_fused(StateVector& state, const Circuit& circuit,
               const Schedule& schedule, const ApplyOptions& apply) {
  QUASAR_CHECK(circuit.num_qubits() == state.num_qubits(),
               "run_fused: circuit/state qubit count mismatch");
  QUASAR_CHECK(schedule.num_local == schedule.num_qubits &&
                   schedule.stages.size() == 1,
               "run_fused: needs a single-node (one-stage) schedule");
  QUASAR_CHECK(schedule.options.build_matrices,
               "run_fused: schedule lacks fused matrices");
  const Stage& stage = schedule.stages.front();
  const int n = state.num_qubits();
  QUASAR_OBS_SPAN("run", "fused_run", "items",
                  static_cast<std::int64_t>(stage.items.size()));

  const bool validate = check::enabled();
  Real norm_before = 0.0;
  if (validate) {
    check::require_bijection(stage.qubit_to_location, n, "run_fused");
    norm_before = check::norm_squared(state.data(), state.size());
  }

  // Realize the stage's qubit mapping: bit-location to[q] must carry
  // program qubit q. perm[j] = old location of the qubit headed to j.
  bool identity = true;
  for (Qubit q = 0; q < n; ++q) {
    identity &= stage.qubit_to_location[q] == q;
  }
  if (!identity) {
    QUASAR_OBS_SPAN("permute", "layout_permute");
    std::vector<int> perm(n);
    for (Qubit q = 0; q < n; ++q) perm[stage.qubit_to_location[q]] = q;
    apply_fused_bit_permutation(state.data(), n, perm,
                                Amplitude{1.0, 0.0}, apply.num_threads);
  }

  // Prepare every cluster gate up front, then hand the whole item list to
  // the blocked executor: maximal runs of low-location clusters (diagonal
  // clusters at any location) share one DRAM sweep instead of paying one
  // sweep per cluster.
  std::vector<PreparedGate> prepared;
  prepared.reserve(stage.items.size());
  for (const StageItem& item : stage.items) {
    QUASAR_ASSERT(item.kind == StageItem::Kind::kCluster);
    const Cluster& cluster = stage.clusters[item.cluster];
    prepared.push_back(prepare_gate(*cluster.matrix, cluster.qubits));
  }
  std::vector<const PreparedGate*> gate_ptrs;
  gate_ptrs.reserve(prepared.size());
  for (const PreparedGate& g : prepared) gate_ptrs.push_back(&g);
  apply_gates_blocked(state.data(), n, gate_ptrs.data(), gate_ptrs.size(),
                      apply);

  if (!identity) {
    // Permute back to program order: inverse mapping.
    QUASAR_OBS_SPAN("permute", "layout_permute");
    std::vector<int> inverse(n);
    for (Qubit q = 0; q < n; ++q) inverse[q] = stage.qubit_to_location[q];
    apply_fused_bit_permutation(state.data(), n, inverse,
                                Amplitude{1.0, 0.0}, apply.num_threads);
  }

  if (validate) {
    check::require_finite(state.data(), state.size(), "run_fused");
    check::require_norm_preserved(
        check::norm_squared(state.data(), state.size()), norm_before,
        check::norm_tolerance(n, stage.items.size() + 2), "run_fused");
  }
}

void run_fused(StateVector& state, const Circuit& circuit,
               const FusedRunOptions& options) {
  ScheduleOptions sched;
  sched.num_local = circuit.num_qubits();
  sched.kmax = std::min(options.kmax, circuit.num_qubits());
  sched.qubit_mapping = options.qubit_mapping;
  run_fused(state, circuit, make_schedule(circuit, sched), options.apply);
}

}  // namespace quasar
