/// \file executor.hpp
/// \brief Single-node scheduled (fused) circuit execution.
///
/// The node-level payoff of Sec. 3.6 without the multi-node machinery:
/// merge the circuit into k-qubit clusters (k <= kmax), optionally remap
/// program qubits to low-order bit-locations (Sec. 3.6.2, against the
/// cache-associativity penalty), and apply each cluster with a single
/// kernel sweep. The paper reports a 3x time-to-solution improvement for
/// a single-socket 30-qubit supremacy run from exactly this (Sec. 4.2.1).
#pragma once

#include "circuit/circuit.hpp"
#include "kernels/apply.hpp"
#include "sched/schedule.hpp"
#include "simulator/statevector.hpp"

namespace quasar {

/// Options for run_fused.
struct FusedRunOptions {
  /// Maximum cluster width (the paper: 4 on Edison, 5 on KNL).
  int kmax = 5;
  /// Apply the Sec. 3.6.2 qubit-mapping heuristic.
  bool qubit_mapping = true;
  /// Kernel options (threads, backend).
  ApplyOptions apply;
};

/// Runs `circuit` on `state` with cluster fusion; equivalent to
/// gate-by-gate Simulator::run up to floating-point rounding. If the
/// qubit mapping is enabled the state is permuted into the optimized
/// layout before the sweep and permuted back afterwards (two extra
/// swap passes, amortized over the whole circuit).
void run_fused(StateVector& state, const Circuit& circuit,
               const FusedRunOptions& options = {});

/// Same, with a pre-built single-node schedule (stages must be exactly
/// one; build with ScheduleOptions::num_local == circuit width). The
/// schedule can be reused across states and same-shape circuits.
void run_fused(StateVector& state, const Circuit& circuit,
               const Schedule& schedule, const ApplyOptions& apply = {});

}  // namespace quasar
