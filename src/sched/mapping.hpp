/// \file mapping.hpp
/// \brief Internal: cache-associativity-aware qubit mapping (Sec. 3.6.2).
#pragma once

#include "sched/schedule.hpp"

namespace quasar::detail {

/// Computes an initial program-qubit -> bit-location mapping that
/// maximizes the number of clusters acting on low-order bit-locations,
/// following the paper's greedy heuristic: assign location 0 to the qubit
/// appearing in the most clusters, ignore those clusters, repeat for
/// locations 1..3; for locations 4..7, after each assignment only ignore
/// clusters that act on two of those four locations. Uses a provisional
/// schedule (identity mapping, no matrices) to obtain the clusters.
std::vector<int> optimize_qubit_mapping(const Circuit& circuit,
                                        const ScheduleOptions& options);

}  // namespace quasar::detail
