#include "sched/cluster.hpp"

#include <algorithm>

#include "core/error.hpp"

namespace quasar::detail {

namespace {

/// Scans `gates` (op indices in order) and returns those joinable into a
/// cluster over bit-location set `locations` (sorted). A gate joins when
/// all its qubits' locations are in the set and none of its qubits was
/// blocked; a gate that cannot join blocks its qubits, preserving
/// per-qubit program order across clusters.
std::vector<std::size_t> scan_joinable(const Circuit& circuit,
                                       const std::vector<std::size_t>& gates,
                                       const std::vector<int>& location_of,
                                       const std::vector<bool>& in_set) {
  std::vector<std::size_t> joined;
  std::vector<bool> blocked(circuit.num_qubits(), false);
  for (std::size_t op_index : gates) {
    const GateOp& op = circuit.op(op_index);
    bool can = true;
    for (Qubit q : op.qubits) {
      if (blocked[q] || !in_set[location_of[q]]) {
        can = false;
        break;
      }
    }
    if (can) {
      joined.push_back(op_index);
    } else {
      for (Qubit q : op.qubits) blocked[q] = true;
    }
  }
  return joined;
}

}  // namespace

void build_stage_items(const Circuit& circuit, const ScheduleOptions& options,
                       Stage& stage) {
  const int num_local = options.num_local;
  const auto& location_of = stage.qubit_to_location;
  stage.clusters.clear();
  stage.items.clear();

  std::vector<std::size_t> remaining = stage.gates;
  std::vector<bool> in_set(circuit.num_qubits() + num_local, false);

  while (!remaining.empty()) {
    const std::size_t head_index = remaining.front();
    const GateOp& head = circuit.op(head_index);

    // Gates with a global qubit run via specialization, un-clustered.
    bool head_global = false;
    for (Qubit q : head.qubits) head_global |= location_of[q] >= num_local;
    if (head_global) {
      StageItem item;
      item.kind = StageItem::Kind::kGlobalOp;
      item.op = head_index;
      stage.items.push_back(item);
      remaining.erase(remaining.begin());
      continue;
    }

    // Seed the location set with the head gate's locations.
    std::vector<int> locations;
    for (Qubit q : head.qubits) locations.push_back(location_of[q]);
    std::sort(locations.begin(), locations.end());
    QUASAR_CHECK(static_cast<int>(locations.size()) <= options.kmax,
                 "cluster seed wider than kmax; raise kmax");

    std::fill(in_set.begin(), in_set.end(), false);
    for (int loc : locations) in_set[loc] = true;
    std::vector<std::size_t> best_join =
        scan_joinable(circuit, remaining, location_of, in_set);

    // Greedily add the local location that absorbs the most extra gates
    // (Sec. 3.6.1: "greedily try to increase the number of qubits k
    // within a cluster ... small local search").
    while (static_cast<int>(locations.size()) < options.kmax) {
      int best_loc = -1;
      std::vector<std::size_t> best_candidate;
      for (int loc = 0; loc < num_local; ++loc) {
        if (in_set[loc]) continue;
        in_set[loc] = true;
        auto joined = scan_joinable(circuit, remaining, location_of, in_set);
        in_set[loc] = false;
        if (joined.size() > best_candidate.size()) {
          best_candidate = std::move(joined);
          best_loc = loc;
        }
      }
      if (best_loc < 0 || best_candidate.size() <= best_join.size()) break;
      in_set[best_loc] = true;
      locations.insert(
          std::lower_bound(locations.begin(), locations.end(), best_loc),
          best_loc);
      best_join = std::move(best_candidate);
    }

    QUASAR_ASSERT(!best_join.empty() && best_join.front() == head_index);

    Cluster cluster;
    cluster.qubits = locations;
    cluster.ops = best_join;
    if (options.build_matrices) {
      cluster.matrix = fuse_cluster(circuit, cluster, location_of);
      cluster.diagonal = cluster.matrix->is_diagonal();
    } else {
      cluster.diagonal = false;
    }
    StageItem item;
    item.kind = StageItem::Kind::kCluster;
    item.cluster = stage.clusters.size();
    stage.clusters.push_back(std::move(cluster));
    stage.items.push_back(item);

    // Remove the absorbed gates from the remaining list.
    std::vector<std::size_t> still;
    still.reserve(remaining.size() - best_join.size());
    std::size_t take = 0;
    for (std::size_t op_index : remaining) {
      if (take < best_join.size() && best_join[take] == op_index) {
        ++take;
      } else {
        still.push_back(op_index);
      }
    }
    QUASAR_ASSERT(take == best_join.size());
    remaining.swap(still);
  }
}

GateMatrix fuse_cluster(const Circuit& circuit, const Cluster& cluster,
                        const std::vector<int>& location_of) {
  const int k = cluster.width();
  // Cluster-local position of each bit-location.
  auto position_of = [&](int location) {
    const auto it = std::lower_bound(cluster.qubits.begin(),
                                     cluster.qubits.end(), location);
    QUASAR_CHECK(it != cluster.qubits.end() && *it == location,
                 "fuse_cluster: gate location outside the cluster");
    return static_cast<int>(it - cluster.qubits.begin());
  };
  GateMatrix fused = GateMatrix::identity(k);
  for (std::size_t op_index : cluster.ops) {
    const GateOp& op = circuit.op(op_index);
    std::vector<int> positions(op.arity());
    for (int j = 0; j < op.arity(); ++j) {
      positions[j] = position_of(location_of[op.qubits[j]]);
    }
    fused = op.matrix->embed(k, positions) * fused;
  }
  return fused;
}

}  // namespace quasar::detail
