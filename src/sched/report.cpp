#include "sched/report.hpp"

#include <algorithm>
#include <sstream>

#include "core/error.hpp"

namespace quasar {

std::string schedule_summary(const Circuit& circuit,
                             const Schedule& schedule) {
  std::ostringstream os;
  os << "schedule: " << circuit.num_qubits() << " qubits ("
     << schedule.num_local << " local), " << circuit.num_gates()
     << " gates, " << schedule.stages.size() << " stage(s), "
     << schedule.num_swaps() << " global-to-local swap(s), "
     << schedule.num_clusters() << " cluster(s)\n";
  for (std::size_t s = 0; s < schedule.stages.size(); ++s) {
    const Stage& stage = schedule.stages[s];
    std::size_t global_ops = 0;
    for (const StageItem& item : stage.items) {
      if (item.kind == StageItem::Kind::kGlobalOp) ++global_ops;
    }
    double mean_width = 0.0, mean_gates = 0.0;
    for (const Cluster& c : stage.clusters) {
      mean_width += c.width();
      mean_gates += static_cast<double>(c.ops.size());
    }
    if (!stage.clusters.empty()) {
      mean_width /= static_cast<double>(stage.clusters.size());
      mean_gates /= static_cast<double>(stage.clusters.size());
    }
    os << "  stage " << s << ": " << stage.gates.size() << " gates -> "
       << stage.clusters.size() << " clusters (mean width " << mean_width
       << ", mean gates/cluster " << mean_gates << "), " << global_ops
       << " specialized global op(s)\n";
    if (s + 1 < schedule.stages.size()) {
      const Stage& next = schedule.stages[s + 1];
      os << "    swap:";
      for (Qubit q = 0; q < circuit.num_qubits(); ++q) {
        const bool was_global = stage.qubit_to_location[q] >= schedule.num_local;
        const bool is_global = next.qubit_to_location[q] >= schedule.num_local;
        if (was_global && !is_global) os << " +q" << q;
        if (!was_global && is_global) os << " -q" << q;
      }
      os << " (one all-to-all)\n";
    }
  }
  return os.str();
}

std::string render_stage(const Circuit& circuit, const Schedule& schedule,
                         std::size_t stage_index) {
  QUASAR_CHECK(stage_index < schedule.stages.size(),
               "render_stage: stage index out of range");
  const Stage& stage = schedule.stages[stage_index];
  const int n = circuit.num_qubits();

  // Columns: one per stage item; rows: one per bit-location (high first).
  std::vector<std::string> cell(n * stage.items.size());
  auto at = [&](int loc, std::size_t col) -> std::string& {
    return cell[col * n + loc];
  };
  for (std::size_t col = 0; col < stage.items.size(); ++col) {
    const StageItem& item = stage.items[col];
    if (item.kind == StageItem::Kind::kCluster) {
      const Cluster& cluster = stage.clusters[item.cluster];
      for (int loc : cluster.qubits) {
        at(loc, col) = "C" + std::to_string(item.cluster);
      }
    } else {
      const GateOp& op = circuit.op(item.op);
      for (Qubit q : op.qubits) {
        at(stage.qubit_to_location[q], col) = gate_name(op.kind);
      }
    }
  }

  std::size_t width = 2;
  for (const auto& s : cell) width = std::max(width, s.size());

  std::ostringstream os;
  os << "stage " << stage_index << " (" << stage.items.size()
     << " items; rows are bit-locations, global above the line):\n";
  for (int loc = n - 1; loc >= 0; --loc) {
    if (loc == schedule.num_local - 1) {
      os << "  " << std::string(6 + (width + 1) * stage.items.size(), '-')
         << "\n";
    }
    os << "  b" << loc << (loc < 10 ? " " : "") << " |";
    for (std::size_t col = 0; col < stage.items.size(); ++col) {
      std::string s = at(loc, col);
      s.resize(width, ' ');
      os << s << ' ';
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace quasar
