/// \file stage_finder.hpp
/// \brief Internal: stage decomposition and swap-target selection.
#pragma once

#include <cstddef>
#include <vector>

#include "sched/schedule.hpp"

namespace quasar::detail {

/// A stage before clustering: its qubit mapping and ordered gate list.
struct StagePlan {
  std::vector<int> qubit_to_location;
  std::vector<std::size_t> gates;
};

/// Splits the circuit into communication-free stages (paper Sec. 3.6.1
/// step 1), choosing the set of global qubits for each stage. The first
/// stage uses `initial_mapping` (identity if empty). Throws quasar::Error
/// if some gate can never be executed (more dense qubits than local
/// locations).
std::vector<StagePlan> find_stages(const Circuit& circuit,
                                   const ScheduleOptions& options,
                                   std::vector<int> initial_mapping = {});

/// Step 3 (Sec. 3.6.1): moves per-qubit-suffix gates of each stage into
/// the following stage when they are executable there, so small trailing
/// clusters disappear. `max_moved` bounds how many gates move per stage
/// boundary. Mutates the plans in place.
void adjust_stage_boundaries(const Circuit& circuit,
                             const ScheduleOptions& options,
                             std::vector<StagePlan>& plans,
                             std::size_t max_moved);

/// True if op may execute in a stage with the given mapping.
bool executable_under(const GateOp& op, const std::vector<int>& mapping,
                      int num_local, SpecializationMode mode);

}  // namespace quasar::detail
