#include "sched/digest.hpp"

#include <sstream>

#include "circuit/io.hpp"
#include "core/crc32c.hpp"

namespace quasar::sched {

namespace {

const char* mode_token(SpecializationMode mode) {
  switch (mode) {
    case SpecializationMode::kNone:
      return "none";
    case SpecializationMode::kWorstCase:
      return "worst";
    case SpecializationMode::kFull:
      return "full";
  }
  return "worst";
}

}  // namespace

std::string schedule_key_text(const Circuit& circuit,
                              const ScheduleOptions& options) {
  std::ostringstream os;
  os << "quasar-schedule-key 1\n";
  os << "options local " << options.num_local << " kmax " << options.kmax
     << " mode " << mode_token(options.specialization) << " swap_search "
     << (options.swap_search ? 1 : 0) << " adjust_swaps "
     << (options.adjust_swaps ? 1 : 0) << " qubit_mapping "
     << (options.qubit_mapping ? 1 : 0) << " low_locations "
     << options.mapping_low_locations << "\n";
  os << circuit_to_string(circuit);
  return os.str();
}

std::uint32_t schedule_digest(const Circuit& circuit,
                              const ScheduleOptions& options) {
  const std::string text = schedule_key_text(circuit, options);
  const std::uint32_t crc = crc32c(text.data(), text.size());
  // 0 is the manifest's "digest unknown" sentinel; remap the (1 in 2^32)
  // collision so a real digest never reads as unknown.
  return crc != 0 ? crc : 1;
}

}  // namespace quasar::sched
