/// \file digest.hpp
/// \brief Canonical circuit+options scheduling digest.
///
/// Two subsystems need to answer "would scheduling this circuit with
/// these options reproduce that schedule?": the checkpoint manifest
/// (a snapshot must refuse to resume against a schedule it was not
/// taken under, DESIGN.md §10) and the job server's schedule cache
/// (two submissions may share a scheduling result only if they would
/// schedule identically, DESIGN.md §13). Both key off the same
/// canonical text — a versioned header, the scheduling-relevant
/// options, and the circuit's own text serialization — so the two
/// keying schemes cannot drift apart.
///
/// The key deliberately covers the circuit *text* (io.hpp): gate
/// parameters are serialized at 17 significant digits, so circuits
/// differing only in a rotation angle produce different keys. That is
/// conservative for pure stage-structure reuse (the paper reuses one
/// schedule across same-shape circuits), but it is exactly what the
/// checkpoint consistency check needs, and the schedule cache inherits
/// the safety: a hit can reuse the cached *stages and fused matrices*
/// verbatim because the circuits are identical.
///
/// ScheduleOptions::build_matrices is excluded: it changes what is
/// materialized, never which stages are found.
#pragma once

#include <cstdint>
#include <string>

#include "circuit/circuit.hpp"
#include "sched/schedule.hpp"

namespace quasar::sched {

/// The canonical key text: `quasar-schedule-key 1`, one options line,
/// then the circuit serialization. Deterministic — no timestamps, no
/// addresses.
std::string schedule_key_text(const Circuit& circuit,
                              const ScheduleOptions& options);

/// CRC32C of schedule_key_text(). This is the value stored in checkpoint
/// manifests (Manifest::schedule_crc) and used as the schedule-cache
/// display digest; 0 is reserved for "unknown".
std::uint32_t schedule_digest(const Circuit& circuit,
                              const ScheduleOptions& options);

}  // namespace quasar::sched
