/// \file cluster.hpp
/// \brief Internal: merging stage gates into k-qubit clusters.
#pragma once

#include "sched/schedule.hpp"

namespace quasar::detail {

/// Clusters the ordered `gates` of one stage (Sec. 3.6.1 step 2). Fills
/// `stage.clusters` and `stage.items`. Gates touching global locations
/// (possible only via diagonal/specialized action) become kGlobalOp
/// items; all-local gates are merged greedily into clusters of width
/// <= kmax, growing the cluster qubit set one location at a time towards
/// the set that absorbs the most gates.
void build_stage_items(const Circuit& circuit, const ScheduleOptions& options,
                       Stage& stage);

/// Fuses the ops of a cluster into one matrix over its (ascending)
/// bit-locations. `location_of[q]` maps program qubit -> bit-location.
GateMatrix fuse_cluster(const Circuit& circuit, const Cluster& cluster,
                        const std::vector<int>& location_of);

}  // namespace quasar::detail
