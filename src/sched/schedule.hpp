/// \file schedule.hpp
/// \brief Schedule data model: stages, clusters, and qubit mappings.
///
/// The scheduler (paper Sec. 3.6) turns a circuit into a sequence of
/// *stages*. Within a stage every gate acts non-diagonally only on local
/// bit-locations, so the whole stage runs without communication; between
/// stages a global-to-local swap (one all-to-all) changes which program
/// qubits are local. Within a stage, gates are merged into k-qubit
/// *clusters* (k <= kmax) executed by one kernel sweep each.
#pragma once

#include <optional>
#include <vector>

#include "circuit/circuit.hpp"

namespace quasar {

/// Which gates may be applied to global qubits without communication
/// (paper Sec. 3.5 / 3.6.1).
enum class SpecializationMode {
  /// No specialization: every gate needs all its qubits local.
  kNone,
  /// Worst case assumed by the paper's stage finder: multi-qubit diagonal
  /// gates (CZ) are free on global qubits, but single-qubit gates are
  /// treated as dense even when they are actually diagonal (T).
  kWorstCase,
  /// Full matrix-structure specialization: any gate qubit with diagonal
  /// action (T, Z, CZ, control qubits of CNOT/CPhase) may stay global.
  kFull,
};

/// True if, under `mode`, the gate requires gate-local qubit j to be on a
/// local bit-location.
bool requires_local(const GateOp& op, int gate_local_qubit,
                    SpecializationMode mode);

/// A fused group of gates executed by one k-qubit kernel sweep.
struct Cluster {
  /// Bit-locations the fused matrix acts on, strictly ascending; the
  /// fused matrix's gate-local qubit j lives at qubits[j].
  std::vector<int> qubits;
  /// Indices into the source circuit, in execution order.
  std::vector<std::size_t> ops;
  /// Fused unitary (present when ScheduleOptions::build_matrices).
  std::optional<GateMatrix> matrix;
  /// True if the fused matrix is diagonal.
  bool diagonal = false;

  int width() const { return static_cast<int>(qubits.size()); }
};

/// One stage item: either a cluster or a specialized "global" op (a gate
/// that is diagonal on its global qubits and is applied in place without
/// communication).
struct StageItem {
  enum class Kind { kCluster, kGlobalOp } kind = Kind::kCluster;
  /// Index into Stage::clusters when kind == kCluster.
  std::size_t cluster = 0;
  /// Circuit op index when kind == kGlobalOp.
  std::size_t op = 0;
};

/// A communication-free span of the schedule.
struct Stage {
  /// Program qubit -> bit-location during this stage (size = num qubits).
  /// Locations [0, num_local) are local, the rest global.
  std::vector<int> qubit_to_location;
  /// All circuit op indices assigned to this stage, in execution order.
  std::vector<std::size_t> gates;
  /// Clusters over local bit-locations.
  std::vector<Cluster> clusters;
  /// Execution order over clusters and specialized global ops.
  std::vector<StageItem> items;

  /// Location of a program qubit in this stage.
  int location(Qubit q) const { return qubit_to_location[q]; }
};

/// Scheduler options.
struct ScheduleOptions {
  /// Number of local qubits l (bit-locations [0, l)). Set equal to the
  /// circuit width for single-node scheduling.
  int num_local = 0;
  /// Maximum cluster width kmax.
  int kmax = 5;
  SpecializationMode specialization = SpecializationMode::kWorstCase;
  /// Cheap search over swap target sets (Sec. 3.6.1 step 1; cuts the
  /// 36-qubit circuit from two swaps to one).
  bool swap_search = true;
  /// Step 3: move trailing gates of a stage into the next stage to kill
  /// small leftover clusters.
  bool adjust_swaps = true;
  /// Build the fused cluster matrices (off for pure counting sweeps).
  bool build_matrices = true;
  /// Apply the cache-associativity qubit-mapping heuristic (Sec. 3.6.2)
  /// to the first stage's local bit-locations.
  bool qubit_mapping = false;
  /// Cache ways the mapping heuristic optimizes for (8 on Edison's Ivy
  /// Bridge, effectively 8 on KNL's shared 16-way L2).
  int mapping_low_locations = 8;
};

/// A complete schedule.
struct Schedule {
  int num_qubits = 0;
  int num_local = 0;
  ScheduleOptions options;
  std::vector<Stage> stages;

  /// Number of global-to-local swaps (all-to-alls) = stage transitions.
  int num_swaps() const { return static_cast<int>(stages.size()) - 1; }
  /// Total clusters over all stages.
  std::size_t num_clusters() const;
  /// Total gates covered (must equal the circuit's gate count).
  std::size_t num_gates() const;
};

/// Produces a schedule for `circuit`. Throws quasar::Error if options are
/// inconsistent (num_local < kmax, etc.).
Schedule make_schedule(const Circuit& circuit, const ScheduleOptions& options);

/// Number of communication-requiring gate executions if the circuit is
/// run gate-by-gate with a fixed identity layout, as in the baseline
/// scheme of [5]: a gate counts when it acts densely (mode-aware) on at
/// least one location >= num_local. The lower panels of Fig. 5.
int count_global_gates(const Circuit& circuit, int num_local,
                       SpecializationMode mode);

}  // namespace quasar
