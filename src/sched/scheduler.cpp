#include <algorithm>
#include <numeric>

#include "core/error.hpp"
#include "sched/cluster.hpp"
#include "sched/mapping.hpp"
#include "sched/schedule.hpp"
#include "sched/stage_finder.hpp"

namespace quasar {

std::size_t Schedule::num_clusters() const {
  std::size_t total = 0;
  for (const Stage& stage : stages) total += stage.clusters.size();
  return total;
}

std::size_t Schedule::num_gates() const {
  std::size_t total = 0;
  for (const Stage& stage : stages) total += stage.gates.size();
  return total;
}

Schedule make_schedule(const Circuit& circuit,
                       const ScheduleOptions& options) {
  QUASAR_CHECK(options.num_local >= 1 &&
                   options.num_local <= circuit.num_qubits(),
               "make_schedule: num_local must be in [1, num_qubits]");
  QUASAR_CHECK(options.kmax >= 1 && options.kmax <= options.num_local,
               "make_schedule: kmax must be in [1, num_local]");

  std::vector<int> initial_mapping;
  if (options.qubit_mapping) {
    initial_mapping = detail::optimize_qubit_mapping(circuit, options);
  }

  auto plans = detail::find_stages(circuit, options,
                                   std::move(initial_mapping));

  auto assemble = [&](const std::vector<detail::StagePlan>& stage_plans) {
    Schedule schedule;
    schedule.num_qubits = circuit.num_qubits();
    schedule.num_local = options.num_local;
    schedule.options = options;
    schedule.stages.reserve(stage_plans.size());
    for (const auto& plan : stage_plans) {
      Stage stage;
      stage.qubit_to_location = plan.qubit_to_location;
      stage.gates = plan.gates;
      detail::build_stage_items(circuit, options, stage);
      schedule.stages.push_back(std::move(stage));
    }
    return schedule;
  };

  Schedule schedule = assemble(plans);
  if (options.adjust_swaps && plans.size() > 1) {
    // Step 3 (Sec. 3.6.1): move per-qubit-suffix gates across the stage
    // boundary to kill small trailing clusters — but only keep the
    // adjustment if it actually reduces the total cluster count (the
    // paper: "if this is possible without increasing the total number
    // of global-to-local swaps"; the swap count is unchanged by
    // construction, so the cluster count is the tiebreaker).
    auto adjusted_plans = plans;
    detail::adjust_stage_boundaries(
        circuit, options, adjusted_plans,
        /*max_moved=*/static_cast<std::size_t>(options.kmax));
    Schedule adjusted = assemble(adjusted_plans);
    if (adjusted.num_clusters() < schedule.num_clusters()) {
      schedule = std::move(adjusted);
    }
  }

  QUASAR_CHECK(schedule.num_gates() == circuit.num_gates(),
               "internal: schedule lost or duplicated gates");
  return schedule;
}

int count_global_gates(const Circuit& circuit, int num_local,
                       SpecializationMode mode) {
  QUASAR_CHECK(num_local >= 1, "count_global_gates: bad num_local");
  int count = 0;
  for (const GateOp& op : circuit.ops()) {
    for (int j = 0; j < op.arity(); ++j) {
      if (op.qubits[j] >= num_local && requires_local(op, j, mode)) {
        ++count;
        break;
      }
    }
  }
  return count;
}

}  // namespace quasar
