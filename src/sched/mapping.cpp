#include "sched/mapping.hpp"

#include <algorithm>
#include <numeric>

#include "core/error.hpp"

namespace quasar::detail {

std::vector<int> optimize_qubit_mapping(const Circuit& circuit,
                                        const ScheduleOptions& options) {
  // Provisional schedule with the identity mapping, matrices off.
  ScheduleOptions provisional = options;
  provisional.qubit_mapping = false;
  provisional.build_matrices = false;
  const Schedule schedule = make_schedule(circuit, provisional);

  const int n = circuit.num_qubits();
  const int num_local = options.num_local;

  // Collect cluster qubit sets in *program qubit* terms.
  std::vector<std::vector<Qubit>> cluster_qubits;
  for (const Stage& stage : schedule.stages) {
    // location -> program qubit for this stage.
    std::vector<Qubit> qubit_at(n, -1);
    for (Qubit q = 0; q < n; ++q) qubit_at[stage.qubit_to_location[q]] = q;
    for (const Cluster& cluster : stage.clusters) {
      std::vector<Qubit> qs;
      for (int loc : cluster.qubits) qs.push_back(qubit_at[loc]);
      cluster_qubits.push_back(std::move(qs));
    }
  }

  // Only qubits local in the FIRST stage are re-mapped; the scheduler
  // controls later stages' mappings itself.
  const Stage& first = schedule.stages.front();
  std::vector<Qubit> first_local;
  for (Qubit q = 0; q < n; ++q) {
    if (first.qubit_to_location[q] < num_local) first_local.push_back(q);
  }

  std::vector<bool> cluster_active(cluster_qubits.size(), true);
  std::vector<bool> assigned(n, false);
  std::vector<int> mapping(n, -1);

  auto count_for = [&](Qubit q) {
    int count = 0;
    for (std::size_t c = 0; c < cluster_qubits.size(); ++c) {
      if (!cluster_active[c]) continue;
      if (std::find(cluster_qubits[c].begin(), cluster_qubits[c].end(), q) !=
          cluster_qubits[c].end()) {
        ++count;
      }
    }
    return count;
  };

  const int low = std::min(options.mapping_low_locations, num_local);
  std::vector<Qubit> group_two;  // qubits assigned to locations 4..7
  for (int loc = 0; loc < low; ++loc) {
    Qubit best = -1;
    int best_count = -1;
    for (Qubit q : first_local) {
      if (assigned[q]) continue;
      const int count = count_for(q);
      if (count > best_count) {
        best_count = count;
        best = q;
      }
    }
    if (best < 0) break;
    assigned[best] = true;
    mapping[best] = loc;
    if (loc < 4) {
      // Ignore every cluster acting on this qubit.
      for (std::size_t c = 0; c < cluster_qubits.size(); ++c) {
        if (!cluster_active[c]) continue;
        if (std::find(cluster_qubits[c].begin(), cluster_qubits[c].end(),
                      best) != cluster_qubits[c].end()) {
          cluster_active[c] = false;
        }
      }
    } else {
      // Locations 4..7: ignore only clusters acting on two of them.
      group_two.push_back(best);
      for (std::size_t c = 0; c < cluster_qubits.size(); ++c) {
        if (!cluster_active[c]) continue;
        int hits = 0;
        for (Qubit q : group_two) {
          if (std::find(cluster_qubits[c].begin(), cluster_qubits[c].end(),
                        q) != cluster_qubits[c].end()) {
            ++hits;
          }
        }
        if (hits >= 2) cluster_active[c] = false;
      }
    }
  }

  // Remaining local qubits: descending total cluster count.
  std::vector<Qubit> rest;
  for (Qubit q : first_local) {
    if (!assigned[q]) rest.push_back(q);
  }
  std::fill(cluster_active.begin(), cluster_active.end(), true);
  std::sort(rest.begin(), rest.end(), [&](Qubit a, Qubit b) {
    const int ca = count_for(a), cb = count_for(b);
    if (ca != cb) return ca > cb;
    return a < b;
  });
  int next_loc = 0;
  auto next_free_local = [&]() {
    while (true) {
      bool taken = false;
      for (Qubit q = 0; q < n; ++q) taken |= mapping[q] == next_loc;
      if (!taken) return next_loc;
      ++next_loc;
    }
  };
  for (Qubit q : rest) mapping[q] = next_free_local(), ++next_loc;

  // Global qubits keep their first-stage locations.
  for (Qubit q = 0; q < n; ++q) {
    if (mapping[q] < 0) mapping[q] = first.qubit_to_location[q];
  }
  return mapping;
}

}  // namespace quasar::detail
