#include "sched/schedule_io.hpp"

#include <algorithm>
#include <sstream>

#include "core/error.hpp"
#include "core/parse.hpp"
#include "sched/cluster.hpp"

namespace quasar {

void write_schedule(std::ostream& os, const Schedule& schedule) {
  os << "schedule " << schedule.num_qubits << ' ' << schedule.num_local
     << ' ' << schedule.options.kmax << ' ' << schedule.stages.size()
     << "\n";
  for (const Stage& stage : schedule.stages) {
    os << "stage " << stage.gates.size() << "\n";
    os << "map";
    for (int loc : stage.qubit_to_location) os << ' ' << loc;
    os << "\n";
    os << "gates";
    for (std::size_t g : stage.gates) os << ' ' << g;
    os << "\n";
    for (const StageItem& item : stage.items) {
      if (item.kind == StageItem::Kind::kCluster) {
        const Cluster& cluster = stage.clusters[item.cluster];
        os << "cluster";
        for (int loc : cluster.qubits) os << ' ' << loc;
        os << " ;";
        for (std::size_t g : cluster.ops) os << ' ' << g;
        os << "\n";
      } else {
        os << "global " << item.op << "\n";
      }
    }
  }
}

std::string schedule_to_string(const Schedule& schedule) {
  std::ostringstream os;
  write_schedule(os, schedule);
  return os.str();
}

namespace {

/// Line-based token source with one-line lookahead.
class LineReader {
 public:
  explicit LineReader(std::istream& is) : is_(&is) {}

  /// Returns the next non-empty line, or empty optional at EOF.
  bool next(std::string& line) {
    while (std::getline(*is_, line)) {
      if (line.find_first_not_of(" \t\r") != std::string::npos) return true;
    }
    return false;
  }

  void push_back(std::string line) {
    QUASAR_ASSERT(!has_pushback_);
    pushback_ = std::move(line);
    has_pushback_ = true;
  }

  bool next_or_pushed(std::string& line) {
    if (has_pushback_) {
      line = std::move(pushback_);
      has_pushback_ = false;
      return true;
    }
    return next(line);
  }

 private:
  std::istream* is_;
  std::string pushback_;
  bool has_pushback_ = false;
};

}  // namespace

Schedule read_schedule(std::istream& is, const Circuit& circuit,
                       bool build_matrices) {
  LineReader reader(is);
  std::string line, keyword;

  Schedule schedule;
  std::size_t num_stages = 0;
  QUASAR_CHECK(reader.next(line), "schedule parse error: empty input");
  {
    std::istringstream header(line);
    QUASAR_CHECK(static_cast<bool>(header >> keyword) &&
                     keyword == "schedule" &&
                     static_cast<bool>(header >> schedule.num_qubits >>
                                       schedule.num_local >>
                                       schedule.options.kmax >> num_stages),
                 "schedule parse error: bad header");
  }
  QUASAR_CHECK(schedule.num_qubits == circuit.num_qubits(),
               "schedule does not match the circuit's qubit count");
  schedule.options.num_local = schedule.num_local;
  schedule.options.build_matrices = build_matrices;

  std::vector<bool> seen(circuit.num_gates(), false);

  for (std::size_t s = 0; s < num_stages; ++s) {
    Stage stage;
    std::size_t gate_count = 0;
    QUASAR_CHECK(reader.next_or_pushed(line),
                 "schedule parse error: missing stage");
    {
      std::istringstream ls(line);
      QUASAR_CHECK(static_cast<bool>(ls >> keyword) && keyword == "stage" &&
                       static_cast<bool>(ls >> gate_count),
                   "schedule parse error: expected 'stage <count>'");
    }
    QUASAR_CHECK(reader.next(line), "schedule parse error: missing map");
    {
      std::istringstream ls(line);
      QUASAR_CHECK(static_cast<bool>(ls >> keyword) && keyword == "map",
                   "schedule parse error: expected 'map'");
      stage.qubit_to_location.resize(schedule.num_qubits);
      std::vector<bool> used(schedule.num_qubits, false);
      for (int& loc : stage.qubit_to_location) {
        QUASAR_CHECK(static_cast<bool>(ls >> loc) && loc >= 0 &&
                         loc < schedule.num_qubits && !used[loc],
                     "schedule parse error: bad mapping");
        used[loc] = true;
      }
    }
    QUASAR_CHECK(reader.next(line), "schedule parse error: missing gates");
    {
      std::istringstream ls(line);
      QUASAR_CHECK(static_cast<bool>(ls >> keyword) && keyword == "gates",
                   "schedule parse error: expected 'gates'");
      stage.gates.resize(gate_count);
      for (std::size_t& g : stage.gates) {
        QUASAR_CHECK(static_cast<bool>(ls >> g) && g < circuit.num_gates(),
                     "schedule parse error: bad gate index");
        QUASAR_CHECK(!seen[g], "schedule lists a gate twice");
        seen[g] = true;
      }
    }

    std::size_t items_gates = 0;
    while (reader.next(line)) {
      std::istringstream ls(line);
      QUASAR_CHECK(static_cast<bool>(ls >> keyword),
                   "schedule parse error: blank item");
      if (keyword == "stage") {
        reader.push_back(line);
        break;
      }
      if (keyword == "cluster") {
        Cluster cluster;
        std::string token;
        while (ls >> token && token != ";") {
          const int loc = parse_int_in_range(token, 0, schedule.num_local - 1,
                                             "cluster location", line);
          cluster.qubits.push_back(loc);
        }
        QUASAR_CHECK(token == ";",
                     "schedule parse error: cluster missing ';'");
        QUASAR_CHECK(
            std::is_sorted(cluster.qubits.begin(), cluster.qubits.end()) &&
                std::adjacent_find(cluster.qubits.begin(),
                                   cluster.qubits.end()) ==
                    cluster.qubits.end(),
            "schedule parse error: cluster locations must be sorted and "
            "distinct");
        std::size_t g = 0;
        while (ls >> g) {
          QUASAR_CHECK(g < circuit.num_gates(),
                       "schedule parse error: cluster gate out of range");
          cluster.ops.push_back(g);
        }
        QUASAR_CHECK(!cluster.ops.empty(),
                     "schedule parse error: empty cluster");
        items_gates += cluster.ops.size();
        if (build_matrices) {
          cluster.matrix = detail::fuse_cluster(circuit, cluster,
                                                stage.qubit_to_location);
          cluster.diagonal = cluster.matrix->is_diagonal();
        }
        StageItem item;
        item.kind = StageItem::Kind::kCluster;
        item.cluster = stage.clusters.size();
        stage.clusters.push_back(std::move(cluster));
        stage.items.push_back(item);
      } else if (keyword == "global") {
        StageItem item;
        item.kind = StageItem::Kind::kGlobalOp;
        QUASAR_CHECK(static_cast<bool>(ls >> item.op) &&
                         item.op < circuit.num_gates(),
                     "schedule parse error: bad global op index");
        ++items_gates;
        stage.items.push_back(item);
      } else {
        throw Error("schedule parse error: unexpected keyword '" + keyword +
                    "'");
      }
    }
    QUASAR_CHECK(items_gates == stage.gates.size(),
                 "schedule parse error: items do not cover the stage");
    schedule.stages.push_back(std::move(stage));
  }
  QUASAR_CHECK(schedule.num_gates() == circuit.num_gates(),
               "schedule does not cover every circuit gate");
  return schedule;
}

Schedule schedule_from_string(const std::string& text,
                              const Circuit& circuit, bool build_matrices) {
  std::istringstream is(text);
  return read_schedule(is, circuit, build_matrices);
}

}  // namespace quasar
