/// \file cluster_f32.hpp
/// \brief fp32 transport seam: the cluster primitives behind
/// DistributedSimulatorF (DESIGN.md §12).
///
/// Single-precision twin of runtime/communicator.hpp. The simulator owns
/// the qubit mapping and the deferred per-rank phases (accumulated in
/// double, Sec. 3.5); the communicator owns the amplitude slices and the
/// communication counters. Two backends:
///
///  - VirtualCommunicatorF: in-process AlignedVector<AmplitudeF> slices
///    with the OpenMP in-place exchange (the code that used to live
///    inline in DistributedSimulatorF).
///  - ProcCommunicatorF: proc::ProcClusterT instantiated with fp32
///    traits — the same forked-rank wire protocol as the fp64 backend,
///    amplitudes travelling as 8-byte complex<float>.
///
/// QUASAR_TRANSPORT selects the backend, exactly as for fp64.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "core/bits.hpp"
#include "fp32/statevector_f32.hpp"
#include "gates/matrix.hpp"
#include "runtime/comm.hpp"
#include "runtime/communicator.hpp"

namespace quasar {

/// Abstract fp32 transport: 2^g ranks of 2^l AmplitudeF each. All
/// methods are collective, driven by the single root caller.
class CommunicatorF {
 public:
  virtual ~CommunicatorF() = default;

  virtual int num_qubits() const = 0;
  virtual int num_local() const = 0;
  virtual int num_ranks() const = 0;
  Index local_size() const { return index_pow2(num_local()); }

  /// True for backends whose ranks are separate OS processes.
  virtual bool multiprocess() const = 0;

  virtual void init_basis(Index index) = 0;
  virtual void init_uniform() = 0;

  /// In-place chunked exchange of global_locations[i] with local
  /// bit-location local_positions[i] (contract of
  /// VirtualCluster::alltoall_swap, fp32 amplitudes).
  virtual void alltoall_swap(const std::vector<int>& global_locations,
                             const std::vector<int>& local_positions) = 0;
  /// One fused local permutation sweep; `rank_phase` (indexed by logical
  /// rank, double precision) folds the deferred phases into the same
  /// pass, nullptr means no phases. The identity-and-no-phase case is a
  /// no-op on every backend.
  virtual void local_permute(const std::vector<int>& perm,
                             const std::vector<Amplitude>* rank_phase) = 0;
  /// Zero-volume renumbering: new logical rank r takes the slice that
  /// was logical source_of[r]. The caller permutes its deferred phases
  /// with the same table.
  virtual void permute_ranks(const std::vector<Index>& source_of) = 0;

  /// Applies the gate to every rank's slice (prepared once per sweep).
  virtual void apply_gate_all(const GateMatrix& matrix,
                              const std::vector<int>& local_locations) = 0;
  /// Applies a gate to one rank's slice (the conditional-gate path).
  virtual void apply_gate_rank(int rank, const GateMatrix& matrix,
                               const std::vector<int>& local_locations) = 0;

  /// Read access to logical rank `rank`'s slice (proc: root-side cached
  /// fetch, invalidated by mutating calls). Not stable across mutations.
  virtual const AmplitudeF* slice(int rank) = 0;
  /// Overwrites rank `rank`'s slice (checkpoint resume).
  virtual void write_slice(int rank, const AmplitudeF* data) = 0;

  /// Total squared norm, accumulated in double at the root over slice()
  /// with the same loop on every backend (bit-identical across
  /// transports).
  Real norm_squared();

  /// Communication counters (proc: per-rank counters reduced at root).
  virtual CommStats stats() = 0;

  /// Multi-process fault injection hook; false on in-process backends.
  virtual bool kill_rank_for_fault(std::size_t stage) {
    (void)stage;
    return false;
  }
};

/// Builds the requested fp32 backend. kProc caps the rank count at 16
/// forked processes and keeps slices in worker memory; `num_threads` and
/// `bounce_buffer_bytes` configure the virtual backend's sweeps and the
/// per-worker chunk bound respectively.
std::unique_ptr<CommunicatorF> make_communicator_f32(
    int num_qubits, int num_local, int num_threads,
    std::size_t bounce_buffer_bytes, TransportKind transport);

}  // namespace quasar
