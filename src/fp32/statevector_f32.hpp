/// \file statevector_f32.hpp
/// \brief Single-precision state vector (paper Sec. 5).
///
/// "With the same amount of compute resources, the simulation of 46
/// qubits is feasible when using single-precision floating point numbers
/// to represent the complex amplitudes." One amplitude costs 8 bytes
/// instead of 16: the memory footprint halves and bandwidth-bound
/// kernels gain up to 2x. Depth-25 supremacy circuits lose only a few
/// decimal digits of amplitude accuracy (see tests/fp32_test.cpp).
#pragma once

#include <complex>

#include "core/aligned.hpp"
#include "core/error.hpp"
#include "core/types.hpp"

namespace quasar {

/// Single-precision complex amplitude (8 bytes).
using AmplitudeF = std::complex<float>;

class StateVector;  // double-precision sibling (simulator/statevector.hpp)

/// 2^n single-precision amplitudes, cache-line aligned, parallel first
/// touch. API mirrors StateVector.
class StateVectorF {
 public:
  explicit StateVectorF(int num_qubits);

  int num_qubits() const noexcept { return num_qubits_; }
  Index size() const noexcept { return index_pow2(num_qubits_); }

  AmplitudeF* data() noexcept { return data_.data(); }
  const AmplitudeF* data() const noexcept { return data_.data(); }
  AmplitudeF& operator[](Index i) { return data_[i]; }
  const AmplitudeF& operator[](Index i) const { return data_[i]; }

  void set_basis_state(Index index);
  void set_uniform_superposition();

  /// Squared 2-norm, accumulated in double to avoid float cancellation.
  Real norm_squared() const;

  /// Shannon entropy of |amplitude|^2 (double accumulation).
  Real entropy() const;

  /// Max |difference| against a double-precision state (test helper).
  Real max_abs_diff(const StateVector& other) const;

 private:
  int num_qubits_;
  AlignedVector<AmplitudeF> data_;
};

}  // namespace quasar
