#include "fp32/statevector_f32.hpp"

#include <cmath>

#include "simulator/statevector.hpp"

namespace quasar {

StateVectorF::StateVectorF(int num_qubits) : num_qubits_(num_qubits) {
  QUASAR_CHECK(num_qubits >= 1 && num_qubits <= 41,
               "StateVectorF supports 1..41 qubits (memory bound)");
  const Index n = size();
  data_.resize(n);
#pragma omp parallel for schedule(static)
  for (std::int64_t i = 0; i < static_cast<std::int64_t>(n); ++i) {
    data_[i] = AmplitudeF{0.0f, 0.0f};
  }
  data_[0] = AmplitudeF{1.0f, 0.0f};
}

void StateVectorF::set_basis_state(Index index) {
  QUASAR_CHECK(index < size(), "basis state index out of range");
  const Index n = size();
#pragma omp parallel for schedule(static)
  for (std::int64_t i = 0; i < static_cast<std::int64_t>(n); ++i) {
    data_[i] = AmplitudeF{0.0f, 0.0f};
  }
  data_[index] = AmplitudeF{1.0f, 0.0f};
}

void StateVectorF::set_uniform_superposition() {
  const Index n = size();
  const float value = static_cast<float>(std::pow(2.0, -0.5 * num_qubits_));
#pragma omp parallel for schedule(static)
  for (std::int64_t i = 0; i < static_cast<std::int64_t>(n); ++i) {
    data_[i] = AmplitudeF{value, 0.0f};
  }
}

Real StateVectorF::norm_squared() const {
  const Index n = size();
  Real total = 0.0;
#pragma omp parallel for schedule(static) reduction(+ : total)
  for (std::int64_t i = 0; i < static_cast<std::int64_t>(n); ++i) {
    total += static_cast<Real>(data_[i].real()) * data_[i].real() +
             static_cast<Real>(data_[i].imag()) * data_[i].imag();
  }
  return total;
}

Real StateVectorF::entropy() const {
  const Index n = size();
  Real total = 0.0;
#pragma omp parallel for schedule(static) reduction(+ : total)
  for (std::int64_t i = 0; i < static_cast<std::int64_t>(n); ++i) {
    const Real p = static_cast<Real>(data_[i].real()) * data_[i].real() +
                   static_cast<Real>(data_[i].imag()) * data_[i].imag();
    if (p > 0.0) total -= p * std::log(p);
  }
  return total;
}

Real StateVectorF::max_abs_diff(const StateVector& other) const {
  QUASAR_CHECK(other.num_qubits() == num_qubits_,
               "max_abs_diff: qubit count mismatch");
  const Index n = size();
  Real worst = 0.0;
#pragma omp parallel for schedule(static) reduction(max : worst)
  for (std::int64_t i = 0; i < static_cast<std::int64_t>(n); ++i) {
    const Amplitude mine{static_cast<Real>(data_[i].real()),
                         static_cast<Real>(data_[i].imag())};
    worst = std::max(worst, std::abs(mine - other[i]));
  }
  return worst;
}

}  // namespace quasar
