/// \file distributed_f32.hpp
/// \brief Distributed single-precision simulator (paper Sec. 5).
///
/// The configuration the paper's hypothetical 46-qubit run would use:
/// the multi-node global-to-local swap scheme of Sec. 3.4/3.5 over
/// single-precision rank slices — half the memory, half the network
/// bytes per swap. Mirrors DistributedSimulator; schedules are shared
/// (they are precision-agnostic). All amplitude motion goes through the
/// CommunicatorF seam, so QUASAR_TRANSPORT=proc runs this engine over
/// real forked rank processes too.
#pragma once

#include <cstddef>
#include <vector>

#include "circuit/circuit.hpp"
#include "ckpt/reader.hpp"
#include "ckpt/writer.hpp"
#include "core/rng.hpp"
#include "fp32/cluster_f32.hpp"
#include "fp32/kernels_f32.hpp"
#include "fp32/statevector_f32.hpp"
#include "runtime/comm.hpp"
#include "runtime/distributed.hpp"
#include "sched/schedule.hpp"

namespace quasar {

/// Distributed float statevector simulator over 2^(n-l) ranks.
class DistributedSimulatorF {
 public:
  /// `bounce_buffer_bytes` bounds the scratch used by the in-place
  /// all-to-all and the fused permutation sweeps (split across threads;
  /// at least one amplitude per thread is always granted).
  DistributedSimulatorF(int num_qubits, int num_local, int num_threads = 0,
                        std::size_t bounce_buffer_bytes = std::size_t{64}
                                                          << 20,
                        TransportKind transport = transport_from_env());

  int num_qubits() const noexcept { return num_qubits_; }
  int num_local() const noexcept { return num_local_; }
  int num_ranks() const {
    return checked_int(index_pow2(num_qubits_ - num_local_),
                       "DistributedSimulatorF rank count");
  }
  Index local_size() const noexcept { return index_pow2(num_local_); }
  /// True when the ranks are separate OS processes.
  bool multiprocess() const { return comm_->multiprocess(); }

  void init_basis(Index index);
  void init_uniform();

  /// Executes a schedule built for the same (num_qubits, num_local).
  void run(const Circuit& circuit, const Schedule& schedule);

  /// Checkpointed execution: mirror of DistributedSimulator's overload
  /// (same CheckpointedRun policy struct, including the preemption stop
  /// flag; snapshots carry engine "fp32" and raw AmplitudeF shards).
  /// Returns the cursor: stages.size() on completion, the preemption
  /// boundary when ckpt.stop read true.
  std::size_t run(const Circuit& circuit, const Schedule& schedule,
                  const CheckpointedRun& ckpt);

  /// Snapshots the current state into `writer` (see
  /// DistributedSimulator::checkpoint; engine tag "fp32").
  void checkpoint(ckpt::CheckpointWriter& writer, std::size_t cursor,
                  const Rng* rng, std::uint32_t schedule_crc) const;

  /// Adopts a verified fp32 snapshot; same contract as
  /// DistributedSimulator::resume (checks run unconditionally against
  /// the canonical circuit+options digest, state is only overwritten
  /// after every check passes). Returns the cursor.
  std::size_t resume(const ckpt::LoadedSnapshot& snapshot,
                     const Circuit& circuit, const Schedule& schedule,
                     Rng* rng = nullptr);

  /// Reassembles the full float state in program order.
  StateVectorF gather() const;

  /// Raw slice of logical rank `rank` (transport-agnostic; proc fetches
  /// into a root-side cache). Deferred phases are NOT folded in.
  const AmplitudeF* rank_slice(int rank) const { return comm().slice(rank); }

  Real norm_squared() const { return comm().norm_squared(); }
  Real entropy() const;

  CommStats stats() const { return comm().stats(); }

  /// Current program-qubit -> bit-location mapping.
  const std::vector<int>& mapping() const { return mapping_; }

  /// Deferred per-rank phases (accumulated in double, Sec. 3.5).
  const std::vector<Amplitude>& pending_phases() const {
    return pending_phase_;
  }

 private:
  void transition(const std::vector<int>& from, const std::vector<int>& to);
  /// QUASAR_VALIDATE guard body (fp32 epsilon for the state checks; the
  /// deferred phases accumulate in double and use the fp64 tolerance).
  void validate_invariants(const char* site, Real norm_before,
                           std::size_t ops) const;
  /// One stage's gate items (clusters + global ops), post-transition.
  void execute_stage(const Circuit& circuit, const Stage& stage);
  void apply_global_op(const GateOp& op, const Stage& stage);

  /// The seam, usable from const readers (slice fetches may mutate the
  /// proc backend's root-side cache, never the simulated state).
  CommunicatorF& comm() const { return *comm_; }

  int num_qubits_;
  int num_local_;
  std::unique_ptr<CommunicatorF> comm_;
  std::vector<Amplitude> pending_phase_;  // accumulated in double
  std::vector<int> mapping_;
};

}  // namespace quasar
