/// \file distributed_f32.hpp
/// \brief Distributed single-precision simulator (paper Sec. 5).
///
/// The configuration the paper's hypothetical 46-qubit run would use:
/// the multi-node global-to-local swap scheme of Sec. 3.4/3.5 over
/// single-precision rank slices — half the memory, half the network
/// bytes per swap. Mirrors DistributedSimulator; schedules are shared
/// (they are precision-agnostic).
#pragma once

#include <cstddef>
#include <vector>

#include "circuit/circuit.hpp"
#include "ckpt/reader.hpp"
#include "ckpt/writer.hpp"
#include "core/rng.hpp"
#include "fp32/kernels_f32.hpp"
#include "fp32/statevector_f32.hpp"
#include "runtime/comm.hpp"
#include "runtime/distributed.hpp"
#include "sched/schedule.hpp"

namespace quasar {

/// Distributed float statevector simulator over 2^(n-l) virtual ranks.
class DistributedSimulatorF {
 public:
  /// `bounce_buffer_bytes` bounds the scratch used by the in-place
  /// all-to-all and the fused permutation sweeps (split across threads;
  /// at least one amplitude per thread is always granted).
  DistributedSimulatorF(int num_qubits, int num_local, int num_threads = 0,
                        std::size_t bounce_buffer_bytes = std::size_t{64}
                                                          << 20);

  int num_qubits() const noexcept { return num_qubits_; }
  int num_local() const noexcept { return num_local_; }
  int num_ranks() const noexcept {
    return static_cast<int>(index_pow2(num_qubits_ - num_local_));
  }
  Index local_size() const noexcept { return index_pow2(num_local_); }

  void init_basis(Index index);
  void init_uniform();

  /// Executes a schedule built for the same (num_qubits, num_local).
  void run(const Circuit& circuit, const Schedule& schedule);

  /// Checkpointed execution: mirror of DistributedSimulator's overload
  /// (same CheckpointedRun policy struct; snapshots carry engine "fp32"
  /// and raw AmplitudeF shards).
  void run(const Circuit& circuit, const Schedule& schedule,
           const CheckpointedRun& ckpt);

  /// Snapshots the current state into `writer` (see
  /// DistributedSimulator::checkpoint; engine tag "fp32").
  void checkpoint(ckpt::CheckpointWriter& writer, std::size_t cursor,
                  const Rng* rng, std::uint32_t schedule_crc) const;

  /// Adopts a verified fp32 snapshot; same contract as
  /// DistributedSimulator::resume (checks run unconditionally, state is
  /// only overwritten after every check passes). Returns the cursor.
  std::size_t resume(const ckpt::LoadedSnapshot& snapshot,
                     const Schedule& schedule, Rng* rng = nullptr);

  /// Reassembles the full float state in program order.
  StateVectorF gather() const;

  Real norm_squared() const;
  Real entropy() const;

  const CommStats& stats() const noexcept { return stats_; }

  /// Current program-qubit -> bit-location mapping.
  const std::vector<int>& mapping() const { return mapping_; }

  /// Deferred per-rank phases (accumulated in double, Sec. 3.5).
  const std::vector<Amplitude>& pending_phases() const {
    return pending_phase_;
  }

 private:
  void transition(const std::vector<int>& from, const std::vector<int>& to);
  /// QUASAR_VALIDATE guard body (fp32 epsilon for the state checks; the
  /// deferred phases accumulate in double and use the fp64 tolerance).
  void validate_invariants(const char* site, Real norm_before,
                           std::size_t ops) const;
  /// In-place chunked exchange of global_locations[i] with local
  /// bit-location local_positions[i] (mirror of VirtualCluster).
  void alltoall_swap(const std::vector<int>& global_locations,
                     const std::vector<int>& local_positions);
  /// One fused local permutation sweep; folds the deferred per-rank
  /// phases into the same pass when `fold_phases` is set.
  void local_permute(const std::vector<int>& perm, bool fold_phases);
  /// One stage's gate items (clusters + global ops), post-transition.
  void execute_stage(const Circuit& circuit, const Stage& stage);
  void apply_global_op(const GateOp& op, const Stage& stage);

  int num_qubits_;
  int num_local_;
  int num_threads_;
  std::size_t bounce_buffer_bytes_;
  std::vector<AlignedVector<AmplitudeF>> buffers_;
  std::vector<Amplitude> pending_phase_;  // accumulated in double
  std::vector<int> mapping_;
  CommStats stats_;
};

}  // namespace quasar
