/// \file kernels_f32.hpp
/// \brief Single-precision k-qubit gate kernels (paper Sec. 5).
///
/// Same structure as the double-precision kernels: sorted-qubit matrix
/// permutation, sign-folded column-major FMA expansion, gather ->
/// register GEMV -> scatter, diagonal fast path. Gate matrices stay in
/// double (they are tiny); only the state-vector arithmetic is float.
/// With AVX-512 a vector holds 8 complex<float> lanes — twice the lanes
/// of the double kernel at the same bandwidth, which is where the
/// paper's "46 qubits with the same resources" headroom comes from.
#pragma once

#include <memory>
#include <vector>

#include "core/aligned.hpp"
#include "core/bits.hpp"
#include "fp32/statevector_f32.hpp"
#include "gates/matrix.hpp"
#include "kernels/block_apply.hpp"

namespace quasar {

/// A gate prepared for single-precision application.
struct PreparedGateF {
  int k = 0;
  Index dim = 0;
  /// Bit-locations, strictly ascending.
  std::vector<int> qubits;
  /// Permuted matrix in double (reference path / diagnostics).
  GateMatrix matrix = GateMatrix::identity(0);
  std::vector<Index> offsets;
  Index contig_run = 1;
  /// Column-major float expansion: (Re, Im) and (-Im, Re) interleaved.
  AlignedVector<float> col_a;
  AlignedVector<float> col_b;
  bool diagonal = false;
  AlignedVector<AmplitudeF> diag;
  /// Pre-widened embedding with identity spectators on the lowest free
  /// bit-locations, built once at preparation time when the gate is
  /// narrower than one float SIMD vector (the float analogue of the
  /// double kernels' k = 1 widening). Null when never needed.
  std::shared_ptr<const PreparedGateF> widened;

  IndexExpander expander() const { return IndexExpander(qubits); }
};

/// Prepares a (double-precision) gate matrix for float application.
PreparedGateF prepare_gate_f32(const GateMatrix& matrix,
                               const std::vector<int>& bit_locations);

/// Applies a prepared gate in place to a float state of `num_qubits`
/// qubits. Dispatches to the diagonal path, the AVX-512/AVX2 GEMV, or
/// the scalar fallback. `num_threads` 0 = OpenMP default.
void apply_gate_f32(AmplitudeF* state, int num_qubits,
                    const PreparedGateF& gate, int num_threads = 0);

/// Scalar reference path (always available; the differential oracle for
/// the SIMD float kernels).
void apply_gate_f32_scalar(AmplitudeF* state, int num_qubits,
                           const PreparedGateF& gate, int num_threads = 0);

/// Diagonal (phase-only) application; requires gate.diagonal.
void apply_diagonal_f32(AmplitudeF* state, int num_qubits,
                        const PreparedGateF& gate, int num_threads = 0);

/// True when `gate` can join a blocked run at block exponent `b` (float
/// analogue of block_run_eligible): diagonal gates always; dense gates
/// when every bit-location of the kernel that will actually run (the
/// pre-widened embedding, if any) is below b.
bool block_run_eligible_f32(const PreparedGateF& gate, int block_exponent);

/// Applies `count` prepared float gates — every one eligible at
/// `block_exponent` — in one DRAM sweep over 2^block_exponent-amplitude
/// blocks (float analogue of apply_gate_run).
void apply_gate_run_f32(AmplitudeF* state, int num_qubits,
                        const PreparedGateF* const* gates, std::size_t count,
                        int block_exponent, const ApplyOptions& options = {});

/// Applies a float gate list with blocked runs where profitable and
/// plain gate-by-gate sweeps elsewhere; shares the run planner and the
/// blocked-run configuration with the double engine. `stats`, when
/// non-null, receives the execution counters.
void apply_gates_blocked_f32(AmplitudeF* state, int num_qubits,
                             const PreparedGateF* const* gates,
                             std::size_t count,
                             const ApplyOptions& options = {},
                             BlockRunStats* stats = nullptr);

/// Swaps two bit-locations of the state index (float state).
void apply_bit_swap_f32(AmplitudeF* state, int num_qubits, int p, int q,
                        int num_threads = 0);

/// Applies an arbitrary bit-location permutation plus an optional scalar
/// phase in ONE in-place sweep (float state; shares the fused kernel core
/// with the double engine). Same index convention as apply_bit_swap_f32
/// chains: location j afterwards holds what location perm[j] held.
void apply_fused_bit_permutation_f32(
    AmplitudeF* state, int num_qubits, const std::vector<int>& perm,
    AmplitudeF phase = AmplitudeF{1.0f, 0.0f}, int num_threads = 0,
    std::size_t scratch_bytes = std::size_t{1} << 20);

/// Multiplies every amplitude by a scalar phase (float state).
void apply_global_phase_f32(AmplitudeF* state, int num_qubits,
                            AmplitudeF phase, int num_threads = 0);

}  // namespace quasar
