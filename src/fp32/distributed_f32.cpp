#include "fp32/distributed_f32.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <map>
#include <numeric>
#include <optional>
#include <utility>

#include "check/invariant.hpp"
#include "ckpt/crc32c.hpp"
#include "core/bits.hpp"
#include "core/error.hpp"
#include "obs/histogram.hpp"
#include "obs/names.hpp"
#include "obs/progress.hpp"
#include "obs/trace.hpp"
#include "runtime/conditional.hpp"
#include "sched/digest.hpp"
#include "sched/schedule_io.hpp"

namespace quasar {
namespace {

/// Gate-sweep count after executing stages [0, cursor) — run()'s own
/// per-stage accounting, reused for resume-time tolerances.
std::size_t ops_through_stage(const Schedule& schedule, std::size_t cursor) {
  std::size_t ops = 3;
  for (std::size_t si = 0; si < cursor && si < schedule.stages.size(); ++si) {
    ops += schedule.stages[si].items.size() + 3;
  }
  return ops;
}

}  // namespace

DistributedSimulatorF::DistributedSimulatorF(int num_qubits, int num_local,
                                             int num_threads,
                                             std::size_t bounce_buffer_bytes,
                                             TransportKind transport)
    : num_qubits_(num_qubits), num_local_(num_local) {
  QUASAR_CHECK(num_local >= 1 && num_local <= num_qubits,
               "DistributedSimulatorF: num_local must be in [1, n]");
  QUASAR_CHECK(num_qubits - num_local <= 12,
               "DistributedSimulatorF: at most 2^12 simulated ranks");
  QUASAR_CHECK(num_qubits - num_local <= num_local,
               "DistributedSimulatorF: needs g <= l");
  comm_ = make_communicator_f32(num_qubits, num_local, num_threads,
                                bounce_buffer_bytes, transport);
  pending_phase_.assign(num_ranks(), Amplitude{1.0, 0.0});
  mapping_.resize(num_qubits);
  std::iota(mapping_.begin(), mapping_.end(), 0);
}

void DistributedSimulatorF::init_basis(Index index) {
  QUASAR_CHECK(index < index_pow2(num_qubits_), "basis index out of range");
  comm_->init_basis(index);
  std::fill(pending_phase_.begin(), pending_phase_.end(),
            Amplitude{1.0, 0.0});
  std::iota(mapping_.begin(), mapping_.end(), 0);
}

void DistributedSimulatorF::init_uniform() {
  comm_->init_uniform();
  std::fill(pending_phase_.begin(), pending_phase_.end(),
            Amplitude{1.0, 0.0});
  std::iota(mapping_.begin(), mapping_.end(), 0);
}

void DistributedSimulatorF::run(const Circuit& circuit,
                                const Schedule& schedule) {
  QUASAR_CHECK(schedule.num_qubits == num_qubits_ &&
                   schedule.num_local == num_local_,
               "run: schedule was built for a different configuration");
  QUASAR_CHECK(schedule.options.build_matrices,
               "run: schedule lacks fused matrices");
  QUASAR_OBS_SPAN("run", "distributed_run_f32", "stages",
                  static_cast<std::int64_t>(schedule.stages.size()));
  obs::ProgressRun progress(static_cast<int>(schedule.stages.size()));
  const bool validate = check::enabled();
  Real norm_before = 0.0;
  std::size_t ops_done = 0;
  if (validate) norm_before = norm_squared();
  for (std::size_t si = 0; si < schedule.stages.size(); ++si) {
    const Stage& stage = schedule.stages[si];
    QUASAR_OBS_SPAN("stage", "stage", "stage",
                    static_cast<std::int64_t>(si));
    transition(mapping_, stage.qubit_to_location);
    mapping_ = stage.qubit_to_location;
    execute_stage(circuit, stage);
    if (validate) {
      ops_done += stage.items.size() + 3;  // items + transition sweeps
      const std::string site =
          "DistributedSimulatorF::run stage " + std::to_string(si);
      validate_invariants(site.c_str(), norm_before, ops_done);
    }
    progress.stage_completed(static_cast<int>(si) + 1);
  }
}

void DistributedSimulatorF::execute_stage(const Circuit& circuit,
                                          const Stage& stage) {
  for (const StageItem& item : stage.items) {
    if (item.kind == StageItem::Kind::kCluster) {
      const Cluster& cluster = stage.clusters[item.cluster];
      QUASAR_OBS_SPAN("gate_run", "cluster", "width",
                      static_cast<std::int64_t>(cluster.width()));
      comm_->apply_gate_all(*cluster.matrix, cluster.qubits);
    } else {
      QUASAR_OBS_SPAN("gate_run", "global_op");
      apply_global_op(circuit.op(item.op), stage);
    }
  }
}

std::size_t DistributedSimulatorF::run(const Circuit& circuit,
                                       const Schedule& schedule,
                                       const CheckpointedRun& ckpt_run) {
  QUASAR_CHECK(ckpt_run.writer != nullptr,
               "run: CheckpointedRun requires a writer");
  QUASAR_CHECK(ckpt_run.snapshot_every >= 1,
               "run: snapshot_every must be >= 1");
  QUASAR_CHECK(schedule.num_qubits == num_qubits_ &&
                   schedule.num_local == num_local_,
               "run: schedule was built for a different configuration");
  QUASAR_CHECK(schedule.options.build_matrices,
               "run: schedule lacks fused matrices");
  QUASAR_CHECK(ckpt_run.first_stage <= schedule.stages.size(),
               "run: first_stage is beyond the end of the schedule");
  ckpt::CheckpointWriter& writer = *ckpt_run.writer;
  const std::uint32_t schedule_crc =
      sched::schedule_digest(circuit, schedule.options);
  const std::size_t num_stages = schedule.stages.size();
  QUASAR_OBS_SPAN("run", "distributed_run_f32", "stages",
                  static_cast<std::int64_t>(num_stages));
  obs::ProgressRun progress(static_cast<int>(num_stages),
                            static_cast<int>(ckpt_run.first_stage));
  const bool validate = check::enabled();
  Real norm_before = 0.0;
  std::size_t ops_done = 0;
  if (validate) norm_before = norm_squared();
  const std::optional<int> kill_at = writer.fault().kill_stage();
  if (kill_at && comm_->multiprocess()) {
    // Injected kills must land in a real rank process under the proc
    // transport (see DistributedSimulator::run).
    writer.fault().set_kill_delegate([this](std::size_t stage) {
      comm_->kill_rank_for_fault(stage);
    });
  }
  // Newest boundary already on disk (see DistributedSimulator::run).
  std::size_t last_snapshot = ckpt_run.first_stage > 0
                                  ? ckpt_run.first_stage
                                  : static_cast<std::size_t>(-1);
  for (std::size_t si = ckpt_run.first_stage; si < num_stages; ++si) {
    if (ckpt_run.stop != nullptr &&
        ckpt_run.stop->load(std::memory_order_acquire)) {
      if (last_snapshot != si) {
        checkpoint(writer, si, ckpt_run.rng, schedule_crc);
      }
      writer.wait_idle();
      return si;
    }
    if (kill_at && static_cast<std::size_t>(*kill_at) == si) {
      // Drain first so the newest on-disk generation at "death" is a
      // committed boundary (see DistributedSimulator::run).
      writer.wait_idle();
      writer.fault().kill(si);
    }
    const Stage& stage = schedule.stages[si];
    QUASAR_OBS_SPAN("stage", "stage", "stage",
                    static_cast<std::int64_t>(si));
    transition(mapping_, stage.qubit_to_location);
    mapping_ = stage.qubit_to_location;
    execute_stage(circuit, stage);
    if (validate) {
      ops_done += stage.items.size() + 3;  // items + transition sweeps
      const std::string site =
          "DistributedSimulatorF::run stage " + std::to_string(si);
      validate_invariants(site.c_str(), norm_before, ops_done);
    }
    if ((si + 1) % static_cast<std::size_t>(ckpt_run.snapshot_every) == 0 ||
        (si + 1 == num_stages && ckpt_run.final_snapshot)) {
      checkpoint(writer, si + 1, ckpt_run.rng, schedule_crc);
      last_snapshot = si + 1;
    }
    progress.stage_completed(static_cast<int>(si) + 1);
  }
  return num_stages;
}

void DistributedSimulatorF::checkpoint(ckpt::CheckpointWriter& writer,
                                       std::size_t cursor, const Rng* rng,
                                       std::uint32_t schedule_crc) const {
  QUASAR_OBS_SPAN("checkpoint", "snapshot_stage", "cursor",
                  static_cast<std::int64_t>(cursor));
  writer.wait_idle();
  ckpt::Snapshot& snap = writer.staging();
  ckpt::Manifest& m = snap.manifest;
  m.engine = "fp32";
  m.num_qubits = num_qubits_;
  m.num_local = num_local_;
  m.cursor = cursor;
  m.schedule_crc = schedule_crc;
  m.norm_squared = norm_squared();
  m.mapping = mapping_;
  m.rng_state = rng != nullptr ? rng->serialize() : std::string();
  m.pending_phase.assign(pending_phase_.begin(), pending_phase_.end());
  m.shards.clear();
  const int ranks = num_ranks();
  const std::size_t bytes =
      static_cast<std::size_t>(local_size()) * sizeof(AmplitudeF);
  snap.shard_bytes.resize(static_cast<std::size_t>(ranks));
  for (int r = 0; r < ranks; ++r) {
    snap.shard_bytes[r].resize(bytes);
    std::memcpy(snap.shard_bytes[r].data(), comm().slice(r), bytes);
  }
  writer.commit();
}

std::size_t DistributedSimulatorF::resume(
    const ckpt::LoadedSnapshot& snapshot, const Circuit& circuit,
    const Schedule& schedule, Rng* rng) {
  QUASAR_OBS_SPAN("checkpoint", "resume");
  constexpr const char* kSite = "DistributedSimulatorF::resume";
  const ckpt::Manifest& m = snapshot.manifest;
  const auto fail = [&](const std::string& what) {
    throw check::ValidationError(std::string(kSite) + ": " + what);
  };
  if (m.engine != "fp32") {
    fail("snapshot engine is '" + m.engine + "', this simulator is fp32");
  }
  if (m.num_qubits != num_qubits_ || m.num_local != num_local_) {
    fail("snapshot geometry " + std::to_string(m.num_qubits) + "q/" +
         std::to_string(m.num_local) + "l does not match simulator " +
         std::to_string(num_qubits_) + "q/" + std::to_string(num_local_) +
         "l");
  }
  if (m.cursor > schedule.stages.size()) {
    fail("cursor " + std::to_string(m.cursor) + " is beyond the " +
         std::to_string(schedule.stages.size()) + "-stage schedule");
  }
  if (m.schedule_crc != 0 &&
      m.schedule_crc != sched::schedule_digest(circuit, schedule.options)) {
    fail("snapshot was taken against a different circuit or scheduling "
         "options (schedule digest mismatch)");
  }
  check::require_bijection(m.mapping, num_qubits_, kSite);
  if (m.cursor > 0 &&
      m.mapping != schedule.stages[m.cursor - 1].qubit_to_location) {
    fail("snapshot mapping does not match the stage " +
         std::to_string(m.cursor - 1) + " boundary mapping");
  }
  const std::size_t ops = ops_through_stage(schedule, m.cursor);
  check::require_unit_phases(m.pending_phase, check::phase_tolerance(ops),
                             kSite);
  const int ranks = num_ranks();
  if (static_cast<int>(m.pending_phase.size()) != ranks) {
    fail("snapshot carries " + std::to_string(m.pending_phase.size()) +
         " deferred phases for " + std::to_string(ranks) + " ranks");
  }
  if (static_cast<int>(snapshot.shard_bytes.size()) != ranks) {
    fail("snapshot carries " + std::to_string(snapshot.shard_bytes.size()) +
         " shards for " + std::to_string(ranks) + " ranks");
  }
  const Index count = local_size();
  const std::size_t bytes =
      static_cast<std::size_t>(count) * sizeof(AmplitudeF);
  for (int r = 0; r < ranks; ++r) {
    if (snapshot.shard_bytes[r].size() != bytes) {
      fail("shard " + std::to_string(r) + " holds " +
           std::to_string(snapshot.shard_bytes[r].size()) +
           " bytes, expected " + std::to_string(bytes));
    }
  }
  Real norm = 0.0;
  for (int r = 0; r < ranks; ++r) {
    const auto* amps = reinterpret_cast<const std::complex<float>*>(
        snapshot.shard_bytes[r].data());
    check::require_finite(amps, count, kSite);
    norm += check::norm_squared(amps, count);
  }
  check::require_norm_preserved(
      norm, m.norm_squared,
      check::norm_tolerance(num_qubits_, ops, check::kEps32), kSite);
  for (int r = 0; r < ranks; ++r) {
    comm_->write_slice(r, reinterpret_cast<const AmplitudeF*>(
                              snapshot.shard_bytes[r].data()));
  }
  mapping_ = m.mapping;
  pending_phase_ = m.pending_phase;
  if (rng != nullptr && !m.rng_state.empty()) rng->restore(m.rng_state);
  obs::count(obs::names::kCkptResumes);
  return m.cursor;
}

void DistributedSimulatorF::validate_invariants(const char* site,
                                                Real norm_before,
                                                std::size_t ops) const {
  check::require_bijection(mapping_, num_qubits_, site);
  check::require_unit_phases(pending_phase_, check::phase_tolerance(ops),
                             site);
  for (int r = 0; r < num_ranks(); ++r) {
    check::require_finite(comm().slice(r), local_size(), site);
  }
  check::require_norm_preserved(
      norm_squared(), norm_before,
      check::norm_tolerance(num_qubits_, ops, check::kEps32), site);
}

void DistributedSimulatorF::apply_global_op(const GateOp& op,
                                            const Stage& stage) {
  const int l = num_local_;
  std::vector<bool> fixed(op.arity(), false);
  std::vector<int> global_bits, local_locations;
  for (int j = 0; j < op.arity(); ++j) {
    const int loc = stage.location(op.qubits[j]);
    if (loc >= l) {
      fixed[j] = true;
      global_bits.push_back(loc - l);
    } else {
      local_locations.push_back(loc);
    }
  }
  QUASAR_ASSERT(!global_bits.empty());

  if (!op.diagonal && local_locations.empty()) {
    // Rank renumbering for a global phased permutation (Sec. 3.5).
    const auto perm = op.matrix->phased_permutation();
    QUASAR_CHECK(perm.has_value(),
                 "apply_global_op: dense all-global gate in the executor");
    const int ranks = num_ranks();
    std::vector<Index> source_of(static_cast<std::size_t>(ranks));
    std::vector<Amplitude> next_phase(static_cast<std::size_t>(ranks));
    for (int r = 0; r < ranks; ++r) {
      Index col = 0;
      for (std::size_t j = 0; j < global_bits.size(); ++j) {
        col |= static_cast<Index>(
                   get_bit(static_cast<Index>(r), global_bits[j]))
               << j;
      }
      const Index row = perm->target[col];
      Index dest = static_cast<Index>(r);
      for (std::size_t j = 0; j < global_bits.size(); ++j) {
        dest = set_bit(dest, global_bits[j],
                       get_bit(row, static_cast<int>(j)));
      }
      source_of[dest] = static_cast<Index>(r);
      next_phase[dest] = pending_phase_[r] * perm->phase[col];
    }
    comm_->permute_ranks(source_of);
    pending_phase_ = std::move(next_phase);
    return;
  }

  std::map<Index, ConditionalGate> cache;
  for (int r = 0; r < num_ranks(); ++r) {
    Index pattern = 0;
    for (std::size_t i = 0; i < global_bits.size(); ++i) {
      pattern |= static_cast<Index>(
                     get_bit(static_cast<Index>(r), global_bits[i]))
                 << i;
    }
    auto it = cache.find(pattern);
    if (it == cache.end()) {
      it = cache.emplace(pattern,
                         condition_gate(*op.matrix, fixed, pattern)).first;
    }
    const ConditionalGate& cond = it->second;
    if (cond.is_identity) continue;
    if (cond.matrix.num_qubits() == 0) {
      pending_phase_[r] *= cond.phase;
      continue;
    }
    comm_->apply_gate_rank(r, cond.matrix, local_locations);
  }
}

void DistributedSimulatorF::transition(const std::vector<int>& from,
                                       const std::vector<int>& to) {
  if (from == to) return;
  const int n = num_qubits_;
  const int l = num_local_;
  std::vector<int> cur = from;
  std::vector<Qubit> at(n);
  for (Qubit q = 0; q < n; ++q) at[cur[q]] = q;

  std::vector<Qubit> incoming, outgoing;  // paired index-for-index
  for (Qubit q = 0; q < n; ++q) {
    const bool was_global = cur[q] >= l;
    const bool is_global = to[q] >= l;
    if (was_global && !is_global) incoming.push_back(q);
    if (!was_global && is_global) outgoing.push_back(q);
  }
  const int q_move = static_cast<int>(incoming.size());

  // 1. One fused local sweep: stay-local qubits to their final spots,
  // outgoing qubit i parked where its paired incoming qubit lands;
  // deferred phases fold into the same pass when an all-to-all follows
  // (see the runtime transition for the full derivation).
  std::vector<int> park_location(n, -1);  // outgoing qubit -> park slot
  for (int i = 0; i < q_move; ++i) {
    park_location[outgoing[i]] = to[incoming[i]];
  }
  std::vector<int> local_perm(l);
  for (Qubit q = 0; q < n; ++q) {
    if (cur[q] >= l) continue;
    const int target = to[q] < l ? to[q] : park_location[q];
    local_perm[target] = cur[q];
  }
  comm_->local_permute(local_perm, q_move > 0 ? &pending_phase_ : nullptr);
  if (q_move > 0) {
    std::fill(pending_phase_.begin(), pending_phase_.end(),
              Amplitude{1.0, 0.0});
  }
  {
    std::vector<Qubit> prev_at(at.begin(), at.begin() + l);
    for (int j = 0; j < l; ++j) {
      at[j] = prev_at[local_perm[j]];
      cur[at[j]] = j;
    }
  }

  // 2. One in-place all-to-all straight from/to the final locations.
  if (q_move > 0) {
    std::vector<std::pair<int, int>> pairs;  // (global loc, local loc)
    for (int i = 0; i < q_move; ++i) {
      pairs.emplace_back(cur[incoming[i]], to[incoming[i]]);
    }
    std::sort(pairs.begin(), pairs.end());
    std::vector<int> global_locations, local_positions;
    for (const auto& [gloc, lloc] : pairs) {
      global_locations.push_back(gloc);
      local_positions.push_back(lloc);
    }
    comm_->alltoall_swap(global_locations, local_positions);
    for (const auto& [gloc, lloc] : pairs) {
      const Qubit qg = at[gloc], ql = at[lloc];
      std::swap(at[gloc], at[lloc]);
      cur[qg] = lloc;
      cur[ql] = gloc;
    }
  }

  // 3. Global-global permutation = rank renumbering (zero volume).
  bool global_moves = false;
  for (Qubit q = 0; q < n; ++q) global_moves |= cur[q] != to[q];
  if (global_moves) {
    const int g = n - l;
    std::vector<int> perm(g);
    for (int j = 0; j < g; ++j) {
      const Qubit q = at[l + j];
      perm[to[q] - l] = j;
    }
    bool identity = true;
    for (int j = 0; j < g; ++j) identity &= perm[j] == j;
    if (!identity) {
      const int ranks = num_ranks();
      std::vector<Index> source_of(static_cast<std::size_t>(ranks));
      std::vector<Amplitude> next_phase(static_cast<std::size_t>(ranks));
      for (int r = 0; r < ranks; ++r) {
        Index src = 0;
        for (int j = 0; j < g; ++j) {
          src |= static_cast<Index>(get_bit(static_cast<Index>(r), j))
                 << perm[j];
        }
        source_of[r] = src;
        next_phase[r] = pending_phase_[src];
      }
      comm_->permute_ranks(source_of);
      pending_phase_ = std::move(next_phase);
    }
  }
}

StateVectorF DistributedSimulatorF::gather() const {
  QUASAR_CHECK(num_qubits_ <= 28, "gather: state too large to reassemble");
  StateVectorF out(num_qubits_);
  const Index local_mask = local_size() - 1;
  const int ranks = num_ranks();
  std::vector<const AmplitudeF*> slices(static_cast<std::size_t>(ranks));
  for (int r = 0; r < ranks; ++r) slices[r] = comm().slice(r);
  for (Index p = 0; p < out.size(); ++p) {
    Index machine = 0;
    for (int q = 0; q < num_qubits_; ++q) {
      machine |= static_cast<Index>(get_bit(p, q)) << mapping_[q];
    }
    const int rank = static_cast<int>(machine >> num_local_);
    const AmplitudeF raw = slices[rank][machine & local_mask];
    const Amplitude phased =
        Amplitude{raw.real(), raw.imag()} * pending_phase_[rank];
    out[p] = AmplitudeF{static_cast<float>(phased.real()),
                        static_cast<float>(phased.imag())};
  }
  return out;
}

Real DistributedSimulatorF::entropy() const {
  QUASAR_OBS_SPAN("measure", "entropy");
  Real total = 0.0;
  const std::int64_t count = static_cast<std::int64_t>(local_size());
  for (int r = 0; r < num_ranks(); ++r) {
    const AmplitudeF* data = comm().slice(r);
    Real partial = 0.0;
#pragma omp parallel for schedule(static) reduction(+ : partial)
    for (std::int64_t i = 0; i < count; ++i) {
      const Real p = static_cast<Real>(data[i].real()) * data[i].real() +
                     static_cast<Real>(data[i].imag()) * data[i].imag();
      if (p > 0.0) partial -= p * std::log(p);
    }
    total += partial;
  }
  return total;
}

}  // namespace quasar
