#include "fp32/distributed_f32.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <map>
#include <numeric>

#include "core/bits.hpp"
#include "core/error.hpp"
#include "runtime/conditional.hpp"

namespace quasar {

DistributedSimulatorF::DistributedSimulatorF(int num_qubits, int num_local,
                                             int num_threads)
    : num_qubits_(num_qubits), num_local_(num_local),
      num_threads_(num_threads) {
  QUASAR_CHECK(num_local >= 1 && num_local <= num_qubits,
               "DistributedSimulatorF: num_local must be in [1, n]");
  QUASAR_CHECK(num_qubits - num_local <= 12,
               "DistributedSimulatorF: at most 2^12 simulated ranks");
  QUASAR_CHECK(num_qubits - num_local <= num_local,
               "DistributedSimulatorF: needs g <= l");
  buffers_.resize(num_ranks());
  for (auto& buffer : buffers_) {
    buffer.assign(local_size(), AmplitudeF{0.0f, 0.0f});
  }
  pending_phase_.assign(num_ranks(), Amplitude{1.0, 0.0});
  mapping_.resize(num_qubits);
  std::iota(mapping_.begin(), mapping_.end(), 0);
}

void DistributedSimulatorF::init_basis(Index index) {
  QUASAR_CHECK(index < index_pow2(num_qubits_), "basis index out of range");
  for (auto& buffer : buffers_) {
    std::fill(buffer.begin(), buffer.end(), AmplitudeF{0.0f, 0.0f});
  }
  buffers_[index >> num_local_][index & (local_size() - 1)] = 1.0f;
  std::fill(pending_phase_.begin(), pending_phase_.end(),
            Amplitude{1.0, 0.0});
  std::iota(mapping_.begin(), mapping_.end(), 0);
}

void DistributedSimulatorF::init_uniform() {
  const float value = static_cast<float>(std::pow(2.0, -0.5 * num_qubits_));
  for (auto& buffer : buffers_) {
    std::fill(buffer.begin(), buffer.end(), AmplitudeF{value, 0.0f});
  }
  std::fill(pending_phase_.begin(), pending_phase_.end(),
            Amplitude{1.0, 0.0});
  std::iota(mapping_.begin(), mapping_.end(), 0);
}

void DistributedSimulatorF::run(const Circuit& circuit,
                                const Schedule& schedule) {
  QUASAR_CHECK(schedule.num_qubits == num_qubits_ &&
                   schedule.num_local == num_local_,
               "run: schedule was built for a different configuration");
  QUASAR_CHECK(schedule.options.build_matrices,
               "run: schedule lacks fused matrices");
  for (const Stage& stage : schedule.stages) {
    transition(mapping_, stage.qubit_to_location);
    mapping_ = stage.qubit_to_location;
    for (const StageItem& item : stage.items) {
      if (item.kind == StageItem::Kind::kCluster) {
        const Cluster& cluster = stage.clusters[item.cluster];
        const PreparedGateF prepared =
            prepare_gate_f32(*cluster.matrix, cluster.qubits);
        for (int r = 0; r < num_ranks(); ++r) {
          apply_gate_f32(buffers_[r].data(), num_local_, prepared,
                         num_threads_);
        }
      } else {
        apply_global_op(circuit.op(item.op), stage);
      }
    }
  }
}

void DistributedSimulatorF::apply_global_op(const GateOp& op,
                                            const Stage& stage) {
  const int l = num_local_;
  std::vector<bool> fixed(op.arity(), false);
  std::vector<int> global_bits, local_locations;
  for (int j = 0; j < op.arity(); ++j) {
    const int loc = stage.location(op.qubits[j]);
    if (loc >= l) {
      fixed[j] = true;
      global_bits.push_back(loc - l);
    } else {
      local_locations.push_back(loc);
    }
  }
  QUASAR_ASSERT(!global_bits.empty());

  if (!op.diagonal && local_locations.empty()) {
    // Rank renumbering for a global phased permutation (Sec. 3.5).
    const auto perm = op.matrix->phased_permutation();
    QUASAR_CHECK(perm.has_value(),
                 "apply_global_op: dense all-global gate in the executor");
    std::vector<AlignedVector<AmplitudeF>> next(num_ranks());
    std::vector<Amplitude> next_phase(num_ranks());
    for (int r = 0; r < num_ranks(); ++r) {
      Index col = 0;
      for (std::size_t j = 0; j < global_bits.size(); ++j) {
        col |= static_cast<Index>(
                   get_bit(static_cast<Index>(r), global_bits[j]))
               << j;
      }
      const Index row = perm->target[col];
      Index dest = static_cast<Index>(r);
      for (std::size_t j = 0; j < global_bits.size(); ++j) {
        dest = set_bit(dest, global_bits[j],
                       get_bit(row, static_cast<int>(j)));
      }
      next[dest] = std::move(buffers_[r]);
      next_phase[dest] = pending_phase_[r] * perm->phase[col];
    }
    buffers_ = std::move(next);
    pending_phase_ = std::move(next_phase);
    ++stats_.rank_renumberings;
    return;
  }

  std::map<Index, ConditionalGate> cache;
  for (int r = 0; r < num_ranks(); ++r) {
    Index pattern = 0;
    for (std::size_t i = 0; i < global_bits.size(); ++i) {
      pattern |= static_cast<Index>(
                     get_bit(static_cast<Index>(r), global_bits[i]))
                 << i;
    }
    auto it = cache.find(pattern);
    if (it == cache.end()) {
      it = cache.emplace(pattern,
                         condition_gate(*op.matrix, fixed, pattern)).first;
    }
    const ConditionalGate& cond = it->second;
    if (cond.is_identity) continue;
    if (cond.matrix.num_qubits() == 0) {
      pending_phase_[r] *= cond.phase;
      continue;
    }
    const PreparedGateF prepared =
        prepare_gate_f32(cond.matrix, local_locations);
    apply_gate_f32(buffers_[r].data(), num_local_, prepared, num_threads_);
  }
}

void DistributedSimulatorF::flush_phases() {
  for (int r = 0; r < num_ranks(); ++r) {
    if (pending_phase_[r] != Amplitude{1.0, 0.0}) {
      apply_global_phase_f32(
          buffers_[r].data(), num_local_,
          AmplitudeF{static_cast<float>(pending_phase_[r].real()),
                     static_cast<float>(pending_phase_[r].imag())},
          num_threads_);
      pending_phase_[r] = Amplitude{1.0, 0.0};
    }
  }
}

void DistributedSimulatorF::alltoall_swap(
    const std::vector<int>& global_locations) {
  const int q = static_cast<int>(global_locations.size());
  const int l = num_local_;
  const Index block = index_pow2(l - q);
  const Index top_count = index_pow2(q);

  std::vector<AlignedVector<AmplitudeF>> next(num_ranks());
  for (auto& buffer : next) buffer.resize(local_size());
  for (int r = 0; r < num_ranks(); ++r) {
    Index r_swapped = 0;
    for (int i = 0; i < q; ++i) {
      r_swapped |= static_cast<Index>(
                       get_bit(static_cast<Index>(r),
                               global_locations[i] - l))
                   << i;
    }
    for (Index h = 0; h < top_count; ++h) {
      Index dest_rank = static_cast<Index>(r);
      for (int i = 0; i < q; ++i) {
        dest_rank =
            set_bit(dest_rank, global_locations[i] - l, get_bit(h, i));
      }
      std::memcpy(next[dest_rank].data() + r_swapped * block,
                  buffers_[r].data() + h * block,
                  block * sizeof(AmplitudeF));
    }
  }
  buffers_.swap(next);
  ++stats_.alltoalls;
  // Half the bytes of the double-precision swap: the Sec. 5 win.
  stats_.bytes_sent_per_rank +=
      (local_size() - block) * sizeof(AmplitudeF);
}

void DistributedSimulatorF::transition(const std::vector<int>& from,
                                       const std::vector<int>& to) {
  if (from == to) return;
  const int n = num_qubits_;
  const int l = num_local_;
  std::vector<int> cur = from;
  std::vector<Qubit> at(n);
  for (Qubit q = 0; q < n; ++q) at[cur[q]] = q;

  auto do_local_swap = [&](int p, int s) {
    if (p == s) return;
    for (auto& buffer : buffers_) {
      apply_bit_swap_f32(buffer.data(), l, p, s, num_threads_);
    }
    ++stats_.local_swap_sweeps;
    const Qubit qp = at[p], qs = at[s];
    std::swap(at[p], at[s]);
    cur[qp] = s;
    cur[qs] = p;
  };

  std::vector<Qubit> incoming, outgoing;
  for (Qubit q = 0; q < n; ++q) {
    const bool was_global = cur[q] >= l;
    const bool is_global = to[q] >= l;
    if (was_global && !is_global) incoming.push_back(q);
    if (!was_global && is_global) outgoing.push_back(q);
  }
  const int q_move = static_cast<int>(incoming.size());

  if (q_move > 0) {
    flush_phases();  // phases must not cross the all-to-all (see runtime)
    std::size_t next_out = 0;
    for (int slot = l - q_move; slot < l; ++slot) {
      const bool already =
          std::find(outgoing.begin(), outgoing.end(), at[slot]) !=
          outgoing.end();
      if (already) continue;
      while (cur[outgoing[next_out]] >= l - q_move) ++next_out;
      do_local_swap(cur[outgoing[next_out]], slot);
      ++next_out;
    }
    std::vector<int> global_locations;
    for (Qubit q : incoming) global_locations.push_back(cur[q]);
    std::sort(global_locations.begin(), global_locations.end());
    alltoall_swap(global_locations);
    for (int i = 0; i < q_move; ++i) {
      const int gloc = global_locations[i];
      const int lloc = l - q_move + i;
      const Qubit qg = at[gloc], ql = at[lloc];
      std::swap(at[gloc], at[lloc]);
      cur[qg] = lloc;
      cur[ql] = gloc;
    }
  }

  for (int loc = 0; loc < l; ++loc) {
    Qubit wanted = -1;
    for (Qubit q = 0; q < n; ++q) {
      if (to[q] == loc) {
        wanted = q;
        break;
      }
    }
    QUASAR_ASSERT(wanted >= 0);
    if (cur[wanted] != loc) do_local_swap(cur[wanted], loc);
  }

  bool global_moves = false;
  for (Qubit q = 0; q < n; ++q) global_moves |= cur[q] != to[q];
  if (global_moves) {
    const int g = n - l;
    std::vector<int> perm(g);
    for (int j = 0; j < g; ++j) {
      const Qubit q = at[l + j];
      perm[to[q] - l] = j;
    }
    bool identity = true;
    for (int j = 0; j < g; ++j) identity &= perm[j] == j;
    if (!identity) {
      std::vector<AlignedVector<AmplitudeF>> next(num_ranks());
      std::vector<Amplitude> next_phase(num_ranks());
      for (int r = 0; r < num_ranks(); ++r) {
        Index src = 0;
        for (int j = 0; j < g; ++j) {
          src |= static_cast<Index>(get_bit(static_cast<Index>(r), j))
                 << perm[j];
        }
        next[r] = std::move(buffers_[src]);
        next_phase[r] = pending_phase_[src];
      }
      buffers_ = std::move(next);
      pending_phase_ = std::move(next_phase);
      ++stats_.rank_renumberings;
    }
  }
}

StateVectorF DistributedSimulatorF::gather() const {
  QUASAR_CHECK(num_qubits_ <= 28, "gather: state too large to reassemble");
  StateVectorF out(num_qubits_);
  const Index local_mask = local_size() - 1;
  for (Index p = 0; p < out.size(); ++p) {
    Index machine = 0;
    for (int q = 0; q < num_qubits_; ++q) {
      machine |= static_cast<Index>(get_bit(p, q)) << mapping_[q];
    }
    const int rank = static_cast<int>(machine >> num_local_);
    const AmplitudeF raw = buffers_[rank][machine & local_mask];
    const Amplitude phased =
        Amplitude{raw.real(), raw.imag()} * pending_phase_[rank];
    out[p] = AmplitudeF{static_cast<float>(phased.real()),
                        static_cast<float>(phased.imag())};
  }
  return out;
}

Real DistributedSimulatorF::norm_squared() const {
  Real total = 0.0;
  for (const auto& buffer : buffers_) {
    for (const AmplitudeF& v : buffer) {
      total += static_cast<Real>(v.real()) * v.real() +
               static_cast<Real>(v.imag()) * v.imag();
    }
  }
  return total;
}

Real DistributedSimulatorF::entropy() const {
  Real total = 0.0;
  for (const auto& buffer : buffers_) {
    const AmplitudeF* data = buffer.data();
    Real partial = 0.0;
#pragma omp parallel for schedule(static) reduction(+ : partial)
    for (std::int64_t i = 0;
         i < static_cast<std::int64_t>(buffer.size()); ++i) {
      const Real p = static_cast<Real>(data[i].real()) * data[i].real() +
                     static_cast<Real>(data[i].imag()) * data[i].imag();
      if (p > 0.0) partial -= p * std::log(p);
    }
    total += partial;
  }
  return total;
}

}  // namespace quasar
