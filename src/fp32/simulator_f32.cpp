#include "fp32/simulator_f32.hpp"

#include "obs/trace.hpp"

namespace quasar {

SimulatorF::SimulatorF(StateVectorF& state, int num_threads)
    : state_(&state), num_threads_(num_threads) {}

void SimulatorF::apply(const GateMatrix& matrix,
                       const std::vector<int>& qubits) {
  apply(prepare_gate_f32(matrix, qubits));
}

void SimulatorF::apply(const PreparedGateF& gate) {
  apply_gate_f32(state_->data(), state_->num_qubits(), gate, num_threads_);
}

void SimulatorF::apply(const GateOp& op) {
  std::vector<int> locations(op.qubits.begin(), op.qubits.end());
  apply(prepare_gate_f32(*op.matrix, locations));
}

void SimulatorF::run(const Circuit& circuit) {
  QUASAR_CHECK(circuit.num_qubits() == state_->num_qubits(),
               "SimulatorF::run: circuit/state qubit count mismatch");
  QUASAR_OBS_SPAN("run", "simulator_run_f32", "gates",
                  static_cast<std::int64_t>(circuit.num_gates()));
  // Batched fast path: prepare every op once, then share DRAM sweeps
  // across runs of low-location gates (same scheme as Simulator::run).
  std::vector<PreparedGateF> prepared;
  prepared.reserve(circuit.num_gates());
  for (const GateOp& op : circuit.ops()) {
    prepared.push_back(prepare_gate_f32(
        *op.matrix, std::vector<int>(op.qubits.begin(), op.qubits.end())));
  }
  std::vector<const PreparedGateF*> gate_ptrs;
  gate_ptrs.reserve(prepared.size());
  for (const PreparedGateF& g : prepared) gate_ptrs.push_back(&g);
  ApplyOptions options;
  options.num_threads = num_threads_;
  apply_gates_blocked_f32(state_->data(), state_->num_qubits(),
                          gate_ptrs.data(), gate_ptrs.size(), options);
}

}  // namespace quasar
