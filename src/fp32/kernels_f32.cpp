#include "fp32/kernels_f32.hpp"

#include <immintrin.h>
#include <omp.h>

#include <algorithm>
#include <cstring>
#include <iterator>
#include <memory>
#include <numeric>

#include "core/error.hpp"
#include "kernels/permute.hpp"

namespace quasar {

namespace {

int resolve_threads_f32(int requested, Index iterations) {
  int threads = requested > 0 ? requested : omp_get_max_threads();
  if (iterations < static_cast<Index>(threads)) {
    threads = static_cast<int>(iterations > 0 ? iterations : 1);
  }
  return threads;
}

/// Reusable per-thread float gate workspace (mirrors
/// detail::gate_scratch for the double kernels).
AmplitudeF* gate_scratch_f32(Index amplitudes) {
  thread_local AlignedVector<AmplitudeF> scratch;
  if (static_cast<Index>(scratch.size()) < amplitudes) {
    scratch.resize(amplitudes);
  }
  return scratch.data();
}

// Single compiled instance of the float diagonal multiply, shared by the
// full-state sweep and the blocked per-block path (float analogue of
// detail::diagonal_multiply — noinline so FP contraction cannot diverge
// between the two call sites and blocked execution stays bit-identical).
// The outer loop lives inside the function so callers pay one call per
// range, not one per base.
[[gnu::noinline]] void diagonal_multiply_range_f32(
    AmplitudeF* amps, const IndexExpander& expander, const Index* offsets,
    const AmplitudeF* diag, Index dim, Index begin, Index end) {
  for (Index i = begin; i < end; ++i) {
    AmplitudeF* const base = amps + expander.expand(i);
    for (Index t = 0; t < dim; ++t) base[offsets[t]] *= diag[t];
  }
}

inline void gather_f32(const AmplitudeF* state, Index base,
                       const Index* offsets, Index dim, Index run,
                       AmplitudeF* tmp) {
  if (run == 1) {
    for (Index t = 0; t < dim; ++t) tmp[t] = state[base + offsets[t]];
    return;
  }
  for (Index t = 0; t < dim; t += run) {
    std::memcpy(tmp + t, state + base + offsets[t],
                run * sizeof(AmplitudeF));
  }
}

inline void scatter_f32(AmplitudeF* state, Index base, const Index* offsets,
                        Index dim, Index run, const AmplitudeF* tmp) {
  if (run == 1) {
    for (Index t = 0; t < dim; ++t) state[base + offsets[t]] = tmp[t];
    return;
  }
  for (Index t = 0; t < dim; t += run) {
    std::memcpy(state + base + offsets[t], tmp + t,
                run * sizeof(AmplitudeF));
  }
}

#if defined(__AVX512F__) && defined(__AVX512DQ__)

/// 8 complex<float> lanes per vector.
struct F32Avx512 {
  using Vec = __m512;
  static constexpr int kWidth = 8;
  static Vec load(const float* p) { return _mm512_load_ps(p); }
  static void store(float* p, Vec v) { _mm512_store_ps(p, v); }
  static Vec set1(float x) { return _mm512_set1_ps(x); }
  static Vec zero() { return _mm512_setzero_ps(); }
  static Vec fmadd(Vec a, Vec b, Vec c) { return _mm512_fmadd_ps(a, b, c); }
};
#define QUASAR_F32_SIMD 1
using F32Traits = F32Avx512;

#elif defined(__AVX2__) && defined(__FMA__)

/// 4 complex<float> lanes per vector.
struct F32Avx2 {
  using Vec = __m256;
  static constexpr int kWidth = 4;
  static Vec load(const float* p) { return _mm256_load_ps(p); }
  static void store(float* p, Vec v) { _mm256_store_ps(p, v); }
  static Vec set1(float x) { return _mm256_set1_ps(x); }
  static Vec zero() { return _mm256_setzero_ps(); }
  static Vec fmadd(Vec a, Vec b, Vec c) { return _mm256_fmadd_ps(a, b, c); }
};
#define QUASAR_F32_SIMD 1
using F32Traits = F32Avx2;

#else
#define QUASAR_F32_SIMD 0
#endif

#if QUASAR_F32_SIMD

/// Register-resident column GEMV over a gathered (or in-place contiguous)
/// block, float lanes. Requires dim >= kWidth.
template <bool kDirect>
void gemv_f32(AmplitudeF* state, int num_qubits, const PreparedGateF& gate,
              int num_threads) {
  using Vec = F32Traits::Vec;
  constexpr int kW = F32Traits::kWidth;
  constexpr Index kMaxAcc = 16;
  const Index dim = gate.dim;
  const Index row_vecs = dim / kW;
  QUASAR_ASSERT(row_vecs >= 1 && row_vecs <= kMaxAcc);

  const Index outer = index_pow2(num_qubits - gate.k);
  const IndexExpander expander = gate.expander();
  const Index* offsets = gate.offsets.data();
  const Index run = gate.contig_run;
  const float* col_a = gate.col_a.data();
  const float* col_b = gate.col_b.data();
  const int threads = resolve_threads_f32(num_threads, outer);

#pragma omp parallel num_threads(threads)
  {
    // Reusable per-thread gather workspace, fetched once per region.
    AmplitudeF* const tmp = kDirect ? nullptr : gate_scratch_f32(dim);
#pragma omp for schedule(static)
    for (std::int64_t ii = 0; ii < static_cast<std::int64_t>(outer); ++ii) {
      AmplitudeF* block;
      if constexpr (kDirect) {
        block = state + static_cast<Index>(ii) * dim;
      } else {
        const Index base = expander.expand(static_cast<Index>(ii));
        gather_f32(state, base, offsets, dim, run, tmp);
        block = tmp;
      }
      const float* blockf = reinterpret_cast<const float*>(block);
      Vec acc[kMaxAcc];
      for (Index b = 0; b < row_vecs; ++b) acc[b] = F32Traits::zero();
      for (Index col = 0; col < dim; ++col) {
        const Vec vr = F32Traits::set1(blockf[2 * col]);
        const Vec vi = F32Traits::set1(blockf[2 * col + 1]);
        const float* ca = col_a + col * dim * 2;
        const float* cb = col_b + col * dim * 2;
        for (Index b = 0; b < row_vecs; ++b) {
          acc[b] =
              F32Traits::fmadd(F32Traits::load(ca + b * 2 * kW), vr, acc[b]);
          acc[b] =
              F32Traits::fmadd(F32Traits::load(cb + b * 2 * kW), vi, acc[b]);
        }
      }
      float* outf = reinterpret_cast<float*>(block);
      for (Index b = 0; b < row_vecs; ++b) {
        F32Traits::store(outf + b * 2 * kW, acc[b]);
      }
      if constexpr (!kDirect) {
        const Index base = expander.expand(static_cast<Index>(ii));
        scatter_f32(state, base, offsets, dim, run, tmp);
      }
    }
  }
}

#endif  // QUASAR_F32_SIMD

}  // namespace

PreparedGateF prepare_gate_f32(const GateMatrix& matrix,
                               const std::vector<int>& bit_locations) {
  QUASAR_CHECK(matrix.num_qubits() ==
                   static_cast<int>(bit_locations.size()),
               "prepare_gate_f32: arity mismatch");
  QUASAR_CHECK(matrix.num_qubits() >= 1, "prepare_gate_f32: empty gate");

  PreparedGateF g;
  g.k = matrix.num_qubits();
  g.dim = index_pow2(g.k);

  std::vector<int> order(g.k);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    return bit_locations[a] < bit_locations[b];
  });
  g.qubits.resize(g.k);
  for (int j = 0; j < g.k; ++j) {
    g.qubits[j] = bit_locations[order[j]];
    if (j > 0) {
      QUASAR_CHECK(g.qubits[j] != g.qubits[j - 1],
                   "prepare_gate_f32: bit-locations must be distinct");
    }
  }
  g.matrix = matrix.permute_qubits(order);
  g.offsets = make_gate_offsets(g.qubits);

  int low = 0;
  while (low < g.k && g.qubits[low] == low) ++low;
  g.contig_run = index_pow2(low);

  g.diagonal = g.matrix.is_diagonal();
  if (g.diagonal) {
    for (const Amplitude& d : g.matrix.diagonal()) {
      g.diag.push_back(AmplitudeF{static_cast<float>(d.real()),
                                  static_cast<float>(d.imag())});
    }
  }

  g.col_a.resize(g.dim * g.dim * 2);
  g.col_b.resize(g.dim * g.dim * 2);
  for (Index i = 0; i < g.dim; ++i) {
    for (Index l = 0; l < g.dim; ++l) {
      const Amplitude m = g.matrix.at(l, i);
      const Index e = (i * g.dim + l) * 2;
      g.col_a[e + 0] = static_cast<float>(m.real());
      g.col_a[e + 1] = static_cast<float>(m.imag());
      g.col_b[e + 0] = static_cast<float>(-m.imag());
      g.col_b[e + 1] = static_cast<float>(m.real());
    }
  }

#if QUASAR_F32_SIMD
  // Pre-widen once at preparation time: gates narrower than one float
  // vector get identity spectators on the lowest free bit-locations.
  // Those spectators are always < the widened arity, so the embedding is
  // valid for every state with at least widened->k qubits and the
  // dispatcher need not re-derive it per application.
  if (!g.diagonal && g.dim < static_cast<Index>(F32Traits::kWidth)) {
    int want_k = g.k;
    Index want_dim = g.dim;
    while (want_dim < static_cast<Index>(F32Traits::kWidth)) {
      ++want_k;
      want_dim *= 2;
    }
    std::vector<int> all_locations;
    for (int q = 0;
         static_cast<int>(all_locations.size()) < want_k - g.k; ++q) {
      if (std::find(g.qubits.begin(), g.qubits.end(), q) == g.qubits.end()) {
        all_locations.push_back(q);
      }
    }
    all_locations.insert(all_locations.end(), g.qubits.begin(),
                         g.qubits.end());
    std::sort(all_locations.begin(), all_locations.end());
    std::vector<int> positions;
    for (int q : g.qubits) {
      const auto it = std::lower_bound(all_locations.begin(),
                                       all_locations.end(), q);
      positions.push_back(static_cast<int>(it - all_locations.begin()));
    }
    g.widened = std::make_shared<const PreparedGateF>(
        prepare_gate_f32(g.matrix.embed(want_k, positions), all_locations));
  }
#endif
  return g;
}

void apply_gate_f32_scalar(AmplitudeF* state, int num_qubits,
                           const PreparedGateF& gate, int num_threads) {
  QUASAR_CHECK(gate.k <= num_qubits, "gate wider than the state");
  QUASAR_CHECK(gate.qubits.back() < num_qubits,
               "gate bit-location out of range");
  const Index dim = gate.dim;
  const Index outer = index_pow2(num_qubits - gate.k);
  const IndexExpander expander = gate.expander();
  const Index* offsets = gate.offsets.data();
  const GateMatrix& m = gate.matrix;
  const int threads = resolve_threads_f32(num_threads, outer);

#pragma omp parallel num_threads(threads)
  {
    std::vector<AmplitudeF> in(dim), out(dim);
#pragma omp for schedule(static)
    for (std::int64_t i = 0; i < static_cast<std::int64_t>(outer); ++i) {
      const Index base = expander.expand(static_cast<Index>(i));
      for (Index t = 0; t < dim; ++t) in[t] = state[base + offsets[t]];
      for (Index l = 0; l < dim; ++l) {
        AmplitudeF acc{0.0f, 0.0f};
        for (Index t = 0; t < dim; ++t) {
          const Amplitude e = m.at(l, t);
          acc += AmplitudeF{static_cast<float>(e.real()),
                            static_cast<float>(e.imag())} *
                 in[t];
        }
        out[l] = acc;
      }
      for (Index t = 0; t < dim; ++t) state[base + offsets[t]] = out[t];
    }
  }
}

void apply_diagonal_f32(AmplitudeF* state, int num_qubits,
                        const PreparedGateF& gate, int num_threads) {
  QUASAR_CHECK(gate.diagonal, "apply_diagonal_f32: gate is not diagonal");
  const Index dim = gate.dim;
  const Index outer = index_pow2(num_qubits - gate.k);
  const IndexExpander expander = gate.expander();
  const Index* offsets = gate.offsets.data();
  const AmplitudeF* diag = gate.diag.data();
  const int threads = resolve_threads_f32(num_threads, outer);

#pragma omp parallel num_threads(threads)
  {
    // Static partition of the outer index space; one call per thread
    // into the shared multiply (bitwise result is independent of the
    // split — every base is touched exactly once).
    const Index tid = static_cast<Index>(omp_get_thread_num());
    const Index nth = static_cast<Index>(omp_get_num_threads());
    diagonal_multiply_range_f32(state, expander, offsets, diag, dim,
                                outer * tid / nth, outer * (tid + 1) / nth);
  }
}

void apply_bit_swap_f32(AmplitudeF* state, int num_qubits, int p, int q,
                        int num_threads) {
  QUASAR_CHECK(p >= 0 && p < num_qubits && q >= 0 && q < num_qubits &&
                   p != q,
               "apply_bit_swap_f32: invalid bit-locations");
  if (p > q) std::swap(p, q);
  const IndexExpander expander(std::vector<int>{p, q});
  const Index outer = index_pow2(num_qubits - 2);
  const Index off_p = index_pow2(p);
  const Index off_q = index_pow2(q);
  const int threads = resolve_threads_f32(num_threads, outer);

#pragma omp parallel for schedule(static) num_threads(threads)
  for (std::int64_t i = 0; i < static_cast<std::int64_t>(outer); ++i) {
    const Index base = expander.expand(static_cast<Index>(i));
    std::swap(state[base + off_p], state[base + off_q]);
  }
}

void apply_fused_bit_permutation_f32(AmplitudeF* state, int num_qubits,
                                     const std::vector<int>& perm,
                                     AmplitudeF phase, int num_threads,
                                     std::size_t scratch_bytes) {
  QUASAR_CHECK(state != nullptr, "apply_fused_bit_permutation_f32: null");
  const PermutePlan plan = plan_bit_permutation(num_qubits, perm);
  detail::run_bit_permutation(state, plan, phase, num_threads,
                              scratch_bytes);
}

void apply_global_phase_f32(AmplitudeF* state, int num_qubits,
                            AmplitudeF phase, int num_threads) {
  const Index size = index_pow2(num_qubits);
  const int threads = resolve_threads_f32(num_threads, size);
#pragma omp parallel for schedule(static) num_threads(threads)
  for (std::int64_t i = 0; i < static_cast<std::int64_t>(size); ++i) {
    state[i] *= phase;
  }
}

void apply_gate_f32(AmplitudeF* state, int num_qubits,
                    const PreparedGateF& gate, int num_threads) {
  QUASAR_CHECK(state != nullptr, "apply_gate_f32: null state");
  QUASAR_CHECK(gate.k >= 1 && gate.k <= num_qubits,
               "apply_gate_f32: gate does not fit the state");
  QUASAR_CHECK(gate.qubits.back() < num_qubits,
               "apply_gate_f32: bit-location out of range");
  if (gate.diagonal) {
    apply_diagonal_f32(state, num_qubits, gate, num_threads);
    return;
  }
#if QUASAR_F32_SIMD
  constexpr int kW = F32Traits::kWidth;
  // Gates narrower than one float vector (k <= 2 with AVX-512) are
  // widened with identity spectator qubits on the lowest free
  // bit-locations so the GEMV has full lanes — the same trick the
  // double-precision dispatcher uses for 1-qubit gates.
  if (gate.dim < static_cast<Index>(kW)) {
    // Prepare-once cache (built by prepare_gate_f32).
    if (gate.widened && gate.widened->k <= num_qubits) {
      apply_gate_f32(state, num_qubits, *gate.widened, num_threads);
      return;
    }
    int want_k = gate.k;
    Index want_dim = gate.dim;
    while (want_dim < static_cast<Index>(kW)) {
      ++want_k;
      want_dim *= 2;
    }
    if (num_qubits >= want_k) {
      std::vector<int> widened_locations;
      std::vector<bool> taken(num_qubits, false);
      for (int q : gate.qubits) taken[q] = true;
      for (int q = 0; q < num_qubits &&
                      static_cast<int>(widened_locations.size()) <
                          want_k - gate.k;
           ++q) {
        if (!taken[q]) widened_locations.push_back(q);
      }
      // Gate qubits keep their cluster-local positions appended last;
      // embed() places matrix qubit j at the given position.
      std::vector<int> positions;
      std::vector<int> all_locations = widened_locations;
      all_locations.insert(all_locations.end(), gate.qubits.begin(),
                           gate.qubits.end());
      std::sort(all_locations.begin(), all_locations.end());
      for (int q : gate.qubits) {
        const auto it = std::lower_bound(all_locations.begin(),
                                         all_locations.end(), q);
        positions.push_back(static_cast<int>(it - all_locations.begin()));
      }
      const PreparedGateF widened = prepare_gate_f32(
          gate.matrix.embed(want_k, positions), all_locations);
      apply_gate_f32(state, num_qubits, widened, num_threads);
      return;
    }
  }
  const Index row_vecs = gate.dim / kW;
  if (row_vecs >= 1 && row_vecs <= 16) {
    if (gate.contig_run == gate.dim) {
      gemv_f32<true>(state, num_qubits, gate, num_threads);
    } else {
      gemv_f32<false>(state, num_qubits, gate, num_threads);
    }
    return;
  }
#endif
  apply_gate_f32_scalar(state, num_qubits, gate, num_threads);
}

namespace {

/// Pre-resolved per-gate plan for the float block loop (mirrors the
/// double engine's block_apply.cpp).
struct GatePlanEntryF {
  const PreparedGateF* gate = nullptr;
  bool diagonal = false;
  std::vector<int> high_qubits;
  std::vector<Index> low_offsets;
  IndexExpander low_expander{std::vector<int>{}};
  Index low_outer = 0;
  Index dim_low = 0;
  int low_k = 0;
};

/// Float mirror of merge_diagonal_gates (block_apply.cpp): one merged
/// phase table for a span of commuting diagonal gates, product taken in
/// float to match the engine's working precision.
PreparedGateF merge_diagonal_gates_f32(const PreparedGateF* const* gates,
                                       std::size_t count) {
  std::vector<int> qubits;
  for (std::size_t g = 0; g < count; ++g) {
    std::vector<int> u;
    std::set_union(qubits.begin(), qubits.end(), gates[g]->qubits.begin(),
                   gates[g]->qubits.end(), std::back_inserter(u));
    qubits.swap(u);
  }
  PreparedGateF merged;
  merged.k = static_cast<int>(qubits.size());
  merged.dim = index_pow2(merged.k);
  merged.qubits = qubits;
  merged.diagonal = true;
  merged.diag.assign(merged.dim, AmplitudeF{1.0f, 0.0f});
  merged.offsets = make_gate_offsets(qubits);
  for (std::size_t g = 0; g < count; ++g) {
    const PreparedGateF& src = *gates[g];
    std::vector<int> pos(src.qubits.size());
    for (std::size_t t = 0; t < src.qubits.size(); ++t) {
      pos[t] = static_cast<int>(
          std::lower_bound(qubits.begin(), qubits.end(), src.qubits[t]) -
          qubits.begin());
    }
    for (Index idx = 0; idx < merged.dim; ++idx) {
      Index sub = 0;
      for (std::size_t t = 0; t < pos.size(); ++t) {
        sub |= ((idx >> pos[t]) & Index{1}) << t;
      }
      merged.diag[idx] *= src.diag[sub];
    }
  }
  return merged;
}

/// Float mirror of coalesce_diagonal_spans: replaces maximal consecutive
/// diagonal spans (union of at most 12 qubits) with merged gates.
std::size_t coalesce_diagonal_spans_f32(
    std::vector<const PreparedGateF*>& run,
    std::vector<std::unique_ptr<PreparedGateF>>& storage) {
  constexpr std::size_t kMaxMergedK = 12;
  std::size_t saved = 0;
  std::vector<const PreparedGateF*> out;
  out.reserve(run.size());
  std::size_t i = 0;
  while (i < run.size()) {
    if (!run[i]->diagonal) {
      out.push_back(run[i]);
      ++i;
      continue;
    }
    std::vector<int> qubits = run[i]->qubits;
    std::size_t j = i + 1;
    while (j < run.size() && run[j]->diagonal) {
      std::vector<int> u;
      std::set_union(qubits.begin(), qubits.end(), run[j]->qubits.begin(),
                     run[j]->qubits.end(), std::back_inserter(u));
      if (u.size() > kMaxMergedK) break;
      qubits.swap(u);
      ++j;
    }
    if (j - i < 2) {
      out.push_back(run[i]);
    } else {
      storage.push_back(std::make_unique<PreparedGateF>(
          merge_diagonal_gates_f32(run.data() + i, j - i)));
      out.push_back(storage.back().get());
      saved += (j - i) - 1;
    }
    i = j;
  }
  run.swap(out);
  return saved;
}

GatePlanEntryF make_plan_f32(const PreparedGateF& gate, int b) {
  GatePlanEntryF e;
  e.gate = &gate;
  e.diagonal = gate.diagonal;
  if (!gate.diagonal) return e;
  std::vector<int> low_qubits;
  for (int q : gate.qubits) {  // ascending, so low qubits come first
    (q < b ? low_qubits : e.high_qubits).push_back(q);
  }
  e.low_k = static_cast<int>(low_qubits.size());
  e.dim_low = index_pow2(e.low_k);
  e.low_offsets = make_gate_offsets(low_qubits);
  e.low_expander = IndexExpander(low_qubits);
  e.low_outer = index_pow2(b - e.low_k);
  return e;
}

}  // namespace

bool block_run_eligible_f32(const PreparedGateF& gate, int block_exponent) {
  if (gate.diagonal) return true;
  const int last =
      gate.widened ? gate.widened->qubits.back() : gate.qubits.back();
  return last < block_exponent;
}

void apply_gate_run_f32(AmplitudeF* state, int num_qubits,
                        const PreparedGateF* const* gates, std::size_t count,
                        int block_exponent, const ApplyOptions& options) {
  QUASAR_CHECK(state != nullptr, "apply_gate_run_f32: null state");
  QUASAR_CHECK(count >= 1, "apply_gate_run_f32: empty run");
  QUASAR_CHECK(block_exponent >= 2 && block_exponent <= num_qubits,
               "apply_gate_run_f32: block exponent out of range");
  std::vector<GatePlanEntryF> plans;
  plans.reserve(count);
  for (std::size_t g = 0; g < count; ++g) {
    QUASAR_CHECK(gates[g] != nullptr, "apply_gate_run_f32: null gate");
    QUASAR_CHECK(gates[g]->qubits.back() < num_qubits,
                 "apply_gate_run_f32: bit-location out of range");
    QUASAR_CHECK(
        block_run_eligible_f32(*gates[g], block_exponent),
        "apply_gate_run_f32: gate not eligible at this block exponent");
    plans.push_back(make_plan_f32(*gates[g], block_exponent));
  }

  const int b = block_exponent;
  const Index block_size = index_pow2(b);
  const Index num_blocks = index_pow2(num_qubits - b);
  const int threads = resolve_threads_f32(options.num_threads, num_blocks);

#pragma omp parallel for schedule(static) num_threads(threads)
  for (std::int64_t bi = 0; bi < static_cast<std::int64_t>(num_blocks);
       ++bi) {
    const Index block_base = static_cast<Index>(bi) * block_size;
    AmplitudeF* const block = state + block_base;
    for (const GatePlanEntryF& e : plans) {
      if (!e.diagonal) {
        apply_gate_f32(block, b, *e.gate, 1);
        continue;
      }
      // diag + hi is the block's contiguous phase-table slice; the
      // shared noinline multiply keeps this bit-identical to the
      // full-state diagonal sweep.
      const AmplitudeF* const diag = e.gate->diag.data() +
                                     (gather_bits(block_base, e.high_qubits)
                                      << e.low_k);
      diagonal_multiply_range_f32(block, e.low_expander,
                                  e.low_offsets.data(), diag, e.dim_low, 0,
                                  e.low_outer);
    }
  }
}

void apply_gates_blocked_f32(AmplitudeF* state, int num_qubits,
                             const PreparedGateF* const* gates,
                             std::size_t count, const ApplyOptions& options,
                             BlockRunStats* stats) {
  BlockRunStats local;
  local.gates = count;
  const int b = effective_block_exponent(num_qubits, options);
  if (b < 0 || count == 0) {
    for (std::size_t g = 0; g < count; ++g) {
      apply_gate_f32(state, num_qubits, *gates[g], options.num_threads);
    }
    local.sweeps = count;
    if (stats) *stats = local;
    return;
  }

  std::vector<GateShape> shapes(count);
  for (std::size_t g = 0; g < count; ++g) {
    GateShape& s = shapes[g];
    s.eligible = block_run_eligible_f32(*gates[g], b);
    const std::vector<int>& qs =
        (!gates[g]->diagonal && gates[g]->widened)
            ? gates[g]->widened->qubits
            : gates[g]->qubits;
    for (int q : qs) {
      s.qubit_mask |= q < 64 ? (std::uint64_t{1} << q) : 0;
    }
  }

  const int min_run = effective_min_run_length(options);
  const std::vector<BlockPlanSegment> segments =
      plan_gate_runs(shapes, options.block_reorder);
  std::vector<const PreparedGateF*> run_gates;
  std::vector<std::unique_ptr<PreparedGateF>> merged_storage;
  for (const BlockPlanSegment& seg : segments) {
    if (static_cast<int>(seg.run.size()) >= min_run) {
      run_gates.clear();
      for (std::size_t g : seg.run) run_gates.push_back(gates[g]);
      if (options.merge_diagonals) {
        merged_storage.clear();
        local.coalesced +=
            coalesce_diagonal_spans_f32(run_gates, merged_storage);
      }
      apply_gate_run_f32(state, num_qubits, run_gates.data(),
                         run_gates.size(), b, options);
      local.runs += 1;
      local.run_gates += seg.run.size();
      local.sweeps += 1;
    } else {
      for (std::size_t g : seg.run) {
        apply_gate_f32(state, num_qubits, *gates[g], options.num_threads);
      }
      local.sweeps += seg.run.size();
    }
    for (std::size_t g : seg.solo) {
      apply_gate_f32(state, num_qubits, *gates[g], options.num_threads);
    }
    local.sweeps += seg.solo.size();
    if (!seg.solo.empty()) {
      const std::size_t first_solo = seg.solo.front();
      for (std::size_t g : seg.run) local.hoisted += g > first_solo;
    }
  }
  if (stats) *stats = local;
}

}  // namespace quasar
