#include "fp32/kernels_f32.hpp"

#include <immintrin.h>
#include <omp.h>

#include <algorithm>
#include <cstring>
#include <numeric>

#include "core/error.hpp"
#include "kernels/permute.hpp"

namespace quasar {

namespace {

int resolve_threads_f32(int requested, Index iterations) {
  int threads = requested > 0 ? requested : omp_get_max_threads();
  if (iterations < static_cast<Index>(threads)) {
    threads = static_cast<int>(iterations > 0 ? iterations : 1);
  }
  return threads;
}

inline void gather_f32(const AmplitudeF* state, Index base,
                       const Index* offsets, Index dim, Index run,
                       AmplitudeF* tmp) {
  if (run == 1) {
    for (Index t = 0; t < dim; ++t) tmp[t] = state[base + offsets[t]];
    return;
  }
  for (Index t = 0; t < dim; t += run) {
    std::memcpy(tmp + t, state + base + offsets[t],
                run * sizeof(AmplitudeF));
  }
}

inline void scatter_f32(AmplitudeF* state, Index base, const Index* offsets,
                        Index dim, Index run, const AmplitudeF* tmp) {
  if (run == 1) {
    for (Index t = 0; t < dim; ++t) state[base + offsets[t]] = tmp[t];
    return;
  }
  for (Index t = 0; t < dim; t += run) {
    std::memcpy(state + base + offsets[t], tmp + t,
                run * sizeof(AmplitudeF));
  }
}

#if defined(__AVX512F__) && defined(__AVX512DQ__)

/// 8 complex<float> lanes per vector.
struct F32Avx512 {
  using Vec = __m512;
  static constexpr int kWidth = 8;
  static Vec load(const float* p) { return _mm512_load_ps(p); }
  static void store(float* p, Vec v) { _mm512_store_ps(p, v); }
  static Vec set1(float x) { return _mm512_set1_ps(x); }
  static Vec zero() { return _mm512_setzero_ps(); }
  static Vec fmadd(Vec a, Vec b, Vec c) { return _mm512_fmadd_ps(a, b, c); }
};
#define QUASAR_F32_SIMD 1
using F32Traits = F32Avx512;

#elif defined(__AVX2__) && defined(__FMA__)

/// 4 complex<float> lanes per vector.
struct F32Avx2 {
  using Vec = __m256;
  static constexpr int kWidth = 4;
  static Vec load(const float* p) { return _mm256_load_ps(p); }
  static void store(float* p, Vec v) { _mm256_store_ps(p, v); }
  static Vec set1(float x) { return _mm256_set1_ps(x); }
  static Vec zero() { return _mm256_setzero_ps(); }
  static Vec fmadd(Vec a, Vec b, Vec c) { return _mm256_fmadd_ps(a, b, c); }
};
#define QUASAR_F32_SIMD 1
using F32Traits = F32Avx2;

#else
#define QUASAR_F32_SIMD 0
#endif

#if QUASAR_F32_SIMD

/// Register-resident column GEMV over a gathered (or in-place contiguous)
/// block, float lanes. Requires dim >= kWidth.
template <bool kDirect>
void gemv_f32(AmplitudeF* state, int num_qubits, const PreparedGateF& gate,
              int num_threads) {
  using Vec = F32Traits::Vec;
  constexpr int kW = F32Traits::kWidth;
  constexpr Index kMaxAcc = 16;
  const Index dim = gate.dim;
  const Index row_vecs = dim / kW;
  QUASAR_ASSERT(row_vecs >= 1 && row_vecs <= kMaxAcc);

  const Index outer = index_pow2(num_qubits - gate.k);
  const IndexExpander expander = gate.expander();
  const Index* offsets = gate.offsets.data();
  const Index run = gate.contig_run;
  const float* col_a = gate.col_a.data();
  const float* col_b = gate.col_b.data();
  const int threads = resolve_threads_f32(num_threads, outer);

#pragma omp parallel num_threads(threads)
  {
    AlignedVector<AmplitudeF> tmp(kDirect ? 0 : dim);
#pragma omp for schedule(static)
    for (std::int64_t ii = 0; ii < static_cast<std::int64_t>(outer); ++ii) {
      AmplitudeF* block;
      if constexpr (kDirect) {
        block = state + static_cast<Index>(ii) * dim;
      } else {
        const Index base = expander.expand(static_cast<Index>(ii));
        gather_f32(state, base, offsets, dim, run, tmp.data());
        block = tmp.data();
      }
      const float* blockf = reinterpret_cast<const float*>(block);
      Vec acc[kMaxAcc];
      for (Index b = 0; b < row_vecs; ++b) acc[b] = F32Traits::zero();
      for (Index col = 0; col < dim; ++col) {
        const Vec vr = F32Traits::set1(blockf[2 * col]);
        const Vec vi = F32Traits::set1(blockf[2 * col + 1]);
        const float* ca = col_a + col * dim * 2;
        const float* cb = col_b + col * dim * 2;
        for (Index b = 0; b < row_vecs; ++b) {
          acc[b] =
              F32Traits::fmadd(F32Traits::load(ca + b * 2 * kW), vr, acc[b]);
          acc[b] =
              F32Traits::fmadd(F32Traits::load(cb + b * 2 * kW), vi, acc[b]);
        }
      }
      float* outf = reinterpret_cast<float*>(block);
      for (Index b = 0; b < row_vecs; ++b) {
        F32Traits::store(outf + b * 2 * kW, acc[b]);
      }
      if constexpr (!kDirect) {
        const Index base = expander.expand(static_cast<Index>(ii));
        scatter_f32(state, base, offsets, dim, run, tmp.data());
      }
    }
  }
}

#endif  // QUASAR_F32_SIMD

}  // namespace

PreparedGateF prepare_gate_f32(const GateMatrix& matrix,
                               const std::vector<int>& bit_locations) {
  QUASAR_CHECK(matrix.num_qubits() ==
                   static_cast<int>(bit_locations.size()),
               "prepare_gate_f32: arity mismatch");
  QUASAR_CHECK(matrix.num_qubits() >= 1, "prepare_gate_f32: empty gate");

  PreparedGateF g;
  g.k = matrix.num_qubits();
  g.dim = index_pow2(g.k);

  std::vector<int> order(g.k);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    return bit_locations[a] < bit_locations[b];
  });
  g.qubits.resize(g.k);
  for (int j = 0; j < g.k; ++j) {
    g.qubits[j] = bit_locations[order[j]];
    if (j > 0) {
      QUASAR_CHECK(g.qubits[j] != g.qubits[j - 1],
                   "prepare_gate_f32: bit-locations must be distinct");
    }
  }
  g.matrix = matrix.permute_qubits(order);
  g.offsets = make_gate_offsets(g.qubits);

  int low = 0;
  while (low < g.k && g.qubits[low] == low) ++low;
  g.contig_run = index_pow2(low);

  g.diagonal = g.matrix.is_diagonal();
  if (g.diagonal) {
    for (const Amplitude& d : g.matrix.diagonal()) {
      g.diag.push_back(AmplitudeF{static_cast<float>(d.real()),
                                  static_cast<float>(d.imag())});
    }
  }

  g.col_a.resize(g.dim * g.dim * 2);
  g.col_b.resize(g.dim * g.dim * 2);
  for (Index i = 0; i < g.dim; ++i) {
    for (Index l = 0; l < g.dim; ++l) {
      const Amplitude m = g.matrix.at(l, i);
      const Index e = (i * g.dim + l) * 2;
      g.col_a[e + 0] = static_cast<float>(m.real());
      g.col_a[e + 1] = static_cast<float>(m.imag());
      g.col_b[e + 0] = static_cast<float>(-m.imag());
      g.col_b[e + 1] = static_cast<float>(m.real());
    }
  }
  return g;
}

void apply_gate_f32_scalar(AmplitudeF* state, int num_qubits,
                           const PreparedGateF& gate, int num_threads) {
  QUASAR_CHECK(gate.k <= num_qubits, "gate wider than the state");
  QUASAR_CHECK(gate.qubits.back() < num_qubits,
               "gate bit-location out of range");
  const Index dim = gate.dim;
  const Index outer = index_pow2(num_qubits - gate.k);
  const IndexExpander expander = gate.expander();
  const Index* offsets = gate.offsets.data();
  const GateMatrix& m = gate.matrix;
  const int threads = resolve_threads_f32(num_threads, outer);

#pragma omp parallel num_threads(threads)
  {
    std::vector<AmplitudeF> in(dim), out(dim);
#pragma omp for schedule(static)
    for (std::int64_t i = 0; i < static_cast<std::int64_t>(outer); ++i) {
      const Index base = expander.expand(static_cast<Index>(i));
      for (Index t = 0; t < dim; ++t) in[t] = state[base + offsets[t]];
      for (Index l = 0; l < dim; ++l) {
        AmplitudeF acc{0.0f, 0.0f};
        for (Index t = 0; t < dim; ++t) {
          const Amplitude e = m.at(l, t);
          acc += AmplitudeF{static_cast<float>(e.real()),
                            static_cast<float>(e.imag())} *
                 in[t];
        }
        out[l] = acc;
      }
      for (Index t = 0; t < dim; ++t) state[base + offsets[t]] = out[t];
    }
  }
}

void apply_diagonal_f32(AmplitudeF* state, int num_qubits,
                        const PreparedGateF& gate, int num_threads) {
  QUASAR_CHECK(gate.diagonal, "apply_diagonal_f32: gate is not diagonal");
  const Index dim = gate.dim;
  const Index outer = index_pow2(num_qubits - gate.k);
  const IndexExpander expander = gate.expander();
  const Index* offsets = gate.offsets.data();
  const AmplitudeF* diag = gate.diag.data();
  const int threads = resolve_threads_f32(num_threads, outer);

#pragma omp parallel for schedule(static) num_threads(threads)
  for (std::int64_t i = 0; i < static_cast<std::int64_t>(outer); ++i) {
    const Index base = expander.expand(static_cast<Index>(i));
    for (Index t = 0; t < dim; ++t) state[base + offsets[t]] *= diag[t];
  }
}

void apply_bit_swap_f32(AmplitudeF* state, int num_qubits, int p, int q,
                        int num_threads) {
  QUASAR_CHECK(p >= 0 && p < num_qubits && q >= 0 && q < num_qubits &&
                   p != q,
               "apply_bit_swap_f32: invalid bit-locations");
  if (p > q) std::swap(p, q);
  const IndexExpander expander(std::vector<int>{p, q});
  const Index outer = index_pow2(num_qubits - 2);
  const Index off_p = index_pow2(p);
  const Index off_q = index_pow2(q);
  const int threads = resolve_threads_f32(num_threads, outer);

#pragma omp parallel for schedule(static) num_threads(threads)
  for (std::int64_t i = 0; i < static_cast<std::int64_t>(outer); ++i) {
    const Index base = expander.expand(static_cast<Index>(i));
    std::swap(state[base + off_p], state[base + off_q]);
  }
}

void apply_fused_bit_permutation_f32(AmplitudeF* state, int num_qubits,
                                     const std::vector<int>& perm,
                                     AmplitudeF phase, int num_threads,
                                     std::size_t scratch_bytes) {
  QUASAR_CHECK(state != nullptr, "apply_fused_bit_permutation_f32: null");
  const PermutePlan plan = plan_bit_permutation(num_qubits, perm);
  detail::run_bit_permutation(state, plan, phase, num_threads,
                              scratch_bytes);
}

void apply_global_phase_f32(AmplitudeF* state, int num_qubits,
                            AmplitudeF phase, int num_threads) {
  const Index size = index_pow2(num_qubits);
  const int threads = resolve_threads_f32(num_threads, size);
#pragma omp parallel for schedule(static) num_threads(threads)
  for (std::int64_t i = 0; i < static_cast<std::int64_t>(size); ++i) {
    state[i] *= phase;
  }
}

void apply_gate_f32(AmplitudeF* state, int num_qubits,
                    const PreparedGateF& gate, int num_threads) {
  QUASAR_CHECK(state != nullptr, "apply_gate_f32: null state");
  QUASAR_CHECK(gate.k >= 1 && gate.k <= num_qubits,
               "apply_gate_f32: gate does not fit the state");
  QUASAR_CHECK(gate.qubits.back() < num_qubits,
               "apply_gate_f32: bit-location out of range");
  if (gate.diagonal) {
    apply_diagonal_f32(state, num_qubits, gate, num_threads);
    return;
  }
#if QUASAR_F32_SIMD
  constexpr int kW = F32Traits::kWidth;
  // Gates narrower than one float vector (k <= 2 with AVX-512) are
  // widened with identity spectator qubits on the lowest free
  // bit-locations so the GEMV has full lanes — the same trick the
  // double-precision dispatcher uses for 1-qubit gates.
  if (gate.dim < static_cast<Index>(kW)) {
    int want_k = gate.k;
    Index want_dim = gate.dim;
    while (want_dim < static_cast<Index>(kW)) {
      ++want_k;
      want_dim *= 2;
    }
    if (num_qubits >= want_k) {
      std::vector<int> widened_locations;
      std::vector<bool> taken(num_qubits, false);
      for (int q : gate.qubits) taken[q] = true;
      for (int q = 0; q < num_qubits &&
                      static_cast<int>(widened_locations.size()) <
                          want_k - gate.k;
           ++q) {
        if (!taken[q]) widened_locations.push_back(q);
      }
      // Gate qubits keep their cluster-local positions appended last;
      // embed() places matrix qubit j at the given position.
      std::vector<int> positions;
      std::vector<int> all_locations = widened_locations;
      all_locations.insert(all_locations.end(), gate.qubits.begin(),
                           gate.qubits.end());
      std::sort(all_locations.begin(), all_locations.end());
      for (int q : gate.qubits) {
        const auto it = std::lower_bound(all_locations.begin(),
                                         all_locations.end(), q);
        positions.push_back(static_cast<int>(it - all_locations.begin()));
      }
      const PreparedGateF widened = prepare_gate_f32(
          gate.matrix.embed(want_k, positions), all_locations);
      apply_gate_f32(state, num_qubits, widened, num_threads);
      return;
    }
  }
  const Index row_vecs = gate.dim / kW;
  if (row_vecs >= 1 && row_vecs <= 16) {
    if (gate.contig_run == gate.dim) {
      gemv_f32<true>(state, num_qubits, gate, num_threads);
    } else {
      gemv_f32<false>(state, num_qubits, gate, num_threads);
    }
    return;
  }
#endif
  apply_gate_f32_scalar(state, num_qubits, gate, num_threads);
}

}  // namespace quasar
