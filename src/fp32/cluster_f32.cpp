#include "fp32/cluster_f32.hpp"

#include <omp.h>

#include <algorithm>
#include <cmath>
#include <complex>
#include <cstdint>
#include <cstring>

#include "core/aligned.hpp"
#include "core/error.hpp"
#include "fp32/kernels_f32.hpp"
#include "kernels/permute.hpp"
#include "obs/histogram.hpp"
#include "obs/names.hpp"
#include "obs/trace.hpp"
#include "runtime/proc_transport.hpp"

namespace quasar {

Real CommunicatorF::norm_squared() {
  Real total = 0.0;
  const int ranks = num_ranks();
  const std::int64_t count = static_cast<std::int64_t>(local_size());
  for (int r = 0; r < ranks; ++r) {
    const AmplitudeF* data = slice(r);
#pragma omp parallel for schedule(static) reduction(+ : total)
    for (std::int64_t i = 0; i < count; ++i) {
      total += static_cast<Real>(data[i].real()) * data[i].real() +
               static_cast<Real>(data[i].imag()) * data[i].imag();
    }
  }
  return total;
}

namespace {

/// In-process fp32 backend: the slices and primitives that used to live
/// inline in DistributedSimulatorF, unchanged arithmetic.
class VirtualCommunicatorF final : public CommunicatorF {
 public:
  VirtualCommunicatorF(int num_qubits, int num_local, int num_threads,
                       std::size_t bounce_buffer_bytes)
      : n_(num_qubits), l_(num_local), num_threads_(num_threads),
        bounce_buffer_bytes_(bounce_buffer_bytes),
        num_ranks_(checked_int(index_pow2(n_ - l_), "fp32 rank count")),
        local_size_(index_pow2(l_)) {
    buffers_.resize(static_cast<std::size_t>(num_ranks_));
    for (auto& buffer : buffers_) {
      buffer.assign(static_cast<std::size_t>(local_size_),
                    AmplitudeF{0.0f, 0.0f});
    }
  }

  int num_qubits() const override { return n_; }
  int num_local() const override { return l_; }
  int num_ranks() const override { return num_ranks_; }
  bool multiprocess() const override { return false; }

  void init_basis(Index index) override {
    for (auto& buffer : buffers_) {
      std::fill(buffer.begin(), buffer.end(), AmplitudeF{0.0f, 0.0f});
    }
    buffers_[static_cast<std::size_t>(index >> l_)]
            [index & (local_size_ - 1)] = 1.0f;
  }

  void init_uniform() override {
    const float value = static_cast<float>(std::pow(2.0, -0.5 * n_));
    for (auto& buffer : buffers_) {
      std::fill(buffer.begin(), buffer.end(), AmplitudeF{value, 0.0f});
    }
  }

  void alltoall_swap(const std::vector<int>& global_locations,
                     const std::vector<int>& local_positions) override;
  void local_permute(const std::vector<int>& perm,
                     const std::vector<Amplitude>* rank_phase) override;

  void permute_ranks(const std::vector<Index>& source_of) override {
    QUASAR_OBS_SPAN("renumber", "permute_ranks");
    QUASAR_CHECK(static_cast<int>(source_of.size()) == num_ranks_,
                 "permute_ranks: must cover every rank");
    std::vector<AlignedVector<AmplitudeF>> next(buffers_.size());
    for (int r = 0; r < num_ranks_; ++r) {
      next[static_cast<std::size_t>(r)] =
          std::move(buffers_[static_cast<std::size_t>(source_of[r])]);
    }
    buffers_ = std::move(next);
    ++stats_.rank_renumberings;
    obs::count(obs::names::kCommRankRenumberings);
  }

  void apply_gate_all(const GateMatrix& matrix,
                      const std::vector<int>& local_locations) override {
    const PreparedGateF prepared = prepare_gate_f32(matrix, local_locations);
    for (auto& buffer : buffers_) {
      apply_gate_f32(buffer.data(), l_, prepared, num_threads_);
    }
  }

  void apply_gate_rank(int rank, const GateMatrix& matrix,
                       const std::vector<int>& local_locations) override {
    const PreparedGateF prepared = prepare_gate_f32(matrix, local_locations);
    apply_gate_f32(buffers_[static_cast<std::size_t>(rank)].data(), l_,
                   prepared, num_threads_);
  }

  const AmplitudeF* slice(int rank) override {
    return buffers_[static_cast<std::size_t>(rank)].data();
  }

  void write_slice(int rank, const AmplitudeF* data) override {
    std::memcpy(buffers_[static_cast<std::size_t>(rank)].data(), data,
                static_cast<std::size_t>(local_size_) * sizeof(AmplitudeF));
  }

  CommStats stats() override { return stats_; }

 private:
  int n_;
  int l_;
  int num_threads_;
  std::size_t bounce_buffer_bytes_;
  int num_ranks_;
  Index local_size_;
  std::vector<AlignedVector<AmplitudeF>> buffers_;
  CommStats stats_;
};

void VirtualCommunicatorF::alltoall_swap(
    const std::vector<int>& global_locations,
    const std::vector<int>& local_positions) {
  // In-place chunked exchange, mirroring VirtualCluster::alltoall_swap:
  // the bit-transposition involution pairs every amplitude with a unique
  // partner, so the state is never shadow-copied.
  obs::ScopedSpan obs_span("exchange", "alltoall");
  const int q = static_cast<int>(global_locations.size());
  const int l = l_;
  const Index block = index_pow2(l - q);
  const int ranks = num_ranks_;

  std::vector<int> sorted_locals = local_positions;
  std::sort(sorted_locals.begin(), sorted_locals.end());
  const int run_bits = sorted_locals.front();
  const Index run = index_pow2(run_bits);
  const Index num_runs = index_pow2(l - q - run_bits);
  const IndexExpander expander(sorted_locals);

  const int threads = omp_get_max_threads();
  Index chunk = run;
  const Index budget_amps = std::max<std::size_t>(
      std::size_t{1},
      bounce_buffer_bytes_ /
          (static_cast<std::size_t>(threads) * sizeof(AmplitudeF)));
  if (chunk > budget_amps) chunk = Index{1} << ilog2(budget_amps);
  const Index chunks_per_run = run / chunk;

  struct Orbit {
    AmplitudeF* a;
    AmplitudeF* b;
  };
  std::vector<Orbit> orbits;
  for (int r = 0; r < ranks; ++r) {
    Index theirs = 0;
    for (int i = 0; i < q; ++i) {
      theirs |= static_cast<Index>(get_bit(static_cast<Index>(r),
                                           global_locations[i] - l))
                << i;
    }
    for (Index mine = 0; mine < theirs; ++mine) {
      Index partner = static_cast<Index>(r);
      for (int i = 0; i < q; ++i) {
        partner = set_bit(partner, global_locations[i] - l,
                          get_bit(mine, i));
      }
      Index off_mine = 0, off_theirs = 0;
      for (int i = 0; i < q; ++i) {
        off_mine |= static_cast<Index>(get_bit(mine, i))
                    << local_positions[i];
        off_theirs |= static_cast<Index>(get_bit(theirs, i))
                      << local_positions[i];
      }
      orbits.push_back(
          Orbit{buffers_[static_cast<std::size_t>(r)].data() + off_mine,
                buffers_[static_cast<std::size_t>(partner)].data() +
                    off_theirs});
    }
  }

  const std::int64_t num_orbits = static_cast<std::int64_t>(orbits.size());
  const std::int64_t tasks =
      static_cast<std::int64_t>(num_runs * chunks_per_run);
  // Hoisted so the per-chunk latency probe costs nothing (not even the
  // session load) in the untraced inner loop.
  const bool record_latency = obs::enabled();
#pragma omp parallel num_threads(threads)
  {
    AlignedVector<AmplitudeF> bounce(chunk);
#pragma omp for collapse(2) schedule(static)
    for (std::int64_t o = 0; o < num_orbits; ++o) {
      for (std::int64_t t = 0; t < tasks; ++t) {
        const Index run_idx = static_cast<Index>(t) / chunks_per_run;
        const Index coff = (static_cast<Index>(t) % chunks_per_run) * chunk;
        const Index base = expander.expand(run_idx << run_bits) + coff;
        AmplitudeF* pa = orbits[o].a + base;
        AmplitudeF* pb = orbits[o].b + base;
        const std::size_t bytes = chunk * sizeof(AmplitudeF);
        if (record_latency) {
          obs::ScopedLatency chunk_latency(obs::names::kCommExchangeChunkNs);
          std::memcpy(bounce.data(), pa, bytes);
          std::memcpy(pa, pb, bytes);
          std::memcpy(pb, bounce.data(), bytes);
        } else {
          std::memcpy(bounce.data(), pa, bytes);
          std::memcpy(pa, pb, bytes);
          std::memcpy(pb, bounce.data(), bytes);
        }
      }
    }
  }

  ++stats_.alltoalls;
  // Half the bytes of the double-precision swap: the Sec. 5 win.
  const std::uint64_t sent = (local_size_ - block) * sizeof(AmplitudeF);
  stats_.bytes_sent_per_rank += sent;
  const std::uint64_t bounce_bytes =
      static_cast<std::uint64_t>(threads) * chunk * sizeof(AmplitudeF);
  if (bounce_bytes > stats_.peak_bounce_bytes) {
    stats_.peak_bounce_bytes = bounce_bytes;
  }
  obs_span.set_arg("bytes_per_rank", static_cast<std::int64_t>(sent));
  obs::count(obs::names::kCommAlltoalls);
  obs::count(obs::names::kCommBytesSentPerRank, sent);
  obs::count_peak(obs::names::kCommPeakBounceBytes, bounce_bytes);
}

void VirtualCommunicatorF::local_permute(
    const std::vector<int>& perm, const std::vector<Amplitude>* rank_phase) {
  const PermutePlan plan = plan_bit_permutation(l_, perm);
  bool any_phase = false;
  if (rank_phase != nullptr) {
    QUASAR_CHECK(static_cast<int>(rank_phase->size()) == num_ranks_,
                 "local_permute: one phase per rank");
    for (const Amplitude& p : *rank_phase) {
      any_phase |= p != Amplitude{1.0, 0.0};
    }
  }
  if (plan.identity && !any_phase) return;

  const std::uint64_t sweep_bytes =
      static_cast<std::uint64_t>(num_ranks_) * local_size_ *
      sizeof(AmplitudeF);
  QUASAR_OBS_SPAN("permute", "local_permute", "bytes",
                  static_cast<std::int64_t>(sweep_bytes));
  const int threads =
      num_threads_ > 0 ? num_threads_ : omp_get_max_threads();
  const std::size_t scratch_bytes = std::max<std::size_t>(
      sizeof(AmplitudeF),
      bounce_buffer_bytes_ / static_cast<std::size_t>(threads));
  for (int r = 0; r < num_ranks_; ++r) {
    const AmplitudeF phase =
        rank_phase != nullptr
            ? AmplitudeF{static_cast<float>((*rank_phase)[r].real()),
                         static_cast<float>((*rank_phase)[r].imag())}
            : AmplitudeF{1.0f, 0.0f};
    detail::run_bit_permutation(buffers_[static_cast<std::size_t>(r)].data(),
                                plan, phase, num_threads_, scratch_bytes);
  }

  ++stats_.local_permutation_sweeps;
  stats_.local_permutation_bytes += sweep_bytes;
  obs::count(obs::names::kCommLocalPermutationSweeps);
  obs::count(obs::names::kCommLocalPermutationBytes, sweep_bytes);
  if (!plan.identity) {
    const std::uint64_t brick_bytes =
        index_pow2(plan.brick_bits) * sizeof(AmplitudeF);
    const std::uint64_t bounce_bytes =
        static_cast<std::uint64_t>(threads) *
        std::min<std::uint64_t>(scratch_bytes, brick_bytes);
    if (bounce_bytes > stats_.peak_bounce_bytes) {
      stats_.peak_bounce_bytes = bounce_bytes;
    }
    obs::count_peak(obs::names::kCommPeakBounceBytes, bounce_bytes);
  }
}

/// Engine traits for the fp32 proc backend (see proc_transport.hpp).
/// Amplitudes live in plain aligned worker memory; the wire carries the
/// gate matrices and deferred phases in double, cast to float at the
/// worker exactly where the virtual backend casts them.
struct ProcTraitsF32 {
  using Amp = AmplitudeF;
  using Slice = AlignedVector<AmplitudeF>;
  static Slice make_slice(Index count, const StorageOptions& storage) {
    (void)storage;  // fp32 proc slices are always in worker memory
    Slice slice;
    slice.assign(static_cast<std::size_t>(count), AmplitudeF{0.0f, 0.0f});
    return slice;
  }
  static Amp* data(Slice& slice) { return slice.data(); }
  static void apply(Amp* state, int num_local, const GateMatrix& matrix,
                    const std::vector<int>& locations,
                    const ApplyOptions& options) {
    apply_gate_f32(state, num_local, prepare_gate_f32(matrix, locations),
                   options.num_threads);
  }
};

/// fp32 multi-process backend: the shared proc machinery with fp32 traits.
class ProcCommunicatorF final : public CommunicatorF {
 public:
  ProcCommunicatorF(int num_qubits, int num_local,
                    std::size_t bounce_buffer_bytes)
      : impl_(num_qubits, num_local,
              [bounce_buffer_bytes]() {
                StorageOptions storage;
                storage.bounce_buffer_bytes = bounce_buffer_bytes;
                return storage;
              }(),
              ApplyOptions{}) {}

  int num_qubits() const override { return impl_.num_qubits(); }
  int num_local() const override { return impl_.num_local(); }
  int num_ranks() const override { return impl_.num_ranks(); }
  bool multiprocess() const override { return true; }

  void init_basis(Index index) override { impl_.init_basis(index); }
  void init_uniform() override { impl_.init_uniform(); }

  void alltoall_swap(const std::vector<int>& global_locations,
                     const std::vector<int>& local_positions) override {
    impl_.alltoall_swap(global_locations, local_positions);
  }

  void local_permute(const std::vector<int>& perm,
                     const std::vector<Amplitude>* rank_phase) override {
    std::vector<std::complex<double>> phases;
    bool any_phase = false;
    if (rank_phase != nullptr) {
      QUASAR_CHECK(static_cast<int>(rank_phase->size()) == num_ranks(),
                   "local_permute: one phase per rank");
      phases.assign(rank_phase->begin(), rank_phase->end());
      for (const Amplitude& p : *rank_phase) {
        any_phase |= p != Amplitude{1.0, 0.0};
      }
    }
    impl_.local_permute(perm, phases, any_phase);
  }

  void permute_ranks(const std::vector<Index>& source_of) override {
    impl_.permute_ranks(source_of);
  }

  void apply_gate_all(const GateMatrix& matrix,
                      const std::vector<int>& local_locations) override {
    impl_.apply_gate_all(matrix, local_locations);
  }
  void apply_gate_rank(int rank, const GateMatrix& matrix,
                       const std::vector<int>& local_locations) override {
    impl_.apply_gate_rank(rank, matrix, local_locations);
  }

  const AmplitudeF* slice(int rank) override { return impl_.slice(rank); }
  void write_slice(int rank, const AmplitudeF* data) override {
    impl_.write_slice(rank, data);
  }

  CommStats stats() override { return impl_.stats(); }

  bool kill_rank_for_fault(std::size_t stage) override {
    impl_.kill_rank_for_fault(stage);
    return true;
  }

 private:
  proc::ProcClusterT<ProcTraitsF32> impl_;
};

}  // namespace

std::unique_ptr<CommunicatorF> make_communicator_f32(
    int num_qubits, int num_local, int num_threads,
    std::size_t bounce_buffer_bytes, TransportKind transport) {
  switch (transport) {
    case TransportKind::kVirtual:
      return std::make_unique<VirtualCommunicatorF>(
          num_qubits, num_local, num_threads, bounce_buffer_bytes);
    case TransportKind::kProc:
      return std::make_unique<ProcCommunicatorF>(num_qubits, num_local,
                                                 bounce_buffer_bytes);
  }
  throw Error("make_communicator_f32: unknown transport");
}

}  // namespace quasar
