/// \file simulator_f32.hpp
/// \brief Single-precision circuit simulator (paper Sec. 5).
#pragma once

#include "circuit/circuit.hpp"
#include "fp32/kernels_f32.hpp"
#include "fp32/statevector_f32.hpp"

namespace quasar {

/// Single-address-space simulator over a single-precision state.
/// API mirrors Simulator; gate matrices remain double precision and are
/// rounded to float at preparation time.
class SimulatorF {
 public:
  explicit SimulatorF(StateVectorF& state, int num_threads = 0);

  void apply(const GateMatrix& matrix, const std::vector<int>& qubits);
  void apply(const PreparedGateF& gate);
  void apply(const GateOp& op);

  /// Runs a circuit gate by gate.
  void run(const Circuit& circuit);

 private:
  StateVectorF* state_;
  int num_threads_;
};

}  // namespace quasar
