file(REMOVE_RECURSE
  "CMakeFiles/noise_study.dir/noise_study.cpp.o"
  "CMakeFiles/noise_study.dir/noise_study.cpp.o.d"
  "noise_study"
  "noise_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/noise_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
