# Empty compiler generated dependencies file for algorithms.
# This may be replaced when dependencies are built.
