file(REMOVE_RECURSE
  "CMakeFiles/algorithms.dir/algorithms.cpp.o"
  "CMakeFiles/algorithms.dir/algorithms.cpp.o.d"
  "algorithms"
  "algorithms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/algorithms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
