file(REMOVE_RECURSE
  "CMakeFiles/supremacy_entropy.dir/supremacy_entropy.cpp.o"
  "CMakeFiles/supremacy_entropy.dir/supremacy_entropy.cpp.o.d"
  "supremacy_entropy"
  "supremacy_entropy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/supremacy_entropy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
