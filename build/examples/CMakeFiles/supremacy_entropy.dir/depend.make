# Empty dependencies file for supremacy_entropy.
# This may be replaced when dependencies are built.
