# Empty compiler generated dependencies file for scheduler_report.
# This may be replaced when dependencies are built.
