file(REMOVE_RECURSE
  "CMakeFiles/scheduler_report.dir/scheduler_report.cpp.o"
  "CMakeFiles/scheduler_report.dir/scheduler_report.cpp.o.d"
  "scheduler_report"
  "scheduler_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scheduler_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
