# Empty compiler generated dependencies file for quasar_cli.
# This may be replaced when dependencies are built.
