file(REMOVE_RECURSE
  "CMakeFiles/quasar_cli.dir/quasar_cli.cpp.o"
  "CMakeFiles/quasar_cli.dir/quasar_cli.cpp.o.d"
  "quasar_cli"
  "quasar_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quasar_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
