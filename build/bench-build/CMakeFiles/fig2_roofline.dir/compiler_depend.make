# Empty compiler generated dependencies file for fig2_roofline.
# This may be replaced when dependencies are built.
