file(REMOVE_RECURSE
  "../bench/fig2_roofline"
  "../bench/fig2_roofline.pdb"
  "CMakeFiles/fig2_roofline.dir/fig2_roofline.cpp.o"
  "CMakeFiles/fig2_roofline.dir/fig2_roofline.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_roofline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
