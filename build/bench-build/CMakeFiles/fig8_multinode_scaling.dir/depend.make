# Empty dependencies file for fig8_multinode_scaling.
# This may be replaced when dependencies are built.
