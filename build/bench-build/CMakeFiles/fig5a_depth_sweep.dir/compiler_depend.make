# Empty compiler generated dependencies file for fig5a_depth_sweep.
# This may be replaced when dependencies are built.
