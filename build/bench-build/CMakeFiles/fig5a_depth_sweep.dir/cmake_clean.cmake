file(REMOVE_RECURSE
  "../bench/fig5a_depth_sweep"
  "../bench/fig5a_depth_sweep.pdb"
  "CMakeFiles/fig5a_depth_sweep.dir/fig5a_depth_sweep.cpp.o"
  "CMakeFiles/fig5a_depth_sweep.dir/fig5a_depth_sweep.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5a_depth_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
