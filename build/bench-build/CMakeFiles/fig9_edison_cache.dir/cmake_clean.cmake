file(REMOVE_RECURSE
  "../bench/fig9_edison_cache"
  "../bench/fig9_edison_cache.pdb"
  "CMakeFiles/fig9_edison_cache.dir/fig9_edison_cache.cpp.o"
  "CMakeFiles/fig9_edison_cache.dir/fig9_edison_cache.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_edison_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
