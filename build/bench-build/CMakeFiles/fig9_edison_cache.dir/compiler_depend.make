# Empty compiler generated dependencies file for fig9_edison_cache.
# This may be replaced when dependencies are built.
