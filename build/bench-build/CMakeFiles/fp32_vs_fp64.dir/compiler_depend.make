# Empty compiler generated dependencies file for fp32_vs_fp64.
# This may be replaced when dependencies are built.
