file(REMOVE_RECURSE
  "../bench/fp32_vs_fp64"
  "../bench/fp32_vs_fp64.pdb"
  "CMakeFiles/fp32_vs_fp64.dir/fp32_vs_fp64.cpp.o"
  "CMakeFiles/fp32_vs_fp64.dir/fp32_vs_fp64.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fp32_vs_fp64.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
