# Empty dependencies file for outlook_49qubits.
# This may be replaced when dependencies are built.
