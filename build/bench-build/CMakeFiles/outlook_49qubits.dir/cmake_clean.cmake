file(REMOVE_RECURSE
  "../bench/outlook_49qubits"
  "../bench/outlook_49qubits.pdb"
  "CMakeFiles/outlook_49qubits.dir/outlook_49qubits.cpp.o"
  "CMakeFiles/outlook_49qubits.dir/outlook_49qubits.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/outlook_49qubits.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
