file(REMOVE_RECURSE
  "../bench/fig6_cache_assoc"
  "../bench/fig6_cache_assoc.pdb"
  "CMakeFiles/fig6_cache_assoc.dir/fig6_cache_assoc.cpp.o"
  "CMakeFiles/fig6_cache_assoc.dir/fig6_cache_assoc.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_cache_assoc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
