# Empty dependencies file for fig6_cache_assoc.
# This may be replaced when dependencies are built.
