# Empty dependencies file for fig5b_qubit_sweep.
# This may be replaced when dependencies are built.
