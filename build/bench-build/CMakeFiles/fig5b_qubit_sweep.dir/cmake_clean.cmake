file(REMOVE_RECURSE
  "../bench/fig5b_qubit_sweep"
  "../bench/fig5b_qubit_sweep.pdb"
  "CMakeFiles/fig5b_qubit_sweep.dir/fig5b_qubit_sweep.cpp.o"
  "CMakeFiles/fig5b_qubit_sweep.dir/fig5b_qubit_sweep.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5b_qubit_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
