# Empty compiler generated dependencies file for sec421_single_node.
# This may be replaced when dependencies are built.
