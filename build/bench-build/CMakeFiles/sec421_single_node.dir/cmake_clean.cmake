file(REMOVE_RECURSE
  "../bench/sec421_single_node"
  "../bench/sec421_single_node.pdb"
  "CMakeFiles/sec421_single_node.dir/sec421_single_node.cpp.o"
  "CMakeFiles/sec421_single_node.dir/sec421_single_node.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec421_single_node.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
