file(REMOVE_RECURSE
  "../bench/fig10_edison_scaling"
  "../bench/fig10_edison_scaling.pdb"
  "CMakeFiles/fig10_edison_scaling.dir/fig10_edison_scaling.cpp.o"
  "CMakeFiles/fig10_edison_scaling.dir/fig10_edison_scaling.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_edison_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
