# Empty compiler generated dependencies file for table2_runs.
# This may be replaced when dependencies are built.
