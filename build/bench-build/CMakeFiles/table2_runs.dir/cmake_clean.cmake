file(REMOVE_RECURSE
  "../bench/table2_runs"
  "../bench/table2_runs.pdb"
  "CMakeFiles/table2_runs.dir/table2_runs.cpp.o"
  "CMakeFiles/table2_runs.dir/table2_runs.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_runs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
