# Empty dependencies file for table1_clusters.
# This may be replaced when dependencies are built.
