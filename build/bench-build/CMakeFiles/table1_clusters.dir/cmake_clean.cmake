file(REMOVE_RECURSE
  "../bench/table1_clusters"
  "../bench/table1_clusters.pdb"
  "CMakeFiles/table1_clusters.dir/table1_clusters.cpp.o"
  "CMakeFiles/table1_clusters.dir/table1_clusters.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_clusters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
