# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/matrix_test[1]_include.cmake")
include("/root/repo/build/tests/standard_gates_test[1]_include.cmake")
include("/root/repo/build/tests/circuit_test[1]_include.cmake")
include("/root/repo/build/tests/supremacy_test[1]_include.cmake")
include("/root/repo/build/tests/kernels_test[1]_include.cmake")
include("/root/repo/build/tests/swap_test[1]_include.cmake")
include("/root/repo/build/tests/statevector_test[1]_include.cmake")
include("/root/repo/build/tests/measure_test[1]_include.cmake")
include("/root/repo/build/tests/sched_test[1]_include.cmake")
include("/root/repo/build/tests/conditional_test[1]_include.cmake")
include("/root/repo/build/tests/virtual_cluster_test[1]_include.cmake")
include("/root/repo/build/tests/distributed_test[1]_include.cmake")
include("/root/repo/build/tests/baseline_test[1]_include.cmake")
include("/root/repo/build/tests/perfmodel_test[1]_include.cmake")
include("/root/repo/build/tests/autotune_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/report_test[1]_include.cmake")
include("/root/repo/build/tests/fp32_test[1]_include.cmake")
include("/root/repo/build/tests/observable_test[1]_include.cmake")
include("/root/repo/build/tests/schedule_io_test[1]_include.cmake")
include("/root/repo/build/tests/rank_storage_test[1]_include.cmake")
include("/root/repo/build/tests/executor_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/edge_test[1]_include.cmake")
