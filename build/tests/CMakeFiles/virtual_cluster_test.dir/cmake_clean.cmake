file(REMOVE_RECURSE
  "CMakeFiles/virtual_cluster_test.dir/virtual_cluster_test.cpp.o"
  "CMakeFiles/virtual_cluster_test.dir/virtual_cluster_test.cpp.o.d"
  "virtual_cluster_test"
  "virtual_cluster_test.pdb"
  "virtual_cluster_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/virtual_cluster_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
