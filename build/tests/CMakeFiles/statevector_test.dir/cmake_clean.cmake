file(REMOVE_RECURSE
  "CMakeFiles/statevector_test.dir/statevector_test.cpp.o"
  "CMakeFiles/statevector_test.dir/statevector_test.cpp.o.d"
  "statevector_test"
  "statevector_test.pdb"
  "statevector_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/statevector_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
