# Empty compiler generated dependencies file for statevector_test.
# This may be replaced when dependencies are built.
