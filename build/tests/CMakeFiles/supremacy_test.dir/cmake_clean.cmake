file(REMOVE_RECURSE
  "CMakeFiles/supremacy_test.dir/supremacy_test.cpp.o"
  "CMakeFiles/supremacy_test.dir/supremacy_test.cpp.o.d"
  "supremacy_test"
  "supremacy_test.pdb"
  "supremacy_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/supremacy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
