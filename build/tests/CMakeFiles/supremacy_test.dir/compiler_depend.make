# Empty compiler generated dependencies file for supremacy_test.
# This may be replaced when dependencies are built.
