
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/fp32_test.cpp" "tests/CMakeFiles/fp32_test.dir/fp32_test.cpp.o" "gcc" "tests/CMakeFiles/fp32_test.dir/fp32_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/fp32/CMakeFiles/quasar_fp32.dir/DependInfo.cmake"
  "/root/repo/build/src/simulator/CMakeFiles/quasar_simulator.dir/DependInfo.cmake"
  "/root/repo/build/src/circuit/CMakeFiles/quasar_circuit.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/quasar_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/quasar_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/kernels/CMakeFiles/quasar_kernels.dir/DependInfo.cmake"
  "/root/repo/build/src/gates/CMakeFiles/quasar_gates.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/quasar_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
