# Empty compiler generated dependencies file for fp32_test.
# This may be replaced when dependencies are built.
