file(REMOVE_RECURSE
  "CMakeFiles/fp32_test.dir/fp32_test.cpp.o"
  "CMakeFiles/fp32_test.dir/fp32_test.cpp.o.d"
  "fp32_test"
  "fp32_test.pdb"
  "fp32_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fp32_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
