file(REMOVE_RECURSE
  "CMakeFiles/observable_test.dir/observable_test.cpp.o"
  "CMakeFiles/observable_test.dir/observable_test.cpp.o.d"
  "observable_test"
  "observable_test.pdb"
  "observable_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/observable_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
