file(REMOVE_RECURSE
  "CMakeFiles/rank_storage_test.dir/rank_storage_test.cpp.o"
  "CMakeFiles/rank_storage_test.dir/rank_storage_test.cpp.o.d"
  "rank_storage_test"
  "rank_storage_test.pdb"
  "rank_storage_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rank_storage_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
