# Empty dependencies file for rank_storage_test.
# This may be replaced when dependencies are built.
