file(REMOVE_RECURSE
  "CMakeFiles/standard_gates_test.dir/standard_gates_test.cpp.o"
  "CMakeFiles/standard_gates_test.dir/standard_gates_test.cpp.o.d"
  "standard_gates_test"
  "standard_gates_test.pdb"
  "standard_gates_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/standard_gates_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
