# Empty dependencies file for standard_gates_test.
# This may be replaced when dependencies are built.
