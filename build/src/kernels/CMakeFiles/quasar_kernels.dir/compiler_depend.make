# Empty compiler generated dependencies file for quasar_kernels.
# This may be replaced when dependencies are built.
