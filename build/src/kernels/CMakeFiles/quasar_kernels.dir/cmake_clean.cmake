file(REMOVE_RECURSE
  "CMakeFiles/quasar_kernels.dir/autotune.cpp.o"
  "CMakeFiles/quasar_kernels.dir/autotune.cpp.o.d"
  "CMakeFiles/quasar_kernels.dir/dispatch.cpp.o"
  "CMakeFiles/quasar_kernels.dir/dispatch.cpp.o.d"
  "CMakeFiles/quasar_kernels.dir/naive.cpp.o"
  "CMakeFiles/quasar_kernels.dir/naive.cpp.o.d"
  "CMakeFiles/quasar_kernels.dir/prepared_gate.cpp.o"
  "CMakeFiles/quasar_kernels.dir/prepared_gate.cpp.o.d"
  "CMakeFiles/quasar_kernels.dir/scalar.cpp.o"
  "CMakeFiles/quasar_kernels.dir/scalar.cpp.o.d"
  "CMakeFiles/quasar_kernels.dir/simd.cpp.o"
  "CMakeFiles/quasar_kernels.dir/simd.cpp.o.d"
  "CMakeFiles/quasar_kernels.dir/swap.cpp.o"
  "CMakeFiles/quasar_kernels.dir/swap.cpp.o.d"
  "libquasar_kernels.a"
  "libquasar_kernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quasar_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
