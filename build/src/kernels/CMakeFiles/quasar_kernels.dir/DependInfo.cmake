
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kernels/autotune.cpp" "src/kernels/CMakeFiles/quasar_kernels.dir/autotune.cpp.o" "gcc" "src/kernels/CMakeFiles/quasar_kernels.dir/autotune.cpp.o.d"
  "/root/repo/src/kernels/dispatch.cpp" "src/kernels/CMakeFiles/quasar_kernels.dir/dispatch.cpp.o" "gcc" "src/kernels/CMakeFiles/quasar_kernels.dir/dispatch.cpp.o.d"
  "/root/repo/src/kernels/naive.cpp" "src/kernels/CMakeFiles/quasar_kernels.dir/naive.cpp.o" "gcc" "src/kernels/CMakeFiles/quasar_kernels.dir/naive.cpp.o.d"
  "/root/repo/src/kernels/prepared_gate.cpp" "src/kernels/CMakeFiles/quasar_kernels.dir/prepared_gate.cpp.o" "gcc" "src/kernels/CMakeFiles/quasar_kernels.dir/prepared_gate.cpp.o.d"
  "/root/repo/src/kernels/scalar.cpp" "src/kernels/CMakeFiles/quasar_kernels.dir/scalar.cpp.o" "gcc" "src/kernels/CMakeFiles/quasar_kernels.dir/scalar.cpp.o.d"
  "/root/repo/src/kernels/simd.cpp" "src/kernels/CMakeFiles/quasar_kernels.dir/simd.cpp.o" "gcc" "src/kernels/CMakeFiles/quasar_kernels.dir/simd.cpp.o.d"
  "/root/repo/src/kernels/swap.cpp" "src/kernels/CMakeFiles/quasar_kernels.dir/swap.cpp.o" "gcc" "src/kernels/CMakeFiles/quasar_kernels.dir/swap.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/gates/CMakeFiles/quasar_gates.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/quasar_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
