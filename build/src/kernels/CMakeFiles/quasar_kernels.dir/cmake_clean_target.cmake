file(REMOVE_RECURSE
  "libquasar_kernels.a"
)
