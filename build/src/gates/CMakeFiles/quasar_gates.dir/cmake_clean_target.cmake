file(REMOVE_RECURSE
  "libquasar_gates.a"
)
