file(REMOVE_RECURSE
  "CMakeFiles/quasar_gates.dir/matrix.cpp.o"
  "CMakeFiles/quasar_gates.dir/matrix.cpp.o.d"
  "CMakeFiles/quasar_gates.dir/standard.cpp.o"
  "CMakeFiles/quasar_gates.dir/standard.cpp.o.d"
  "libquasar_gates.a"
  "libquasar_gates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quasar_gates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
