# Empty compiler generated dependencies file for quasar_gates.
# This may be replaced when dependencies are built.
