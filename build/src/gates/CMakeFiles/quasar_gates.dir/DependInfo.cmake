
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gates/matrix.cpp" "src/gates/CMakeFiles/quasar_gates.dir/matrix.cpp.o" "gcc" "src/gates/CMakeFiles/quasar_gates.dir/matrix.cpp.o.d"
  "/root/repo/src/gates/standard.cpp" "src/gates/CMakeFiles/quasar_gates.dir/standard.cpp.o" "gcc" "src/gates/CMakeFiles/quasar_gates.dir/standard.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/quasar_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
