file(REMOVE_RECURSE
  "CMakeFiles/quasar_sched.dir/cluster.cpp.o"
  "CMakeFiles/quasar_sched.dir/cluster.cpp.o.d"
  "CMakeFiles/quasar_sched.dir/executor.cpp.o"
  "CMakeFiles/quasar_sched.dir/executor.cpp.o.d"
  "CMakeFiles/quasar_sched.dir/mapping.cpp.o"
  "CMakeFiles/quasar_sched.dir/mapping.cpp.o.d"
  "CMakeFiles/quasar_sched.dir/report.cpp.o"
  "CMakeFiles/quasar_sched.dir/report.cpp.o.d"
  "CMakeFiles/quasar_sched.dir/schedule_io.cpp.o"
  "CMakeFiles/quasar_sched.dir/schedule_io.cpp.o.d"
  "CMakeFiles/quasar_sched.dir/scheduler.cpp.o"
  "CMakeFiles/quasar_sched.dir/scheduler.cpp.o.d"
  "CMakeFiles/quasar_sched.dir/stage_finder.cpp.o"
  "CMakeFiles/quasar_sched.dir/stage_finder.cpp.o.d"
  "libquasar_sched.a"
  "libquasar_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quasar_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
