# Empty dependencies file for quasar_sched.
# This may be replaced when dependencies are built.
