file(REMOVE_RECURSE
  "libquasar_sched.a"
)
