
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sched/cluster.cpp" "src/sched/CMakeFiles/quasar_sched.dir/cluster.cpp.o" "gcc" "src/sched/CMakeFiles/quasar_sched.dir/cluster.cpp.o.d"
  "/root/repo/src/sched/executor.cpp" "src/sched/CMakeFiles/quasar_sched.dir/executor.cpp.o" "gcc" "src/sched/CMakeFiles/quasar_sched.dir/executor.cpp.o.d"
  "/root/repo/src/sched/mapping.cpp" "src/sched/CMakeFiles/quasar_sched.dir/mapping.cpp.o" "gcc" "src/sched/CMakeFiles/quasar_sched.dir/mapping.cpp.o.d"
  "/root/repo/src/sched/report.cpp" "src/sched/CMakeFiles/quasar_sched.dir/report.cpp.o" "gcc" "src/sched/CMakeFiles/quasar_sched.dir/report.cpp.o.d"
  "/root/repo/src/sched/schedule_io.cpp" "src/sched/CMakeFiles/quasar_sched.dir/schedule_io.cpp.o" "gcc" "src/sched/CMakeFiles/quasar_sched.dir/schedule_io.cpp.o.d"
  "/root/repo/src/sched/scheduler.cpp" "src/sched/CMakeFiles/quasar_sched.dir/scheduler.cpp.o" "gcc" "src/sched/CMakeFiles/quasar_sched.dir/scheduler.cpp.o.d"
  "/root/repo/src/sched/stage_finder.cpp" "src/sched/CMakeFiles/quasar_sched.dir/stage_finder.cpp.o" "gcc" "src/sched/CMakeFiles/quasar_sched.dir/stage_finder.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/circuit/CMakeFiles/quasar_circuit.dir/DependInfo.cmake"
  "/root/repo/build/src/gates/CMakeFiles/quasar_gates.dir/DependInfo.cmake"
  "/root/repo/build/src/simulator/CMakeFiles/quasar_simulator.dir/DependInfo.cmake"
  "/root/repo/build/src/kernels/CMakeFiles/quasar_kernels.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/quasar_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
