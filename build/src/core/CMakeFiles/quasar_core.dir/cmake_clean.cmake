file(REMOVE_RECURSE
  "CMakeFiles/quasar_core.dir/error.cpp.o"
  "CMakeFiles/quasar_core.dir/error.cpp.o.d"
  "CMakeFiles/quasar_core.dir/rng.cpp.o"
  "CMakeFiles/quasar_core.dir/rng.cpp.o.d"
  "CMakeFiles/quasar_core.dir/timing.cpp.o"
  "CMakeFiles/quasar_core.dir/timing.cpp.o.d"
  "libquasar_core.a"
  "libquasar_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quasar_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
