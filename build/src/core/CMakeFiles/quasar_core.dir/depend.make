# Empty dependencies file for quasar_core.
# This may be replaced when dependencies are built.
