file(REMOVE_RECURSE
  "libquasar_core.a"
)
