file(REMOVE_RECURSE
  "libquasar_circuit.a"
)
