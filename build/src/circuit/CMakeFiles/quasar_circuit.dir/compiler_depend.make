# Empty compiler generated dependencies file for quasar_circuit.
# This may be replaced when dependencies are built.
