
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/circuit/analysis.cpp" "src/circuit/CMakeFiles/quasar_circuit.dir/analysis.cpp.o" "gcc" "src/circuit/CMakeFiles/quasar_circuit.dir/analysis.cpp.o.d"
  "/root/repo/src/circuit/circuit.cpp" "src/circuit/CMakeFiles/quasar_circuit.dir/circuit.cpp.o" "gcc" "src/circuit/CMakeFiles/quasar_circuit.dir/circuit.cpp.o.d"
  "/root/repo/src/circuit/io.cpp" "src/circuit/CMakeFiles/quasar_circuit.dir/io.cpp.o" "gcc" "src/circuit/CMakeFiles/quasar_circuit.dir/io.cpp.o.d"
  "/root/repo/src/circuit/supremacy.cpp" "src/circuit/CMakeFiles/quasar_circuit.dir/supremacy.cpp.o" "gcc" "src/circuit/CMakeFiles/quasar_circuit.dir/supremacy.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/gates/CMakeFiles/quasar_gates.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/quasar_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
