file(REMOVE_RECURSE
  "CMakeFiles/quasar_circuit.dir/analysis.cpp.o"
  "CMakeFiles/quasar_circuit.dir/analysis.cpp.o.d"
  "CMakeFiles/quasar_circuit.dir/circuit.cpp.o"
  "CMakeFiles/quasar_circuit.dir/circuit.cpp.o.d"
  "CMakeFiles/quasar_circuit.dir/io.cpp.o"
  "CMakeFiles/quasar_circuit.dir/io.cpp.o.d"
  "CMakeFiles/quasar_circuit.dir/supremacy.cpp.o"
  "CMakeFiles/quasar_circuit.dir/supremacy.cpp.o.d"
  "libquasar_circuit.a"
  "libquasar_circuit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quasar_circuit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
