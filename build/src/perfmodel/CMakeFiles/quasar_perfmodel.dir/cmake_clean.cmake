file(REMOVE_RECURSE
  "CMakeFiles/quasar_perfmodel.dir/comm_model.cpp.o"
  "CMakeFiles/quasar_perfmodel.dir/comm_model.cpp.o.d"
  "CMakeFiles/quasar_perfmodel.dir/kernel_model.cpp.o"
  "CMakeFiles/quasar_perfmodel.dir/kernel_model.cpp.o.d"
  "CMakeFiles/quasar_perfmodel.dir/machine.cpp.o"
  "CMakeFiles/quasar_perfmodel.dir/machine.cpp.o.d"
  "CMakeFiles/quasar_perfmodel.dir/roofline.cpp.o"
  "CMakeFiles/quasar_perfmodel.dir/roofline.cpp.o.d"
  "CMakeFiles/quasar_perfmodel.dir/run_model.cpp.o"
  "CMakeFiles/quasar_perfmodel.dir/run_model.cpp.o.d"
  "libquasar_perfmodel.a"
  "libquasar_perfmodel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quasar_perfmodel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
