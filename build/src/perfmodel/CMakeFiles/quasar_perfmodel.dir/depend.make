# Empty dependencies file for quasar_perfmodel.
# This may be replaced when dependencies are built.
