file(REMOVE_RECURSE
  "libquasar_perfmodel.a"
)
