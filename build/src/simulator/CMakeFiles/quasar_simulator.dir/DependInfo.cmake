
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/simulator/measure.cpp" "src/simulator/CMakeFiles/quasar_simulator.dir/measure.cpp.o" "gcc" "src/simulator/CMakeFiles/quasar_simulator.dir/measure.cpp.o.d"
  "/root/repo/src/simulator/noise.cpp" "src/simulator/CMakeFiles/quasar_simulator.dir/noise.cpp.o" "gcc" "src/simulator/CMakeFiles/quasar_simulator.dir/noise.cpp.o.d"
  "/root/repo/src/simulator/observable.cpp" "src/simulator/CMakeFiles/quasar_simulator.dir/observable.cpp.o" "gcc" "src/simulator/CMakeFiles/quasar_simulator.dir/observable.cpp.o.d"
  "/root/repo/src/simulator/reference.cpp" "src/simulator/CMakeFiles/quasar_simulator.dir/reference.cpp.o" "gcc" "src/simulator/CMakeFiles/quasar_simulator.dir/reference.cpp.o.d"
  "/root/repo/src/simulator/simulator.cpp" "src/simulator/CMakeFiles/quasar_simulator.dir/simulator.cpp.o" "gcc" "src/simulator/CMakeFiles/quasar_simulator.dir/simulator.cpp.o.d"
  "/root/repo/src/simulator/statevector.cpp" "src/simulator/CMakeFiles/quasar_simulator.dir/statevector.cpp.o" "gcc" "src/simulator/CMakeFiles/quasar_simulator.dir/statevector.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/kernels/CMakeFiles/quasar_kernels.dir/DependInfo.cmake"
  "/root/repo/build/src/circuit/CMakeFiles/quasar_circuit.dir/DependInfo.cmake"
  "/root/repo/build/src/gates/CMakeFiles/quasar_gates.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/quasar_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
