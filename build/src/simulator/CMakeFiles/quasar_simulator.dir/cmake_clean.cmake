file(REMOVE_RECURSE
  "CMakeFiles/quasar_simulator.dir/measure.cpp.o"
  "CMakeFiles/quasar_simulator.dir/measure.cpp.o.d"
  "CMakeFiles/quasar_simulator.dir/noise.cpp.o"
  "CMakeFiles/quasar_simulator.dir/noise.cpp.o.d"
  "CMakeFiles/quasar_simulator.dir/observable.cpp.o"
  "CMakeFiles/quasar_simulator.dir/observable.cpp.o.d"
  "CMakeFiles/quasar_simulator.dir/reference.cpp.o"
  "CMakeFiles/quasar_simulator.dir/reference.cpp.o.d"
  "CMakeFiles/quasar_simulator.dir/simulator.cpp.o"
  "CMakeFiles/quasar_simulator.dir/simulator.cpp.o.d"
  "CMakeFiles/quasar_simulator.dir/statevector.cpp.o"
  "CMakeFiles/quasar_simulator.dir/statevector.cpp.o.d"
  "libquasar_simulator.a"
  "libquasar_simulator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quasar_simulator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
