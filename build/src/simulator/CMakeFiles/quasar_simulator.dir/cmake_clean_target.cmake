file(REMOVE_RECURSE
  "libquasar_simulator.a"
)
