# Empty compiler generated dependencies file for quasar_simulator.
# This may be replaced when dependencies are built.
