file(REMOVE_RECURSE
  "libquasar_runtime.a"
)
