# Empty dependencies file for quasar_runtime.
# This may be replaced when dependencies are built.
