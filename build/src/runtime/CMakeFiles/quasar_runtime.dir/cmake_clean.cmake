file(REMOVE_RECURSE
  "CMakeFiles/quasar_runtime.dir/baseline.cpp.o"
  "CMakeFiles/quasar_runtime.dir/baseline.cpp.o.d"
  "CMakeFiles/quasar_runtime.dir/comm.cpp.o"
  "CMakeFiles/quasar_runtime.dir/comm.cpp.o.d"
  "CMakeFiles/quasar_runtime.dir/conditional.cpp.o"
  "CMakeFiles/quasar_runtime.dir/conditional.cpp.o.d"
  "CMakeFiles/quasar_runtime.dir/distributed.cpp.o"
  "CMakeFiles/quasar_runtime.dir/distributed.cpp.o.d"
  "CMakeFiles/quasar_runtime.dir/rank_storage.cpp.o"
  "CMakeFiles/quasar_runtime.dir/rank_storage.cpp.o.d"
  "CMakeFiles/quasar_runtime.dir/virtual_cluster.cpp.o"
  "CMakeFiles/quasar_runtime.dir/virtual_cluster.cpp.o.d"
  "libquasar_runtime.a"
  "libquasar_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quasar_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
