
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/runtime/baseline.cpp" "src/runtime/CMakeFiles/quasar_runtime.dir/baseline.cpp.o" "gcc" "src/runtime/CMakeFiles/quasar_runtime.dir/baseline.cpp.o.d"
  "/root/repo/src/runtime/comm.cpp" "src/runtime/CMakeFiles/quasar_runtime.dir/comm.cpp.o" "gcc" "src/runtime/CMakeFiles/quasar_runtime.dir/comm.cpp.o.d"
  "/root/repo/src/runtime/conditional.cpp" "src/runtime/CMakeFiles/quasar_runtime.dir/conditional.cpp.o" "gcc" "src/runtime/CMakeFiles/quasar_runtime.dir/conditional.cpp.o.d"
  "/root/repo/src/runtime/distributed.cpp" "src/runtime/CMakeFiles/quasar_runtime.dir/distributed.cpp.o" "gcc" "src/runtime/CMakeFiles/quasar_runtime.dir/distributed.cpp.o.d"
  "/root/repo/src/runtime/rank_storage.cpp" "src/runtime/CMakeFiles/quasar_runtime.dir/rank_storage.cpp.o" "gcc" "src/runtime/CMakeFiles/quasar_runtime.dir/rank_storage.cpp.o.d"
  "/root/repo/src/runtime/virtual_cluster.cpp" "src/runtime/CMakeFiles/quasar_runtime.dir/virtual_cluster.cpp.o" "gcc" "src/runtime/CMakeFiles/quasar_runtime.dir/virtual_cluster.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/simulator/CMakeFiles/quasar_simulator.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/quasar_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/kernels/CMakeFiles/quasar_kernels.dir/DependInfo.cmake"
  "/root/repo/build/src/circuit/CMakeFiles/quasar_circuit.dir/DependInfo.cmake"
  "/root/repo/build/src/gates/CMakeFiles/quasar_gates.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/quasar_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
