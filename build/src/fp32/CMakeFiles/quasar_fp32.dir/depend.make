# Empty dependencies file for quasar_fp32.
# This may be replaced when dependencies are built.
