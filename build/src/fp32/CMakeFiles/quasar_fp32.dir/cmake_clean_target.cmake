file(REMOVE_RECURSE
  "libquasar_fp32.a"
)
