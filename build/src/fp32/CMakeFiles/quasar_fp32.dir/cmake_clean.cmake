file(REMOVE_RECURSE
  "CMakeFiles/quasar_fp32.dir/distributed_f32.cpp.o"
  "CMakeFiles/quasar_fp32.dir/distributed_f32.cpp.o.d"
  "CMakeFiles/quasar_fp32.dir/kernels_f32.cpp.o"
  "CMakeFiles/quasar_fp32.dir/kernels_f32.cpp.o.d"
  "CMakeFiles/quasar_fp32.dir/simulator_f32.cpp.o"
  "CMakeFiles/quasar_fp32.dir/simulator_f32.cpp.o.d"
  "CMakeFiles/quasar_fp32.dir/statevector_f32.cpp.o"
  "CMakeFiles/quasar_fp32.dir/statevector_f32.cpp.o.d"
  "libquasar_fp32.a"
  "libquasar_fp32.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quasar_fp32.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
