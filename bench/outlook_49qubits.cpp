/// \file outlook_49qubits.cpp
/// \brief Regenerates the paper's Sec. 5 outlook claims numerically.
///
/// 1. "With the same amount of compute resources, the simulation of 46
///    qubits is feasible when using single-precision": memory accounting
///    for Cori II, double vs float.
/// 2. "The simulation of a 49-qubit circuit would require only two
///    global-to-local swap operations": we *schedule* the real 49-qubit
///    depth-25 circuit and report the swap count.
/// 3. "The low amount of communication may allow the use of, e.g.,
///    solid-state drives": a time model for an SSD-backed 49-qubit run.
#include "bench/common.hpp"
#include "circuit/supremacy.hpp"
#include "perfmodel/run_model.hpp"

int main() {
  using namespace quasar;
  using namespace quasar::bench;

  heading("Sec. 5 outlook (1) — qubits per memory budget");
  const double cori_pb = 1.0;  // Cori II aggregate ~1 PB (Sec. 4.1)
  std::printf("%8s | %22s | %22s\n", "qubits", "double (16 B/amp)",
              "single (8 B/amp)");
  for (int n = 44; n <= 50; ++n) {
    const double d_pb = index_pow2(n) * 16.0 / 1e15;
    const double f_pb = index_pow2(n) * 8.0 / 1e15;
    std::printf("%8d | %15.3f PB %s | %15.3f PB %s\n", n, d_pb,
                d_pb <= cori_pb ? "fits " : "      ", f_pb,
                f_pb <= cori_pb ? "fits " : "      ");
  }
  std::printf("(45 qubits double = 0.563 PB — the paper's run; 46 qubits "
              "fits only in single precision, as claimed)\n");

  heading("Sec. 5 outlook (2) — scheduling the 49-qubit circuit");
  {
    const auto [rows, cols] = supremacy_grid_for_qubits(49);
    SupremacyOptions so;
    so.rows = rows;
    so.cols = cols;
    so.depth = 25;
    so.seed = 1;
    const Circuit c = make_supremacy_circuit(so);
    for (int l : {32, 34, 36}) {
      ScheduleOptions o;
      o.num_local = l;
      o.kmax = 5;
      o.build_matrices = false;
      const Schedule s = make_schedule(c, o);
      std::printf("  %d local qubits (%d 'nodes'): %d global-to-local "
                  "swap(s), %zu clusters\n",
                  l, 1 << (49 - l), s.num_swaps(), s.num_clusters());
    }
    std::printf("(paper: two swaps suffice for the entire depth-25 "
                "49-qubit circuit)\n");
  }

  heading("Sec. 5 outlook (3) — SSD-backed 49-qubit projection");
  {
    // 49 qubits double precision: 9.0 PB state. Suppose 8,192 nodes each
    // hold 1.1 TB on NVMe (aggregate ~9 PB) at a conservative streaming
    // rate, and MCDRAM/DRAM stages the working set. Each swap moves the
    // whole state once over the network *and* re-streams it from/to SSD.
    const double state_pb = index_pow2(49) * 16.0 / 1e15;
    const int nodes = 8192;
    const double per_node_bytes = index_pow2(49) * 16.0 / nodes;
    const double ssd_gbs = 2.0;   // per-node NVMe streaming, GB/s
    const InterconnectModel net = aries_dragonfly();
    const double net_s = net.alltoall_seconds(nodes, per_node_bytes);
    const double ssd_s = 2.0 * per_node_bytes / (ssd_gbs * 1e9);
    const int swaps = 2;
    // Between swaps, each stage streams the state past the kernels once
    // per cluster; with ~25 clusters per stage (Table 1 scaling) and a
    // 4-qubit-kernel rate of ~2x DRAM bandwidth, kernels are SSD-bound:
    const int clusters_per_stage = 25;
    const double stage_s = clusters_per_stage * 2.0 * per_node_bytes /
                           (ssd_gbs * 1e9);
    const double total = swaps * (net_s + ssd_s) + (swaps + 1) * stage_s;
    std::printf("  state: %.2f PB across %d nodes (%.1f TB/node on SSD)\n",
                state_pb, nodes, per_node_bytes / 1e12);
    std::printf("  per swap: %.0f s network all-to-all + %.0f s SSD "
                "restage\n", net_s, ssd_s);
    std::printf("  per stage: ~%d cluster sweeps, SSD-bound: %.0f s\n",
                clusters_per_stage, stage_s);
    std::printf("  projected total: %.1f hours — slow but *possible*, "
                "which is the paper's point: communication, not capacity, "
                "was the blocker, and scheduling removed it\n",
                total / 3600.0);
  }
  return 0;
}
