/// \file fig2_roofline.cpp
/// \brief Regenerates Fig. 2: roofline plots of the kernel optimization
/// steps on one Edison socket (2a) and one Cori II KNL node (2b).
///
/// Output: (1) the roofline lines (peak + bandwidth ceilings) and model
/// points for the paper's two machines, annotated with the paper's
/// reported measurements; (2) *measured* points for the same
/// optimization steps on this host (baseline two-vector kernel, in-place
/// naive kernel, vectorized kernel, blocked/tuned kernel), so the step
/// structure of the figure can be seen live.
#include <functional>

#include "bench/common.hpp"
#include "kernels/autotune.hpp"
#include "kernels/naive.hpp"
#include "perfmodel/machine.hpp"
#include "perfmodel/roofline.hpp"

namespace {

using namespace quasar;
using namespace quasar::bench;

void print_machine_roofline(const MachineModel& m,
                            const char* paper_notes) {
  std::printf("%s\n", m.name.c_str());
  std::printf("  peak: %.1f GFLOPS, bandwidth: %.1f GB/s (fast) / %.1f GB/s "
              "(DRAM)\n",
              m.peak_gflops, m.fast_bw_gbs, m.dram_bw_gbs);
  std::printf("  roofline: attainable(OI) = min(step ceiling, OI x %.1f "
              "GB/s)\n", m.achievable_bw());
  for (const RooflinePoint& p : roofline_model_points(m)) {
    std::printf("    %-34s OI %5.3f  ->  %7.1f GFLOPS\n", p.label.c_str(),
                p.oi, p.gflops);
  }
  std::printf("  paper-reported markers: %s\n", paper_notes);
}

double measure(int n, double flops_per_amp, const std::function<void()>& fn) {
  fn();  // warm-up
  const double secs = time_best_of(fn, 0.15);
  return flops_per_amp * static_cast<double>(index_pow2(n)) / secs * 1e-9;
}

}  // namespace

int main() {
  heading("Fig. 2a — roofline model, one Edison socket");
  print_machine_roofline(
      edison_socket(),
      "4-qubit kernel after step 3: 166.2 GFLOPS; stream TRIAD 52 GB/s");

  heading("Fig. 2b — roofline model, one Cori II KNL node");
  print_machine_roofline(cori_knl_node(),
                         "steps on the 4-qubit kernel: 229.6 (1), 442.7 "
                         "(2, AVX), 878.7 (2, AVX512) GFLOPS");

  heading("measured on this host");
  const int n = bench_qubits();
  std::printf("state: 2^%d amplitudes (%.0f MiB), backend %s, %d threads\n",
              n, index_pow2(n) * 16.0 / (1 << 20), simd_backend_name(),
              env_int("OMP_NUM_THREADS", 0));

  Rng rng(7);
  const GateMatrix u1 = gates::random_su2(rng);

  // Step 0 (Sec. 3.1): two state vectors, 1-qubit gate. OI halves because
  // the output store costs an extra read (allocate-on-write).
  {
    AlignedVector<Amplitude> in(index_pow2(n), Amplitude{1.0, 0.0});
    AlignedVector<Amplitude> out(index_pow2(n));
    const double gflops = measure(n, flops_per_amplitude(1), [&] {
      apply_single_qubit_two_vector(in.data(), out.data(), n, u1, n / 2);
    });
    std::printf("  1-qubit baseline (two vectors)   OI %5.3f  ->  %7.1f "
                "GFLOPS\n", operational_intensity(1) / 2, gflops);
  }
  // Step 1: in-place, still plain complex arithmetic.
  {
    AlignedVector<Amplitude> state(index_pow2(n), Amplitude{1.0, 0.0});
    const double gflops = measure(n, flops_per_amplitude(1), [&] {
      apply_single_qubit_inplace_naive(state.data(), n, u1, n / 2);
    });
    std::printf("  1-qubit step1 (in-place naive)   OI %5.3f  ->  %7.1f "
                "GFLOPS\n", operational_intensity(1), gflops);
  }
  // Step 2: explicit vectorization + FMA re-ordering (our SIMD kernel).
  {
    const double gflops = measure_kernel_gflops(n, {n / 2});
    std::printf("  1-qubit step2 (SIMD kernel)      OI %5.3f  ->  %7.1f "
                "GFLOPS\n", operational_intensity(1), gflops);
  }
  // 4-qubit kernel, un-blocked vs autotuned blocking (step 2 -> 3).
  {
    ApplyOptions unblocked;
    unblocked.block_rows = 1;
    Rng rng4(11);
    const GateMatrix u4 = random_dense_unitary(4, rng4);
    const PreparedGate gate = prepare_gate(u4, {8, 9, 10, 11});
    AlignedVector<Amplitude> state(index_pow2(n), Amplitude{1.0, 0.0});
    const double g2 = measure(n, flops_per_amplitude(4), [&] {
      apply_gate(state.data(), n, gate, unblocked);
    });
    std::printf("  4-qubit step2 (block_rows=1)     OI %5.3f  ->  %7.1f "
                "GFLOPS\n", operational_intensity(4), g2);

    autotune_kernels(std::min(n, 22), 4);
    const double g3 = measure(n, flops_per_amplitude(4), [&] {
      apply_gate(state.data(), n, gate, {});
    });
    std::printf("  4-qubit step3 (autotuned blocks) OI %5.3f  ->  %7.1f "
                "GFLOPS  (block_rows=%d)\n",
                operational_intensity(4), g3, kernel_config(4).block_rows);
  }
  return 0;
}
