/// \file table1_clusters.cpp
/// \brief Regenerates Table 1: clustering of depth-25 supremacy circuits
/// into k-qubit clusters (kmax = 3, 4, 5) using 30 local qubits.
#include "bench/common.hpp"
#include "circuit/supremacy.hpp"
#include "core/timing.hpp"
#include "sched/schedule.hpp"

int main() {
  using namespace quasar;
  using namespace quasar::bench;

  heading("Table 1 — clusters for depth-25 supremacy circuits (30 local "
          "qubits)");
  std::printf("%7s %7s | %9s %9s %9s | %s\n", "qubits", "gates",
              "kmax=3", "kmax=4", "kmax=5", "sched time");
  struct PaperRow {
    int qubits;
    int gates;
    int clusters[3];
  };
  const PaperRow paper[] = {{30, 369, {82, 46, 36}},
                            {36, 447, {98, 53, 41}},
                            {42, 528, {111, 58, 46}},
                            {45, 569, {111, 73, 51}}};

  for (const PaperRow& row : paper) {
    const auto [rows, cols] = supremacy_grid_for_qubits(row.qubits);
    SupremacyOptions so;
    so.rows = rows;
    so.cols = cols;
    so.depth = 25;
    so.seed = 1;
    const Circuit c = make_supremacy_circuit(so);

    Timer timer;
    std::size_t clusters[3];
    for (int i = 0; i < 3; ++i) {
      ScheduleOptions o;
      o.num_local = std::min(30, row.qubits);
      o.kmax = 3 + i;
      o.build_matrices = false;
      clusters[i] = make_schedule(c, o).num_clusters();
    }
    std::printf("%7d %7zu | %9zu %9zu %9zu | %.2f s\n", row.qubits,
                c.num_gates(), clusters[0], clusters[1], clusters[2],
                timer.seconds());
    std::printf("%7s %7d | %9d %9d %9d | (paper; <3 s in Python)\n", "",
                row.gates, row.clusters[0], row.clusters[1],
                row.clusters[2]);
  }
  std::printf("\nshape checks: clusters shrink with kmax; mean gates per "
              "cluster exceeds kmax (the paper's 'more than kmax gates per "
              "cluster on average').\n");
  return 0;
}
