/// \file fp32_vs_fp64.cpp
/// \brief Quantifies the Sec. 5 single-precision claim: same state, half
/// the bytes — bandwidth-bound kernels speed up toward 2x and the same
/// machine holds one more qubit.
#include "bench/common.hpp"
#include "fp32/kernels_f32.hpp"
#include "fp32/statevector_f32.hpp"

namespace {

using namespace quasar;
using namespace quasar::bench;

double measure_f32(int n, const std::vector<int>& locations) {
  Rng rng(0xf10a + locations.front());
  const int k = static_cast<int>(locations.size());
  const GateMatrix u = random_dense_unitary(k, rng);
  const PreparedGateF gate = prepare_gate_f32(u, locations);
  StateVectorF state(n);
  apply_gate_f32(state.data(), n, gate);  // warm up
  const double secs = time_best_of(
      [&] { apply_gate_f32(state.data(), n, gate); }, 0.15);
  return flops_per_amplitude(k) * static_cast<double>(index_pow2(n)) /
         secs * 1e-9;
}

}  // namespace

int main() {
  heading("Sec. 5 — single vs double precision kernel throughput");
  const int n = bench_qubits();
  std::printf("state: 2^%d amplitudes (%.0f MiB double, %.0f MiB float)\n",
              n, index_pow2(n) * 16.0 / (1 << 20),
              index_pow2(n) * 8.0 / (1 << 20));
  std::printf("%3s |%12s %12s %9s\n", "k", "fp64", "fp32", "fp32/fp64");
  for (int k = 1; k <= 5; ++k) {
    const auto locations = low_order_locations(k);
    const double d = measure_kernel_gflops(n, locations);
    const double f = measure_f32(n, locations);
    std::printf("%3d |%10.1f GF %10.1f GF %8.2fx\n", k, d, f, f / d);
  }
  std::printf("(bandwidth-bound kernels approach 2x; compute-bound ones "
              "gain from the doubled SIMD lane count)\n");

  heading("qubits per memory budget (per node, 96 GB like a Cori II node)");
  const double node_bytes = 96e9;
  for (int l = 31; l <= 34; ++l) {
    const double d_gb = index_pow2(l) * 16.0 / 1e9;
    const double f_gb = index_pow2(l) * 8.0 / 1e9;
    std::printf("  %d local qubits: %7.1f GB double %s | %7.1f GB float "
                "%s\n", l, d_gb, d_gb <= node_bytes / 1e9 ? "fits" : "    ",
                f_gb, f_gb <= node_bytes / 1e9 ? "fits" : "    ");
  }
  std::printf("(33 local qubits fit a node only in single precision: with "
              "8192 nodes that is the paper's 45 -> 46 qubit step)\n");
  return 0;
}
