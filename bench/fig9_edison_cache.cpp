/// \file fig9_edison_cache.cpp
/// \brief Regenerates Fig. 9: k-qubit kernel performance on a two-socket
/// Edison node, low- vs high-order qubits (8-way caches).
#include "bench/common.hpp"
#include "perfmodel/kernel_model.hpp"
#include "perfmodel/machine.hpp"

int main() {
  using namespace quasar;
  using namespace quasar::bench;

  heading("Fig. 9 — model for a two-socket Edison node (24 cores)");
  const MachineModel edison = edison_node();
  std::printf("%3s |%12s %12s   (GFLOPS)\n", "k", "low-order", "high-order");
  for (int k = 1; k <= 5; ++k) {
    std::printf("%3d |%12.1f %12.1f\n", k, kernel_gflops(edison, k, false),
                kernel_gflops(edison, k, true));
  }
  std::printf("(paper Fig. 9: negligible drop for k <= 3 — all 2^k strides "
              "map to distinct ways of the 8-way Ivy Bridge caches — then "
              "a visible drop at k = 4, 5; low-order tops out ~230-280 "
              "GFLOPS)\n");

  heading("single-socket Edison model (Fig. 2a machine)");
  const MachineModel socket = edison_socket();
  std::printf("%3s |%12s %12s\n", "k", "low-order", "high-order");
  for (int k = 1; k <= 5; ++k) {
    std::printf("%3d |%12.1f %12.1f\n", k, kernel_gflops(socket, k, false),
                kernel_gflops(socket, k, true));
  }
  std::printf("(Sec. 4.2.1: a single-socket 30-qubit supremacy run gains "
              "3x in time-to-solution from these kernels)\n");
  return 0;
}
