/// \file fig10_edison_scaling.cpp
/// \brief Regenerates Fig. 10: strong scaling of the k-qubit kernels on a
/// two-socket Edison node (up to 24 Ivy Bridge cores).
///
/// Paper reading: kernels with k <= 4 are bandwidth-limited (speedup
/// flattens near the socket's saturation point); the 5-qubit kernel
/// scales furthest; k = 4 scales almost perfectly within one 12-core
/// socket, which is why the paper uses one MPI process per socket and
/// k = 4 kernels on Edison.
#include "bench/common.hpp"
#include "perfmodel/kernel_model.hpp"
#include "perfmodel/machine.hpp"

int main() {
  using namespace quasar;
  using namespace quasar::bench;

  heading("Fig. 10 — model: speedup vs cores, two-socket Edison node");
  const MachineModel edison = edison_node();
  std::printf("%6s |", "cores");
  for (int k = 1; k <= 5; ++k) std::printf("   k=%d ", k);
  std::printf("\n");
  for (int cores : {1, 2, 4, 8, 12, 16, 20, 24}) {
    std::printf("%6d |", cores);
    for (int k = 1; k <= 5; ++k) {
      const double speedup = kernel_gflops_cores(edison, k, cores) /
                             kernel_gflops_cores(edison, k, 1);
      std::printf(" %5.1f ", speedup);
    }
    std::printf("\n");
  }
  std::printf("(paper Fig. 10: k=5 reaches ~23x at 24 cores; k<=4 flatten "
              "once the memory pipeline saturates)\n");

  heading("suggested kernel size (Sec. 4.2.1 reasoning)");
  for (int k = 3; k <= 5; ++k) {
    const double low = kernel_gflops(edison, k, false);
    const double high = kernel_gflops(edison, k, true);
    std::printf("  k=%d: %7.1f GFLOPS low-order, %7.1f high-order "
                "(penalty %.1fx)\n", k, low, high, low / high);
  }
  std::printf("  => k = 4 balances scaling and the high-order penalty, "
              "matching the paper's choice for Edison.\n");
  return 0;
}
