/// \file stage_sweep_microbench.cpp
/// \brief Cache-blocked stage execution vs one DRAM sweep per gate.
///
/// Builds a depth-QUASAR_STAGE_BENCH_DEPTH supremacy-style circuit on a
/// near-square grid, schedules it single-node with the qubit-mapping
/// optimization (Sec. 3.6.2, which pushes busy qubits to low
/// bit-locations), and times the stage's gate list two ways at two
/// granularities:
///   - gate level: every circuit op applied at its mapped location
///     (unfused execution), plain vs blocked;
///   - cluster level: the fused cluster items the executor actually runs,
///     plain vs blocked.
/// "Plain" pays one read+write of the state per gate; "blocked" lets
/// runs of low-location gates share one sweep (kernels/block_apply.hpp).
/// Emits JSON for EXPERIMENTS.md.
/// Overrides: QUASAR_STAGE_BENCH_QUBITS (default 28),
/// QUASAR_STAGE_BENCH_DEPTH (default 25), QUASAR_STAGE_BENCH_REPS
/// (default 1), QUASAR_STAGE_BENCH_TUNE (default 1 = run
/// autotune_blocking first), QUASAR_STAGE_BENCH_BLOCK /
/// QUASAR_STAGE_BENCH_MIN_RUN (force the block exponent / minimum run
/// length instead of the tuned values).
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench/common.hpp"
#include "circuit/supremacy.hpp"
#include "core/bits.hpp"
#include "core/timing.hpp"
#include "kernels/apply.hpp"
#include "kernels/autotune.hpp"
#include "kernels/block_apply.hpp"
#include "obs/trace_export.hpp"
#include "sched/schedule.hpp"

namespace {

using namespace quasar;
using namespace quasar::bench;

void fill_random(Amplitude* data, Index count, std::uint64_t seed) {
  Rng rng(seed);
  for (Index i = 0; i < count; ++i) {
    data[i] = Amplitude{rng.normal(), rng.normal()};
  }
}

/// Near-square grid factoring of n (supremacy_grid_for_qubits only knows
/// the paper's sizes).
std::pair<int, int> near_square_grid(int n) {
  for (int r = static_cast<int>(std::sqrt(static_cast<double>(n))); r >= 1;
       --r) {
    if (n % r == 0) return {n / r, r};
  }
  return {n, 1};
}

struct LevelResult {
  std::size_t gates = 0;
  TimingStats plain;
  TimingStats blocked;
  BlockRunStats stats;
};

LevelResult measure_level(Amplitude* state, int n,
                          const std::vector<const PreparedGate*>& gates,
                          const ApplyOptions& options, int reps) {
  LevelResult r;
  r.gates = gates.size();
  r.plain = time_stats_n(
      [&] {
        for (const PreparedGate* g : gates) apply_gate(state, n, *g, options);
      },
      reps);
  r.blocked = time_stats_n(
      [&] {
        apply_gates_blocked(state, n, gates.data(), gates.size(), options,
                            &r.stats);
      },
      reps);
  return r;
}

void print_level(const char* name, const LevelResult& r, bool last) {
  const double speedup =
      r.blocked.best > 0.0 ? r.plain.best / r.blocked.best : 0.0;
  std::printf("  \"%s\": {\n", name);
  std::printf("    \"gates\": %zu,\n", r.gates);
  print_timing_json("plain", r.plain);
  print_timing_json("blocked", r.blocked);
  std::printf("    \"speedup\": %.3f,\n", speedup);
  std::printf("    \"meets_1p5x\": %s,\n", speedup >= 1.5 ? "true" : "false");
  std::printf("    \"runs\": %zu,\n", r.stats.runs);
  std::printf("    \"run_gates\": %zu,\n", r.stats.run_gates);
  std::printf("    \"hoisted\": %zu,\n", r.stats.hoisted);
  std::printf("    \"coalesced\": %zu,\n", r.stats.coalesced);
  std::printf("    \"sweeps\": %zu,\n", r.stats.sweeps);
  std::printf("    \"sweeps_saved\": %zu\n", r.stats.sweeps_saved());
  std::printf("  }%s\n", last ? "" : ",");
}

}  // namespace

int main() {
  // QUASAR_TRACE=<path> dumps a chrome://tracing timeline of the run.
  obs::EnvTraceGuard trace_guard;
  const int n = std::max(12, env_int("QUASAR_STAGE_BENCH_QUBITS", 28));
  const int depth = std::max(1, env_int("QUASAR_STAGE_BENCH_DEPTH", 25));
  const int reps = std::max(1, env_int("QUASAR_STAGE_BENCH_REPS", 1));
  const bool tune = env_int("QUASAR_STAGE_BENCH_TUNE", 1) != 0;

  const auto [rows, cols] = near_square_grid(n);
  SupremacyOptions sup;
  sup.rows = rows;
  sup.cols = cols;
  sup.depth = depth;
  sup.seed = 1;
  const Circuit circuit = make_supremacy_circuit(sup);

  ScheduleOptions sched;
  sched.num_local = n;
  sched.kmax = std::min(5, n);
  sched.qubit_mapping = true;
  const Schedule schedule = make_schedule(circuit, sched);
  const Stage& stage = schedule.stages.front();

  if (tune) {
    autotune_blocking(std::min(n, 24));
  }
  const BlockRunConfig& config = block_run_config();

  // Gate-level list: every op at its mapped bit-locations, in stage
  // order. Cluster-level list: the fused items the executor runs.
  std::vector<PreparedGate> gate_level;
  gate_level.reserve(stage.gates.size());
  for (std::size_t gi : stage.gates) {
    const GateOp& op = circuit.op(gi);
    std::vector<int> locations;
    for (Qubit q : op.qubits) {
      locations.push_back(stage.qubit_to_location[q]);
    }
    gate_level.push_back(prepare_gate(*op.matrix, locations));
  }
  std::vector<PreparedGate> cluster_level;
  cluster_level.reserve(stage.items.size());
  for (const StageItem& item : stage.items) {
    const Cluster& cluster = stage.clusters[item.cluster];
    cluster_level.push_back(prepare_gate(*cluster.matrix, cluster.qubits));
  }
  std::vector<const PreparedGate*> gate_ptrs, cluster_ptrs;
  for (const PreparedGate& g : gate_level) gate_ptrs.push_back(&g);
  for (const PreparedGate& g : cluster_level) cluster_ptrs.push_back(&g);

  AlignedVector<Amplitude> state(index_pow2(n));
  fill_random(state.data(), state.size(), 7);

  ApplyOptions options;
  options.block_exponent = env_int("QUASAR_STAGE_BENCH_BLOCK", 0);
  options.min_run_length = env_int("QUASAR_STAGE_BENCH_MIN_RUN", 0);
  const LevelResult gate_r =
      measure_level(state.data(), n, gate_ptrs, options, reps);
  const LevelResult cluster_r =
      measure_level(state.data(), n, cluster_ptrs, options, reps);

  std::printf("{\n");
  std::printf("  \"qubits\": %d,\n", n);
  std::printf("  \"grid\": [%d, %d],\n", rows, cols);
  std::printf("  \"depth\": %d,\n", depth);
  std::printf("  \"kmax\": %d,\n", sched.kmax);
  std::printf("  \"block_exponent\": %d,\n",
              effective_block_exponent(n, options));
  std::printf("  \"min_run_length\": %d,\n",
              effective_min_run_length(options));
  std::printf("  \"tuned\": %s,\n", config.tuned ? "true" : "false");
  print_level("gate_level", gate_r, false);
  print_level("cluster_level", cluster_r, true);
  std::printf("}\n");
  return 0;
}
