/// \file fig7_node_scaling.cpp
/// \brief Regenerates Fig. 7: strong scaling of the k-qubit kernels with
/// core count on one KNL node (model) and on this host (measured).
///
/// Shape: small-k kernels saturate memory bandwidth early and stop
/// scaling; the 5-qubit kernel is compute-bound and scales on.
#include "bench/common.hpp"
#include "perfmodel/kernel_model.hpp"
#include "perfmodel/machine.hpp"

int main() {
  using namespace quasar;
  using namespace quasar::bench;

  heading("Fig. 7 — model: speedup vs cores on one KNL node (28-qubit state)");
  const MachineModel knl = cori_knl_node();
  std::printf("%6s |", "cores");
  for (int k = 1; k <= 5; ++k) std::printf("   k=%d ", k);
  std::printf("\n");
  for (int cores = 1; cores <= 64; cores *= 2) {
    std::printf("%6d |", cores);
    for (int k = 1; k <= 5; ++k) {
      const double speedup = kernel_gflops_cores(knl, k, cores) /
                             kernel_gflops_cores(knl, k, 1);
      std::printf(" %5.1f ", speedup);
    }
    std::printf("\n");
  }
  std::printf("(paper Fig. 7: 5-qubit kernel scales to ~55x at 64 cores; "
              "1-qubit kernel saturates bandwidth well before that)\n");

  heading("measured on this host — GFLOPS vs threads");
  const int n = bench_qubits();
  const MachineModel host = host_machine(false);
  std::printf("%8s |", "threads");
  for (int k = 1; k <= 5; ++k) std::printf("       k=%d", k);
  std::printf("\n");
  for (int threads = 1; threads <= host.cores; threads *= 2) {
    std::printf("%8d |", threads);
    for (int k = 1; k <= 5; ++k) {
      std::printf(" %9.1f",
                  measure_kernel_gflops(n, low_order_locations(k), threads));
    }
    std::printf("\n");
  }
  return 0;
}
