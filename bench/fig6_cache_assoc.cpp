/// \file fig6_cache_assoc.cpp
/// \brief Regenerates Fig. 6: k-qubit kernel performance on low- vs
/// high-order qubits (cache set-associativity penalty, Sec. 3.3).
///
/// Prints the KNL model curve (calibrated to the paper's Fig. 6) and the
/// measured curve on this host. The *shape* to look for: low- and
/// high-order agree up to 2^k = effective cache ways, then the
/// high-order curve falls away.
#include "bench/common.hpp"
#include "kernels/autotune.hpp"
#include "perfmodel/kernel_model.hpp"
#include "perfmodel/machine.hpp"

int main() {
  using namespace quasar;
  using namespace quasar::bench;

  heading("Fig. 6 — model for one Cori II KNL node (68 cores)");
  const MachineModel knl = cori_knl_node();
  std::printf("%3s |%12s %12s   (GFLOPS)\n", "k", "low-order", "high-order");
  for (int k = 1; k <= 5; ++k) {
    std::printf("%3d |%12.1f %12.1f\n", k, kernel_gflops(knl, k, false),
                kernel_gflops(knl, k, true));
  }
  std::printf("(paper Fig. 6 readings: low ~120/230/450/800/1050, high "
              "drops ~2x at k=4 and ~3-4x at k=5; L2 16-way shared by 2 "
              "cores => 8 effective ways)\n");

  heading("measured on this host");
  const int n = bench_qubits();
  autotune_kernels(std::min(n, 22), 5);
  std::printf("state 2^%d, backend %s\n", n, simd_backend_name());
  std::printf("%3s |%12s %12s %9s\n", "k", "low-order", "high-order",
              "ratio");
  for (int k = 1; k <= 5; ++k) {
    const double low = measure_kernel_gflops(n, low_order_locations(k));
    const double high =
        measure_kernel_gflops(n, high_order_locations(k, n));
    std::printf("%3d |%12.1f %12.1f %9.2f\n", k, low, high, low / high);
  }
  std::printf("(host caches differ from KNL; expect the high-order penalty "
              "to appear once 2^k exceeds this machine's L1/L2 ways)\n");
  return 0;
}
